open Engine
open Spp

type event = { instance : Instance.t; state : State.t }

let sever topo ~dest ~state ~link:(a, b) =
  if Topology.relationship topo ~of_:a b = None then
    invalid_arg "Failure.sever: no such link";
  let links =
    List.filter
      (fun (x, y, _) -> not ((x = a && y = b) || (x = b && y = a)))
      (Topology.edges topo)
  in
  let topo' = Topology.make ~names:(Topology.names topo) ~links in
  let inst' = Policy.compile topo' ~dest in
  (* Keep every node's current (possibly stale) route and announcement and
     all surviving knowledge and in-flight messages; everything carried by
     the dead link is dropped by the transplant. *)
  let st =
    Surgery.transplant ~old_instance:(Policy.compile topo ~dest) ~new_instance:inst' state
  in
  (topo', { instance = inst'; state = st })

type reconvergence = {
  converged : bool;
  steps : int;
  messages : int;
  rerouted : int;
  lost : int;
  assignment : Assignment.t;
}

let reconverge ?metrics ?(max_steps = 50_000) event ~before ~model =
  let inst = event.instance in
  let messages = ref 0 in
  let r =
    Executor.run_streaming ?metrics ~max_steps ~state:event.state
      ~on_step:(fun (s : Trace.step) ->
        messages := !messages + List.length s.Trace.outcome.Step.pushed)
      inst
      (Scheduler.round_robin inst model)
  in
  let messages = !messages in
  let assignment = State.assignment inst r.Executor.final in
  let rerouted =
    List.length
      (List.filter
         (fun v ->
           not (Path.equal (Assignment.get assignment v) (Assignment.get before v)))
         (Instance.nodes inst))
  in
  let lost =
    List.length
      (List.filter
         (fun v ->
           v <> Instance.dest inst && Path.is_epsilon (Assignment.get assignment v))
         (Instance.nodes inst))
  in
  {
    converged = r.Executor.stop = Executor.Quiescent;
    steps = r.Executor.steps;
    messages;
    rerouted;
    lost;
    assignment;
  }
