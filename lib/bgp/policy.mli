(** Gao–Rexford routing policies and their compilation to SPP instances.

    Preference: customer routes over peer routes over provider routes,
    shorter AS paths first within a class.  Export: routes learned from a
    customer (and the origin's own prefix) go to everyone; routes learned
    from a peer or provider go to customers only.  These guidelines
    guarantee convergence without global coordination (Gao & Rexford 2001),
    which this library demonstrates by compiling them into dispute-wheel-free
    SPP instances. *)

type route_class = Customer_route | Peer_route | Provider_route | Origin

val route_class : Topology.t -> Spp.Path.node -> Spp.Path.t -> route_class option
(** Class of a route at a node, from the relationship with its next hop;
    [Origin] for the destination's trivial route; [None] for epsilon or a
    first hop that is not a neighbor. *)

val exports : Topology.t -> Spp.Path.node -> Spp.Path.t -> to_:Spp.Path.node -> bool
(** Whether the node announces the given route to that neighbor under
    Gao–Rexford export rules. *)

val gr_permitted : Topology.t -> dest:Spp.Path.node -> Spp.Path.node -> Spp.Path.t list
(** All simple paths from the node to [dest] that every hop along the way
    would export (equivalently, the valley-free paths), sorted by
    Gao–Rexford preference. *)

val compile : Topology.t -> dest:Spp.Path.node -> Spp.Instance.t
(** The SPP instance induced by the topology, the destination prefix, and
    Gao–Rexford policies. *)

val labeled_graph : Topology.t -> dest:Spp.Path.node -> Spp.Algebra.labeled_graph
(** The topology as an algebraically labeled graph: each link carries the
    relationship of the next node as seen from the extender, so compiling
    it under {!Spp.Algebra.gao_rexford} yields the same permitted sets as
    {!compile} (the algebraic route and the operational route to the same
    instances).  Works at any scale — a 100k-node {!Topology.generate_scaled}
    graph labels in milliseconds; it is {e compiling} the result that is
    only feasible for small instances. *)

val export_policy : Topology.t -> Engine.Step.export
(** The engine export hook implementing the export rules at announcement
    time (compile-time permitted sets already encode the same restriction;
    using both matches the operational BGP behavior and reduces traffic). *)
