(** Sharded internet-scale BGP simulation.

    The legacy pipeline ({!Simulate.run}) compiles the whole topology into
    an SPP instance — enumerating every valley-free path — which is
    exponential in the worst case and in practice caps topologies at a few
    hundred ASes.  This simulator runs Gao–Rexford route selection directly
    on the topology: each node keeps the last announcement per neighbor
    (its Adj-RIB-In, hash-consed in {!Spp.Arena}), selects the best simple
    extension, and announces on change under the export rules.  On
    wheel-free Gao–Rexford instances the stable solution is unique, so the
    final routes coincide with the legacy engine's assignment — the parity
    gates in the test-suite and bench check exactly that.

    Execution is bulk-synchronous over a {!Partition}: every epoch, each
    shard's worker drains its worklist of dirty nodes (intra-shard
    announcements are delivered immediately), while announcements that
    cross a shard boundary accumulate in per-shard outboxes.  At the epoch
    barrier the orchestrator drains the outboxes sequentially in shard
    order, so the computation is deterministic in the number of workers.
    The batching knob is the communication-model dial of the paper mapped
    onto a partitioned simulator: flushing only at the epoch barrier
    behaves like the synchronous ([*A]) models, flushing after every
    activation like the asynchronous ([*O]) ones; unreliable models drop a
    deterministic subset of non-final cross-partition messages. *)

type batching =
  | Per_epoch  (** flush cross-partition traffic only at the epoch barrier *)
  | Every of int  (** flush after every [n] activations per shard *)

type config = {
  model : Engine.Model.t;  (** recorded in results; see {!config_for} *)
  shards : int;
  batching : batching;
  workers : int;  (** domains for the parallel phase, via {!Engine.Pool} *)
  max_epochs : int;
  lossy_every : int;
      (** 0: deliver everything.  [k > 0]: every [k]-th cross-partition
          message is dropped, except the newest message per (src, dst)
          channel in a flush, which always survives — so unreliable models
          lose traffic without losing convergence. *)
  seed : int;  (** partition seed *)
}

val default_config : config
(** RMS, 4 shards, per-epoch batching, 1 worker. *)

val batching_of_model : Engine.Model.t -> batching
(** [M_all]/[M_forced] (polling-flavored) map to {!Per_epoch}; [M_one] to
    [Every 1]; [M_some] to [Every 4]. *)

val lossy_of_model : Engine.Model.t -> int
(** 0 for reliable models, 3 for unreliable ones. *)

val config_for :
  ?shards:int -> ?workers:int -> ?batching:batching -> Engine.Model.t -> config
(** A config whose batching and lossiness are derived from the model's
    dimensions (overridable). *)

type result = {
  converged : bool;
  epochs : int;
  activations : int;  (** node activations across all shards *)
  messages : int;  (** announcements sent, intra- and cross-shard *)
  cross_messages : int;  (** announcements that crossed a shard boundary *)
  flushes : int;  (** non-empty outbox drains at barriers *)
  drops : int;  (** lossy cross-partition deliveries suppressed *)
  routes : Spp.Arena.id array;  (** final route per node *)
  partition : Partition.t;
  pool_engaged : bool;  (** whether a multi-domain parallel phase ran *)
}

val run :
  ?metrics:Engine.Metrics.t ->
  config ->
  Topology.t ->
  dest:Spp.Path.node ->
  result
(** With [metrics], activations are recorded as bulk steps, announcements
    as messages, and the wall time as a "shard" phase. *)

val assignment : Spp.Instance.t -> result -> Spp.Assignment.t
(** The final routes as an SPP assignment of the compiled instance, for
    parity checks against the legacy engine (small topologies only — the
    instance must be compilable). *)

val route_digest : result -> string
(** Hex digest of the final route of every node; equal digests mean equal
    routing outcomes, usable at scales where compiling an instance is not
    feasible. *)

val pp_result : Format.formatter -> result -> unit
