(** AS-level topologies with business relationships.

    Edges are either provider–customer (directed: money flows up) or
    peer–peer.  The provider–customer relation must be acyclic, as on the
    real Internet. *)

type kind = Provider_customer | Peer_peer

type t

val make :
  names:string array ->
  links:(Spp.Path.node * Spp.Path.node * kind) list ->
  t
(** In a [Provider_customer] link the first node is the provider.  Raises
    [Invalid_argument] on duplicate links, self-links, or a cycle in the
    provider–customer hierarchy. *)

val size : t -> int
val names : t -> string array
val name : t -> Spp.Path.node -> string

val neighbors : t -> Spp.Path.node -> Spp.Path.node list
(** Ascending neighbor ids. *)

val degree : t -> Spp.Path.node -> int

val digest : t -> string
(** Hex digest of the names and the link list (order-sensitive), for
    determinism goldens and bench artifacts.  Two topologies with equal
    digests compile to identical instances. *)

type relationship = Customer | Peer | Provider

val relationship : t -> of_:Spp.Path.node -> Spp.Path.node -> relationship option
(** [relationship t ~of_:u v]: how [u] sees [v] ([Customer] means [v] is a
    customer of [u]); [None] if not adjacent. *)

val edges : t -> (Spp.Path.node * Spp.Path.node * kind) list

type config = {
  tier1 : int;  (** fully peered core ASes *)
  tier2 : int;  (** mid-tier: customers of tier 1, some mutual peering *)
  stubs : int;  (** customers of tier 2 (or tier 1) *)
  seed : int;
}

val default_config : config

val generate : config -> t
(** A random three-tier hierarchy, deterministic in [seed]. *)

type scaled_config = {
  s_tier1 : int;  (** fully peered core *)
  s_tier2 : int;  (** transit ASes: customers of 1-2 tier-1s *)
  s_stubs : int;  (** stub ASes: customers of 1-2 tier-2s *)
  s_peer_links : int;  (** budget of random tier-2/tier-2 peering links *)
  s_seed : int;
}

val default_scaled_config : scaled_config
(** A 10k-node hierarchy (10 core, 490 transit, 9500 stubs). *)

val generate_scaled : scaled_config -> t
(** The internet-scale generator: same Gao–Rexford three-tier shape as
    {!generate}, but O(V + E) construction and {e preferential} stub
    attachment (stubs pick providers with probability proportional to the
    providers' current customer count), so tier-2 provider degrees follow
    the power law of the measured AS graph.  Deterministic in [s_seed];
    practical at 10k–100k nodes. *)

val pp : Format.formatter -> t -> unit
