open Engine

type result = {
  converged : bool;
  steps : int;
  messages : int;
  assignment : Spp.Assignment.t;
}

let run ?metrics ?(max_steps = 50_000) ?(use_export_policy = true) topo ~dest ~model
    ~scheduler =
  let inst = Policy.compile topo ~dest in
  let export =
    if use_export_policy then Policy.export_policy topo else Step.export_all
  in
  let messages = ref 0 in
  let r =
    Executor.run_streaming ~export ~validate:model ?metrics ~max_steps
      ~on_step:(fun (s : Trace.step) ->
        messages := !messages + List.length s.Trace.outcome.Step.pushed)
      inst (scheduler inst model)
  in
  {
    converged = r.Executor.stop = Executor.Quiescent;
    steps = r.Executor.steps;
    messages = !messages;
    assignment = State.assignment inst r.Executor.final;
  }

let converges_in_all_models ?max_steps topo ~dest =
  List.for_all
    (fun model ->
      let r = run ?max_steps topo ~dest ~model ~scheduler:Scheduler.round_robin in
      r.converged)
    Model.all
