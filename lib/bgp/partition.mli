(** Edge-cut partitioning of an AS topology into K shards.

    The sharded simulator ({!Shard}) gives each shard its own worker and
    batches announcements that cross shard boundaries, so the partition
    quality — balanced shard sizes, few cut edges — directly controls both
    load balance and cross-partition traffic.

    The partitioner is deterministic in [seed]: farthest-point BFS seeding
    picks K spread-out roots, then balanced greedy BFS growth assigns every
    node to the smallest eligible shard, ties broken by shard id. *)

type t

val make : ?seed:int -> shards:int -> Topology.t -> t
(** Raises [Invalid_argument] if [shards < 1] or exceeds the node count. *)

val shards : t -> int
val topology : t -> Topology.t

val owner : t -> Spp.Path.node -> int
(** The shard owning that node; total over all nodes. *)

val members : t -> int -> Spp.Path.node list
(** Ascending node ids of one shard; every node appears in exactly one
    shard. *)

val size_of : t -> int -> int

val border : t -> (Spp.Path.node * Spp.Path.node) list
(** Directed cut edges [(u, v)] with [owner u <> owner v] and [u, v]
    adjacent — both directions of each cut link appear.  Sorted. *)

val cut_edges : t -> int
(** Number of undirected topology links whose endpoints live in different
    shards. *)

val cut_fraction : t -> float
(** [cut_edges / total links]; 0 on a linkless topology. *)

val imbalance : t -> float
(** [max shard size / ideal size] where ideal = n/K; 1.0 is perfect. *)

val pp : Format.formatter -> t -> unit
