(** End-to-end BGP convergence simulation on the execution engine. *)

type result = {
  converged : bool;
  steps : int;  (** activation steps until quiescence (or the step limit) *)
  messages : int;  (** total route announcements written to channels *)
  assignment : Spp.Assignment.t;
}

val run :
  ?metrics:Engine.Metrics.t ->
  ?max_steps:int ->
  ?use_export_policy:bool ->
  Topology.t ->
  dest:Spp.Path.node ->
  model:Engine.Model.t ->
  scheduler:(Spp.Instance.t -> Engine.Model.t -> Engine.Scheduler.t) ->
  result
(** Compiles the topology under Gao–Rexford policies and runs the routing
    algorithm on the streaming executor — memory stays O(network state)
    however long the run, instead of O(trace).  [use_export_policy]
    (default true) applies the export rules at announcement time as real
    BGP does.  With [metrics], steps and messages are counted and the wall
    time lands in the "executor" phase. *)

val converges_in_all_models :
  ?max_steps:int -> Topology.t -> dest:Spp.Path.node -> bool
(** Round-robin convergence in each of the 24 models. *)
