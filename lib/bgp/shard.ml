open Engine

type batching = Per_epoch | Every of int

type config = {
  model : Model.t;
  shards : int;
  batching : batching;
  workers : int;
  max_epochs : int;
  lossy_every : int;
  seed : int;
}

let default_config =
  {
    model = { Model.rel = Reliable; nbr = N_multi; msg = M_some };
    shards = 4;
    batching = Per_epoch;
    workers = 1;
    max_epochs = 1_000_000;
    lossy_every = 0;
    seed = 0;
  }

let batching_of_model (m : Model.t) =
  match m.msg with
  | M_all | M_forced -> Per_epoch
  | M_some -> Every 4
  | M_one -> Every 1

let lossy_of_model (m : Model.t) = match m.rel with Reliable -> 0 | Unreliable -> 3

let config_for ?(shards = 4) ?(workers = 1) ?batching model =
  let batching = match batching with Some b -> b | None -> batching_of_model model in
  {
    default_config with
    model;
    shards;
    workers;
    batching;
    lossy_every = lossy_of_model model;
  }

type result = {
  converged : bool;
  epochs : int;
  activations : int;
  messages : int;
  cross_messages : int;
  flushes : int;
  drops : int;
  routes : Spp.Arena.id array;
  partition : Partition.t;
  pool_engaged : bool;
}

(* Gao-Rexford preference rank of a route by the relationship with its
   first hop. *)
let rank = function Topology.Customer -> 0 | Topology.Peer -> 1 | Topology.Provider -> 2

(* Who a route may be exported to. *)
type export_scope = No_route | All | Customers_only

let run ?metrics cfg topo ~dest =
  let n = Topology.size topo in
  if dest < 0 || dest >= n then invalid_arg "Shard.run: dest out of range";
  if (match cfg.batching with Every k -> k < 1 | Per_epoch -> false) then
    invalid_arg "Shard.run: batch size < 1";
  Metrics.timed ?m:metrics "shard" @@ fun () ->
  let part = Partition.make ~seed:cfg.seed ~shards:cfg.shards topo in
  let shards = cfg.shards in
  (* Per-node adjacency snapshots: neighbor ids (ascending), how the node
     sees each neighbor, and for neighbor i the index of the node in that
     neighbor's own row (so a delivery is one array write, no search). *)
  let nbrs = Array.init n (fun v -> Array.of_list (Topology.neighbors topo v)) in
  let rel =
    Array.init n (fun v ->
        Array.map
          (fun u ->
            match Topology.relationship topo ~of_:v u with
            | Some r -> r
            | None -> assert false)
          nbrs.(v))
  in
  let slot_of w v =
    (* index of [v] in [nbrs.(w)] (ascending) *)
    let row = nbrs.(w) in
    let rec search lo hi =
      let mid = (lo + hi) / 2 in
      if row.(mid) = v then mid else if row.(mid) < v then search (mid + 1) hi else search lo mid
    in
    search 0 (Array.length row)
  in
  let back = Array.init n (fun v -> Array.map (fun w -> slot_of w v) nbrs.(v)) in
  (* Routing state.  [rib_in.(v).(i)]: the last announcement received from
     neighbor [nbrs.(v).(i)] (epsilon = none/withdrawn).  [chosen.(v)]: the
     route currently selected and announced. *)
  let eps = Spp.Arena.epsilon in
  let rib_in = Array.init n (fun v -> Array.make (Array.length nbrs.(v)) eps) in
  let chosen = Array.make n eps in
  let trivial = Spp.Arena.of_nodes [ dest ] in
  (* Per-shard worklists of dirty nodes and cross-partition outboxes.
     During the parallel phase a shard touches only its own nodes' state,
     its own worklist and its own outbox; rib_in rows of other shards are
     written exclusively by the sequential barrier drain. *)
  let wl = Array.init shards (fun _ -> Queue.create ()) in
  let dirty = Array.make n false in
  let outbox : (int * int * Spp.Arena.id) Queue.t array =
    Array.init shards (fun _ -> Queue.create ())
  in
  let acts = Array.make shards 0 in
  let msgs = Array.make shards 0 in
  let cross = Array.make shards 0 in
  let flushes = ref 0 and drops = ref 0 and lossy_count = ref 0 in
  let enqueue v =
    if not dirty.(v) then begin
      dirty.(v) <- true;
      Queue.add v wl.(Partition.owner part v)
    end
  in
  let deliver w slot route =
    if rib_in.(w).(slot) <> route then begin
      rib_in.(w).(slot) <- route;
      enqueue w
    end
  in
  let export_scope v p =
    if Spp.Arena.is_epsilon p then No_route
    else
      match Spp.Arena.to_nodes p with
      | [ _ ] -> All (* the destination's trivial route: Origin class *)
      | _ :: u :: _ -> (
        match rel.(v).(slot_of v u) with
        | Topology.Customer -> All
        | Topology.Peer | Topology.Provider -> Customers_only)
      | [] -> No_route
  in
  let effective scope rel_to_nbr p =
    match scope with
    | No_route -> eps
    | All -> p
    | Customers_only -> if rel_to_nbr = Topology.Customer then p else eps
  in
  (* Announce a route change to every neighbor whose effective view of the
     node changed (the engine's Step.apply push rule); the destination
     never receives. *)
  let announce s v ~old ~now =
    let scope_old = export_scope v old and scope_now = export_scope v now in
    let row = nbrs.(v) and rels = rel.(v) and backs = back.(v) in
    for i = 0 to Array.length row - 1 do
      let w = row.(i) in
      if w <> dest then begin
        let eff_old = effective scope_old rels.(i) old in
        let eff_now = effective scope_now rels.(i) now in
        if eff_old <> eff_now then begin
          msgs.(s) <- msgs.(s) + 1;
          if Partition.owner part w = s then deliver w backs.(i) eff_now
          else begin
            cross.(s) <- cross.(s) + 1;
            Queue.add (w, backs.(i), eff_now) outbox.(s)
          end
        end
      end
    done
  in
  let select v =
    (* Best simple extension of the received announcements: an exported
       route is valley-free by induction on the export chain, so v.p is
       permitted iff it is simple. *)
    let row = nbrs.(v) and rels = rel.(v) and rib = rib_in.(v) in
    let best = ref eps and best_rank = ref max_int and best_len = ref max_int in
    for i = 0 to Array.length row - 1 do
      let r = rib.(i) in
      if (not (Spp.Arena.is_epsilon r)) && not (Spp.Arena.contains v r) then begin
        let rk = rank rels.(i) and len = 1 + Spp.Arena.length r in
        let better =
          rk < !best_rank
          || (rk = !best_rank
             && (len < !best_len
                || (len = !best_len
                   && compare (v :: Spp.Arena.to_nodes r) (Spp.Arena.to_nodes !best) < 0)))
        in
        if better then begin
          best := Spp.Arena.extend v r;
          best_rank := rk;
          best_len := len
        end
      end
    done;
    !best
  in
  let activate s v =
    if v = dest then begin
      if Spp.Arena.is_epsilon chosen.(dest) then begin
        chosen.(dest) <- trivial;
        announce s dest ~old:eps ~now:trivial
      end
    end
    else begin
      let now = select v in
      let old = chosen.(v) in
      if now <> old then begin
        chosen.(v) <- now;
        announce s v ~old ~now
      end
    end
  in
  let phase s =
    let cap =
      match cfg.batching with
      | Every k -> k
      | Per_epoch ->
        (* run the shard's cascade to (bounded) exhaustion *)
        max 64 (16 * Partition.size_of part s)
    in
    let processed = ref 0 in
    while !processed < cap && not (Queue.is_empty wl.(s)) do
      let v = Queue.pop wl.(s) in
      dirty.(v) <- false;
      activate s v;
      incr processed
    done;
    acts.(s) <- acts.(s) + !processed
  in
  let drain s =
    if not (Queue.is_empty outbox.(s)) then begin
      incr flushes;
      let batch = Array.make (Queue.length outbox.(s)) (0, 0, eps) in
      let i = ref 0 in
      while not (Queue.is_empty outbox.(s)) do
        batch.(!i) <- Queue.pop outbox.(s);
        incr i
      done;
      (* The newest message per (dst, slot) channel always survives a lossy
         flush, so drops shed traffic without changing the fixpoint. *)
      let last = Hashtbl.create 64 in
      Array.iteri (fun i (w, slot, _) -> Hashtbl.replace last (w, slot) i) batch;
      Array.iteri
        (fun i (w, slot, route) ->
          let dropped =
            cfg.lossy_every > 0
            && Hashtbl.find last (w, slot) <> i
            && begin
                 incr lossy_count;
                 !lossy_count mod cfg.lossy_every = 0
               end
          in
          if dropped then incr drops else deliver w slot route)
        batch
    end
  in
  (* Epoch 1 activates everyone. *)
  for s = 0 to shards - 1 do
    List.iter
      (fun v ->
        dirty.(v) <- true;
        Queue.add v wl.(s))
      (Partition.members part s)
  done;
  let workers = max 1 (min cfg.workers shards) in
  let pool_engaged = ref false in
  let parallel_phase () =
    if workers > 1 then begin
      pool_engaged := true;
      Pool.run (Pool.get ()) ~workers (fun wid ->
          let s = ref wid in
          while !s < shards do
            phase !s;
            s := !s + workers
          done)
    end
    else
      for s = 0 to shards - 1 do
        phase s
      done
  in
  let quiet () =
    let q = ref true in
    for s = 0 to shards - 1 do
      if not (Queue.is_empty wl.(s)) then q := false
    done;
    !q
  in
  let rec loop epoch =
    if epoch > cfg.max_epochs then (epoch - 1, false)
    else begin
      parallel_phase ();
      for s = 0 to shards - 1 do
        drain s
      done;
      if quiet () then (epoch, true) else loop (epoch + 1)
    end
  in
  let epochs, converged = loop 1 in
  let total a = Array.fold_left ( + ) 0 a in
  (match metrics with
  | None -> ()
  | Some m ->
    Metrics.add_steps m (total acts);
    Metrics.add_messages m (total msgs));
  {
    converged;
    epochs;
    activations = total acts;
    messages = total msgs;
    cross_messages = total cross;
    flushes = !flushes;
    drops = !drops;
    routes = Array.copy chosen;
    partition = part;
    pool_engaged = !pool_engaged;
  }

let assignment inst r =
  Spp.Assignment.of_list inst
    (Array.to_list
       (Array.mapi (fun v id -> (v, Spp.Arena.path id)) r.routes))

let route_digest r =
  let b = Buffer.create (8 * Array.length r.routes) in
  Array.iteri
    (fun v id ->
      Buffer.add_string b (string_of_int v);
      Buffer.add_char b ':';
      List.iter
        (fun u ->
          Buffer.add_string b (string_of_int u);
          Buffer.add_char b ',')
        (Spp.Arena.to_nodes id);
      Buffer.add_char b ';')
    r.routes;
  Digest.to_hex (Digest.string (Buffer.contents b))

let pp_result ppf r =
  Fmt.pf ppf
    "@[<v>sharded run: %s after %d epochs@,\
    \  %d activations, %d messages (%d cross-shard, %d flushes, %d dropped)@,\
    \  %d shards, cut %d links, pool %s@]"
    (if r.converged then "converged" else "did NOT converge")
    r.epochs r.activations r.messages r.cross_messages r.flushes r.drops
    (Partition.shards r.partition)
    (Partition.cut_edges r.partition)
    (if r.pool_engaged then "engaged" else "idle")
