type t = {
  topo : Topology.t;
  shards : int;
  owner : int array;
  members : int array array; (* per shard, ascending node ids *)
  border : (int * int) list; (* directed cut edges, sorted *)
  cut_edges : int;
}

let shards t = t.shards
let topology t = t.topo
let owner t v = t.owner.(v)
let members t s = Array.to_list t.members.(s)
let size_of t s = Array.length t.members.(s)

let border t = t.border
let cut_edges t = t.cut_edges

let cut_fraction t =
  let total = List.length (Topology.edges t.topo) in
  if total = 0 then 0.0 else float_of_int t.cut_edges /. float_of_int total

let imbalance t =
  let n = Topology.size t.topo in
  let ideal = float_of_int n /. float_of_int t.shards in
  let biggest = Array.fold_left (fun acc m -> max acc (Array.length m)) 0 t.members in
  float_of_int biggest /. ideal

(* Multi-source BFS distance from a seed set; unreached nodes stay at
   max_int.  Used by farthest-point seeding. *)
let distances topo seeds =
  let n = Topology.size topo in
  let dist = Array.make n max_int in
  let q = Queue.create () in
  List.iter
    (fun s ->
      dist.(s) <- 0;
      Queue.add s q)
    seeds;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun v ->
        if dist.(v) = max_int then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v q
        end)
      (Topology.neighbors topo u)
  done;
  dist

let make ?(seed = 0) ~shards topo =
  let n = Topology.size topo in
  if shards < 1 then invalid_arg "Partition.make: shards < 1";
  if shards > n then invalid_arg "Partition.make: more shards than nodes";
  (* Farthest-point seeding: the first root is seed-selected; each further
     root maximizes BFS distance to the roots already chosen (unreached
     components count as infinitely far), ties broken by lowest id. *)
  let roots = ref [ ((seed mod n) + n) mod n ] in
  for _ = 2 to shards do
    let dist = distances topo !roots in
    let best = ref (-1) and best_d = ref (-1) in
    for v = 0 to n - 1 do
      let d = dist.(v) in
      if d > !best_d && not (List.mem v !roots) then begin
        best := v;
        best_d := d
      end
    done;
    roots := !best :: !roots
  done;
  let roots = Array.of_list (List.rev !roots) in
  (* Balanced greedy BFS growth: repeatedly the smallest shard with a
     non-empty frontier claims the next node off its queue.  Nodes already
     claimed by another shard are dropped lazily.  If every frontier dries
     up while nodes remain (disconnected topology), the smallest shard is
     re-seeded with the lowest unassigned node. *)
  let owner = Array.make n (-1) in
  let sizes = Array.make shards 0 in
  let frontier = Array.init shards (fun _ -> Queue.create ()) in
  let assigned = ref 0 in
  let claim s v =
    owner.(v) <- s;
    sizes.(s) <- sizes.(s) + 1;
    incr assigned;
    List.iter
      (fun u -> if owner.(u) = -1 then Queue.add u frontier.(s))
      (Topology.neighbors topo v)
  in
  Array.iteri (fun s r -> claim s r) roots;
  let next_unassigned = ref 0 in
  while !assigned < n do
    (* Smallest shard with work; ties by shard id. *)
    let pick = ref (-1) in
    for s = shards - 1 downto 0 do
      if not (Queue.is_empty frontier.(s)) then
        if !pick = -1 || sizes.(s) <= sizes.(!pick) then pick := s
    done;
    match !pick with
    | -1 ->
      while owner.(!next_unassigned) <> -1 do
        incr next_unassigned
      done;
      let smallest = ref 0 in
      for s = 1 to shards - 1 do
        if sizes.(s) < sizes.(!smallest) then smallest := s
      done;
      claim !smallest !next_unassigned
    | s ->
      let v = Queue.pop frontier.(s) in
      if owner.(v) = -1 then claim s v
  done;
  let members = Array.init shards (fun s -> Array.make sizes.(s) 0) in
  let fill = Array.make shards 0 in
  for v = 0 to n - 1 do
    let s = owner.(v) in
    members.(s).(fill.(s)) <- v;
    fill.(s) <- fill.(s) + 1
  done;
  let border = ref [] and cut = ref 0 in
  List.iter
    (fun (a, b, _) ->
      if owner.(a) <> owner.(b) then begin
        incr cut;
        border := (a, b) :: (b, a) :: !border
      end)
    (Topology.edges topo);
  let border = List.sort compare !border in
  { topo; shards; owner; members; border; cut_edges = !cut }

let pp ppf t =
  Fmt.pf ppf "@[<v>partition: %d shards over %d ASes@," t.shards (Topology.size t.topo);
  Array.iteri
    (fun s m -> Fmt.pf ppf "  shard %d: %d nodes@," s (Array.length m))
    t.members;
  Fmt.pf ppf "  cut: %d links (%.1f%%), imbalance %.2f@]" t.cut_edges
    (100.0 *. cut_fraction t) (imbalance t)
