type kind = Provider_customer | Peer_peer
type relationship = Customer | Peer | Provider

(* Adjacency is stored sparsely: per node, neighbor ids sorted ascending
   with the parallel relationship view.  The seed's dense size x size
   relationship matrix capped topologies at a few hundred ASes (10k nodes
   would be 10^8 option cells); per-node arrays keep lookup O(log degree)
   and memory O(V + E), which is what lets generate_scaled reach 10k-100k
   nodes. *)
type t = {
  size : int;
  names : string array;
  links : (int * int * kind) list;
  adj_ids : int array array; (* adj_ids.(v): neighbor ids, ascending *)
  adj_rel : relationship array array; (* adj_rel.(v).(i): how v sees adj_ids.(v).(i) *)
}

let size t = t.size
let names t = t.names
let name t v = t.names.(v)
let edges t = t.links

let relationship t ~of_ v =
  let ids = t.adj_ids.(of_) in
  let rec search lo hi =
    if lo >= hi then None
    else
      let mid = (lo + hi) / 2 in
      let u = ids.(mid) in
      if u = v then Some t.adj_rel.(of_).(mid)
      else if u < v then search (mid + 1) hi
      else search lo mid
  in
  if of_ = v then None else search 0 (Array.length ids)

let neighbors t v = Array.to_list t.adj_ids.(v)
let degree t v = Array.length t.adj_ids.(v)

(* Provider-customer links must form a DAG.  The DFS recursion depth is the
   longest provider chain, which is the tier depth (3 for the generators);
   hand-built topologies are small. *)
let check_acyclic size links =
  let down = Array.make size [] in
  List.iter
    (fun (p, c, k) -> if k = Provider_customer then down.(p) <- c :: down.(p))
    links;
  let color = Array.make size 0 in
  let rec visit v =
    color.(v) <- 1;
    List.iter
      (fun c ->
        if color.(c) = 1 then invalid_arg "Topology: provider-customer cycle";
        if color.(c) = 0 then visit c)
      down.(v);
    color.(v) <- 2
  in
  for v = 0 to size - 1 do
    if color.(v) = 0 then visit v
  done

let make ~names ~links =
  let size = Array.length names in
  let check v = if v < 0 || v >= size then invalid_arg "Topology: node out of range" in
  let deg = Array.make size 0 in
  let seen = Hashtbl.create (2 * List.length links) in
  List.iter
    (fun (a, b, _) ->
      check a;
      check b;
      if a = b then invalid_arg "Topology: self-link";
      let key = if a < b then (a, b) else (b, a) in
      if Hashtbl.mem seen key then invalid_arg "Topology: duplicate link";
      Hashtbl.add seen key ();
      deg.(a) <- deg.(a) + 1;
      deg.(b) <- deg.(b) + 1)
    links;
  check_acyclic size links;
  let adj_ids = Array.init size (fun v -> Array.make deg.(v) 0) in
  let adj_rel = Array.init size (fun v -> Array.make deg.(v) Peer) in
  let fill = Array.make size 0 in
  let add v u r =
    adj_ids.(v).(fill.(v)) <- u;
    adj_rel.(v).(fill.(v)) <- r;
    fill.(v) <- fill.(v) + 1
  in
  List.iter
    (fun (a, b, k) ->
      match k with
      | Provider_customer ->
        add a b Customer;
        (* a sees b as its customer *)
        add b a Provider
      | Peer_peer ->
        add a b Peer;
        add b a Peer)
    links;
  (* Sort each adjacency row by neighbor id, keeping the relationship
     parallel. *)
  for v = 0 to size - 1 do
    let paired =
      Array.init (Array.length adj_ids.(v)) (fun i -> (adj_ids.(v).(i), adj_rel.(v).(i)))
    in
    Array.sort (fun (a, _) (b, _) -> compare a b) paired;
    Array.iteri
      (fun i (u, r) ->
        adj_ids.(v).(i) <- u;
        adj_rel.(v).(i) <- r)
      paired
  done;
  { size; names; links; adj_ids; adj_rel }

let digest t =
  let b = Buffer.create (16 * t.size) in
  Array.iter
    (fun n ->
      Buffer.add_string b n;
      Buffer.add_char b '\x00')
    t.names;
  List.iter
    (fun (a, bnode, k) ->
      Buffer.add_string b (string_of_int a);
      Buffer.add_char b (match k with Provider_customer -> '>' | Peer_peer -> '-');
      Buffer.add_string b (string_of_int bnode);
      Buffer.add_char b '\x00')
    t.links;
  Digest.to_hex (Digest.string (Buffer.contents b))

type config = { tier1 : int; tier2 : int; stubs : int; seed : int }

let default_config = { tier1 = 2; tier2 = 3; stubs = 4; seed = 7 }

let generate cfg =
  if cfg.tier1 < 1 || cfg.tier2 < 1 || cfg.stubs < 1 then
    invalid_arg "Topology.generate: each tier needs at least one AS";
  let rng = Random.State.make [| cfg.seed; 0xbb9 |] in
  let n = cfg.tier1 + cfg.tier2 + cfg.stubs in
  let names =
    Array.init n (fun i ->
        if i < cfg.tier1 then Printf.sprintf "T%d" (i + 1)
        else if i < cfg.tier1 + cfg.tier2 then Printf.sprintf "M%d" (i - cfg.tier1 + 1)
        else Printf.sprintf "S%d" (i - cfg.tier1 - cfg.tier2 + 1))
  in
  let links = ref [] in
  (* Tier-1 full mesh of peering. *)
  for a = 0 to cfg.tier1 - 1 do
    for b = a + 1 to cfg.tier1 - 1 do
      links := (a, b, Peer_peer) :: !links
    done
  done;
  (* Each mid-tier AS buys transit from 1-2 tier-1s; occasional peering
     between mid-tier ASes. *)
  let mids = List.init cfg.tier2 (fun i -> cfg.tier1 + i) in
  List.iter
    (fun m ->
      let p1 = Random.State.int rng cfg.tier1 in
      links := (p1, m, Provider_customer) :: !links;
      if cfg.tier1 > 1 && Random.State.bool rng then begin
        let p2 = (p1 + 1 + Random.State.int rng (cfg.tier1 - 1)) mod cfg.tier1 in
        links := (p2, m, Provider_customer) :: !links
      end)
    mids;
  List.iteri
    (fun i m ->
      List.iteri
        (fun j m' ->
          if j > i && Random.State.int rng 3 = 0 then
            links := (m, m', Peer_peer) :: !links)
        mids)
    mids;
  (* Stubs are customers of 1-2 mid-tier (or occasionally tier-1) ASes. *)
  for s = cfg.tier1 + cfg.tier2 to n - 1 do
    let pick () =
      if Random.State.int rng 5 = 0 then Random.State.int rng cfg.tier1
      else cfg.tier1 + Random.State.int rng cfg.tier2
    in
    let p1 = pick () in
    links := (p1, s, Provider_customer) :: !links;
    if Random.State.bool rng then begin
      let p2 = pick () in
      if p2 <> p1 then links := (p2, s, Provider_customer) :: !links
    end
  done;
  make ~names ~links:!links

type scaled_config = {
  s_tier1 : int;
  s_tier2 : int;
  s_stubs : int;
  s_peer_links : int;
  s_seed : int;
}

let default_scaled_config =
  { s_tier1 = 10; s_tier2 = 490; s_stubs = 9_500; s_peer_links = 200; s_seed = 11 }

(* The internet-scale generator.  Same three-tier Gao-Rexford shape as
   [generate] but built for 10k-100k nodes:

   - links accumulate in per-node buckets instead of one list scan, so
     duplicate avoidance is O(1) per attempt;
   - stub -> tier-2 attachment is preferential (Barabasi-Albert style urn:
     one base ticket per provider plus one ticket per customer already
     won), producing the power-law provider-degree distribution of the
     measured AS graph rather than [generate]'s uniform one;
   - tier-2 peering is a fixed budget of random mid-mid links, not the
     O(tier2^2) coin-flip sweep.

   Deterministic in [s_seed]. *)
let generate_scaled cfg =
  if cfg.s_tier1 < 1 || cfg.s_tier2 < 1 || cfg.s_stubs < 1 then
    invalid_arg "Topology.generate_scaled: each tier needs at least one AS";
  if cfg.s_peer_links < 0 then invalid_arg "Topology.generate_scaled: negative peer budget";
  let rng = Random.State.make [| cfg.s_seed; 0x5ca1ed |] in
  let n = cfg.s_tier1 + cfg.s_tier2 + cfg.s_stubs in
  let names =
    Array.init n (fun i ->
        if i < cfg.s_tier1 then Printf.sprintf "T%d" (i + 1)
        else if i < cfg.s_tier1 + cfg.s_tier2 then Printf.sprintf "M%d" (i - cfg.s_tier1 + 1)
        else Printf.sprintf "S%d" (i - cfg.s_tier1 - cfg.s_tier2 + 1))
  in
  let links = ref [] in
  let linked = Hashtbl.create (4 * n) in
  let link a b k =
    let key = if a < b then (a, b) else (b, a) in
    if a <> b && not (Hashtbl.mem linked key) then begin
      Hashtbl.add linked key ();
      links := (a, b, k) :: !links;
      true
    end
    else false
  in
  (* Tier-1: full peering mesh. *)
  for a = 0 to cfg.s_tier1 - 1 do
    for b = a + 1 to cfg.s_tier1 - 1 do
      ignore (link a b Peer_peer)
    done
  done;
  (* Tier-2: one or two tier-1 providers each, uniform. *)
  let t2_lo = cfg.s_tier1 in
  for m = t2_lo to t2_lo + cfg.s_tier2 - 1 do
    let p1 = Random.State.int rng cfg.s_tier1 in
    ignore (link p1 m Provider_customer);
    if cfg.s_tier1 > 1 && Random.State.bool rng then begin
      let p2 = (p1 + 1 + Random.State.int rng (cfg.s_tier1 - 1)) mod cfg.s_tier1 in
      ignore (link p2 m Provider_customer)
    end
  done;
  (* Tier-2 peering: a budget of random mid-mid links. *)
  if cfg.s_tier2 > 1 then begin
    let placed = ref 0 and attempts = ref 0 in
    let budget = min cfg.s_peer_links (cfg.s_tier2 * (cfg.s_tier2 - 1) / 2) in
    while !placed < budget && !attempts < 20 * budget do
      incr attempts;
      let a = t2_lo + Random.State.int rng cfg.s_tier2 in
      let b = t2_lo + Random.State.int rng cfg.s_tier2 in
      if link a b Peer_peer then incr placed
    done
  end;
  (* Stubs: 1-2 tier-2 providers, preferential attachment.  The urn holds
     one ticket per tier-2 AS plus one per stub it has already won, so the
     provider-degree distribution follows a power law. *)
  let urn = ref (Array.init cfg.s_tier2 (fun i -> t2_lo + i)) in
  let urn_len = ref cfg.s_tier2 in
  let urn_push p =
    if !urn_len = Array.length !urn then begin
      let bigger = Array.make (2 * !urn_len) 0 in
      Array.blit !urn 0 bigger 0 !urn_len;
      urn := bigger
    end;
    !urn.(!urn_len) <- p;
    incr urn_len
  in
  let s_lo = t2_lo + cfg.s_tier2 in
  for s = s_lo to n - 1 do
    let p1 = !urn.(Random.State.int rng !urn_len) in
    ignore (link p1 s Provider_customer);
    urn_push p1;
    if Random.State.int rng 3 = 0 then begin
      let p2 = !urn.(Random.State.int rng !urn_len) in
      if link p2 s Provider_customer then urn_push p2
    end
  done;
  make ~names ~links:(List.rev !links)

let pp ppf t =
  Fmt.pf ppf "@[<v>AS topology (%d ASes)@," t.size;
  List.iter
    (fun (a, b, k) ->
      match k with
      | Provider_customer -> Fmt.pf ppf "  %s -> %s (provider-customer)@," t.names.(a) t.names.(b)
      | Peer_peer -> Fmt.pf ppf "  %s -- %s (peering)@," t.names.(a) t.names.(b))
    t.links;
  Fmt.pf ppf "@]"
