(** Topology events: link failure and re-convergence.

    When a BGP session dies, both endpoints immediately discard the routes
    learned over it and the network must re-converge from its current
    state — not from scratch.  This module performs the corresponding state
    surgery (drop the dead channels and the knowledge they carried, keep
    everything else, stale routes included) and measures re-convergence
    under a communication model. *)

type event = {
  instance : Spp.Instance.t;  (** the network after the failure *)
  state : Engine.State.t;  (** the surgically adjusted starting state *)
}

val sever :
  Topology.t ->
  dest:Spp.Path.node ->
  state:Engine.State.t ->
  link:Spp.Path.node * Spp.Path.node ->
  Topology.t * event
(** Removes the (existing) link and maps the given state onto the new
    compiled instance.  Raises [Invalid_argument] if the link does not
    exist. *)

type reconvergence = {
  converged : bool;
  steps : int;
  messages : int;
  rerouted : int;  (** nodes whose final route differs from before the event *)
  lost : int;  (** nodes that end with no route *)
  assignment : Spp.Assignment.t;
}

val reconverge :
  ?metrics:Engine.Metrics.t ->
  ?max_steps:int ->
  event ->
  before:Spp.Assignment.t ->
  model:Engine.Model.t ->
  reconvergence
(** Runs the fair round-robin schedule of the model from the event state
    (with Gao–Rexford export semantics applied by the compiled instance's
    permitted sets), on the streaming executor — O(state) memory however
    long the re-convergence takes. *)
