open Spp

type route_class = Customer_route | Peer_route | Provider_route | Origin

let route_class topo v p =
  match Path.to_nodes p with
  | [] -> None
  | [ v' ] -> if v = v' then Some Origin else None
  | v' :: next :: _ ->
    if v <> v' then None
    else
      (match Topology.relationship topo ~of_:v next with
      | Some Topology.Customer -> Some Customer_route
      | Some Topology.Peer -> Some Peer_route
      | Some Topology.Provider -> Some Provider_route
      | None -> None)

let exports topo v p ~to_ =
  match route_class topo v p with
  | None -> false
  | Some Origin | Some Customer_route -> true
  | Some (Peer_route | Provider_route) ->
    (* only to customers *)
    Topology.relationship topo ~of_:v to_ = Some Topology.Customer

(* A path [v; ...; dest] is usable iff every node along it would export its
   suffix to its predecessor. *)
let usable topo p =
  let rec check = function
    | pred :: (next :: _ as suffix_nodes) ->
      let suffix = Path.of_nodes suffix_nodes in
      exports topo next suffix ~to_:pred && check suffix_nodes
    | [ _ ] | [] -> true
  in
  check (Path.to_nodes p)

let class_rank = function
  | Origin -> -1
  | Customer_route -> 0
  | Peer_route -> 1
  | Provider_route -> 2

let gr_permitted topo ~dest v =
  if v = dest then [ Path.of_nodes [ dest ] ]
  else begin
    let acc = ref [] in
    let rec explore rev_path u =
      if u = dest then begin
        let p = Path.of_nodes (List.rev rev_path) in
        if usable topo p then acc := p :: !acc
      end
      else
        List.iter
          (fun w -> if not (List.mem w rev_path) then explore (w :: rev_path) w)
          (Topology.neighbors topo u)
    in
    explore [ v ] v;
    List.sort
      (fun p q ->
        let key p =
          let c = match route_class topo v p with Some c -> class_rank c | None -> 9 in
          (c, Path.length p, Path.to_nodes p)
        in
        compare (key p) (key q))
      !acc
  end

let labeled_graph topo ~dest =
  let label = function
    | Topology.Customer -> Algebra.label_customer
    | Topology.Peer -> Algebra.label_peer
    | Topology.Provider -> Algebra.label_provider
  in
  let links =
    List.map
      (fun (a, b, k) ->
        match k with
        | Topology.Provider_customer -> (a, b, label Topology.Customer, label Topology.Provider)
        | Topology.Peer_peer -> (a, b, label Topology.Peer, label Topology.Peer))
      (Topology.edges topo)
  in
  { Algebra.names = Topology.names topo; dest; links }

let compile topo ~dest =
  let n = Topology.size topo in
  let edges =
    List.filter_map
      (fun (a, b, _) -> if a < b then Some (a, b) else Some (b, a))
      (Topology.edges topo)
  in
  let permitted =
    List.filter_map
      (fun v ->
        if v = dest then None
        else Some (v, List.map Path.to_nodes (gr_permitted topo ~dest v)))
      (List.init n Fun.id)
  in
  Instance.make ~names:(Topology.names topo) ~dest ~edges ~permitted

let export_policy topo ~src ~dst p = exports topo src p ~to_:dst
