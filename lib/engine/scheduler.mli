(** Fair activation-sequence generators for each communication model
    (Def. 2.4: every node tries to read every channel infinitely often, and
    every dropped message is eventually followed by a non-dropped one). *)

type t = {
  entries : Activation.t Seq.t;  (** possibly infinite *)
  period : int option;
      (** for cyclic schedules, the cycle length, enabling sound divergence
          detection in {!Executor} *)
  description : string;
}

val round_robin : Spp.Instance.t -> Model.t -> t
(** The canonical deterministic fair schedule: nodes in id order; under
    E/M models one entry per node reading all its channels, under 1 models
    one entry per (node, channel) pair.  Message counts are maximal for the
    model; no messages are dropped (legal in both R and U models). *)

val random : Spp.Instance.t -> Model.t -> seed:int -> t
(** A randomized schedule, fair by construction: any channel left unread
    for too long forces an activation that reads it, and under unreliable
    models a channel whose last processed message was dropped is eventually
    read without drops.  Deterministic in [seed]. *)

val polling_nodes : Spp.Instance.t -> Spp.Path.node list -> t
(** The REA-style scripted schedule of Ex. A.2, A.4, A.5: each listed node
    polls all messages from all its channels. *)

val of_entries : ?period:int -> Activation.t list -> t
(** A finite scripted schedule (or, with [period] equal to the list length,
    one whose executor may treat as repeating). *)

val cycle : Activation.t list -> t
(** Repeats the given entries forever; [period] is the list length.
    Raises [Invalid_argument] on an empty list. *)

val prefixed : Activation.t list -> Activation.t list -> t
(** [prefixed prefix cycle] plays [prefix] once and then repeats [cycle]
    forever.  Raises [Invalid_argument] when [cycle] is empty.  The declared period is the cycle length, which is sound for
    divergence detection as long as states repeating one cycle apart are
    compared at equal phases (they are: phase is the step index modulo the
    period). *)

val prefix : int -> t -> Activation.t list
(** The first [n] entries, for inspection and fairness checks. *)
