(** Crash-safe checkpoints of an exploration in progress, plus the atomic
    file writer every committed artifact goes through.

    A snapshot captures the sequential explorer's full progress — the
    interned states (index = state id), the adjacency rows expanded so
    far, the frontier queue, the [pruned]/[truncated] flags and the
    {!Metrics} counters — in a versioned, digest-checksummed file written
    atomically (temp file + [Sys.rename]), so a kill, OOM or CI timeout
    mid-run never leaves a corrupt or half-written checkpoint behind.
    Resuming from the file reproduces the bit-identical graph an
    uninterrupted run would have produced (see
    {!Modelcheck.Explore.explore}).

    Routes are serialized {e structurally} (as node lists), not as
    {!Spp.Arena.id}s: arena ids are canonical only within a process, so
    the loader re-interns every path reachable from the snapshot into the
    resuming process's arena and rebuilds each state through the public
    {!State} API (digests are recomputed incrementally as always).  Node
    ids are used as-is, guarded by an instance fingerprint: loading a
    snapshot against a different instance is a typed error, not silent
    corruption.

    File layout (schema ["commrouting/snapshot/v2"], documented in
    EXPERIMENTS.md): one header line [<magic> <md5-hex> <payload-bytes>]
    followed by the JSON payload.  The loader verifies length and
    checksum before parsing, so truncation and bit-rot are rejected with
    a typed {!error} — never an [assert]/[failwith], never a half-loaded
    value.  v2 additionally records which state-space reduction produced
    the graph (resuming under a different reduction must be refused — the
    reduced graph is not a prefix of the unreduced one) and the
    reduction counters. *)

val magic : string
(** ["commrouting/snapshot/v2"]. *)

(** Why a checkpoint failed to load.  Every constructor carries the file
    path, so the offending artifact is identifiable from the rendered
    message alone. *)
type error =
  | Io of { path : string; message : string }
      (** the file cannot be read at all *)
  | Bad_magic of { path : string; found : string }
      (** not a snapshot file, or an unsupported schema version *)
  | Truncated of { path : string; expected : int; got : int }
      (** payload shorter (or longer) than the header promised *)
  | Checksum_mismatch of { path : string }
      (** payload bytes do not hash to the header's digest *)
  | Parse of { path : string; context : string; message : string }
      (** structurally invalid payload; [context] locates the field,
          e.g. ["states[12].chans[0]"] *)
  | Mismatch of { path : string; what : string; expected : string; got : string }
      (** a valid snapshot for the wrong instance or configuration *)

val error_to_string : error -> string
val pp_error : Format.formatter -> error -> unit

val write_atomic : string -> string -> unit
(** [write_atomic path contents] writes [contents] to
    [path ^ ".tmp.<pid>.<domain>.<seq>"], fsyncs it, renames it over
    [path], then fsyncs the containing directory (best effort), so
    concurrent readers (and any crash mid-write, or a power cut right
    after the call) see either the old complete file or the new complete
    file, never a prefix and never a hole.  The temp name is unique per
    writer — pid {e and} domain id {e and} a process-wide counter — so
    two domains of one process writing the same path cannot clobber each
    other's partial writes.  Raises [Sys_error] on I/O failure (the temp
    file is removed). *)

val framed : magic:string -> string -> string
(** [framed ~magic payload] is the checksummed on-disk framing every
    snapshot-format artifact uses: one header line
    [<magic> <md5-hex> <payload-bytes>] followed by the payload verbatim.
    {!read_framed} is its total inverse. *)

val read_framed : magic:string -> string -> (Metrics.Json.v, error) result
(** Read a {!framed} file: verify the magic, the promised payload length
    and the checksum, then parse the payload as JSON.  Total — any
    truncation, corruption or foreign file is a typed [Error]; nothing
    raises.  The building block for other framed stores (the query
    service's result cache among them). *)

val fingerprint : Spp.Instance.t -> string
(** Hex digest of the instance's names, destination, edges and ranked
    permitted paths; two instances with equal fingerprints serialize
    states identically. *)

(** {1 Exploration snapshots} *)

type label = {
  entry : Activation.t;
  l_reads : Channel.id list;
  l_drops : Channel.id list;
  l_cleans : Channel.id list;
}
(** An edge label: the activation entry plus the enumeration bookkeeping
    ({!Modelcheck.Enumerate.labeled} mirrored with engine-level types, so
    the engine does not depend on modelcheck). *)

type edge = { dst : int; label : label }

type counters = {
  interned : int;
  dedup : int;
  edges : int;
  pruned_writes : int;
  truncated_interns : int;
  peak_frontier : int;
  ample : int;  (** states expanded through a proper ample subset (POR) *)
  canonicalized : int;  (** interns rewritten to an orbit representative *)
}
(** The {!Metrics} counters accumulated by the exploration so far; restored
    into the resuming run's metrics so a resumed artifact is
    counter-identical to an uninterrupted one. *)

type t = {
  channel_bound : int;
  max_states : int;  (** the {!Modelcheck.Explore.config} in effect *)
  reduction : string;
      (** the {!Modelcheck.Reduce.t} that produced the graph, as its
          [to_string] form ("none", "por", "sym"); resuming under a
          different reduction is refused by the explorer *)
  states : State.t array;  (** every interned state, index = state id *)
  rows : (int * edge list) list;
      (** adjacency rows of the states expanded so far, newest first *)
  frontier : int list;  (** state ids still queued, front of the queue first *)
  pruned : bool;
  truncated : bool;
  counters : counters;
}

val save : path:string -> Spp.Instance.t -> t -> unit
(** Serialize, checksum and {!write_atomic}.  Raises [Sys_error] on I/O
    failure. *)

val load : path:string -> Spp.Instance.t -> (t, error) result
(** Read, verify magic + length + checksum, parse, validate against the
    instance's {!fingerprint}, and rebuild every state and label in the
    current process.  Total: any byte prefix or corruption of a valid
    file, and any well-formed snapshot of a different instance, is an
    [Error]; no exception escapes. *)

(** {1 Frontier chunks}

    The on-disk unit of {!Modelcheck.Explore}'s disk-spilled frontier: an
    ordered run of (state id, state) queue items, framed and checksummed
    exactly like a snapshot (own magic ["commrouting/frontier/v1"]) and
    sharing its path-table + state codec, so the two formats cannot
    drift. *)

val chunk_magic : string
(** ["commrouting/frontier/v1"]. *)

val save_chunk : path:string -> Spp.Instance.t -> (int * State.t) list -> unit
(** Atomically write one frontier chunk.  Raises [Sys_error] on I/O
    failure. *)

val load_chunk :
  path:string -> Spp.Instance.t -> ((int * State.t) list, error) result
(** Load a chunk written by {!save_chunk}, preserving item order.  Total,
    like {!load}. *)
