(** Multi-node activations (footnote 1, Ex. A.6, and Sec. 5 of the paper).

    The taxonomy of Sec. 2.2 fixes |U| = 1; these helpers lift a model's
    per-node dimensions to steps that activate several nodes at once, in
    the two regimes the paper names: every node per step (synchronous) and
    unrestricted non-empty sets.

    Like {!Hetero}, this module is typed against {!Spp.Instance.t}, so a
    non-path-vector protocol cannot reach it: the generic counterparts are
    {!Generic.Make}'s [validates_multi] and [synchronous]. *)

type regime = Synchronous | Unrestricted

val validates : Spp.Instance.t -> regime -> Model.t -> Activation.t -> bool
(** Each active node's reads must satisfy the model's per-node neighbor and
    message dimensions; [Synchronous] additionally requires U = V. *)

val synchronous_polling : Spp.Instance.t -> Scheduler.t
(** The classic synchronous schedule: every step, every node polls all
    messages from all its channels (the multi-node REA).  Its rounds
    compute exactly the simultaneous best-response iteration of
    {!Spp.Solver.greedy}. *)

val synchronous : Spp.Instance.t -> Model.t -> Scheduler.t
(** Every node activates each step, reading all its channels with the
    model's maximal message count. *)
