type reliability = Reliable | Unreliable
type neighbors = N_one | N_multi | N_every
type messages = M_one | M_some | M_forced | M_all
type t = { rel : reliability; nbr : neighbors; msg : messages }

let make rel nbr msg = { rel; nbr; msg }

let all =
  (* Row order of Figures 3 and 4: for each reliability, messages dimension
     major (O, S, F, A), neighbors minor (1, M, E). *)
  List.concat_map
    (fun rel ->
      List.concat_map
        (fun msg -> List.map (fun nbr -> { rel; nbr; msg }) [ N_one; N_multi; N_every ])
        [ M_one; M_some; M_forced; M_all ])
    [ Reliable; Unreliable ]

let reliable = List.filter (fun m -> m.rel = Reliable) all
let unreliable = List.filter (fun m -> m.rel = Unreliable) all

let to_string m =
  let r = match m.rel with Reliable -> "R" | Unreliable -> "U" in
  let n = match m.nbr with N_one -> "1" | N_multi -> "M" | N_every -> "E" in
  let y = match m.msg with M_one -> "O" | M_some -> "S" | M_forced -> "F" | M_all -> "A" in
  r ^ n ^ y

let of_string s =
  (* Accept surrounding whitespace and any case — model names arrive from
     CLI flags and env vars, so "rms" and " R1O " must work — but never
     raise: anything that is not a 3-letter model name is None. *)
  let s = String.uppercase_ascii (String.trim s) in
  if String.length s <> 3 then None
  else
    let rel =
      match s.[0] with 'R' -> Some Reliable | 'U' -> Some Unreliable | _ -> None
    in
    let nbr =
      match s.[1] with
      | '1' -> Some N_one
      | 'M' -> Some N_multi
      | 'E' -> Some N_every
      | _ -> None
    in
    let msg =
      match s.[2] with
      | 'O' -> Some M_one
      | 'S' -> Some M_some
      | 'F' -> Some M_forced
      | 'A' -> Some M_all
      | _ -> None
    in
    match (rel, nbr, msg) with
    | Some rel, Some nbr, Some msg -> Some { rel; nbr; msg }
    | _ -> None

let pp ppf m = Fmt.string ppf (to_string m)
let equal (a : t) b = a = b
let compare (a : t) b = compare a b
let is_polling m = m.msg = M_all
let is_message_passing m = m.msg = M_one
let is_queueing m = m.nbr = N_multi && m.msg = M_some

let rel_includes a b = match (a, b) with
  | Unreliable, _ | Reliable, Reliable -> true
  | Reliable, Unreliable -> false

let nbr_includes a b =
  match (a, b) with
  | N_multi, _ -> true
  | (N_one | N_every), _ -> a = b

let msg_includes a b =
  match (a, b) with
  | M_some, _ -> true
  | M_forced, (M_one | M_all | M_forced) -> true
  | M_forced, M_some -> false
  | (M_one | M_all), _ -> a = b

let includes a b =
  rel_includes a.rel b.rel && nbr_includes a.nbr b.nbr && msg_includes a.msg b.msg

let required_channels inst v =
  if v = Spp.Instance.dest inst then []
  else
    List.map (fun u -> Channel.id ~src:u ~dst:v) (Spp.Instance.neighbors inst v)

type violation =
  | Ill_formed of Activation.error
  | Not_single_node
  | Wrong_channel_set
  | Wrong_count of Channel.id
  | Drop_on_reliable of Channel.id

let pp_violation inst ppf = function
  | Ill_formed e -> Activation.pp_error inst ppf e
  | Not_single_node -> Fmt.string ppf "exactly one node must update per step"
  | Wrong_channel_set -> Fmt.string ppf "channel set violates the neighbors dimension"
  | Wrong_count c ->
    Fmt.pf ppf "message count on %a violates the messages dimension" (Channel.pp_id inst) c
  | Drop_on_reliable c ->
    Fmt.pf ppf "message dropped on reliable channel %a" (Channel.pp_id inst) c

(* Per-node checks shared by the single- and multi-node validators, and —
   via [required] — by the protocol-generic engine ({!Generic}), whose
   notion of "the channels node [v] must read" comes from the protocol
   rather than from an {!Spp.Instance}.  [reads] are the reads whose
   receiver is [v]. *)
let node_violations_for ~required m (reads : Activation.read list) =
  let errs = ref [] in
  let add e = errs := e :: !errs in
  (match m.nbr with
  | N_one ->
    (* A node with no readable in-channels (the SPP destination under the
       untracked-inbox convention) activates with no reads as the
       canonical form of its (no-op) channel processing. *)
    if List.length reads <> 1 && not (required = [] && reads = []) then
      add Wrong_channel_set
  | N_multi -> ()
  | N_every ->
    let present = List.map (fun (r : Activation.read) -> r.chan) reads in
    let sort = List.sort Channel.compare_id in
    if sort required <> sort present then add Wrong_channel_set);
  List.iter
    (fun (r : Activation.read) ->
      (match (m.msg, r.count) with
      | M_one, Activation.Finite 1 -> ()
      | M_one, _ -> add (Wrong_count r.chan)
      | M_all, Activation.All -> ()
      | M_all, _ -> add (Wrong_count r.chan)
      | M_forced, (Activation.All | Activation.Finite _) ->
        (match r.count with
        | Activation.Finite n when n < 1 -> add (Wrong_count r.chan)
        | _ -> ())
      | M_some, _ -> ());
      if m.rel = Reliable && not (Activation.IntSet.is_empty r.drops) then
        add (Drop_on_reliable r.chan))
    reads;
  List.rev !errs

let node_violations inst m v reads =
  node_violations_for ~required:(required_channels inst v) m reads

let violations inst m (a : Activation.t) =
  let base = List.map (fun e -> Ill_formed e) (Activation.well_formed inst a) in
  let single =
    match a.Activation.active with
    | [ v ] -> node_violations inst m v a.Activation.reads
    | _ -> [ Not_single_node ]
  in
  base @ single

let validates inst m a = violations inst m a = []

let validates_multi inst m (a : Activation.t) =
  Activation.well_formed inst a = []
  && a.Activation.active <> []
  && List.for_all
       (fun v ->
         let reads =
           List.filter
             (fun (r : Activation.read) -> r.chan.Channel.dst = v)
             a.Activation.reads
         in
         node_violations inst m v reads = [])
       a.Activation.active
