(** Running activation sequences against an instance. *)

type stop =
  | Quiescent
      (** all channels empty and every node's choice equals its announced
          route: the execution has converged (Def. 2.5) *)
  | Cycle of { first : int; period : int }
      (** the full network state repeated at the same schedule phase: under
          a cyclic schedule the execution provably oscillates forever *)
  | Exhausted  (** ran out of entries or reached [max_steps] *)

val pp_stop : Format.formatter -> stop -> unit

type run = { trace : Trace.t; stop : stop }

val run :
  ?export:Step.export ->
  ?validate:Model.t ->
  ?metrics:Metrics.t ->
  ?max_steps:int ->
  Spp.Instance.t ->
  Scheduler.t ->
  run
(** Applies the scheduler's entries until quiescence, a state/phase cycle
    (only detected when the scheduler declares a period), exhaustion of the
    sequence, or [max_steps] (default 10_000).  With [validate], every entry
    is checked against the model first and [Invalid_argument] is raised on a
    violation.  With [metrics], steps and pushed messages are counted and
    the wall time is recorded as an "executor" phase. *)

val run_from :
  ?export:Step.export ->
  ?validate:Model.t ->
  ?metrics:Metrics.t ->
  ?max_steps:int ->
  state:State.t ->
  Spp.Instance.t ->
  Scheduler.t ->
  run
(** Like {!run} but starting from an arbitrary state (e.g. a converged
    network after a topology or policy event). *)

type streamed = { final : State.t; stop : stop; steps : int }
(** [steps] is the number of activation entries applied. *)

val run_streaming :
  ?export:Step.export ->
  ?validate:Model.t ->
  ?metrics:Metrics.t ->
  ?max_steps:int ->
  ?state:State.t ->
  ?on_step:(Trace.step -> unit) ->
  Spp.Instance.t ->
  Scheduler.t ->
  streamed
(** The loop of {!run} without trace retention: each applied step is handed
    to [on_step] (if given) and then forgotten, so a run over millions of
    steps uses memory proportional to one state rather than to the whole
    execution.  [state] defaults to {!State.initial}.  Stop conditions,
    model validation and metrics recording are identical to {!run} —
    {!run_from} is implemented on this loop with an accumulating
    [on_step].  (For periodic schedules the cycle-detection table still
    retains one state per step, the price of sound divergence detection;
    schedules with [period = None] detect no cycles and retain nothing.) *)

val run_entries :
  ?export:Step.export ->
  ?validate:Model.t ->
  ?metrics:Metrics.t ->
  Spp.Instance.t ->
  Activation.t list ->
  Trace.t
(** Runs a finite scripted sequence to its end (no early stop). *)

val converges :
  ?export:Step.export -> ?max_steps:int -> Spp.Instance.t -> Scheduler.t -> bool
(** True iff {!run} stops with {!Quiescent}. *)
