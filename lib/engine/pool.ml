(* A persistent pool of parked worker domains.  Each worker owns a mutex +
   condition variable and a one-slot job mailbox; assigning a job is
   lock/store/signal, so the steady-state cost of a parallel region is a
   few syscalls instead of Domain.spawn's all-domain rendezvous. *)

type job = unit -> unit

type worker = {
  wmu : Mutex.t;
  wcond : Condition.t;
  mutable job : job option; (* full while a job is assigned or running *)
}

type stats = { size : int; spawned_total : int; runs : int }

type t = {
  mu : Mutex.t; (* guards [workers], [spawned_total], [runs] *)
  mutable workers : worker list; (* newest first; length = size *)
  mutable spawned_total : int;
  mutable runs : int;
}

let max_workers = 62

let create () = { mu = Mutex.create (); workers = []; spawned_total = 0; runs = 0 }

let the_pool = create ()
let get () = the_pool

let size t =
  Mutex.lock t.mu;
  let n = List.length t.workers in
  Mutex.unlock t.mu;
  n

let stats t : stats =
  Mutex.lock t.mu;
  let s =
    { size = List.length t.workers; spawned_total = t.spawned_total; runs = t.runs }
  in
  Mutex.unlock t.mu;
  s

(* Set in every pool domain: a job that itself calls [run] must not wait
   on pool mailboxes (possibly its own — deadlock); it degrades to inline
   sequential execution instead. *)
let in_worker = Domain.DLS.new_key (fun () -> false)

(* The worker loop never exits: parked domains cost one OS thread each and
   are reclaimed by process exit (they hold no resources needing cleanup,
   and the OCaml runtime tears down blocked domains on exit). *)
let worker_loop w () =
  Domain.DLS.set in_worker true;
  let rec loop () =
    Mutex.lock w.wmu;
    while w.job = None do
      Condition.wait w.wcond w.wmu
    done;
    let job = Option.get w.job in
    Mutex.unlock w.wmu;
    (* The job closure owns exception capture and completion signalling. *)
    job ();
    Mutex.lock w.wmu;
    w.job <- None;
    (* Wake a caller waiting in [assign] for this worker to free up. *)
    Condition.broadcast w.wcond;
    Mutex.unlock w.wmu;
    loop ()
  in
  loop ()

let spawn_worker t =
  let w = { wmu = Mutex.create (); wcond = Condition.create (); job = None } in
  t.spawned_total <- t.spawned_total + 1;
  ignore (Domain.spawn (worker_loop w) : unit Domain.t);
  w

(* Hand [job] to [w], waiting (briefly) if the worker is still finishing a
   job from a concurrent run.  [wcond] multiplexes two predicates (worker
   waiting for a job, other [assign] callers waiting for the slot), so the
   wakeup must be a broadcast: a signal could land on a waiting assigner
   instead of the parked worker, leaving the job assigned but never run. *)
let assign w job =
  Mutex.lock w.wmu;
  while w.job <> None do
    Condition.wait w.wcond w.wmu
  done;
  w.job <- Some job;
  Condition.broadcast w.wcond;
  Mutex.unlock w.wmu

let run t ~workers f =
  let workers = min workers (max_workers + 1) in
  if workers <= 1 then f 0
  else if Domain.DLS.get in_worker then
    (* Re-entrant call from inside a pool job: run the instances inline.
       Work-stealing callers remain correct — later instances observe the
       work already drained by earlier ones and return immediately. *)
    for i = 0 to workers - 1 do
      f i
    done
  else begin
    let n = workers - 1 in
    Mutex.lock t.mu;
    let missing = n - List.length t.workers in
    if missing > 0 then
      for _ = 1 to missing do
        t.workers <- spawn_worker t :: t.workers
      done;
    let chosen = List.filteri (fun i _ -> i < n) t.workers in
    t.runs <- t.runs + 1;
    Mutex.unlock t.mu;
    let lmu = Mutex.create () and lcond = Condition.create () in
    let remaining = ref n in
    let error = ref None in
    List.iteri
      (fun i w ->
        let idx = i + 1 in
        assign w (fun () ->
            (try f idx
             with e ->
               Mutex.lock lmu;
               if !error = None then error := Some e;
               Mutex.unlock lmu);
            Mutex.lock lmu;
            decr remaining;
            if !remaining = 0 then Condition.signal lcond;
            Mutex.unlock lmu))
      chosen;
    let caller_error = (try f 0; None with e -> Some e) in
    Mutex.lock lmu;
    while !remaining > 0 do
      Condition.wait lcond lmu
    done;
    Mutex.unlock lmu;
    match (caller_error, !error) with
    | Some e, _ | None, Some e -> raise e
    | None, None -> ()
  end
