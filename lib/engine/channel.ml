type id = { src : Spp.Path.node; dst : Spp.Path.node }

let id ~src ~dst = { src; dst }
let reverse c = { src = c.dst; dst = c.src }
let compare_id (a : id) b = compare a b
let equal_id (a : id) b = a = b

let pp_id inst ppf c =
  Fmt.pf ppf "(%s,%s)" (Spp.Instance.name inst c.src) (Spp.Instance.name inst c.dst)

module Map = Map.Make (struct
  type t = id

  let compare = compare_id
end)

type contents = Spp.Arena.id list
type t = contents Map.t

let empty = Map.empty
let get t c = match Map.find_opt c t with Some l -> l | None -> []
let get_paths t c = List.map Spp.Arena.path (get t c)
let length t c = List.length (get t c)

let push t c msg =
  Map.update c (function None -> Some [ msg ] | Some l -> Some (l @ [ msg ])) t

let push_path t c p = push t c (Spp.Arena.intern p)

let drop_first t c i =
  if i <= 0 then t
  else
    let rec drop n = function
      | l when n = 0 -> l
      | [] -> []
      | _ :: rest -> drop (n - 1) rest
    in
    match drop i (get t c) with [] -> Map.remove c t | l -> Map.add c l t

let total_messages t = Map.fold (fun _ l acc -> acc + List.length l) t 0
let max_occupancy t = Map.fold (fun _ l acc -> max acc (List.length l)) t 0
let bindings = Map.bindings
let bindings_paths t = List.map (fun (c, l) -> (c, List.map Spp.Arena.path l)) (bindings t)
