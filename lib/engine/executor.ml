type stop = Quiescent | Cycle of { first : int; period : int } | Exhausted

let pp_stop ppf = function
  | Quiescent -> Fmt.string ppf "quiescent"
  | Cycle { first; period } -> Fmt.pf ppf "cycle (first seen at step %d, period %d)" first period
  | Exhausted -> Fmt.string ppf "exhausted"

type run = { trace : Trace.t; stop : stop }

let check_model inst model entry =
  match model with
  | None -> ()
  | Some m ->
    if not (Model.validates inst m entry) then
      invalid_arg
        (Fmt.str "Executor: entry %a violates model %a" (Activation.pp inst) entry
           Model.pp m)

let record_outcome metrics (outcome : Step.outcome) =
  match metrics with
  | None -> ()
  | Some m ->
    Metrics.incr_steps m;
    Metrics.add_messages m (List.length outcome.Step.pushed)

type streamed = { final : State.t; stop : stop; steps : int }

(* The one executor loop.  Nothing is retained across iterations except the
   current state (and, for periodic schedules, the cycle-detection table),
   so memory stays O(state) no matter how many steps run — the callers that
   need a full trace accumulate it themselves through [on_step]. *)
let run_streaming ?export ?validate ?metrics ?(max_steps = 10_000) ?state ?on_step
    inst (sched : Scheduler.t) =
  let init = match state with Some s -> s | None -> State.initial inst in
  (* Cycle detection: remember states per schedule phase. *)
  let seen : (int * State.t, int) Hashtbl.t = Hashtbl.create 97 in
  let rec loop index state entries =
    if index > max_steps then { final = state; stop = Exhausted; steps = index - 1 }
    else
      match Seq.uncons entries with
      | None -> { final = state; stop = Exhausted; steps = index - 1 }
      | Some (entry, rest) ->
        check_model inst validate entry;
        let outcome = Step.apply ?export inst state entry in
        record_outcome metrics outcome;
        (match on_step with
        | None -> ()
        | Some f -> f { Trace.index; entry; outcome });
        let state' = outcome.Step.state in
        if State.is_quiescent inst state' then
          { final = state'; stop = Quiescent; steps = index }
        else begin
          match sched.Scheduler.period with
          | Some p when p > 0 -> (
            let key = (index mod p, state') in
            match Hashtbl.find_opt seen key with
            | Some first ->
              { final = state'; stop = Cycle { first; period = index - first }; steps = index }
            | None ->
              Hashtbl.add seen key index;
              loop (index + 1) state' rest)
          | _ -> loop (index + 1) state' rest
        end
  in
  Metrics.timed ?m:metrics "executor" (fun () -> loop 1 init sched.Scheduler.entries)

let run_from ?export ?validate ?metrics ?max_steps ~state inst sched =
  let acc = ref [] in
  let r =
    run_streaming ?export ?validate ?metrics ?max_steps ~state
      ~on_step:(fun s -> acc := s :: !acc)
      inst sched
  in
  { trace = Trace.make inst state (List.rev !acc); stop = r.stop }

let run ?export ?validate ?metrics ?max_steps inst sched =
  run_from ?export ?validate ?metrics ?max_steps ~state:(State.initial inst) inst sched

let run_entries ?export ?validate ?metrics inst entries =
  let init = State.initial inst in
  let _, _, steps =
    List.fold_left
      (fun (state, index, acc) entry ->
        check_model inst validate entry;
        let outcome = Step.apply ?export inst state entry in
        record_outcome metrics outcome;
        (outcome.Step.state, index + 1, { Trace.index; entry; outcome } :: acc))
      (init, 1, []) entries
  in
  Trace.make inst init (List.rev steps)

let converges ?export ?max_steps inst sched =
  match (run ?export ?max_steps inst sched).stop with
  | Quiescent -> true
  | Cycle _ | Exhausted -> false
