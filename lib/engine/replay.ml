open Spp

let count_str = function
  | Activation.All -> "all"
  | Activation.Finite n -> string_of_int n

let read_str inst (r : Activation.read) =
  let drops =
    if Activation.IntSet.is_empty r.Activation.drops then ""
    else
      "\\"
      ^ String.concat ","
          (List.map string_of_int (Activation.IntSet.elements r.Activation.drops))
  in
  Printf.sprintf "%s:%s%s"
    (Instance.name inst r.Activation.chan.Channel.src)
    (count_str r.Activation.count) drops

let print_entry inst (e : Activation.t) =
  match e.Activation.active with
  | [ v ] ->
    Printf.sprintf "%s <- %s" (Instance.name inst v)
      (String.concat " " (List.map (read_str inst) e.Activation.reads))
  | actives ->
    String.concat " "
      (List.map
         (fun v ->
           let reads =
             List.filter
               (fun (r : Activation.read) -> r.Activation.chan.Channel.dst = v)
               e.Activation.reads
           in
           Printf.sprintf "%s[%s]" (Instance.name inst v)
             (String.concat " " (List.map (read_str inst) reads)))
         actives)

let print inst entries = String.concat "\n" (List.map (print_entry inst) entries) ^ "\n"

let ( let* ) = Result.bind

let parse_count s =
  if s = "all" then Ok Activation.All
  else
    match int_of_string_opt s with
    | Some n when n >= 0 -> Ok (Activation.Finite n)
    | _ -> Error (Printf.sprintf "bad message count %S" s)

let parse_read inst ~dst token =
  let token, drops =
    match String.index_opt token '\\' with
    | None -> (token, Ok [])
    | Some i ->
      let spec = String.sub token (i + 1) (String.length token - i - 1) in
      let drops =
        List.fold_left
          (fun acc d ->
            let* acc = acc in
            match int_of_string_opt d with
            | Some n -> Ok (n :: acc)
            | None -> Error (Printf.sprintf "bad drop index %S" d))
          (Ok [])
          (String.split_on_char ',' spec)
      in
      (String.sub token 0 i, drops)
  in
  let* drops = drops in
  match String.split_on_char ':' token with
  | [ src; count ] -> (
    let* count = parse_count count in
    match Instance.find_node inst src with
    | src -> Ok (Activation.read ~drops ~count (Channel.id ~src ~dst))
    | exception Not_found -> Error (Printf.sprintf "unknown node %S" src))
  | _ -> Error (Printf.sprintf "bad read %S (want source:count)" token)

let words s =
  String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

let rec collect_reads inst ~dst acc = function
  | [] -> Ok (List.rev acc)
  | tok :: rest ->
    let* r = parse_read inst ~dst tok in
    collect_reads inst ~dst (r :: acc) rest

let parse_single inst line =
  match String.index_opt line '<' with
  | Some i when i + 1 < String.length line && line.[i + 1] = '-' ->
    let node = String.trim (String.sub line 0 i) in
    let rest = String.sub line (i + 2) (String.length line - i - 2) in
    (match Instance.find_node inst node with
    | v ->
      let* reads = collect_reads inst ~dst:v [] (words rest) in
      Ok (Some (Activation.single v reads))
    | exception Not_found -> Error (Printf.sprintf "unknown node %S" node))
  | _ -> Error "expected '<-'"

let parse_multi inst line =
  (* tokens of the form name[reads...] possibly containing spaces inside
     the brackets; scan manually. *)
  let len = String.length line in
  let rec scan i acc =
    if i >= len then Ok (List.rev acc)
    else if line.[i] = ' ' then scan (i + 1) acc
    else
      match String.index_from_opt line i '[' with
      | None -> Error "expected 'node[...]'"
      | Some lb -> (
        match String.index_from_opt line lb ']' with
        | None -> Error "missing ']'"
        | Some rb ->
          let name = String.trim (String.sub line i (lb - i)) in
          let inner = String.sub line (lb + 1) (rb - lb - 1) in
          (match Instance.find_node inst name with
          | v ->
            let* reads = collect_reads inst ~dst:v [] (words inner) in
            scan (rb + 1) ((v, reads) :: acc)
          | exception Not_found -> Error (Printf.sprintf "unknown node %S" name)))
  in
  let* groups = scan 0 [] in
  if groups = [] then Ok None
  else
    Ok
      (Some
         (Activation.entry
            ~active:(List.map fst groups)
            ~reads:(List.concat_map snd groups)))

let parse_entry inst line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let line = String.trim line in
  if line = "" then Ok None
  else if String.contains line '[' then parse_multi inst line
  else parse_single inst line

let parse inst text =
  let lines = String.split_on_char '\n' text in
  let rec loop acc lineno = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
      match parse_entry inst line with
      | Ok None -> loop acc (lineno + 1) rest
      | Ok (Some e) -> loop (e :: acc) (lineno + 1) rest
      | Error e -> Error (Printf.sprintf "line %d: %s" lineno e))
  in
  loop [] 1 lines

let save inst ~path entries = Snapshot.write_atomic path (print inst entries)

let load inst ~path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse inst text
  | exception Sys_error e -> Error e
