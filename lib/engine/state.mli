(** Network state (Def. 2.1): path assignments π, known routes ρ, and
    channel contents, plus the last-announced route of each node (the
    interpretation of step 4 of Def. 2.3 described in DESIGN.md).

    Values are immutable and normalized — epsilon routes and empty channels
    are never stored — so structural equality and hashing are semantic.

    Internally every route is a hash-consed {!Spp.Arena.id}; the [_id]
    accessors and updates below expose that compact view and are the ones
    the engine's hot paths use.  The {!Spp.Path.t}-typed functions are
    materialized views (O(1) thanks to the arena) kept for callers that
    work at pretty-print or analysis boundaries. *)

type t

val initial : Spp.Instance.t -> t
(** π_d(0) = d, everything else epsilon, all channels empty.  Note that the
    destination has not yet {e announced} its path; its first activation
    injects the initial announcements (Ex. A.1). *)

val pi : t -> Spp.Path.node -> Spp.Path.t
val rho : t -> Channel.id -> Spp.Path.t
val announced : t -> Spp.Path.node -> Spp.Path.t
val channels : t -> Channel.t

val pi_id : t -> Spp.Path.node -> Spp.Arena.id
val rho_id : t -> Channel.id -> Spp.Arena.id
val announced_id : t -> Spp.Path.node -> Spp.Arena.id

val rho_bindings : t -> (Channel.id * Spp.Path.t) list
(** All non-epsilon known routes. *)

val rho_bindings_id : t -> (Channel.id * Spp.Arena.id) list

val assignment : Spp.Instance.t -> t -> Spp.Assignment.t
(** The π component as an assignment. *)

val with_pi : t -> Spp.Path.node -> Spp.Path.t -> t
val with_rho : t -> Channel.id -> Spp.Path.t -> t
val with_announced : t -> Spp.Path.node -> Spp.Path.t -> t

val with_pi_id : t -> Spp.Path.node -> Spp.Arena.id -> t
val with_rho_id : t -> Channel.id -> Spp.Arena.id -> t
val with_announced_id : t -> Spp.Path.node -> Spp.Arena.id -> t

val with_channels : t -> Channel.t -> t

val push_channel : t -> Channel.id -> Spp.Arena.id -> t
(** Append one message to one channel, adjusting the digest and the cached
    occupancy in O(queue length) — the whole-map refold of
    {!with_channels} is skipped. *)

val drop_first_channel : t -> Channel.id -> int -> t
(** Remove the [i] oldest messages of one channel (at most its length),
    with the same single-channel digest/occupancy maintenance as
    {!push_channel}. *)

val max_occupancy : t -> int
(** Length of the longest channel queue, cached: O(1).  Equals
    [Channel.max_occupancy (channels t)]; both explorers consult it on
    every generated successor (the channel-bound prune check). *)

val debug_occupancy_ok : t -> bool
(** [max_occupancy t] agrees with a from-scratch recomputation over
    [channels t].  A debug assertion for the test suite: every mutator
    (including surgery transplants and the reduction canonicalization
    paths, which all funnel through [with_channels]) must keep the cache
    exact. *)

val best_choice : Spp.Instance.t -> t -> Spp.Path.node -> Spp.Path.t
(** The route the node would choose right now (step 3 of Def. 2.3): the most
    preferred permitted extension of its known routes ρ; the trivial path at
    the destination. *)

val best_choice_id : Spp.Instance.t -> t -> Spp.Path.node -> Spp.Arena.id
(** {!best_choice} in the compact representation: one O(1)
    permitted-extension lookup per neighbor. *)

val is_quiescent : Spp.Instance.t -> t -> bool
(** All channels are empty and every node's chosen route equals its
    announced route; no activation can change any component from such a
    state, so the execution has converged. *)

val equal : t -> t -> bool

val compare : t -> t -> int
(** A total order (id-wise, i.e. by intern order of the routes); not the
    structural path order, but stable within a process. *)

val digest : t -> int
(** Constant-time content digest, maintained incrementally by the [with_*]
    updates (each rebinding XORs the affected binding hash in and out).
    Binding hashes mix arena ids, which are canonical process-wide, so
    equal states have equal digests no matter which domain built them.
    Collisions are possible, so use {!equal} to confirm. *)

val hash : t -> int
(** Alias of {!digest}, kept for [Hashtbl.Make] functors. *)

val pp : Spp.Instance.t -> Format.formatter -> t -> unit
