open Spp

type export = src:Path.node -> dst:Path.node -> Path.t -> bool

let export_all ~src:_ ~dst:_ _ = true

type outcome = {
  state : State.t;
  processed : (Channel.id * int) list;
  dropped : (Channel.id * int) list;
  announcements : (Path.node * Path.t) list;
  pushed : (Channel.id * Path.t) list;
}

(* What [src] actually offers to [dst] under the export policy: the path
   itself if exportable, otherwise a withdrawal.  Works on arena ids; the
   policy callback sees the materialized path (O(1)). *)
let effective export ~src ~dst (p : Arena.id) =
  if Arena.is_epsilon p then Arena.epsilon
  else if export ~src ~dst (Arena.path p) then p
  else Arena.epsilon

let apply ?(check = true) ?(export = export_all) inst state (entry : Activation.t) =
  if check then
    (match Activation.well_formed inst entry with
    | [] -> ()
    | e :: _ -> invalid_arg (Fmt.str "Step.apply: %a" (Activation.pp_error inst) e));
  (* Phase 1: process channels. *)
  let processed = ref [] and dropped = ref [] in
  let state =
    List.fold_left
      (fun st (r : Activation.read) ->
        let c = r.chan in
        let contents = Channel.get (State.channels st) c in
        let m = List.length contents in
        let i =
          match r.count with Activation.All -> m | Activation.Finite f -> min f m
        in
        if i = 0 then st
        else begin
          let kept =
            (* Largest index j in 1..i with j not dropped; messages are
               1-based, [contents] is oldest-first. *)
            let rec scan best j = function
              | [] -> best
              | msg :: rest ->
                if j > i then best
                else
                  let best =
                    if Activation.IntSet.mem j r.drops then best else Some msg
                  in
                  scan best (j + 1) rest
            in
            scan None 1 contents
          in
          let n_dropped =
            Activation.IntSet.cardinal
              (Activation.IntSet.filter (fun j -> j >= 1 && j <= i) r.drops)
          in
          processed := (c, i) :: !processed;
          if n_dropped > 0 then dropped := (c, n_dropped) :: !dropped;
          let st =
            match kept with
            | Some msg -> State.with_rho_id st c msg
            | None -> st (* all processed messages dropped: rho unchanged *)
          in
          State.drop_first_channel st c i
        end)
      state entry.Activation.reads
  in
  (* Phase 2: route choices. *)
  let choices =
    List.map (fun v -> (v, State.best_choice_id inst state v)) entry.active
  in
  let state =
    List.fold_left (fun st (v, p) -> State.with_pi_id st v p) state choices
  in
  (* Phase 3: announcements. *)
  let announcements = ref [] in
  let pushed = ref [] in
  let state =
    List.fold_left
      (fun st (v, p) ->
        let old = State.announced_id st v in
        if Arena.equal p old then st
        else begin
          announcements := (v, Arena.path p) :: !announcements;
          let st =
            List.fold_left
              (fun st u ->
                if u = Instance.dest inst then st
                  (* channels into the destination are not tracked *)
                else
                  let eff_new = effective export ~src:v ~dst:u p in
                  let eff_old = effective export ~src:v ~dst:u old in
                  if Arena.equal eff_new eff_old then st
                  else begin
                    let c = Channel.id ~src:v ~dst:u in
                    pushed := (c, Arena.path eff_new) :: !pushed;
                    State.push_channel st c eff_new
                  end)
              st (Instance.neighbors inst v)
          in
          State.with_announced_id st v p
        end)
      state choices
  in
  {
    state;
    processed = List.rev !processed;
    dropped = List.rev !dropped;
    announcements = List.rev !announcements;
    pushed = List.rev !pushed;
  }
