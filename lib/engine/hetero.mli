(** Heterogeneous communication models: a different model per node.

    Sec. 5 of the paper leaves open what happens when, e.g., "some nodes
    poll and others act on messages".  This module makes such mixtures
    first-class: an assignment of one taxonomy model to every node, with
    validation, fair schedulers, and (via {!Modelcheck.Oscillation}'s
    heterogeneous entry points) exhaustive verdicts.

    This module is typed against {!Spp.Instance.t}: applying it to a
    non-path-vector protocol is rejected at compile time, never answered
    wrongly.  For the generic engine, the same per-node mixtures are the
    [?model_of] parameter of {!Generic.Make}'s [validates], [round_robin]
    and [round_robin_lossy]. *)

type t
(** A total assignment of models to nodes. *)

val uniform : Model.t -> t
val of_function : (Spp.Path.node -> Model.t) -> t
val of_list : default:Model.t -> (Spp.Path.node * Model.t) list -> t
val model_of : t -> Spp.Path.node -> Model.t

val validates : Spp.Instance.t -> t -> Activation.t -> bool
(** Exactly one node updates, and its reads satisfy its own model. *)

val round_robin : Spp.Instance.t -> t -> Scheduler.t
(** The canonical fair schedule: like {!Scheduler.round_robin} but with
    each node activated according to its own model. *)

val describe : Spp.Instance.t -> t -> string
