open Spp

let transplant ~old_instance ~new_instance state =
  if Instance.size old_instance <> Instance.size new_instance then
    invalid_arg "Surgery.transplant: instances differ in size";
  let alive (c : Channel.id) =
    Instance.are_adjacent new_instance c.Channel.src c.Channel.dst
  in
  let st = State.initial new_instance in
  let st =
    List.fold_left
      (fun st v ->
        let st = State.with_pi_id st v (State.pi_id state v) in
        State.with_announced_id st v (State.announced_id state v))
      st
      (Instance.nodes new_instance)
  in
  let st =
    List.fold_left
      (fun st (c, r) -> if alive c then State.with_rho_id st c r else st)
      st (State.rho_bindings_id state)
  in
  State.with_channels st (Channel.Map.filter (fun c _ -> alive c) (State.channels state))
