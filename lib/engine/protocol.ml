(* The pluggable-protocol interface (PR 7).

   The paper's question — how does the communication model change
   convergence? — is not specific to path-vector SPP: the activation-entry
   semantics of Defs. 2.2-2.4 (who activates, which channels are read, how
   many messages, which are dropped) never look inside a message.  A
   protocol is therefore a module supplying exactly the parts the engine
   cannot know:

   - the message payload, pre-interned to an [int] id (generalizing what
     {!Spp.Arena} ids do for routes: O(1) equality, digestible, and
     meaningful only to the protocol);
   - per-node local state with equality and a digest;
   - the Def. 2.3-shaped update rule, split into the two phases the engine
     orders: {!S.receive} folds the kept messages of one read into the
     local state (phase 1, in read order), and {!S.update} recomputes the
     node's choice and announces to out-channels (phases 2-3);
   - a convergence predicate replacing SPP quiescence.

   Everything else — the 24 [wxy] activation validators, fairness
   bookkeeping, schedulers, channel queues, state digests, exploration —
   is shared: see {!Generic.Make} and [Modelcheck.Gexplore.Make].
   Path-vector SPP is instance one ([Protocols.Path_vector]); gossip rumor
   spread and push-sum averaging are instances two and three. *)

type node = int

module type S = sig
  val name : string
  (** Short identifier, used in artifacts and error messages. *)

  type instance
  (** The static problem: topology plus whatever the protocol needs
      (rankings, initial values, a rumor source...). *)

  val nodes : instance -> node list
  (** All nodes, ascending.  Node ids are dense small ints. *)

  val node_name : instance -> node -> string

  val in_channels : instance -> node -> Channel.id list
  (** The channels node [v] can read, in canonical (ascending-source)
      order.  An empty list exempts the node from the neighbors-dimension
      read obligations — the SPP destination's untracked inbox is the
      canonical example. *)

  type local
  (** Per-node local state (route assignment + last-heard routes for
      path-vector; infected bit for gossip; (sum, weight) for push-sum). *)

  val initial_local : instance -> node -> local
  val equal_local : local -> local -> bool
  val compare_local : local -> local -> int

  val local_digest : node -> local -> int
  (** Mixed into the state digest; must agree with [equal_local].  Use
      {!Mix.mix3}/{!Mix.mix4} over interned ids. *)

  val observable : instance -> node -> local -> int
  (** Digest of the node's externally observable choice (the route [pi]
      for path-vector).  The divergence analysis only reports a fair cycle
      as divergence when some node's observable changes along it — or when
      the cycle is stuck (see [stuck_is_divergent]). *)

  (* -- messages ---------------------------------------------------- *)

  val pp_msg : instance -> Format.formatter -> int -> unit

  val receive : instance -> node -> local -> src:node -> int list -> local
  (** [receive inst v l ~src kept] folds the kept messages of one read of
      channel [(src, v)] into [l], oldest first.  Called once per read that
      processed at least one message; [kept] excludes dropped messages and
      may be empty (everything processed was dropped). *)

  val update : instance -> node -> local -> local * (Channel.id * int) list
  (** Def. 2.3 phases 2-3 for one activated node: recompute the local
      choice from what was heard, and return the messages to push, in
      push order.  Must only depend on [v]'s own local state (the engine
      may interleave updates of simultaneously active nodes). *)

  (* -- convergence -------------------------------------------------- *)

  val node_converged : instance -> node -> local -> bool

  val drains : bool
  (** Whether global convergence additionally requires every channel to be
      empty (SPP quiescence does; gossip's "all infected" does not). *)

  (* -- exploration hooks -------------------------------------------- *)

  val idempotent : bool
  (** [receive] depends only on the {e last} kept message of a read (true
      for path-vector route announcements and gossip rumors, false for
      push-sum where every message carries mass).  When true, reliable
      polling models admit the exact last-message channel collapse. *)

  val stuck_is_divergent : bool
  (** Whether a fair cycle that changes no observable but from which no
      converged state is reachable counts as divergence.  True for gossip
      (a dropped rumor strands the system un-infected forever); false for
      path-vector, whose legacy oscillation analysis requires a changing
      [pi] — kept bit-compatible by the parity suite. *)

  val project_msg : instance -> dst:node -> int -> int
  (** Observational projection of a queued message as seen by its receiver
      (receiver-relevance, see [Modelcheck.Explore.project_state]).
      Message counts are preserved; only the payload may be coarsened.
      [Fun.id]-like for protocols without a projection. *)

  val project_local : instance -> node -> local -> local

  val pp_local : instance -> node -> Format.formatter -> local -> unit
end
