(** Observability for the execution and model-checking hot paths.

    A [t] is a bag of domain-safe counters (atomics) plus named wall-clock
    phase timers.  One value is typically threaded through an entire
    analysis ({!Modelcheck.Explore} exploration, oscillation analysis, or an
    executor run) and then rendered as JSON for perf tracking
    ([BENCH_explore.json]) or pretty-printed for humans. *)

type t

val create : unit -> t

(** {2 Counters} — safe to call concurrently from several domains. *)

val incr_interned : t -> unit
(** A fresh state was added to the exploration's intern table. *)

val incr_dedup : t -> unit
(** A successor state was already interned (dedup hit). *)

val add_edges : t -> int -> unit
val incr_pruned : t -> unit
(** A successor was discarded because a channel exceeded the bound. *)

val incr_truncated : t -> unit
(** A fresh successor was discarded because [max_states] was reached. *)

val incr_steps : t -> unit
(** One executor step (one activation applied). *)

val add_messages : t -> int -> unit
(** Messages pushed into channels by executor steps. *)

val add_interned : t -> int -> unit
val add_dedup : t -> int -> unit
val add_pruned : t -> int -> unit
val add_truncated : t -> int -> unit
val add_steps : t -> int -> unit
(** Bulk counterparts of the [incr_*] functions above: parallel-explorer
    workers (and the sharded BGP simulator's per-shard workers) accumulate
    in domain-local buffers and merge them here once at join, instead of
    hammering (and false-sharing) the shared atomics from the hot path. *)

val add_ample : t -> int -> unit
(** States expanded with a proper ample subset of their enabled
    activations (partial-order reduction engaged at that state). *)

val add_canonicalized : t -> int -> unit
(** Successor states replaced by a different orbit representative by
    symmetry canonicalization. *)

val set_downgrade : t -> string -> unit
(** Record that the requested execution mode was downgraded (e.g. a
    [DOMAINS]-driven parallel default forced sequential by
    checkpoint/resume).  First write wins; later calls are ignored. *)

val downgrade : t -> string option

val observe_frontier : t -> int -> unit
(** Record the current frontier size; keeps the maximum seen. *)

val set_domains : t -> int -> unit

(** {2 Readers} *)

val states_interned : t -> int
val dedup_hits : t -> int
val edges : t -> int
val pruned_writes : t -> int
val truncated_interns : t -> int
val ample_states : t -> int
val canonicalized : t -> int
val steps : t -> int
val messages : t -> int
val peak_frontier : t -> int
val domains : t -> int

val dedup_rate : t -> float
(** hits / (hits + fresh); 0 when nothing was interned. *)

val states_per_sec : t -> float
(** Fresh states per second of recorded "explore" phase time. *)

(** {2 Phases} *)

val add_phase : t -> string -> float -> unit
val phases : t -> (string * float) list
(** In order of completion; a phase name can repeat. *)

val phase_time : t -> string -> float
(** Total seconds recorded under that name. *)

val timed : ?m:t -> string -> (unit -> 'a) -> 'a
(** Run the thunk, recording its wall time as a phase when [m] is given. *)

(** {2 JSON} *)

module Json : sig
  type v =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | List of v list
    | Obj of (string * v) list

  val to_string : v -> string
  val parse : string -> (v, string) result
  (** Minimal strict parser (ASCII escapes only), enough to validate the
      bench artifacts without an external dependency. *)

  val member : string -> v -> v option
end

val to_json : t -> Json.v
val pp : Format.formatter -> t -> unit
