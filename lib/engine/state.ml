module IMap = Map.Make (Int)
open Spp

(* Each component binding is hashed with a distinct tag and XOR-folded into
   a running digest, so single-binding updates adjust the digest in O(log n)
   instead of rehashing four full [bindings] lists per lookup.  XOR is its
   own inverse: removing a binding re-XORs the same value out.

   Since PR 2 the maps hold {!Spp.Arena.id}s, and the arena is canonical
   within the process: a given path has one id no matter which domain
   interned it.  The binding hashes therefore mix small integers (a
   splitmix-style finalizer, no allocation) instead of structurally hashing
   node lists, and the digest of a given state content is stable across
   domains — which is what lets the parallel explorer shard its intern
   table by digest. *)

let mix3 = Mix.mix3
let mix4 = Mix.mix4

let h_pi v (p : Arena.id) = mix3 0x50 v p
let h_rho (c : Channel.id) (p : Arena.id) = mix4 0x51 c.Channel.src c.Channel.dst p
let h_ann v (p : Arena.id) = mix3 0x52 v p

let h_chan (c : Channel.id) (msgs : Arena.id list) = Mix.h_chan c msgs

type t = {
  pi : Arena.id IMap.t; (* absent = epsilon *)
  rho : Arena.id Channel.Map.t; (* absent = epsilon *)
  ann : Arena.id IMap.t; (* absent = epsilon *)
  chans : Channel.t;
  dig_core : int; (* XOR of binding hashes of pi, rho, ann *)
  dig_chans : int; (* XOR of binding hashes of chans *)
  max_occ : int; (* longest queue in [chans]; 0 when all empty *)
}

let digest t = (t.dig_core lxor t.dig_chans) land max_int
let hash = digest
let max_occupancy t = t.max_occ

(* Digest and longest queue in one pass: both explorers check the channel
   bound on every generated successor, so the occupancy must be cached
   here — rescanning the whole map per edge (the old
   [Channel.max_occupancy] call) doubled the per-successor map walks. *)
let chans_digest_occ chans =
  Channel.Map.fold
    (fun c msgs (dig, occ) -> (dig lxor h_chan c msgs, max occ (List.length msgs)))
    chans (0, 0)

let initial inst =
  let d = Instance.dest inst in
  let p0 = Instance.trivial_id inst in
  {
    pi = IMap.singleton d p0;
    rho = Channel.Map.empty;
    ann = IMap.empty;
    chans = Channel.empty;
    dig_core = h_pi d p0;
    dig_chans = 0;
    max_occ = 0;
  }

let find_i k m = match IMap.find_opt k m with Some p -> p | None -> Arena.epsilon

let pi_id t v = find_i v t.pi
let announced_id t v = find_i v t.ann

let rho_id t c =
  match Channel.Map.find_opt c t.rho with Some p -> p | None -> Arena.epsilon

let pi t v = Arena.path (pi_id t v)
let announced t v = Arena.path (announced_id t v)
let rho t c = Arena.path (rho_id t c)

let channels t = t.chans
let rho_bindings_id t = Channel.Map.bindings t.rho
let rho_bindings t = List.map (fun (c, p) -> (c, Arena.path p)) (rho_bindings_id t)

let assignment inst t = Assignment.make inst (fun v -> pi t v)

(* The digest delta of replacing a binding: XOR out the old hash (if the key
   was bound) and XOR in the new one (unless the new value is epsilon, which
   is not stored). *)
let delta_i h k p old =
  (match old with Some q -> h k q | None -> 0)
  lxor (if Arena.is_epsilon p then 0 else h k p)

let with_pi_id t v p =
  let dig_core = t.dig_core lxor delta_i h_pi v p (IMap.find_opt v t.pi) in
  let pi = if Arena.is_epsilon p then IMap.remove v t.pi else IMap.add v p t.pi in
  { t with pi; dig_core }

let with_rho_id t c p =
  let dig_core = t.dig_core lxor delta_i h_rho c p (Channel.Map.find_opt c t.rho) in
  let rho =
    if Arena.is_epsilon p then Channel.Map.remove c t.rho else Channel.Map.add c p t.rho
  in
  { t with rho; dig_core }

let with_announced_id t v p =
  let dig_core = t.dig_core lxor delta_i h_ann v p (IMap.find_opt v t.ann) in
  let ann = if Arena.is_epsilon p then IMap.remove v t.ann else IMap.add v p t.ann in
  { t with ann; dig_core }

let with_pi t v p = with_pi_id t v (Arena.intern p)
let with_rho t c p = with_rho_id t c (Arena.intern p)
let with_announced t v p = with_announced_id t v (Arena.intern p)

let with_channels t chans =
  if t.chans == chans then t
  else
    let dig_chans, max_occ = chans_digest_occ chans in
    { t with chans; dig_chans; max_occ }

(* Single-channel updates, the engine's hot path (every processed read and
   every announcement push of Step.apply): adjust the digest by XORing one
   channel's binding hash out and in — O(queue length), not O(total
   messages) — and maintain the occupancy cache incrementally.  A push can
   only raise the maximum (to the pushed queue's new length); a drop can
   only lower it, and only when the drained queue was (one of) the longest,
   in which case one rescan recomputes the exact value. *)

let push_channel t c msg =
  let old = Channel.get t.chans c in
  let h_old = h_chan c old in
  let h_new = mix3 0x54 h_old msg in
  let dig_chans =
    t.dig_chans lxor (match old with [] -> 0 | _ -> h_old) lxor h_new
  in
  {
    t with
    chans = Channel.push t.chans c msg;
    dig_chans;
    max_occ = max t.max_occ (List.length old + 1);
  }

let drop_first_channel t c i =
  if i <= 0 then t
  else
    match Channel.get t.chans c with
    | [] -> t
    | old ->
      let old_len = List.length old in
      let chans = Channel.drop_first t.chans c i in
      let kept = Channel.get chans c in
      let dig_chans =
        t.dig_chans lxor h_chan c old
        lxor (match kept with [] -> 0 | _ -> h_chan c kept)
      in
      let max_occ =
        if old_len < t.max_occ then t.max_occ else Channel.max_occupancy chans
      in
      { t with chans; dig_chans; max_occ }

(* Every mutator above either leaves [chans] untouched (max_occ carried
   over), recomputes from scratch ([with_channels]), or maintains the cache
   incrementally with a rescan on the only lowering case
   ([drop_first_channel] of a longest queue).  The test suite pins this
   audit with [debug_occupancy_ok] across random mutator sequences. *)
let debug_occupancy_ok t = t.max_occ = Channel.max_occupancy t.chans

(* The route the node would choose right now: one O(1) permitted-extension
   lookup per neighbor (Instance.ext_tbl), no interning, no list scans. *)
let best_choice_id inst t v =
  if v = Instance.dest inst then Instance.trivial_id inst
  else
    let best =
      List.fold_left
        (fun acc u ->
          let r = rho_id t (Channel.id ~src:u ~dst:v) in
          if Arena.is_epsilon r then acc
          else
            match Instance.permitted_extension inst v r with
            | None -> acc
            | Some (pid, rank) ->
              (match acc with
              | Some (_, s, _) when s < rank -> acc
              | Some (_, s, w) when s = rank && w < u -> acc
              | _ -> Some (pid, rank, u)))
        None (Instance.neighbors inst v)
    in
    match best with None -> Arena.epsilon | Some (pid, _, _) -> pid

let best_choice inst t v = Arena.path (best_choice_id inst t v)

let is_quiescent inst t =
  Channel.Map.is_empty t.chans
  && List.for_all
       (fun v ->
         let p = best_choice_id inst t v in
         Arena.equal p (pi_id t v) && Arena.equal p (announced_id t v))
       (Instance.nodes inst)

let equal (a : t) b =
  a.dig_core = b.dig_core
  && a.dig_chans = b.dig_chans
  && IMap.equal Arena.equal a.pi b.pi
  && Channel.Map.equal Arena.equal a.rho b.rho
  && IMap.equal Arena.equal a.ann b.ann
  && Channel.Map.equal (List.equal Arena.equal) a.chans b.chans

let compare (a : t) b =
  let c = IMap.compare Arena.compare a.pi b.pi in
  if c <> 0 then c
  else
    let c = Channel.Map.compare Arena.compare a.rho b.rho in
    if c <> 0 then c
    else
      let c = IMap.compare Arena.compare a.ann b.ann in
      if c <> 0 then c
      else Channel.Map.compare (List.compare Arena.compare) a.chans b.chans

let pp inst ppf t =
  let pp_path = Instance.pp_path inst in
  Fmt.pf ppf "@[<v>pi: %a@,rho: %a@,queues: %a@]"
    Fmt.(
      list ~sep:(any ", ") (fun ppf v ->
          Fmt.pf ppf "%s:%a" (Instance.name inst v) pp_path (pi t v)))
    (Instance.nodes inst)
    Fmt.(
      list ~sep:(any ", ") (fun ppf (c, p) ->
          Fmt.pf ppf "%a=%a" (Channel.pp_id inst) c pp_path p))
    (rho_bindings t)
    Fmt.(
      list ~sep:(any ", ") (fun ppf (c, msgs) ->
          Fmt.pf ppf "%a=[%a]" (Channel.pp_id inst) c (list ~sep:semi pp_path) msgs))
    (Channel.bindings_paths t.chans)
