(* The protocol-generic engine core (PR 7).

   [Make (P)] instantiates the Def. 2.2-2.4 execution semantics for any
   {!Protocol.S}: channel queues of interned message ids, per-node local
   state, XOR-folded incremental digests (the same {!Mix} algebra as the
   path-vector hot path), the three-phase activation step of Def. 2.3, a
   convergence-detecting executor with cycle detection, model validation
   parametric in the protocol's channel sets, and the batch-MRAI timed
   wrapper.  The concrete SPP stack ({!State}/{!Step}/{!Executor}) is kept
   as the specialized hot path — [Protocols.Path_vector] adapts it onto
   this interface, and the parity suite pins the two to identical verdicts
   and state counts.

   Schedulers, activation entries, the 24-model taxonomy and {!Pool} are
   shared as-is: none of them ever inspect a message payload.

   OCaml functors are applicative, so [Make (Protocols.Gossip).State.t]
   names the same type at every application site — callers can apply the
   functor wherever convenient without threading a module around. *)

module IMap = Map.Make (Int)

module Make (P : Protocol.S) = struct
  module P = P

  (* ---------------------------------------------------------------- *)
  (* State: per-node locals plus channel queues, with the digest kept
     incrementally exactly like the SPP [State] (XOR of per-binding
     hashes; XOR is its own inverse, so replacing one binding is O(1)
     beyond the map update). *)

  module State = struct
    type t = {
      locals : P.local IMap.t; (* total: every node of the instance is bound *)
      chans : Channel.t;
      dig_locals : int;
      dig_chans : int;
      max_occ : int; (* longest queue in [chans]; 0 when all empty *)
    }

    let digest t = (t.dig_locals lxor t.dig_chans) land max_int
    let hash = digest
    let max_occupancy t = t.max_occ
    let channels t = t.chans
    let channel t c = Channel.get t.chans c
    let channel_length t c = Channel.length t.chans c
    let channel_bindings t = Channel.bindings t.chans

    let local t v =
      match IMap.find_opt v t.locals with
      | Some l -> l
      | None -> invalid_arg (P.name ^ ": unknown node")

    let h_local v l = Mix.mix3 0x58 v (P.local_digest v l)

    let initial inst =
      let locals, dig =
        List.fold_left
          (fun (m, dig) v ->
            let l = P.initial_local inst v in
            (IMap.add v l m, dig lxor h_local v l))
          (IMap.empty, 0) (P.nodes inst)
      in
      { locals; chans = Channel.empty; dig_locals = dig; dig_chans = 0; max_occ = 0 }

    let with_local t v l =
      let old = local t v in
      if P.equal_local old l then t
      else
        {
          t with
          locals = IMap.add v l t.locals;
          dig_locals = t.dig_locals lxor h_local v old lxor h_local v l;
        }

    let chans_digest_occ chans =
      Channel.Map.fold
        (fun c msgs (dig, occ) ->
          (dig lxor Mix.h_chan c msgs, max occ (List.length msgs)))
        chans (0, 0)

    let with_channels t chans =
      if t.chans == chans then t
      else
        let dig_chans, max_occ = chans_digest_occ chans in
        { t with chans; dig_chans; max_occ }

    (* Single-channel updates, the hot path: see the SPP [State] twin for
       the digest accounting. *)
    let push_channel t c msg =
      let old = Channel.get t.chans c in
      let h_old = Mix.h_chan c old in
      let h_new = Mix.h_chan_ext h_old msg in
      let dig_chans =
        t.dig_chans lxor (match old with [] -> 0 | _ -> h_old) lxor h_new
      in
      {
        t with
        chans = Channel.push t.chans c msg;
        dig_chans;
        max_occ = max t.max_occ (List.length old + 1);
      }

    let drop_first_channel t c i =
      if i <= 0 then t
      else
        match Channel.get t.chans c with
        | [] -> t
        | old ->
          let old_len = List.length old in
          let chans = Channel.drop_first t.chans c i in
          let kept = Channel.get chans c in
          let dig_chans =
            t.dig_chans lxor Mix.h_chan c old
            lxor (match kept with [] -> 0 | _ -> Mix.h_chan c kept)
          in
          let max_occ =
            if old_len < t.max_occ then t.max_occ else Channel.max_occupancy chans
          in
          { t with chans; dig_chans; max_occ }

    (* Exact last-message collapse for reliable polling (see
       [Modelcheck.Explore.collapse_state]); only valid when the protocol
       declares [receive] idempotent in everything but the last message. *)
    let collapse_last t =
      if t.max_occ <= 1 then t
      else
        with_channels t
          (Channel.Map.map
             (fun msgs -> match List.rev msgs with [] -> [] | last :: _ -> [ last ])
             t.chans)

    (* Receiver-relevance projection via the protocol's hooks; message
       counts are preserved, like the SPP [project_state]. *)
    let project inst t =
      let t =
        List.fold_left
          (fun acc v -> with_local acc v (P.project_local inst v (local acc v)))
          t (P.nodes inst)
      in
      let dirty =
        Channel.Map.exists
          (fun (c : Channel.id) msgs ->
            List.exists (fun m -> P.project_msg inst ~dst:c.Channel.dst m <> m) msgs)
          t.chans
      in
      if not dirty then t
      else
        with_channels t
          (Channel.Map.mapi
             (fun (c : Channel.id) msgs ->
               List.map (fun m -> P.project_msg inst ~dst:c.Channel.dst m) msgs)
             t.chans)

    let converged inst t =
      ((not P.drains) || Channel.Map.is_empty t.chans)
      && List.for_all (fun v -> P.node_converged inst v (local t v)) (P.nodes inst)

    let equal (a : t) b =
      a.dig_locals = b.dig_locals
      && a.dig_chans = b.dig_chans
      && IMap.equal P.equal_local a.locals b.locals
      && Channel.Map.equal (List.equal Int.equal) a.chans b.chans

    let compare (a : t) b =
      let c = IMap.compare P.compare_local a.locals b.locals in
      if c <> 0 then c
      else Channel.Map.compare (List.compare Int.compare) a.chans b.chans

    let pp inst ppf t =
      let pp_c ppf (c : Channel.id) =
        Fmt.pf ppf "(%s,%s)" (P.node_name inst c.Channel.src)
          (P.node_name inst c.Channel.dst)
      in
      Fmt.pf ppf "@[<v>locals: %a@,queues: %a@]"
        Fmt.(
          list ~sep:(any ", ") (fun ppf v ->
              Fmt.pf ppf "%s:%a" (P.node_name inst v) (P.pp_local inst v) (local t v)))
        (P.nodes inst)
        Fmt.(
          list ~sep:(any ", ") (fun ppf (c, msgs) ->
              Fmt.pf ppf "%a=[%a]" pp_c c
                (list ~sep:semi (fun ppf m -> P.pp_msg inst ppf m))
                msgs))
        (channel_bindings t)
  end

  (* ---------------------------------------------------------------- *)
  (* Entry well-formedness against the protocol's channel sets: the same
     checks as [Activation.well_formed], with "channel exists" meaning
     "the receiver can read it". *)

  let well_formed inst (t : Activation.t) =
    let errs = ref [] in
    let add e = errs := e :: !errs in
    if t.Activation.active = [] then add Activation.Empty_active;
    let seen = ref [] in
    List.iter
      (fun (r : Activation.read) ->
        let c = r.Activation.chan in
        if
          not
            (List.exists (Channel.equal_id c) (P.in_channels inst c.Channel.dst))
        then add (Activation.Unknown_channel c);
        if not (List.mem c.Channel.dst t.Activation.active) then
          add (Activation.Reader_not_active c);
        if List.exists (Channel.equal_id c) !seen then
          add (Activation.Duplicate_channel c);
        seen := c :: !seen;
        (match r.Activation.count with
        | Activation.Finite n when n < 0 -> add (Activation.Negative_count c)
        | Activation.Finite _ | Activation.All -> ());
        match r.Activation.count with
        | Activation.Finite 0 ->
          if not (Activation.IntSet.is_empty r.Activation.drops) then
            add (Activation.Bad_drops c)
        | Activation.Finite n ->
          if Activation.IntSet.exists (fun i -> i < 1 || i > n) r.Activation.drops
          then add (Activation.Bad_drops c)
        | Activation.All ->
          if Activation.IntSet.exists (fun i -> i < 1) r.Activation.drops then
            add (Activation.Bad_drops c))
      t.Activation.reads;
    List.rev !errs

  let pp_error inst ppf (err : Activation.error) =
    let pp_c ppf (c : Channel.id) =
      Fmt.pf ppf "(%s,%s)" (P.node_name inst c.Channel.src)
        (P.node_name inst c.Channel.dst)
    in
    match err with
    | Activation.Empty_active -> Fmt.string ppf "no active node"
    | Activation.Unknown_channel c ->
      Fmt.pf ppf "channel %a is not readable in this protocol instance" pp_c c
    | Activation.Reader_not_active c ->
      Fmt.pf ppf "receiver of %a is not active" pp_c c
    | Activation.Duplicate_channel c -> Fmt.pf ppf "channel %a read twice" pp_c c
    | Activation.Negative_count c ->
      Fmt.pf ppf "negative message count on %a" pp_c c
    | Activation.Bad_drops c -> Fmt.pf ppf "invalid drop set on %a" pp_c c

  (* Model validation over the protocol's channel sets.  [?model_of] gives
     the heterogeneous (per-node) variant — the generic counterpart of
     {!Hetero}; [validates_multi] is the counterpart of {!Multi}. *)

  let validates ?model_of inst (m : Model.t) (entry : Activation.t) =
    let model_of = match model_of with Some f -> f | None -> fun _ -> m in
    well_formed inst entry = []
    &&
    match entry.Activation.active with
    | [ v ] ->
      Model.node_violations_for
        ~required:(P.in_channels inst v)
        (model_of v) entry.Activation.reads
      = []
    | _ -> false

  let validates_multi ?model_of inst (m : Model.t) (entry : Activation.t) =
    let model_of = match model_of with Some f -> f | None -> fun _ -> m in
    well_formed inst entry = []
    && entry.Activation.active <> []
    && List.for_all
         (fun v ->
           let reads =
             List.filter
               (fun (r : Activation.read) -> r.Activation.chan.Channel.dst = v)
               entry.Activation.reads
           in
           Model.node_violations_for
             ~required:(P.in_channels inst v)
             (model_of v) reads
           = [])
         entry.Activation.active

  (* ---------------------------------------------------------------- *)
  (* The Def. 2.3 step, in the same three phases as the SPP [Step]:
     process every read (in read order, each folding its kept messages
     into the receiver's local state), then update every active node and
     push its announcements.  [P.update] only sees the node's own local,
     so applying updates sequentially in active order is equivalent to
     the compute-all-then-apply phasing. *)

  module Step = struct
    type outcome = {
      state : State.t;
      processed : (Channel.id * int list) list; (* messages processed, oldest first *)
      dropped : (Channel.id * int list) list; (* the processed messages dropped *)
      pushed : (Channel.id * int) list;
    }

    let apply ?(check = true) inst state (entry : Activation.t) =
      if check then
        (match well_formed inst entry with
        | [] -> ()
        | e :: _ ->
          invalid_arg (Fmt.str "%s Step.apply: %a" P.name (pp_error inst) e));
      (* Phase 1: process channels. *)
      let processed = ref [] and dropped = ref [] in
      let state =
        List.fold_left
          (fun st (r : Activation.read) ->
            let c = r.Activation.chan in
            let contents = State.channel st c in
            let m = List.length contents in
            let i =
              match r.Activation.count with
              | Activation.All -> m
              | Activation.Finite f -> min f m
            in
            if i = 0 then st
            else begin
              let procd = List.filteri (fun k _ -> k < i) contents in
              let kept, dropd =
                List.partition
                  (fun (j, _) -> not (Activation.IntSet.mem j r.Activation.drops))
                  (List.mapi (fun k msg -> (k + 1, msg)) procd)
              in
              processed := (c, procd) :: !processed;
              if dropd <> [] then dropped := (c, List.map snd dropd) :: !dropped;
              let v = c.Channel.dst in
              let lv =
                P.receive inst v (State.local st v) ~src:c.Channel.src
                  (List.map snd kept)
              in
              let st = State.with_local st v lv in
              State.drop_first_channel st c i
            end)
          state entry.Activation.reads
      in
      (* Phases 2-3: choices and announcements, in active order. *)
      let pushed = ref [] in
      let state =
        List.fold_left
          (fun st v ->
            let l, out = P.update inst v (State.local st v) in
            let st = State.with_local st v l in
            List.fold_left
              (fun st (c, msg) ->
                pushed := (c, msg) :: !pushed;
                State.push_channel st c msg)
              st out)
          state entry.Activation.active
      in
      {
        state;
        processed = List.rev !processed;
        dropped = List.rev !dropped;
        pushed = List.rev !pushed;
      }
  end

  (* ---------------------------------------------------------------- *)
  (* Schedules over the protocol's channel sets: the generic counterparts
     of [Scheduler.round_robin] (with the heterogeneous [?model_of] of
     {!Hetero.round_robin}) and [Multi.synchronous], plus a deterministic
     lossy variant for measuring the U models without a model checker. *)

  let max_count (m : Model.t) =
    match m.Model.msg with
    | Model.M_one -> Activation.Finite 1
    | Model.M_some | Model.M_forced | Model.M_all -> Activation.All

  let round_robin_cycle ?model_of inst (m : Model.t) =
    let model_of = match model_of with Some f -> f | None -> fun _ -> m in
    List.concat_map
      (fun v ->
        let mv = model_of v in
        let count = max_count mv in
        let chans = P.in_channels inst v in
        match mv.Model.nbr with
        | Model.N_one -> (
          match chans with
          | [] -> [ Activation.single v [] ]
          | chans ->
            List.map
              (fun c -> Activation.single v [ Activation.read ~count c ])
              chans)
        | Model.N_multi | Model.N_every ->
          [ Activation.single v (List.map (fun c -> Activation.read ~count c) chans) ])
      (P.nodes inst)

  let round_robin ?model_of inst m =
    {
      (Scheduler.cycle (round_robin_cycle ?model_of inst m)) with
      Scheduler.description = Fmt.str "%s/round-robin/%a" P.name Model.pp m;
    }

  (* Deterministic fair lossiness: the base round-robin cycle is unrolled
     [every] times and every [every]-th read site (counted across the
     unrolled cycle) drops its oldest processed message.  Each channel is
     read [every] times per unrolled cycle with at most one drop, so every
     drop is followed by an undropped read of the same channel — the
     schedule is fair in the Def. 2.4 sense — and runs are reproducible
     without any RNG state in the artifact. *)
  let round_robin_lossy ?model_of ~every inst (m : Model.t) =
    if every < 2 then
      invalid_arg "Generic.round_robin_lossy: every must be >= 2 (fairness)";
    if m.Model.rel = Model.Reliable then
      invalid_arg "Generic.round_robin_lossy: drops require an unreliable model";
    let base = round_robin_cycle ?model_of inst m in
    let ctr = ref 0 in
    let cycle =
      List.concat_map
        (fun _round ->
          List.map
            (fun (e : Activation.t) ->
              let reads =
                List.map
                  (fun (r : Activation.read) ->
                    let k = !ctr in
                    incr ctr;
                    if k mod every = 0 then
                      { r with Activation.drops = Activation.IntSet.singleton 1 }
                    else r)
                  e.Activation.reads
              in
              { e with Activation.reads })
            base)
        (List.init every Fun.id)
    in
    {
      (Scheduler.cycle cycle) with
      Scheduler.description =
        Fmt.str "%s/round-robin-lossy/%a/every=%d" P.name Model.pp m every;
    }

  let synchronous inst (m : Model.t) =
    let count = max_count m in
    let reads =
      List.concat_map
        (fun v -> List.map (fun c -> Activation.read ~count c) (P.in_channels inst v))
        (P.nodes inst)
    in
    let entry = Activation.entry ~active:(P.nodes inst) ~reads in
    {
      (Scheduler.cycle [ entry ]) with
      Scheduler.description = Fmt.str "%s/synchronous/%a" P.name Model.pp m;
    }

  (* ---------------------------------------------------------------- *)
  (* Executor: run a schedule to convergence, a repeated state (cycle) or
     the step bound, counting messages and drops along the way. *)

  module Executor = struct
    type stop = Converged | Cycle of { first : int; period : int } | Exhausted

    let pp_stop ppf = function
      | Converged -> Fmt.string ppf "converged"
      | Cycle { first; period } ->
        Fmt.pf ppf "cycle (first seen at step %d, period %d)" first period
      | Exhausted -> Fmt.string ppf "exhausted"

    type step_record = { index : int; entry : Activation.t; outcome : Step.outcome }

    type run = {
      stop : stop;
      steps : int;
      messages : int;
      drops : int;
      final : State.t;
    }

    module Seen = Hashtbl.Make (struct
      type t = int * State.t

      let equal (p1, s1) (p2, s2) = p1 = p2 && State.equal s1 s2
      let hash (p, s) = Mix.mix3 0x59 p (State.digest s) land max_int
    end)

    let run ?validate ?(max_steps = 10_000) ?on_step inst (sched : Scheduler.t) =
      let seen = Seen.create 97 in
      let messages = ref 0 and drops = ref 0 in
      let finish stop steps final =
        { stop; steps; messages = !messages; drops = !drops; final }
      in
      let init = State.initial inst in
      if State.converged inst init then finish Converged 0 init
      else
        let rec loop index state entries =
          if index > max_steps then finish Exhausted (index - 1) state
          else
            match Seq.uncons entries with
            | None -> finish Exhausted (index - 1) state
            | Some (entry, rest) ->
              (match validate with
              | Some ok when not (ok entry) ->
                invalid_arg
                  (Fmt.str "%s Executor: schedule entry violates the model" P.name)
              | _ -> ());
              let outcome = Step.apply inst state entry in
              messages := !messages + List.length outcome.Step.pushed;
              drops :=
                !drops
                + List.fold_left
                    (fun acc (_, l) -> acc + List.length l)
                    0 outcome.Step.dropped;
              (match on_step with
              | Some f -> f { index; entry; outcome }
              | None -> ());
              let state' = outcome.Step.state in
              if State.converged inst state' then finish Converged index state'
              else begin
                match sched.Scheduler.period with
                | Some p when p > 0 -> (
                  let key = (index mod p, state') in
                  match Seen.find_opt seen key with
                  | Some first ->
                    finish (Cycle { first; period = index - first }) index state'
                  | None ->
                    Seen.add seen key index;
                    loop (index + 1) state' rest)
                | _ -> loop (index + 1) state' rest
              end
        in
        loop 1 init sched.Scheduler.entries

    let converges ?max_steps inst sched =
      match (run ?max_steps inst sched).stop with
      | Converged -> true
      | Cycle _ | Exhausted -> false
  end

  (* ---------------------------------------------------------------- *)
  (* Batch-mode timed semantics with MRAI, the generic counterpart of
     {!Timed} ([Batch] mode): per tick, every node whose MRAI divides the
     clock activates and processes exactly the messages that have arrived
     by now; pushes are stamped with the link delay. *)

  module Timed = struct
    type result = {
      converged : bool;
      finish_time : int;
      last_change : int;
      messages : int;
      activations : int;
      drops : int;
      final : State.t;
    }

    let run ?(mrai = fun _ -> 1) ?(link_delay = fun _ -> 1) ?(horizon = 100_000)
        inst =
      let messages = ref 0 and activations = ref 0 and last_change = ref 0 in
      let state = ref (State.initial inst) in
      let arrivals = ref Channel.Map.empty in
      let arrivals_of c =
        match Channel.Map.find_opt c !arrivals with Some l -> l | None -> []
      in
      let arrived c ~now =
        List.length (List.filter (fun t -> t <= now) (arrivals_of c))
      in
      let finish = ref None in
      let now = ref 0 in
      if State.converged inst !state then finish := Some 0;
      while !finish = None && !now <= horizon do
        List.iter
          (fun v ->
            let interval = max 1 (mrai v) in
            if !now mod interval = 0 then begin
              let reads =
                List.filter_map
                  (fun c ->
                    let k = arrived c ~now:!now in
                    if k = 0 then None
                    else Some (Activation.read ~count:(Activation.Finite k) c))
                  (P.in_channels inst v)
              in
              let entry = Activation.single v reads in
              let outcome = Step.apply inst !state entry in
              (* pops *)
              List.iter
                (fun (c, msgs) ->
                  let k = List.length msgs in
                  let rec drop n l =
                    if n = 0 then l
                    else match l with [] -> [] | _ :: t -> drop (n - 1) t
                  in
                  arrivals := Channel.Map.add c (drop k (arrivals_of c)) !arrivals)
                outcome.Step.processed;
              (* pushes, stamped with propagation delay *)
              List.iter
                (fun (c, _) ->
                  arrivals :=
                    Channel.Map.add c
                      (arrivals_of c @ [ !now + link_delay c ])
                      !arrivals)
                outcome.Step.pushed;
              state := outcome.Step.state;
              incr activations;
              messages := !messages + List.length outcome.Step.pushed;
              if outcome.Step.pushed <> [] then last_change := !now
            end)
          (P.nodes inst);
        if State.converged inst !state then finish := Some !now;
        incr now
      done;
      {
        converged = State.converged inst !state;
        finish_time = (match !finish with Some t -> t | None -> horizon);
        last_change = !last_change;
        messages = !messages;
        activations = !activations;
        drops = 0;
        final = !state;
      }

    let mrai_sweep ?(intervals = [ 1; 2; 4; 8; 16 ]) ?link_delay ?horizon inst =
      List.map
        (fun i -> (i, run ~mrai:(fun _ -> i) ?link_delay ?horizon inst))
        intervals
  end
end
