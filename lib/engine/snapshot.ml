open Spp
module Json = Metrics.Json

let magic = "commrouting/snapshot/v2"
let chunk_magic = "commrouting/frontier/v1"

type error =
  | Io of { path : string; message : string }
  | Bad_magic of { path : string; found : string }
  | Truncated of { path : string; expected : int; got : int }
  | Checksum_mismatch of { path : string }
  | Parse of { path : string; context : string; message : string }
  | Mismatch of { path : string; what : string; expected : string; got : string }

let error_to_string = function
  | Io { path; message } -> Fmt.str "%s: %s" path message
  | Bad_magic { path; found } ->
    Fmt.str "%s: not a %S snapshot (found %S)" path magic found
  | Truncated { path; expected; got } ->
    Fmt.str "%s: truncated snapshot: header promises %d payload bytes, file has %d"
      path expected got
  | Checksum_mismatch { path } ->
    Fmt.str "%s: snapshot payload does not match its checksum (corrupt file)" path
  | Parse { path; context; message } ->
    Fmt.str "%s: invalid snapshot payload at %s: %s" path context message
  | Mismatch { path; what; expected; got } ->
    Fmt.str "%s: snapshot %s mismatch: expected %s, found %s" path what expected got

let pp_error ppf e = Fmt.string ppf (error_to_string e)

(* ------------------------------------------------------------------ *)
(* Atomic, durable writes.  The temp file lives next to the target (same
   filesystem, so the rename is atomic) and its name carries the pid, the
   domain id and a process-wide counter: the pid alone is not unique when
   two domains of one process checkpoint to the same path concurrently,
   and a collision would interleave their partial writes.  Durability:
   the temp file is fsynced before the rename and the containing
   directory after it, so once [write_atomic] returns, a crash or power
   cut can no longer roll the rename back or surface an empty file where
   the old contents were. *)

let tmp_seq = Atomic.make 0

let write_atomic path contents =
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d.%d" path (Unix.getpid ())
      (Domain.self () :> int)
      (Atomic.fetch_and_add tmp_seq 1)
  in
  let sys_error fn e =
    Sys_error (Printf.sprintf "%s: %s: %s" tmp fn (Unix.error_message e))
  in
  let oc = open_out_bin tmp in
  (match
     output_string oc contents;
     flush oc;
     (try Unix.fsync (Unix.descr_of_out_channel oc)
      with Unix.Unix_error (e, _, _) -> raise (sys_error "fsync" e));
     close_out oc
   with
  | () -> ()
  | exception e ->
    close_out_noerr oc;
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e);
  match Sys.rename tmp path with
  | () ->
    (* Directory fsync is best effort: without it the rename itself may
       not be durable, but some filesystems refuse fsync on directories
       and the data is already safe on disk either way. *)
    (match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 with
    | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      Unix.close fd
    | exception Unix.Unix_error _ -> ())
  | exception e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e

(* ------------------------------------------------------------------ *)

let fingerprint inst =
  let buf = Buffer.create 256 in
  Array.iter
    (fun n ->
      Buffer.add_string buf n;
      Buffer.add_char buf '\x00')
    (Instance.names inst);
  Buffer.add_string buf (Printf.sprintf "|d%d|" (Instance.dest inst));
  List.iter
    (fun (a, b) -> Buffer.add_string buf (Printf.sprintf "%d-%d;" a b))
    (Instance.edges inst);
  List.iter
    (fun (v, p, r) ->
      Buffer.add_string buf (Printf.sprintf "%d@%d:" v r);
      List.iter
        (fun n ->
          Buffer.add_string buf (string_of_int n);
          Buffer.add_char buf ',')
        (Path.to_nodes p);
      Buffer.add_char buf ';')
    (Instance.all_permitted inst);
  Digest.to_hex (Digest.string (Buffer.contents buf))

type label = {
  entry : Activation.t;
  l_reads : Channel.id list;
  l_drops : Channel.id list;
  l_cleans : Channel.id list;
}

type edge = { dst : int; label : label }

type counters = {
  interned : int;
  dedup : int;
  edges : int;
  pruned_writes : int;
  truncated_interns : int;
  peak_frontier : int;
  ample : int;
  canonicalized : int;
}

type t = {
  channel_bound : int;
  max_states : int;
  reduction : string;
  states : State.t array;
  rows : (int * edge list) list;
  frontier : int list;
  pruned : bool;
  truncated : bool;
  counters : counters;
}

(* ------------------------------------------------------------------ *)
(* Encoding.  Routes are indexed into a local path table (index 0 is
   epsilon, the rest in first-use order, each entry the node list), so the
   payload is independent of the process's arena numbering.  Edge labels
   repeat massively across rows (polling models enumerate the same handful
   of entries at every state), so they are hash-consed into a side table
   keyed by their serialized form and rows reference them by index.

   The path table + state encoder pair is shared between full snapshots
   and frontier chunks (the disk-spilled frontier's codec), so the two
   formats can never drift apart. *)

let num i = Json.Num (float_of_int i)
let chan_json (c : Channel.id) = Json.List [ num c.Channel.src; num c.Channel.dst ]

(* A fresh path table: [pid_of] interns route ids into it, [table_json]
   renders it (index 0 is epsilon) — call only after every state has been
   encoded. *)
let make_path_table () =
  let ptbl = Hashtbl.create 1024 in
  Hashtbl.add ptbl Arena.epsilon 0;
  let paths_rev = ref [] and n_paths = ref 1 in
  let pid_of id =
    match Hashtbl.find_opt ptbl id with
    | Some i -> i
    | None ->
      let i = !n_paths in
      incr n_paths;
      Hashtbl.add ptbl id i;
      paths_rev := Arena.to_nodes id :: !paths_rev;
      i
  in
  let table_json () =
    Json.List
      (Json.List []
      :: List.rev_map (fun nodes -> Json.List (List.map num nodes)) !paths_rev)
  in
  (pid_of, table_json)

let state_json inst ~pid_of st =
  let core get =
    List.filter_map
      (fun v ->
        let p = get st v in
        if Arena.is_epsilon p then None else Some (Json.List [ num v; num (pid_of p) ]))
      (Instance.nodes inst)
  in
  let pi = core State.pi_id and ann = core State.announced_id in
  let rho =
    List.map
      (fun ((c : Channel.id), p) ->
        Json.List [ num c.Channel.src; num c.Channel.dst; num (pid_of p) ])
      (State.rho_bindings_id st)
  in
  let chans =
    List.map
      (fun ((c : Channel.id), msgs) ->
        Json.List
          [
            num c.Channel.src;
            num c.Channel.dst;
            Json.List (List.map (fun m -> num (pid_of m)) msgs);
          ])
      (Channel.bindings (State.channels st))
  in
  Json.Obj
    [
      ("pi", Json.List pi);
      ("rho", Json.List rho);
      ("ann", Json.List ann);
      ("chans", Json.List chans);
    ]

let label_json l =
  Json.Obj
    [
      ("active", Json.List (List.map num l.entry.Activation.active));
      ( "reads",
        Json.List
          (List.map
             (fun (r : Activation.read) ->
               Json.List
                 [
                   num r.Activation.chan.Channel.src;
                   num r.Activation.chan.Channel.dst;
                   num
                     (match r.Activation.count with
                     | Activation.All -> -1
                     | Activation.Finite n -> n);
                   Json.List (List.map num (Activation.IntSet.elements r.Activation.drops));
                 ])
             l.entry.Activation.reads) );
      ("er", Json.List (List.map chan_json l.l_reads));
      ("ed", Json.List (List.map chan_json l.l_drops));
      ("ec", Json.List (List.map chan_json l.l_cleans));
    ]

let to_payload inst t =
  let pid_of, table_json = make_path_table () in
  let ltbl = Hashtbl.create 64 in
  let labels_rev = ref [] and n_labels = ref 0 in
  let lid_of l =
    let j = label_json l in
    let key = Json.to_string j in
    match Hashtbl.find_opt ltbl key with
    | Some i -> i
    | None ->
      let i = !n_labels in
      incr n_labels;
      Hashtbl.add ltbl key i;
      labels_rev := j :: !labels_rev;
      i
  in
  let states_j =
    Json.List (Array.to_list (Array.map (state_json inst ~pid_of) t.states))
  in
  let rows_j =
    Json.List
      (List.map
         (fun (i, es) ->
           Json.List
             (num i :: List.concat_map (fun e -> [ num e.dst; num (lid_of e.label) ]) es))
         t.rows)
  in
  let counters_j =
    Json.Obj
      [
        ("interned", num t.counters.interned);
        ("dedup", num t.counters.dedup);
        ("edges", num t.counters.edges);
        ("pruned_writes", num t.counters.pruned_writes);
        ("truncated_interns", num t.counters.truncated_interns);
        ("peak_frontier", num t.counters.peak_frontier);
        ("ample", num t.counters.ample);
        ("canonicalized", num t.counters.canonicalized);
      ]
  in
  (* The path table is populated by the encoders above, so it must be
     rendered after [states_j] and [rows_j]. *)
  Json.Obj
    [
      ("schema", Json.Str magic);
      ("instance", Json.Str (fingerprint inst));
      ("channel_bound", num t.channel_bound);
      ("max_states", num t.max_states);
      ("reduction", Json.Str t.reduction);
      ("paths", table_json ());
      ("labels", Json.List (List.rev !labels_rev));
      ("states", states_j);
      ("rows", rows_j);
      ("frontier", Json.List (List.map num t.frontier));
      ("pruned", Json.Bool t.pruned);
      ("truncated", Json.Bool t.truncated);
      ("counters", counters_j);
    ]

let framed ~magic payload =
  Printf.sprintf "%s %s %d\n" magic
    (Digest.to_hex (Digest.string payload))
    (String.length payload)
  ^ payload

let save ~path inst t =
  write_atomic path (framed ~magic (Json.to_string (to_payload inst t)))

(* ------------------------------------------------------------------ *)
(* Decoding.  Every failure is a typed [Error] carrying the path and a
   field context; nothing raises, nothing half-loads.  The helpers are
   path-threaded top-level functions shared by the full-snapshot and
   frontier-chunk decoders. *)

let ( let* ) = Result.bind

let perr ~path context message = Error (Parse { path; context; message })

let as_int ~path ctx = function
  | Json.Num f -> Ok (int_of_float f)
  | _ -> perr ~path ctx "expected a number"

let as_list ~path ctx = function
  | Json.List l -> Ok l
  | _ -> perr ~path ctx "expected a list"

let as_bool ~path ctx = function
  | Json.Bool b -> Ok b
  | _ -> perr ~path ctx "expected a bool"

let as_str ~path ctx = function
  | Json.Str s -> Ok s
  | _ -> perr ~path ctx "expected a string"

let field ~path ctx name j =
  match Json.member name j with
  | Some v -> Ok v
  | None -> perr ~path ctx (Printf.sprintf "missing field %S" name)

let int_field ~path ctx name j =
  let* v = field ~path ctx name j in
  as_int ~path (ctx ^ "." ^ name) v

let list_field ~path ctx name j =
  let* v = field ~path ctx name j in
  as_list ~path (ctx ^ "." ^ name) v

let bool_field ~path ctx name j =
  let* v = field ~path ctx name j in
  as_bool ~path (ctx ^ "." ^ name) v

let str_field ~path ctx name j =
  let* v = field ~path ctx name j in
  as_str ~path (ctx ^ "." ^ name) v

(* Tail-recursive indexed map: snapshots can hold 10^5 states. *)
let mapi_m ctx f l =
  let rec go i acc = function
    | [] -> Ok (List.rev acc)
    | x :: rest -> (
      match f (Printf.sprintf "%s[%d]" ctx i) x with
      | Ok y -> go (i + 1) (y :: acc) rest
      | Error _ as e -> e)
  in
  go 0 [] l

let decode_node ~path ~inst ctx v =
  let n_nodes = Instance.size inst in
  if v >= 0 && v < n_nodes then Ok v
  else
    perr ~path ctx (Printf.sprintf "node id %d out of range (instance has %d)" v n_nodes)

let decode_chan ~path ~inst ctx = function
  | Json.List [ s; d ] ->
    let* s = as_int ~path ctx s in
    let* d = as_int ~path ctx d in
    let* s = decode_node ~path ~inst ctx s in
    let* d = decode_node ~path ~inst ctx d in
    Ok (Channel.id ~src:s ~dst:d)
  | _ -> perr ~path ctx "expected a [src, dst] pair"

(* Instance guard: nothing is interned or rebuilt before the fingerprint
   matches. *)
let check_instance ~path ~inst j =
  let* got_fp = str_field ~path "payload" "instance" j in
  let want_fp = fingerprint inst in
  if String.equal got_fp want_fp then Ok ()
  else
    Error
      (Mismatch { path; what = "instance fingerprint"; expected = want_fp; got = got_fp })

(* Path table: re-intern every node list into this process's arena.
   Returns a lookup checked against the table bounds. *)
let decode_path_table ~path ~inst j =
  let* paths_j = list_field ~path "payload" "paths" j in
  let* paths =
    mapi_m "paths" (fun ctx pj ->
        let* nodes = as_list ~path ctx pj in
        let* nodes =
          mapi_m ctx
            (fun c nj ->
              let* v = as_int ~path c nj in
              decode_node ~path ~inst c v)
            nodes
        in
        match nodes with
        | [] -> Ok Arena.epsilon
        | _ -> (
          match Arena.of_nodes nodes with
          | id -> Ok id
          | exception Invalid_argument m -> perr ~path ctx ("invalid path: " ^ m)))
      paths_j
  in
  let paths = Array.of_list paths in
  let n_paths = Array.length paths in
  if n_paths = 0 || not (Arena.is_epsilon paths.(0)) then
    perr ~path "paths[0]" "the first path-table entry must be epsilon"
  else
    Ok
      (fun ctx i ->
        if i >= 0 && i < n_paths then Ok paths.(i)
        else
          perr ~path ctx
            (Printf.sprintf "path index %d out of range (table has %d)" i n_paths))

(* One state, rebuilt through the public State API so digests and
   occupancy caches are recomputed in this process. *)
let decode_state ~path ~inst ~pid ctx sj =
  let binding what bj =
    match bj with
    | Json.List [ v; p ] ->
      let* v = as_int ~path what v in
      let* v = decode_node ~path ~inst what v in
      let* p = as_int ~path what p in
      let* p = pid what p in
      Ok (v, p)
    | _ -> perr ~path what "expected a [node, path] pair"
  in
  let* pi_j = list_field ~path ctx "pi" sj in
  let* pi = mapi_m (ctx ^ ".pi") binding pi_j in
  let* ann_j = list_field ~path ctx "ann" sj in
  let* ann = mapi_m (ctx ^ ".ann") binding ann_j in
  let* rho_j = list_field ~path ctx "rho" sj in
  let* rho =
    mapi_m (ctx ^ ".rho")
      (fun c rj ->
        match rj with
        | Json.List [ s; d; p ] ->
          let* s = as_int ~path c s in
          let* d = as_int ~path c d in
          let* s = decode_node ~path ~inst c s in
          let* d = decode_node ~path ~inst c d in
          let* p = as_int ~path c p in
          let* p = pid c p in
          Ok (Channel.id ~src:s ~dst:d, p)
        | _ -> perr ~path c "expected a [src, dst, path] triple")
      rho_j
  in
  let* chans_j = list_field ~path ctx "chans" sj in
  let* chans =
    mapi_m (ctx ^ ".chans")
      (fun c cj ->
        match cj with
        | Json.List [ s; d; Json.List msgs ] ->
          let* s = as_int ~path c s in
          let* d = as_int ~path c d in
          let* s = decode_node ~path ~inst c s in
          let* d = decode_node ~path ~inst c d in
          let* msgs =
            mapi_m c
              (fun cc mj ->
                let* m = as_int ~path cc mj in
                pid cc m)
              msgs
          in
          if msgs = [] then perr ~path c "empty channel queue must not be stored"
          else Ok (Channel.id ~src:s ~dst:d, msgs)
        | _ -> perr ~path c "expected [src, dst, [messages]]")
      chans_j
  in
  let s0 = State.initial inst in
  let s0 = State.with_pi_id s0 (Instance.dest inst) Arena.epsilon in
  let s = List.fold_left (fun s (v, p) -> State.with_pi_id s v p) s0 pi in
  let s = List.fold_left (fun s (c, p) -> State.with_rho_id s c p) s rho in
  let s = List.fold_left (fun s (v, p) -> State.with_announced_id s v p) s ann in
  let chmap =
    List.fold_left
      (fun m (c, msgs) -> List.fold_left (fun m p -> Channel.push m c p) m msgs)
      Channel.empty chans
  in
  Ok (State.with_channels s chmap)

let decode path inst j =
  let* () = check_instance ~path ~inst j in
  let* channel_bound = int_field ~path "payload" "channel_bound" j in
  let* max_states = int_field ~path "payload" "max_states" j in
  let* reduction = str_field ~path "payload" "reduction" j in
  let* pid = decode_path_table ~path ~inst j in
  (* Labels. *)
  let* labels_j = list_field ~path "payload" "labels" j in
  let* labels =
    mapi_m "labels" (fun ctx lj ->
        let* active_j = list_field ~path ctx "active" lj in
        let* active =
          mapi_m (ctx ^ ".active")
            (fun c vj ->
              let* v = as_int ~path c vj in
              decode_node ~path ~inst c v)
            active_j
        in
        let* reads_j = list_field ~path ctx "reads" lj in
        let* reads =
          mapi_m (ctx ^ ".reads")
            (fun c rj ->
              match rj with
              | Json.List [ s; d; cnt; drops ] ->
                let* s = as_int ~path c s in
                let* d = as_int ~path c d in
                let* s = decode_node ~path ~inst c s in
                let* d = decode_node ~path ~inst c d in
                let* cnt = as_int ~path c cnt in
                let* drops = as_list ~path c drops in
                let* drops = mapi_m c (fun cc dj -> as_int ~path cc dj) drops in
                let count = if cnt < 0 then Activation.All else Activation.Finite cnt in
                Ok (Activation.read ~drops ~count (Channel.id ~src:s ~dst:d))
              | _ -> perr ~path c "expected [src, dst, count, drops]")
            reads_j
        in
        let* er = list_field ~path ctx "er" lj in
        let* l_reads = mapi_m (ctx ^ ".er") (decode_chan ~path ~inst) er in
        let* ed = list_field ~path ctx "ed" lj in
        let* l_drops = mapi_m (ctx ^ ".ed") (decode_chan ~path ~inst) ed in
        let* ec = list_field ~path ctx "ec" lj in
        let* l_cleans = mapi_m (ctx ^ ".ec") (decode_chan ~path ~inst) ec in
        match Activation.entry ~active ~reads with
        | entry -> Ok { entry; l_reads; l_drops; l_cleans }
        | exception Invalid_argument m -> perr ~path ctx ("invalid entry: " ^ m))
      labels_j
  in
  let labels = Array.of_list labels in
  let n_labels = Array.length labels in
  let* states_j = list_field ~path "payload" "states" j in
  let* states = mapi_m "states" (decode_state ~path ~inst ~pid) states_j in
  let states = Array.of_list states in
  let n_states = Array.length states in
  let state_id ctx i =
    if i >= 0 && i < n_states then Ok i
    else
      perr ~path ctx
        (Printf.sprintf "state id %d out of range (snapshot has %d)" i n_states)
  in
  (* Rows: flat [i, dst0, label0, dst1, label1, ...]. *)
  let* rows_j = list_field ~path "payload" "rows" j in
  let* rows =
    mapi_m "rows" (fun ctx rj ->
        let* flat = as_list ~path ctx rj in
        let* flat = mapi_m ctx (fun c fj -> as_int ~path c fj) flat in
        match flat with
        | [] -> perr ~path ctx "empty row"
        | i :: rest ->
          let* i = state_id ctx i in
          let rec edges acc = function
            | [] -> Ok (List.rev acc)
            | [ _ ] -> perr ~path ctx "odd number of edge fields"
            | d :: l :: rest ->
              if l < 0 || l >= n_labels then
                perr ~path ctx
                  (Printf.sprintf "label index %d out of range (table has %d)" l n_labels)
              else
                let* d = state_id ctx d in
                edges ({ dst = d; label = labels.(l) } :: acc) rest
          in
          let* es = edges [] rest in
          Ok (i, es))
      rows_j
  in
  let* frontier_j = list_field ~path "payload" "frontier" j in
  let* frontier =
    mapi_m "frontier"
      (fun ctx fj ->
        let* i = as_int ~path ctx fj in
        state_id ctx i)
      frontier_j
  in
  (* Progress invariant: every interned state is either expanded (has an
     adjacency row) or still queued, never both, never neither — a
     snapshot violating it would resume into a graph with silently
     missing rows. *)
  let seen = Array.make n_states 0 in
  List.iter (fun (i, _) -> seen.(i) <- seen.(i) + 1) rows;
  List.iter (fun i -> seen.(i) <- seen.(i) + 1) frontier;
  let bad = ref None in
  Array.iteri (fun i c -> if c <> 1 && !bad = None then bad := Some (i, c)) seen;
  match !bad with
  | Some (i, c) ->
    perr ~path "rows"
      (Printf.sprintf "state %d appears %d times across rows + frontier (want 1)" i c)
  | None ->
    let* pruned = bool_field ~path "payload" "pruned" j in
    let* truncated = bool_field ~path "payload" "truncated" j in
    let* cj = field ~path "payload" "counters" j in
    let* interned = int_field ~path "counters" "interned" cj in
    let* dedup = int_field ~path "counters" "dedup" cj in
    let* edges = int_field ~path "counters" "edges" cj in
    let* pruned_writes = int_field ~path "counters" "pruned_writes" cj in
    let* truncated_interns = int_field ~path "counters" "truncated_interns" cj in
    let* peak_frontier = int_field ~path "counters" "peak_frontier" cj in
    let* ample = int_field ~path "counters" "ample" cj in
    let* canonicalized = int_field ~path "counters" "canonicalized" cj in
    Ok
      {
        channel_bound;
        max_states;
        reduction;
        states;
        rows;
        frontier;
        pruned;
        truncated;
        counters =
          {
            interned;
            dedup;
            edges;
            pruned_writes;
            truncated_interns;
            peak_frontier;
            ample;
            canonicalized;
          };
      }

(* Read a framed file: verify magic, payload length, checksum; return the
   raw payload.  Shared by snapshots and frontier chunks (each with its
   own magic). *)
let read_framed ~magic path =
  let* raw =
    match In_channel.with_open_bin path In_channel.input_all with
    | s -> Ok s
    | exception Sys_error m -> Error (Io { path; message = m })
  in
  let* header, payload =
    match String.index_opt raw '\n' with
    | None ->
      Error (Bad_magic { path; found = String.sub raw 0 (min 64 (String.length raw)) })
    | Some i ->
      Ok (String.sub raw 0 i, String.sub raw (i + 1) (String.length raw - i - 1))
  in
  let* md5, expected =
    match String.split_on_char ' ' header with
    | [ m; md5; len ] when String.equal m magic -> (
      match int_of_string_opt len with
      | Some l when l >= 0 -> Ok (md5, l)
      | _ -> Error (Bad_magic { path; found = header }))
    | m :: _ when not (String.equal m magic) -> Error (Bad_magic { path; found = m })
    | _ -> Error (Bad_magic { path; found = header })
  in
  let got = String.length payload in
  if got <> expected then Error (Truncated { path; expected; got })
  else if not (String.equal (Digest.to_hex (Digest.string payload)) md5) then
    Error (Checksum_mismatch { path })
  else
    match Json.parse payload with
    | Ok j -> Ok j
    | Error m -> Error (Parse { path; context = "json"; message = m })

let load ~path inst =
  let* j = read_framed ~magic path in
  match decode path inst j with
  | (Ok _ | Error _) as r -> r
  | exception e ->
    (* Belt and braces: the decoder is total by construction, but a load
       must never raise. *)
    Error (Parse { path; context = "payload"; message = Printexc.to_string e })

(* ------------------------------------------------------------------ *)
(* Frontier chunks: the disk-spilled frontier's on-disk unit.  Same path
   table + state codec and the same framed, checksummed layout as full
   snapshots, holding an ordered list of (state id, state) queue items. *)

let save_chunk ~path inst items =
  let pid_of, table_json = make_path_table () in
  let items_j =
    List.map (fun (i, st) -> Json.List [ num i; state_json inst ~pid_of st ]) items
  in
  let payload =
    Json.to_string
      (Json.Obj
         [
           ("schema", Json.Str chunk_magic);
           ("instance", Json.Str (fingerprint inst));
           ("items", Json.List items_j);
           (* rendered after [items_j], which populates it *)
           ("paths", table_json ());
         ])
  in
  write_atomic path (framed ~magic:chunk_magic payload)

let load_chunk ~path inst =
  let decode_items j =
    let* () = check_instance ~path ~inst j in
    let* pid = decode_path_table ~path ~inst j in
    let* items_j = list_field ~path "payload" "items" j in
    mapi_m "items"
      (fun ctx ij ->
        match ij with
        | Json.List [ i; sj ] ->
          let* i = as_int ~path ctx i in
          if i < 0 then perr ~path ctx "negative state id"
          else
            let* st = decode_state ~path ~inst ~pid ctx sj in
            Ok (i, st)
        | _ -> perr ~path ctx "expected an [id, state] pair")
      items_j
  in
  let* j = read_framed ~magic:chunk_magic path in
  match decode_items j with
  | (Ok _ | Error _) as r -> r
  | exception e -> Error (Parse { path; context = "payload"; message = Printexc.to_string e })
