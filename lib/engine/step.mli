(** One step of the iterative routing algorithm (Def. 2.3).

    Given the entry (U, X, f, g) for the current step, a step (1) processes
    messages from the channels in X, updating known routes ρ and deleting
    processed messages, (2) lets every active node choose its most preferred
    feasible route, and (3) writes announcements for changed choices into
    the out-channels prescribed by the export policy.

    Deviations from the paper's literal text, both documented in DESIGN.md:
    the number of messages processed is [min f(c) m_c] (the text's [max] is
    a typo), and announcement is triggered by comparison with the node's
    last-announced route rather than π_v(t−1). *)

type export = src:Spp.Path.node -> dst:Spp.Path.node -> Spp.Path.t -> bool
(** Export policy: whether [src] announces the given newly chosen path to
    [dst].  Withdrawals (epsilon) are always sent to keep neighbors'
    knowledge sound. *)

val export_all : export
(** The SPP default: announce everything to every neighbor. *)

type outcome = {
  state : State.t;
  processed : (Channel.id * int) list;  (** messages consumed per channel *)
  dropped : (Channel.id * int) list;  (** messages dropped per channel *)
  announcements : (Spp.Path.node * Spp.Path.t) list;
      (** route changes written to out-channels this step *)
  pushed : (Channel.id * Spp.Path.t) list;
      (** individual messages appended to channels this step, in order *)
}

val apply :
  ?check:bool -> ?export:export -> Spp.Instance.t -> State.t -> Activation.t -> outcome
(** Raises [Invalid_argument] if the entry is not well-formed for the
    instance.  The entry is {e not} checked against any model; use
    {!Model.validates} for that.

    [~check:false] skips the well-formedness validation — for callers like
    the model checker's exploration loop whose entries are well-formed by
    construction and which apply millions of them.  Applying an ill-formed
    entry unchecked has unspecified (but memory-safe) results. *)
