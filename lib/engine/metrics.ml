(* Domain-safe counters and wall-clock timers for the hot paths.  All
   counters are atomics so explorer workers can bump them without locks;
   the phase list is the only mutex-protected piece. *)

type t = {
  states_interned : int Atomic.t;
  dedup_hits : int Atomic.t;
  edges : int Atomic.t;
  pruned_writes : int Atomic.t;
  truncated_interns : int Atomic.t;
  ample_states : int Atomic.t;
  canonicalized : int Atomic.t;
  steps : int Atomic.t;
  messages : int Atomic.t;
  peak_frontier : int Atomic.t;
  domains : int Atomic.t;
  mu : Mutex.t;
  mutable phases : (string * float) list; (* reverse order of completion *)
  mutable downgrade : string option;
}

let create () =
  {
    states_interned = Atomic.make 0;
    dedup_hits = Atomic.make 0;
    edges = Atomic.make 0;
    pruned_writes = Atomic.make 0;
    truncated_interns = Atomic.make 0;
    ample_states = Atomic.make 0;
    canonicalized = Atomic.make 0;
    steps = Atomic.make 0;
    messages = Atomic.make 0;
    peak_frontier = Atomic.make 0;
    domains = Atomic.make 1;
    mu = Mutex.create ();
    phases = [];
    downgrade = None;
  }

let add counter n = ignore (Atomic.fetch_and_add counter n)
let incr_interned t = add t.states_interned 1
let incr_dedup t = add t.dedup_hits 1
let add_edges t n = add t.edges n
let incr_pruned t = add t.pruned_writes 1
let incr_truncated t = add t.truncated_interns 1

(* Bulk variants: explorer workers count in domain-local buffers and merge
   once at join, so the hot path never touches these shared atomics. *)
let add_interned t n = add t.states_interned n
let add_dedup t n = add t.dedup_hits n
let add_pruned t n = add t.pruned_writes n
let add_truncated t n = add t.truncated_interns n
let add_ample t n = add t.ample_states n
let add_canonicalized t n = add t.canonicalized n
let incr_steps t = add t.steps 1
let add_steps t n = add t.steps n
let add_messages t n = add t.messages n
let set_domains t n = Atomic.set t.domains n

let set_downgrade t reason =
  Mutex.lock t.mu;
  if t.downgrade = None then t.downgrade <- Some reason;
  Mutex.unlock t.mu

let downgrade t =
  Mutex.lock t.mu;
  let d = t.downgrade in
  Mutex.unlock t.mu;
  d

let observe_frontier t n =
  let rec bump () =
    let cur = Atomic.get t.peak_frontier in
    if n > cur && not (Atomic.compare_and_set t.peak_frontier cur n) then bump ()
  in
  bump ()

let states_interned t = Atomic.get t.states_interned
let dedup_hits t = Atomic.get t.dedup_hits
let edges t = Atomic.get t.edges
let pruned_writes t = Atomic.get t.pruned_writes
let truncated_interns t = Atomic.get t.truncated_interns
let ample_states t = Atomic.get t.ample_states
let canonicalized t = Atomic.get t.canonicalized
let steps t = Atomic.get t.steps
let messages t = Atomic.get t.messages
let peak_frontier t = Atomic.get t.peak_frontier
let domains t = Atomic.get t.domains

let add_phase t name secs =
  Mutex.lock t.mu;
  t.phases <- (name, secs) :: t.phases;
  Mutex.unlock t.mu

let phases t =
  Mutex.lock t.mu;
  let p = List.rev t.phases in
  Mutex.unlock t.mu;
  p

let phase_time t name =
  List.fold_left
    (fun acc (n, s) -> if String.equal n name then acc +. s else acc)
    0. (phases t)

let timed ?m name f =
  match m with
  | None -> f ()
  | Some t ->
    let t0 = Unix.gettimeofday () in
    Fun.protect ~finally:(fun () -> add_phase t name (Unix.gettimeofday () -. t0)) f

let dedup_rate t =
  let hits = dedup_hits t and fresh = states_interned t in
  let total = hits + fresh in
  if total = 0 then 0. else float_of_int hits /. float_of_int total

let states_per_sec t =
  let wall = phase_time t "explore" in
  if wall <= 0. then 0. else float_of_int (states_interned t) /. wall

(* ------------------------------------------------------------------ *)
(* Hand-rolled JSON (no external dep): emission plus a small parser used
   by the bench-smoke rule to validate emitted artifacts. *)

module Json = struct
  type v =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | List of v list
    | Obj of (string * v) list

  let escape s =
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\t' -> Buffer.add_string buf "\\t"
        | '\r' -> Buffer.add_string buf "\\r"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let rec emit buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.0f" f)
      else Buffer.add_string buf (Printf.sprintf "%g" f)
    | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
    | List vs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf v)
        vs;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          emit buf v)
        fields;
      Buffer.add_char buf '}'

  let to_string v =
    let buf = Buffer.create 256 in
    emit buf v;
    Buffer.contents buf

  exception Bad of string

  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let skip_ws () =
      while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
        incr pos
      done
    in
    let expect c =
      if !pos < n && s.[!pos] = c then incr pos
      else raise (Bad (Printf.sprintf "expected %c at %d" c !pos))
    in
    let literal word v =
      if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
      then begin
        pos := !pos + String.length word;
        v
      end
      else raise (Bad (Printf.sprintf "bad literal at %d" !pos))
    in
    let string_lit () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec loop () =
        if !pos >= n then raise (Bad "unterminated string")
        else
          match s.[!pos] with
          | '"' -> incr pos
          | '\\' ->
            incr pos;
            (if !pos >= n then raise (Bad "unterminated escape")
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'
               | '\\' -> Buffer.add_char buf '\\'
               | '/' -> Buffer.add_char buf '/'
               | 'n' -> Buffer.add_char buf '\n'
               | 't' -> Buffer.add_char buf '\t'
               | 'r' -> Buffer.add_char buf '\r'
               | 'b' -> Buffer.add_char buf '\b'
               | 'f' -> Buffer.add_char buf '\012'
               | 'u' ->
                 if !pos + 4 >= n then raise (Bad "bad \\u escape");
                 let hex = String.sub s (!pos + 1) 4 in
                 (match int_of_string_opt ("0x" ^ hex) with
                 | Some code when code < 128 -> Buffer.add_char buf (Char.chr code)
                 | Some _ -> Buffer.add_char buf '?'
                 | None -> raise (Bad "bad \\u escape"));
                 pos := !pos + 4
               | c -> raise (Bad (Printf.sprintf "bad escape \\%c" c)));
            incr pos;
            loop ()
          | c ->
            Buffer.add_char buf c;
            incr pos;
            loop ()
      in
      loop ();
      Buffer.contents buf
    in
    let number () =
      let start = !pos in
      while
        !pos < n
        && match s.[!pos] with
           | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
           | _ -> false
      do
        incr pos
      done;
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> Num f
      | None -> raise (Bad (Printf.sprintf "bad number at %d" start))
    in
    let rec value () =
      skip_ws ();
      match peek () with
      | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = string_lit () in
            skip_ws ();
            expect ':';
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              incr pos;
              fields ((k, v) :: acc)
            | Some '}' ->
              incr pos;
              Obj (List.rev ((k, v) :: acc))
            | _ -> raise (Bad (Printf.sprintf "expected , or }} at %d" !pos))
          in
          fields []
        end
      | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          List []
        end
        else begin
          let rec items acc =
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              incr pos;
              items (v :: acc)
            | Some ']' ->
              incr pos;
              List (List.rev (v :: acc))
            | _ -> raise (Bad (Printf.sprintf "expected , or ] at %d" !pos))
          in
          items []
        end
      | Some '"' -> Str (string_lit ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> number ()
      | None -> raise (Bad "empty input")
    in
    match
      let v = value () in
      skip_ws ();
      if !pos <> n then raise (Bad (Printf.sprintf "trailing garbage at %d" !pos));
      v
    with
    | v -> Ok v
    | exception Bad msg -> Error msg

  let member k = function Obj fields -> List.assoc_opt k fields | _ -> None
end

let to_json t =
  Json.Obj
    [
      ("domains", Json.Num (float_of_int (domains t)));
      ("states_interned", Json.Num (float_of_int (states_interned t)));
      ("dedup_hits", Json.Num (float_of_int (dedup_hits t)));
      ("dedup_rate", Json.Num (dedup_rate t));
      ("edges", Json.Num (float_of_int (edges t)));
      ("pruned_writes", Json.Num (float_of_int (pruned_writes t)));
      ("truncated_interns", Json.Num (float_of_int (truncated_interns t)));
      ("ample_states", Json.Num (float_of_int (ample_states t)));
      ("canonicalized", Json.Num (float_of_int (canonicalized t)));
      ( "downgrade",
        match downgrade t with None -> Json.Null | Some r -> Json.Str r );
      ("steps", Json.Num (float_of_int (steps t)));
      ("messages", Json.Num (float_of_int (messages t)));
      ("peak_frontier", Json.Num (float_of_int (peak_frontier t)));
      ("states_per_sec", Json.Num (states_per_sec t));
      ( "phases",
        Json.Obj (List.map (fun (name, secs) -> (name, Json.Num secs)) (phases t)) );
    ]

let pp ppf t =
  Fmt.pf ppf
    "@[<v>states: %d (dedup hits %d, rate %.2f)@,\
     edges: %d; pruned writes: %d; truncated interns: %d@,\
     peak frontier: %d; domains: %d@,\
     states/sec: %.0f@,\
     phases: %a@]"
    (states_interned t) (dedup_hits t) (dedup_rate t) (edges t) (pruned_writes t)
    (truncated_interns t) (peak_frontier t) (domains t) (states_per_sec t)
    Fmt.(list ~sep:(any ", ") (fun ppf (n, s) -> Fmt.pf ppf "%s=%.3fs" n s))
    (phases t)
