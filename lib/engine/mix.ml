(* Small integer hash mixers shared by every digest in the engine.

   [mix3]/[mix4] are splitmix-style finalizers over small integers: no
   allocation, avalanche good enough for hash tables, and — because they
   only ever see canonical interned ids (arena path ids, protocol message
   ids, node numbers) — the resulting digests are stable across domains of
   one process, which is what lets parallel explorers shard intern tables
   by digest.  Extracted from [State] (PR 7) so protocol-generic state
   digests use the same algebra as the path-vector hot path. *)

let mix3 tag a b =
  let h = (tag + 1) * 0x2545F4914F6CDD1D in
  let h = (h lxor a) * 0x2127599BF4325C37 in
  let h = (h lxor b) * 0x2545F4914F6CDD1D in
  h lxor (h lsr 31)

let mix4 tag a b c = mix3 (mix3 tag a b) b c

(* Digest of one channel's queue, oldest first: a seed from the endpoints
   (tag 0x53) extended per message (tag 0x54).  Folding is associative on
   the left, so pushing one message extends the previous digest in O(1). *)
let h_chan_seed (c : Channel.id) = mix3 0x53 c.Channel.src c.Channel.dst
let h_chan_ext acc msg = mix3 0x54 acc msg
let h_chan c msgs = List.fold_left h_chan_ext (h_chan_seed c) msgs
