(** Directed FIFO communication channels.

    For each undirected edge {u, v} of an instance there are two channels
    (u, v) and (v, u); a channel's contents is the FIFO queue of route
    announcements written by its source and not yet processed by its
    destination (Sec. 2.1).

    Queues hold {!Spp.Arena.id}s — the hash-consed compact representation —
    so pushing, digesting and comparing channel states costs O(1) per
    message instead of O(path length).  Use {!get_paths} /
    {!bindings_paths} to materialize at pretty-print boundaries. *)

type id = { src : Spp.Path.node; dst : Spp.Path.node }

val id : src:Spp.Path.node -> dst:Spp.Path.node -> id
val reverse : id -> id
val compare_id : id -> id -> int
val equal_id : id -> id -> bool
val pp_id : Spp.Instance.t -> Format.formatter -> id -> unit

module Map : Map.S with type key = id

type contents = Spp.Arena.id list
(** Oldest message first.  Messages are the sender's chosen path;
    {!Spp.Arena.epsilon} is a withdrawal. *)

type t = contents Map.t
(** Channel states of a whole network; absent keys are empty channels, and
    the map never stores empty lists, so structural equality of maps is
    semantic equality of channel states. *)

val empty : t
val get : t -> id -> contents

val get_paths : t -> id -> Spp.Path.t list
(** {!get} materialized; O(1) per message. *)

val length : t -> id -> int

val push : t -> id -> Spp.Arena.id -> t
(** Appends at the back of the queue. *)

val push_path : t -> id -> Spp.Path.t -> t
(** {!push} composed with {!Spp.Arena.intern}. *)

val drop_first : t -> id -> int -> t
(** [drop_first t c i] removes the [i] oldest messages (at most the current
    length). *)

val total_messages : t -> int
val max_occupancy : t -> int
val bindings : t -> (id * contents) list
val bindings_paths : t -> (id * Spp.Path.t list) list
