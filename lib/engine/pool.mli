(** A persistent pool of worker domains.

    [Domain.spawn] costs a runtime rendezvous with every live domain plus
    thread creation — milliseconds of wall time that PR 1's explorer and
    the conformance fuzzer paid on {e every} exploration.  A pool spawns
    each worker domain once per process, parks it on a condition variable
    between jobs, and reuses it for every subsequent parallel region, so
    repeated short explorations (the fuzzer runs thousands) pay the spawn
    cost zero or one times instead of per call.

    The pool is sized on demand: it holds [max (requested - 1)] workers
    ever seen, bounded by {!max_workers}.  The calling domain always
    participates as worker [0], so [run ~workers:k] uses [k - 1] pool
    domains.  Concurrent [run] calls are safe (a busy worker is skipped
    until it finishes its job; callers wait on the worker's own condition
    variable).  A job that itself calls [run] (re-entrancy) is detected
    and degrades to inline sequential execution of the instances — it
    never waits on pool mailboxes, so it cannot deadlock. *)

type t

val get : unit -> t
(** The process-global pool.  Workers are spawned lazily by {!run}. *)

val max_workers : int
(** Upper bound on pool domains (well below the OCaml runtime's domain
    limit); [run ~workers] beyond [max_workers + 1] is clamped. *)

val size : t -> int
(** Worker domains currently parked in (or running a job for) the pool. *)

val run : t -> workers:int -> (int -> unit) -> unit
(** [run t ~workers f] executes [f 0 .. f (workers - 1)] concurrently:
    [f 0] on the calling domain, the rest on pool workers (spawned on
    first use, reused afterwards), and returns when all have finished.
    [workers <= 1] degenerates to [f 0] with no synchronization.  If one
    or more instances of [f] raise, one of the exceptions is re-raised
    after all instances have finished. *)

type stats = {
  size : int;  (** worker domains alive now *)
  spawned_total : int;  (** domains ever spawned (growth events) *)
  runs : int;  (** parallel regions executed ([run] with [workers > 1]) *)
}

val stats : t -> stats
(** Reuse observability: a healthy workload shows [runs] growing while
    [spawned_total] stays put — see the pool block of
    [BENCH_explore.json] (schema v3). *)
