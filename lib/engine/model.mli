(** The taxonomy of communication models (Sec. 2.2 of the paper).

    A model fixes the three dimensions — channel reliability, number of
    neighbors processed per update, number of messages processed per
    channel — with exactly one node updating per step.  The 24 models are
    named as in the paper: [RMS], [U1O], [REA], ... *)

type reliability = Reliable | Unreliable
type neighbors = N_one | N_multi | N_every
type messages = M_one | M_some | M_forced | M_all

type t = { rel : reliability; nbr : neighbors; msg : messages }

val make : reliability -> neighbors -> messages -> t
val all : t list
(** All 24 models, in the row/column order of Figures 3 and 4:
    O, S, F, A major; 1, M, E minor; reliable before unreliable. *)

val reliable : t list
val unreliable : t list

val to_string : t -> string
(** E.g. "RMS". *)

val of_string : string -> t option
(** Inverse of {!to_string}, tolerant of surrounding whitespace and case
    ([" rms "] parses as [RMS]).  Never raises; [None] on anything that is
    not a model name. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
val compare : t -> t -> int

(** {1 Families named in Sec. 2.3} *)

val is_polling : t -> bool  (** y = A: "poll one/some/all" *)

val is_message_passing : t -> bool  (** y = O *)

val is_queueing : t -> bool  (** RMS and UMS *)

(** {1 Syntactic inclusion}

    [includes a b] holds when every activation sequence of [b] is one of
    [a]; this is the observation behind Prop. 3.3. *)

val includes : t -> t -> bool

(** {1 Entry validation} *)

val required_channels : Spp.Instance.t -> Spp.Path.node -> Channel.id list
(** The channels a node must process under an E model: all its in-channels.
    The destination's in-channels are omitted everywhere in this engine
    because their contents can never affect any route choice (see
    DESIGN.md). *)

type violation =
  | Ill_formed of Activation.error
  | Not_single_node
  | Wrong_channel_set  (** X violates the neighbors dimension *)
  | Wrong_count of Channel.id  (** f(c) violates the messages dimension *)
  | Drop_on_reliable of Channel.id

val pp_violation : Spp.Instance.t -> Format.formatter -> violation -> unit

val node_violations_for :
  required:Channel.id list -> t -> Activation.read list -> violation list
(** The per-node dimension checks, parametric in the channels the node is
    required to read — the SPP validators pass {!required_channels}, the
    protocol-generic engine ({!Generic.Make}) passes the protocol's
    [in_channels].  [reads] must be the reads whose receiver is the node
    in question. *)

val violations : Spp.Instance.t -> t -> Activation.t -> violation list
val validates : Spp.Instance.t -> t -> Activation.t -> bool

val validates_multi : Spp.Instance.t -> t -> Activation.t -> bool
(** Like {!validates} but allowing several nodes to update per step (the
    extension of Ex. A.6): each active node's reads must satisfy the
    per-node dimensions. *)
