(* Push-sum averaging (Kempe-Dobra-Gehrke) as a generic protocol.

   Each node holds a (sum, weight) pair, initially (value, 1).  On
   activation it keeps one (deg+1)-th of its pair and sends one share to
   each neighbor; received shares are added in.  The estimate s/w of every
   node converges to the true average — provided no share is ever lost.

   Messages must be ints for the engine, so (ds, dw) pairs are interned in
   a process-global mutex-protected table (the generic engine may run
   executors on several domains).  Interning floats is exact: equal pairs
   get equal ids, so state equality stays semantic.

   The protocol's signature invariant is mass conservation: the sum of all
   local [s] plus all in-flight message [ds] is constant under every
   reliable model (up to float rounding — shares are computed by
   multiplication, so re-adding them loses ulps).  Under unreliable models
   every dropped message removes its share permanently: the executor's
   dropped-message lists reconcile the deficit exactly, and the 24-model
   bench reports the surviving mass fraction rather than hiding it.

   The state space is infinite (fresh float pairs every round), so push-sum
   is executed and measured, never explored: [Gexplore] would simply run
   to its state bound and return Unknown. *)

let name = "push-sum"

type instance = {
  topo : Topo.t;
  values : float array;
  eps : float;
  avg : float;
}

let make ?(eps = 1e-3) topo values =
  if Array.length values <> topo.Topo.n then
    invalid_arg "Pushsum.make: one value per node required";
  if not (eps > 0.) then invalid_arg "Pushsum.make: eps must be positive";
  let avg = Array.fold_left ( +. ) 0. values /. float_of_int topo.Topo.n in
  { topo; values; eps; avg }

(* A default value assignment that makes convergence measurable: node i
   starts with value i, so initial estimates span [0, n). *)
let linear ?eps topo =
  make ?eps topo (Array.init topo.Topo.n float_of_int)

let average t = t.avg
let nodes t = Topo.nodes t.topo
let node_name t v = Topo.node_name t.topo v
let in_channels t v = Topo.in_channels t.topo v

type local = { s : float; w : float }

let initial_local t v = { s = t.values.(v); w = 1. }
let equal_local (a : local) b = a.s = b.s && a.w = b.w
let compare_local (a : local) b = compare (a.s, a.w) (b.s, b.w)
let local_digest v (l : local) = Hashtbl.hash (v, l.s, l.w)
let observable _t v l = local_digest v l

(* -- message interning -------------------------------------------------- *)

let mu = Mutex.create ()
let tbl : (float * float, int) Hashtbl.t = Hashtbl.create 256
let rev : (float * float) array ref = ref (Array.make 256 (0., 0.))
let n_interned = ref 0

let intern p =
  Mutex.lock mu;
  let id =
    match Hashtbl.find_opt tbl p with
    | Some id -> id
    | None ->
      let id = !n_interned in
      if id = Array.length !rev then begin
        let bigger = Array.make (2 * id) (0., 0.) in
        Array.blit !rev 0 bigger 0 id;
        rev := bigger
      end;
      !rev.(id) <- p;
      Hashtbl.replace tbl p id;
      incr n_interned;
      id
  in
  Mutex.unlock mu;
  id

let payload id =
  Mutex.lock mu;
  if id < 0 || id >= !n_interned then begin
    Mutex.unlock mu;
    invalid_arg "Pushsum.payload: unknown message id"
  end
  else begin
    let p = !rev.(id) in
    Mutex.unlock mu;
    p
  end

let pp_msg _t ppf m =
  let ds, dw = payload m in
  Fmt.pf ppf "(%g,%g)" ds dw

(* -- semantics ---------------------------------------------------------- *)

let receive _t _v l ~src:_ kept =
  List.fold_left
    (fun (l : local) m ->
      let ds, dw = payload m in
      { s = l.s +. ds; w = l.w +. dw })
    l kept

let update t v (l : local) =
  let deg = Topo.degree t.topo v in
  let alpha = 1. /. float_of_int (deg + 1) in
  let share = { s = alpha *. l.s; w = alpha *. l.w } in
  let msg = intern (share.s, share.w) in
  ( share,
    List.map (fun u -> (Engine.Channel.id ~src:v ~dst:u, msg)) (Topo.neighbors t.topo v) )

let node_converged t _v (l : local) =
  l.w > 0. && Float.abs ((l.s /. l.w) -. t.avg) <= t.eps

let drains = false

(* Every message carries mass: collapsing a queue to its last element would
   destroy it, and a stuck cycle is meaningless for an infinite state
   space. *)
let idempotent = false
let stuck_is_divergent = false
let project_msg _t ~dst:_ m = m
let project_local _t _v l = l
let pp_local _t _v ppf (l : local) = Fmt.pf ppf "(%g,%g)~%g" l.s l.w (l.s /. l.w)
