(* Plain undirected topologies for the non-SPP protocols.  An SPP instance
   carries rankings and permitted paths; gossip and push-sum only need the
   graph, so they share this little record instead. *)

type t = { name : string; n : int; adj : int list array }

let check_n what n = if n < 1 then invalid_arg ("Topo." ^ what ^ ": n must be >= 1")

let make ~name ~n edges =
  check_n "make" n;
  let adj = Array.make n [] in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n || u = v then
        invalid_arg "Topo.make: bad edge";
      adj.(u) <- v :: adj.(u);
      adj.(v) <- u :: adj.(v))
    edges;
  { name; n; adj = Array.map (List.sort_uniq compare) adj }

let ring n =
  if n < 3 then invalid_arg "Topo.ring: n must be >= 3";
  make ~name:(Printf.sprintf "ring%d" n) ~n
    (List.init n (fun i -> (i, (i + 1) mod n)))

(* Node 0 is the hub. *)
let star n =
  if n < 2 then invalid_arg "Topo.star: n must be >= 2";
  make ~name:(Printf.sprintf "star%d" n) ~n (List.init (n - 1) (fun i -> (0, i + 1)))

let complete n =
  if n < 2 then invalid_arg "Topo.complete: n must be >= 2";
  make ~name:(Printf.sprintf "complete%d" n) ~n
    (List.concat
       (List.init n (fun u -> List.init u (fun v -> (u, v)))))

let nodes t = List.init t.n Fun.id
let neighbors t v = t.adj.(v)
let degree t v = List.length t.adj.(v)
let node_name _t v = Printf.sprintf "n%d" v

let in_channels t v =
  List.map (fun u -> Engine.Channel.id ~src:u ~dst:v) t.adj.(v)

let all_named = [ ("ring", ring); ("star", star); ("complete", complete) ]
