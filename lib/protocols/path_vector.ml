(* Path-vector SPP as an instance of the generic protocol interface.

   This is a thin adapter: the local state is exactly the per-node slice of
   the legacy [Engine.State] (chosen route [pi], last announced route [ann],
   last heard route per in-neighbor [rho]), messages are {!Spp.Arena} ids
   with epsilon as withdrawal, and [update] is the legacy
   [State.best_choice_id] fold verbatim — same rank comparison, same
   smaller-neighbor tie-break, same push-to-all-but-dest announcement rule.
   The parity suite pins [Gexplore.Make (Path_vector)] to the legacy
   explorer's verdicts and state counts on the paper's gadgets across all
   24 models; the legacy modules remain the specialized hot path (export
   policies, Pool parallelism, checkpointing live only there). *)

open Spp

module IMap = Map.Make (Int)

let name = "path-vector"

type instance = Instance.t

let nodes = Instance.nodes
let node_name = Instance.name

(* The destination's in-channels are untracked (its inbox can never affect
   a route choice): an empty list exempts it from read obligations, exactly
   like [Model.required_channels]. *)
let in_channels inst v =
  if v = Instance.dest inst then []
  else List.map (fun u -> Engine.Channel.id ~src:u ~dst:v) (Instance.neighbors inst v)

type local = {
  pi : Arena.id;
  ann : Arena.id;
  rho : Arena.id IMap.t; (* keyed by in-neighbor; absent = epsilon *)
}

let initial_local inst v =
  let pi = if v = Instance.dest inst then Instance.trivial_id inst else Arena.epsilon in
  { pi; ann = Arena.epsilon; rho = IMap.empty }

let equal_local a b =
  Arena.equal a.pi b.pi && Arena.equal a.ann b.ann
  && IMap.equal Arena.equal a.rho b.rho

let compare_local a b =
  let c = Arena.compare a.pi b.pi in
  if c <> 0 then c
  else
    let c = Arena.compare a.ann b.ann in
    if c <> 0 then c else IMap.compare Arena.compare a.rho b.rho

let local_digest v l =
  IMap.fold
    (fun u r acc -> acc lxor Engine.Mix.mix4 0x62 v u r)
    l.rho
    (Engine.Mix.mix3 0x60 v l.pi lxor Engine.Mix.mix3 0x61 v l.ann)

(* Divergence requires the chosen route to change along the fair cycle —
   the legacy oscillation criterion. *)
let observable _inst _v l = l.pi

let pp_msg inst ppf m = Instance.pp_path inst ppf (Arena.path m)

(* Only the newest kept message matters: it becomes the known route of the
   read channel (epsilon withdraws, i.e. removes the binding — the map
   normalization [equal_local] relies on). *)
let receive _inst _v l ~src kept =
  match List.rev kept with
  | [] -> l
  | newest :: _ ->
    let rho =
      if Arena.is_epsilon newest then IMap.remove src l.rho
      else IMap.add src newest l.rho
    in
    { l with rho }

let rho_of l u = match IMap.find_opt u l.rho with Some r -> r | None -> Arena.epsilon

(* [State.best_choice_id] on the local rho slice. *)
let best_choice_id inst l v =
  if v = Instance.dest inst then Instance.trivial_id inst
  else
    let best =
      List.fold_left
        (fun acc u ->
          let r = rho_of l u in
          if Arena.is_epsilon r then acc
          else
            match Instance.permitted_extension inst v r with
            | None -> acc
            | Some (pid, rank) ->
              (match acc with
              | Some (_, s, _) when s < rank -> acc
              | Some (_, s, w) when s = rank && w < u -> acc
              | _ -> Some (pid, rank, u)))
        None (Instance.neighbors inst v)
    in
    match best with None -> Arena.epsilon | Some (pid, _, _) -> pid

let update inst v l =
  let p = best_choice_id inst l v in
  let l = { l with pi = p } in
  if Arena.equal p l.ann then (l, [])
  else
    let dest = Instance.dest inst in
    let out =
      List.filter_map
        (fun u ->
          (* channels into the destination are not tracked *)
          if u = dest then None else Some (Engine.Channel.id ~src:v ~dst:u, p))
        (Instance.neighbors inst v)
    in
    ({ l with ann = p }, out)

let node_converged inst v l =
  let p = best_choice_id inst l v in
  Arena.equal p l.pi && Arena.equal p l.ann

let drains = true
let idempotent = true
let stuck_is_divergent = false

let relevant inst v r =
  (not (Arena.is_epsilon r)) && Instance.permitted_extension inst v r <> None

let project_msg inst ~dst r = if relevant inst dst r then r else Arena.epsilon

let project_local inst v l =
  let rho = IMap.filter (fun _ r -> relevant inst v r) l.rho in
  if rho == l.rho then l else { l with rho }

let pp_local inst _v ppf l =
  let pp_path = Instance.pp_path inst in
  Fmt.pf ppf "@[pi=%a ann=%a rho={%a}@]" pp_path (Arena.path l.pi) pp_path
    (Arena.path l.ann)
    Fmt.(
      list ~sep:(any ",") (fun ppf (u, r) ->
          Fmt.pf ppf "%s:%a" (Instance.name inst u) pp_path (Arena.path r)))
    (IMap.bindings l.rho)
