(* Rumor-spreading gossip as a generic protocol.

   One source node starts infected; an infected node announces the rumor to
   every neighbor exactly once (announce-once keeps the state space finite);
   any received message infects.  Convergence is "every node infected" —
   channels need not drain, so a converged state may still carry in-flight
   rumor copies.

   The infected set grows monotonically (pinned by a QCheck property), so
   converged states are absorbing.  Under reliable models the rumor can
   never be lost and every fair schedule converges; under unreliable models
   dropping the right copies strands the uninfected remainder forever with
   no observable ever changing again — exactly the stuck fair cycles that
   [stuck_is_divergent] makes the generic analysis report as divergence. *)

let name = "gossip"

type instance = { topo : Topo.t; source : int }

let make ?(source = 0) topo =
  if source < 0 || source >= topo.Topo.n then invalid_arg "Gossip.make: bad source";
  { topo; source }

let nodes t = Topo.nodes t.topo
let node_name t v = Topo.node_name t.topo v
let in_channels t v = Topo.in_channels t.topo v

type local = { infected : bool; announced : bool }

let initial_local t v = { infected = v = t.source; announced = false }
let equal_local (a : local) b = a = b
let compare_local (a : local) b = compare a b

let encode l = (if l.infected then 2 else 0) + if l.announced then 1 else 0
let local_digest v l = Engine.Mix.mix3 0x63 v (encode l)
let observable _t _v l = if l.infected then 1 else 0

(* The only message is the rumor itself. *)
let rumor = 1
let pp_msg _t ppf m =
  if m = rumor then Fmt.string ppf "rumor" else Fmt.pf ppf "msg%d" m

let receive _t _v l ~src:_ kept =
  if kept = [] then l else { l with infected = true }

let update t v l =
  if l.infected && not l.announced then
    ( { l with announced = true },
      List.map
        (fun u -> (Engine.Channel.id ~src:v ~dst:u, rumor))
        (Topo.neighbors t.topo v) )
  else (l, [])

let node_converged _t _v l = l.infected
let drains = false
let idempotent = true
let stuck_is_divergent = true
let project_msg _t ~dst:_ m = m
let project_local _t _v l = l

let pp_local _t _v ppf l =
  Fmt.pf ppf "%s%s"
    (if l.infected then "infected" else "susceptible")
    (if l.announced then "+announced" else "")
