(* Perturbation-candidate generation (the hunt's input stream).

   Godfrey's "BGP Stability is Precarious" argues that essentially any
   perturbation of a path-vector decision process admits divergence; this
   module turns that claim into a deterministic candidate stream.  Each
   seed yields a batch of candidates derived from convergent bases —
   shortest-path rings and safe generated instances perturbed by
   {!Spp.Mutate} surgery (rank swaps, permitted-path additions/removals),
   plus {!Spp.Algebra} compositions (stock monotone algebras,
   lexicographic products, and deliberately non-monotone tweaks such as a
   longest-path tie-break on Gao–Rexford classes).  Generation is
   deterministic in the seed. *)

type alg = Alg : 'w Spp.Algebra.algebra * Spp.Algebra.labeled_graph -> alg

type source = Surgery of Spp.Instance.t | Algebraic of alg

type t = { name : string; seed : int; descr : string; source : source }

let instance c =
  match c.source with
  | Surgery inst -> inst
  | Algebraic (Alg (alg, g)) -> Spp.Algebra.compile alg g

(* ------------------------------------------------------------------ *)
(* Adversarial algebra tweaks. *)

(* Longest-path preference: extension strictly improves, the polar
   opposite of the Daggitt–Griffin strict-increase condition; on any
   cyclic graph each node prefers the long way around, a rotational
   DISAGREE. *)
let longest_paths =
  {
    Spp.Algebra.name = "longest-paths";
    extend = (fun ~label w -> Some (label + w));
    origin = 0;
    prefer = (fun a b -> compare b a);
  }

(* Gao–Rexford with the intra-class tie-break flipped to prefer longer
   routes: the class preference (customer < peer < provider) survives,
   but the length tie-break no longer makes extension monotone. *)
let gao_rexford_longest =
  {
    Spp.Algebra.gao_rexford with
    name = "gao-rexford-longest";
    prefer =
      (fun a b ->
        let ca = a / 256 and ha = a mod 256 in
        let cb = b / 256 and hb = b mod 256 in
        let c = compare ca cb in
        if c <> 0 then c else compare hb ha);
  }

(* ------------------------------------------------------------------ *)
(* Labeled ring graphs for the algebraic candidates. *)

let ring_graph ~spokes ~label =
  let n = spokes + 1 in
  let names =
    Array.init n (fun i -> if i = 0 then "d" else Printf.sprintf "v%d" i)
  in
  let links =
    (* Spokes 1..k in a ring, nodes 1 and 2 linked to the destination —
       the same shape as Gadgets.shortest_paths. *)
    (1, 0, label 1 0, label 0 1)
    :: (2, 0, label 2 0, label 0 2)
    :: List.init (spokes - 1) (fun i ->
           (i + 1, i + 2, label (i + 1) (i + 2), label (i + 2) (i + 1)))
  in
  { Spp.Algebra.names; dest = 0; links }

(* ------------------------------------------------------------------ *)
(* Candidate batches. *)

let pick rng l =
  match l with [] -> None | _ -> Some (List.nth l (rng (List.length l)))

let swappable inst =
  List.filter
    (fun v ->
      v <> Spp.Instance.dest inst
      && List.length (Spp.Instance.permitted inst v) >= 2)
    (Spp.Instance.nodes inst)

(* Swap the two most-preferred paths of one node. *)
let rank_swap rng inst =
  Option.bind (pick rng (swappable inst)) (fun v ->
      Option.map
        (fun inst' -> (Printf.sprintf "swap top ranks at %s" (Spp.Instance.name inst v), inst'))
        (Spp.Mutate.swap_ranks inst v 0 1))

(* Swap the top ranks at both endpoints of an edge: the cyclic-preference
   pattern (each endpoint promoting a route through the other) that
   DISAGREE instantiates. *)
let adjacent_swap inst =
  let candidates =
    List.filter
      (fun (u, v) ->
        let ok w =
          w <> Spp.Instance.dest inst
          && List.length (Spp.Instance.permitted inst w) >= 2
        in
        ok u && ok v)
      (Spp.Instance.edges inst)
  in
  List.find_map
    (fun (u, v) ->
      Option.bind (Spp.Mutate.swap_ranks inst u 0 1) (fun inst' ->
          Option.map
            (fun inst'' ->
              ( Printf.sprintf "swap top ranks at adjacent %s and %s"
                  (Spp.Instance.name inst u) (Spp.Instance.name inst v),
                inst'' ))
            (Spp.Mutate.swap_ranks inst' v 0 1)))
    candidates

let path_addition rng inst =
  let additions =
    List.concat_map
      (fun v ->
        if v = Spp.Instance.dest inst then []
        else
          List.filter_map
            (fun p ->
              if Spp.Instance.is_permitted inst v p then None else Some (v, p))
            (Spp.Mutate.simple_paths inst v))
      (Spp.Instance.nodes inst)
  in
  Option.bind (pick rng additions) (fun (v, p) ->
      Option.map
        (fun inst' ->
          ( Fmt.str "add most-preferred path %a at %s" (Spp.Instance.pp_path inst)
              p (Spp.Instance.name inst v),
            inst' ))
        (Spp.Mutate.add_path inst v p ~pos:0))

let path_removal rng inst =
  Option.bind (pick rng (swappable inst)) (fun v ->
      let p = List.hd (Spp.Instance.permitted inst v) in
      Option.map
        (fun inst' ->
          ( Fmt.str "drop most-preferred path %a at %s"
              (Spp.Instance.pp_path inst) p (Spp.Instance.name inst v),
            inst' ))
        (Spp.Mutate.drop_path inst v p))

let surgery_candidate ~seed ~name ~base_descr op base =
  match op base with
  | Some (descr, inst) ->
    { name; seed; descr = base_descr ^ ": " ^ descr; source = Surgery inst }
  | None ->
    (* The mutation was inapplicable (or would break validation): keep the
       unperturbed base as skip fodder rather than dropping the slot, so
       candidate counts stay deterministic in the seed. *)
    { name; seed; descr = base_descr ^ ": unperturbed"; source = Surgery base }

let batch seed =
  (* splitmix-style mixing, stable across OCaml versions. *)
  let state = ref (seed * 0x9E3779B9 + 0x85EBCA6B) in
  let rng bound =
    state := (!state * 0x2545F491) land 0x3FFFFFFF;
    state := !state lxor (!state lsr 13);
    !state mod max 1 bound
  in
  let ring = Spp.Gadgets.shortest_paths ~n:(3 + (seed mod 3)) in
  let ring_descr = Printf.sprintf "ring-%d" (3 + (seed mod 3)) in
  let gen_cfg =
    {
      Spp.Generator.nodes = 4 + (seed mod 2);
      extra_edges = 1 + (seed mod 2);
      max_paths_per_node = 3;
      max_path_len = 4;
      seed;
    }
  in
  let gen = Spp.Generator.safe_instance gen_cfg in
  let gen_descr = Printf.sprintf "safe-gen-%d" seed in
  let spokes = 2 + (seed mod 3) in
  let nm kind = Printf.sprintf "s%d-%s" seed kind in
  [
    surgery_candidate ~seed ~name:(nm "ring-swap") ~base_descr:ring_descr
      (rank_swap rng) ring;
    surgery_candidate ~seed ~name:(nm "ring-swap2") ~base_descr:ring_descr
      adjacent_swap ring;
    surgery_candidate ~seed ~name:(nm "gen-swap") ~base_descr:gen_descr
      (rank_swap rng) gen;
    surgery_candidate ~seed ~name:(nm "gen-add") ~base_descr:gen_descr
      (path_addition rng) gen;
    surgery_candidate ~seed ~name:(nm "gen-drop") ~base_descr:gen_descr
      (path_removal rng) gen;
    {
      name = nm "alg-shortest";
      seed;
      descr = Printf.sprintf "shortest-paths on %d-spoke ring, costs 1-3" spokes;
      source =
        Algebraic
          (Alg
             ( Spp.Algebra.shortest_paths,
               ring_graph ~spokes ~label:(fun u v -> 1 + ((u + v) mod 3)) ));
    };
    {
      name = nm "alg-widest";
      seed;
      descr = Printf.sprintf "widest-paths on %d-spoke ring, capacities 1-4" spokes;
      source =
        Algebraic
          (Alg
             ( Spp.Algebra.widest_paths,
               ring_graph ~spokes ~label:(fun u v -> 1 + ((u + (2 * v)) mod 4)) ));
    };
    {
      name = nm "alg-lex";
      seed;
      descr =
        Printf.sprintf "lex(shortest, widest) on %d-spoke ring" spokes;
      source =
        Algebraic
          (Alg
             ( Spp.Algebra.lex ~name:"shortest-then-widest"
                 Spp.Algebra.shortest_paths Spp.Algebra.widest_paths,
               ring_graph ~spokes ~label:(fun u v -> 1 + ((u + v) mod 3)) ));
    };
    {
      name = nm "alg-longest";
      seed;
      descr = Printf.sprintf "longest-paths on %d-spoke ring" spokes;
      source =
        Algebraic
          (Alg (longest_paths, ring_graph ~spokes ~label:(fun _ _ -> 1)));
    };
    {
      name = nm "alg-gr-longest";
      seed;
      descr =
        Printf.sprintf
          "gao-rexford with longest-route tie-break on %d-spoke customer ring"
          spokes;
      source =
        Algebraic
          (Alg
             ( gao_rexford_longest,
               ring_graph ~spokes ~label:(fun _ _ -> Spp.Algebra.label_customer)
             ));
    };
  ]

let generate ~seeds = List.concat_map batch (List.init (max 0 seeds) Fun.id)
