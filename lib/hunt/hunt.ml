(** Adversarial divergence hunter (the workload named by Godfrey's "BGP
    Stability is Precarious"): perturb SPP instances and policies, filter
    with cheap static convergence certificates, hunt the survivors for
    dispute wheels and model-dependent oscillations, shrink what is found
    into minimal gadgets, and grow a committed, deterministically
    replayable counterexample corpus.

    {!Perturb} generates deterministic candidate batches; {!Precheck} is
    the static prefilter (Daggitt–Griffin strict monotonicity, dispute
    wheels); {!Search} drives the budgeted per-model oscillation sweep on
    the engine pool with journaled resume; {!Minimize} is the
    ddmin/instance-surgery shrinker; {!Corpus} serializes and replays the
    committed [results/hunt/] findings; {!Journal} is the per-candidate
    progress journal behind [--resume]. *)

module Perturb = Perturb
module Precheck = Precheck
module Minimize = Minimize
module Corpus = Corpus
module Journal = Journal
module Search = Search

let replay = Corpus.replay
let replay_file = Corpus.replay_file
