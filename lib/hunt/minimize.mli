(** Finding minimization: ddmin + instance surgery, over the shared
    {!Spp.Mutate} primitives (the same surgery the conformance shrinker
    uses), with the instance as the only axis.

    Pass 1 is ddmin over the permitted-path set (contiguous chunk removal,
    halving); pass 2 is greedy edge-drop / node-isolation / path-drop to a
    fixpoint.  Every intermediate accepted by [keep] is well-formed by
    construction. *)

type step = { descr : string; inst : Spp.Instance.t }

val minimize :
  keep:(Spp.Instance.t -> bool) -> Spp.Instance.t -> Spp.Instance.t
(** Smallest [keep]-preserving instance the passes reach; the input
    unchanged when it does not satisfy [keep]. *)

val minimize_trace :
  keep:(Spp.Instance.t -> bool) ->
  Spp.Instance.t ->
  Spp.Instance.t * step list
(** Like {!minimize} but also returns every accepted shrink step in order
    — the shrink-soundness property test replays each one. *)
