(** Perturbation-candidate generation.

    Turns Godfrey's "essentially any perturbation admits divergence" claim
    into a deterministic candidate stream: each seed yields a batch of
    named candidates derived from convergent bases — shortest-path rings
    and safe generated instances perturbed by {!Spp.Mutate} surgery (rank
    swaps, permitted-path additions/removals) — plus {!Spp.Algebra}
    compositions: stock monotone algebras and lexicographic products
    (static-filter fodder) and deliberately non-monotone tweaks
    ({!longest_paths}, {!gao_rexford_longest}) that seed real dispute
    wheels.  Generation is deterministic in the seed. *)

type alg = Alg : 'w Spp.Algebra.algebra * Spp.Algebra.labeled_graph -> alg

type source =
  | Surgery of Spp.Instance.t  (** an already-perturbed concrete instance *)
  | Algebraic of alg  (** compiled on demand by {!instance} *)

type t = { name : string; seed : int; descr : string; source : source }

val instance : t -> Spp.Instance.t
(** The concrete SPP instance (compiles algebraic candidates); the static
    prefilter avoids calling this for candidates it can reject from the
    algebra alone. *)

val longest_paths : int Spp.Algebra.algebra
(** Longest-path preference: extension strictly improves, the polar
    opposite of the Daggitt–Griffin strict-increase condition. *)

val gao_rexford_longest : int Spp.Algebra.algebra
(** Gao–Rexford classes with the intra-class length tie-break flipped to
    prefer longer routes (non-monotone). *)

val ring_graph :
  spokes:int ->
  label:(Spp.Path.node -> Spp.Path.node -> int) ->
  Spp.Algebra.labeled_graph
(** The k-spoke ring graph the algebraic candidates compile on (same shape
    as {!Spp.Gadgets.shortest_paths}). *)

val batch : int -> t list
(** The candidate batch of one seed (fixed size, deterministic). *)

val generate : seeds:int -> t list
(** Batches of seeds [0 .. seeds-1], concatenated in order. *)
