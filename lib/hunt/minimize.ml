(* Finding minimization: the hunt's counterpart of the conformance
   harness's shrinker, over the same {!Spp.Mutate} surgery primitives but
   with the instance as the only axis (a finding has no schedule — its
   property is re-established by exploration).

   Pass 1 is ddmin over the permitted-path set: remove contiguous chunks
   of (node, path) pairs, halving chunk sizes down to single paths.
   Pass 2 is greedy surgery to a fixpoint: drop an edge (with the paths
   that cross it), isolate a node, or drop a single permitted path.
   Every accepted step is validated by construction ({!Spp.Mutate} only
   returns well-formed instances) and re-established by [keep]. *)

type step = { descr : string; inst : Spp.Instance.t }

let all_paths inst =
  List.concat_map
    (fun v ->
      if v = Spp.Instance.dest inst then []
      else List.map (fun p -> (v, p)) (Spp.Instance.permitted inst v))
    (Spp.Instance.nodes inst)

let remove_paths inst victims =
  Spp.Mutate.rebuild inst ~edges:(Spp.Instance.edges inst)
    ~keep_path:(fun v p ->
      not (List.exists (fun (v', p') -> v = v' && Spp.Path.equal p p') victims))

(* ddmin chunk removal over the permitted-path list. *)
let ddmin_paths ~keep ~trace inst0 =
  let inst = ref inst0 in
  let len = ref (List.length (all_paths inst0) / 2) in
  while !len >= 1 do
    let progressed = ref true in
    while !progressed do
      progressed := false;
      let paths = all_paths !inst in
      let n = List.length paths in
      let off = ref 0 in
      while !off + !len <= n && not !progressed do
        let chunk =
          List.filteri (fun i _ -> i >= !off && i < !off + !len) paths
        in
        (match remove_paths !inst chunk with
        | Some cand when keep cand ->
          trace
            {
              descr = Printf.sprintf "ddmin: drop %d permitted path(s)" !len;
              inst = cand;
            };
          inst := cand;
          progressed := true
        | _ -> incr off);
        ()
      done
    done;
    len := !len / 2
  done;
  !inst

(* Greedy one-step surgery candidates, cheapest-win first. *)
let surgery_candidates inst =
  let drop_edges =
    List.map
      (fun e ->
        ( Printf.sprintf "drop edge %s-%s"
            (Spp.Instance.name inst (fst e))
            (Spp.Instance.name inst (snd e)),
          lazy (Spp.Mutate.drop_edge inst e) ))
      (Spp.Instance.edges inst)
  in
  let isolate_nodes =
    List.filter_map
      (fun v ->
        if v = Spp.Instance.dest inst then None
        else
          Some
            ( Printf.sprintf "isolate node %s" (Spp.Instance.name inst v),
              lazy (Spp.Mutate.isolate inst v) ))
      (Spp.Instance.nodes inst)
  in
  let drop_paths =
    List.map
      (fun (v, p) ->
        ( Fmt.str "drop path %a at %s" (Spp.Instance.pp_path inst) p
            (Spp.Instance.name inst v),
          lazy (Spp.Mutate.drop_path inst v p) ))
      (all_paths inst)
  in
  drop_paths @ drop_edges @ isolate_nodes

(* Paths + edges: every surgery step must strictly decrease this, which
   is what guarantees the greedy fixpoint terminates. *)
let weight inst =
  List.length (all_paths inst) + List.length (Spp.Instance.edges inst)

let rec greedy ~keep ~trace inst =
  let w = weight inst in
  let better =
    List.find_map
      (fun (descr, cand) ->
        match Lazy.force cand with
        | Some c when weight c < w && keep c -> Some (descr, c)
        | _ -> None)
      (surgery_candidates inst)
  in
  match better with
  | Some (descr, c) ->
    trace { descr; inst = c };
    greedy ~keep ~trace c
  | None -> inst

let minimize_trace ~keep inst0 =
  if not (keep inst0) then (inst0, [])
  else begin
    let steps = ref [] in
    let trace s = steps := s :: !steps in
    let inst = ddmin_paths ~keep ~trace inst0 in
    let inst = greedy ~keep ~trace inst in
    (inst, List.rev !steps)
  end

let minimize ~keep inst = fst (minimize_trace ~keep inst)
