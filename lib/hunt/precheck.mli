(** Static prefilter: skip provably-convergent candidates before any
    explorer budget is spent.

    Two cheap signals, in cost order: the Daggitt–Griffin strict-increase
    condition over the candidate's algebra ({!Spp.Algebra.check_conditions},
    no compilation needed), then dispute-wheel absence
    ({!Spp.Dispute.find}) on the compiled instance — either one implies
    convergence under every communication model. *)

type skip_reason =
  | Algebra_strictly_monotone of { steps_checked : int }
  | No_dispute_wheel

type verdict =
  | Skip of skip_reason
  | Explore of { inst : Spp.Instance.t; wheel : Spp.Dispute.wheel }
      (** the wheel witnesses that explorer spend is justified *)

val reason_string : skip_reason -> string
(** Stable machine-readable tag, journaled and counted in the artifact. *)

val run : Perturb.t -> verdict
