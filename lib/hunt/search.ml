(* The hunt driver: perturbation candidates -> static prefilter ->
   per-model oscillation sweep -> classification -> shrink -> corpus.

   Candidates are independent, so they run on the persistent
   {!Engine.Pool} behind a shared atomic index (the conformance fuzzer's
   scheme); the per-candidate explorations themselves are forced
   sequential ([~domains:1]) — the parallelism budget is spent across
   candidates, not within them.  Every finished candidate is journaled
   (full outcome, including a finding's JSON), so a killed hunt resumes
   without re-spending explorer budget and reconstructs an identical
   artifact. *)

type budget = Smoke | Default | Deep

let budget_of_string = function
  | "smoke" -> Some Smoke
  | "default" -> Some Default
  | "deep" -> Some Deep
  | _ -> None

let budget_to_string = function
  | Smoke -> "smoke"
  | Default -> "default"
  | Deep -> "deep"

let model name =
  match Engine.Model.of_string name with
  | Some m -> m
  | None -> invalid_arg ("Search.model: " ^ name)

let models = function
  | Smoke -> [ model "R1O"; model "REO"; model "REA" ]
  | Default -> Engine.Model.reliable
  | Deep -> Engine.Model.all

let explore_config = function
  | Smoke -> { Modelcheck.Explore.channel_bound = 3; max_states = 4_000 }
  | Default -> { Modelcheck.Explore.channel_bound = 3; max_states = 20_000 }
  | Deep -> Modelcheck.Explore.default_config

type config = {
  seeds : int;
  budget : budget;
  domains : int;
  emit_dir : string option;
  journal : string option;
  journal_every : int;
  resume : bool;
  log : string -> unit;
}

let default_config =
  {
    seeds = 5;
    budget = Smoke;
    domains = Modelcheck.Explore.default_domains ();
    emit_dir = None;
    journal = None;
    journal_every = 1;
    resume = false;
    log = ignore;
  }

type status =
  | Skipped_static of string
  | Explored of (Engine.Model.t * string) list

type outcome = {
  name : string;
  seed : int;
  descr : string;
  status : status;
  finding : Corpus.finding option;
  resumed : bool;
}

type report = {
  seeds : int;
  budget : budget;
  checked_models : Engine.Model.t list;
  config : Modelcheck.Explore.config;
  outcomes : outcome list;  (** in candidate-generation order *)
}

let candidates_total r = List.length r.outcomes

let skipped_static r =
  List.length
    (List.filter
       (fun o -> match o.status with Skipped_static _ -> true | _ -> false)
       r.outcomes)

let explored r = candidates_total r - skipped_static r
let findings r = List.filter_map (fun o -> o.finding) r.outcomes
let resumed r = List.length (List.filter (fun o -> o.resumed) r.outcomes)

let skip_ratio r =
  let n = candidates_total r in
  if n = 0 then 0. else float_of_int (skipped_static r) /. float_of_int n

(* ------------------------------------------------------------------ *)
(* Candidate checking. *)

let analyze ~config inst m =
  Modelcheck.Oscillation.analyze ~config ~domains:1 inst m

let sweep ~config ~models inst =
  List.map
    (fun m -> (m, analyze ~config inst m))
    models

(* First oscillating model and first definitively converging model decide
   the classification; model order is the fixed paper order, so the
   classification is deterministic. *)
let classify verdicts =
  let osc =
    List.find_map
      (fun (m, v) ->
        match v with Modelcheck.Oscillation.Oscillates _ -> Some m | _ -> None)
      verdicts
  in
  let conv =
    List.find_map
      (fun (m, v) ->
        match v with Modelcheck.Oscillation.Converges -> Some m | _ -> None)
      verdicts
  in
  match (osc, conv) with
  | None, _ -> None
  | Some m, None -> Some (Corpus.Divergence { model = m })
  | Some m, Some m' ->
    Some (Corpus.Separation { oscillates_in = m; converges_in = m' })

let keep_of_kind ~config kind inst =
  match kind with
  | Corpus.Divergence { model } -> (
    match analyze ~config inst model with
    | Modelcheck.Oscillation.Oscillates _ -> true
    | _ -> false)
  | Corpus.Separation { oscillates_in; converges_in } -> (
    match analyze ~config inst oscillates_in with
    | Modelcheck.Oscillation.Oscillates _ -> (
      match analyze ~config inst converges_in with
      | Modelcheck.Oscillation.Converges -> true
      | _ -> false)
    | _ -> false)

let verdict_names verdicts =
  List.map (fun (m, v) -> (m, Modelcheck.Oscillation.verdict_name v)) verdicts

let check_candidate ~config ~models (c : Perturb.t) =
  match Precheck.run c with
  | Precheck.Skip r ->
    {
      name = c.Perturb.name;
      seed = c.Perturb.seed;
      descr = c.Perturb.descr;
      status = Skipped_static (Precheck.reason_string r);
      finding = None;
      resumed = false;
    }
  | Precheck.Explore { inst; wheel = _ } ->
    let verdicts = sweep ~config ~models inst in
    let finding =
      Option.map
        (fun kind ->
          let keep = keep_of_kind ~config kind in
          let minimal = Minimize.minimize ~keep inst in
          {
            Corpus.name = c.Perturb.name;
            seed = c.Perturb.seed;
            descr = c.Perturb.descr;
            inst = minimal;
            kind;
            channel_bound = config.Modelcheck.Explore.channel_bound;
            max_states = config.Modelcheck.Explore.max_states;
          })
        (classify verdicts)
    in
    {
      name = c.Perturb.name;
      seed = c.Perturb.seed;
      descr = c.Perturb.descr;
      status = Explored (verdict_names verdicts);
      finding;
      resumed = false;
    }

(* ------------------------------------------------------------------ *)
(* The driver. *)

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let emit_finding dir (f : Corpus.finding) =
  mkdir_p dir;
  Corpus.save (Filename.concat dir (f.Corpus.name ^ ".json")) f

let outcome_of_entry ~by_name = function
  | Journal.Skipped { name; reason } ->
    Option.map
      (fun (c : Perturb.t) ->
        {
          name;
          seed = c.Perturb.seed;
          descr = c.Perturb.descr;
          status = Skipped_static reason;
          finding = None;
          resumed = true;
        })
      (Hashtbl.find_opt by_name name)
  | Journal.Explored { name; verdicts; finding } ->
    Option.map
      (fun (c : Perturb.t) ->
        {
          name;
          seed = c.Perturb.seed;
          descr = c.Perturb.descr;
          status = Explored verdicts;
          finding;
          resumed = true;
        })
      (Hashtbl.find_opt by_name name)

let entry_of_outcome o =
  match o.status with
  | Skipped_static reason -> Journal.Skipped { name = o.name; reason }
  | Explored verdicts ->
    Journal.Explored { name = o.name; verdicts; finding = o.finding }

let run (cfg : config) =
  let config = explore_config cfg.budget in
  let checked = models cfg.budget in
  let cands = Array.of_list (Perturb.generate ~seeds:cfg.seeds) in
  let by_name = Hashtbl.create 64 in
  Array.iter (fun (c : Perturb.t) -> Hashtbl.replace by_name c.Perturb.name c) cands;
  let journal =
    Option.map
      (fun path ->
        let fp =
          Journal.fingerprint ~seeds:cfg.seeds
            ~budget:(budget_to_string cfg.budget)
            ~models:checked
            ~channel_bound:config.Modelcheck.Explore.channel_bound
            ~max_states:config.Modelcheck.Explore.max_states ()
        in
        Journal.open_ ~path ~fingerprint:fp ~resume:cfg.resume
          ~flush_every:cfg.journal_every)
      cfg.journal
  in
  let done_ = Hashtbl.create 64 in
  (match journal with
  | Some (_, entries) ->
    List.iter
      (fun e ->
        match outcome_of_entry ~by_name e with
        | Some o -> Hashtbl.replace done_ o.name o
        | None -> ())
      entries
  | None -> ());
  let results = Array.make (Array.length cands) None in
  let next = Atomic.make 0 in
  let worker _ =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < Array.length cands then begin
        let c = cands.(i) in
        let o =
          match Hashtbl.find_opt done_ c.Perturb.name with
          | Some o ->
            cfg.log
              (Printf.sprintf "%-22s resumed from journal" c.Perturb.name);
            o
          | None ->
            let o = check_candidate ~config ~models:checked c in
            (match o.status with
            | Skipped_static reason ->
              cfg.log (Printf.sprintf "%-22s skipped (%s)" o.name reason)
            | Explored verdicts ->
              cfg.log
                (Fmt.str "%-22s explored [%s]%a" o.name
                   (String.concat ", "
                      (List.map
                         (fun (m, v) -> Engine.Model.to_string m ^ "=" ^ v)
                         verdicts))
                   (Fmt.option (fun ppf (f : Corpus.finding) ->
                        Fmt.pf ppf " -> %a" Corpus.pp_kind f.Corpus.kind))
                   o.finding));
            o
        in
        (* Emit before journaling: a journal record implies the corpus
           entry is already safely on disk (writes are atomic, so a
           resumed run re-emitting is idempotent). *)
        (match (o.finding, cfg.emit_dir) with
        | Some f, Some dir -> emit_finding dir f
        | _ -> ());
        (match journal with
        | Some (w, _) when not o.resumed -> Journal.record w (entry_of_outcome o)
        | _ -> ());
        results.(i) <- Some o;
        loop ()
      end
    in
    loop ()
  in
  let workers = max 1 (min cfg.domains (Array.length cands)) in
  Engine.Pool.run (Engine.Pool.get ()) ~workers worker;
  (match journal with Some (w, _) -> Journal.close w | None -> ());
  {
    seeds = cfg.seeds;
    budget = cfg.budget;
    checked_models = checked;
    config;
    outcomes = Array.to_list (Array.map Option.get results);
  }

let pp_report ppf r =
  Fmt.pf ppf
    "@[<v>hunt: %d candidate(s) from %d seed(s) at budget %s@,\
     static prefilter skipped %d (%.0f%%) before explorer spend@,\
     explored %d under [%s]; %d finding(s)%s@,%a@]"
    (candidates_total r) r.seeds
    (budget_to_string r.budget)
    (skipped_static r)
    (100. *. skip_ratio r)
    (explored r)
    (String.concat ", " (List.map Engine.Model.to_string r.checked_models))
    (List.length (findings r))
    (if resumed r > 0 then Printf.sprintf " (%d resumed)" (resumed r) else "")
    (Fmt.list ~sep:Fmt.cut (fun ppf (f : Corpus.finding) ->
         Fmt.pf ppf "  %s: %a (%d nodes, %d edges)" f.Corpus.name
           Corpus.pp_kind f.Corpus.kind
           (Spp.Instance.size f.Corpus.inst)
           (List.length (Spp.Instance.edges f.Corpus.inst))))
    (findings r)
