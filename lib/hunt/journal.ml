(* Per-candidate progress journal, an instance of the generalized
   {!Conformance.Journal.Generic} keyed journal: one record per finished
   candidate, so a SIGKILLed hunt resumes at the first candidate without a
   complete record instead of re-exploring.  Records carry the full
   outcome — skip reason, per-model verdicts, and the finding's entire
   JSON — so a resumed run reconstructs its artifact without re-spending
   any explorer budget. *)

module Generic = Conformance.Journal.Generic
module Json = Engine.Metrics.Json

let magic = "commrouting/hunt-journal/v1"

type entry =
  | Skipped of { name : string; reason : string }
  | Explored of {
      name : string;
      verdicts : (Engine.Model.t * string) list;
      finding : Corpus.finding option;
    }

type writer = Generic.writer

let fingerprint ~seeds ~budget ~models ~channel_bound ~max_states () =
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "%s|seeds=%d|budget=%s|models=%s|bound=%d|states=%d"
          magic seeds budget
          (String.concat "," (List.map Engine.Model.to_string models))
          channel_bound max_states))

let verdicts_string vs =
  String.concat ","
    (List.map
       (fun (m, v) -> Engine.Model.to_string m ^ "=" ^ v)
       vs)

let verdicts_of_string s =
  if s = "" then Some []
  else
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | kv :: rest -> (
        match String.index_opt kv '=' with
        | None -> None
        | Some i -> (
          let m = String.sub kv 0 i in
          let v = String.sub kv (i + 1) (String.length kv - i - 1) in
          match Engine.Model.of_string m with
          | Some m -> go ((m, v) :: acc) rest
          | None -> None))
    in
    go [] (String.split_on_char ',' s)

let fields_of_entry = function
  | Skipped { name; reason } -> [ "S"; name; reason ]
  | Explored { name; verdicts; finding = None } ->
    [ "E"; name; verdicts_string verdicts ]
  | Explored { name; verdicts; finding = Some f } ->
    [ "F"; name; verdicts_string verdicts; Json.to_string (Corpus.to_json f) ]

let entry_of_fields = function
  | [ "S"; name; reason ] -> Some (Skipped { name; reason })
  | [ "E"; name; vs ] ->
    Option.map
      (fun verdicts -> Explored { name; verdicts; finding = None })
      (verdicts_of_string vs)
  | [ "F"; name; vs; fj ] -> (
    match (verdicts_of_string vs, Json.parse fj) with
    | Some verdicts, Ok j -> (
      match Corpus.of_json j with
      | Ok f -> Some (Explored { name; verdicts; finding = Some f })
      | Error _ -> None)
    | _ -> None)
  | _ -> None

let open_ ~path ~fingerprint:fp ~resume ~flush_every =
  let w, records = Generic.open_ ~path ~magic ~fingerprint:fp ~resume ~flush_every in
  let rec decode acc = function
    | [] -> List.rev acc
    | fields :: rest -> (
      match entry_of_fields fields with
      | Some e -> decode (e :: acc) rest
      | None -> List.rev acc)
  in
  (w, decode [] records)

let record w e = Generic.record w (fields_of_entry e)
let close = Generic.close

let entry_name = function
  | Skipped { name; _ } | Explored { name; _ } -> name
