(* The hunt's cheap static prefilter, run before any explorer budget is
   spent on a candidate:

   - an algebraic candidate whose algebra is strictly monotone over every
     supported extension step of its graph (Daggitt–Griffin's
     strict-increase condition, {!Spp.Algebra.check_conditions}) is
     skipped without even compiling the instance;
   - any remaining candidate without a dispute wheel ({!Spp.Dispute.find})
     is skipped: no wheel is the broadest sufficient condition for
     convergence under every communication model, so the explorer cannot
     find an oscillation there.

   A candidate that survives carries its wheel as the witness that the
   explorer budget is justified. *)

type skip_reason =
  | Algebra_strictly_monotone of { steps_checked : int }
  | No_dispute_wheel

type verdict =
  | Skip of skip_reason
  | Explore of { inst : Spp.Instance.t; wheel : Spp.Dispute.wheel }

let reason_string = function
  | Algebra_strictly_monotone _ -> "algebra-strictly-monotone"
  | No_dispute_wheel -> "no-dispute-wheel"

let run (c : Perturb.t) =
  let static_skip =
    match c.Perturb.source with
    | Perturb.Algebraic (Perturb.Alg (alg, g)) ->
      let conds = Spp.Algebra.check_conditions alg g in
      if conds.Spp.Algebra.strictly_monotone then
        Some
          (Algebra_strictly_monotone
             { steps_checked = conds.Spp.Algebra.steps_checked })
      else None
    | Perturb.Surgery _ -> None
  in
  match static_skip with
  | Some r -> Skip r
  | None -> (
    let inst = Perturb.instance c in
    match Spp.Dispute.find inst with
    | None -> Skip No_dispute_wheel
    | Some wheel -> Explore { inst; wheel })
