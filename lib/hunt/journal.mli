(** Per-candidate progress journal for a hunt, an instance of the
    generalized {!Conformance.Journal.Generic} keyed journal.

    One record per finished candidate, carrying the complete outcome (skip
    reason, per-model verdict names, and a finding's full JSON), so a
    SIGKILLed hunt resumed with [--resume] reconstructs every finished
    candidate — including its emitted corpus entries and the final
    artifact — without re-spending explorer budget.  The file inherits the
    generic journal's crash tolerance: partial trailing lines and anything
    after the first malformed record are dropped, and a fingerprint
    mismatch (different seeds/budget/models/bounds) discards the whole
    journal. *)

type entry =
  | Skipped of { name : string; reason : string }
  | Explored of {
      name : string;
      verdicts : (Engine.Model.t * string) list;
          (** {!Modelcheck.Oscillation.verdict_name} per checked model *)
      finding : Corpus.finding option;
    }

type writer

val fingerprint :
  seeds:int ->
  budget:string ->
  models:Engine.Model.t list ->
  channel_bound:int ->
  max_states:int ->
  unit ->
  string

val open_ :
  path:string ->
  fingerprint:string ->
  resume:bool ->
  flush_every:int ->
  writer * entry list

val record : writer -> entry -> unit
val close : writer -> unit
val entry_name : entry -> string
