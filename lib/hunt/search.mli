(** The hunt driver: perturbation candidates → static prefilter →
    per-model oscillation sweep → classification → shrink → corpus.

    Candidates run on the persistent {!Engine.Pool} behind a shared atomic
    index; per-candidate explorations are forced sequential, so the
    parallelism budget is spent across candidates.  Every finished
    candidate is journaled with its complete outcome ({!Journal}), so a
    killed hunt resumed with the same configuration reconstructs an
    identical report without re-spending explorer budget. *)

type budget =
  | Smoke  (** 3 models, channel bound 3, 4k states — what [@hunt-smoke] runs *)
  | Default  (** the 12 reliable models, 20k states *)
  | Deep  (** all 24 models at {!Modelcheck.Explore.default_config} *)

val budget_of_string : string -> budget option
val budget_to_string : budget -> string
val models : budget -> Engine.Model.t list
val explore_config : budget -> Modelcheck.Explore.config

type config = {
  seeds : int;  (** candidate batches; each seed yields a fixed-size batch *)
  budget : budget;
  domains : int;  (** pool workers checking candidates concurrently *)
  emit_dir : string option;
      (** where findings are serialized (atomically), when set *)
  journal : string option;  (** per-candidate progress journal path *)
  journal_every : int;  (** journal records between disk flushes (>= 1) *)
  resume : bool;
      (** prefill outcomes from an existing journal (same configuration
          only; a mismatched journal is discarded) *)
  log : string -> unit;
}

val default_config : config
(** 5 seeds, [Smoke] budget, {!Modelcheck.Explore.default_domains}
    domains, no emission, no journal, silent. *)

type status =
  | Skipped_static of string  (** {!Precheck.reason_string} *)
  | Explored of (Engine.Model.t * string) list
      (** {!Modelcheck.Oscillation.verdict_name} per checked model *)

type outcome = {
  name : string;
  seed : int;
  descr : string;
  status : status;
  finding : Corpus.finding option;  (** already minimized *)
  resumed : bool;  (** satisfied from the journal, no budget spent *)
}

type report = {
  seeds : int;
  budget : budget;
  checked_models : Engine.Model.t list;
  config : Modelcheck.Explore.config;
  outcomes : outcome list;  (** in candidate-generation order *)
}

val candidates_total : report -> int
val skipped_static : report -> int
val explored : report -> int
val findings : report -> Corpus.finding list
val resumed : report -> int

val skip_ratio : report -> float
(** Statically skipped / total; the acceptance gate requires >= 0.5. *)

val check_candidate :
  config:Modelcheck.Explore.config ->
  models:Engine.Model.t list ->
  Perturb.t ->
  outcome
(** One candidate through the whole pipeline (prefilter, sweep, classify,
    shrink), without journaling or emission. *)

val classify :
  (Engine.Model.t * Modelcheck.Oscillation.verdict) list -> Corpus.kind option
(** First oscillating model (paper order) decides; a definitive
    convergence elsewhere upgrades the divergence to a separation. *)

val keep_of_kind :
  config:Modelcheck.Explore.config -> Corpus.kind -> Spp.Instance.t -> bool
(** The shrinker's invariant: the instance still exhibits the recorded
    kind at the recorded budget. *)

val run : config -> report
val pp_report : Format.formatter -> report -> unit
