(* Committed counterexample corpus: minimal divergent / model-separating
   gadgets found by the hunt, serialized as self-contained JSON (schema
   "commrouting/hunt/v1") and replayed deterministically by @hunt-smoke on
   every test run.  Instance serialization is shared with the conformance
   corpus, so node references are by name and survive id renumbering. *)

module Json = Engine.Metrics.Json

let schema = "commrouting/hunt/v1"

type kind =
  | Divergence of { model : Engine.Model.t }
  | Separation of {
      oscillates_in : Engine.Model.t;
      converges_in : Engine.Model.t;
    }

type finding = {
  name : string;
  seed : int;
  descr : string;
  inst : Spp.Instance.t;
  kind : kind;
  channel_bound : int;
  max_states : int;
}

let kind_string = function
  | Divergence _ -> "divergence"
  | Separation _ -> "separation"

let pp_kind ppf = function
  | Divergence { model } ->
    Fmt.pf ppf "divergence: oscillates under %a" Engine.Model.pp model
  | Separation { oscillates_in; converges_in } ->
    Fmt.pf ppf "separation: oscillates under %a, converges under %a"
      Engine.Model.pp oscillates_in Engine.Model.pp converges_in

(* ------------------------------------------------------------------ *)
(* JSON *)

let ( let* ) = Result.bind

let to_json f =
  let kind_fields =
    match f.kind with
    | Divergence { model } ->
      [
        ("kind", Json.Str "divergence");
        ("oscillates_in", Json.Str (Engine.Model.to_string model));
      ]
    | Separation { oscillates_in; converges_in } ->
      [
        ("kind", Json.Str "separation");
        ("oscillates_in", Json.Str (Engine.Model.to_string oscillates_in));
        ("converges_in", Json.Str (Engine.Model.to_string converges_in));
      ]
  in
  Json.Obj
    ([
       ("schema", Json.Str schema);
       ("name", Json.Str f.name);
       ("seed", Json.Num (float_of_int f.seed));
       ("descr", Json.Str f.descr);
     ]
    @ kind_fields
    @ [
        ("instance", Conformance.Corpus.instance_to_json f.inst);
        ("channel_bound", Json.Num (float_of_int f.channel_bound));
        ("max_states", Json.Num (float_of_int f.max_states));
      ])

let str_field name j =
  match Json.member name j with
  | Some (Json.Str s) -> Ok s
  | _ -> Error (Fmt.str "field %S: expected a string" name)

let int_field name j =
  match Json.member name j with
  | Some (Json.Num f) -> Ok (int_of_float f)
  | _ -> Error (Fmt.str "field %S: expected a number" name)

let model_field name j =
  let* s = str_field name j in
  match Engine.Model.of_string s with
  | Some m -> Ok m
  | None -> Error (Fmt.str "field %S: unknown model %S" name s)

let of_json j =
  let* s = str_field "schema" j in
  if s <> schema then Error (Fmt.str "unknown schema %S (want %S)" s schema)
  else
    let* name = str_field "name" j in
    let* seed = int_field "seed" j in
    let* descr = str_field "descr" j in
    let* kind_s = str_field "kind" j in
    let* kind =
      match kind_s with
      | "divergence" ->
        let* model = model_field "oscillates_in" j in
        Ok (Divergence { model })
      | "separation" ->
        let* oscillates_in = model_field "oscillates_in" j in
        let* converges_in = model_field "converges_in" j in
        Ok (Separation { oscillates_in; converges_in })
      | k -> Error (Fmt.str "unknown kind %S" k)
    in
    let* inst_j =
      match Json.member "instance" j with
      | Some v -> Ok v
      | None -> Error "missing field \"instance\""
    in
    let* inst = Conformance.Corpus.instance_of_json inst_j in
    let* channel_bound = int_field "channel_bound" j in
    let* max_states = int_field "max_states" j in
    Ok { name; seed; descr; inst; kind; channel_bound; max_states }

let save path f =
  Engine.Snapshot.write_atomic path (Json.to_string (to_json f) ^ "\n")

let load path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error e -> Error e
  | contents -> (
    if String.length contents = 0 || contents.[String.length contents - 1] <> '\n'
    then Error (Fmt.str "%s: truncated (missing trailing newline)" path)
    else
      match Json.parse (String.sub contents 0 (String.length contents - 1)) with
      | Error e -> Error (Fmt.str "%s: %s" path e)
      | Ok j ->
        Result.map_error (fun e -> Fmt.str "%s: %s" path e) (of_json j))

(* ------------------------------------------------------------------ *)
(* Replay *)

type outcome = { name : string; ok : bool; detail : string }

let analyze ~config inst model =
  Modelcheck.Oscillation.analyze ~config ~domains:1 inst model

let replay f =
  let config =
    {
      Modelcheck.Explore.channel_bound = f.channel_bound;
      max_states = f.max_states;
    }
  in
  match f.kind with
  | Divergence { model } -> (
    match analyze ~config f.inst model with
    | Modelcheck.Oscillation.Oscillates _ ->
      {
        name = f.name;
        ok = true;
        detail = Fmt.str "oscillates under %a" Engine.Model.pp model;
      }
    | v ->
      {
        name = f.name;
        ok = false;
        detail =
          Fmt.str "expected oscillation under %a, got %s" Engine.Model.pp model
            (Modelcheck.Oscillation.verdict_name v);
      })
  | Separation { oscillates_in; converges_in } -> (
    match
      ( analyze ~config f.inst oscillates_in,
        analyze ~config f.inst converges_in )
    with
    | Modelcheck.Oscillation.Oscillates _, Modelcheck.Oscillation.Converges ->
      {
        name = f.name;
        ok = true;
        detail =
          Fmt.str "oscillates under %a, converges under %a" Engine.Model.pp
            oscillates_in Engine.Model.pp converges_in;
      }
    | vx, vy ->
      {
        name = f.name;
        ok = false;
        detail =
          Fmt.str "expected oscillates/%a converges/%a, got %s/%s"
            Engine.Model.pp oscillates_in Engine.Model.pp converges_in
            (Modelcheck.Oscillation.verdict_name vx)
            (Modelcheck.Oscillation.verdict_name vy);
      })

let replay_file path =
  match load path with
  | Error e -> { name = Filename.basename path; ok = false; detail = e }
  | Ok f -> replay f
