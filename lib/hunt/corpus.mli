(** Committed counterexample corpus for the divergence hunt.

    A finding is a minimal (ddmin/surgery-shrunk) gadget together with the
    oscillation behavior the hunt recorded and the explorer budget it was
    established at.  Serialized as self-contained JSON, schema
    ["commrouting/hunt/v1"] (documented in EXPERIMENTS.md); instance
    serialization is shared with {!Conformance.Corpus}, so node references
    are by name.  [results/hunt/*.json] is replayed deterministically by
    the [@hunt-smoke] alias on every test run: every committed gadget
    permanently grows the regression suite. *)

module Json = Engine.Metrics.Json

val schema : string

type kind =
  | Divergence of { model : Engine.Model.t }
      (** oscillates under [model]; no checked model definitively converges *)
  | Separation of {
      oscillates_in : Engine.Model.t;
      converges_in : Engine.Model.t;
    }
      (** the communication model makes the difference: a fair oscillation
          exists under one model while the other provably converges *)

type finding = {
  name : string;
  seed : int;  (** the generation seed of the originating candidate *)
  descr : string;  (** base instance + perturbation, human-readable *)
  inst : Spp.Instance.t;  (** already minimized *)
  kind : kind;
  channel_bound : int;
  max_states : int;  (** the exploration budget replay must honor *)
}

val kind_string : kind -> string
val pp_kind : Format.formatter -> kind -> unit

val to_json : finding -> Json.v
val of_json : Json.v -> (finding, string) result

val save : string -> finding -> unit
(** Atomic (temp file + rename, {!Engine.Snapshot.write_atomic}). *)

val load : string -> (finding, string) result
(** Total and strict: parse errors carry the file path, and a file without
    its trailing newline is an [Error]. *)

type outcome = { name : string; ok : bool; detail : string }

val replay : finding -> outcome
(** Re-runs the recorded oscillation analyses at the recorded budget and
    compares with the finding's kind: a [Divergence] must still oscillate,
    a [Separation] must still oscillate under one model and definitively
    converge under the other. *)

val replay_file : string -> outcome
(** {!load} composed with {!replay}; parse errors become failed outcomes. *)
