(** Instance-specification resolution, shared by the CLIs and the query
    daemon.

    A specification is a fixed gadget name ([DISAGREE], [FIG6], ...), a
    generated family ([bgp:<seed>], [random:<seed>]) or a DSL file
    ([file:<path>]).  Resolution is deterministic: the same spec always
    yields the same instance (and hence the same
    {!Engine.Snapshot.fingerprint}), which is what makes specs usable as
    memoization keys. *)

val catalogue : unit -> (string * Spp.Instance.t) list
(** Every fixed gadget with its (uppercase) name. *)

val names : unit -> string list
(** The catalogue names plus the spec templates, for usage messages. *)

val find : string -> (Spp.Instance.t, Error.t) result
(** Resolve a spec.  Never raises: unknown names are
    [Unknown_instance] (with a hint listing the valid specs), malformed
    seeds are [Usage], unreadable or invalid DSL files are [Io] /
    [Corrupt]. *)
