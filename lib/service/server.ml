module Json = Engine.Metrics.Json

type config = { socket : string; store : Store.config; workers : int }

(* ------------------------------------------------------------------ *)

type client = {
  fd : Unix.file_descr;
  inbuf : Buffer.t;  (** bytes read, possibly ending mid-line *)
  out : Buffer.t;  (** response bytes not yet written *)
  mutable closed : bool;
}

type state = {
  query : Query.t;
  jobs : Jobs.t;
  workers : int;
  clients : (Unix.file_descr, client) Hashtbl.t;
  subs : (string, (client * Json.v) list) Hashtbl.t;
      (** job id -> connections streaming its events, with the request id
          each used (echoed on every event line) *)
  mutable running : bool;
}

let subscribe st job_id c req_id =
  let cur = Option.value ~default:[] (Hashtbl.find_opt st.subs job_id) in
  if not (List.exists (fun (c', _) -> c' == c) cur) then
    Hashtbl.replace st.subs job_id ((c, req_id) :: cur)

let drop_client_subs st c =
  Hashtbl.filter_map_inplace
    (fun _ l ->
      match List.filter (fun (c', _) -> c' != c) l with
      | [] -> None
      | l -> Some l)
    st.subs

(* ------------------------------------------------------------------ *)
(* Request handling.  Each request becomes a thunk producing its
   response line(s); control thunks are cheap and run inline during
   collection, compute thunks are deferred so one select round's worth
   can be batched onto the pool. *)

type task = {
  t_client : client;
  t_slot : string ref;  (** the response line(s), filled by the thunk *)
  t_work : (unit -> string) option;  (** [Some] = deferred compute *)
}

let respond_result ~id = function
  | Ok (result, cached) -> Protocol.ok_line ~id ~cached result
  | Error e -> Protocol.error_line ~id e

let handle st c ({ id; req } : Protocol.envelope) =
  let immediate line = { t_client = c; t_slot = ref line; t_work = None } in
  let deferred work = { t_client = c; t_slot = ref ""; t_work = Some work } in
  match req with
  | Protocol.Ping ->
    immediate (Protocol.ok_line ~id (Json.Obj [ ("pong", Json.Bool true) ]))
  | Protocol.Stats ->
    let stats =
      match Query.stats st.query with
      | Json.Obj fields ->
        Json.Obj
          (fields
          @ [ ("jobs_running", Json.Num (float_of_int (Jobs.running st.jobs))) ]
          )
      | j -> j
    in
    immediate (Protocol.ok_line ~id stats)
  | Protocol.Shutdown ->
    st.running <- false;
    immediate (Protocol.ok_line ~id (Json.Obj [ ("stopping", Json.Bool true) ]))
  | Protocol.Check { instance; model; config; fresh } ->
    deferred (fun () ->
        respond_result ~id (Query.check st.query ~instance ~model ~config ~fresh))
  | Protocol.Sweep { instance; models; config; fresh } ->
    deferred (fun () ->
        match Query.sweep st.query ~instance ~models ~config ~fresh with
        | Ok result -> Protocol.ok_line ~id result
        | Error e -> Protocol.error_line ~id e)
  | Protocol.Realize { source; target } ->
    deferred (fun () ->
        Protocol.ok_line ~id (Query.realize st.query ~source ~target))
  | Protocol.Bgp { nodes; seed; model; shards; fresh } ->
    deferred (fun () ->
        respond_result ~id (Query.bgp st.query ~nodes ~seed ~model ~shards ~fresh))
  | Protocol.Job_start { instance; model; config; every } -> (
    match Jobs.start st.jobs ~instance ~model ~config ~every with
    | Error e -> immediate (Protocol.error_line ~id e)
    | Ok (job, Some result) ->
      (* Already in the store: the "job" was a warm check. *)
      immediate
        (Protocol.ok_line ~id ~cached:true
           (Json.Obj [ ("job", Json.Str job); ("result", result) ]))
    | Ok (job, None) ->
      subscribe st job c id;
      immediate
        (Protocol.ok_line ~id
           (Json.Obj [ ("job", Json.Str job); ("state", Json.Str "running") ])))
  | Protocol.Job_status { job } ->
    immediate
      (match Jobs.status st.jobs ~id:job with
      | Ok s ->
        Protocol.ok_line ~id (Json.Obj [ ("job", Json.Str job); ("status", s) ])
      | Error e -> Protocol.error_line ~id e)
  | Protocol.Job_resume { job } -> (
    match Jobs.resume st.jobs ~id:job with
    | Error e -> immediate (Protocol.error_line ~id e)
    | Ok (Some result) ->
      immediate
        (Protocol.ok_line ~id ~cached:true
           (Json.Obj [ ("job", Json.Str job); ("result", result) ]))
    | Ok None ->
      subscribe st job c id;
      immediate
        (Protocol.ok_line ~id
           (Json.Obj [ ("job", Json.Str job); ("state", Json.Str "running") ])))

let run_batch st tasks =
  let deferred =
    List.filter_map
      (fun t -> Option.map (fun w -> (t.t_slot, w)) t.t_work)
      tasks
  in
  (match deferred with
  | [] -> ()
  | [ (slot, work) ] -> slot := work ()
  | _ ->
    let arr = Array.of_list deferred in
    let n = Array.length arr in
    let idx = Atomic.make 0 in
    let worker _ =
      let rec loop () =
        let i = Atomic.fetch_and_add idx 1 in
        if i < n then begin
          let slot, work = arr.(i) in
          (slot :=
             match work () with
             | line -> line
             | exception e ->
               Protocol.error_line ~id:Json.Null
                 (Error.Internal (Printexc.to_string e)));
          loop ()
        end
      in
      loop ()
    in
    let workers = max 1 (min st.workers n) in
    if workers > 1 then Engine.Pool.run (Engine.Pool.get ()) ~workers worker
    else worker 0);
  (* Arrival order per connection: tasks were collected in read order. *)
  List.iter (fun t -> Buffer.add_string t.t_client.out !(t.t_slot)) tasks

(* ------------------------------------------------------------------ *)
(* Job event streaming. *)

let dispatch_job_events st =
  List.iter
    (fun ev ->
      let job, fields, final =
        match ev with
        | Jobs.Progress { id; states } ->
          ( id,
            (fun req_id ->
              Protocol.event_line ~id:req_id ~event:"progress"
                [
                  ("job", Json.Str id);
                  ("states", Json.Num (float_of_int states));
                ]),
            false )
        | Jobs.Done { id; result } ->
          ( id,
            (fun req_id ->
              Protocol.event_line ~id:req_id ~event:"done"
                [ ("job", Json.Str id); ("result", result) ]),
            true )
        | Jobs.Failed { id; message } ->
          ( id,
            (fun req_id ->
              Protocol.event_line ~id:req_id ~event:"failed"
                [ ("job", Json.Str id); ("message", Json.Str message) ]),
            true )
      in
      (match Hashtbl.find_opt st.subs job with
      | None -> ()
      | Some subscribers ->
        List.iter
          (fun (c, req_id) ->
            if not c.closed then Buffer.add_string c.out (fields req_id))
          subscribers);
      if final then Hashtbl.remove st.subs job)
    (Jobs.poll st.jobs)

(* ------------------------------------------------------------------ *)
(* The event loop. *)

let close_client st c =
  if not c.closed then begin
    c.closed <- true;
    Hashtbl.remove st.clients c.fd;
    drop_client_subs st c;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  end

let read_tasks st c =
  let chunk = Bytes.create 65536 in
  match Unix.read c.fd chunk 0 (Bytes.length chunk) with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> []
  | exception Unix.Unix_error (_, _, _) ->
    close_client st c;
    []
  | 0 ->
    close_client st c;
    []
  | n ->
    Buffer.add_subbytes c.inbuf chunk 0 n;
    let data = Buffer.contents c.inbuf in
    Buffer.clear c.inbuf;
    let rec split acc start =
      match String.index_from_opt data start '\n' with
      | Some i -> split (String.sub data start (i - start) :: acc) (i + 1)
      | None ->
        Buffer.add_substring c.inbuf data start (String.length data - start);
        List.rev acc
    in
    let lines = split [] 0 in
    List.filter_map
      (fun line ->
        if String.trim line = "" then None
        else
          match Protocol.of_line line with
          | Ok env -> Some (handle st c env)
          | Error (id, e) ->
            Some
              {
                t_client = c;
                t_slot = ref (Protocol.error_line ~id e);
                t_work = None;
              })
      lines

let flush_client st c =
  if Buffer.length c.out > 0 then begin
    let s = Buffer.contents c.out in
    match Unix.write_substring c.fd s 0 (String.length s) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (_, _, _) -> close_client st c
    | n ->
      Buffer.clear c.out;
      if n < String.length s then
        Buffer.add_substring c.out s n (String.length s - n)
  end

let run ?(on_ready = fun () -> ()) cfg =
  let ( let* ) = Result.bind in
  let* store = Store.open_ cfg.store in
  let* query = Query.create ~store ~workers:cfg.workers in
  let* jobs = Jobs.create ~store in
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let bind_result =
    (* A stale socket file from a killed daemon would fail the bind. *)
    (try Unix.unlink cfg.socket with Unix.Unix_error _ -> ());
    match
      Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket);
      Unix.listen listen_fd 64
    with
    | () -> Ok ()
    | exception Unix.Unix_error (e, _, _) ->
      Unix.close listen_fd;
      Error (Error.Io { path = cfg.socket; message = Unix.error_message e })
  in
  let* () = bind_result in
  (* A client gone mid-write must not kill the daemon. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let st =
    {
      query;
      jobs;
      workers = max 1 cfg.workers;
      clients = Hashtbl.create 16;
      subs = Hashtbl.create 7;
      running = true;
    }
  in
  on_ready ();
  while
    st.running
    || Hashtbl.fold (fun _ c acc -> acc || Buffer.length c.out > 0) st.clients false
  do
    let fds = Hashtbl.fold (fun fd _ acc -> fd :: acc) st.clients [] in
    let reads = if st.running then listen_fd :: fds else fds in
    let writes =
      Hashtbl.fold
        (fun fd c acc -> if Buffer.length c.out > 0 then fd :: acc else acc)
        st.clients []
    in
    match Unix.select reads writes [] 0.05 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> dispatch_job_events st
    | readable, writable, _ ->
      if st.running && List.memq listen_fd readable then begin
        match Unix.accept listen_fd with
        | fd, _ ->
          Unix.set_nonblock fd;
          Hashtbl.replace st.clients fd
            { fd; inbuf = Buffer.create 256; out = Buffer.create 256; closed = false }
        | exception Unix.Unix_error (_, _, _) -> ()
      end;
      let tasks =
        List.concat_map
          (fun fd ->
            if fd == listen_fd then []
            else
              match Hashtbl.find_opt st.clients fd with
              | Some c -> read_tasks st c
              | None -> [])
          readable
      in
      run_batch st tasks;
      dispatch_job_events st;
      List.iter
        (fun fd ->
          match Hashtbl.find_opt st.clients fd with
          | Some c -> flush_client st c
          | None -> ())
        writable;
      (* Fresh output (batch responses, events) should not wait a select
         round: opportunistically try every client with pending bytes.
         (Snapshot the list first — a failed write closes the client and
         mutates the table.) *)
      Hashtbl.fold (fun _ c acc -> c :: acc) st.clients []
      |> List.iter (fun c -> if Buffer.length c.out > 0 then flush_client st c)
  done;
  Hashtbl.iter (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) st.clients;
  Unix.close listen_fd;
  (try Unix.unlink cfg.socket with Unix.Unix_error _ -> ());
  Ok ()
