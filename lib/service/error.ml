type t =
  | Usage of string
  | Unknown_instance of { name : string; hint : string }
  | Unknown_model of string
  | Io of { path : string; message : string }
  | Corrupt of { path : string; detail : string }
  | Unknown_job of string
  | Internal of string

let to_string = function
  | Usage m -> m
  | Unknown_instance { name; hint } ->
    Printf.sprintf "unknown instance %S (%s)" name hint
  | Unknown_model m -> Printf.sprintf "unknown model %S" m
  | Io { path; message } -> Printf.sprintf "%s: %s" path message
  | Corrupt { path; detail } -> Printf.sprintf "%s: %s" path detail
  | Unknown_job j -> Printf.sprintf "unknown job id %S" j
  | Internal m -> Printf.sprintf "internal error: %s" m

let pp ppf e = Format.pp_print_string ppf (to_string e)

let kind = function
  | Usage _ -> "usage"
  | Unknown_instance _ -> "unknown-instance"
  | Unknown_model _ -> "unknown-model"
  | Io _ -> "io"
  | Corrupt _ -> "corrupt"
  | Unknown_job _ -> "unknown-job"
  | Internal _ -> "internal"

let exit_code = function Usage _ -> 2 | _ -> 1
