module Json = Engine.Metrics.Json

type t = { fd : Unix.file_descr; buf : Buffer.t }

let connect ~socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket) with
  | () -> Ok { fd; buf = Buffer.create 256 }
  | exception Unix.Unix_error (e, _, _) ->
    Unix.close fd;
    Error (Error.Io { path = socket; message = Unix.error_message e })

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let read_line t =
  let chunk = Bytes.create 8192 in
  let rec take () =
    let s = Buffer.contents t.buf in
    match String.index_opt s '\n' with
    | Some i ->
      Buffer.clear t.buf;
      Buffer.add_substring t.buf s (i + 1) (String.length s - i - 1);
      Ok (String.sub s 0 i)
    | None -> (
      match Unix.read t.fd chunk 0 (Bytes.length chunk) with
      | 0 -> Error (Error.Io { path = "<daemon>"; message = "connection closed" })
      | n ->
        Buffer.add_subbytes t.buf chunk 0 n;
        take ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> take ()
      | exception Unix.Unix_error (e, _, _) ->
        Error (Error.Io { path = "<daemon>"; message = Unix.error_message e }))
  in
  take ()

let read_json t =
  match read_line t with
  | Error _ as e -> e
  | Ok line -> (
    match Json.parse line with
    | Ok j -> Ok j
    | Error m ->
      Error
        (Error.Corrupt { path = "<daemon>"; detail = "bad response line: " ^ m }))

let write_all fd s =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let rec go off =
    if off < len then
      match Unix.write fd b off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  match go 0 with
  | () -> Ok ()
  | exception Unix.Unix_error (e, _, _) ->
    Error (Error.Io { path = "<daemon>"; message = Unix.error_message e })

let send_raw t s = write_all t.fd s

let is_event j = Json.member "event" j <> None

let request ?(on_event = fun _ -> ()) t env =
  match write_all t.fd (Json.to_string (Protocol.to_json env) ^ "\n") with
  | Error _ as e -> e
  | Ok () ->
    let rec next () =
      match read_json t with
      | Error _ as e -> e
      | Ok j ->
        if is_event j then begin
          on_event j;
          next ()
        end
        else Ok j
    in
    next ()

let wait_event t =
  match read_json t with
  | Error _ as e -> e
  | Ok j ->
    if is_event j then Ok j
    else
      Error
        (Error.Corrupt
           { path = "<daemon>"; detail = "expected an event line" })
