(** A blocking line-oriented client for the daemon, shared by the CLI's
    [request] subcommand, the smoke tests and the bench harness. *)

type t

val connect : socket:string -> (t, Error.t) result
val close : t -> unit

val request :
  ?on_event:(Engine.Metrics.Json.v -> unit) ->
  t ->
  Protocol.envelope ->
  (Engine.Metrics.Json.v, Error.t) result
(** Sends one request and blocks for its response line; event lines
    arriving first (job progress on this connection) are handed to
    [on_event].  The response JSON is returned whole — [ok:false]
    responses are returned, not raised, so callers can inspect the
    error object. *)

val wait_event :
  t -> (Engine.Metrics.Json.v, Error.t) result
(** Blocks for the next event line (job progress/done streaming after a
    [job_start]/[job_resume] response). *)

(** {1 Raw access} — for protocol tests (malformed input, pipelining). *)

val send_raw : t -> string -> (unit, Error.t) result
(** Writes bytes verbatim (no framing, no validation). *)

val read_json : t -> (Engine.Metrics.Json.v, Error.t) result
(** Blocks for the next line, parsed as JSON (response or event). *)
