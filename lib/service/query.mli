(** The daemon's compute layer: each request kind as a pure function of
    its inputs, memoized through {!Store}.

    Results are rendered as JSON once, at compute time, and cached in
    that form — a warm query is one framed-file read, no re-exploration.
    Cache keys are [(instance digest, model, config fingerprint)]; the
    config fingerprint covers the query kind, its result schema version
    and every knob that affects the answer, so two queries share an
    entry exactly when their answers must be bit-identical. *)

type t

val create :
  store:Store.t -> workers:int -> (t, Error.t) result
(** Derives the realization closure eagerly (a contradictory fact base
    is a typed error, not an exception). [workers] bounds the
    {!Engine.Pool} fan-out of batched sweeps. *)

val store : t -> Store.t

val check_schema : string
(** ["commrouting/serve_check/v1"] — the check/job result schema; part
    of the config fingerprint, so bumping it orphans old entries. *)

val check_fp : Protocol.query_config -> string
(** The config fingerprint of a check (or deep job) at this config. *)

val check_key :
  Spp.Instance.t -> Engine.Model.t -> Protocol.query_config ->
  instance:unit -> string
(** [check_key inst model config ~instance:()] is the store key a check
    of this triple uses — also the deep-job id for the same triple, so a
    finished job's result is exactly a warm check. *)

val compute_check :
  ?metrics:Engine.Metrics.t ->
  ?checkpoint:Modelcheck.Explore.checkpoint ->
  ?resume:Engine.Snapshot.t ->
  Spp.Instance.t ->
  Engine.Model.t ->
  Protocol.query_config ->
  Engine.Metrics.Json.v
(** One exploration + verdict, rendered as the canonical result JSON
    (verdict, witness shape and replay check, state/edge counts,
    pruned/truncated flags).  Deterministic: domain counts, resume and
    checkpoints do not change the result.  The uncached reference the
    bench and the smoke gate compare daemon responses against. *)

val check :
  t ->
  instance:string ->
  model:Engine.Model.t ->
  config:Protocol.query_config ->
  fresh:bool ->
  (Engine.Metrics.Json.v * bool, Error.t) result
(** The memoized check; the bool is [true] on a cache hit.  [fresh]
    skips the cache read but still stores the recomputed result. *)

val sweep :
  t ->
  instance:string ->
  models:Engine.Model.t list ->
  config:Protocol.query_config ->
  fresh:bool ->
  (Engine.Metrics.Json.v, Error.t) result
(** Per-model checks batched onto the {!Engine.Pool} (an atomic work
    index over the model list); each model hits the same cache entries a
    single {!check} would.  Results are in request order regardless of
    worker interleaving. *)

val realize :
  t -> source:Engine.Model.t -> target:Engine.Model.t -> Engine.Metrics.Json.v
(** The Figures 3/4 cell for (source realized by target) — proven and
    disproven levels, achievability — plus the constructive transform
    chain when one exists.  Closure-backed, no cache needed. *)

val bgp :
  t ->
  nodes:int ->
  seed:int ->
  model:Engine.Model.t ->
  shards:int ->
  fresh:bool ->
  (Engine.Metrics.Json.v * bool, Error.t) result
(** A sharded simulation of a generated scaled topology (deterministic
    in [nodes] and [seed]); memoized under the topology digest. *)

val stats : t -> Engine.Metrics.Json.v
(** Store counters + entry count + pool reuse stats. *)
