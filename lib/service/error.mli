(** The query service's typed errors.

    Every fallible library entry point in [lib/service] returns a
    [('a, Error.t) result] in the {!Engine.Snapshot.error} style: the
    constructor says what went wrong, the payload says where.  Nothing in
    the library calls [exit] or lets an exception escape — the daemon
    must survive any malformed request, corrupt store entry or vanished
    instance, and the CLIs map errors to exit codes in exactly one place
    ({!exit_code}). *)

type t =
  | Usage of string
      (** a malformed request or bad CLI arguments; exit code 2 *)
  | Unknown_instance of { name : string; hint : string }
  | Unknown_model of string
  | Io of { path : string; message : string }
  | Corrupt of { path : string; detail : string }
      (** a store entry, manifest or checkpoint that failed validation *)
  | Unknown_job of string
  | Internal of string  (** an exception caught at the service boundary *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val kind : t -> string
(** Stable machine-readable tag used in protocol error responses:
    ["usage"], ["unknown-instance"], ["unknown-model"], ["io"],
    ["corrupt"], ["unknown-job"], ["internal"]. *)

val exit_code : t -> int
(** [Usage] is 2 (the repo-wide bad-arguments convention); everything
    else is 1.  The {e only} place a service error becomes an exit
    code. *)
