module Json = Engine.Metrics.Json

let magic = "commrouting/store/v1"

type config = { dir : string; max_entries : int }

let default_max_entries = 512

type t = {
  cfg : config;
  hits : int Atomic.t;
  misses : int Atomic.t;
  puts : int Atomic.t;
  corrupt : int Atomic.t;
  mismatch : int Atomic.t;
  lru : int Atomic.t;
}

type stats = {
  hits : int;
  misses : int;
  puts : int;
  corrupt_evicted : int;
  mismatch_evicted : int;
  lru_evicted : int;
}

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    match Unix.mkdir dir 0o755 with
    | () -> ()
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let is_tmp name =
  (* write_atomic temp names embed ".tmp." after the target name. *)
  let needle = ".tmp." in
  let n = String.length name and k = String.length needle in
  let rec scan i = i + k <= n && (String.sub name i k = needle || scan (i + 1)) in
  scan 0

let sweep_stale_tmp dir =
  match Sys.readdir dir with
  | names ->
    Array.iter
      (fun name ->
        if is_tmp name then
          try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
      names
  | exception Sys_error _ -> ()

let open_ cfg =
  match
    mkdir_p cfg.dir;
    sweep_stale_tmp cfg.dir
  with
  | () ->
    Ok
      {
        cfg;
        hits = Atomic.make 0;
        misses = Atomic.make 0;
        puts = Atomic.make 0;
        corrupt = Atomic.make 0;
        mismatch = Atomic.make 0;
        lru = Atomic.make 0;
      }
  | exception Unix.Unix_error (e, _, _) ->
    Error (Error.Io { path = cfg.dir; message = Unix.error_message e })
  | exception Sys_error m -> Error (Error.Io { path = cfg.dir; message = m })

let config_fingerprint parts =
  Digest.to_hex (Digest.string (String.concat "\x00" (magic :: parts)))

let key ~instance ~model ~config_fp =
  Digest.to_hex (Digest.string (String.concat "\x00" [ instance; model; config_fp ]))

let suffix = ".res"
let entry_path t ~key = Filename.concat t.cfg.dir (key ^ suffix)
let dir t = t.cfg.dir

let entries t =
  match Sys.readdir t.cfg.dir with
  | names ->
    Array.to_list names
    |> List.filter (fun n -> Filename.check_suffix n suffix && not (is_tmp n))
  | exception Sys_error _ -> []

let entry_count t = List.length (entries t)

let evict path counter =
  (try Sys.remove path with Sys_error _ -> ());
  Atomic.incr counter

(* The LRU cap.  Recency is mtime (refreshed by [get] on every hit);
   candidates are ordered oldest first with the file name as a
   deterministic tie-break, and the entry just written is never a
   candidate — with second-granularity timestamps it could otherwise be
   evicted by its own [put]. *)
let enforce_cap t ~keep =
  let max_entries = t.cfg.max_entries in
  if max_entries > 0 then begin
    let stamped =
      List.filter_map
        (fun name ->
          if String.equal name (keep ^ suffix) then None
          else
            let path = Filename.concat t.cfg.dir name in
            match Unix.stat path with
            | st -> Some (st.Unix.st_mtime, name, path)
            | exception Unix.Unix_error _ -> None)
        (entries t)
    in
    let excess = List.length stamped + 1 - max_entries in
    if excess > 0 then
      List.sort compare stamped
      |> List.filteri (fun i _ -> i < excess)
      |> List.iter (fun (_, _, path) -> evict path t.lru)
  end

let get t ~instance ~model ~config_fp =
  let k = key ~instance ~model ~config_fp in
  let path = entry_path t ~key:k in
  let miss () =
    Atomic.incr t.misses;
    None
  in
  if not (Sys.file_exists path) then miss ()
  else
    match Engine.Snapshot.read_framed ~magic path with
    | Error _ ->
      (* Truncated, bit-rotted, or written under another schema version:
         evict so the next put rebuilds it, and report a miss. *)
      evict path t.corrupt;
      miss ()
    | Ok j -> (
      let str_field name =
        match Json.member name j with Some (Json.Str s) -> Some s | _ -> None
      in
      let matches =
        str_field "instance" = Some instance
        && str_field "model" = Some model
        && str_field "config" = Some config_fp
      in
      if not matches then begin
        (* A well-formed entry for the wrong key: a config-fingerprint
           drift (result schema bump) or a digest collision.  Refuse and
           evict — serving it would be silently wrong. *)
        evict path t.mismatch;
        miss ()
      end
      else
        match Json.member "result" j with
        | Some r ->
          (* Refresh recency for the LRU cap; 0/0 means "now". *)
          (try Unix.utimes path 0. 0. with Unix.Unix_error _ -> ());
          Atomic.incr t.hits;
          Some r
        | None ->
          evict path t.corrupt;
          miss ())

let put t ~instance ~model ~config_fp result =
  let k = key ~instance ~model ~config_fp in
  let payload =
    Json.to_string
      (Json.Obj
         [
           ("schema", Json.Str magic);
           ("instance", Json.Str instance);
           ("model", Json.Str model);
           ("config", Json.Str config_fp);
           ("result", result);
         ])
  in
  match
    Engine.Snapshot.write_atomic (entry_path t ~key:k)
      (Engine.Snapshot.framed ~magic payload)
  with
  | () ->
    Atomic.incr t.puts;
    enforce_cap t ~keep:k;
    Ok ()
  | exception Sys_error m ->
    Error (Error.Io { path = entry_path t ~key:k; message = m })

let stats (t : t) =
  {
    hits = Atomic.get t.hits;
    misses = Atomic.get t.misses;
    puts = Atomic.get t.puts;
    corrupt_evicted = Atomic.get t.corrupt;
    mismatch_evicted = Atomic.get t.mismatch;
    lru_evicted = Atomic.get t.lru;
  }

let stats_json t =
  let s = stats t in
  let num i = Json.Num (float_of_int i) in
  Json.Obj
    [
      ("hits", num s.hits);
      ("misses", num s.misses);
      ("puts", num s.puts);
      ("corrupt_evicted", num s.corrupt_evicted);
      ("mismatch_evicted", num s.mismatch_evicted);
      ("lru_evicted", num s.lru_evicted);
      ("entries", num (entry_count t));
    ]
