module Json = Engine.Metrics.Json

let ( let* ) = Result.bind

type t = { store : Store.t; closure : Realization.Closure.t; workers : int }

let create ~store ~workers =
  match Realization.Closure.derive () with
  | Ok closure -> Ok { store; closure; workers = max 1 workers }
  | Error c ->
    Error (Error.Internal (Realization.Closure.contradiction_to_string c))

let store t = t.store

let num i = Json.Num (float_of_int i)

(* ------------------------------------------------------------------ *)
(* check: one bounded exploration + the oscillation verdict. *)

let check_schema = "commrouting/serve_check/v1"

let check_fp (c : Protocol.query_config) =
  Store.config_fingerprint
    [ check_schema; string_of_int c.bound; string_of_int c.max_states ]

let check_key inst model config ~instance:() =
  Store.key
    ~instance:(Engine.Snapshot.fingerprint inst)
    ~model:(Engine.Model.to_string model)
    ~config_fp:(check_fp config)

let compute_check ?metrics ?checkpoint ?resume inst model
    (c : Protocol.query_config) =
  let config =
    { Modelcheck.Explore.channel_bound = c.bound; max_states = c.max_states }
  in
  let graph =
    Modelcheck.Explore.explore ~config ?metrics ?checkpoint ?resume inst model
  in
  let verdict = Modelcheck.Oscillation.analyze_graph inst graph in
  let edges =
    Array.fold_left (fun n es -> n + List.length es) 0 graph.adjacency
  in
  let verdict_fields =
    match verdict with
    | Modelcheck.Oscillation.Converges -> [ ("verdict", Json.Str "converges") ]
    | Modelcheck.Oscillation.Unknown reason ->
      [ ("verdict", Json.Str "unknown"); ("reason", Json.Str reason) ]
    | Modelcheck.Oscillation.Oscillates w ->
      [
        ("verdict", Json.Str "oscillates");
        ( "witness",
          Json.Obj
            [
              ("prefix", num (List.length w.prefix));
              ("cycle", num (List.length w.cycle));
              ( "replays",
                Json.Bool (Modelcheck.Oscillation.verify_witness inst model w) );
            ] );
      ]
  in
  Json.Obj
    (verdict_fields
    @ [
        ("states", num (Array.length graph.states));
        ("edges", num edges);
        ("pruned", Json.Bool graph.pruned);
        ("truncated", Json.Bool graph.truncated);
      ])

let check_memo t inst model config ~fresh =
  let instance = Engine.Snapshot.fingerprint inst in
  let mstr = Engine.Model.to_string model in
  let config_fp = check_fp config in
  match
    if fresh then None
    else Store.get t.store ~instance ~model:mstr ~config_fp
  with
  | Some r -> Ok (r, true)
  | None -> (
    match compute_check inst model config with
    | r ->
      (* Best effort: a full disk must not fail the query. *)
      ignore (Store.put t.store ~instance ~model:mstr ~config_fp r);
      Ok (r, false)
    | exception e -> Error (Error.Internal (Printexc.to_string e)))

let check t ~instance ~model ~config ~fresh =
  let* inst = Resolve.find instance in
  check_memo t inst model config ~fresh

(* ------------------------------------------------------------------ *)
(* sweep: the per-model checks of one instance, batched onto the pool.
   Workers pull models off an atomic index; each model's result lands in
   its slot, so the response order is the request order no matter how
   the workers interleave. *)

let sweep t ~instance ~models ~config ~fresh =
  let* inst = Resolve.find instance in
  let models = if models = [] then Engine.Model.all else models in
  let arr = Array.of_list models in
  let n = Array.length arr in
  let out = Array.make n (Ok (Json.Null, false)) in
  let idx = Atomic.make 0 in
  let worker _ =
    let rec loop () =
      let i = Atomic.fetch_and_add idx 1 in
      if i < n then begin
        out.(i) <- check_memo t inst arr.(i) config ~fresh;
        loop ()
      end
    in
    loop ()
  in
  let workers = max 1 (min t.workers n) in
  (match
     if workers > 1 then Engine.Pool.run (Engine.Pool.get ()) ~workers worker
     else worker 0
   with
  | () -> ()
  | exception e ->
    (* A worker exception poisons the whole sweep; the per-slot results
       below keep whatever completed, the rest surface as Internal. *)
    Array.iteri
      (fun i r ->
        match r with
        | Ok (Json.Null, false) ->
          out.(i) <- Error (Error.Internal (Printexc.to_string e))
        | _ -> ())
      out);
  let results =
    List.mapi
      (fun i m ->
        let fields =
          match out.(i) with
          | Ok (r, cached) -> [ ("cached", Json.Bool cached); ("result", r) ]
          | Error e ->
            [
              ("error", Json.Str (Error.to_string e));
              ("kind", Json.Str (Error.kind e));
            ]
        in
        Json.Obj (("model", Json.Str (Engine.Model.to_string m)) :: fields))
      models
  in
  Ok
    (Json.Obj
       [ ("instance", Json.Str instance); ("results", Json.List results) ])

(* ------------------------------------------------------------------ *)
(* realize: the derived Figures 3/4 cell plus the constructive chain. *)

let realize t ~source ~target =
  let cell = Realization.Closure.cell t.closure ~realized:source ~realizer:target in
  let constructive =
    match Realization.Transform.route ~source ~target with
    | None -> Json.Null
    | Some path ->
      Json.Obj
        [
          ( "level",
            Json.Str (Realization.Relation.to_string (Realization.Transform.path_level path))
          );
          ( "chain",
            Json.List
              (List.map
                 (fun (e : Realization.Transform.edge) ->
                   Json.Obj
                     [
                       ("rule", Json.Str (Fmt.str "%a" Realization.Transform.pp_rule e.rule));
                       ("from", Json.Str (Engine.Model.to_string e.source));
                       ("to", Json.Str (Engine.Model.to_string e.target));
                     ])
                 path) );
        ]
  in
  Json.Obj
    [
      ("source", Json.Str (Engine.Model.to_string source));
      ("target", Json.Str (Engine.Model.to_string target));
      ("proven", num cell.Realization.Closure.proven);
      ("disproven", num cell.Realization.Closure.disproven);
      ("notation", Json.Str (Realization.Closure.cell_string cell));
      ("achievable", Json.Bool (cell.Realization.Closure.proven > 0));
      ("constructive", constructive);
    ]

(* ------------------------------------------------------------------ *)
(* bgp: sharded simulation of a generated scaled topology. *)

let bgp_schema = "commrouting/serve_bgp/v1"

let scaled_config ~nodes ~seed =
  let tier1 = max 3 (min 10 (nodes / 100)) in
  let tier2 = max 2 (nodes / 20) in
  let stubs = max 1 (nodes - tier1 - tier2) in
  {
    Bgp.Topology.s_tier1 = tier1;
    s_tier2 = tier2;
    s_stubs = stubs;
    s_peer_links = max 1 (tier2 / 2);
    s_seed = seed;
  }

let bgp t ~nodes ~seed ~model ~shards ~fresh =
  match Bgp.Topology.generate_scaled (scaled_config ~nodes ~seed) with
  | exception Invalid_argument m -> Error (Error.Usage m)
  | topo -> (
    let instance = Bgp.Topology.digest topo in
    let mstr = Engine.Model.to_string model in
    let config_fp =
      Store.config_fingerprint [ bgp_schema; string_of_int shards ]
    in
    match
      if fresh then None
      else Store.get t.store ~instance ~model:mstr ~config_fp
    with
    | Some r -> Ok (r, true)
    | None -> (
      match
        let cfg = Bgp.Shard.config_for ~shards model in
        Bgp.Shard.run cfg topo ~dest:(Bgp.Topology.size topo - 1)
      with
      | r ->
        let result =
          Json.Obj
            [
              ("nodes", num (Bgp.Topology.size topo));
              ("topology", Json.Str instance);
              ("model", Json.Str mstr);
              ("shards", num shards);
              ("converged", Json.Bool r.Bgp.Shard.converged);
              ("epochs", num r.Bgp.Shard.epochs);
              ("activations", num r.Bgp.Shard.activations);
              ("messages", num r.Bgp.Shard.messages);
              ("cross_messages", num r.Bgp.Shard.cross_messages);
              ("flushes", num r.Bgp.Shard.flushes);
              ("drops", num r.Bgp.Shard.drops);
              ("route_digest", Json.Str (Bgp.Shard.route_digest r));
            ]
        in
        ignore (Store.put t.store ~instance ~model:mstr ~config_fp result);
        Ok (result, false)
      | exception e -> Error (Error.Internal (Printexc.to_string e))))

(* ------------------------------------------------------------------ *)

let stats t =
  let pool = Engine.Pool.stats (Engine.Pool.get ()) in
  Json.Obj
    [
      ("store", Store.stats_json t.store);
      ( "pool",
        Json.Obj
          [
            ("size", num pool.Engine.Pool.size);
            ("spawned_total", num pool.Engine.Pool.spawned_total);
            ("runs", num pool.Engine.Pool.runs);
          ] );
    ]
