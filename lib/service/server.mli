(** The query daemon: a single select-driven event loop serving the
    {!Protocol} over a Unix-domain socket.

    Connections are newline-delimited JSON, any number of clients.  Each
    select round drains every readable connection, then answers:
    control requests (ping, stats, job management, shutdown) inline;
    compute requests ([check]/[sweep]/[bgp]/[realize]) batched onto the
    {!Engine.Pool} — workers pull requests off an atomic index, results
    land in per-request slots, and responses are written back in arrival
    order, so each connection sees strict FIFO responses no matter how
    the batch interleaves.  Deep jobs run on their own domains
    ({!Jobs}); their progress/done events stream to the connection that
    started or resumed them, between that connection's other responses.

    Durability: the daemon can be SIGKILLed at any point.  The store
    only ever exposes complete entries (atomic, fsynced writes), and
    running jobs leave a manifest + checkpoint behind that a fresh
    daemon resumes to a bit-identical result. *)

type config = {
  socket : string;  (** path; unlinked on bind if stale, and on exit *)
  store : Store.config;
  workers : int;  (** pool fan-out for batched compute requests *)
}

val run : ?on_ready:(unit -> unit) -> config -> (unit, Error.t) result
(** Serves until a [shutdown] request; [on_ready] fires once the socket
    is listening (used by the forked test harnesses).  Returns typed
    errors for a bind failure, an unusable store directory, or a
    contradictory fact base — mapping them to exit codes is the
    caller's job. *)
