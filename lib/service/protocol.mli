(** The daemon's wire protocol: newline-delimited JSON over a
    Unix-domain socket.

    One request per line: [{"id": <any>, "method": "<name>",
    "params": {...}}].  The [id] is echoed verbatim in every response
    and event for that request; [params] (and [id]) may be omitted.
    Responses are one line each: [{"id": .., "ok": true, "cached": ..,
    "result": {..}}] on success, [{"id": .., "ok": false, "error":
    {"kind": .., "message": ..}}] on failure.  Deep jobs additionally
    stream event lines [{"id": .., "event": "progress"|"done", "job":
    .., ...}] on the connection that started (or resumed) them.

    The codec is total: any byte sequence parses to either a typed
    {!envelope} or a typed {!Error.t} — malformed input is answered, not
    fatal. *)

type query_config = { bound : int; max_states : int }
(** The explorer configuration a query runs under; part of the
    memoization key. *)

val default_query_config : query_config
(** Channel bound 4, at most 200_000 states — the repo-wide defaults. *)

type request =
  | Ping
  | Check of {
      instance : string;
      model : Engine.Model.t;
      config : query_config;
      fresh : bool;  (** bypass the cache read (the result is still stored) *)
    }
  | Sweep of {
      instance : string;
      models : Engine.Model.t list;  (** empty means all 24 *)
      config : query_config;
      fresh : bool;
    }
  | Realize of { source : Engine.Model.t; target : Engine.Model.t }
  | Bgp of {
      nodes : int;
      seed : int;
      model : Engine.Model.t;
      shards : int;
      fresh : bool;
    }
  | Job_start of {
      instance : string;
      model : Engine.Model.t;
      config : query_config;
      every : int;  (** checkpoint period, in expanded states *)
    }
  | Job_status of { job : string }
  | Job_resume of { job : string }
  | Stats
  | Shutdown

type envelope = { id : Engine.Metrics.Json.v; req : request }

val methods : string list
(** Every method name, in a fixed order (for docs and goldens). *)

val to_json : envelope -> Engine.Metrics.Json.v
(** Canonical encoding (defaults made explicit).  [of_line] inverts it:
    round-tripping any envelope through [to_json]/[of_line] is the
    identity, locked by the protocol goldens in the test suite. *)

val of_json : Engine.Metrics.Json.v -> (envelope, Engine.Metrics.Json.v * Error.t) result
(** The error side carries the request id (or [Null]) so the server can
    still address its error response. *)

val of_line : string -> (envelope, Engine.Metrics.Json.v * Error.t) result

(** {1 Response builders} — each returns one newline-terminated line. *)

val ok_line :
  id:Engine.Metrics.Json.v -> ?cached:bool -> Engine.Metrics.Json.v -> string

val error_line : id:Engine.Metrics.Json.v -> Error.t -> string

val event_line :
  id:Engine.Metrics.Json.v ->
  event:string ->
  (string * Engine.Metrics.Json.v) list ->
  string
