module Json = Engine.Metrics.Json

type query_config = { bound : int; max_states : int }

let default_query_config = { bound = 4; max_states = 200_000 }

type request =
  | Ping
  | Check of {
      instance : string;
      model : Engine.Model.t;
      config : query_config;
      fresh : bool;
    }
  | Sweep of {
      instance : string;
      models : Engine.Model.t list;
      config : query_config;
      fresh : bool;
    }
  | Realize of { source : Engine.Model.t; target : Engine.Model.t }
  | Bgp of { nodes : int; seed : int; model : Engine.Model.t; shards : int; fresh : bool }
  | Job_start of {
      instance : string;
      model : Engine.Model.t;
      config : query_config;
      every : int;
    }
  | Job_status of { job : string }
  | Job_resume of { job : string }
  | Stats
  | Shutdown

type envelope = { id : Json.v; req : request }

let methods =
  [
    "ping";
    "check";
    "sweep";
    "realize";
    "bgp";
    "job_start";
    "job_status";
    "job_resume";
    "stats";
    "shutdown";
  ]

(* ------------------------------------------------------------------ *)
(* Encoding: canonical form with defaults explicit, so the round trip
   through [of_line] is the identity on every request kind. *)

let num i = Json.Num (float_of_int i)
let model_j m = Json.Str (Engine.Model.to_string m)

let config_fields (c : query_config) =
  [ ("bound", num c.bound); ("max_states", num c.max_states) ]

let to_json { id; req } =
  let meth name params = Json.Obj [ ("id", id); ("method", Json.Str name); ("params", Json.Obj params) ] in
  match req with
  | Ping -> meth "ping" []
  | Check { instance; model; config; fresh } ->
    meth "check"
      ([ ("instance", Json.Str instance); ("model", model_j model) ]
      @ config_fields config
      @ [ ("fresh", Json.Bool fresh) ])
  | Sweep { instance; models; config; fresh } ->
    meth "sweep"
      ([
         ("instance", Json.Str instance);
         ("models", Json.List (List.map model_j models));
       ]
      @ config_fields config
      @ [ ("fresh", Json.Bool fresh) ])
  | Realize { source; target } ->
    meth "realize" [ ("source", model_j source); ("target", model_j target) ]
  | Bgp { nodes; seed; model; shards; fresh } ->
    meth "bgp"
      [
        ("nodes", num nodes);
        ("seed", num seed);
        ("model", model_j model);
        ("shards", num shards);
        ("fresh", Json.Bool fresh);
      ]
  | Job_start { instance; model; config; every } ->
    meth "job_start"
      ([ ("instance", Json.Str instance); ("model", model_j model) ]
      @ config_fields config
      @ [ ("every", num every) ])
  | Job_status { job } -> meth "job_status" [ ("job", Json.Str job) ]
  | Job_resume { job } -> meth "job_resume" [ ("job", Json.Str job) ]
  | Stats -> meth "stats" []
  | Shutdown -> meth "shutdown" []

(* ------------------------------------------------------------------ *)
(* Decoding.  Total: every failure is a typed [Usage]/[Unknown_model]
   error carrying the request id so the server can address its reply. *)

let ( let* ) = Result.bind

let usage m = Error (Error.Usage m)

let str_param params name =
  match Json.member name params with
  | Some (Json.Str s) -> Ok (Some s)
  | Some _ -> usage (Printf.sprintf "param %S must be a string" name)
  | None -> Ok None

let required what = function
  | Some v -> Ok v
  | None -> usage (Printf.sprintf "missing required param %S" what)

let int_param params name ~default =
  match Json.member name params with
  | Some (Json.Num f) ->
    if Float.is_integer f then Ok (int_of_float f)
    else usage (Printf.sprintf "param %S must be an integer" name)
  | Some _ -> usage (Printf.sprintf "param %S must be an integer" name)
  | None -> Ok default

let bool_param params name ~default =
  match Json.member name params with
  | Some (Json.Bool b) -> Ok b
  | Some _ -> usage (Printf.sprintf "param %S must be a bool" name)
  | None -> Ok default

let model_of_string s =
  match Engine.Model.of_string s with
  | Some m -> Ok m
  | None -> Error (Error.Unknown_model s)

let model_param params name =
  let* s = str_param params name in
  let* s = required name s in
  model_of_string s

let config_params params =
  let* bound = int_param params "bound" ~default:default_query_config.bound in
  let* max_states =
    int_param params "max_states" ~default:default_query_config.max_states
  in
  if bound < 1 then usage "param \"bound\" must be at least 1"
  else if max_states < 1 then usage "param \"max_states\" must be at least 1"
  else Ok { bound; max_states }

let instance_param params =
  let* i = str_param params "instance" in
  required "instance" i

let request_of ~meth ~params =
  match meth with
  | "ping" -> Ok Ping
  | "check" ->
    let* instance = instance_param params in
    let* model = model_param params "model" in
    let* config = config_params params in
    let* fresh = bool_param params "fresh" ~default:false in
    Ok (Check { instance; model; config; fresh })
  | "sweep" ->
    let* instance = instance_param params in
    let* models =
      match Json.member "models" params with
      | None -> Ok []
      | Some (Json.List l) ->
        List.fold_left
          (fun acc j ->
            let* acc = acc in
            match j with
            | Json.Str s ->
              let* m = model_of_string s in
              Ok (m :: acc)
            | _ -> usage "param \"models\" must be a list of model names")
          (Ok []) l
        |> Result.map List.rev
      | Some _ -> usage "param \"models\" must be a list of model names"
    in
    let* config = config_params params in
    let* fresh = bool_param params "fresh" ~default:false in
    Ok (Sweep { instance; models; config; fresh })
  | "realize" ->
    let* source = model_param params "source" in
    let* target = model_param params "target" in
    Ok (Realize { source; target })
  | "bgp" ->
    let* nodes = int_param params "nodes" ~default:1_000 in
    let* seed = int_param params "seed" ~default:1 in
    let* model =
      match Json.member "model" params with
      | None -> Ok Engine.Model.{ rel = Reliable; nbr = N_multi; msg = M_some }
      | Some (Json.Str s) -> model_of_string s
      | Some _ -> usage "param \"model\" must be a string"
    in
    let* shards = int_param params "shards" ~default:4 in
    let* fresh = bool_param params "fresh" ~default:false in
    if nodes < 16 then usage "param \"nodes\" must be at least 16"
    else if shards < 1 then usage "param \"shards\" must be at least 1"
    else Ok (Bgp { nodes; seed; model; shards; fresh })
  | "job_start" ->
    let* instance = instance_param params in
    let* model = model_param params "model" in
    let* config = config_params params in
    let* every = int_param params "every" ~default:500 in
    if every < 1 then usage "param \"every\" must be at least 1"
    else Ok (Job_start { instance; model; config; every })
  | "job_status" ->
    let* job = str_param params "job" in
    let* job = required "job" job in
    Ok (Job_status { job })
  | "job_resume" ->
    let* job = str_param params "job" in
    let* job = required "job" job in
    Ok (Job_resume { job })
  | "stats" -> Ok Stats
  | "shutdown" -> Ok Shutdown
  | _ ->
    usage
      (Printf.sprintf "unknown method %S (known: %s)" meth
         (String.concat ", " methods))

let of_json j =
  let id = Option.value ~default:Json.Null (Json.member "id" j) in
  let fail e = Error (id, e) in
  match j with
  | Json.Obj _ -> (
    match Json.member "method" j with
    | Some (Json.Str meth) -> (
      let params = Option.value ~default:(Json.Obj []) (Json.member "params" j) in
      match params with
      | Json.Obj _ -> (
        match request_of ~meth ~params with
        | Ok req -> Ok { id; req }
        | Error e -> fail e)
      | _ -> fail (Error.Usage "\"params\" must be an object"))
    | Some _ -> fail (Error.Usage "\"method\" must be a string")
    | None -> fail (Error.Usage "missing \"method\""))
  | _ -> fail (Error.Usage "a request must be a JSON object")

let of_line line =
  match Json.parse (String.trim line) with
  | Ok j -> of_json j
  | Error m -> Error (Json.Null, Error.Usage (Printf.sprintf "invalid JSON: %s" m))

(* ------------------------------------------------------------------ *)

let ok_line ~id ?cached result =
  let cached_field =
    match cached with Some b -> [ ("cached", Json.Bool b) ] | None -> []
  in
  Json.to_string
    (Json.Obj ([ ("id", id); ("ok", Json.Bool true) ] @ cached_field @ [ ("result", result) ]))
  ^ "\n"

let error_line ~id e =
  Json.to_string
    (Json.Obj
       [
         ("id", id);
         ("ok", Json.Bool false);
         ( "error",
           Json.Obj
             [ ("kind", Json.Str (Error.kind e)); ("message", Json.Str (Error.to_string e)) ]
         );
       ])
  ^ "\n"

let event_line ~id ~event fields =
  Json.to_string (Json.Obj (("id", id) :: ("event", Json.Str event) :: fields)) ^ "\n"
