(** The on-disk memoized result store.

    Every expensive answer the daemon can give — a per-(instance, model)
    oscillation verdict, a sharded BGP fixpoint — is a pure function of
    its inputs, so it is cached in a directory of entry files keyed by
    [(instance digest, model, config fingerprint)].  Entries ride on
    {!Engine.Snapshot}'s storage primitives: the framed, checksummed
    layout ({!Engine.Snapshot.framed}) written atomically and durably
    ({!Engine.Snapshot.write_atomic}), so a crash mid-[put] never leaves
    a visible partial entry and concurrent writers never interleave.

    Reads are defensive: a corrupt, truncated or foreign entry file is
    {e evicted} (deleted) and reported as a miss, never an error — the
    cache heals itself.  An entry whose embedded key fields do not match
    the requested ones (a config-fingerprint drift, e.g. after a result
    schema bump, or an md5 collision) is likewise refused and evicted.
    The store is bounded: after each [put] the least recently used
    entries beyond [max_entries] are evicted (recency is file mtime,
    refreshed on every hit).

    All operations are safe to call concurrently from several domains
    and several processes sharing the directory: puts are atomic
    renames, and a get racing an eviction simply misses. *)

type config = { dir : string; max_entries : int }

val default_max_entries : int
(** 512 entries. *)

type t

val magic : string
(** ["commrouting/store/v1"] — the entry files' framing magic.  Bumping
    it orphans (and on first contact evicts) every existing entry. *)

val open_ : config -> (t, Error.t) result
(** Create the directory if missing (recursively) and sweep any stale
    [*.tmp.*] files a crashed writer left behind. *)

val config_fingerprint : string list -> string
(** Digest of the store schema plus the given configuration parts (query
    kind, result schema version, bounds...).  Including {!magic} means a
    store schema bump changes every fingerprint, so stale entries are
    refused and evicted rather than deserialized wrongly. *)

val key : instance:string -> model:string -> config_fp:string -> string
(** The entry key (hex digest) for an instance digest, a model name and
    a config fingerprint. *)

val get :
  t -> instance:string -> model:string -> config_fp:string ->
  Engine.Metrics.Json.v option
(** The cached result, or [None] on miss.  Corrupt and mismatched
    entries are evicted on contact (counted separately in {!stats}); a
    hit refreshes the entry's recency. *)

val put :
  t -> instance:string -> model:string -> config_fp:string ->
  Engine.Metrics.Json.v -> (unit, Error.t) result
(** Write (atomically, durably) and enforce the LRU cap.  An I/O failure
    is a typed error — callers treat the store as best-effort. *)

type stats = {
  hits : int;
  misses : int;
  puts : int;
  corrupt_evicted : int;  (** framing/parse failures deleted on [get] *)
  mismatch_evicted : int;  (** key-field mismatches deleted on [get] *)
  lru_evicted : int;  (** entries deleted by the size cap *)
}

val stats : t -> stats
val stats_json : t -> Engine.Metrics.Json.v

val entry_count : t -> int
(** Entry files currently on disk (for tests and the stats endpoint). *)

val entry_path : t -> key:string -> string
(** Where an entry key lives (for tests and tooling). *)

val dir : t -> string
