let catalogue () =
  Spp.Gadgets.all_named () @ [ ("SHORTEST-PATHS", Spp.Gadgets.shortest_paths ~n:5) ]

let names () =
  List.map fst (catalogue ()) @ [ "bgp:<seed>"; "random:<seed>"; "file:<path>" ]

let hint () =
  Printf.sprintf "try %s, bgp:<seed>, random:<seed> or file:<path>"
    (String.concat ", " (List.map fst (catalogue ())))

let find name : (Spp.Instance.t, Error.t) result =
  let up = String.uppercase_ascii name in
  match List.assoc_opt up (catalogue ()) with
  | Some inst -> Ok inst
  | None -> (
    (* bgp:<seed> and random:<seed> are generated families. *)
    match String.split_on_char ':' (String.lowercase_ascii name) with
    | [ "bgp"; seed ] -> (
      match int_of_string_opt seed with
      | Some seed ->
        let topo = Bgp.Topology.generate { Bgp.Topology.default_config with seed } in
        Ok (Bgp.Policy.compile topo ~dest:(Bgp.Topology.size topo - 1))
      | None -> Error (Error.Usage "bgp:<seed> expects an integer seed"))
    | [ "random"; seed ] -> (
      match int_of_string_opt seed with
      | Some seed -> Ok (Spp.Generator.instance { Spp.Generator.default with seed })
      | None -> Error (Error.Usage "random:<seed> expects an integer seed"))
    | "file" :: rest -> (
      let path = String.concat ":" rest in
      match Spp.Dsl.parse_file path with
      | Ok inst -> Ok inst
      | Error e -> Error (Error.Corrupt { path; detail = e })
      | exception Sys_error m -> Error (Error.Io { path; message = m }))
    | _ -> Error (Error.Unknown_instance { name; hint = hint () }))
