(** Deep, resumable exploration jobs.

    A job is a {!Query.check} too big to answer inline: it runs on its
    own domain, checkpoints the exploration every [every] expanded states
    ({!Modelcheck.Explore.checkpoint}), and lands its result in the
    {!Store} under the {e same} key an ordinary check of that triple
    uses — the job id {e is} that key, so a finished job turns every
    later check of the triple into a warm hit, and the smoke gate can
    compare the two directly.

    Durability: a manifest (framed, checksummed, written atomically)
    records the job's request under [<store>/jobs/<id>.job] before the
    domain starts.  Kill the daemon mid-job and [job_resume <id>] in a
    fresh process reloads the manifest, picks up the latest checkpoint
    with {!Engine.Snapshot.load}, and continues the same deterministic
    BFS — the final result is bit-identical to an uninterrupted run. *)

type t

val create : store:Store.t -> (t, Error.t) result
(** Creates [<store>/jobs/] and sweeps stale temp files. *)

val job_id :
  Spp.Instance.t -> Engine.Model.t -> Protocol.query_config -> string
(** = {!Query.check_key}: the store key of the equivalent check. *)

val start :
  t ->
  instance:string ->
  model:Engine.Model.t ->
  config:Protocol.query_config ->
  every:int ->
  (string * Engine.Metrics.Json.v option, Error.t) result
(** Returns the job id, plus the result immediately when the store
    already holds it (no domain is spawned).  Starting an id that is
    already running is idempotent.  A leftover checkpoint for this id is
    picked up rather than discarded. *)

val resume :
  t -> id:string -> (Engine.Metrics.Json.v option, Error.t) result
(** Re-launches a job from its manifest: instant result on a store hit,
    otherwise continues from the latest checkpoint (or from scratch when
    the job died before its first checkpoint).  [Unknown_job] if no
    manifest exists. *)

val status : t -> id:string -> (Engine.Metrics.Json.v, Error.t) result
(** One of [{"state":"running","states":n}], [{"state":"done"}] (the
    result is in the store), or [{"state":"suspended","checkpoint":b}]
    (manifest on disk, nothing running here).  [Unknown_job] when this
    daemon has never heard of the id. *)

type event =
  | Progress of { id : string; states : int }
  | Done of { id : string; result : Engine.Metrics.Json.v }
  | Failed of { id : string; message : string }

val poll : t -> event list
(** Drains what changed since the last poll: a [Progress] per running
    job whose state count moved, then [Done]/[Failed] for jobs that
    finished (their domains are joined here).  Driven by the server's
    select timeout. *)

val running : t -> int
(** Jobs currently on a domain (for stats and shutdown draining). *)
