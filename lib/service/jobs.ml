module Json = Engine.Metrics.Json

let ( let* ) = Result.bind

let manifest_magic = "commrouting/job/v1"

type outcome = Pending | Finished of Json.v | Crashed of string

type job = {
  metrics : Engine.Metrics.t;
  cell : outcome Atomic.t;
  mutable last_reported : int;
  mutable domain : unit Domain.t option;
}

type t = {
  store : Store.t;
  jobs_dir : string;
  running : (string, job) Hashtbl.t;
}

let create ~store =
  let jobs_dir = Filename.concat (Store.dir store) "jobs" in
  match Unix.mkdir jobs_dir 0o755 with
  | () | (exception Unix.Unix_error (Unix.EEXIST, _, _)) ->
    (* Clear write_atomic temp files left by a killed writer. *)
    (match Sys.readdir jobs_dir with
    | names ->
      Array.iter
        (fun n ->
          let has_tmp =
            let needle = ".tmp." in
            let ln = String.length n and lk = String.length needle in
            let rec scan i =
              i + lk <= ln && (String.sub n i lk = needle || scan (i + 1))
            in
            scan 0
          in
          if has_tmp then
            try Sys.remove (Filename.concat jobs_dir n) with Sys_error _ -> ())
        names
    | exception Sys_error _ -> ());
    Ok { store; jobs_dir; running = Hashtbl.create 7 }
  | exception Unix.Unix_error (e, _, _) ->
    Error (Error.Io { path = jobs_dir; message = Unix.error_message e })

let job_id inst model config = Query.check_key inst model config ~instance:()

let manifest_path t id = Filename.concat t.jobs_dir (id ^ ".job")
let ckpt_path t id = Filename.concat t.jobs_dir (id ^ ".ckpt")

(* ------------------------------------------------------------------ *)
(* Manifests: the request, framed and checksummed, written atomically
   before the job's domain starts — the durable half of resumability. *)

type manifest = {
  m_instance : string;
  m_model : Engine.Model.t;
  m_config : Protocol.query_config;
  m_every : int;
}

let save_manifest t ~id m =
  let payload =
    Json.to_string
      (Json.Obj
         [
           ("schema", Json.Str manifest_magic);
           ("instance", Json.Str m.m_instance);
           ("model", Json.Str (Engine.Model.to_string m.m_model));
           ("bound", Json.Num (float_of_int m.m_config.Protocol.bound));
           ("max_states", Json.Num (float_of_int m.m_config.Protocol.max_states));
           ("every", Json.Num (float_of_int m.m_every));
         ])
  in
  match
    Engine.Snapshot.write_atomic (manifest_path t id)
      (Engine.Snapshot.framed ~magic:manifest_magic payload)
  with
  | () -> Ok ()
  | exception Sys_error msg ->
    Error (Error.Io { path = manifest_path t id; message = msg })

let load_manifest t ~id =
  let path = manifest_path t id in
  if not (Sys.file_exists path) then Error (Error.Unknown_job id)
  else
    let corrupt detail = Error (Error.Corrupt { path; detail }) in
    match Engine.Snapshot.read_framed ~magic:manifest_magic path with
    | Error e -> corrupt (Engine.Snapshot.error_to_string e)
    | Ok j -> (
      let str name =
        match Json.member name j with Some (Json.Str s) -> Some s | _ -> None
      in
      let int name =
        match Json.member name j with
        | Some (Json.Num f) when Float.is_integer f -> Some (int_of_float f)
        | _ -> None
      in
      match (str "instance", str "model", int "bound", int "max_states", int "every") with
      | Some m_instance, Some ms, Some bound, Some max_states, Some m_every -> (
        match Engine.Model.of_string ms with
        | Some m_model ->
          Ok
            {
              m_instance;
              m_model;
              m_config = { Protocol.bound; max_states };
              m_every;
            }
        | None -> corrupt (Printf.sprintf "unknown model %S in manifest" ms))
      | _ -> corrupt "manifest is missing fields")

(* ------------------------------------------------------------------ *)

let store_probe t ~id:_ inst model config =
  Store.get t.store
    ~instance:(Engine.Snapshot.fingerprint inst)
    ~model:(Engine.Model.to_string model)
    ~config_fp:(Query.check_fp config)

let launch t ~id inst (m : manifest) =
  let resume =
    let path = ckpt_path t id in
    if Sys.file_exists path then
      match Engine.Snapshot.load ~path inst with
      | Ok snap -> Some snap
      | Error _ ->
        (* A torn or mismatched checkpoint: start over rather than fail —
           the manifest is the source of truth. *)
        (try Sys.remove path with Sys_error _ -> ());
        None
    else None
  in
  let metrics = Engine.Metrics.create () in
  let cell = Atomic.make Pending in
  let job = { metrics; cell; last_reported = 0; domain = None } in
  let store = t.store in
  let ckpt = ckpt_path t id in
  let config = m.m_config in
  let model = m.m_model in
  let every = m.m_every in
  let body () =
    match
      Query.compute_check ~metrics
        ~checkpoint:{ Modelcheck.Explore.path = ckpt; every }
        ?resume inst model config
    with
    | result ->
      ignore
        (Store.put store
           ~instance:(Engine.Snapshot.fingerprint inst)
           ~model:(Engine.Model.to_string model)
           ~config_fp:(Query.check_fp config)
           result);
      (try Sys.remove ckpt with Sys_error _ -> ());
      Atomic.set cell (Finished result)
    | exception e -> Atomic.set cell (Crashed (Printexc.to_string e))
  in
  job.domain <- Some (Domain.spawn body);
  Hashtbl.replace t.running id job

let start t ~instance ~model ~config ~every =
  let* inst = Resolve.find instance in
  let id = job_id inst model config in
  if Hashtbl.mem t.running id then Ok (id, None)
  else
    match store_probe t ~id inst model config with
    | Some r -> Ok (id, Some r)
    | None ->
      let m = { m_instance = instance; m_model = model; m_config = config; m_every = every } in
      let* () = save_manifest t ~id m in
      launch t ~id inst m;
      Ok (id, None)

let resume t ~id =
  if Hashtbl.mem t.running id then Ok None
  else
    let* m = load_manifest t ~id in
    let* inst = Resolve.find m.m_instance in
    match store_probe t ~id inst m.m_model m.m_config with
    | Some r -> Ok (Some r)
    | None ->
      launch t ~id inst m;
      Ok None

let status t ~id =
  match Hashtbl.find_opt t.running id with
  | Some job ->
    Ok
      (Json.Obj
         [
           ("state", Json.Str "running");
           ( "states",
             Json.Num (float_of_int (Engine.Metrics.states_interned job.metrics))
           );
         ])
  | None -> (
    match load_manifest t ~id with
    | Error (Error.Unknown_job _ as e) -> Error e
    | Error e -> Error e
    | Ok m -> (
      let* inst = Resolve.find m.m_instance in
      match store_probe t ~id inst m.m_model m.m_config with
      | Some _ -> Ok (Json.Obj [ ("state", Json.Str "done") ])
      | None ->
        Ok
          (Json.Obj
             [
               ("state", Json.Str "suspended");
               ("checkpoint", Json.Bool (Sys.file_exists (ckpt_path t id)));
             ])))

(* ------------------------------------------------------------------ *)

type event =
  | Progress of { id : string; states : int }
  | Done of { id : string; result : Engine.Metrics.Json.v }
  | Failed of { id : string; message : string }

let poll t =
  let events = ref [] in
  let finished = ref [] in
  Hashtbl.iter
    (fun id job ->
      match Atomic.get job.cell with
      | Pending ->
        let states = Engine.Metrics.states_interned job.metrics in
        if states > job.last_reported then begin
          job.last_reported <- states;
          events := Progress { id; states } :: !events
        end
      | Finished result ->
        (match job.domain with Some d -> Domain.join d | None -> ());
        finished := id :: !finished;
        events := Done { id; result } :: !events
      | Crashed message ->
        (match job.domain with Some d -> Domain.join d | None -> ());
        finished := id :: !finished;
        events := Failed { id; message } :: !events)
    t.running;
  List.iter (Hashtbl.remove t.running) !finished;
  List.rev !events

let running t = Hashtbl.length t.running
