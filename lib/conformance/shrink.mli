(** Counterexample minimization for violated positive trials.

    Greedy delta-debugging over two axes, preserving the violation's
    constructor ({!Trial.same_violation}):

    - {e schedule}: remove contiguous chunks of entries (halving chunk
      sizes down to single entries);
    - {e instance}: drop a permitted path, remove an edge (with the paths
      and reads that used it), or isolate a node (with its incident edges,
      the paths through it, and the entries activating it).

    Candidates whose source schedule is no longer legal in the realized
    model check as [Source_entry_invalid], a different constructor, so the
    invariant automatically rejects them (unless that {e was} the
    violation). *)

val positive : Trial.positive -> Trial.positive
(** Smallest still-violating trial the greedy passes reach; returns the
    input unchanged if it does not violate. *)
