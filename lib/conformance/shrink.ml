open Engine

(* Keep only entries whose active nodes all pass [keep_node], restricted to
   reads over still-existing channels. *)
let adapt_entries inst' ~keep_node entries =
  List.filter_map
    (fun (e : Activation.t) ->
      if List.for_all keep_node e.Activation.active then
        Some
          {
            e with
            Activation.reads =
              List.filter
                (fun (r : Activation.read) ->
                  Spp.Instance.are_adjacent inst' r.Activation.chan.Channel.src
                    r.Activation.chan.Channel.dst)
                e.Activation.reads;
          }
      else None)
    entries

(* Candidate instance mutations (via the shared {!Spp.Mutate} surgery
   primitives), cheapest-win first: dropping a permitted path keeps the
   graph intact; removing an edge or isolating a node also prunes the
   schedule. *)
let instance_candidates (t : Trial.positive) =
  let inst = t.Trial.inst in
  let drop_paths =
    List.concat_map
      (fun v ->
        if v = Spp.Instance.dest inst then []
        else
          List.map
            (fun p ->
              lazy
                (Option.map
                   (fun inst' -> { t with Trial.inst = inst' })
                   (Spp.Mutate.drop_path inst v p)))
            (Spp.Instance.permitted inst v))
      (Spp.Instance.nodes inst)
  in
  let drop_edges =
    List.map
      (fun e ->
        lazy
          (Option.map
             (fun inst' ->
               {
                 t with
                 Trial.inst = inst';
                 Trial.entries =
                   adapt_entries inst' ~keep_node:(fun _ -> true) t.Trial.entries;
               })
             (Spp.Mutate.drop_edge inst e)))
      (Spp.Instance.edges inst)
  in
  let isolate_nodes =
    List.filter_map
      (fun v ->
        if v = Spp.Instance.dest inst then None
        else
          Some
            (lazy
              (Option.map
                 (fun inst' ->
                   {
                     t with
                     Trial.inst = inst';
                     Trial.entries =
                       adapt_entries inst'
                         ~keep_node:(fun u -> u <> v)
                         t.Trial.entries;
                   })
                 (Spp.Mutate.isolate inst v))))
      (Spp.Instance.nodes inst)
  in
  drop_paths @ drop_edges @ isolate_nodes

let remove_chunk l ~off ~len =
  List.filteri (fun i _ -> i < off || i >= off + len) l

let positive (t0 : Trial.positive) =
  match Trial.check_positive t0 with
  | Trial.Holds -> t0
  | Trial.Violated v0 ->
    let still_violates t =
      match Trial.check_positive t with
      | Trial.Violated v -> Trial.same_violation v v0
      | Trial.Holds -> false
    in
    (* Pass 1: ddmin-style chunk removal over the schedule. *)
    let shrink_entries t =
      let t = ref t in
      let len = ref (List.length !t.Trial.entries / 2) in
      while !len >= 1 do
        let progressed = ref true in
        while !progressed do
          progressed := false;
          let n = List.length !t.Trial.entries in
          let off = ref 0 in
          while !off + !len <= n && not !progressed do
            let cand =
              {
                !t with
                Trial.entries = remove_chunk !t.Trial.entries ~off:!off ~len:!len;
              }
            in
            if still_violates cand then begin
              t := cand;
              progressed := true
            end
            else incr off
          done
        done;
        len := !len / 2
      done;
      !t
    in
    (* Pass 2: greedy instance surgery to a fixpoint. *)
    let rec shrink_instance t =
      let better =
        List.find_map
          (fun cand ->
            match Lazy.force cand with
            | Some c when still_violates c -> Some c
            | _ -> None)
          (instance_candidates t)
      in
      match better with Some c -> shrink_instance c | None -> t
    in
    let t = shrink_entries t0 in
    let t = shrink_instance t in
    shrink_entries t
