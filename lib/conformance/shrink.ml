open Engine

(* Rebuild an instance from its accessors, keeping only the given edges and
   the permitted paths passing [keep_path]; ranks are preserved verbatim so
   the preference order cannot drift during shrinking.  Returns [None] when
   the mutated instance fails validation. *)
let rebuild inst ~edges ~keep_path =
  let ranked =
    List.filter_map
      (fun v ->
        if v = Spp.Instance.dest inst then None
        else
          Some
            ( v,
              List.filter_map
                (fun p ->
                  if keep_path v p then
                    Option.map (fun r -> (p, r)) (Spp.Instance.rank inst v p)
                  else None)
                (Spp.Instance.permitted inst v) ))
      (Spp.Instance.nodes inst)
  in
  match
    Spp.Instance.of_ranked
      ~names:(Spp.Instance.names inst)
      ~dest:(Spp.Instance.dest inst) ~edges ~ranked
  with
  | inst' -> Some inst'
  | exception Invalid_argument _ -> None

(* Keep only entries whose active nodes all pass [keep_node], restricted to
   reads over still-existing channels. *)
let adapt_entries inst' ~keep_node entries =
  List.filter_map
    (fun (e : Activation.t) ->
      if List.for_all keep_node e.Activation.active then
        Some
          {
            e with
            Activation.reads =
              List.filter
                (fun (r : Activation.read) ->
                  Spp.Instance.are_adjacent inst' r.Activation.chan.Channel.src
                    r.Activation.chan.Channel.dst)
                e.Activation.reads;
          }
      else None)
    entries

let path_uses_edge (u, v) p =
  let rec loop = function
    | a :: (b :: _ as rest) ->
      ((a = u && b = v) || (a = v && b = u)) || loop rest
    | _ -> false
  in
  loop (Spp.Path.to_nodes p)

(* Candidate instance mutations, cheapest-win first: dropping a permitted
   path keeps the graph intact; removing an edge or isolating a node also
   prunes the schedule. *)
let instance_candidates (t : Trial.positive) =
  let inst = t.Trial.inst in
  let drop_paths =
    List.concat_map
      (fun v ->
        if v = Spp.Instance.dest inst then []
        else
          List.map
            (fun p ->
              lazy
                (Option.map
                   (fun inst' -> { t with Trial.inst = inst' })
                   (rebuild inst
                      ~edges:(Spp.Instance.edges inst)
                      ~keep_path:(fun v' p' ->
                        not (v' = v && Spp.Path.equal p' p)))))
            (Spp.Instance.permitted inst v))
      (Spp.Instance.nodes inst)
  in
  let drop_edges =
    List.map
      (fun e ->
        lazy
          (let edges = List.filter (fun e' -> e' <> e) (Spp.Instance.edges inst) in
           Option.map
             (fun inst' ->
               {
                 t with
                 Trial.inst = inst';
                 Trial.entries =
                   adapt_entries inst' ~keep_node:(fun _ -> true) t.Trial.entries;
               })
             (rebuild inst ~edges ~keep_path:(fun _ p -> not (path_uses_edge e p)))))
      (Spp.Instance.edges inst)
  in
  let isolate_nodes =
    List.filter_map
      (fun v ->
        if v = Spp.Instance.dest inst then None
        else
          Some
            (lazy
              (let edges =
                 List.filter
                   (fun (a, b) -> a <> v && b <> v)
                   (Spp.Instance.edges inst)
               in
               Option.map
                 (fun inst' ->
                   {
                     t with
                     Trial.inst = inst';
                     Trial.entries =
                       adapt_entries inst'
                         ~keep_node:(fun u -> u <> v)
                         t.Trial.entries;
                   })
                 (rebuild inst ~edges ~keep_path:(fun _ p ->
                      not (Spp.Path.contains v p))))))
      (Spp.Instance.nodes inst)
  in
  drop_paths @ drop_edges @ isolate_nodes

let remove_chunk l ~off ~len =
  List.filteri (fun i _ -> i < off || i >= off + len) l

let positive (t0 : Trial.positive) =
  match Trial.check_positive t0 with
  | Trial.Holds -> t0
  | Trial.Violated v0 ->
    let still_violates t =
      match Trial.check_positive t with
      | Trial.Violated v -> Trial.same_violation v v0
      | Trial.Holds -> false
    in
    (* Pass 1: ddmin-style chunk removal over the schedule. *)
    let shrink_entries t =
      let t = ref t in
      let len = ref (List.length !t.Trial.entries / 2) in
      while !len >= 1 do
        let progressed = ref true in
        while !progressed do
          progressed := false;
          let n = List.length !t.Trial.entries in
          let off = ref 0 in
          while !off + !len <= n && not !progressed do
            let cand =
              {
                !t with
                Trial.entries = remove_chunk !t.Trial.entries ~off:!off ~len:!len;
              }
            in
            if still_violates cand then begin
              t := cand;
              progressed := true
            end
            else incr off
          done
        done;
        len := !len / 2
      done;
      !t
    in
    (* Pass 2: greedy instance surgery to a fixpoint. *)
    let rec shrink_instance t =
      let better =
        List.find_map
          (fun cand ->
            match Lazy.force cand with
            | Some c when still_violates c -> Some c
            | _ -> None)
          (instance_candidates t)
      in
      match better with Some c -> shrink_instance c | None -> t
    in
    let t = shrink_entries t0 in
    let t = shrink_instance t in
    shrink_entries t
