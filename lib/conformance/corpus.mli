(** Committed conformance corpus: JSON-serialized trials that
    {!replay} re-checks deterministically.

    A corpus entry is self-contained — it embeds the full instance (names,
    destination, edges, ranked permitted paths) and the literal activation
    entries, so replay does not depend on the seeded-RNG contract of
    {!Spp.Generator} (that contract is guarded by its own regression
    test).  Schema: ["commrouting/conformance/v1"], documented in
    EXPERIMENTS.md.

    Entries found by the fuzzer record the violation they witnessed
    ([expect = "violated:<kind>"]); once the engine is fixed the entry is
    flipped to [expect = "holds"] and committed as a regression. *)

module Json = Engine.Metrics.Json

val schema : string

type expect = Expect_holds | Expect_violated of Trial.violation

type case =
  | Positive of Trial.positive * expect
  | Negative_refutation of {
      inst_name : string;
      inst : Spp.Instance.t;
      non_realizer : Engine.Model.t;
      target_model : Engine.Model.t;  (** the model the witness runs under *)
      level : Realization.Relation.level;
      termination : Modelcheck.Refute.termination;
      witness : Engine.Activation.t list;
      channel_bound : int;
      max_states : int;  (** the exploration budget replay must honor *)
    }

type t = { name : string; case : case }

val positive : name:string -> expect:expect -> Trial.positive -> t

(** {1 JSON} *)

val instance_to_json : Spp.Instance.t -> Json.v
val instance_of_json : Json.v -> (Spp.Instance.t, string) result
val entries_to_json : Spp.Instance.t -> Engine.Activation.t list -> Json.v

val entries_of_json :
  ?ctx:string -> Spp.Instance.t -> Json.v -> (Engine.Activation.t list, string) result
(** [ctx] (default ["entries"]) prefixes per-element error contexts, e.g.
    ["witness[3]: unknown node \"x\""]. *)

val to_json : t -> Json.v
val of_json : Json.v -> (t, string) result

val save : string -> t -> unit
(** Atomic (temp file + rename, {!Engine.Snapshot.write_atomic}): a crash
    mid-write never corrupts the artifact in place. *)

val load : string -> (t, string) result
(** Total, and strict: errors carry the file path (and the entry index
    for per-element failures), and any strict byte-prefix of a valid file
    — including the whole JSON body without its trailing newline — is an
    [Error], never a half-loaded entry. *)

(** {1 Replay} *)

type outcome = { name : string; ok : bool; detail : string }

val replay : t -> outcome
(** Re-runs the entry's check and compares with its expectation.  For a
    refutation entry, [Refute.Unknown] is a failure (the committed budget
    no longer suffices), never a pass. *)

val replay_file : string -> outcome
(** {!load} composed with {!replay}; parse errors become failed outcomes. *)
