(** Append-only progress journal for a conformance sweep.

    A sweep is thousands of independent trials; the journal records each
    finished (fact, seed) trial as one line appended and periodically
    flushed, so a killed [--budget deep] run restarts at the first
    incomplete pair instead of from scratch.  The file is tab-separated
    text with [String.escaped] fields:

    {v
    commrouting/journal/v1\t<fingerprint>
    P\t<trial index>\t<H|V>
    N\t<escaped negative name>\t<C|S\t<detail>|F\t<detail>>
    v}

    Loading tolerates a crash mid-append: a partial trailing line (no
    ['\n']) and anything after the first malformed line are ignored, and a
    header whose fingerprint does not match the requested configuration
    discards the whole file — a journal can make a resumed sweep skip
    work, never import results from a different configuration.

    Positive trials journal only whether they held: a violated trial is
    re-checked on resume to regain the violation payload (re-checking a
    handful of violations is cheap next to the sweep).  Negative verdicts
    are journaled in full. *)

(** {1 Generic keyed journal}

    The line format and crash-tolerance machinery, reusable by any
    resumable sweep (the divergence hunter journals per-candidate progress
    through this): records are lists of [String.escaped] fields on one
    tab-separated line under a caller-chosen magic + fingerprint header.
    Loading applies the same tolerance rules as the conformance journal:
    partial trailing lines and anything after the first malformed line are
    ignored, and a magic/fingerprint mismatch discards the whole file. *)

module Generic : sig
  type writer
  (** Appends under a mutex, so pool workers can record concurrently. *)

  val open_ :
    path:string ->
    magic:string ->
    fingerprint:string ->
    resume:bool ->
    flush_every:int ->
    writer * string list list
  (** Open [path] and return the complete already-journaled records (empty
      unless [resume] finds a matching journal).  The file is first
      compacted to complete lines, atomically, so appends always start at
      a line boundary. *)

  val record : writer -> string list -> unit
  val close : writer -> unit
end

type entry =
  | Positive of { index : int; held : bool }
      (** index into {!Fuzz.trials} order, which is deterministic in
          [seeds] *)
  | Negative of { name : string; verdict : Trial.negative_verdict }
      (** keyed by {!Trial.negative_name} *)

type writer
(** Appends under a mutex, so pool workers can record concurrently. *)

val fingerprint : ?reduction:string -> seeds:int -> budget:string -> unit -> string
(** Digest of the sweep configuration and the fact-base shape; journals
    written under a different fingerprint are ignored on load. *)

val open_ :
  path:string ->
  fingerprint:string ->
  resume:bool ->
  flush_every:int ->
  writer * entry list
(** Open [path] for journaling and return the already-journaled entries.
    With [resume] and a matching existing journal, the complete entries
    are returned and appending continues after them (the file is first
    compacted to complete lines, atomically).  Otherwise the file is
    started fresh (atomically) and the entry list is empty.  [flush_every]
    is the number of records between [flush]es (clamped to >= 1); {!close}
    always flushes. *)

val record : writer -> entry -> unit
val close : writer -> unit
