let magic = "commrouting/journal/v1"

type entry =
  | Positive of { index : int; held : bool }
  | Negative of { name : string; verdict : Trial.negative_verdict }

type writer = {
  oc : out_channel;
  mu : Mutex.t;
  flush_every : int;
  mutable since_flush : int;
}

let fingerprint ?(reduction = "none") ~seeds ~budget () =
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "%s|seeds=%d|budget=%s|reduction=%s|positives=%d|negatives=%d"
          magic seeds budget reduction
          (List.length Realization.Facts.positives)
          (List.length Realization.Facts.negatives)))

let entry_line = function
  | Positive { index; held } ->
    Printf.sprintf "P\t%d\t%s\n" index (if held then "H" else "V")
  | Negative { name; verdict } ->
    let tag, detail =
      match verdict with
      | Trial.Confirmed -> ("C", None)
      | Trial.Skipped s -> ("S", Some s)
      | Trial.Falsely_passed s -> ("F", Some s)
    in
    Printf.sprintf "N\t%s\t%s%s\n" (String.escaped name) tag
      (match detail with None -> "" | Some s -> "\t" ^ String.escaped s)

let parse_entry line =
  let unescape s = try Some (Scanf.unescaped s) with _ -> None in
  match String.split_on_char '\t' line with
  | [ "P"; idx; held ] -> (
    match (int_of_string_opt idx, held) with
    | Some index, "H" -> Some (Positive { index; held = true })
    | Some index, "V" -> Some (Positive { index; held = false })
    | _ -> None)
  | "N" :: name :: rest -> (
    match (unescape name, rest) with
    | Some name, [ "C" ] -> Some (Negative { name; verdict = Trial.Confirmed })
    | Some name, [ "S"; detail ] ->
      Option.map
        (fun d -> Negative { name; verdict = Trial.Skipped d })
        (unescape detail)
    | Some name, [ "F"; detail ] ->
      Option.map
        (fun d -> Negative { name; verdict = Trial.Falsely_passed d })
        (unescape detail)
    | _ -> None)
  | _ -> None

(* The complete entries of an existing journal, or [] when the file is
   missing, unreadable, or written under a different fingerprint.  A
   partial trailing line (crash mid-append) and everything after the first
   malformed line are dropped. *)
let load ~path ~fingerprint:fp =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error _ -> []
  | contents -> (
    match String.index_opt contents '\n' with
    | None -> []
    | Some nl ->
      if String.sub contents 0 nl <> magic ^ "\t" ^ fp then []
      else
        let body = String.sub contents (nl + 1) (String.length contents - nl - 1) in
        let rec complete_lines acc = function
          | [] | [ _ ] -> List.rev acc (* last chunk: empty or partial *)
          | line :: rest -> (
            match parse_entry line with
            | Some e -> complete_lines (e :: acc) rest
            | None -> List.rev acc)
        in
        complete_lines [] (String.split_on_char '\n' body))

let open_ ~path ~fingerprint:fp ~resume ~flush_every =
  let entries = if resume then load ~path ~fingerprint:fp else [] in
  (* Rewrite the compacted journal atomically before appending: this drops
     any partial trailing line, so appends always start at a line
     boundary, and a fresh open never leaves a stale journal behind. *)
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (magic ^ "\t" ^ fp ^ "\n");
  List.iter (fun e -> Buffer.add_string buf (entry_line e)) entries;
  Engine.Snapshot.write_atomic path (Buffer.contents buf);
  let oc = open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 path in
  ( { oc; mu = Mutex.create (); flush_every = max 1 flush_every; since_flush = 0 },
    entries )

let record w e =
  let line = entry_line e in
  Mutex.lock w.mu;
  output_string w.oc line;
  w.since_flush <- w.since_flush + 1;
  if w.since_flush >= w.flush_every then begin
    w.since_flush <- 0;
    flush w.oc
  end;
  Mutex.unlock w.mu

let close w =
  Mutex.lock w.mu;
  (try close_out w.oc with Sys_error _ -> ());
  Mutex.unlock w.mu
