let magic = "commrouting/journal/v1"

(* ------------------------------------------------------------------ *)
(* Generic keyed journal: one record per line, tab-separated
   [String.escaped] fields, under a caller-chosen magic + configuration
   fingerprint header.  The conformance sweep's journal below and the
   divergence hunter's per-candidate journal are both instances. *)

module Generic = struct
  type writer = {
    oc : out_channel;
    mu : Mutex.t;
    flush_every : int;
    mutable since_flush : int;
  }

  let record_line fields =
    String.concat "\t" (List.map String.escaped fields) ^ "\n"

  let parse_line line =
    let unescape s = try Some (Scanf.unescaped s) with _ -> None in
    if line = "" then None
    else
      let rec go acc = function
        | [] -> Some (List.rev acc)
        | f :: rest -> (
          match unescape f with
          | Some f -> go (f :: acc) rest
          | None -> None)
      in
      go [] (String.split_on_char '\t' line)

  (* The complete records of an existing journal, or [] when the file is
     missing, unreadable, or written under a different magic/fingerprint.
     A partial trailing line (crash mid-append) and anything after the
     first malformed line are dropped. *)
  let load ~path ~magic ~fingerprint:fp =
    match In_channel.with_open_bin path In_channel.input_all with
    | exception Sys_error _ -> []
    | contents -> (
      match String.index_opt contents '\n' with
      | None -> []
      | Some nl ->
        if String.sub contents 0 nl <> magic ^ "\t" ^ fp then []
        else
          let body =
            String.sub contents (nl + 1) (String.length contents - nl - 1)
          in
          let rec complete_lines acc = function
            | [] | [ _ ] -> List.rev acc (* last chunk: empty or partial *)
            | line :: rest -> (
              match parse_line line with
              | Some fields -> complete_lines (fields :: acc) rest
              | None -> List.rev acc)
          in
          complete_lines [] (String.split_on_char '\n' body))

  let open_ ~path ~magic ~fingerprint:fp ~resume ~flush_every =
    let records = if resume then load ~path ~magic ~fingerprint:fp else [] in
    (* Rewrite the compacted journal atomically before appending: this
       drops any partial trailing line, so appends always start at a line
       boundary, and a fresh open never leaves a stale journal behind. *)
    let buf = Buffer.create 4096 in
    Buffer.add_string buf (magic ^ "\t" ^ fp ^ "\n");
    List.iter (fun fs -> Buffer.add_string buf (record_line fs)) records;
    Engine.Snapshot.write_atomic path (Buffer.contents buf);
    let oc = open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 path in
    ( {
        oc;
        mu = Mutex.create ();
        flush_every = max 1 flush_every;
        since_flush = 0;
      },
      records )

  let record w fields =
    let line = record_line fields in
    Mutex.lock w.mu;
    output_string w.oc line;
    w.since_flush <- w.since_flush + 1;
    if w.since_flush >= w.flush_every then begin
      w.since_flush <- 0;
      flush w.oc
    end;
    Mutex.unlock w.mu

  let close w =
    Mutex.lock w.mu;
    (try close_out w.oc with Sys_error _ -> ());
    Mutex.unlock w.mu
end

(* ------------------------------------------------------------------ *)
(* The conformance sweep's journal, as a Generic instance. *)

type entry =
  | Positive of { index : int; held : bool }
  | Negative of { name : string; verdict : Trial.negative_verdict }

type writer = Generic.writer

let fingerprint ?(reduction = "none") ~seeds ~budget () =
  Digest.to_hex
    (Digest.string
       (Printf.sprintf
          "%s|seeds=%d|budget=%s|reduction=%s|positives=%d|negatives=%d" magic
          seeds budget reduction
          (List.length Realization.Facts.positives)
          (List.length Realization.Facts.negatives)))

let fields_of_entry = function
  | Positive { index; held } ->
    [ "P"; string_of_int index; (if held then "H" else "V") ]
  | Negative { name; verdict } -> (
    match verdict with
    | Trial.Confirmed -> [ "N"; name; "C" ]
    | Trial.Skipped s -> [ "N"; name; "S"; s ]
    | Trial.Falsely_passed s -> [ "N"; name; "F"; s ])

let entry_of_fields = function
  | [ "P"; idx; held ] -> (
    match (int_of_string_opt idx, held) with
    | Some index, "H" -> Some (Positive { index; held = true })
    | Some index, "V" -> Some (Positive { index; held = false })
    | _ -> None)
  | [ "N"; name; "C" ] -> Some (Negative { name; verdict = Trial.Confirmed })
  | [ "N"; name; "S"; detail ] ->
    Some (Negative { name; verdict = Trial.Skipped detail })
  | [ "N"; name; "F"; detail ] ->
    Some (Negative { name; verdict = Trial.Falsely_passed detail })
  | _ -> None

let open_ ~path ~fingerprint:fp ~resume ~flush_every =
  let w, records = Generic.open_ ~path ~magic ~fingerprint:fp ~resume ~flush_every in
  (* Anything after the first undecodable record is dropped, matching the
     line-level strictness: a journal can only make a resumed sweep skip
     work it has a complete, well-formed record for. *)
  let rec decode acc = function
    | [] -> List.rev acc
    | fields :: rest -> (
      match entry_of_fields fields with
      | Some e -> decode (e :: acc) rest
      | None -> List.rev acc)
  in
  (w, decode [] records)

let record w e = Generic.record w (fields_of_entry e)
let close = Generic.close
