(** Differential conformance harness for the Figures 3/4 realization
    matrices (the tentpole of the conformance test suite).

    {!Trial} turns each symbolic fact of {!Realization.Facts} into an
    executable check against the engine; {!Fuzz} sweeps trials over gadget
    and generated instances; {!Shrink} minimizes counterexamples; and
    {!Corpus} serializes them to the committed [results/conformance/]
    corpus, which {!replay} re-checks deterministically. *)

module Trial = Trial
module Shrink = Shrink
module Corpus = Corpus
module Journal = Journal
module Fuzz = Fuzz

let replay = Corpus.replay
let replay_file = Corpus.replay_file
