(** The conformance fuzzing loop.

    Draws an instance pool — every fixed gadget of {!Spp.Gadgets} plus
    [seeds] generated instances from {!Spp.Generator} (configurations and
    RNG seeds derived deterministically from the seed index) — and crosses
    it with all positive facts of the Figures 3/4 matrices.  Each
    (instance, fact) pair becomes one {!Trial.positive} whose source
    schedule is a finite prefix of {!Engine.Scheduler.random} for the
    realized model, with a seed derived from the pair, so a whole run is
    reproducible from [--seeds] alone.

    Positive trials are embarrassingly parallel and checked on a small
    domain pool; violations are shrunk with {!Shrink} and optionally
    serialized to a corpus directory.  Negative facts are then re-checked
    within the budget's cost classes. *)

type budget =
  | Smoke  (** {!Trial.Fast} negatives only — what [@conformance-smoke] runs *)
  | Default  (** adds {!Trial.Slow}; seconds of model checking *)
  | Deep  (** adds {!Trial.Deep}; minutes (FIG6 under R1A/RMA) *)

val budget_of_string : string -> budget option
val budget_to_string : budget -> string

type config = {
  seeds : int;  (** number of generated instances joining the gadget pool *)
  budget : budget;
  domains : int;  (** worker domains for the positive sweep *)
  reduction : Modelcheck.Reduce.t;
      (** state-space reduction for the negative checks' explorations;
          [Sym] is rejected (witnesses from a symmetry quotient are only
          valid up to relabeling, and separation checks replay them) *)
  emit_dir : string option;
      (** where shrunk counterexamples are serialized, when set *)
  journal : string option;
      (** progress journal path: every finished trial is appended, so an
          interrupted sweep resumes at the first incomplete (fact, seed)
          pair — see {!Journal} *)
  journal_every : int;  (** journal records between disk flushes (>= 1) *)
  resume : bool;
      (** prefill verdicts from an existing journal at [journal] (same
          seeds/budget/fact base; a mismatched journal is discarded) *)
  log : string -> unit;  (** progress/violation lines; [ignore] to silence *)
}

val default_config : config
(** 5 seeds, [Default] budget, {!Modelcheck.Explore.default_domains}
    domains, no reduction, no emission, no journal, silent. *)

type negative_result = {
  neg : Trial.negative;
  verdict : Trial.negative_verdict;
}

type report = {
  positives_checked : int;
  positives_held : int;
  violations : (Trial.positive * Trial.violation) list;
      (** already shrunk to minimal counterexamples *)
  negatives : negative_result list;  (** those within budget *)
  negatives_out_of_budget : int;
  closure_contradiction : Realization.Closure.contradiction option;
      (** a contradictory fact base, reported as a finding rather than
          crashing the sweep *)
}

val instance_pool : seeds:int -> (string * Spp.Instance.t) list

val schedule :
  Spp.Instance.t ->
  Engine.Model.t ->
  seed:int ->
  len:int ->
  Engine.Activation.t list
(** A finite, model-legal, deterministic source schedule. *)

val trials : seeds:int -> Trial.positive list

val run : config -> report

val falsely_passed : report -> negative_result list
val skipped : report -> negative_result list

val ok : report -> bool
(** No violated positive fact, no falsely-passed negative fact, and no
    closure contradiction.  Skips do not fail the run (they are reported
    instead). *)

val pp_report : Format.formatter -> report -> unit
