open Engine
module Json = Metrics.Json

let schema = "commrouting/conformance/v1"

type expect = Expect_holds | Expect_violated of Trial.violation

type case =
  | Positive of Trial.positive * expect
  | Negative_refutation of {
      inst_name : string;
      inst : Spp.Instance.t;
      non_realizer : Model.t;
      target_model : Model.t;
      level : Realization.Relation.level;
      termination : Modelcheck.Refute.termination;
      witness : Activation.t list;
      channel_bound : int;
      max_states : int;
    }

type t = { name : string; case : case }

let positive ~name ~expect p = { name; case = Positive (p, expect) }

(* ------------------------------------------------------------------ *)
(* Serialization.  Node references are by name, not id, so corpus files
   survive any future renumbering of node ids. *)

let ( let* ) = Result.bind

let rec map_m f = function
  | [] -> Ok []
  | x :: rest ->
    let* y = f x in
    let* ys = map_m f rest in
    Ok (y :: ys)

(* Indexed variant threading an element context ("entries[3]: ...") through
   errors, so a bad artifact is identifiable from the message alone. *)
let mapi_m ctx f l =
  let rec go i = function
    | [] -> Ok []
    | x :: rest ->
      let* y = Result.map_error (fun e -> Fmt.str "%s[%d]: %s" ctx i e) (f x) in
      let* ys = go (i + 1) rest in
      Ok (y :: ys)
  in
  go 0 l

let field name j =
  match Json.member name j with
  | Some v -> Ok v
  | None -> Error (Fmt.str "missing field %S" name)

let str_field name j =
  match Json.member name j with
  | Some (Json.Str s) -> Ok s
  | _ -> Error (Fmt.str "field %S: expected a string" name)

let int_field name j =
  match Json.member name j with
  | Some (Json.Num f) -> Ok (int_of_float f)
  | _ -> Error (Fmt.str "field %S: expected a number" name)

let list_field name j =
  match Json.member name j with
  | Some (Json.List l) -> Ok l
  | _ -> Error (Fmt.str "field %S: expected a list" name)

let as_str = function
  | Json.Str s -> Ok s
  | _ -> Error "expected a string"

let as_int = function
  | Json.Num f -> Ok (int_of_float f)
  | _ -> Error "expected a number"

let node_name inst v = Spp.Instance.name inst v
let names_json inst l = Json.List (List.map (fun v -> Json.Str (node_name inst v)) l)

let instance_to_json inst =
  let path_json v p =
    Json.Obj
      [
        ("path", names_json inst (Spp.Path.to_nodes p));
        ("rank", Json.Num (float_of_int (Option.get (Spp.Instance.rank inst v p))));
      ]
  in
  Json.Obj
    [
      ( "names",
        Json.List
          (Array.to_list (Array.map (fun s -> Json.Str s) (Spp.Instance.names inst)))
      );
      ("dest", Json.Str (node_name inst (Spp.Instance.dest inst)));
      ( "edges",
        Json.List
          (List.map
             (fun (a, b) ->
               Json.List [ Json.Str (node_name inst a); Json.Str (node_name inst b) ])
             (Spp.Instance.edges inst)) );
      ( "ranked",
        Json.List
          (List.filter_map
             (fun v ->
               if v = Spp.Instance.dest inst then None
               else
                 Some
                   (Json.Obj
                      [
                        ("node", Json.Str (node_name inst v));
                        ( "paths",
                          Json.List
                            (List.map (path_json v) (Spp.Instance.permitted inst v))
                        );
                      ]))
             (Spp.Instance.nodes inst)) );
    ]

let instance_of_json j =
  let* names_j = list_field "names" j in
  let* name_list = map_m as_str names_j in
  let names = Array.of_list name_list in
  let node name =
    let rec go i =
      if i >= Array.length names then Error (Fmt.str "unknown node %S" name)
      else if String.equal names.(i) name then Ok i
      else go (i + 1)
    in
    go 0
  in
  let* dest_name = str_field "dest" j in
  let* dest = node dest_name in
  let* edges_j = list_field "edges" j in
  let* edges =
    mapi_m "edges"
      (function
        | Json.List [ a; b ] ->
          let* a = as_str a in
          let* b = as_str b in
          let* a = node a in
          let* b = node b in
          Ok (a, b)
        | _ -> Error "expected a two-element list")
      edges_j
  in
  let* ranked_j = list_field "ranked" j in
  let* ranked =
    mapi_m "ranked"
      (fun rj ->
        let* v_name = str_field "node" rj in
        let* v = node v_name in
        let* paths_j = list_field "paths" rj in
        let* paths =
          mapi_m "paths"
            (fun pj ->
              let* nodes_j = list_field "path" pj in
              let* nodes = map_m as_str nodes_j in
              let* nodes = map_m node nodes in
              let* rank = int_field "rank" pj in
              Ok (Spp.Path.of_nodes nodes, rank))
            paths_j
        in
        Ok (v, paths))
      ranked_j
  in
  match Spp.Instance.of_ranked ~names ~dest ~edges ~ranked with
  | inst -> Ok inst
  | exception Invalid_argument msg -> Error ("invalid instance: " ^ msg)

let entries_to_json inst entries =
  Json.List
    (List.map
       (fun (e : Activation.t) ->
         Json.Obj
           [
             ("active", names_json inst e.Activation.active);
             ( "reads",
               Json.List
                 (List.map
                    (fun (r : Activation.read) ->
                      Json.Obj
                        [
                          ("src", Json.Str (node_name inst r.Activation.chan.Channel.src));
                          ("dst", Json.Str (node_name inst r.Activation.chan.Channel.dst));
                          ( "count",
                            Json.Num
                              (match r.Activation.count with
                              | Activation.All -> -1.
                              | Activation.Finite n -> float_of_int n) );
                          ( "drops",
                            Json.List
                              (List.map
                                 (fun i -> Json.Num (float_of_int i))
                                 (Activation.IntSet.elements r.Activation.drops)) );
                        ])
                    e.Activation.reads) );
           ])
       entries)

let entries_of_json ?(ctx = "entries") inst j =
  let node name =
    match Spp.Instance.find_node inst name with
    | v -> Ok v
    | exception Not_found -> Error (Fmt.str "unknown node %S" name)
  in
  let* entries_j =
    match j with Json.List l -> Ok l | _ -> Error (ctx ^ ": expected a list")
  in
  mapi_m ctx
    (fun ej ->
      let* active_j = list_field "active" ej in
      let* active = map_m as_str active_j in
      let* active = map_m node active in
      let* reads_j = list_field "reads" ej in
      let* reads =
        map_m
          (fun rj ->
            let* src = str_field "src" rj in
            let* dst = str_field "dst" rj in
            let* src = node src in
            let* dst = node dst in
            let* count = int_field "count" rj in
            let* drops_j = list_field "drops" rj in
            let* drops = map_m as_int drops_j in
            let count =
              if count < 0 then Activation.All else Activation.Finite count
            in
            Ok (Activation.read ~drops ~count (Channel.id ~src ~dst)))
          reads_j
      in
      Ok (Activation.entry ~active ~reads))
    entries_j

let level_to_json l = Json.Num (float_of_int (Realization.Relation.to_int l))

let level_of_json name j =
  let* i = int_field name j in
  match Realization.Relation.of_int i with
  | Some l -> Ok l
  | None -> Error (Fmt.str "field %S: no such level %d" name i)

let model_of_string name s =
  match Model.of_string s with
  | Some m -> Ok m
  | None -> Error (Fmt.str "field %S: unknown model %S" name s)

let termination_to_string = function
  | Modelcheck.Refute.Prefix -> "prefix"
  | Modelcheck.Refute.Forever -> "forever"

let termination_of_string = function
  | "prefix" -> Ok Modelcheck.Refute.Prefix
  | "forever" -> Ok Modelcheck.Refute.Forever
  | s -> Error (Fmt.str "unknown termination %S" s)

let expect_to_string = function
  | Expect_holds -> "holds"
  | Expect_violated v -> "violated:" ^ Trial.violation_name v

let expect_of_string s =
  if String.equal s "holds" then Ok Expect_holds
  else
    match String.index_opt s ':' with
    | Some i when String.sub s 0 i = "violated" -> (
      let tag = String.sub s (i + 1) (String.length s - i - 1) in
      match Trial.violation_of_name tag with
      | Some v -> Ok (Expect_violated v)
      | None -> Error (Fmt.str "unknown violation tag %S" tag))
    | _ -> Error (Fmt.str "unknown expectation %S" s)

let to_json t =
  let common = [ ("schema", Json.Str schema); ("name", Json.Str t.name) ] in
  match t.case with
  | Positive (p, expect) ->
    Json.Obj
      (common
      @ [
          ("kind", Json.Str "positive");
          ( "fact",
            Json.Obj
              [
                ("realizer", Json.Str (Model.to_string p.Trial.realizer));
                ("realized", Json.Str (Model.to_string p.Trial.realized));
                ("level", level_to_json p.Trial.level);
                ("source", Json.Str p.Trial.source);
              ] );
          ("instance_name", Json.Str p.Trial.inst_name);
          ("instance", instance_to_json p.Trial.inst);
          ("entries", entries_to_json p.Trial.inst p.Trial.entries);
          ("expect", Json.Str (expect_to_string expect));
        ])
  | Negative_refutation r ->
    Json.Obj
      (common
      @ [
          ("kind", Json.Str "negative_refutation");
          ("non_realizer", Json.Str (Model.to_string r.non_realizer));
          ("target_model", Json.Str (Model.to_string r.target_model));
          ("level", level_to_json r.level);
          ("termination", Json.Str (termination_to_string r.termination));
          ("instance_name", Json.Str r.inst_name);
          ("instance", instance_to_json r.inst);
          ("witness", entries_to_json r.inst r.witness);
          ("channel_bound", Json.Num (float_of_int r.channel_bound));
          ("max_states", Json.Num (float_of_int r.max_states));
        ])

let of_json j =
  let* s = str_field "schema" j in
  if not (String.equal s schema) then Error (Fmt.str "unsupported schema %S" s)
  else
    let* name = str_field "name" j in
    let* kind = str_field "kind" j in
    match kind with
    | "positive" ->
      let* fact = field "fact" j in
      let* realizer = str_field "realizer" fact in
      let* realizer = model_of_string "realizer" realizer in
      let* realized = str_field "realized" fact in
      let* realized = model_of_string "realized" realized in
      let* level = level_of_json "level" fact in
      let* source = str_field "source" fact in
      let* inst_name = str_field "instance_name" j in
      let* inst_j = field "instance" j in
      let* inst = instance_of_json inst_j in
      let* entries_j = field "entries" j in
      let* entries = entries_of_json inst entries_j in
      let* expect = str_field "expect" j in
      let* expect = expect_of_string expect in
      Ok
        {
          name;
          case =
            Positive
              ( {
                  Trial.realizer;
                  realized;
                  level;
                  source;
                  inst_name;
                  inst;
                  entries;
                },
                expect );
        }
    | "negative_refutation" ->
      let* non_realizer = str_field "non_realizer" j in
      let* non_realizer = model_of_string "non_realizer" non_realizer in
      let* target_model = str_field "target_model" j in
      let* target_model = model_of_string "target_model" target_model in
      let* level = level_of_json "level" j in
      let* termination = str_field "termination" j in
      let* termination = termination_of_string termination in
      let* inst_name = str_field "instance_name" j in
      let* inst_j = field "instance" j in
      let* inst = instance_of_json inst_j in
      let* witness_j = field "witness" j in
      let* witness = entries_of_json ~ctx:"witness" inst witness_j in
      let* channel_bound = int_field "channel_bound" j in
      let* max_states = int_field "max_states" j in
      Ok
        {
          name;
          case =
            Negative_refutation
              {
                inst_name;
                inst;
                non_realizer;
                target_model;
                level;
                termination;
                witness;
                channel_bound;
                max_states;
              };
        }
    | k -> Error (Fmt.str "unknown corpus entry kind %S" k)

let save path t =
  (* Atomic: a crash mid-write must never corrupt a committed artifact in
     place. *)
  Snapshot.write_atomic path (Json.to_string (to_json t) ^ "\n")

let load path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | contents ->
    Result.map_error
      (fun e -> Fmt.str "%s: %s" path e)
      (let n = String.length contents in
       (* [save] always ends the file with '\n' and the JSON body contains
          no raw newline, so requiring it makes every strict byte-prefix of
          a valid file fail instead of parsing as a shorter document. *)
       let* () =
         if n > 0 && contents.[n - 1] = '\n' then Ok ()
         else Error "truncated entry (missing trailing newline)"
       in
       let* j = Json.parse contents in
       of_json j)

(* ------------------------------------------------------------------ *)

type outcome = { name : string; ok : bool; detail : string }

let replay t =
  match t.case with
  | Positive (p, expect) ->
    let verdict = Trial.check_positive p in
    let ok, detail =
      match (verdict, expect) with
      | Trial.Holds, Expect_holds -> (true, "holds, as expected")
      | Trial.Violated v, Expect_violated v0 when Trial.same_violation v v0 ->
        (true, Fmt.str "still violated: %a" Trial.pp_violation v)
      | Trial.Holds, Expect_violated v0 ->
        ( false,
          Fmt.str "expected %s but the trial now holds" (Trial.violation_name v0) )
      | Trial.Violated v, Expect_holds ->
        (false, Fmt.str "unexpected violation: %a" Trial.pp_violation v)
      | Trial.Violated v, Expect_violated v0 ->
        ( false,
          Fmt.str "expected %s but got %s" (Trial.violation_name v0)
            (Trial.violation_name v) )
    in
    { name = t.name; ok; detail }
  | Negative_refutation r -> (
    let config =
      {
        Modelcheck.Explore.channel_bound = r.channel_bound;
        max_states = r.max_states;
      }
    in
    match
      List.find_index
        (fun e -> not (Model.validates r.inst r.target_model e))
        r.witness
    with
    | Some i ->
      {
        name = t.name;
        ok = false;
        detail = Fmt.str "witness entry %d illegal in the target model" i;
      }
    | None -> (
      let target =
        Trace.assignments ~include_initial:true
          (Executor.run_entries r.inst r.witness)
      in
      match
        Modelcheck.Refute.realizable ~config ~termination:r.termination r.inst
          r.non_realizer r.level ~target
      with
      | Modelcheck.Refute.Impossible ->
        { name = t.name; ok = true; detail = "still impossible" }
      | Modelcheck.Refute.Realizable entries ->
        {
          name = t.name;
          ok = false;
          detail =
            Fmt.str "a %d-step realizing schedule exists" (List.length entries);
        }
      | Modelcheck.Refute.Unknown reason ->
        {
          name = t.name;
          ok = false;
          detail = "committed budget now inconclusive: " ^ reason;
        }))

let replay_file path =
  match load path with
  | Ok t -> replay t
  | Error e -> { name = Filename.basename path; ok = false; detail = "parse: " ^ e }
