(** Differential conformance trials: one executable check per claim of the
    Figures 3/4 realization matrices.

    A {e positive} trial takes a positive fact (B realizes A at level l), a
    concrete instance and a finite A-legal activation sequence, transforms
    the sequence constructively with {!Realization.Transform}, runs both
    under {!Engine.Executor} and checks the induced path-assignment
    sequences with {!Realization.Seqcheck}.  Any failure along that
    pipeline — a missing or too-weak constructive route, an entry the
    source or target model rejects, a raised transform, or a violated
    trace relation — is a {!violation}: the symbolic fact base and the
    executable engine have drifted apart.

    A {e negative} trial re-checks a negative fact semantically, the way
    {!Modelcheck.Audit} does, but budgeted: realizability refutations go
    through {!Modelcheck.Refute} (an [Unknown] is a skip, never a pass)
    and oscillation separations through {!Modelcheck.Oscillation}. *)

(** {1 Positive trials} *)

type positive = {
  realizer : Engine.Model.t;  (** B, the model doing the realizing *)
  realized : Engine.Model.t;  (** A, the model being realized *)
  level : Realization.Relation.level;  (** the fact's claimed level *)
  source : string;  (** citation, e.g. "Thm. 3.5" *)
  inst_name : string;
  inst : Spp.Instance.t;
  entries : Engine.Activation.t list;  (** a finite A-legal schedule *)
}

val of_fact :
  Realization.Facts.positive ->
  inst_name:string ->
  Spp.Instance.t ->
  Engine.Activation.t list ->
  positive

type violation =
  | Route_missing  (** no constructive route for a proven fact *)
  | Route_too_weak  (** route level below the fact's claimed level *)
  | Source_entry_invalid of int  (** entry index illegal in the realized model *)
  | Target_entry_invalid of int  (** transformed entry illegal in the realizer *)
  | Relation_violated  (** Seqcheck rejected the trace relation *)
  | Transform_raised of string

val violation_name : violation -> string
(** Stable machine-readable tag, e.g. ["relation_violated"]. *)

val violation_of_name : string -> violation option
(** Inverse of {!violation_name} (payloads are defaulted). *)

val same_violation : violation -> violation -> bool
(** Constructor equality, ignoring payloads; the shrinker's invariant. *)

val pp_violation : Format.formatter -> violation -> unit

type verdict = Holds | Violated of violation

val force_routes : unit -> unit
(** Precompute the constructive route table.  Call once before checking
    trials from several domains: the table is built lazily and lazy forcing
    is not domain-safe. *)

val check_positive : positive -> verdict
(** The full differential pipeline described above.  The trace relation is
    checked at the {e route's} level (always at least the fact's level),
    the strongest sound oracle. *)

val pp_positive : Format.formatter -> positive -> unit

(** {1 Negative trials} *)

type cost =
  | Fast  (** sub-second *)
  | Slow  (** seconds (Prop. 3.10's fair-continuation search, FIG6/REA) *)
  | Deep  (** minutes (FIG6 exhaustive under R1A/RMA) *)

type negative_check =
  | Refutation of {
      inst_name : string;
      inst : Spp.Instance.t;
      witness : Engine.Activation.t list;
          (** the appendix execution, legal in the fact's target model *)
      level : Realization.Relation.level;
      termination : Modelcheck.Refute.termination;
    }
  | Separation of {
      inst_name : string;
      inst : Spp.Instance.t;
      oscillates_in : Engine.Model.t;
      scripted : (Engine.Activation.t list * Engine.Activation.t list) option;
          (** a concrete fair oscillation (prefix, cycle) of [oscillates_in],
              when exhaustively rediscovering one would be slow *)
    }

type negative = {
  fact : Realization.Facts.negative;
  check : negative_check;
  cost : cost;
}

val negatives : unit -> negative list
(** Every negative fact of {!Realization.Facts.negatives} paired with its
    semantic check and a cost class. *)

type negative_verdict =
  | Confirmed  (** the engine agrees the realization is impossible *)
  | Skipped of string  (** bounded exploration was inconclusive *)
  | Falsely_passed of string
      (** the engine found behavior the fact rules out — semantic drift *)

val check_negative :
  ?reduction:Modelcheck.Reduce.t ->
  config:Modelcheck.Explore.config ->
  negative ->
  negative_verdict
(** [reduction] (default {!Modelcheck.Reduce.No_reduction}) is forwarded to
    the separation checks' explorations; [Modelcheck.Reduce.Sym] raises
    [Invalid_argument] because separation checks replay the oscillation
    witness they find, and sym witnesses are only valid up to
    relabeling. *)

val negative_name : negative -> string
val pp_negative_verdict : Format.formatter -> negative_verdict -> unit
