open Engine
open Realization

type positive = {
  realizer : Model.t;
  realized : Model.t;
  level : Relation.level;
  source : string;
  inst_name : string;
  inst : Spp.Instance.t;
  entries : Activation.t list;
}

let of_fact (f : Facts.positive) ~inst_name inst entries =
  {
    realizer = f.Facts.realizer;
    realized = f.Facts.realized;
    level = f.Facts.level;
    source = f.Facts.source;
    inst_name;
    inst;
    entries;
  }

type violation =
  | Route_missing
  | Route_too_weak
  | Source_entry_invalid of int
  | Target_entry_invalid of int
  | Relation_violated
  | Transform_raised of string

let violation_name = function
  | Route_missing -> "route_missing"
  | Route_too_weak -> "route_too_weak"
  | Source_entry_invalid _ -> "source_entry_invalid"
  | Target_entry_invalid _ -> "target_entry_invalid"
  | Relation_violated -> "relation_violated"
  | Transform_raised _ -> "transform_raised"

let violation_of_name = function
  | "route_missing" -> Some Route_missing
  | "route_too_weak" -> Some Route_too_weak
  | "source_entry_invalid" -> Some (Source_entry_invalid (-1))
  | "target_entry_invalid" -> Some (Target_entry_invalid (-1))
  | "relation_violated" -> Some Relation_violated
  | "transform_raised" -> Some (Transform_raised "")
  | _ -> None

let same_violation a b = String.equal (violation_name a) (violation_name b)

let pp_violation ppf = function
  | Route_missing -> Fmt.string ppf "no constructive route for a proven fact"
  | Route_too_weak -> Fmt.string ppf "constructive route weaker than the fact"
  | Source_entry_invalid i -> Fmt.pf ppf "source entry %d illegal in the realized model" i
  | Target_entry_invalid i -> Fmt.pf ppf "transformed entry %d illegal in the realizer" i
  | Relation_violated -> Fmt.string ppf "trace relation violated"
  | Transform_raised e -> Fmt.pf ppf "transform raised: %s" e

type verdict = Holds | Violated of violation

(* The constructive route table is instance-independent; compute it once.
   [force_routes] must run before trials are checked from several domains
   because lazy forcing is not domain-safe. *)
let routes =
  lazy
    (List.concat_map
       (fun source ->
         List.filter_map
           (fun target ->
             if Model.equal source target then None
             else
               Option.map
                 (fun p -> ((source, target), p))
                 (Transform.route ~source ~target))
           Model.all)
       Model.all)

let force_routes () = ignore (Lazy.force routes)

let route ~source ~target =
  List.find_map
    (fun ((s, t), p) ->
      if Model.equal s source && Model.equal t target then Some p else None)
    (Lazy.force routes)

let pi_seq inst entries =
  Trace.assignments ~include_initial:true (Executor.run_entries inst entries)

let first_invalid inst model entries =
  let rec loop i = function
    | [] -> None
    | e :: rest -> if Model.validates inst model e then loop (i + 1) rest else Some i
  in
  loop 0 entries

let check_positive p =
  match route ~source:p.realized ~target:p.realizer with
  | None -> Violated Route_missing
  | Some path ->
    let level = Transform.path_level path in
    if Relation.compare level p.level < 0 then Violated Route_too_weak
    else begin
      match first_invalid p.inst p.realized p.entries with
      | Some i -> Violated (Source_entry_invalid i)
      | None -> (
        match Transform.apply_path path p.inst p.entries with
        | exception e -> Violated (Transform_raised (Printexc.to_string e))
        | transformed -> (
          match first_invalid p.inst p.realizer transformed with
          | Some i -> Violated (Target_entry_invalid i)
          | None ->
            if
              Seqcheck.check level ~original:(pi_seq p.inst p.entries)
                ~realized:(pi_seq p.inst transformed)
            then Holds
            else Violated Relation_violated))
    end

let pp_positive ppf p =
  Fmt.pf ppf "%a realizes %a (%s) [%s] on %s, %d-step schedule" Model.pp p.realizer
    Model.pp p.realized
    (Relation.to_string p.level)
    p.source p.inst_name (List.length p.entries)

(* ------------------------------------------------------------------ *)
(* Negative trials: the appendix witnesses, as in Modelcheck.Audit, but
   budget-parameterized and with structured skip/violation verdicts. *)

type cost = Fast | Slow | Deep

type negative_check =
  | Refutation of {
      inst_name : string;
      inst : Spp.Instance.t;
      witness : Activation.t list;
      level : Relation.level;
      termination : Modelcheck.Refute.termination;
    }
  | Separation of {
      inst_name : string;
      inst : Spp.Instance.t;
      oscillates_in : Model.t;
      scripted : (Activation.t list * Activation.t list) option;
    }

type negative = { fact : Facts.negative; check : negative_check; cost : cost }

let model s = Option.get (Model.of_string s)

let poll1 inst c =
  let v = Spp.Gadgets.node inst c in
  Activation.single v
    (List.map
       (fun ch -> Activation.read ~count:(Activation.Finite 1) ch)
       (Model.required_channels inst v))

let poll_all inst c = Activation.poll_all inst (Spp.Gadgets.node inst c)

let why_prefix (f : Facts.negative) p =
  String.length f.Facts.why >= String.length p
  && String.sub f.Facts.why 0 (String.length p) = p

let negatives () =
  List.map
    (fun (f : Facts.negative) ->
      if why_prefix f "Thm. 3.8" then
        {
          fact = f;
          check =
            Separation
              {
                inst_name = "DISAGREE";
                inst = Spp.Gadgets.disagree;
                oscillates_in = model "R1O";
                scripted = None;
              };
          cost = Fast;
        }
      else if why_prefix f "Thm. 3.9" then begin
        (* FIG6 oscillates in REO/REF: the scripted Ex. A.2 schedule beats
           re-deriving a witness from the (large) REO state space. *)
        let inst = Spp.Gadgets.fig6 in
        let prefix =
          List.map (poll1 inst)
            [ 'd'; 'x'; 'a'; 'u'; 'v'; 'y'; 'a'; 'u'; 'v'; 'z'; 'a'; 'v'; 'u' ]
        in
        let cycle = List.map (poll1 inst) [ 'v'; 'u'; 'a'; 'x'; 'y'; 'z'; 'd' ] in
        let cost =
          match Model.to_string f.Facts.non_realizer with
          | "R1A" | "RMA" -> Deep
          | _ -> Slow
        in
        {
          fact = f;
          check =
            Separation
              {
                inst_name = "FIG6";
                inst;
                oscillates_in = f.Facts.target;
                scripted = Some (prefix, cycle);
              };
          cost;
        }
      end
      else if why_prefix f "Prop. 3.10" then
        let inst = Spp.Gadgets.fig7 in
        {
          fact = f;
          check =
            Refutation
              {
                inst_name = "FIG7";
                inst;
                witness =
                  List.map (poll1 inst)
                    [ 'd'; 'b'; 'u'; 'v'; 'a'; 'u'; 'v'; 's'; 's'; 's' ];
                level = Relation.Exact;
                termination = Modelcheck.Refute.Forever;
              };
          cost = Slow;
        }
      else if why_prefix f "Prop. 3.11" then
        let inst = Spp.Gadgets.fig8 in
        {
          fact = f;
          check =
            Refutation
              {
                inst_name = "FIG8";
                inst;
                witness = List.map (poll_all inst) [ 'd'; 'a'; 'u'; 'b'; 'u'; 's' ];
                level = Relation.Repetition;
                termination = Modelcheck.Refute.Prefix;
              };
          cost = Fast;
        }
      else if why_prefix f "Prop. 3.12" || why_prefix f "Prop. 3.13" then
        (* The same Ex. A.5 execution, written in the target model's entry
           shape: poll-all under REA (3.12), one-message reads of every
           channel under REO (3.13) — each channel holds at most one message
           at its read point, so the two induce the same trace. *)
        let inst = Spp.Gadgets.fig9 in
        let entry = if why_prefix f "Prop. 3.12" then poll_all inst else poll1 inst in
        {
          fact = f;
          check =
            Refutation
              {
                inst_name = "FIG9";
                inst;
                witness = List.map entry [ 'd'; 'b'; 'c'; 'x'; 's'; 'a'; 'c'; 's' ];
                level = Relation.Exact;
                termination = Modelcheck.Refute.Prefix;
              };
          cost = Fast;
        }
      else
        invalid_arg ("Conformance.Trial.negatives: no check for " ^ f.Facts.why))
    Facts.negatives

type negative_verdict = Confirmed | Skipped of string | Falsely_passed of string

let check_negative ?(reduction = Modelcheck.Reduce.No_reduction) ~config neg =
  (* Separation checks replay the oscillation witness they find, and sym
     witnesses are only valid up to relabeling (see Oscillation.analyze),
     so a sym-reduced conformance run would report spurious drift. *)
  if reduction = Modelcheck.Reduce.Sym then
    invalid_arg "Conformance.Trial.check_negative: sym witnesses are not replayable";
  let f = neg.fact in
  match neg.check with
  | Refutation r -> (
    match first_invalid r.inst f.Facts.target r.witness with
    | Some i ->
      Falsely_passed (Fmt.str "witness entry %d no longer legal in the target model" i)
    | None -> (
      let target = pi_seq r.inst r.witness in
      match
        Modelcheck.Refute.realizable ~config ~termination:r.termination r.inst
          f.Facts.non_realizer r.level ~target
      with
      | Modelcheck.Refute.Impossible -> Confirmed
      | Modelcheck.Refute.Realizable entries ->
        Falsely_passed
          (Fmt.str "a %d-step realizing schedule exists" (List.length entries))
      | Modelcheck.Refute.Unknown reason -> Skipped reason))
  | Separation s -> (
    let can_oscillate =
      match s.scripted with
      | Some (prefix, cycle) ->
        List.for_all (Model.validates s.inst s.oscillates_in) (prefix @ cycle)
        && (match
              (Executor.run ~max_steps:500 s.inst (Scheduler.prefixed prefix cycle))
                .Executor.stop
            with
           | Executor.Cycle _ -> true
           | _ -> false)
      | None -> (
        match Modelcheck.Oscillation.analyze ~reduction ~config s.inst s.oscillates_in with
        | Modelcheck.Oscillation.Oscillates w ->
          Modelcheck.Oscillation.verify_witness s.inst s.oscillates_in w
        | _ -> false)
    in
    if not can_oscillate then
      Falsely_passed
        (Fmt.str "lost the oscillation witness of %a on %s" Model.pp s.oscillates_in
           s.inst_name)
    else
      match Modelcheck.Oscillation.analyze ~reduction ~config s.inst f.Facts.non_realizer with
      | Modelcheck.Oscillation.Converges -> Confirmed
      | Modelcheck.Oscillation.Oscillates _ ->
        Falsely_passed
          (Fmt.str "%a oscillates on %s after all" Model.pp f.Facts.non_realizer
             s.inst_name)
      | Modelcheck.Oscillation.Unknown reason -> Skipped reason)

let negative_name neg =
  let f = neg.fact in
  Fmt.str "%s cannot realize %s at %s [%s]"
    (Model.to_string f.Facts.non_realizer)
    (Model.to_string f.Facts.target)
    (Relation.to_string f.Facts.at_level)
    f.Facts.why

let pp_negative_verdict ppf = function
  | Confirmed -> Fmt.string ppf "confirmed"
  | Skipped r -> Fmt.pf ppf "skipped (%s)" r
  | Falsely_passed r -> Fmt.pf ppf "FALSELY PASSED (%s)" r
