open Engine

type budget = Smoke | Default | Deep

let budget_of_string = function
  | "smoke" -> Some Smoke
  | "default" -> Some Default
  | "deep" -> Some Deep
  | _ -> None

let budget_to_string = function
  | Smoke -> "smoke"
  | Default -> "default"
  | Deep -> "deep"

type config = {
  seeds : int;
  budget : budget;
  domains : int;
  reduction : Modelcheck.Reduce.t;
  emit_dir : string option;
  journal : string option;
  journal_every : int;
  resume : bool;
  log : string -> unit;
}

let default_config =
  {
    seeds = 5;
    budget = Default;
    domains = Modelcheck.Explore.default_domains ();
    reduction = Modelcheck.Reduce.No_reduction;
    emit_dir = None;
    journal = None;
    journal_every = 1;
    resume = false;
    log = ignore;
  }

type negative_result = {
  neg : Trial.negative;
  verdict : Trial.negative_verdict;
}

type report = {
  positives_checked : int;
  positives_held : int;
  violations : (Trial.positive * Trial.violation) list;
  negatives : negative_result list;
  negatives_out_of_budget : int;
  closure_contradiction : Realization.Closure.contradiction option;
}

(* ------------------------------------------------------------------ *)
(* Trial generation. *)

let instance_pool ~seeds =
  let generated =
    List.init (max 0 seeds) (fun i ->
        let cfg =
          {
            Spp.Generator.nodes = 4 + (i mod 4);
            extra_edges = i mod 3;
            max_paths_per_node = 3;
            max_path_len = 5;
            seed = i;
          }
        in
        (* Every fifth instance uses shortest-first ranking: convergent
           inputs exercise the quiescent side of the trace relations. *)
        let inst =
          if i mod 5 = 4 then Spp.Generator.safe_instance cfg
          else Spp.Generator.instance cfg
        in
        (Fmt.str "gen-%d" i, inst))
  in
  Spp.Gadgets.all_named () @ generated

let schedule inst model ~seed ~len =
  Scheduler.prefix len (Scheduler.random inst model ~seed)

let trials ~seeds =
  List.concat_map
    (fun (inst_name, inst) ->
      let len = max 8 (2 * Spp.Instance.size inst) in
      List.mapi
        (fun i (f : Realization.Facts.positive) ->
          let seed = Hashtbl.hash (inst_name, i) land 0x3FFFFFFF in
          Trial.of_fact f ~inst_name inst
            (schedule inst f.Realization.Facts.realized ~seed ~len))
        Realization.Facts.positives)
    (instance_pool ~seeds)

(* ------------------------------------------------------------------ *)
(* Worker pool: trials are independent, so a shared atomic index over a
   results array is all the coordination needed (the engine's shared
   structures — the path arena, frozen instances — are domain-safe).
   Workers come from the persistent {!Engine.Pool}: a full sweep runs
   thousands of trials over many [run] calls, and spawning domains per
   call (the PR 1 scheme) cost an all-domain rendezvous each time. *)

let parallel_mapi ~domains f arr =
  let n = Array.length arr in
  let results = Array.make n None in
  let next = Atomic.make 0 in
  let worker _ =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        results.(i) <- Some (f i arr.(i));
        loop ()
      end
    in
    loop ()
  in
  Pool.run (Pool.get ()) ~workers:(max 1 (min domains n)) worker;
  Array.map Option.get results

let in_budget budget (cost : Trial.cost) =
  match (budget, cost) with
  | _, Trial.Fast -> true
  | (Default | Deep), Trial.Slow -> true
  | Deep, Trial.Deep -> true
  | Smoke, (Trial.Slow | Trial.Deep) | Default, Trial.Deep -> false

let run cfg =
  Trial.force_routes ();
  let ts = Array.of_list (trials ~seeds:cfg.seeds) in
  cfg.log
    (Fmt.str "conformance: %d positive trials (%d instances x %d facts), %d domain%s"
       (Array.length ts)
       (List.length (instance_pool ~seeds:cfg.seeds))
       (List.length Realization.Facts.positives)
       cfg.domains
       (if cfg.domains = 1 then "" else "s"));
  (* The journal prefills verdicts already earned by an interrupted sweep:
     held positives are skipped outright, violated ones re-checked (to
     regain the violation payload), and journaled negatives replayed. *)
  let prior_pos = Array.make (max 1 (Array.length ts)) false in
  let prior_neg = Hashtbl.create 16 in
  let journal =
    match cfg.journal with
    | None -> None
    | Some path ->
      let fp =
        Journal.fingerprint
          ~reduction:(Modelcheck.Reduce.to_string cfg.reduction)
          ~seeds:cfg.seeds ~budget:(budget_to_string cfg.budget) ()
      in
      let w, entries =
        Journal.open_ ~path ~fingerprint:fp ~resume:cfg.resume
          ~flush_every:cfg.journal_every
      in
      List.iter
        (function
          | Journal.Positive { index; held } ->
            if held && index >= 0 && index < Array.length ts then
              prior_pos.(index) <- true
          | Journal.Negative { name; verdict } ->
            Hashtbl.replace prior_neg name verdict)
        entries;
      if entries <> [] then
        cfg.log
          (Fmt.str "conformance: resuming from journal %s (%d entries)" path
             (List.length entries));
      Some w
  in
  let journal_record e = match journal with Some w -> Journal.record w e | None -> () in
  let check_positive i t =
    if prior_pos.(i) then Trial.Holds
    else begin
      let v = Trial.check_positive t in
      journal_record
        (Journal.Positive
           { index = i; held = (match v with Trial.Holds -> true | _ -> false) });
      v
    end
  in
  let verdicts = parallel_mapi ~domains:(max 1 cfg.domains) check_positive ts in
  let held = ref 0 in
  let violations = ref [] in
  Array.iteri
    (fun i verdict ->
      match verdict with
      | Trial.Holds -> incr held
      | Trial.Violated v ->
        cfg.log (Fmt.str "VIOLATED %a: %a" Trial.pp_positive ts.(i) Trial.pp_violation v);
        let shrunk = Shrink.positive ts.(i) in
        let v =
          match Trial.check_positive shrunk with
          | Trial.Violated v' -> v'
          | Trial.Holds -> v
        in
        cfg.log (Fmt.str "  shrunk to %a" Trial.pp_positive shrunk);
        violations := (shrunk, v) :: !violations)
    verdicts;
  let violations = List.rev !violations in
  (match cfg.emit_dir with
  | None -> ()
  | Some dir ->
    List.iteri
      (fun i (p, v) ->
        let name =
          Fmt.str "violation-%03d-%s-realizes-%s-%s" i
            (Model.to_string p.Trial.realizer)
            (Model.to_string p.Trial.realized)
            (Trial.violation_name v)
        in
        let file = Filename.concat dir (name ^ ".json") in
        Corpus.save file (Corpus.positive ~name ~expect:(Corpus.Expect_violated v) p);
        cfg.log (Fmt.str "  wrote %s" file))
      violations);
  let all_negs = Trial.negatives () in
  let in_scope, out = List.partition (fun n -> in_budget cfg.budget n.Trial.cost) all_negs in
  let negatives =
    List.map
      (fun n ->
        let name = Trial.negative_name n in
        let verdict =
          match Hashtbl.find_opt prior_neg name with
          | Some v -> v
          | None ->
            let v =
              Trial.check_negative ~reduction:cfg.reduction
                ~config:Modelcheck.Explore.default_config n
            in
            journal_record (Journal.Negative { name; verdict = v });
            v
        in
        cfg.log (Fmt.str "negative: %s -> %a" name Trial.pp_negative_verdict verdict);
        { neg = n; verdict })
      in_scope
  in
  (match journal with Some w -> Journal.close w | None -> ());
  (* The symbolic closure is part of conformance too: a contradictory fact
     base is reported as a finding, not an exception ending the sweep. *)
  let closure_contradiction =
    match Realization.Closure.derive () with
    | Ok _ -> None
    | Error c ->
      cfg.log (Fmt.str "closure: %s" (Realization.Closure.contradiction_to_string c));
      Some c
  in
  {
    positives_checked = Array.length ts;
    positives_held = !held;
    violations;
    negatives;
    negatives_out_of_budget = List.length out;
    closure_contradiction;
  }

let falsely_passed r =
  List.filter
    (fun nr -> match nr.verdict with Trial.Falsely_passed _ -> true | _ -> false)
    r.negatives

let skipped r =
  List.filter
    (fun nr -> match nr.verdict with Trial.Skipped _ -> true | _ -> false)
    r.negatives

let ok r =
  r.violations = [] && falsely_passed r = [] && r.closure_contradiction = None

let pp_report ppf r =
  Fmt.pf ppf "positive facts: %d/%d trials held, %d violated@."
    r.positives_held r.positives_checked
    (List.length r.violations);
  List.iter
    (fun (p, v) ->
      Fmt.pf ppf "  VIOLATED %a: %a@." Trial.pp_positive p Trial.pp_violation v)
    r.violations;
  let confirmed =
    List.length r.negatives - List.length (falsely_passed r) - List.length (skipped r)
  in
  Fmt.pf ppf
    "negative facts: %d confirmed, %d skipped, %d falsely passed (%d out of budget)@."
    confirmed
    (List.length (skipped r))
    (List.length (falsely_passed r))
    r.negatives_out_of_budget;
  List.iter
    (fun nr ->
      Fmt.pf ppf "  %s -> %a@." (Trial.negative_name nr.neg) Trial.pp_negative_verdict
        nr.verdict)
    (skipped r @ falsely_passed r);
  (match r.closure_contradiction with
  | None -> ()
  | Some c -> Fmt.pf ppf "  %s@." (Realization.Closure.contradiction_to_string c));
  Fmt.pf ppf "conformance: %s@." (if ok r then "OK" else "DRIFT DETECTED")
