(** Public umbrella API for the reproduction of "The Impact of Communication
    Models on Routing-Algorithm Convergence" (Jaggard, Ramachandran, Wright;
    ICDCS 2009 / DIMACS TR 2008-06).

    - {!Spp}: the Stable Paths Problem substrate — instances, solver,
      dispute wheels, the paper's gadgets, random generators.
    - {!Engine}: the execution semantics of Defs. 2.2–2.3 — channels,
      activation entries, the 24-model taxonomy, schedulers, traces.
    - {!Realization}: Sec. 3's theory — relation levels, constructive
      transforms, the fact base and closure engine regenerating Figures
      3–4, and the transcribed paper tables.
    - {!Modelcheck}: bounded explicit-state verification of per-model
      oscillation/convergence claims, with replayable witnesses.
    - {!Protocols}: instances of the protocol-generic engine core
      ({!Engine.Protocol.S}) — path-vector, gossip, push-sum — runnable
      and explorable under every model via {!Engine.Generic.Make} and
      {!Modelcheck.Gexplore.Make}.
    - {!Bgp}: a Gao–Rexford BGP substrate compiled onto the SPP engine,
      with the BGP-configuration-to-model mapping of Sec. 2.3/4. *)

module Spp = Spp
module Engine = Engine
module Realization = Realization
module Modelcheck = Modelcheck
module Protocols = Protocols
module Bgp = Bgp
