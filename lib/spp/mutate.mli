(** Validated instance surgery.

    The shared mutation primitives behind the conformance shrinker and the
    adversarial divergence hunter: every operation rebuilds the instance
    through {!Instance.of_ranked}, so a [Some] result is always
    well-formed, and [None] means the mutation would break an instance
    invariant (never a partially-mutated value). *)

val rebuild :
  Instance.t ->
  edges:(Path.node * Path.node) list ->
  keep_path:(Path.node -> Path.t -> bool) ->
  Instance.t option
(** Rebuild from the instance's own ranked tables, keeping only [edges]
    and the permitted paths passing [keep_path]; surviving ranks are
    preserved verbatim, so the preference order cannot drift. *)

val swap_ranks : Instance.t -> Path.node -> int -> int -> Instance.t option
(** [swap_ranks inst v i j] exchanges the ranks of [v]'s [i]-th and [j]-th
    most preferred permitted paths (0-based preference positions).  [None]
    on the destination, out-of-range positions, [i = j], or when the swap
    would create an illegal tie. *)

val drop_path : Instance.t -> Path.node -> Path.t -> Instance.t option
(** Remove one permitted path; other ranks are untouched. *)

val add_path : Instance.t -> Path.node -> Path.t -> pos:int -> Instance.t option
(** [add_path inst v p ~pos] inserts [p] (a path from [v], not yet
    permitted) at preference position [pos] (clamped), re-ranking [v]'s
    paths positionally so the relative order of existing paths is
    preserved.  [None] when [p] is not a simple graph path from [v] to the
    destination (via {!Instance.of_ranked} validation). *)

val drop_edge : Instance.t -> Path.node * Path.node -> Instance.t option
(** Remove an edge together with every permitted path that crosses it. *)

val isolate : Instance.t -> Path.node -> Instance.t option
(** Remove all edges incident to a node, every permitted path through it,
    and (consequently) all of its own permitted paths. *)

val path_uses_edge : Path.node * Path.node -> Path.t -> bool

val simple_paths : ?max_len:int -> Instance.t -> Path.node -> Path.t list
(** All simple graph paths from a node to the destination (at most
    [max_len] hops, default the node count), sorted; the raw material for
    permitted-path additions. *)
