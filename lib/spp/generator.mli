(** Random SPP instances for property tests and benchmarks. *)

type config = {
  nodes : int;  (** including the destination; at least 2 *)
  extra_edges : int;  (** edges added on top of a random spanning tree *)
  max_paths_per_node : int;
  max_path_len : int;
  seed : int;
}

val default : config

val instance : config -> Instance.t
(** A random connected instance: a random spanning tree plus
    [extra_edges] random chords; each node's permitted set is a random
    non-empty subset of its simple paths to the destination (bounded by
    [max_paths_per_node] and [max_path_len]), in a random preference
    order.  Generation is deterministic in [seed]. *)

val safe_instance : config -> Instance.t
(** Like {!instance} but ranking paths by length (shortest first), which
    cannot create a dispute wheel; useful as an always-convergent input. *)

val symmetric_ring : ?prefer_neighbor:bool -> int -> Instance.t
(** [symmetric_ring k] is the fully symmetric k-spoke instance: spokes
    v1..vk each adjacent to the destination and to their clockwise ring
    neighbor, every spoke preferring the route through that neighbor over
    its direct route ([prefer_neighbor], default true — the rotational
    generalization of DISAGREE, k = 2).  With [~prefer_neighbor:false] the
    direct route is preferred and the instance trivially converges.  Its k
    rotations make {!Instance.automorphisms} report k - 1 non-identity
    symmetries.  Raises [Invalid_argument] when [k < 2]. *)
