type 'w algebra = {
  name : string;
  extend : label:int -> 'w -> 'w option;
  origin : 'w;
  prefer : 'w -> 'w -> int;
}

type labeled_graph = {
  names : string array;
  dest : Path.node;
  links : (Path.node * Path.node * int * int) list;
}

(* Weight of a path under an algebra, folding from the destination end;
   [label u v] is the label used when u extends a path beginning at v. *)
let weight_of alg ~label path =
  let rec fold = function
    | [] -> None
    | [ _ ] -> Some alg.origin
    | u :: (v :: _ as rest) -> (
      match fold rest with
      | None -> None
      | Some w -> alg.extend ~label:(label u v) w)
  in
  fold path

let compile ?max_len alg g =
  let n = Array.length g.names in
  let max_len = match max_len with Some m -> m | None -> n in
  let labels = Array.make_matrix n n None in
  let adj = Array.make n [] in
  List.iter
    (fun (u, v, luv, lvu) ->
      if u < 0 || u >= n || v < 0 || v >= n || u = v then
        invalid_arg "Algebra.compile: bad link";
      labels.(u).(v) <- Some luv;
      labels.(v).(u) <- Some lvu;
      adj.(u) <- v :: adj.(u);
      adj.(v) <- u :: adj.(v))
    g.links;
  let label u v =
    match labels.(u).(v) with
    | Some l -> l
    | None -> invalid_arg "Algebra.compile: missing label"
  in
  let paths_of v =
    let acc = ref [] in
    let rec explore path u len =
      if u = g.dest then acc := List.rev path :: !acc
      else if len < max_len then
        List.iter
          (fun w -> if not (List.mem w path) then explore (w :: path) w (len + 1))
          adj.(u)
    in
    explore [ v ] v 0;
    !acc
  in
  let permitted =
    List.filter_map
      (fun v ->
        if v = g.dest then None
        else begin
          let weighted =
            List.filter_map
              (fun p ->
                match weight_of alg ~label p with
                | Some w -> Some (p, w)
                | None -> None)
              (paths_of v)
          in
          let sorted =
            List.sort
              (fun (p, w) (q, w') ->
                let c = alg.prefer w w' in
                if c <> 0 then c else compare p q)
              weighted
          in
          Some (v, List.map fst sorted)
        end)
      (List.init n Fun.id)
  in
  Instance.make ~names:g.names ~dest:g.dest
    ~edges:(List.map (fun (u, v, _, _) -> (u, v)) g.links)
    ~permitted

(* ------------------------------------------------------------------ *)
(* Stock algebras *)

let shortest_paths =
  {
    name = "shortest-paths";
    extend = (fun ~label w -> Some (label + w));
    origin = 0;
    prefer = compare;
  }

let widest_paths =
  {
    name = "widest-paths";
    extend = (fun ~label w -> Some (min label w));
    origin = max_int;
    prefer = (fun a b -> compare b a);
  }

let label_customer = 0
let label_peer = 1
let label_provider = 2

(* Weights encode (route class, hop count); class 0 = customer (and the
   origin), 1 = peer, 2 = provider.  Extension is defined exactly when the
   current holder would export: customer routes go to everyone, peer and
   provider routes only to customers (i.e. when the extender's label says
   its neighbor is its provider). *)
let gao_rexford =
  {
    name = "gao-rexford";
    extend =
      (fun ~label w ->
        let cls = w / 256 and hops = w mod 256 in
        if hops >= 255 then None
        else if cls = 0 || label = label_provider then
          Some ((label * 256) + hops + 1)
        else None);
    origin = 0;
    prefer = compare;
  }

(* ------------------------------------------------------------------ *)
(* Daggitt–Griffin convergence preconditions, checked over the supported
   extension steps of a concrete labeled graph: every weight reachable by
   extending along a supported simple path is compared against its
   extension.  Strict monotonicity over these steps rules out dispute
   wheels in the compiled instance: a wheel's rim route extends the next
   spoke's direct path, so chaining rank(rim_i) <= rank(Q_i) around the
   wheel yields w(Q_0) < w(Q_1) < ... < w(Q_0). *)

type conditions = {
  monotone : bool;
  strictly_monotone : bool;
  steps_checked : int;
}

let check_conditions ?max_len alg g =
  let n = Array.length g.names in
  let max_len = match max_len with Some m -> m | None -> n in
  let labels = Array.make_matrix n n None in
  let adj = Array.make n [] in
  List.iter
    (fun (u, v, luv, lvu) ->
      if u < 0 || u >= n || v < 0 || v >= n || u = v then
        invalid_arg "Algebra.check_conditions: bad link";
      labels.(u).(v) <- Some luv;
      labels.(v).(u) <- Some lvu;
      adj.(u) <- v :: adj.(u);
      adj.(v) <- u :: adj.(v))
    g.links;
  let monotone = ref true and strict = ref true and steps = ref 0 in
  (* DFS outward from the destination: [w] is the weight of the supported
     path from [u] down to the destination along [visited]. *)
  let rec explore visited u w len =
    if len < max_len then
      List.iter
        (fun v ->
          if not (List.mem v visited) then
            match labels.(v).(u) with
            | None -> ()
            | Some label -> (
              match alg.extend ~label w with
              | None -> ()
              | Some w' ->
                incr steps;
                let c = alg.prefer w' w in
                if c < 0 then begin
                  monotone := false;
                  strict := false
                end
                else if c = 0 then strict := false;
                explore (v :: visited) v w' (len + 1)))
        adj.(u)
  in
  explore [ g.dest ] g.dest alg.origin 0;
  {
    monotone = !monotone;
    strictly_monotone = !strict;
    steps_checked = !steps;
  }

let lex ~name a b =
  {
    name;
    extend =
      (fun ~label (wa, wb) ->
        match (a.extend ~label wa, b.extend ~label wb) with
        | Some wa', Some wb' -> Some (wa', wb')
        | _ -> None);
    origin = (a.origin, b.origin);
    prefer =
      (fun (xa, xb) (ya, yb) ->
        let c = a.prefer xa ya in
        if c <> 0 then c else b.prefer xb yb);
  }
