(** Stable Paths Problem instances (Griffin–Shepherd–Wilfong, as used in
    Sec. 2.1 of the paper).

    An instance is an undirected graph with a distinguished destination [d],
    and, for every node [v], a set of permitted simple paths from [v] to [d]
    together with a ranking function (lower rank = more preferred). *)

type t

(** {1 Construction} *)

val make :
  names:string array ->
  dest:Path.node ->
  edges:(Path.node * Path.node) list ->
  permitted:(Path.node * Path.node list list) list ->
  t
(** [make ~names ~dest ~edges ~permitted] builds an instance.

    [permitted] maps each non-destination node to its permitted paths given
    as node lists, most preferred first; ranks are assigned by position.
    Nodes absent from [permitted] have no permitted path (other than the
    destination, whose only permitted path is the trivial path [d]).
    Raises [Invalid_argument] if {!validate} would report an error. *)

val of_ranked :
  names:string array ->
  dest:Path.node ->
  edges:(Path.node * Path.node) list ->
  ranked:(Path.node * (Path.t * int) list) list ->
  t
(** Like {!make} but with explicit ranks (allowing ties through the same
    next hop, as the SPP definition permits). *)

(** {1 Validation} *)

type error =
  | Bad_node of Path.node
  | Not_a_path of Path.node * Path.t  (** not a graph path from v to d *)
  | Not_simple of Path.node * Path.t
  | Rank_tie of Path.node * Path.t * Path.t
      (** equal rank through different next hops *)
  | Dest_has_paths

val pp_error : t -> Format.formatter -> error -> unit

val validate : t -> error list
(** All validation errors; the empty list means the instance is well-formed.
    {!make} and {!of_ranked} raise on any error, so instances obtained from
    them are always well-formed. *)

(** {1 Accessors} *)

val size : t -> int
val names : t -> string array
val name : t -> Path.node -> string

(** Node id of a name; raises [Not_found] if absent. *)
val find_node : t -> string -> Path.node
val dest : t -> Path.node
val nodes : t -> Path.node list
val edges : t -> (Path.node * Path.node) list
val neighbors : t -> Path.node -> Path.node list
(** Sorted neighbor list. *)

val are_adjacent : t -> Path.node -> Path.node -> bool

val permitted : t -> Path.node -> Path.t list
(** Permitted paths of a node, most preferred first.  For the destination
    this is the trivial path [[d]]. *)

val rank : t -> Path.node -> Path.t -> int option
(** Rank of a permitted path at a node; [None] if not permitted. *)

val is_permitted : t -> Path.node -> Path.t -> bool

(** {1 Compact (arena id) lookups}

    O(1) views of the permitted-path tables keyed by {!Arena.id}, frozen
    at construction and read-only afterwards (safe to share across
    domains).  These back the engine's hot path. *)

val trivial_id : t -> Arena.id
(** The id of the destination's trivial path [[d]]. *)

val rank_id : t -> Path.node -> Arena.id -> int option
val is_permitted_id : t -> Path.node -> Arena.id -> bool

val permitted_extension : t -> Path.node -> Arena.id -> (Arena.id * int) option
(** [permitted_extension t v r] is [Some (id of v·r, rank)] when the
    extension of route [r] by [v] is permitted at [v], [None] otherwise
    (including when v·r would not be simple).  One hash lookup. *)

val all_permitted : t -> (Path.node * Path.t * int) list
(** Every (node, permitted path, rank) triple. *)

(** {1 Route choice} *)

val best : t -> Path.node -> Path.t list -> Path.t
(** [best t v candidates] is the most preferred permitted path among
    [candidates] (non-permitted candidates are ignored), or
    {!Path.epsilon} if none is permitted.  Rank ties are broken by the
    smaller next-hop id, then by path comparison, for determinism. *)

val best_id : t -> Path.node -> Arena.id list -> Arena.id
(** {!best} on interned paths: identical choice, O(1) rank lookups. *)

val channels : t -> (Path.node * Path.node) list
(** All directed channels (u, v): two per undirected edge. *)

(** {1 Symmetries} *)

val automorphisms : ?max_nodes:int -> t -> Path.node array list
(** All non-identity instance automorphisms: node permutations that fix the
    destination, preserve adjacency, and map every node's ranked permitted
    paths onto its image's (same set of (relabeled path, rank) pairs).
    Exactly the relabelings under which the routing semantics is invariant,
    so they are safe to quotient explored states by.  Deterministic order.
    Returns [] for instances larger than [max_nodes] (default 10) instead
    of attempting a combinatorial search; callers treat "no automorphisms
    found" as "no reduction", never as an error. *)

val pp : Format.formatter -> t -> unit
val pp_path : t -> Format.formatter -> Path.t -> unit
