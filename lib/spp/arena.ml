type id = int

(* One hash-consed cons cell per interned path.  [nodes] shares its tail
   with the [tail] path's [nodes], so materialization is O(1) and total
   storage is one cell per distinct (head, tail) pair. *)
type info = {
  head : Path.node; (* -1 for epsilon *)
  tail : id; (* epsilon for one-node paths *)
  len : int; (* number of edges, as in Path.length *)
  mask : int; (* bitset of member nodes < mask_overflow, else the overflow bit *)
  nodes : Path.node list;
}

let mask_overflow = 62
let bit v = if v >= 0 && v < mask_overflow then 1 lsl v else 1 lsl mask_overflow

let epsilon_info = { head = -1; tail = 0; len = 0; mask = 0; nodes = [] }
let epsilon = 0
let is_epsilon i = i = 0

(* Directory: id -> info, grown by doubling under [alloc_mu].  Readers get
   the array through [Atomic.get]; an id always reaches a reader through a
   happens-before edge from its interning (the stripe mutex, or whatever
   synchronization handed the id across domains), which ordered the
   directory write and any growth before the read. *)
let dir = Atomic.make (Array.make 1024 epsilon_info)
let next = ref 1
let alloc_mu = Mutex.create ()

let info i = (Atomic.get dir).(i)

(* Lock-striped intern table keyed by the packed (head, tail) pair.  The
   packing caps the arena at 2^40 paths and node ids at 2^22 — far beyond
   any instance this engine can explore. *)
let n_stripes = 64

type stripe = { mu : Mutex.t; tbl : (int, id) Hashtbl.t }

let stripes =
  Array.init n_stripes (fun _ -> { mu = Mutex.create (); tbl = Hashtbl.create 256 })

let key ~head ~tail = (head lsl 40) lor tail

let stripe_of k =
  let h = (k lxor (k lsr 17)) * 0x2545F4914F6CDD1D in
  (h lsr 32) land (n_stripes - 1)

let alloc inf =
  Mutex.lock alloc_mu;
  let i = !next in
  next := i + 1;
  let d = Atomic.get dir in
  let d =
    if i < Array.length d then d
    else begin
      let d' = Array.make (2 * Array.length d) epsilon_info in
      Array.blit d 0 d' 0 (Array.length d);
      Atomic.set dir d';
      d'
    end
  in
  d.(i) <- inf;
  Mutex.unlock alloc_mu;
  i

(* Intern the cons cell v·tail (tail already interned). *)
let cons v tail =
  let k = key ~head:v ~tail in
  let s = stripes.(stripe_of k) in
  Mutex.lock s.mu;
  match Hashtbl.find_opt s.tbl k with
  | Some i ->
    Mutex.unlock s.mu;
    i
  | None ->
    let ti = info tail in
    let inf =
      {
        head = v;
        tail;
        len = (if is_epsilon tail then 0 else ti.len + 1);
        mask = bit v lor ti.mask;
        nodes = v :: ti.nodes;
      }
    in
    let i = alloc inf in
    Hashtbl.add s.tbl k i;
    Mutex.unlock s.mu;
    i

let rec intern_nodes = function [] -> epsilon | v :: rest -> cons v (intern_nodes rest)

let of_nodes ns = intern_nodes ns
let intern p = intern_nodes (Path.to_nodes p)
let to_nodes i = (info i).nodes
let path i = Path.of_nodes (info i).nodes

let source i = if is_epsilon i then None else Some (info i).head

let destination i =
  if is_epsilon i then None
  else
    let rec last j = let inf = info j in if is_epsilon inf.tail then inf.head else last inf.tail in
    Some (last i)

let next_hop i =
  if is_epsilon i then None
  else
    let t = (info i).tail in
    if is_epsilon t then None else Some (info t).head

let length i = (info i).len

let extend v i =
  if is_epsilon i then invalid_arg "Arena.extend: cannot extend the empty path"
  else cons v i

let contains v i =
  let inf = info i in
  if v >= 0 && v < mask_overflow then inf.mask land (1 lsl v) <> 0
  else inf.mask land (1 lsl mask_overflow) <> 0 && List.mem v inf.nodes

let suffix i =
  if is_epsilon i then invalid_arg "Arena.suffix: epsilon has no suffix"
  else (info i).tail

let equal (a : id) b = a = b
let compare (a : id) b = Stdlib.compare a b
let hash (i : id) = i

let compare_structural a b =
  if a = b then 0 else Path.compare (path a) (path b)

let size () =
  Mutex.lock alloc_mu;
  let n = !next in
  Mutex.unlock alloc_mu;
  n

let pp ~names ppf i = Path.pp ~names ppf (path i)
let to_string ~names i = Path.to_string ~names (path i)
