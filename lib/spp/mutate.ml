(* Validated instance surgery.  Every mutation rebuilds the instance
   through [Instance.of_ranked], so a [Some] result is always well-formed;
   [None] means the mutation would violate an instance invariant (e.g. a
   rank tie through different next hops, or a path left dangling by an
   edge removal). *)

let rebuild inst ~edges ~keep_path =
  let ranked =
    List.filter_map
      (fun v ->
        if v = Instance.dest inst then None
        else
          Some
            ( v,
              List.filter_map
                (fun p ->
                  if keep_path v p then
                    Option.map (fun r -> (p, r)) (Instance.rank inst v p)
                  else None)
                (Instance.permitted inst v) ))
      (Instance.nodes inst)
  in
  match
    Instance.of_ranked ~names:(Instance.names inst) ~dest:(Instance.dest inst)
      ~edges ~ranked
  with
  | inst' -> Some inst'
  | exception Invalid_argument _ -> None

let with_ranked inst f =
  let ranked =
    List.filter_map
      (fun v ->
        if v = Instance.dest inst then None
        else
          let rs =
            List.filter_map
              (fun p -> Option.map (fun r -> (p, r)) (Instance.rank inst v p))
              (Instance.permitted inst v)
          in
          Some (v, f v rs))
      (Instance.nodes inst)
  in
  match
    Instance.of_ranked ~names:(Instance.names inst) ~dest:(Instance.dest inst)
      ~edges:(Instance.edges inst) ~ranked
  with
  | inst' -> Some inst'
  | exception Invalid_argument _ -> None

let swap_ranks inst v i j =
  let paths = Instance.permitted inst v in
  let n = List.length paths in
  if v = Instance.dest inst || i < 0 || j < 0 || i >= n || j >= n || i = j then
    None
  else
    let pi = List.nth paths i and pj = List.nth paths j in
    with_ranked inst (fun u rs ->
        if u <> v then rs
        else
          List.map
            (fun (p, r) ->
              if Path.equal p pi then (pj, r)
              else if Path.equal p pj then (pi, r)
              else (p, r))
            rs)

let drop_path inst v p =
  if
    v = Instance.dest inst
    || not (Instance.is_permitted inst v p)
  then None
  else rebuild inst ~edges:(Instance.edges inst) ~keep_path:(fun v' p' ->
      not (v' = v && Path.equal p' p))

let add_path inst v p ~pos =
  if
    v = Instance.dest inst
    || Instance.is_permitted inst v p
    || Path.source p <> Some v
  then None
  else
    with_ranked inst (fun u rs ->
        if u <> v then rs
        else
          (* Re-rank positionally around the insertion point: relative
             order of the existing paths is preserved exactly. *)
          let existing = List.map fst rs in
          let pos = max 0 (min pos (List.length existing)) in
          let before = List.filteri (fun i _ -> i < pos) existing in
          let after = List.filteri (fun i _ -> i >= pos) existing in
          List.mapi (fun r q -> (q, r)) (before @ [ p ] @ after))

let path_uses_edge (u, v) p =
  let rec loop = function
    | a :: (b :: _ as rest) -> ((a = u && b = v) || (a = v && b = u)) || loop rest
    | _ -> false
  in
  loop (Path.to_nodes p)

let drop_edge inst e =
  if not (List.mem e (Instance.edges inst)) then None
  else
    let edges = List.filter (fun e' -> e' <> e) (Instance.edges inst) in
    rebuild inst ~edges ~keep_path:(fun _ p -> not (path_uses_edge e p))

let isolate inst v =
  if v = Instance.dest inst then None
  else
    let edges =
      List.filter (fun (a, b) -> a <> v && b <> v) (Instance.edges inst)
    in
    let touches_path =
      List.exists
        (fun u ->
          u <> Instance.dest inst
          && List.exists (Path.contains v) (Instance.permitted inst u))
        (Instance.nodes inst)
    in
    (* Already isolated: report inapplicable rather than returning the
       instance unchanged (a no-op [Some] would let greedy shrinkers loop). *)
    if List.length edges = List.length (Instance.edges inst) && not touches_path
    then None
    else rebuild inst ~edges ~keep_path:(fun _ p -> not (Path.contains v p))

let simple_paths ?max_len inst v =
  let dest = Instance.dest inst in
  let max_len =
    match max_len with Some m -> m | None -> Instance.size inst
  in
  let acc = ref [] in
  let rec explore rev_path u len =
    if u = dest then acc := Path.of_nodes (List.rev rev_path) :: !acc
    else if len < max_len then
      List.iter
        (fun w ->
          if not (List.mem w rev_path) then explore (w :: rev_path) w (len + 1))
        (Instance.neighbors inst u)
  in
  if v = dest then [ Path.of_nodes [ dest ] ]
  else begin
    explore [ v ] v 0;
    List.sort Path.compare !acc
  end
