(** Hash-consed path arena.

    Every {!Path.t} can be interned into a global, domain-safe table and
    represented downstream by an integer {!id}.  Interning is canonical
    within a process: structurally equal paths always receive the same id,
    no matter which domain interns them, so id equality {e is} path
    equality and hashing an id is O(1).  The arena is built as a trie of
    hash-consed cons cells — extending an interned path by one node is a
    single table lookup, and materializing an id back into a {!Path.t} is
    O(1) because the node list is stored (and shared with the tails) at
    intern time.

    Ids are never reclaimed; the arena grows monotonically with the set of
    distinct paths ever interned, which for SPP workloads is bounded by the
    permitted paths of the instances in play (the execution engine only
    ever forms permitted extensions of known routes).  See DESIGN.md,
    "Hash-consed path arena". *)

type id = int
(** The compact representation of a path.  [0] is {!Path.epsilon}; ids are
    dense, assigned in intern order, and stable for the process lifetime.
    Equality and ordering of ids are meaningful (identity, not structural
    order); use {!compare_structural} where the structural path order
    matters. *)

val epsilon : id
(** The id of {!Path.epsilon}; always [0]. *)

val is_epsilon : id -> bool

val intern : Path.t -> id
(** Canonical id of a path.  O(length) table lookups, O(1) when the path
    (and its suffixes) are already interned. *)

val of_nodes : Path.node list -> id
(** [intern] composed with {!Path.of_nodes}. *)

val path : id -> Path.t
(** Materialize.  O(1): the node list is stored at intern time and shared
    structurally with the path's suffixes. *)

val to_nodes : id -> Path.node list

val source : id -> Path.node option
val destination : id -> Path.node option
val next_hop : id -> Path.node option
val length : id -> int
(** All O(1); same semantics as the {!Path} accessors. *)

val extend : Path.node -> id -> id
(** [extend v p] interns v·p in one table lookup.  Raises
    [Invalid_argument] on {!epsilon}, like {!Path.extend}. *)

val contains : Path.node -> id -> bool
(** O(1) for node ids below 62 (a bitmask is stored per path); falls back
    to an O(length) walk above that. *)

val suffix : id -> id
(** The path minus its source node ({!epsilon} for one-node paths).
    Raises [Invalid_argument] on {!epsilon}. *)

val equal : id -> id -> bool
val compare : id -> id -> int
val hash : id -> int
(** O(1); [equal] coincides with structural path equality by canonicity.
    [compare] is a total order on ids (intern order), {e not} the
    structural {!Path.compare} order. *)

val compare_structural : id -> id -> int
(** The order of {!Path.compare} on the materialized paths. *)

val size : unit -> int
(** Number of paths interned so far (including {!epsilon}); a measure of
    arena footprint for benchmarks. *)

val pp : names:string array -> Format.formatter -> id -> unit
val to_string : names:string array -> id -> string
