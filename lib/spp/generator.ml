type config = {
  nodes : int;
  extra_edges : int;
  max_paths_per_node : int;
  max_path_len : int;
  seed : int;
}

let default =
  { nodes = 6; extra_edges = 3; max_paths_per_node = 4; max_path_len = 4; seed = 42 }

let simple_paths_to_dest ~adj ~dest ~max_len v =
  let acc = ref [] in
  let rec explore path u len =
    if u = dest then acc := List.rev path :: !acc
    else if len < max_len then
      List.iter
        (fun w -> if not (List.mem w path) then explore (w :: path) w (len + 1))
        adj.(u)
  in
  explore [ v ] v 0;
  !acc

let random_graph rng ~nodes ~extra_edges =
  let adj = Array.make nodes [] in
  let add_edge u v =
    if u <> v && not (List.mem v adj.(u)) then begin
      adj.(u) <- v :: adj.(u);
      adj.(v) <- u :: adj.(v)
    end
  in
  (* Random spanning tree: attach each node to a random earlier node. *)
  for v = 1 to nodes - 1 do
    add_edge v (Random.State.int rng v)
  done;
  let attempts = ref 0 in
  let added = ref 0 in
  while !added < extra_edges && !attempts < extra_edges * 10 do
    incr attempts;
    let u = Random.State.int rng nodes and v = Random.State.int rng nodes in
    if u <> v && not (List.mem v adj.(u)) then begin
      add_edge u v;
      incr added
    end
  done;
  adj

let shuffle rng l =
  let a = Array.of_list l in
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

let take n l =
  let rec loop n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: loop (n - 1) rest
  in
  loop n l

let build ~order_paths cfg =
  if cfg.nodes < 2 then invalid_arg "Generator: need at least 2 nodes";
  let rng = Random.State.make [| cfg.seed |] in
  let dest = 0 in
  let adj = random_graph rng ~nodes:cfg.nodes ~extra_edges:cfg.extra_edges in
  let names =
    Array.init cfg.nodes (fun i -> if i = dest then "d" else Printf.sprintf "v%d" i)
  in
  let edges =
    List.concat
      (List.init cfg.nodes (fun u ->
           List.filter_map (fun v -> if u < v then Some (u, v) else None) adj.(u)))
  in
  let permitted =
    List.init (cfg.nodes - 1) (fun i ->
        let v = i + 1 in
        let all = simple_paths_to_dest ~adj ~dest ~max_len:cfg.max_path_len v in
        let chosen = take cfg.max_paths_per_node (shuffle rng all) in
        (* Guarantee non-emptiness when any path exists. *)
        let chosen = if chosen = [] then take 1 all else chosen in
        (v, order_paths rng chosen))
  in
  Instance.make ~names ~dest ~edges ~permitted

let instance cfg = build ~order_paths:(fun rng paths -> shuffle rng paths) cfg

(* Fully symmetric k-spoke instances around the destination: every spoke
   connects to d and to its clockwise ring neighbor.  With
   [prefer_neighbor] each spoke prefers the route through that neighbor
   over its direct route — the rotational generalization of DISAGREE
   (k = 2) — otherwise the direct route wins and the instance trivially
   converges.  The k rotations are instance automorphisms, so
   [Instance.automorphisms] reports k - 1 non-identity symmetries for the
   symmetry quotient to exploit. *)
let symmetric_ring ?(prefer_neighbor = true) k =
  if k < 2 then invalid_arg "Generator.symmetric_ring: need at least 2 spokes";
  let names =
    Array.init (k + 1) (fun i -> if i = 0 then "d" else Printf.sprintf "v%d" i)
  in
  let next v = (v mod k) + 1 in
  let edges =
    List.concat (List.init k (fun i -> [ (0, i + 1); (i + 1, next (i + 1)) ]))
  in
  let permitted =
    List.init k (fun i ->
        let v = i + 1 in
        let direct = [ v; 0 ] and via = [ v; next v; 0 ] in
        (v, if prefer_neighbor then [ via; direct ] else [ direct; via ]))
  in
  Instance.make ~names ~dest:0 ~edges ~permitted

let safe_instance cfg =
  build cfg ~order_paths:(fun _rng paths ->
      List.sort (fun p q -> compare (List.length p, p) (List.length q, q)) paths)
