(** Routing algebras compiled to SPP instances.

    The paper situates its results in the line of work on algebraic
    routing (Sobrinho's dynamic-routing algebra, Griffin–Sobrinho
    metarouting, refs. [10, 17]): a policy language is an algebra of edge
    labels and path weights, and a concrete network instantiates it.  This
    module provides the compilation: given a labeled graph and an algebra,
    enumerate the supported paths, rank them by weight preference, and
    obtain an ordinary {!Instance.t} that every tool in this repository
    (engine, model checker, realization transforms) accepts.

    Monotone algebras (extension never improves preference) compile to
    dispute-wheel-free instances, hence converge in every communication
    model; the tests check this empirically. *)

type 'w algebra = {
  name : string;
  extend : label:int -> 'w -> 'w option;
      (** weight of [edge ⊗ path]; [None] = path not supported *)
  origin : 'w;  (** weight of the trivial path at the destination *)
  prefer : 'w -> 'w -> int;  (** total preorder; negative = preferred *)
}

type labeled_graph = {
  names : string array;
  dest : Path.node;
  links : (Path.node * Path.node * int * int) list;
      (** (u, v, label of u->v, label of v->u) *)
}

val compile : ?max_len:int -> 'w algebra -> labeled_graph -> Instance.t
(** Permitted paths are the supported simple paths (of at most [max_len]
    hops, default the node count), ranked best-weight-first; equal-weight
    paths are ordered deterministically, so the SPP tie rule holds. *)

(** {1 Stock algebras} *)

val shortest_paths : int algebra
(** Labels are link costs; weights add; smaller is preferred. *)

val widest_paths : int algebra
(** Labels are link capacities; the weight of a path is its bottleneck;
    larger is preferred.  Monotone (hence safe) but not strictly so. *)

val gao_rexford : int algebra
(** Labels encode the relationship of the {e next} node as seen from the
    extender: {!label_customer}, {!label_peer}, {!label_provider}.
    Extension enforces valley-freedom (no-valley, at most one peer link)
    and prefers customer < peer < provider routes, breaking ties by
    length — Sobrinho's algebraic rendering of the Gao–Rexford
    guidelines. *)

val label_customer : int
val label_peer : int
val label_provider : int

(** {1 Convergence preconditions}

    Daggitt–Griffin-style algebraic convergence conditions, decided over
    the supported extension steps of a concrete labeled graph (every
    weight reachable by extending along a supported simple path of at
    most [max_len] hops, compared against its one-step extension).  This
    is the divergence hunter's cheap static filter: a strictly monotone
    compilation cannot contain a dispute wheel — chaining the wheel
    inequality [rank(R_i·Q_{i+1}) <= rank(Q_i)] around the pivots yields
    a strictly increasing cycle of weights — hence converges under every
    communication model, so no explorer budget need be spent on it. *)

type conditions = {
  monotone : bool;  (** no supported extension improves preference *)
  strictly_monotone : bool;
      (** every supported extension strictly worsens preference *)
  steps_checked : int;  (** supported extension steps examined *)
}

val check_conditions : ?max_len:int -> 'w algebra -> labeled_graph -> conditions
(** [max_len] defaults to the node count, matching {!compile}; the verdict
    is sound for the instance compiled with the same [max_len]. *)

val lex :
  name:string -> 'a algebra -> 'b algebra -> ('a * 'b) algebra
(** Lexicographic product: prefer by the first algebra, break ties by the
    second; supported iff both support the path.  Both components read the
    same numeric edge label. *)
