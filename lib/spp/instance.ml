type t = {
  size : int;
  names : string array;
  dest : Path.node;
  adj : Path.node list array;
  ranked : (Path.t * int) list array;
      (* per node, sorted by rank then by path; the destination's entry is
         [([d], 0)] *)
  trivial : Arena.id; (* id of the trivial path [dest] *)
  rank_tbl : (Arena.id, int) Hashtbl.t array;
      (* per node: permitted path id -> rank; read-only after [build] *)
  ext_tbl : (Arena.id, Arena.id * int) Hashtbl.t array;
      (* per node v: route id r -> (id of v·r, rank of v·r) for every
         permitted v·r.  The key determines the value (v·r is one path),
         so lookups answer "is this extension permitted, and how good is
         it" in O(1) on the engine's hottest operation. *)
}

type error =
  | Bad_node of Path.node
  | Not_a_path of Path.node * Path.t
  | Not_simple of Path.node * Path.t
  | Rank_tie of Path.node * Path.t * Path.t
  | Dest_has_paths

let size t = t.size
let names t = t.names
let name t v = t.names.(v)

let find_node t s =
  let rec loop i =
    if i >= t.size then raise Not_found
    else if String.equal t.names.(i) s then i
    else loop (i + 1)
  in
  loop 0
let dest t = t.dest
let nodes t = List.init t.size Fun.id

let neighbors t v =
  if v < 0 || v >= t.size then invalid_arg "Instance.neighbors" else t.adj.(v)

let are_adjacent t u v = List.mem v t.adj.(u)

let edges t =
  List.concat_map
    (fun u -> List.filter_map (fun v -> if u < v then Some (u, v) else None) t.adj.(u))
    (nodes t)

let channels t =
  List.concat_map (fun u -> List.map (fun v -> (u, v)) t.adj.(u)) (nodes t)

let permitted t v = List.map fst t.ranked.(v)

let trivial_id t = t.trivial
let rank_id t v pid = Hashtbl.find_opt t.rank_tbl.(v) pid
let is_permitted_id t v pid = Hashtbl.mem t.rank_tbl.(v) pid

let rank t v p =
  if Array.length t.rank_tbl = 0 then
    (* validation-time fallback: tables not frozen yet *)
    List.find_map (fun (q, r) -> if Path.equal p q then Some r else None) t.ranked.(v)
  else rank_id t v (Arena.intern p)

let is_permitted t v p = rank t v p <> None

let permitted_extension t v rid = Hashtbl.find_opt t.ext_tbl.(v) rid

let all_permitted t =
  List.concat_map (fun v -> List.map (fun (p, r) -> (v, p, r)) t.ranked.(v)) (nodes t)

let pp_path t ppf p = Path.pp ~names:t.names ppf p

let pp_error t ppf = function
  | Bad_node v -> Fmt.pf ppf "node id %d out of range" v
  | Not_a_path (v, p) ->
    Fmt.pf ppf "%a is not a graph path from %s to the destination" (pp_path t) p
      (name t v)
  | Not_simple (v, p) -> Fmt.pf ppf "%a at %s is not simple" (pp_path t) p (name t v)
  | Rank_tie (v, p, q) ->
    Fmt.pf ppf "rank tie at %s between %a and %a with different next hops"
      (name t v) (pp_path t) p (pp_path t) q
  | Dest_has_paths -> Fmt.string ppf "destination given non-trivial permitted paths"

let is_graph_path t v p =
  match Path.to_nodes p with
  | [] -> false
  | first :: _ as ns ->
    let rec hops_ok = function
      | a :: (b :: _ as rest) -> are_adjacent t a b && hops_ok rest
      | [ last ] -> last = t.dest
      | [] -> false
    in
    first = v && hops_ok ns

let validate t =
  let errs = ref [] in
  let add e = errs := e :: !errs in
  let check_node v =
    if v = t.dest then begin
      match t.ranked.(v) with
      | [ (p, _) ] when Path.equal p (Path.of_nodes [ t.dest ]) -> ()
      | _ -> add Dest_has_paths
    end
    else begin
      List.iter
        (fun (p, _) ->
          if not (Path.is_simple p) then add (Not_simple (v, p));
          if not (is_graph_path t v p) then add (Not_a_path (v, p)))
        t.ranked.(v);
      (* Ties in rank are allowed only through the same next hop. *)
      let rec ties = function
        | (p, rp) :: ((q, rq) :: _ as rest) ->
          if rp = rq && Path.next_hop p <> Path.next_hop q then
            add (Rank_tie (v, p, q));
          ties rest
        | [ _ ] | [] -> ()
      in
      ties t.ranked.(v)
    end
  in
  List.iter check_node (nodes t);
  List.rev !errs

let build ~names ~dest ~edges ~ranked_of_node =
  let size = Array.length names in
  let check v = if v < 0 || v >= size then invalid_arg "Instance: node out of range" in
  check dest;
  let adj = Array.make size [] in
  List.iter
    (fun (u, v) ->
      check u;
      check v;
      if u = v then invalid_arg "Instance: self-loop";
      if not (List.mem v adj.(u)) then begin
        adj.(u) <- v :: adj.(u);
        adj.(v) <- u :: adj.(v)
      end)
    edges;
  Array.iteri (fun v ns -> adj.(v) <- List.sort_uniq compare ns) adj;
  let ranked = Array.make size [] in
  List.iter
    (fun (v, paths) ->
      check v;
      ranked.(v) <-
        List.sort (fun (p, r) (q, s) -> if r <> s then compare r s else Path.compare p q) paths)
    ranked_of_node;
  ranked.(dest) <- [ (Path.of_nodes [ dest ], 0) ];
  let t =
    {
      size;
      names;
      dest;
      adj;
      ranked;
      trivial = Arena.of_nodes [ dest ];
      rank_tbl = [||];
      ext_tbl = [||];
    }
  in
  match validate t with
  | [] ->
    (* Freeze the id-level lookup tables.  They are written only here and
       read-only afterwards, so sharing them across domains is safe. *)
    let rank_tbl = Array.init size (fun _ -> Hashtbl.create 16) in
    let ext_tbl = Array.init size (fun _ -> Hashtbl.create 16) in
    Array.iteri
      (fun v paths ->
        List.iter
          (fun (p, r) ->
            let pid = Arena.intern p in
            if not (Hashtbl.mem rank_tbl.(v) pid) then Hashtbl.add rank_tbl.(v) pid r;
            if not (Arena.is_epsilon (Arena.suffix pid)) then begin
              let tail = Arena.suffix pid in
              if not (Hashtbl.mem ext_tbl.(v) tail) then
                Hashtbl.add ext_tbl.(v) tail (pid, r)
            end)
          paths)
      ranked;
    { t with rank_tbl; ext_tbl }
  | e :: _ -> invalid_arg (Fmt.str "Instance: %a" (pp_error t) e)

let make ~names ~dest ~edges ~permitted =
  let ranked_of_node =
    List.map
      (fun (v, paths) -> (v, List.mapi (fun i p -> (Path.of_nodes p, i)) paths))
      permitted
  in
  build ~names ~dest ~edges ~ranked_of_node

let of_ranked ~names ~dest ~edges ~ranked = build ~names ~dest ~edges ~ranked_of_node:ranked

let best t v candidates =
  let consider acc p =
    match rank t v p with
    | None -> acc
    | Some r ->
      (match acc with
      | None -> Some (p, r)
      | Some (q, s) ->
        if r < s then Some (p, r)
        else if r > s then acc
        else begin
          (* Equal rank: the SPP tie rule guarantees the same next hop; break
             deterministically. *)
          match (Path.next_hop p, Path.next_hop q) with
          | Some a, Some b when a <> b -> if a < b then Some (p, r) else acc
          | _ -> if Path.compare p q < 0 then Some (p, r) else acc
        end)
  in
  match List.fold_left consider None candidates with
  | None -> Path.epsilon
  | Some (p, _) -> p

(* Id-level mirror of [best], with the identical tie rule (smaller next
   hop, then structural path order) so engine route choices are unchanged
   by the compact representation. *)
let best_id t v candidates =
  let consider acc pid =
    match rank_id t v pid with
    | None -> acc
    | Some r ->
      (match acc with
      | None -> Some (pid, r)
      | Some (qid, s) ->
        if r < s then Some (pid, r)
        else if r > s then acc
        else begin
          match (Arena.next_hop pid, Arena.next_hop qid) with
          | Some a, Some b when a <> b -> if a < b then Some (pid, r) else acc
          | _ -> if Arena.compare_structural pid qid < 0 then Some (pid, r) else acc
        end)
  in
  match List.fold_left consider None candidates with
  | None -> Arena.epsilon
  | Some (pid, _) -> pid

(* Dest-fixing graph automorphisms that also preserve the ranked
   permitted-path structure: exactly the relabelings under which every
   execution of the routing algorithm maps to a twisted execution, so
   quotienting explored states by them is sound (DESIGN.md, "Symmetry
   quotient").  Brute-force backtracking over node images with degree and
   prefix-adjacency pruning; instances past [max_nodes] report no
   symmetries rather than risk a combinatorial search (the generator's
   symmetric families are all small). *)
let automorphisms ?(max_nodes = 10) t =
  let n = t.size in
  if n > max_nodes then []
  else begin
    let deg = Array.map List.length t.adj in
    let sigma = Array.make n (-1) in
    let used = Array.make n false in
    let results = ref [] in
    let relabel_path sg p = Path.of_nodes (List.map (fun v -> sg.(v)) (Path.to_nodes p)) in
    let sort_ranked =
      List.sort (fun (p, r) (q, s) -> if r <> s then compare r s else Path.compare p q)
    in
    let full_ok sg =
      List.for_all
        (fun v ->
          let image = sort_ranked (List.map (fun (p, r) -> (relabel_path sg p, r)) t.ranked.(v)) in
          List.equal
            (fun (p, r) (q, s) -> r = s && Path.equal p q)
            image t.ranked.(sg.(v)))
        (nodes t)
    in
    let rec go v =
      if v = n then begin
        if Array.exists (fun i -> sigma.(i) <> i) (Array.init n Fun.id) && full_ok sigma
        then results := Array.copy sigma :: !results
      end
      else
        for w = 0 to n - 1 do
          if
            (not used.(w))
            && deg.(v) = deg.(w)
            && List.length t.ranked.(v) = List.length t.ranked.(w)
            && (v = t.dest) = (w = t.dest)
            && List.for_all
                 (fun u -> u >= v || are_adjacent t u v = are_adjacent t sigma.(u) w)
                 (nodes t)
          then begin
            sigma.(v) <- w;
            used.(w) <- true;
            go (v + 1);
            used.(w) <- false;
            sigma.(v) <- -1
          end
        done
    in
    go 0;
    List.rev !results
  end

let pp ppf t =
  Fmt.pf ppf "@[<v>SPP instance (%d nodes, dest %s)@," t.size (name t t.dest);
  List.iter
    (fun v ->
      if v <> t.dest then
        Fmt.pf ppf "  %s: neighbors {%a}; permitted %a@," (name t v)
          Fmt.(list ~sep:(any ", ") string)
          (List.map (name t) t.adj.(v))
          Fmt.(list ~sep:(any " > ") (fun ppf (p, _) -> pp_path t ppf p))
          t.ranked.(v))
    (nodes t);
  Fmt.pf ppf "@]"
