open Engine

type config = { channel_bound : int; max_states : int }

let default_config = { channel_bound = 4; max_states = 200_000 }

let auto_domains () = max 1 (Domain.recommended_domain_count () - 1)

let default_domains () =
  match Sys.getenv_opt "DOMAINS" with
  | None -> 1
  | Some s -> (
    let s = String.trim s in
    if String.lowercase_ascii s = "auto" then auto_domains ()
    else match int_of_string_opt s with Some n when n >= 1 -> n | _ -> 1)

(* The adaptive cutover (see [explore_ws]): parallel workers only engage
   once the sequential warm start has grown the frontier past this
   threshold, so instances that explore in a few hundred states never pay
   any parallel overhead.  On a machine without hardware parallelism extra
   domains can only add minor-GC synchronization barriers, so the spill
   never triggers there at all. *)
let default_spill () =
  if Domain.recommended_domain_count () <= 1 then None else Some 64

type edge = { dst : int; label : Enumerate.labeled }

type graph = {
  states : State.t array;
  adjacency : edge list array;
  pruned : bool;
  truncated : bool;
}

module StateTbl = Hashtbl.Make (struct
  type t = State.t

  let equal = State.equal
  let hash = State.digest
end)

(* For reliable polling models (msg = All, no drops) only the newest message
   in a channel can ever become a known route, so collapsing every queue to
   its last element is an exact bisimulation and shrinks the state space
   dramatically.  The cached occupancy makes the no-op case (every queue
   already holds at most one message) O(1). *)
let collapse_state model st =
  if
    model.Model.rel = Model.Reliable
    && model.Model.msg = Model.M_all
    && State.max_occupancy st > 1
  then begin
    let chans = State.channels st in
    let collapsed =
      Channel.Map.map
        (fun msgs -> match List.rev msgs with [] -> [] | last :: _ -> [ last ])
        chans
    in
    State.with_channels st collapsed
  end
  else st

(* Receiver-relevance projection: a route r in channel (u, v) (or already
   known as rho_v((u,v))) can only ever influence the execution through the
   candidate v·r, so whenever that extension is not permitted at v the value
   of r is observationally equivalent to epsilon.  Projecting such values to
   epsilon merges states with identical future behavior.  Message *counts*
   are preserved (an epsilon message still occupies a queue slot), so the f
   and g bookkeeping is untouched.

   On arena ids, "v·r is permitted" is one hash lookup
   (Instance.permitted_extension), so the projection is O(1) per route.  A
   cheap dirtiness pre-pass keeps the common all-relevant case free of the
   channel-map rebuild (and of the digest refold it would trigger). *)
let project_state inst st =
  let relevant v (r : Spp.Arena.id) =
    (not (Spp.Arena.is_epsilon r))
    && Spp.Instance.permitted_extension inst v r <> None
  in
  let st =
    List.fold_left
      (fun acc ((c : Channel.id), r) ->
        if relevant c.Channel.dst r then acc
        else State.with_rho_id acc c Spp.Arena.epsilon)
      st (State.rho_bindings_id st)
  in
  let chans = State.channels st in
  let dirty =
    Channel.Map.exists
      (fun (c : Channel.id) msgs ->
        List.exists
          (fun r -> (not (Spp.Arena.is_epsilon r)) && not (relevant c.Channel.dst r))
          msgs)
      chans
  in
  if not dirty then st
  else
    State.with_channels st
      (Channel.Map.mapi
         (fun (c : Channel.id) msgs ->
           List.map
             (fun r -> if relevant c.Channel.dst r then r else Spp.Arena.epsilon)
             msgs)
         chans)

let tick metrics f = match metrics with Some m -> f m | None -> ()

(* ------------------------------------------------------------------ *)
(* Checkpointing: the sequential explorer's progress maps one-to-one onto
   {!Engine.Snapshot.t}, with edge labels converted between
   [Enumerate.labeled] and the engine-level mirror record. *)

type checkpoint = { path : string; every : int }

type frontier_spill = { dir : string; chunk : int }

(* Disk-spilled BFS frontier: a FIFO whose middle lives on disk as
   checksummed {!Engine.Snapshot} frontier chunks.  Pops come from [head]
   (refilled from the oldest chunk when dry), pushes go to [tail] (flushed
   to a new chunk when it outgrows the chunk size), so the pop order is
   exactly the plain queue's and the spilled explorer's graph is
   bit-identical to the in-memory one.  Only the two end queues (at most
   ~2 chunks of states) are resident; note the intern table still holds
   every state, so the spill bounds the *frontier's* extra copy, not total
   memory — see EXPERIMENTS.md for the honest scope. *)
module Spool = struct
  type t = {
    dir : string;
    chunk : int;
    inst : Spp.Instance.t;
    head : (int * State.t) Queue.t;
    tail : (int * State.t) Queue.t;
    mutable chunks : string list; (* oldest first *)
    mutable next_chunk : int;
    mutable count : int;
  }

  (* mkdir -p: spill directories are routinely given as fresh nested paths
     (one subdirectory per case under a scratch root). *)
  let rec mkdir_p dir =
    match Unix.mkdir dir 0o755 with
    | () -> ()
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    | exception Unix.Unix_error (Unix.ENOENT, _, _) ->
      let parent = Filename.dirname dir in
      if parent = dir then raise (Unix.Unix_error (Unix.ENOENT, "mkdir", dir))
      else begin
        mkdir_p parent;
        mkdir_p dir
      end

  let create ~dir ~chunk inst =
    if chunk < 1 then invalid_arg "Explore: frontier_spill chunk must be >= 1";
    mkdir_p dir;
    {
      dir;
      chunk;
      inst;
      head = Queue.create ();
      tail = Queue.create ();
      chunks = [];
      next_chunk = 0;
      count = 0;
    }

  let length t = t.count

  let push t item =
    Queue.add item t.tail;
    t.count <- t.count + 1;
    if Queue.length t.tail >= t.chunk then begin
      let path =
        Filename.concat t.dir
          (Printf.sprintf "frontier.%d.%06d.chunk" (Unix.getpid ()) t.next_chunk)
      in
      t.next_chunk <- t.next_chunk + 1;
      Snapshot.save_chunk ~path t.inst
        (List.rev (Queue.fold (fun acc x -> x :: acc) [] t.tail));
      Queue.clear t.tail;
      t.chunks <- t.chunks @ [ path ]
    end

  let pop t =
    if Queue.is_empty t.head then begin
      match t.chunks with
      | path :: rest -> (
        t.chunks <- rest;
        match Snapshot.load_chunk ~path t.inst with
        | Ok items ->
          Sys.remove path;
          List.iter (fun x -> Queue.add x t.head) items
        | Error e ->
          failwith
            ("Explore: corrupt frontier chunk: " ^ Snapshot.error_to_string e))
      | [] -> ()
    end;
    let q = if Queue.is_empty t.head then t.tail else t.head in
    match Queue.take_opt q with
    | Some item ->
      t.count <- t.count - 1;
      Some item
    | None -> None
end

let snap_edge (e : edge) =
  {
    Snapshot.dst = e.dst;
    label =
      {
        Snapshot.entry = e.label.Enumerate.entry;
        l_reads = e.label.Enumerate.reads;
        l_drops = e.label.Enumerate.drops;
        l_cleans = e.label.Enumerate.cleans;
      };
  }

let unsnap_edge (e : Snapshot.edge) =
  {
    dst = e.Snapshot.dst;
    label =
      {
        Enumerate.entry = e.Snapshot.label.Snapshot.entry;
        reads = e.Snapshot.label.Snapshot.l_reads;
        drops = e.Snapshot.label.Snapshot.l_drops;
        cleans = e.Snapshot.label.Snapshot.l_cleans;
      };
  }

(* ------------------------------------------------------------------ *)
(* Sequential exploration.  The [max_states] bound is enforced at intern
   time: the graph never holds more than [max_states] states, every held
   state has an accurate adjacency row, and edges to states beyond the
   bound are dropped with [truncated] set (symmetric with channel-bound
   pruning).

   Counters accumulate in local mutables and merge into [metrics] once at
   the end (like the parallel path), so a checkpoint can record the
   exploration's own exact totals even when the caller threads one metrics
   value through several phases. *)

let explore_seq ~config ~reduction ?metrics ?checkpoint ?frontier ?resume inst
    ~successors ~collapse =
  let max_states = max 1 config.max_states in
  let index = StateTbl.create 1024 in
  let states = ref [] and n_states = ref 0 in
  let adjacency = ref [] in
  let pruned = ref false and truncated = ref false in
  let queue = Queue.create () in
  let spool =
    match frontier with
    | None -> None
    | Some { dir; chunk } -> Some (Spool.create ~dir ~chunk inst)
  in
  let fpush, fpop, flen =
    match spool with
    | None ->
      ( (fun x -> Queue.add x queue),
        (fun () -> Queue.take_opt queue),
        fun () -> Queue.length queue )
    | Some sp -> ((Spool.push sp), (fun () -> Spool.pop sp), fun () -> Spool.length sp)
  in
  let por = reduction = Reduce.Por in
  let sym = reduction = Reduce.Sym in
  let canon = if sym then Reduce.canonicalizer inst else Fun.id in
  let c_interned = ref 0
  and c_dedup = ref 0
  and c_edges = ref 0
  and c_pruned = ref 0
  and c_trunc = ref 0
  and c_peak = ref 0
  and c_ample = ref 0
  and c_canon = ref 0 in
  let intern st =
    match StateTbl.find_opt index st with
    | Some i ->
      incr c_dedup;
      Some (i, false)
    | None ->
      if !n_states >= max_states then begin
        truncated := true;
        incr c_trunc;
        None
      end
      else begin
        let i = !n_states in
        StateTbl.add index st i;
        states := st :: !states;
        incr n_states;
        incr c_interned;
        Some (i, true)
      end
  in
  (match resume with
  | Some (snap : Snapshot.t) ->
    if snap.Snapshot.channel_bound <> config.channel_bound then
      invalid_arg
        (Printf.sprintf "Explore: resume snapshot has channel_bound %d, config wants %d"
           snap.Snapshot.channel_bound config.channel_bound);
    if snap.Snapshot.max_states <> config.max_states then
      invalid_arg
        (Printf.sprintf "Explore: resume snapshot has max_states %d, config wants %d"
           snap.Snapshot.max_states config.max_states);
    (* A reduced graph is not a prefix of an unreduced one (nor of a
       differently-reduced one), so resuming under another reduction
       would silently weld two incompatible explorations together. *)
    if snap.Snapshot.reduction <> Reduce.to_string reduction then
      invalid_arg
        (Printf.sprintf
           "Explore: resume snapshot was written under reduction %s, run requests %s"
           snap.Snapshot.reduction
           (Reduce.to_string reduction));
    Array.iteri
      (fun i st ->
        StateTbl.add index st i;
        states := st :: !states;
        incr n_states)
      snap.Snapshot.states;
    adjacency :=
      List.map (fun (i, es) -> (i, List.map unsnap_edge es)) snap.Snapshot.rows;
    List.iter (fun i -> Queue.add (i, snap.Snapshot.states.(i)) queue) snap.Snapshot.frontier;
    pruned := snap.Snapshot.pruned;
    truncated := snap.Snapshot.truncated;
    c_interned := snap.Snapshot.counters.Snapshot.interned;
    c_dedup := snap.Snapshot.counters.Snapshot.dedup;
    c_edges := snap.Snapshot.counters.Snapshot.edges;
    c_pruned := snap.Snapshot.counters.Snapshot.pruned_writes;
    c_trunc := snap.Snapshot.counters.Snapshot.truncated_interns;
    c_peak := snap.Snapshot.counters.Snapshot.peak_frontier;
    c_ample := snap.Snapshot.counters.Snapshot.ample;
    c_canon := snap.Snapshot.counters.Snapshot.canonicalized
  | None ->
    let init = canon (State.initial inst) in
    (match intern init with Some _ -> () | None -> assert false);
    fpush (0, init));
  let write_checkpoint path =
    Snapshot.save ~path inst
      {
        Snapshot.channel_bound = config.channel_bound;
        max_states = config.max_states;
        reduction = Reduce.to_string reduction;
        states = Array.of_list (List.rev !states);
        rows = List.map (fun (i, es) -> (i, List.map snap_edge es)) !adjacency;
        frontier = List.rev (Queue.fold (fun acc (i, _) -> i :: acc) [] queue);
        pruned = !pruned;
        truncated = !truncated;
        counters =
          {
            Snapshot.interned = !c_interned;
            dedup = !c_dedup;
            edges = !c_edges;
            pruned_writes = !c_pruned;
            truncated_interns = !c_trunc;
            peak_frontier = !c_peak;
            ample = !c_ample;
            canonicalized = !c_canon;
          };
      }
  in
  let since_checkpoint = ref 0 in
  (* Counters live in local refs for the hot path; a checkpoint write is
     the natural moment to publish progress to the shared metrics, so a
     concurrent observer (the query daemon streaming job events) sees
     the interned count advance at checkpoint granularity instead of
     only at the final merge. *)
  let m_flushed = ref 0 in
  let flush_progress () =
    tick metrics (fun m ->
        Metrics.add_interned m (!c_interned - !m_flushed);
        m_flushed := !c_interned)
  in
  let continue = ref true in
  while !continue do
    match fpop () with
    | None -> continue := false
    | Some (i, st) ->
      let pairs =
        List.map
          (fun (labeled : Enumerate.labeled) ->
            (labeled, Step.apply ~check:false inst st labeled.Enumerate.entry))
          (successors st)
      in
      let pairs =
        if por then begin
          let sel, proper = Reduce.ample inst st pairs in
          if proper then incr c_ample;
          sel
        end
        else pairs
      in
      let edges =
        List.filter_map
          (fun ((labeled : Enumerate.labeled), outcome) ->
            let st' = project_state inst (collapse outcome.Step.state) in
            if State.max_occupancy st' > config.channel_bound then begin
              pruned := true;
              incr c_pruned;
              None
            end
            else begin
              let st' =
                if sym then begin
                  let c = canon st' in
                  if not (c == st') && not (State.equal c st') then incr c_canon;
                  c
                end
                else st'
              in
              match intern st' with
              | None -> None
              | Some (j, fresh) ->
                if fresh then fpush (j, st');
                Some { dst = j; label = labeled }
            end)
          pairs
      in
      c_edges := !c_edges + List.length edges;
      c_peak := max !c_peak (flen ());
      adjacency := (i, edges) :: !adjacency;
      (match checkpoint with
      | Some { path; every } ->
        incr since_checkpoint;
        if !since_checkpoint >= every && not (Queue.is_empty queue) then begin
          since_checkpoint := 0;
          write_checkpoint path;
          flush_progress ()
        end
      | None -> ())
  done;
  tick metrics (fun m ->
      Metrics.add_interned m (!c_interned - !m_flushed);
      Metrics.add_dedup m !c_dedup;
      Metrics.add_edges m !c_edges;
      Metrics.add_pruned m !c_pruned;
      Metrics.add_truncated m !c_trunc;
      Metrics.observe_frontier m !c_peak;
      Metrics.add_ample m !c_ample;
      Metrics.add_canonicalized m !c_canon);
  let states_arr = Array.of_list (List.rev !states) in
  let adj = Array.make (Array.length states_arr) [] in
  List.iter (fun (i, es) -> adj.(i) <- es) !adjacency;
  { states = states_arr; adjacency = adj; pruned = !pruned; truncated = !truncated }

(* ------------------------------------------------------------------ *)
(* Parallel exploration, rearchitected around work stealing (PR 4).

   PR 1's pool shared one mutex+condvar frontier: every push took the
   global lock and broadcast the condvar, so workers spent their time in a
   lock convoy (the committed v2 bench shows 2-domain runs at 0.24-0.47x
   sequential).  Here each worker owns a deque: it pushes and pops fresh
   states at the back (uncontended in the common case) and, when dry,
   steals a batch from the front of a victim's deque — the oldest,
   shallowest states, i.e. the largest unexplored subtrees.  Termination
   is an atomic in-flight counter (states pushed anywhere but not yet
   fully expanded): children are counted before their parent is
   discharged, so the counter reaching zero is stable and means global
   exhaustion — no condition variables anywhere.

   Exploration starts sequentially on the calling domain and only spills
   to the persistent {!Engine.Pool} once the frontier outgrows the spill
   threshold, so small state spaces (DISAGREE explores 18 states) never
   wake a single worker.  Counters are buffered per worker and merged into
   [metrics] once at join; the only shared hot-path writes are the intern
   table's striped locks and the two atomics (id counter, in-flight).

   Exploration order beyond the warm start is nondeterministic, hence so
   is the numbering — but the reachable state SET, [pruned]/[truncated],
   and every derived verdict match the sequential explorer (state 0 is
   always the initial state). *)

type shard = { mu : Mutex.t; tbl : int StateTbl.t }

(* A double-ended work queue under its own (rarely contended) lock.  The
   owner uses the back; thieves take batches from the front.  Slots are
   not cleared on pop: every parked state is also interned in the shard
   tables and retained by the result graph, so stale references cost
   nothing extra. *)
module Deque = struct
  type 'a t = {
    mu : Mutex.t;
    mutable buf : 'a array;
    mutable head : int; (* index of the front element *)
    mutable len : int;
  }

  let create () = { mu = Mutex.create (); buf = [||]; head = 0; len = 0 }

  let grow d seed =
    let cap = Array.length d.buf in
    let nbuf = Array.make (max 64 (2 * cap)) seed in
    for i = 0 to d.len - 1 do
      nbuf.(i) <- d.buf.((d.head + i) mod cap)
    done;
    d.buf <- nbuf;
    d.head <- 0

  let push_back d x =
    Mutex.lock d.mu;
    if d.len = Array.length d.buf then grow d x;
    d.buf.((d.head + d.len) mod Array.length d.buf) <- x;
    d.len <- d.len + 1;
    Mutex.unlock d.mu

  let pop_back d =
    Mutex.lock d.mu;
    let r =
      if d.len = 0 then None
      else begin
        d.len <- d.len - 1;
        Some d.buf.((d.head + d.len) mod Array.length d.buf)
      end
    in
    Mutex.unlock d.mu;
    r

  (* Up to half the victim's queue, capped; front first. *)
  let steal_front d ~max_n =
    Mutex.lock d.mu;
    let k = min max_n ((d.len + 1) / 2) in
    let r =
      if k = 0 then []
      else begin
        let cap = Array.length d.buf in
        let items = List.init k (fun i -> d.buf.((d.head + i) mod cap)) in
        d.head <- (d.head + k) mod cap;
        d.len <- d.len - k;
        items
      end
    in
    Mutex.unlock d.mu;
    r
end

(* Domain-local counter buffer; padded past a cache line so adjacent
   workers' buffers never false-share. *)
type wstats = {
  mutable s_interned : int;
  mutable s_dedup : int;
  mutable s_edges : int;
  mutable s_pruned : int;
  mutable s_truncated : int;
  mutable s_peak : int;
  mutable s_ample : int;
  mutable s_canon : int;
  mutable pad0 : int;
  mutable pad1 : int;
}

let fresh_stats () =
  {
    s_interned = 0;
    s_dedup = 0;
    s_edges = 0;
    s_pruned = 0;
    s_truncated = 0;
    s_peak = 0;
    s_ample = 0;
    s_canon = 0;
    pad0 = 0;
    pad1 = 0;
  }

let explore_ws ~config ~reduction ~domains ~spill ?metrics inst ~successors ~collapse =
  let max_states = max 1 config.max_states in
  let por = reduction = Reduce.Por in
  let sym = reduction = Reduce.Sym in
  (* The canonicalizer is built once here and shared read-only by every
     worker: orbit representatives are chosen by arena-id order, which the
     hash-consed arena keeps identical across domains of one process. *)
  let canon = if sym then Reduce.canonicalizer inst else Fun.id in
  let n_shards = 64 in
  let shards =
    Array.init n_shards (fun _ -> { mu = Mutex.create (); tbl = StateTbl.create 256 })
  in
  let counter = Atomic.make 0 in
  (* Claim the next state id unless the bound is exhausted. *)
  let rec claim_id () =
    let n = Atomic.get counter in
    if n >= max_states then None
    else if Atomic.compare_and_set counter n (n + 1) then Some n
    else claim_id ()
  in
  let intern stats st =
    let sh = shards.(State.digest st land (n_shards - 1)) in
    Mutex.lock sh.mu;
    match StateTbl.find_opt sh.tbl st with
    | Some i ->
      Mutex.unlock sh.mu;
      stats.s_dedup <- stats.s_dedup + 1;
      Some (i, false)
    | None -> (
      match claim_id () with
      | None ->
        Mutex.unlock sh.mu;
        stats.s_truncated <- stats.s_truncated + 1;
        None
      | Some i ->
        StateTbl.add sh.tbl st i;
        Mutex.unlock sh.mu;
        stats.s_interned <- stats.s_interned + 1;
        Some (i, true))
  in
  (* Expand one state: [push] receives each fresh successor. *)
  let expand stats ~push (i, st) =
    let pairs =
      List.map
        (fun (labeled : Enumerate.labeled) ->
          (labeled, Step.apply ~check:false inst st labeled.Enumerate.entry))
        (successors st)
    in
    let pairs =
      if por then begin
        let sel, proper = Reduce.ample inst st pairs in
        if proper then stats.s_ample <- stats.s_ample + 1;
        sel
      end
      else pairs
    in
    let edges =
      List.filter_map
        (fun ((labeled : Enumerate.labeled), outcome) ->
          let st' = project_state inst (collapse outcome.Step.state) in
          if State.max_occupancy st' > config.channel_bound then begin
            stats.s_pruned <- stats.s_pruned + 1;
            None
          end
          else begin
            let st' =
              if sym then begin
                let c = canon st' in
                if not (c == st') && not (State.equal c st') then
                  stats.s_canon <- stats.s_canon + 1;
                c
              end
              else st'
            in
            match intern stats st' with
            | None -> None
            | Some (j, fresh) ->
              if fresh then push (j, st');
              Some { dst = j; label = labeled }
          end)
        pairs
    in
    stats.s_edges <- stats.s_edges + List.length edges;
    (i, edges)
  in
  (* Phase 1: sequential warm start on the calling domain.  Frontier depth
     is sampled outside any critical section (there is none here). *)
  let init = canon (State.initial inst) in
  let seq_stats = fresh_stats () in
  (match intern seq_stats init with Some (0, true) -> () | _ -> assert false);
  let queue = Queue.create () in
  Queue.add (0, init) queue;
  let seq_rows = ref [] in
  while (not (Queue.is_empty queue)) && Queue.length queue <= spill do
    let item = Queue.pop queue in
    let row = expand seq_stats ~push:(fun x -> Queue.add x queue) item in
    seq_rows := row :: !seq_rows;
    seq_stats.s_peak <- max seq_stats.s_peak (Queue.length queue)
  done;
  (* Phase 2: the frontier outgrew the threshold — split it round-robin
     over per-worker deques and hand off to the persistent pool. *)
  let k = min (max 2 domains) (Pool.max_workers + 1) in
  let wstats = Array.init k (fun _ -> fresh_stats ()) in
  let rows_of = Array.make k [] in
  if not (Queue.is_empty queue) then begin
    let deques = Array.init k (fun _ -> Deque.create ()) in
    let in_flight = Atomic.make (Queue.length queue) in
    let ix = ref 0 in
    Queue.iter
      (fun item ->
        Deque.push_back deques.(!ix mod k) item;
        incr ix)
      queue;
    (* User-supplied code ([successors]/[collapse]/Step.apply) may raise
       inside any worker.  A raise would skip that item's [in_flight]
       decrement, so termination-by-counter alone would leave every other
       worker spinning forever; instead the first error is recorded here,
       [abort] tells all workers to bail out of their loops, and the error
       is re-raised on the calling domain after the pool joins. *)
    let abort = Atomic.make false in
    let err_mu = Mutex.create () in
    let err = ref None in
    let record_error e bt =
      Mutex.lock err_mu;
      if !err = None then err := Some (e, bt);
      Mutex.unlock err_mu;
      Atomic.set abort true
    in
    let worker wid =
      let my = deques.(wid) in
      let stats = wstats.(wid) in
      let rows = ref [] in
      let process item =
        (* Fresh successors are counted into [in_flight] before the parent
           is discharged, so the counter can only hit zero when no state is
           queued or being expanded anywhere. *)
        match
          let fresh = ref [] and n_fresh = ref 0 in
          let row =
            expand stats item ~push:(fun x ->
                fresh := x :: !fresh;
                incr n_fresh)
          in
          rows := row :: !rows;
          if !n_fresh > 0 then begin
            let f = Atomic.fetch_and_add in_flight !n_fresh + !n_fresh in
            if f > stats.s_peak then stats.s_peak <- f;
            List.iter (Deque.push_back my) !fresh
          end
        with
        | () -> ignore (Atomic.fetch_and_add in_flight (-1))
        | exception e -> record_error e (Printexc.get_raw_backtrace ())
      in
      let try_steal () =
        let rec go off =
          if off >= k then []
          else
            match Deque.steal_front deques.((wid + off) mod k) ~max_n:32 with
            | [] -> go (off + 1)
            | stolen -> stolen
        in
        go 1
      in
      let rec loop idle =
        if Atomic.get abort then ()
        else
          match Deque.pop_back my with
          | Some item ->
            process item;
            loop 0
          | None ->
            if Atomic.get in_flight = 0 then ()
            else begin
              (match try_steal () with
              | first :: rest ->
                List.iter (Deque.push_back my) rest;
                process first;
                loop 0
              | [] ->
                (* Nothing stealable but expansions are still in flight:
                   spin briefly, then yield the core so the expanding worker
                   can run (essential when domains outnumber cores). *)
                if idle < 64 then Domain.cpu_relax () else Unix.sleepf 5e-5;
                loop (min (idle + 1) 1000))
            end
      in
      loop 0;
      rows_of.(wid) <- !rows
    in
    Pool.run (Pool.get ()) ~workers:k worker;
    match !err with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end;
  (* Merge: per-worker buffers into the shared metrics, rows into the
     adjacency, shard tables into the state array. *)
  let sum f = Array.fold_left (fun acc w -> acc + f w) (f seq_stats) wstats in
  let peak = Array.fold_left (fun acc w -> max acc w.s_peak) seq_stats.s_peak wstats in
  tick metrics (fun m ->
      Metrics.add_interned m (sum (fun w -> w.s_interned));
      Metrics.add_dedup m (sum (fun w -> w.s_dedup));
      Metrics.add_edges m (sum (fun w -> w.s_edges));
      Metrics.add_pruned m (sum (fun w -> w.s_pruned));
      Metrics.add_truncated m (sum (fun w -> w.s_truncated));
      Metrics.observe_frontier m peak;
      Metrics.add_ample m (sum (fun w -> w.s_ample));
      Metrics.add_canonicalized m (sum (fun w -> w.s_canon)));
  let n = Atomic.get counter in
  let states_arr = Array.make n init in
  Array.iter (fun sh -> StateTbl.iter (fun st i -> states_arr.(i) <- st) sh.tbl) shards;
  let adj = Array.make n [] in
  List.iter (fun (i, es) -> adj.(i) <- es) !seq_rows;
  Array.iter (List.iter (fun (i, es) -> adj.(i) <- es)) rows_of;
  {
    states = states_arr;
    adjacency = adj;
    pruned = sum (fun w -> w.s_pruned) > 0;
    truncated = sum (fun w -> w.s_truncated) > 0;
  }

let explore_with ?(config = default_config) ?(reduction = Reduce.No_reduction)
    ?domains ?spill ?frontier_spill ?metrics ?checkpoint ?resume inst ~successors
    ~collapse =
  (match checkpoint with
  | Some { every; _ } when every < 1 ->
    invalid_arg "Explore: checkpoint every must be >= 1"
  | _ -> ());
  let deterministic = checkpoint <> None || resume <> None in
  (* Orbit representatives are chosen by arena-id order, which is stable
     within a process but not across one: a sym run resumed in a new
     process would canonicalize differently and re-derive states the
     snapshot already holds.  Refuse rather than corrupt. *)
  if deterministic && reduction = Reduce.Sym then
    invalid_arg
      "Explore: sym reduction cannot be checkpointed or resumed (orbit \
       representatives are process-local)";
  if frontier_spill <> None && deterministic then
    invalid_arg "Explore: frontier_spill is incompatible with checkpoint/resume";
  (* Checkpoint/resume and the disk-spilled frontier are defined only for
     the deterministic sequential order (work-stealing numbering is
     nondeterministic).  An explicit request for parallelism alongside
     them is a contradiction the caller must resolve; an environment-derived
     default is downgraded and recorded in the metrics instead of being
     silently ignored. *)
  let seq_only = deterministic || frontier_spill <> None in
  let seq_reason () =
    if deterministic then "checkpoint/resume" else "frontier_spill"
  in
  let domains =
    if seq_only then begin
      match domains with
      | Some d when d > 1 ->
        invalid_arg
          (Printf.sprintf "Explore: %s requires sequential exploration (got domains = %d)"
             (seq_reason ()) d)
      | Some _ -> 1
      | None ->
        let implied = default_domains () in
        if implied > 1 then
          tick metrics (fun m ->
              Metrics.set_downgrade m
                (Printf.sprintf "%s forced domains = 1 (environment requested %d)"
                   (seq_reason ()) implied));
        1
    end
    else match domains with Some d -> max 1 d | None -> default_domains ()
  in
  tick metrics (fun m -> Metrics.set_domains m domains);
  let spill =
    if domains = 1 then None
    else match spill with Some s -> Some (max 0 s) | None -> default_spill ()
  in
  Metrics.timed ?m:metrics "explore" (fun () ->
      match spill with
      | None ->
        explore_seq ~config ~reduction ?metrics ?checkpoint ?frontier:frontier_spill
          ?resume inst ~successors ~collapse
      | Some spill ->
        explore_ws ~config ~reduction ~domains ~spill ?metrics inst ~successors
          ~collapse)

let explore ?config ?reduction ?domains ?spill ?frontier_spill ?metrics ?checkpoint
    ?resume inst model =
  explore_with ?config ?reduction ?domains ?spill ?frontier_spill ?metrics ?checkpoint
    ?resume inst
    ~successors:(Enumerate.successors inst model)
    ~collapse:(collapse_state model)
