open Engine

type config = { channel_bound : int; max_states : int }

let default_config = { channel_bound = 4; max_states = 200_000 }

let default_domains () =
  match Sys.getenv_opt "DOMAINS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with Some n when n >= 1 -> n | _ -> 1)
  | None -> 1

type edge = { dst : int; label : Enumerate.labeled }

type graph = {
  states : State.t array;
  adjacency : edge list array;
  pruned : bool;
  truncated : bool;
}

module StateTbl = Hashtbl.Make (struct
  type t = State.t

  let equal = State.equal
  let hash = State.digest
end)

(* For reliable polling models (msg = All, no drops) only the newest message
   in a channel can ever become a known route, so collapsing every queue to
   its last element is an exact bisimulation and shrinks the state space
   dramatically. *)
let collapse_state model st =
  if model.Model.rel = Model.Reliable && model.Model.msg = Model.M_all then begin
    let chans = State.channels st in
    let collapsed =
      Channel.Map.map
        (fun msgs -> match List.rev msgs with [] -> [] | last :: _ -> [ last ])
        chans
    in
    State.with_channels st collapsed
  end
  else st

(* Receiver-relevance projection: a route r in channel (u, v) (or already
   known as rho_v((u,v))) can only ever influence the execution through the
   candidate v·r, so whenever that extension is not permitted at v the value
   of r is observationally equivalent to epsilon.  Projecting such values to
   epsilon merges states with identical future behavior.  Message *counts*
   are preserved (an epsilon message still occupies a queue slot), so the f
   and g bookkeeping is untouched.

   On arena ids, "v·r is permitted" is one hash lookup
   (Instance.permitted_extension), so the projection is O(1) per route. *)
let project_state inst st =
  let relevant v (r : Spp.Arena.id) =
    (not (Spp.Arena.is_epsilon r))
    && Spp.Instance.permitted_extension inst v r <> None
  in
  let st =
    List.fold_left
      (fun acc ((c : Channel.id), r) ->
        if relevant c.Channel.dst r then acc
        else State.with_rho_id acc c Spp.Arena.epsilon)
      st (State.rho_bindings_id st)
  in
  let projected_chans =
    Channel.Map.mapi
      (fun (c : Channel.id) msgs ->
        List.map (fun r -> if relevant c.Channel.dst r then r else Spp.Arena.epsilon) msgs)
      (State.channels st)
  in
  State.with_channels st projected_chans

let tick metrics f = match metrics with Some m -> f m | None -> ()

(* ------------------------------------------------------------------ *)
(* Sequential exploration.  The [max_states] bound is enforced at intern
   time: the graph never holds more than [max_states] states, every held
   state has an accurate adjacency row, and edges to states beyond the
   bound are dropped with [truncated] set (symmetric with channel-bound
   pruning). *)

let explore_seq ~config ?metrics inst ~successors ~collapse =
  let max_states = max 1 config.max_states in
  let index = StateTbl.create 1024 in
  let states = ref [] and n_states = ref 0 in
  let adjacency = ref [] in
  let pruned = ref false and truncated = ref false in
  let queue = Queue.create () in
  let intern st =
    match StateTbl.find_opt index st with
    | Some i ->
      tick metrics Metrics.incr_dedup;
      Some (i, false)
    | None ->
      if !n_states >= max_states then begin
        truncated := true;
        tick metrics Metrics.incr_truncated;
        None
      end
      else begin
        let i = !n_states in
        StateTbl.add index st i;
        states := st :: !states;
        incr n_states;
        tick metrics Metrics.incr_interned;
        Some (i, true)
      end
  in
  let init = State.initial inst in
  (match intern init with Some _ -> () | None -> assert false);
  Queue.add (0, init) queue;
  while not (Queue.is_empty queue) do
    let i, st = Queue.pop queue in
    let edges =
      List.filter_map
        (fun (labeled : Enumerate.labeled) ->
          let outcome = Step.apply ~check:false inst st labeled.Enumerate.entry in
          let st' = project_state inst (collapse outcome.Step.state) in
          if Channel.max_occupancy (State.channels st') > config.channel_bound then begin
            pruned := true;
            tick metrics Metrics.incr_pruned;
            None
          end
          else begin
            match intern st' with
            | None -> None
            | Some (j, fresh) ->
              if fresh then Queue.add (j, st') queue;
              Some { dst = j; label = labeled }
          end)
        (successors st)
    in
    tick metrics (fun m ->
        Metrics.add_edges m (List.length edges);
        Metrics.observe_frontier m (Queue.length queue));
    adjacency := (i, edges) :: !adjacency
  done;
  let states_arr = Array.of_list (List.rev !states) in
  let adj = Array.make (Array.length states_arr) [] in
  List.iter (fun (i, es) -> adj.(i) <- es) !adjacency;
  { states = states_arr; adjacency = adj; pruned = !pruned; truncated = !truncated }

(* ------------------------------------------------------------------ *)
(* Parallel exploration: a hand-rolled Domain pool over a shared frontier.
   Workers pop batches of frontier states, expand them fully in parallel
   (Step.apply, projection, collapse are pure), and intern successors in a
   lock-striped table sharded by State.digest.  Global state ids come from
   a bounded CAS counter, so the [max_states] cap is exact.  Exploration
   order is nondeterministic, hence so is the numbering — but the reachable
   state SET, [pruned]/[truncated], and every derived verdict match the
   sequential explorer (state 0 is always the initial state). *)

type shard = { mu : Mutex.t; tbl : int StateTbl.t }

let explore_par ~config ~domains ?metrics inst ~successors ~collapse =
  let max_states = max 1 config.max_states in
  let n_shards = 64 in
  let shards =
    Array.init n_shards (fun _ -> { mu = Mutex.create (); tbl = StateTbl.create 256 })
  in
  let counter = Atomic.make 0 in
  let pruned = Atomic.make false and truncated = Atomic.make false in
  (* Claim the next state id unless the bound is exhausted. *)
  let rec claim_id () =
    let n = Atomic.get counter in
    if n >= max_states then None
    else if Atomic.compare_and_set counter n (n + 1) then Some n
    else claim_id ()
  in
  let intern st =
    let sh = shards.(State.digest st mod n_shards) in
    Mutex.lock sh.mu;
    match StateTbl.find_opt sh.tbl st with
    | Some i ->
      Mutex.unlock sh.mu;
      tick metrics Metrics.incr_dedup;
      Some (i, false)
    | None -> (
      match claim_id () with
      | None ->
        Mutex.unlock sh.mu;
        Atomic.set truncated true;
        tick metrics Metrics.incr_truncated;
        None
      | Some i ->
        StateTbl.add sh.tbl st i;
        Mutex.unlock sh.mu;
        tick metrics Metrics.incr_interned;
        Some (i, true))
  in
  (* Shared frontier with termination detection: [pending] counts popped but
     not yet expanded states; the exploration is over when the queue is
     empty and nothing is pending. *)
  let frontier : (int * State.t) Queue.t = Queue.create () in
  let fmu = Mutex.create () and fcond = Condition.create () in
  let pending = ref 0 and finished = ref false in
  let batch_size = 16 in
  let push_frontier items =
    if items <> [] then begin
      Mutex.lock fmu;
      List.iter (fun x -> Queue.add x frontier) items;
      tick metrics (fun m -> Metrics.observe_frontier m (Queue.length frontier));
      Condition.broadcast fcond;
      Mutex.unlock fmu
    end
  in
  let pop_batch () =
    Mutex.lock fmu;
    let rec wait () =
      if !finished then begin
        Mutex.unlock fmu;
        None
      end
      else if Queue.is_empty frontier then
        if !pending = 0 then begin
          finished := true;
          Condition.broadcast fcond;
          Mutex.unlock fmu;
          None
        end
        else begin
          Condition.wait fcond fmu;
          wait ()
        end
      else begin
        let batch = ref [] and n = ref 0 in
        while (not (Queue.is_empty frontier)) && !n < batch_size do
          batch := Queue.pop frontier :: !batch;
          incr n
        done;
        pending := !pending + !n;
        Mutex.unlock fmu;
        Some !batch
      end
    in
    wait ()
  in
  let done_batch k =
    Mutex.lock fmu;
    pending := !pending - k;
    if !pending = 0 && Queue.is_empty frontier then begin
      finished := true;
      Condition.broadcast fcond
    end;
    Mutex.unlock fmu
  in
  let abort () =
    Mutex.lock fmu;
    finished := true;
    Condition.broadcast fcond;
    Mutex.unlock fmu
  in
  let expand (i, st) =
    let fresh = ref [] in
    let edges =
      List.filter_map
        (fun (labeled : Enumerate.labeled) ->
          let outcome = Step.apply ~check:false inst st labeled.Enumerate.entry in
          let st' = project_state inst (collapse outcome.Step.state) in
          if Channel.max_occupancy (State.channels st') > config.channel_bound then begin
            Atomic.set pruned true;
            tick metrics Metrics.incr_pruned;
            None
          end
          else begin
            match intern st' with
            | None -> None
            | Some (j, is_fresh) ->
              if is_fresh then fresh := (j, st') :: !fresh;
              Some { dst = j; label = labeled }
          end)
        (successors st)
    in
    tick metrics (fun m -> Metrics.add_edges m (List.length edges));
    push_frontier !fresh;
    (i, edges)
  in
  let worker () =
    let rec go acc =
      match pop_batch () with
      | None -> acc
      | Some batch ->
        let acc = List.fold_left (fun acc item -> expand item :: acc) acc batch in
        done_batch (List.length batch);
        go acc
    in
    try go [] with e -> abort (); raise e
  in
  let init = State.initial inst in
  (match intern init with Some (0, true) -> () | _ -> assert false);
  push_frontier [ (0, init) ];
  let handles = List.init domains (fun _ -> Domain.spawn worker) in
  let rows = List.concat_map Domain.join handles in
  let n = Atomic.get counter in
  let states_arr = Array.make n init in
  Array.iter (fun sh -> StateTbl.iter (fun st i -> states_arr.(i) <- st) sh.tbl) shards;
  let adj = Array.make n [] in
  List.iter (fun (i, es) -> adj.(i) <- es) rows;
  {
    states = states_arr;
    adjacency = adj;
    pruned = Atomic.get pruned;
    truncated = Atomic.get truncated;
  }

let explore_with ?(config = default_config) ?domains ?metrics inst ~successors
    ~collapse =
  let domains = match domains with Some d -> max 1 d | None -> default_domains () in
  tick metrics (fun m -> Metrics.set_domains m domains);
  Metrics.timed ?m:metrics "explore" (fun () ->
      if domains = 1 then explore_seq ~config ?metrics inst ~successors ~collapse
      else explore_par ~config ~domains ?metrics inst ~successors ~collapse)

let explore ?config ?domains ?metrics inst model =
  explore_with ?config ?domains ?metrics inst
    ~successors:(Enumerate.successors inst model)
    ~collapse:(collapse_state model)
