open Engine
open Spp

type labeled = {
  entry : Activation.t;
  reads : Channel.id list;
  drops : Channel.id list;
  cleans : Channel.id list;
}

(* Canonical read options for one channel holding [m] messages: a list of
   (read, has_drop, has_clean) triples.

   For reliable channels there is exactly one effect per effective count i:
   process i messages, keep the last.  For unreliable channels the effect of
   any drop set on i processed messages is determined by the largest kept
   index j (or none): the canonical representative drops exactly
   {j+1, ..., i}. *)
let read_options (model : Model.t) c ~m =
  let mk ?(drops = []) count =
    let has_drop = drops <> [] in
    let processed = match count with Activation.All -> m | Activation.Finite f -> min f m in
    let kept_any = processed > List.length drops in
    (Activation.read ~drops ~count c, has_drop, processed > 0 && kept_any)
  in
  let with_drop_variants count i =
    (* i = effective number of processed messages for this count *)
    if model.Model.rel = Model.Reliable || i = 0 then [ mk count ]
    else
      mk count
      :: List.init i (fun j ->
             (* keep messages 1..j, drop j+1..i (j = 0 drops everything) *)
             let drops = List.init (i - j) (fun k -> j + k + 1) in
             mk ~drops count)
  in
  match model.Model.msg with
  | Model.M_one -> with_drop_variants (Activation.Finite 1) (min 1 m)
  | Model.M_all -> with_drop_variants Activation.All m
  | Model.M_forced ->
    if m = 0 then [ mk (Activation.Finite 1) ]
    else
      List.concat_map
        (fun i -> with_drop_variants (Activation.Finite i) i)
        (List.init m (fun i -> i + 1))
  | Model.M_some ->
    mk (Activation.Finite 0)
    :: List.concat_map
         (fun i -> with_drop_variants (Activation.Finite i) i)
         (List.init m (fun i -> i + 1))

let label v (choices : (Activation.read * bool * bool) list) =
  (* Single right-to-left pass: this runs once per candidate edge of every
     explored state, so avoid traversing [choices] four times. *)
  let rs, reads, drops, cleans =
    List.fold_left
      (fun (rs, reads, drops, cleans) ((r : Activation.read), d, k) ->
        ( r :: rs,
          r.Activation.chan :: reads,
          (if d then r.Activation.chan :: drops else drops),
          if k then r.Activation.chan :: cleans else cleans ))
      ([], [], [], [])
      (List.rev choices)
  in
  { entry = Activation.single v rs; reads; drops; cleans }

(* Cartesian product of per-channel option lists. *)
let rec product = function
  | [] -> [ [] ]
  | opts :: rest ->
    let tails = product rest in
    List.concat_map (fun o -> List.map (fun t -> o :: t) tails) opts

(* The model-driven entry enumeration, parametric in where nodes, required
   channel sets and queue lengths come from: the SPP explorer instantiates
   it from an [Spp.Instance.t] and [Engine.State.t] (below); the generic
   explorer ([Gexplore.Make]) from a protocol's [in_channels] and its own
   state type.  The entry order is part of the exploration's observable
   behavior (state numbering, checkpoint compatibility), so this extraction
   preserves it exactly. *)
let successors_core ~nodes ~required ~length ~(model_of : int -> Model.t) =
  List.concat_map
    (fun v ->
      let model = model_of v in
      let options_for c = read_options model c ~m:(length c) in
      let required = required v in
      if required = [] then
        (* The destination: activating it reads nothing.  Only one entry. *)
        [ label v [] ]
      else
        match model.Model.nbr with
        | Model.N_one ->
          List.concat_map (fun c -> List.map (fun o -> label v [ o ]) (options_for c)) required
        | Model.N_every ->
          List.map (label v) (product (List.map options_for required))
        | Model.N_multi ->
          (* Per channel: absent or one of its options.  The all-absent
             combination is kept: it is a legal no-op activation. *)
          let per_channel =
            List.map (fun c -> None :: List.map Option.some (options_for c)) required
          in
          List.map (fun combo -> label v (List.filter_map Fun.id combo)) (product per_channel))
    nodes

let successors_with inst (model_of : Spp.Path.node -> Model.t) state =
  let chans = Engine.State.channels state in
  successors_core ~nodes:(Instance.nodes inst)
    ~required:(Model.required_channels inst)
    ~length:(Channel.length chans) ~model_of

let successors inst (model : Model.t) state = successors_with inst (fun _ -> model) state
