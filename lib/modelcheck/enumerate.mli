(** Enumeration of the activation entries a model allows at a given network
    state, up to observational equivalence.

    Two entries are observationally equivalent when they consume the same
    messages, leave the same known route, and differ only in drop patterns
    with identical effect; one canonical representative per class keeps the
    state space small without losing behaviors (DESIGN.md). *)

type labeled = {
  entry : Engine.Activation.t;
  reads : Engine.Channel.id list;  (** channels tried (fairness bookkeeping) *)
  drops : Engine.Channel.id list;  (** channels with >= 1 dropped message *)
  cleans : Engine.Channel.id list;
      (** channels with >= 1 processed, non-dropped message *)
}

val successors : Spp.Instance.t -> Engine.Model.t -> Engine.State.t -> labeled list
(** All canonical entries of the model at this state (for every choice of
    active node). *)

val successors_with :
  Spp.Instance.t ->
  (Spp.Path.node -> Engine.Model.t) ->
  Engine.State.t ->
  labeled list
(** Heterogeneous variant: each node activates under its own model. *)

val successors_core :
  nodes:int list ->
  required:(int -> Engine.Channel.id list) ->
  length:(Engine.Channel.id -> int) ->
  model_of:(int -> Engine.Model.t) ->
  labeled list
(** The enumeration itself, parametric in where the node list, per-node
    required channel sets and queue lengths come from — used by the
    protocol-generic explorer ([Gexplore.Make]).  Entry order is exactly
    that of {!successors_with} for the corresponding inputs. *)
