open Engine
open Spp

type witness = { prefix : Activation.t list; cycle : Activation.t list }

type verdict = Oscillates of witness | Converges | Unknown of string

let verdict_name = function
  | Oscillates _ -> "oscillates"
  | Converges -> "converges"
  | Unknown _ -> "unknown"

let pp_verdict ppf = function
  | Oscillates w ->
    Fmt.pf ppf "oscillates (witness: %d-step prefix, %d-step fair cycle)"
      (List.length w.prefix) (List.length w.cycle)
  | Converges -> Fmt.string ppf "converges under every fair schedule"
  | Unknown reason -> Fmt.pf ppf "unknown (%s)" reason

let tracked_channels inst =
  List.filter_map
    (fun (src, dst) ->
      if dst = Instance.dest inst then None else Some (Channel.id ~src ~dst))
    (Instance.channels inst)

(* Path assignments differ between two states?  O(1) per node on ids. *)
let pi_differs inst a b =
  List.exists
    (fun v -> not (Spp.Arena.equal (State.pi_id a v) (State.pi_id b v)))
    (Instance.nodes inst)

(* BFS path in a restricted edge set; returns the entries along a path from
   [src] to [dst] ([] if src = dst). *)
let bfs_path adj ~src ~dst =
  let n = Array.length adj in
  let prev = Array.make n None in
  let seen = Array.make n false in
  let q = Queue.create () in
  seen.(src) <- true;
  Queue.add src q;
  let found = ref (src = dst) in
  while (not !found) && not (Queue.is_empty q) do
    let v = Queue.pop q in
    List.iter
      (fun ((w, entry) : int * Activation.t) ->
        if not seen.(w) then begin
          seen.(w) <- true;
          prev.(w) <- Some (v, entry);
          if w = dst then found := true;
          Queue.add w q
        end)
      adj.(v)
  done;
  if not seen.(dst) then None
  else begin
    let rec build acc v =
      match prev.(v) with
      | None -> acc
      | Some (u, entry) -> build (entry :: acc) u
    in
    Some (build [] dst)
  end

(* Check one strongly connected edge set; on success build the witness
   cycle: a closed walk from [start] covering every edge. *)
let evaluate inst graph ~tracked nodes edges =
  let module CS = Set.Make (struct
    type t = Channel.id

    let compare = Channel.compare_id
  end) in
  let union f =
    List.fold_left
      (fun acc (_, (e : Explore.edge)) ->
        List.fold_left (fun acc c -> CS.add c acc) acc (f e.Explore.label))
      CS.empty edges
  in
  let reads = union (fun l -> l.Enumerate.reads) in
  let all_read = List.for_all (fun c -> CS.mem c reads) tracked in
  let pi_changes =
    match nodes with
    | [] -> false
    | first :: rest ->
      List.exists
        (fun other ->
          pi_differs inst graph.Explore.states.(first) graph.Explore.states.(other))
        rest
  in
  if not (all_read && pi_changes) then None
  else begin
    (* Build a SMALL closed walk from a start node that (a) passes through
       two states with different path assignments, (b) reads every tracked
       channel, and (c) cleans every channel it drops on.  The walk is
       assembled from loops anchored at the start node; each loop visits one
       required edge. *)
    let n = Array.length graph.Explore.states in
    let adj = Array.make n [] in
    List.iter
      (fun (src, (e : Explore.edge)) -> adj.(src) <- (e.Explore.dst, e) :: adj.(src))
      edges;
    let entry_of (e : Explore.edge) = e.Explore.label.Enumerate.entry in
    let path_entries path = List.map (fun (e : Explore.edge) -> entry_of e) path in
    (* BFS returning the edges along a path. *)
    let bfs ~src ~dst =
      let prev = Array.make n None in
      let seen = Array.make n false in
      let q = Queue.create () in
      seen.(src) <- true;
      Queue.add src q;
      while (not seen.(dst)) && not (Queue.is_empty q) do
        let v = Queue.pop q in
        List.iter
          (fun ((w, e) : int * Explore.edge) ->
            if not seen.(w) then begin
              seen.(w) <- true;
              prev.(w) <- Some (v, e);
              Queue.add w q
            end)
          adj.(v)
      done;
      if not seen.(dst) then None
      else begin
        let rec build acc v =
          match prev.(v) with None -> acc | Some (u, e) -> build (e :: acc) u
        in
        Some (build [] dst)
      end
    in
    let start = List.hd nodes in
    (* A loop from start visiting a given edge. *)
    let loop_via (src, (e : Explore.edge)) =
      match (bfs ~src:start ~dst:src, bfs ~src:e.Explore.dst ~dst:start) with
      | Some p1, Some p2 -> Some (p1 @ [ e ] @ p2)
      | _ -> None
    in
    let module CS = Set.Make (struct
      type t = Channel.id

      let compare = Channel.compare_id
    end) in
    let walk = ref [] in
    let ok = ref true in
    let append_loop edge =
      match loop_via edge with
      | Some l -> walk := !walk @ l
      | None -> ok := false
    in
    (* (a) a pi-changing loop *)
    (match
       List.find_opt
         (fun other -> pi_differs inst graph.Explore.states.(start) graph.Explore.states.(other))
         nodes
     with
    | Some s2 ->
      (match (bfs ~src:start ~dst:s2, bfs ~src:s2 ~dst:start) with
      | Some p1, Some p2 -> walk := p1 @ p2
      | _ -> ok := false)
    | None -> ok := false);
    (* (b) cover every tracked channel *)
    let covered () =
      List.fold_left
        (fun acc (e : Explore.edge) ->
          List.fold_left (fun acc c -> CS.add c acc) acc e.Explore.label.Enumerate.reads)
        CS.empty !walk
    in
    List.iter
      (fun c ->
        if !ok && not (CS.mem c (covered ())) then begin
          let reader =
            List.find_opt
              (fun (_, (e : Explore.edge)) ->
                List.exists (Channel.equal_id c) e.Explore.label.Enumerate.reads)
              edges
          in
          match reader with Some edge -> append_loop edge | None -> ok := false
        end)
      tracked;
    (* (c) clean every dropped channel; appended loops may add drops, so
       iterate (bounded by the number of channels). *)
    let rec fix_drops budget =
      if !ok && budget > 0 then begin
        let drops, cleans =
          List.fold_left
            (fun (d, k) (e : Explore.edge) ->
              ( List.fold_left (fun d c -> CS.add c d) d e.Explore.label.Enumerate.drops,
                List.fold_left (fun k c -> CS.add c k) k e.Explore.label.Enumerate.cleans ))
            (CS.empty, CS.empty) !walk
        in
        let missing = CS.diff drops cleans in
        if not (CS.is_empty missing) then begin
          CS.iter
            (fun c ->
              let cleaner =
                List.find_opt
                  (fun (_, (e : Explore.edge)) ->
                    List.exists (Channel.equal_id c) e.Explore.label.Enumerate.cleans)
                  edges
              in
              match cleaner with Some edge -> append_loop edge | None -> ok := false)
            missing;
          fix_drops (budget - 1)
        end
      end
    in
    fix_drops (List.length tracked + 1);
    (* Safety: the walk must be self-consistent before it is returned. *)
    let final_drops, final_cleans, final_reads =
      List.fold_left
        (fun (d, k, r) (e : Explore.edge) ->
          ( List.fold_left (fun d c -> CS.add c d) d e.Explore.label.Enumerate.drops,
            List.fold_left (fun k c -> CS.add c k) k e.Explore.label.Enumerate.cleans,
            List.fold_left (fun r c -> CS.add c r) r e.Explore.label.Enumerate.reads ))
        (CS.empty, CS.empty, CS.empty) !walk
    in
    if
      !ok
      && CS.subset final_drops final_cleans
      && List.for_all (fun c -> CS.mem c final_reads) tracked
    then Some (start, path_entries !walk)
    else None
  end

(* Fixpoint: drop edges whose drops are not covered by clean reads in the
   current edge set, then re-split into SCCs and recurse. *)
let rec search inst graph ~tracked edges =
  let module CS = Set.Make (struct
    type t = Channel.id

    let compare = Channel.compare_id
  end) in
  let cleans =
    List.fold_left
      (fun acc (_, (e : Explore.edge)) ->
        List.fold_left (fun acc c -> CS.add c acc) acc e.Explore.label.Enumerate.cleans)
      CS.empty edges
  in
  let keep (_, (e : Explore.edge)) =
    List.for_all (fun c -> CS.mem c cleans) e.Explore.label.Enumerate.drops
  in
  let kept = List.filter keep edges in
  if List.length kept = List.length edges then
    (* Stable: re-check strong connectivity then evaluate. *)
    split_sccs inst graph ~tracked kept ~recurse:false
  else split_sccs inst graph ~tracked kept ~recurse:true

and split_sccs inst graph ~tracked edges ~recurse =
  (* Restrict to the nodes touched by [edges], split into SCCs, and process
     each SCC's internal edges. *)
  if edges = [] then None
  else begin
    let n = Array.length graph.Explore.states in
    let adj = Array.make n [] in
    List.iter (fun (src, (e : Explore.edge)) -> adj.(src) <- e.Explore.dst :: adj.(src)) edges;
    let comp, _ = Scc.tarjan n (fun i -> adj.(i)) in
    (* Group internal edges by component. *)
    let by_comp = Hashtbl.create 17 in
    List.iter
      (fun ((src, (e : Explore.edge)) as edge) ->
        if comp.(src) = comp.(e.Explore.dst) then begin
          let k = comp.(src) in
          Hashtbl.replace by_comp k
            (edge :: Option.value ~default:[] (Hashtbl.find_opt by_comp k))
        end)
      edges;
    Hashtbl.fold
      (fun _ comp_edges acc ->
        match acc with
        | Some _ -> acc
        | None ->
          let nodes =
            List.sort_uniq compare
              (List.concat_map
                 (fun (src, (e : Explore.edge)) -> [ src; e.Explore.dst ])
                 comp_edges)
          in
          if recurse then search inst graph ~tracked comp_edges
          else
            (* The edge set is drop-stable; evaluate, and if evaluation
               fails there is nothing smaller to try for this component. *)
            evaluate inst graph ~tracked nodes comp_edges)
      by_comp None
  end

let analyze_graph inst graph =
  let tracked = tracked_channels inst in
  let all_edges =
    List.concat
      (List.init (Array.length graph.Explore.adjacency) (fun i ->
           List.map (fun e -> (i, e)) graph.Explore.adjacency.(i)))
  in
  match split_sccs inst graph ~tracked all_edges ~recurse:true with
  | Some (start, cycle) ->
    let n = Array.length graph.Explore.states in
    let full_adj = Array.make n [] in
    Array.iteri
      (fun i es ->
        full_adj.(i) <-
          List.map
            (fun (e : Explore.edge) -> (e.Explore.dst, e.Explore.label.Enumerate.entry))
            es)
      graph.Explore.adjacency;
    (match bfs_path full_adj ~src:0 ~dst:start with
    | Some prefix -> Oscillates { prefix; cycle }
    | None -> Unknown "cycle start unreachable (internal error)")
  | None ->
    if graph.Explore.pruned then Unknown "channel bound pruned some writes"
    else if graph.Explore.truncated then Unknown "state limit reached"
    else Converges

(* State-accurate fairness of a repeating cycle: every tracked channel is
   read, and every channel on which a message is actually dropped also has a
   read that actually keeps a message.  (The static
   {!Engine.Fairness.cycle_is_fair} is conservative: it cannot tell that an
   All-read dropping only its second message still delivers its first.) *)
let cycle_fair_from inst state cycle =
  let module CS = Set.Make (struct
    type t = Channel.id

    let compare = Channel.compare_id
  end) in
  let _, reads, drops, cleans =
    List.fold_left
      (fun (st, reads, drops, cleans) entry ->
        let o = Step.apply inst st entry in
        let reads =
          List.fold_left
            (fun acc (r : Activation.read) -> CS.add r.Activation.chan acc)
            reads entry.Activation.reads
        in
        let dropped_of c =
          match List.assoc_opt c o.Step.dropped with Some n -> n | None -> 0
        in
        let drops =
          List.fold_left (fun acc (c, _) -> CS.add c acc) drops o.Step.dropped
        in
        let cleans =
          List.fold_left
            (fun acc (c, i) -> if i > dropped_of c then CS.add c acc else acc)
            cleans o.Step.processed
        in
        (o.Step.state, reads, drops, cleans))
      (state, CS.empty, CS.empty, CS.empty)
      cycle
  in
  List.for_all (fun c -> CS.mem c reads) (tracked_channels inst)
  && CS.subset drops cleans

let analyze ?config ?reduction ?domains ?metrics inst model =
  let graph = Explore.explore ?config ?reduction ?domains ?metrics inst model in
  Metrics.timed ?m:metrics "analyze" (fun () -> analyze_graph inst graph)

let analyze_hetero ?config ?reduction ?domains ?metrics inst hetero =
  (* The symmetry quotient requires one model everywhere: an automorphism
     of the instance need not map a node to one running the same model, so
     relabeled executions are not executions of the heterogeneous system. *)
  (match reduction with
  | Some Reduce.Sym ->
    invalid_arg "Oscillation.analyze_hetero: sym reduction requires a homogeneous model"
  | _ -> ());
  let models = List.map (Hetero.model_of hetero) (Instance.nodes inst) in
  let collapsible =
    List.for_all
      (fun (m : Model.t) -> m.Model.rel = Model.Reliable && m.Model.msg = Model.M_all)
      models
  in
  let graph =
    Explore.explore_with ?config ?reduction ?domains ?metrics inst
      ~successors:(Enumerate.successors_with inst (Hetero.model_of hetero))
      ~collapse:(fun st ->
        if collapsible then
          Explore.collapse_state (Model.make Model.Reliable Model.N_every Model.M_all) st
        else st)
  in
  Metrics.timed ?m:metrics "analyze" (fun () -> analyze_graph inst graph)

let verify_witness_generic ?max_steps ~valid inst w =
  let max_steps =
    match max_steps with
    | Some n -> n
    | None -> max 5000 (List.length w.prefix + (4 * List.length w.cycle) + 10)
  in
  let after_prefix =
    List.fold_left
      (fun st e -> (Step.apply inst st e).Step.state)
      (State.initial inst) w.prefix
  in
  let sched = Engine.Scheduler.prefixed w.prefix w.cycle in
  let run = Engine.Executor.run ~max_steps inst sched in
  List.for_all valid (w.prefix @ w.cycle)
  && cycle_fair_from inst after_prefix w.cycle
  &&
  match run.Engine.Executor.stop with
  | Engine.Executor.Cycle _ -> true
  | Engine.Executor.Quiescent | Engine.Executor.Exhausted -> false

let verify_witness ?max_steps inst model w =
  verify_witness_generic ?max_steps ~valid:(Model.validates inst model) inst w

let verify_witness_hetero ?max_steps inst hetero w =
  verify_witness_generic ?max_steps ~valid:(Hetero.validates inst hetero) inst w

let sweep ?config ?reduction ?domains ?metrics inst models =
  List.map (fun m -> (m, analyze ?config ?reduction ?domains ?metrics inst m)) models
