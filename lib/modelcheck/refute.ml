open Engine
open Spp

type result =
  | Realizable of Activation.t list
  | Impossible
  | Unknown of string

let pp_result ppf = function
  | Realizable entries -> Fmt.pf ppf "realizable (%d-step schedule)" (List.length entries)
  | Impossible -> Fmt.string ppf "impossible (exhaustive)"
  | Unknown reason -> Fmt.pf ppf "unknown (%s)" reason

module Key = struct
  type t = State.t * int

  let equal (s, i) (s', i') = i = i' && State.equal s s'
  let hash (s, i) = (State.hash s * 31) + i
end

module Tbl = Hashtbl.Make (Key)

module StateTbl = Hashtbl.Make (struct
  type t = State.t

  let equal = State.equal
  let hash = State.hash
end)

type termination = Prefix | Forever

let tracked_channels inst =
  List.filter_map
    (fun (src, dst) ->
      if dst = Instance.dest inst then None else Some (Channel.id ~src ~dst))
    (Instance.channels inst)

(* Is there a fair infinite continuation from [start] along which the path
   assignment never changes?  Explore the subgraph of states sharing the
   assignment and look for a strongly connected edge set that reads every
   tracked channel and cleans every channel it drops on (as in
   {!Oscillation}, but with constant instead of changing assignments). *)
let fair_constant_continuation config inst model start =
  let assignment = State.assignment inst start in
  let module CS = Set.Make (struct
    type t = Channel.id

    let compare = Channel.compare_id
  end) in
  let index = StateTbl.create 64 in
  let states = ref [] and n_states = ref 0 in
  let intern st =
    match StateTbl.find_opt index st with
    | Some i -> (i, false)
    | None ->
      let i = !n_states in
      StateTbl.add index st i;
      states := st :: !states;
      incr n_states;
      (i, true)
  in
  let edges = ref [] in
  let queue = Queue.create () in
  let i0, _ = intern start in
  Queue.add (i0, start) queue;
  let quiescent_found = ref (State.is_quiescent inst start) in
  while (not !quiescent_found) && not (Queue.is_empty queue) do
    let i, st = Queue.pop queue in
    List.iter
      (fun (l : Enumerate.labeled) ->
        let outcome = Step.apply ~check:false inst st l.Enumerate.entry in
        let st' = outcome.Step.state in
        if
          State.max_occupancy st' <= config.Explore.channel_bound
          && Assignment.equal (State.assignment inst st') assignment
        then begin
          let j, fresh = intern st' in
          if fresh then begin
            (* A reachable quiescent state settles the question: polling it
               forever is a fair, assignment-preserving continuation. *)
            if State.is_quiescent inst st' then quiescent_found := true;
            Queue.add (j, st') queue
          end;
          edges := (i, j, l) :: !edges
        end)
      (Enumerate.successors inst model st)
  done;
  if !quiescent_found then true
  else begin
  let tracked = tracked_channels inst in
  (* Fixpoint: drop edges with uncovered drops, split into SCCs, test. *)
  let rec satisfiable edges =
    if edges = [] then false
    else begin
      let cleans =
        List.fold_left
          (fun acc (_, _, (l : Enumerate.labeled)) ->
            List.fold_left (fun acc c -> CS.add c acc) acc l.Enumerate.cleans)
          CS.empty edges
      in
      let kept =
        List.filter
          (fun (_, _, (l : Enumerate.labeled)) ->
            List.for_all (fun c -> CS.mem c cleans) l.Enumerate.drops)
          edges
      in
      let stable = List.length kept = List.length edges in
      let n = !n_states in
      let adj = Array.make n [] in
      List.iter (fun (i, j, _) -> adj.(i) <- j :: adj.(i)) kept;
      let comp, _ = Scc.tarjan n (fun i -> adj.(i)) in
      let internal = List.filter (fun (i, j, _) -> comp.(i) = comp.(j)) kept in
      let by_comp = Hashtbl.create 7 in
      List.iter
        (fun ((i, _, _) as e) ->
          Hashtbl.replace by_comp comp.(i)
            (e :: Option.value ~default:[] (Hashtbl.find_opt by_comp comp.(i))))
        internal;
      Hashtbl.fold
        (fun _ comp_edges found ->
          found
          ||
          if stable && List.length comp_edges = List.length edges then begin
            (* Single stable component: evaluate the fairness conditions. *)
            let reads =
              List.fold_left
                (fun acc (_, _, (l : Enumerate.labeled)) ->
                  List.fold_left (fun acc c -> CS.add c acc) acc l.Enumerate.reads)
                CS.empty comp_edges
            in
            List.for_all (fun c -> CS.mem c reads) tracked
          end
          else satisfiable comp_edges)
        by_comp false
    end
  in
  satisfiable !edges
  end

let realizable ?(config = Explore.default_config) ?(termination = Prefix) inst model level
    ~target =
  let target = Array.of_list target in
  let n = Array.length target in
  if n = 0 then invalid_arg "Refute.realizable: empty target";
  let assignment_of st = State.assignment inst st in
  let init = State.initial inst in
  if not (Assignment.equal (assignment_of init) target.(0)) then
    invalid_arg "Refute.realizable: target must start with the initial assignment";
  let seen = Tbl.create 1024 in
  let parent : (Key.t * Activation.t) Tbl.t = Tbl.create 1024 in
  (* Bucket queue keyed by target progress: exploring states that have
     matched more of the target first finds realizations quickly, while
     refutations still require the whole space and are unaffected. *)
  let buckets = Array.init n (fun _ -> Queue.create ()) in
  let queue_size = ref 0 in
  let pruned = ref false and truncated = ref false in
  let push ((_, i) as key : Key.t) par =
    if not (Tbl.mem seen key) then begin
      Tbl.replace seen key ();
      (match par with Some p -> Tbl.replace parent key p | None -> ());
      Queue.add key buckets.(i);
      incr queue_size
    end
  in
  let pop () =
    let rec find i =
      if i < 0 then None
      else if Queue.is_empty buckets.(i) then find (i - 1)
      else begin
        decr queue_size;
        Some (Queue.pop buckets.(i))
      end
    in
    find (n - 1)
  in
  let accept = ref None in
  let continuation_memo = StateTbl.create 16 in
  let accepts ((st, _) as key : Key.t) =
    match termination with
    | Prefix -> Some key
    | Forever ->
      let ok =
        match StateTbl.find_opt continuation_memo st with
        | Some b -> b
        | None ->
          let b = fair_constant_continuation config inst model st in
          StateTbl.replace continuation_memo st b;
          b
      in
      if ok then Some key else None
  in
  push (init, 0) None;
  if n = 1 then accept := accepts (init, 0);
  let exhausted = ref false in
  while !accept = None && not !exhausted do
    if Tbl.length seen > config.Explore.max_states then begin
      truncated := true;
      exhausted := true
    end
    else begin
      match pop () with
      | None -> exhausted := true
      | Some ((st, i) as key) ->
      ignore queue_size;
      List.iter
        (fun (l : Enumerate.labeled) ->
          if !accept = None then begin
            let outcome = Step.apply ~check:false inst st l.Enumerate.entry in
            let st' = outcome.Step.state in
            if State.max_occupancy st' > config.Explore.channel_bound
            then pruned := true
            else begin
              let a' = assignment_of st' in
              let eq j = j < n && Assignment.equal a' target.(j) in
              let moves =
                match level with
                | Realization.Relation.Exact -> if eq (i + 1) then [ i + 1 ] else []
                | Realization.Relation.Repetition ->
                  (if eq i then [ i ] else []) @ (if eq (i + 1) then [ i + 1 ] else [])
                | Realization.Relation.Subsequence | Realization.Relation.Oscillation ->
                  [ (if eq (i + 1) then i + 1 else i) ]
              in
              List.iter
                (fun i' ->
                  let key' = (st', i') in
                  if not (Tbl.mem seen key') then begin
                    push key' (Some (key, l.Enumerate.entry));
                    if i' = n - 1 then accept := accepts key'
                  end)
                moves
            end
          end)
        (Enumerate.successors inst model st)
    end
  done;
  match !accept with
  | Some key ->
    let rec build acc key =
      match Tbl.find_opt parent key with
      | None -> acc
      | Some (prev, entry) -> build (entry :: acc) prev
    in
    Realizable (build [] key)
  | None ->
    if !pruned then Unknown "channel bound pruned some writes"
    else if !truncated then Unknown "state limit reached"
    else Impossible
