(** Explicit-state exploration of an instance under a communication model.

    Channels are bounded: any write that would push a channel beyond
    [channel_bound] messages prunes that edge (and the result is flagged),
    so "no oscillation found" verdicts are exhaustive only over the bounded
    space — see DESIGN.md.  Oscillation witnesses are sound regardless.

    Exploration can run on several OCaml domains ([?domains], or the
    [DOMAINS] environment variable).  The parallel explorer is adaptive:
    it starts sequentially on the calling domain and only hands the
    frontier to the persistent {!Engine.Pool} — per-worker work-stealing
    deques, an atomic in-flight counter for termination, counter buffers
    merged at join — once the frontier outgrows a spill threshold, so
    small state spaces never pay any parallel overhead.  By default the
    threshold is infinite on hardware without parallelism
    ([Domain.recommended_domain_count () <= 1], where extra domains only
    add GC barriers); pass [?spill] to override (0 engages the pool
    immediately).  The reachable state set, the [pruned]/[truncated]
    flags, and every verdict derived from the graph are identical across
    domain counts; only the state numbering (beyond the warm-start
    prefix) may differ. *)

type config = { channel_bound : int; max_states : int }

val default_config : config
(** channel bound 4, at most 200_000 states. *)

val default_domains : unit -> int
(** The [DOMAINS] environment variable when it parses as a positive
    integer, or {!auto_domains} when set to [auto] (case-insensitive);
    1 (sequential) otherwise. *)

val auto_domains : unit -> int
(** [Domain.recommended_domain_count () - 1] (one core left for the rest
    of the process), clamped to at least 1. *)

val default_spill : unit -> int option
(** The adaptive spill threshold used when [?spill] is not given: [None]
    (never spill — explore sequentially regardless of [domains]) without
    hardware parallelism, a small frontier bound otherwise. *)

type edge = { dst : int; label : Enumerate.labeled }

type graph = {
  states : Engine.State.t array;  (** index 0 is the initial state *)
  adjacency : edge list array;
  pruned : bool;  (** some write hit the channel bound *)
  truncated : bool;
      (** the [max_states] bound discarded at least one fresh successor; the
          graph itself never exceeds the bound and has no dangling edges *)
}

val collapse_state : Engine.Model.t -> Engine.State.t -> Engine.State.t
(** The last-message-only channel reduction, exact for reliable polling
    models (identity otherwise). *)

type checkpoint = { path : string; every : int }
(** Write an {!Engine.Snapshot} of the exploration's progress to [path]
    (atomically, via temp file + rename) after every [every] expanded
    states.  No checkpoint is written once the frontier drains — a file
    left behind always resumes to the same final graph. *)

type frontier_spill = { dir : string; chunk : int }
(** Spill the middle of the BFS frontier to disk in [dir] as checksummed
    {!Engine.Snapshot} frontier chunks of [chunk] states each, keeping
    only the two queue ends resident.  Pop order — and hence the explored
    graph — is bit-identical to the in-memory queue.  Sequential only
    (like checkpointing), and note the intern table still references
    every state, so this bounds the frontier's extra copy, not total
    memory (EXPERIMENTS.md).  [dir] is created if missing; drained chunk
    files are deleted as they are consumed. *)

val explore :
  ?config:config ->
  ?reduction:Reduce.t ->
  ?domains:int ->
  ?spill:int ->
  ?frontier_spill:frontier_spill ->
  ?metrics:Engine.Metrics.t ->
  ?checkpoint:checkpoint ->
  ?resume:Engine.Snapshot.t ->
  Spp.Instance.t ->
  Engine.Model.t ->
  graph

val explore_with :
  ?config:config ->
  ?reduction:Reduce.t ->
  ?domains:int ->
  ?spill:int ->
  ?frontier_spill:frontier_spill ->
  ?metrics:Engine.Metrics.t ->
  ?checkpoint:checkpoint ->
  ?resume:Engine.Snapshot.t ->
  Spp.Instance.t ->
  successors:(Engine.State.t -> Enumerate.labeled list) ->
  collapse:(Engine.State.t -> Engine.State.t) ->
  graph
(** Generalized entry point (heterogeneous models, custom collapses);
    [collapse] must be an exact abstraction of the successor relation.
    [successors] and [collapse] must be pure: once the frontier spills
    they are called concurrently from several domains.  With [metrics],
    interning, dedup, pruning and frontier counters are recorded (merged
    once at join on the parallel path), plus an "explore" wall-time
    phase.

    [?reduction] (default {!Reduce.No_reduction}, which leaves the legacy
    exploration bit-identical) applies {!Reduce.Por} ample-set pruning or
    the {!Reduce.Sym} symmetry quotient; both preserve the verdict and
    the reachable assignment set (DESIGN.md).  Under [Por] the
    [ample_states] metric counts states expanded through a proper ample
    subset; under [Sym] the [canonicalized] metric counts successors
    rewritten to another orbit representative.

    [?checkpoint] and [?resume] (a snapshot loaded by the caller with
    {!Engine.Snapshot.load}) are defined only for the deterministic
    sequential order.  Resuming continues the saved BFS — same intern
    table, same queue order — so the final verdict, state count and edge
    multiset are bit-identical to an uninterrupted run.

    Raises [Invalid_argument] if: the snapshot's recorded
    [channel_bound]/[max_states]/[reduction] disagree with this run's;
    [checkpoint.every < 1]; [Sym] is combined with checkpoint/resume
    (orbit representatives are process-local, see {!Reduce.canonicalizer});
    [?frontier_spill] is combined with checkpoint/resume; or an explicit
    [?domains] above 1 is combined with any of the sequential-only options
    (checkpoint, resume, frontier spill).  When those options merely meet
    an environment-derived ([DOMAINS]) parallelism default, the run is
    downgraded to one domain and the downgrade is recorded in the metrics
    ([Engine.Metrics.downgrade]) rather than silently applied. *)
