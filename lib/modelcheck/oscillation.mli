(** Fair-oscillation detection (the semantic core of Def. 2.4/2.5 claims).

    An instance can oscillate under a model iff its (bounded) state graph
    contains a strongly connected edge set that (a) tries to read every
    tracked channel, (b) only drops messages on channels it also reads
    cleanly, and (c) visits at least two distinct path assignments.  Looping
    over such an edge set forever is a fair nonconvergent execution; the
    returned witness makes this concrete as a schedule the {!Engine.Executor}
    can replay. *)

type witness = {
  prefix : Engine.Activation.t list;  (** from the initial state to the cycle *)
  cycle : Engine.Activation.t list;  (** a fair, π-changing closed walk *)
}

type verdict =
  | Oscillates of witness
  | Converges  (** exhaustive over the bounded space: no fair oscillation *)
  | Unknown of string  (** bounded exploration was pruned or truncated *)

val pp_verdict : Format.formatter -> verdict -> unit
val verdict_name : verdict -> string

val analyze_graph : Spp.Instance.t -> Explore.graph -> verdict
(** The verdict of an already-explored bounded state graph; lets callers
    reuse one exploration for several analyses (and benchmark the phases
    separately). *)

val analyze :
  ?config:Explore.config ->
  ?reduction:Reduce.t ->
  ?domains:int ->
  ?metrics:Engine.Metrics.t ->
  Spp.Instance.t ->
  Engine.Model.t ->
  verdict
(** [reduction]/[domains]/[metrics] are forwarded to {!Explore.explore};
    with [metrics] the graph analysis is additionally timed as an
    "analyze" phase.  Both reductions preserve the verdict of a clean
    (unpruned, untruncated) exploration; when the exact run prunes at the
    channel bound, a reduced run may additionally reach a definitive
    verdict, because POR's representative executions drain messages
    eagerly and can stay inside a bound the original schedule exceeded
    (DESIGN.md). *)

val analyze_hetero :
  ?config:Explore.config ->
  ?reduction:Reduce.t ->
  ?domains:int ->
  ?metrics:Engine.Metrics.t ->
  Spp.Instance.t ->
  Engine.Hetero.t ->
  verdict
(** Exhaustive verdict when each node runs its own model (Sec. 5's open
    mixed-model question).  [Reduce.Por] is sound here (the drain
    conditions are per-node and model-independent); [Reduce.Sym] raises
    [Invalid_argument] — an instance automorphism need not preserve the
    node-to-model assignment. *)

val verify_witness :
  ?max_steps:int -> Spp.Instance.t -> Engine.Model.t -> witness -> bool
(** Replays the witness under the executor (validating every entry against
    the model) and checks that a state cycle is reached and that the cycle
    is fair. *)

val verify_witness_hetero :
  ?max_steps:int -> Spp.Instance.t -> Engine.Hetero.t -> witness -> bool

val sweep :
  ?config:Explore.config ->
  ?reduction:Reduce.t ->
  ?domains:int ->
  ?metrics:Engine.Metrics.t ->
  Spp.Instance.t ->
  Engine.Model.t list ->
  (Engine.Model.t * verdict) list
