(* Protocol-generic explicit-state exploration and divergence analysis
   (PR 7).

   [Make (P)] is {!Explore} + {!Oscillation} for any {!Engine.Protocol.S}:
   breadth-first exploration of the reachable state graph under a
   communication model (one canonical activation entry per observational
   class, via {!Enumerate.successors_core}), channel-bound pruning and
   state-count truncation exactly as in the SPP explorer, and the fair-cycle
   divergence search over drop-stable strongly connected edge sets.

   Differences from the SPP pair, all driven by the protocol hooks:

   - Convergence is [P]'s predicate (via [E.State.converged]), not SPP
     quiescence; converged states are excluded from the cycle search (they
     are absorbing for every shipped protocol, and a fair cycle through a
     "done" state is not divergence).
   - Legacy oscillation demands a changing path assignment along the cycle;
     generically a fair cycle diverges when some node's [P.observable]
     changes along it, or — for protocols with [P.stuck_is_divergent] —
     when the cycle is "doomed": no converged state is reachable from it at
     all (a gossip rumor dropped on every copy).  The doomed clause is only
     sound on a complete graph, so it is disabled under pruning or
     truncation.
   - The exact last-message channel collapse additionally requires
     [P.idempotent] (push-sum messages carry mass; collapsing them would
     be unsound even under reliable polling).

   The [Protocols.Path_vector] instance of this functor is pinned by the
   parity suite to the legacy explorer's verdicts and state counts. *)

module Make (P : Engine.Protocol.S) = struct
  module E = Engine.Generic.Make (P)

  type config = Explore.config = { channel_bound : int; max_states : int }

  let default_config = Explore.default_config

  type edge = { dst : int; label : Enumerate.labeled }

  type graph = {
    states : E.State.t array;
    adjacency : edge list array;
    pruned : bool;
    truncated : bool;
  }

  module StateTbl = Hashtbl.Make (struct
    type t = E.State.t

    let equal = E.State.equal
    let hash = E.State.digest
  end)

  let collapsible inst (model_of : int -> Engine.Model.t) =
    P.idempotent
    && List.for_all
         (fun v ->
           let m = model_of v in
           m.Engine.Model.rel = Engine.Model.Reliable
           && m.Engine.Model.msg = Engine.Model.M_all)
         (P.nodes inst)

  (* Sequential BFS, the same queue discipline, intern-time [max_states]
     bound and post-projection channel-bound check as
     [Explore.explore_seq] — the state numbering of the path-vector
     instance must be bit-identical to the legacy explorer's. *)
  let explore_with ?(config = default_config) inst ~model_of =
    let max_states = max 1 config.max_states in
    let collapse =
      if collapsible inst model_of then E.State.collapse_last else Fun.id
    in
    let index = StateTbl.create 1024 in
    let states = ref [] and n_states = ref 0 in
    let adjacency = ref [] in
    let pruned = ref false and truncated = ref false in
    let queue = Queue.create () in
    let intern st =
      match StateTbl.find_opt index st with
      | Some i -> Some (i, false)
      | None ->
        if !n_states >= max_states then begin
          truncated := true;
          None
        end
        else begin
          let i = !n_states in
          StateTbl.add index st i;
          states := st :: !states;
          incr n_states;
          Some (i, true)
        end
    in
    let init = E.State.initial inst in
    (match intern init with Some _ -> () | None -> assert false);
    Queue.add (0, init) queue;
    let required = P.in_channels inst in
    let nodes = P.nodes inst in
    while not (Queue.is_empty queue) do
      let i, st = Queue.pop queue in
      let succs =
        Enumerate.successors_core ~nodes ~required
          ~length:(E.State.channel_length st)
          ~model_of
      in
      let edges =
        List.filter_map
          (fun (labeled : Enumerate.labeled) ->
            let outcome =
              E.Step.apply ~check:false inst st labeled.Enumerate.entry
            in
            let st' = E.State.project inst (collapse outcome.E.Step.state) in
            if E.State.max_occupancy st' > config.channel_bound then begin
              pruned := true;
              None
            end
            else
              match intern st' with
              | None -> None
              | Some (j, fresh) ->
                if fresh then Queue.add (j, st') queue;
                Some { dst = j; label = labeled })
          succs
      in
      adjacency := (i, edges) :: !adjacency
    done;
    let states_arr = Array.of_list (List.rev !states) in
    let adj = Array.make (Array.length states_arr) [] in
    List.iter (fun (i, es) -> adj.(i) <- es) !adjacency;
    { states = states_arr; adjacency = adj; pruned = !pruned; truncated = !truncated }

  let explore ?config inst model =
    explore_with ?config inst ~model_of:(fun _ -> model)

  (* ---------------------------------------------------------------- *)
  (* Divergence analysis: the {!Oscillation} fair-cycle search, with the
     observable-change / doomed-cycle criterion in place of "pi changes". *)

  type witness = {
    prefix : Engine.Activation.t list;
    cycle : Engine.Activation.t list;
  }

  type verdict = Converges | Diverges of witness | Unknown of string

  let verdict_name = function
    | Converges -> "converges"
    | Diverges _ -> "diverges"
    | Unknown _ -> "unknown"

  let pp_verdict ppf = function
    | Diverges w ->
      Fmt.pf ppf "diverges (witness: %d-step prefix, %d-step fair cycle)"
        (List.length w.prefix) (List.length w.cycle)
    | Converges -> Fmt.string ppf "converges under every fair schedule"
    | Unknown reason -> Fmt.pf ppf "unknown (%s)" reason

  let tracked_channels inst =
    List.sort_uniq Engine.Channel.compare_id
      (List.concat_map (P.in_channels inst) (P.nodes inst))

  let observable_differs inst a b =
    List.exists
      (fun v ->
        P.observable inst v (E.State.local a v)
        <> P.observable inst v (E.State.local b v))
      (P.nodes inst)

  module CS = Set.Make (struct
    type t = Engine.Channel.id

    let compare = Engine.Channel.compare_id
  end)

  (* Check one drop-stable strongly connected edge set; on success build
     the witness cycle: a closed walk from [start] covering every
     obligation.  [stuck_ok i] holds when a cycle at [i] with no observable
     change still counts as divergence (doomed + [P.stuck_is_divergent]). *)
  let evaluate inst graph ~tracked ~stuck_ok nodes edges =
    let reads =
      List.fold_left
        (fun acc (_, (e : edge)) ->
          List.fold_left (fun acc c -> CS.add c acc) acc e.label.Enumerate.reads)
        CS.empty edges
    in
    let all_read = List.for_all (fun c -> CS.mem c reads) tracked in
    let obs_changes =
      match nodes with
      | [] -> false
      | first :: rest ->
        List.exists
          (fun other ->
            observable_differs inst graph.states.(first) graph.states.(other))
          rest
    in
    let stuck = (not obs_changes) && List.for_all stuck_ok nodes in
    if not (all_read && (obs_changes || stuck)) then None
    else begin
      let n = Array.length graph.states in
      let adj = Array.make n [] in
      List.iter
        (fun (src, (e : edge)) -> adj.(src) <- (e.dst, e) :: adj.(src))
        edges;
      let path_entries path =
        List.map (fun (e : edge) -> e.label.Enumerate.entry) path
      in
      let bfs ~src ~dst =
        let prev = Array.make n None in
        let seen = Array.make n false in
        let q = Queue.create () in
        seen.(src) <- true;
        Queue.add src q;
        while (not seen.(dst)) && not (Queue.is_empty q) do
          let v = Queue.pop q in
          List.iter
            (fun ((w, e) : int * edge) ->
              if not seen.(w) then begin
                seen.(w) <- true;
                prev.(w) <- Some (v, e);
                Queue.add w q
              end)
            adj.(v)
        done;
        if not seen.(dst) then None
        else begin
          let rec build acc v =
            match prev.(v) with None -> acc | Some (u, e) -> build (e :: acc) u
          in
          Some (build [] dst)
        end
      in
      let start = List.hd nodes in
      let loop_via (src, (e : edge)) =
        match (bfs ~src:start ~dst:src, bfs ~src:e.dst ~dst:start) with
        | Some p1, Some p2 -> Some (p1 @ [ e ] @ p2)
        | _ -> None
      in
      let walk = ref [] in
      let ok = ref true in
      let append_loop edge =
        match loop_via edge with
        | Some l -> walk := !walk @ l
        | None -> ok := false
      in
      (* (a) an observable-changing loop — or, for a stuck cycle, any loop
         at all (so the walk is non-empty even with no tracked channels). *)
      (if obs_changes then
         match
           List.find_opt
             (fun other ->
               observable_differs inst graph.states.(start) graph.states.(other))
             nodes
         with
         | Some s2 -> (
           match (bfs ~src:start ~dst:s2, bfs ~src:s2 ~dst:start) with
           | Some p1, Some p2 -> walk := p1 @ p2
           | _ -> ok := false)
         | None -> ok := false
       else
         match List.find_opt (fun (src, _) -> src = start) edges with
         | Some edge -> append_loop edge
         | None -> ok := false);
      (* (b) cover every tracked channel *)
      let covered () =
        List.fold_left
          (fun acc (e : edge) ->
            List.fold_left (fun acc c -> CS.add c acc) acc e.label.Enumerate.reads)
          CS.empty !walk
      in
      List.iter
        (fun c ->
          if !ok && not (CS.mem c (covered ())) then begin
            let reader =
              List.find_opt
                (fun (_, (e : edge)) ->
                  List.exists (Engine.Channel.equal_id c) e.label.Enumerate.reads)
                edges
            in
            match reader with Some edge -> append_loop edge | None -> ok := false
          end)
        tracked;
      (* (c) clean every dropped channel; appended loops may add drops, so
         iterate (bounded by the number of channels). *)
      let rec fix_drops budget =
        if !ok && budget > 0 then begin
          let drops, cleans =
            List.fold_left
              (fun (d, k) (e : edge) ->
                ( List.fold_left (fun d c -> CS.add c d) d e.label.Enumerate.drops,
                  List.fold_left (fun k c -> CS.add c k) k e.label.Enumerate.cleans
                ))
              (CS.empty, CS.empty) !walk
          in
          let missing = CS.diff drops cleans in
          if not (CS.is_empty missing) then begin
            CS.iter
              (fun c ->
                let cleaner =
                  List.find_opt
                    (fun (_, (e : edge)) ->
                      List.exists (Engine.Channel.equal_id c)
                        e.label.Enumerate.cleans)
                    edges
                in
                match cleaner with
                | Some edge -> append_loop edge
                | None -> ok := false)
              missing;
            fix_drops (budget - 1)
          end
        end
      in
      fix_drops (List.length tracked + 1);
      let final_drops, final_cleans, final_reads =
        List.fold_left
          (fun (d, k, r) (e : edge) ->
            ( List.fold_left (fun d c -> CS.add c d) d e.label.Enumerate.drops,
              List.fold_left (fun k c -> CS.add c k) k e.label.Enumerate.cleans,
              List.fold_left (fun r c -> CS.add c r) r e.label.Enumerate.reads ))
          (CS.empty, CS.empty, CS.empty) !walk
      in
      if
        !ok && !walk <> []
        && CS.subset final_drops final_cleans
        && List.for_all (fun c -> CS.mem c final_reads) tracked
      then Some (start, path_entries !walk)
      else None
    end

  (* Fixpoint: drop edges whose drops are not covered by clean reads in the
     current edge set, then re-split into SCCs and recurse. *)
  let rec search inst graph ~tracked ~stuck_ok edges =
    let cleans =
      List.fold_left
        (fun acc (_, (e : edge)) ->
          List.fold_left (fun acc c -> CS.add c acc) acc e.label.Enumerate.cleans)
        CS.empty edges
    in
    let keep (_, (e : edge)) =
      List.for_all (fun c -> CS.mem c cleans) e.label.Enumerate.drops
    in
    let kept = List.filter keep edges in
    if List.length kept = List.length edges then
      split_sccs inst graph ~tracked ~stuck_ok kept ~recurse:false
    else split_sccs inst graph ~tracked ~stuck_ok kept ~recurse:true

  and split_sccs inst graph ~tracked ~stuck_ok edges ~recurse =
    if edges = [] then None
    else begin
      let n = Array.length graph.states in
      let adj = Array.make n [] in
      List.iter (fun (src, (e : edge)) -> adj.(src) <- e.dst :: adj.(src)) edges;
      let comp, _ = Scc.tarjan n (fun i -> adj.(i)) in
      let by_comp = Hashtbl.create 17 in
      List.iter
        (fun ((src, (e : edge)) as edge) ->
          if comp.(src) = comp.(e.dst) then begin
            let k = comp.(src) in
            Hashtbl.replace by_comp k
              (edge :: Option.value ~default:[] (Hashtbl.find_opt by_comp k))
          end)
        edges;
      Hashtbl.fold
        (fun _ comp_edges acc ->
          match acc with
          | Some _ -> acc
          | None ->
            let nodes =
              List.sort_uniq compare
                (List.concat_map
                   (fun (src, (e : edge)) -> [ src; e.dst ])
                   comp_edges)
            in
            if recurse then search inst graph ~tracked ~stuck_ok comp_edges
            else evaluate inst graph ~tracked ~stuck_ok nodes comp_edges)
        by_comp None
    end

  let analyze_graph inst graph =
    let tracked = tracked_channels inst in
    let n = Array.length graph.states in
    let converged = Array.map (E.State.converged inst) graph.states in
    (* [can_converge.(i)]: some converged state is reachable from i over
       the full graph — reverse BFS from every converged state. *)
    let can_converge = Array.copy converged in
    let radj = Array.make n [] in
    Array.iteri
      (fun i es -> List.iter (fun (e : edge) -> radj.(e.dst) <- i :: radj.(e.dst)) es)
      graph.adjacency;
    let q = Queue.create () in
    Array.iteri (fun i c -> if c then Queue.add i q) converged;
    while not (Queue.is_empty q) do
      let v = Queue.pop q in
      List.iter
        (fun u ->
          if not can_converge.(u) then begin
            can_converge.(u) <- true;
            Queue.add u q
          end)
        radj.(v)
    done;
    (* A fair cycle through a converged state is not divergence: restrict
       the search to edges between non-converged states. *)
    let all_edges =
      List.concat
        (List.init n (fun i ->
             if converged.(i) then []
             else
               List.filter_map
                 (fun (e : edge) ->
                   if converged.(e.dst) then None else Some (i, e))
                 graph.adjacency.(i)))
    in
    (* The doomed clause certifies "no converged state is reachable", which
       a pruned or truncated graph cannot: a dropped edge might be the
       escape route. *)
    let stuck_ok i =
      P.stuck_is_divergent
      && (not graph.pruned)
      && (not graph.truncated)
      && not can_converge.(i)
    in
    match split_sccs inst graph ~tracked ~stuck_ok all_edges ~recurse:true with
    | Some (start, cycle) ->
      let full_adj = Array.make n [] in
      Array.iteri
        (fun i es ->
          full_adj.(i) <-
            List.map (fun (e : edge) -> (e.dst, e.label.Enumerate.entry)) es)
        graph.adjacency;
      let prev = Array.make n None in
      let seen = Array.make n false in
      let bq = Queue.create () in
      seen.(0) <- true;
      Queue.add 0 bq;
      while (not seen.(start)) && not (Queue.is_empty bq) do
        let v = Queue.pop bq in
        List.iter
          (fun (w, entry) ->
            if not seen.(w) then begin
              seen.(w) <- true;
              prev.(w) <- Some (v, entry);
              Queue.add w bq
            end)
          full_adj.(v)
      done;
      if not seen.(start) then Unknown "cycle start unreachable (internal error)"
      else begin
        let rec build acc v =
          match prev.(v) with
          | None -> acc
          | Some (u, entry) -> build (entry :: acc) u
        in
        Diverges { prefix = build [] start; cycle }
      end
    | None ->
      if graph.pruned then Unknown "channel bound pruned some writes"
      else if graph.truncated then Unknown "state limit reached"
      else Converges

  let analyze ?config inst model =
    analyze_graph inst (explore ?config inst model)

  (* ---------------------------------------------------------------- *)
  (* Witness verification by replay, independent of the search above. *)

  let cycle_fair_from inst state cycle =
    let _, reads, drops, cleans =
      List.fold_left
        (fun (st, reads, drops, cleans) entry ->
          let o = E.Step.apply inst st entry in
          let reads =
            List.fold_left
              (fun acc (r : Engine.Activation.read) ->
                CS.add r.Engine.Activation.chan acc)
              reads entry.Engine.Activation.reads
          in
          let dropped_of c =
            match List.assoc_opt c o.E.Step.dropped with
            | Some msgs -> List.length msgs
            | None -> 0
          in
          let drops =
            List.fold_left (fun acc (c, _) -> CS.add c acc) drops o.E.Step.dropped
          in
          let cleans =
            List.fold_left
              (fun acc (c, msgs) ->
                if List.length msgs > dropped_of c then CS.add c acc else acc)
              cleans o.E.Step.processed
          in
          (o.E.Step.state, reads, drops, cleans))
        (state, CS.empty, CS.empty, CS.empty)
        cycle
    in
    List.for_all (fun c -> CS.mem c reads) (tracked_channels inst)
    && CS.subset drops cleans

  let verify_witness ?max_steps inst model w =
    let max_steps =
      match max_steps with
      | Some n -> n
      | None -> max 5000 (List.length w.prefix + (4 * List.length w.cycle) + 10)
    in
    let after_prefix =
      List.fold_left
        (fun st e -> (E.Step.apply inst st e).E.Step.state)
        (E.State.initial inst) w.prefix
    in
    let sched = Engine.Scheduler.prefixed w.prefix w.cycle in
    let run = E.Executor.run ~max_steps inst sched in
    List.for_all (E.validates inst model) (w.prefix @ w.cycle)
    && cycle_fair_from inst after_prefix w.cycle
    &&
    match run.E.Executor.stop with
    | E.Executor.Cycle _ -> true
    | E.Executor.Converged | E.Executor.Exhausted -> false
end
