open Engine

type t = No_reduction | Por | Sym

let to_string = function No_reduction -> "none" | Por -> "por" | Sym -> "sym"

let of_string = function
  | "none" -> Some No_reduction
  | "por" -> Some Por
  | "sym" -> Some Sym
  | _ -> None

let pp ppf t = Fmt.string ppf (to_string t)

(* ------------------------------------------------------------------ *)
(* Partial-order reduction: invisible-drain ample sets.

   A node v is an invisible drain at state s when every activation of v
   enabled at s (i) pushes nothing, (ii) leaves π_v and v's last
   announcement unchanged, and some activation (iii) consumes at least one
   message.  Such activations only shrink v's in-channels and rewrite ρ on
   them — state components no other node's activation reads — so each one
   commutes with every other node's activations (FIFO prefix-read vs.
   append on disjoint channels), and expanding v alone defers, never
   loses, the rest (DESIGN.md, "State-space reduction" — including why the
   ample set must be ALL of v's activations, and why (iii) plus the strict
   message-count decrease discharges the cycle proviso structurally). *)

let ample _inst st outcomes =
  let drains st' v = function
    | { Step.pushed = []; _ } as o ->
      State.pi_id o.Step.state v = State.pi_id st' v
      && State.announced_id o.Step.state v = State.announced_id st' v
    | _ -> false
  in
  let progresses (o : Step.outcome) = List.exists (fun (_, n) -> n > 0) o.processed in
  (* [Enumerate.successors] emits each node's entries consecutively, so
     one linear scan recovers the groups. *)
  let rec groups acc cur key = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | ((l, _) as pair) :: rest ->
      let k = l.Enumerate.entry.Activation.active in
      if k = key || cur = [] then groups acc (pair :: cur) k rest
      else groups (List.rev cur :: acc) [ pair ] k rest
  in
  let total = List.length outcomes in
  let eligible group =
    match group with
    | ((l, _) :: _ : (Enumerate.labeled * Step.outcome) list) -> (
      match l.Enumerate.entry.Activation.active with
      | [ v ] ->
        List.length group < total
        && List.for_all (fun (_, o) -> drains st v o) group
        && List.exists (fun (_, o) -> progresses o) group
      | _ -> false)
    | [] -> false
  in
  match List.find_opt eligible (groups [] [] [] outcomes) with
  | Some group -> (group, true)
  | None -> (outcomes, false)

(* ------------------------------------------------------------------ *)
(* Symmetry quotient. *)

type canonicalizer = State.t -> State.t

let relabel inst sigma st =
  let module I = Spp.Instance in
  let module A = Spp.Arena in
  let rid p =
    if A.is_epsilon p then p else A.of_nodes (List.map (fun v -> sigma.(v)) (A.to_nodes p))
  in
  let nodes = I.nodes inst in
  let s = State.initial inst in
  (* Every node is written explicitly (σ is a permutation), so nothing
     stale survives from the initial state. *)
  let s = List.fold_left (fun s v -> State.with_pi_id s sigma.(v) (rid (State.pi_id st v))) s nodes in
  let s =
    List.fold_left
      (fun s v -> State.with_announced_id s sigma.(v) (rid (State.announced_id st v)))
      s nodes
  in
  let s =
    List.fold_left
      (fun s ((c : Channel.id), p) ->
        State.with_rho_id s (Channel.id ~src:sigma.(c.Channel.src) ~dst:sigma.(c.Channel.dst)) (rid p))
      s (State.rho_bindings_id st)
  in
  let chans =
    List.fold_left
      (fun m ((c : Channel.id), msgs) ->
        let c' = Channel.id ~src:sigma.(c.Channel.src) ~dst:sigma.(c.Channel.dst) in
        List.fold_left (fun m p -> Channel.push m c' (rid p)) m msgs)
      Channel.empty
      (Channel.bindings (State.channels st))
  in
  (* [with_channels] recomputes the digest and occupancy cache from
     scratch, so the representative's caches can never go stale. *)
  State.with_channels s chans

let canonicalizer inst =
  match Spp.Instance.automorphisms inst with
  | [] -> Fun.id
  | autos ->
    fun st ->
      List.fold_left
        (fun best sg ->
          let st' = relabel inst sg st in
          if State.compare st' best < 0 then st' else best)
        st autos
