(** State-space reductions for {!Explore}: commutativity-based partial-order
    reduction and node-relabeling symmetry quotient.

    Both are opt-in; the default {!No_reduction} leaves the explorer's
    legacy behavior bit-identical.  Soundness arguments, the per-model
    independence relation and the limits of each reduction are laid out in
    DESIGN.md ("State-space reduction"). *)

type t =
  | No_reduction  (** explore the full graph (legacy behavior) *)
  | Por
      (** invisible-drain ample sets: when some node's activations at a
          state all consume messages without changing that node's choice,
          announcement or out-channels, expanding only that node's
          activations preserves every reachable assignment, the verdict
          and all fairness-relevant cycles *)
  | Sym
      (** quotient states by the instance's {!Spp.Instance.automorphisms},
          interning only the orbit representative; requires a symmetric
          instance to have any effect, and is incompatible with
          checkpoint/resume (representatives are chosen by process-local
          arena order) *)

val to_string : t -> string
(** ["none"], ["por"], ["sym"] — the [--reduction] spellings used by the
    bench and conformance CLIs and stored in snapshots/artifacts. *)

val of_string : string -> t option

val pp : Format.formatter -> t -> unit

(** {1 Partial-order reduction} *)

val ample :
  Spp.Instance.t ->
  Engine.State.t ->
  (Enumerate.labeled * Engine.Step.outcome) list ->
  (Enumerate.labeled * Engine.Step.outcome) list * bool
(** [ample inst st outcomes] selects an ample subset of the labeled
    activations (paired with their already-computed raw outcomes) to
    expand at [st].  Scans the label groups node by node (in
    {!Spp.Instance.nodes} order, matching {!Enumerate.successors}'
    grouping) for an {e invisible drain}: a node all of whose activations
    at [st] push no messages and leave its own choice and last
    announcement unchanged, with at least one activation consuming a
    message.  Returns that node's pairs and [true], or all pairs and
    [false] when no node qualifies.  Outcomes are never recomputed. *)

(** {1 Symmetry quotient} *)

type canonicalizer = Engine.State.t -> Engine.State.t

val canonicalizer : Spp.Instance.t -> canonicalizer
(** [canonicalizer inst] maps a state to its orbit representative — the
    {!Engine.State.compare}-minimum of its images under the instance's
    automorphism group.  The identity function when the instance has no
    automorphisms.  Representatives are consistent within a process (the
    hash-consed arena gives every domain the same path ids), but {e not}
    across processes, which is why [Sym] cannot be checkpointed. *)

val relabel : Spp.Instance.t -> Spp.Path.node array -> Engine.State.t -> Engine.State.t
(** [relabel inst sigma st] is [st] with every node [v] renamed to
    [sigma.(v)] in π, ρ, announcements and channel contents (exposed for
    tests; {!canonicalizer} folds it over the automorphism group). *)
