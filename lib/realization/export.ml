open Engine

let matrix_markdown closure ~realizers ~title =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "# %s\n\n" title);
  Buffer.add_string buf
    "Entry at row A, column B: B's proven ability to realize A (4 = exact,\n\
     3 = with repetition, 2 = as a subsequence, -1 = does not preserve\n\
     oscillations; blank = unknown).\n\n";
  Buffer.add_string buf
    ("| realized \\ realizer | "
    ^ String.concat " | " (List.map Model.to_string realizers)
    ^ " |\n");
  Buffer.add_string buf
    ("|---|" ^ String.concat "" (List.map (fun _ -> "---|") realizers) ^ "\n");
  List.iter
    (fun realized ->
      let cells =
        List.map
          (fun realizer ->
            if Model.equal realized realizer then "—"
            else
              match Closure.cell_string (Closure.cell closure ~realized ~realizer) with
              | "" -> " "
              | s -> s)
          realizers
      in
      Buffer.add_string buf
        ("| " ^ Model.to_string realized ^ " | " ^ String.concat " | " cells ^ " |\n"))
    Model.all;
  Buffer.contents buf

let diff_markdown closure =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "# Derived matrices vs. the paper's Figures 3-4\n\n";
  List.iter
    (fun (v, n) ->
      Buffer.add_string buf
        (Fmt.str "- %a: %d cells\n" Paper_tables.pp_verdict v n))
    (Paper_tables.tally closure);
  let interesting =
    List.filter (fun (_, _, _, _, v) -> v <> Paper_tables.Match) (Paper_tables.diff closure)
  in
  if interesting <> [] then begin
    Buffer.add_string buf "\n## Differing cells\n\n";
    Buffer.add_string buf "| realized | realizer | paper | derived | verdict |\n|---|---|---|---|---|\n";
    List.iter
      (fun (realized, realizer, (e : Paper_tables.constr), (c : Closure.cell), v) ->
        Buffer.add_string buf
          (Fmt.str "| %a | %a | [%d..%d] | [%d..%d] | %a |\n" Model.pp realized Model.pp
             realizer e.Paper_tables.lo e.Paper_tables.hi c.Closure.proven
             (c.Closure.disproven - 1) Paper_tables.pp_verdict v))
      interesting;
    Buffer.add_string buf "\n## Derivations of the sharpened cells\n\n";
    List.iter
      (fun (realized, realizer, _, _, v) ->
        if v = Paper_tables.Stronger then begin
          Buffer.add_string buf "```\n";
          Buffer.add_string buf (Closure.explain closure ~realized ~realizer);
          Buffer.add_string buf "```\n\n"
        end)
      interesting
  end;
  Buffer.contents buf

let write_all closure ~dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let write name content =
    let path = Filename.concat dir name in
    Engine.Snapshot.write_atomic path content;
    path
  in
  [
    write "fig3.md"
      (matrix_markdown closure ~realizers:Model.reliable
         ~title:"Figure 3: realization by reliable-channel models");
    write "fig4.md"
      (matrix_markdown closure ~realizers:Model.unreliable
         ~title:"Figure 4: realization by unreliable-channel models");
    write "diff.md" (diff_markdown closure);
  ]
