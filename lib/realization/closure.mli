(** Derivation of the full realization matrices (Figures 3 and 4) from the
    foundational facts via the transitivity rules of Sec. 3.4.

    For each ordered pair (A, B) the engine maintains the best {e proven}
    level at which B realizes A and the weakest {e disproven} level —
    together with full derivation trees — and closes the fact base under:

    - weakening: exact ⟹ repetition ⟹ subsequence ⟹ oscillation;
    - positive transitivity (Fig. 1): B ⊒_{l1} A and C ⊒_{l2} B imply
      C ⊒_{min(l1,l2)} A;
    - negative push (Fig. 2, left): B ⊒_{l1} A and C ⋢_{l2} A with
      l1 ≥ l2 imply C ⋢_{l2} B;
    - negative pull (Fig. 2, right): C ⊒_{l1} A and C ⋢_{l2} B with
      l1 ≥ l2 imply A ⋢_{l2} B. *)

type cell = {
  proven : int;  (** 0 if nothing proven, else 1..4 *)
  disproven : int;  (** 5 if nothing disproven, else weakest disproven 1..4 *)
}

(** Why a realization holds: a cited fact, reflexivity, or composition
    through an intermediate model. *)
type proof =
  | By_fact of Facts.positive
  | By_reflexivity
  | By_transitivity of { mid : Engine.Model.t; lower : proof; upper : proof }
      (** [lower]: mid realizes the realized model; [upper]: the realizer
          realizes mid *)

(** Why a realization is impossible. *)
type refutation =
  | By_neg_fact of Facts.negative
  | By_push of { via : Engine.Model.t; realization : proof; refutation : refutation }
      (** B ⊒ A and C ⋢ A give C ⋢ B, where [via] = A: [realization] shows
          the realized model realizes [via], [refutation] that the realizer
          cannot realize [via] *)
  | By_pull of { via : Engine.Model.t; realization : proof; refutation : refutation }
      (** C ⊒ A and C ⋢ B give A ⋢ B, where [via] = C *)

type t

type contradiction = {
  realized : Engine.Model.t;
  realizer : Engine.Model.t;
  c_proven : int;  (** best proven level for the offending cell *)
  c_disproven : int;  (** weakest disproven level for the same cell *)
}
(** A cell where the closed fact base both proves and disproves a level
    ([c_proven >= c_disproven]): the facts are inconsistent. *)

val contradiction_to_string : contradiction -> string

val derive :
  ?positives:Facts.positive list ->
  ?negatives:Facts.negative list ->
  unit ->
  (t, contradiction) result
(** Runs the closure to fixpoint (defaults to the paper's fact base).
    A contradictory fact base (some pair both proven and disproven at a
    level) is an [Error] carrying the first offending cell in row-major
    order — a finding about the facts, not an exception. *)

val derive_exn :
  ?positives:Facts.positive list -> ?negatives:Facts.negative list -> unit -> t
(** Like {!derive} but raises [Failure] with {!contradiction_to_string} on
    a contradiction; for display-only callers (table printers, examples)
    where the paper's fact base is known consistent. *)

val cell : t -> realized:Engine.Model.t -> realizer:Engine.Model.t -> cell

val cells : t -> (Engine.Model.t * Engine.Model.t * cell) list
(** All (realized, realizer, cell) triples, diagonal included. *)

val proof : t -> realized:Engine.Model.t -> realizer:Engine.Model.t -> proof option
(** Derivation of the best proven level, if any. *)

val refutation :
  t -> realized:Engine.Model.t -> realizer:Engine.Model.t -> refutation option
(** Derivation of the weakest disproven level, if any. *)

val explain : t -> realized:Engine.Model.t -> realizer:Engine.Model.t -> string
(** A human-readable account of both bounds with their derivations. *)

val cell_string : cell -> string
(** Renders a cell in the paper's notation: "4", "3", "2", "-1", ">=2",
    "<=2", "2,3", or "" when nothing is known. *)

val render : t -> realizers:Engine.Model.t list -> string
(** An ASCII table in the layout of Figures 3/4: rows are all 24 realized
    models, columns the given realizer models. *)
