open Engine

type cell = { proven : int; disproven : int }

type proof =
  | By_fact of Facts.positive
  | By_reflexivity
  | By_transitivity of { mid : Model.t; lower : proof; upper : proof }

type refutation =
  | By_neg_fact of Facts.negative
  | By_push of { via : Model.t; realization : proof; refutation : refutation }
  | By_pull of { via : Model.t; realization : proof; refutation : refutation }

type t = {
  proven : int array array;
  disproven : int array array;
  proofs : proof option array array;
  refutations : refutation option array array;
}
(* indexed [realized][realizer] over Model.all *)

let n_models = List.length Model.all
let index_of = Hashtbl.create 29

let () =
  List.iteri (fun i m -> Hashtbl.replace index_of (Model.to_string m) i) Model.all

let idx m = Hashtbl.find index_of (Model.to_string m)
let models = Array.of_list Model.all

type contradiction = {
  realized : Model.t;
  realizer : Model.t;
  c_proven : int;
  c_disproven : int;
}

let derive ?(positives = Facts.positives) ?(negatives = Facts.negatives) () =
  let proven = Array.make_matrix n_models n_models 0 in
  let disproven = Array.make_matrix n_models n_models 5 in
  let proofs = Array.make_matrix n_models n_models None in
  let refutations = Array.make_matrix n_models n_models None in
  (* Base facts + reflexivity. *)
  for a = 0 to n_models - 1 do
    proven.(a).(a) <- 4;
    proofs.(a).(a) <- Some By_reflexivity
  done;
  List.iter
    (fun (f : Facts.positive) ->
      let a = idx f.Facts.realized and b = idx f.Facts.realizer in
      let l = Relation.to_int f.Facts.level in
      if l > proven.(a).(b) then begin
        proven.(a).(b) <- l;
        proofs.(a).(b) <- Some (By_fact f)
      end)
    positives;
  List.iter
    (fun (f : Facts.negative) ->
      let a = idx f.Facts.target and b = idx f.Facts.non_realizer in
      let l = Relation.to_int f.Facts.at_level in
      if l < disproven.(a).(b) then begin
        disproven.(a).(b) <- l;
        refutations.(a).(b) <- Some (By_neg_fact f)
      end)
    negatives;
  (* Fixpoint over the Sec. 3.4 rules, recording derivation trees.  The
     children trees are snapshotted at update time, so the trees are always
     well-founded even as cells improve later. *)
  let changed = ref true in
  while !changed do
    changed := false;
    let bump_proven a c l why =
      if l > proven.(a).(c) then begin
        proven.(a).(c) <- l;
        proofs.(a).(c) <- Some (why ());
        changed := true
      end
    in
    let bump_disproven a c l why =
      if l < disproven.(a).(c) then begin
        disproven.(a).(c) <- l;
        refutations.(a).(c) <- Some (why ());
        changed := true
      end
    in
    for a = 0 to n_models - 1 do
      for b = 0 to n_models - 1 do
        if proven.(a).(b) > 0 then begin
          let ab_proof () = Option.get proofs.(a).(b) in
          for c = 0 to n_models - 1 do
            (* positive transitivity: B realizes A (lower), C realizes B
               (upper) => C realizes A *)
            if proven.(b).(c) > 0 && a <> c then
              bump_proven a c
                (min proven.(a).(b) proven.(b).(c))
                (fun () ->
                  By_transitivity
                    {
                      mid = models.(b);
                      lower = ab_proof ();
                      upper = Option.get proofs.(b).(c);
                    });
            (* negative push: B >= A at l1, C cannot realize A at l2 <= l1
               => C cannot realize B at l2 *)
            if disproven.(a).(c) <= proven.(a).(b) then
              bump_disproven b c disproven.(a).(c) (fun () ->
                  By_push
                    {
                      via = models.(a);
                      realization = ab_proof ();
                      refutation = Option.get refutations.(a).(c);
                    });
            (* negative pull: C realizes A at l1 (here C = b as the
               realizer), C cannot realize some B at l2 <= l1 => A cannot
               realize B at l2 *)
            if disproven.(c).(b) <= proven.(a).(b) then
              bump_disproven c a disproven.(c).(b) (fun () ->
                  By_pull
                    {
                      via = models.(b);
                      realization = ab_proof ();
                      refutation = Option.get refutations.(c).(b);
                    })
          done
        end
      done
    done
  done;
  (* Consistency.  A contradictory fact base is a finding about the facts,
     not a programming error, so it comes back as a typed [Error] the
     conformance harness can report instead of crashing the sweep. *)
  let contradiction = ref None in
  for a = n_models - 1 downto 0 do
    for b = n_models - 1 downto 0 do
      if proven.(a).(b) >= disproven.(a).(b) then
        contradiction :=
          Some
            {
              realized = models.(a);
              realizer = models.(b);
              c_proven = proven.(a).(b);
              c_disproven = disproven.(a).(b);
            }
    done
  done;
  match !contradiction with
  | Some c -> Error c
  | None -> Ok { proven; disproven; proofs; refutations }

let contradiction_to_string (c : contradiction) =
  Fmt.str "Closure: contradiction at (%a realized by %a): proven %d, disproven %d"
    Model.pp c.realized Model.pp c.realizer c.c_proven c.c_disproven

let derive_exn ?positives ?negatives () =
  match derive ?positives ?negatives () with
  | Ok t -> t
  | Error c -> failwith (contradiction_to_string c)

let cell t ~realized ~realizer =
  let a = idx realized and b = idx realizer in
  ({ proven = t.proven.(a).(b); disproven = t.disproven.(a).(b) } : cell)

let cells t =
  List.concat_map
    (fun realized ->
      List.map
        (fun realizer -> (realized, realizer, cell t ~realized ~realizer))
        Model.all)
    Model.all

let proof t ~realized ~realizer = t.proofs.(idx realized).(idx realizer)
let refutation t ~realized ~realizer = t.refutations.(idx realized).(idx realizer)

(* ------------------------------------------------------------------ *)
(* Rendering *)

let cell_string (c : cell) =
  if c.disproven = 1 then "-1"
  else if c.proven = 0 && c.disproven = 5 then ""
  else if c.proven = 0 then Printf.sprintf "<=%d" (c.disproven - 1)
  else if c.disproven = 5 then if c.proven = 4 then "4" else Printf.sprintf ">=%d" c.proven
  else if c.disproven = c.proven + 1 then string_of_int c.proven
  else
    String.concat ","
      (List.init (c.disproven - c.proven) (fun i -> string_of_int (c.proven + i)))

let render t ~realizers =
  let buf = Buffer.create 4096 in
  let col_width = 6 in
  let pad s = Printf.sprintf "%*s" col_width s in
  Buffer.add_string buf (pad "");
  List.iter (fun m -> Buffer.add_string buf (pad (Model.to_string m))) realizers;
  Buffer.add_char buf '\n';
  List.iter
    (fun realized ->
      Buffer.add_string buf (pad (Model.to_string realized));
      List.iter
        (fun realizer ->
          let s =
            if Model.equal realized realizer then "-"
            else cell_string (cell t ~realized ~realizer)
          in
          Buffer.add_string buf (pad s))
        realizers;
      Buffer.add_char buf '\n')
    Model.all;
  Buffer.contents buf

let rec render_proof buf ~indent ~realized ~realizer p =
  let pad = String.make indent ' ' in
  match p with
  | By_reflexivity ->
    Buffer.add_string buf
      (Fmt.str "%s%s realizes itself exactly\n" pad (Model.to_string realizer))
  | By_fact f ->
    Buffer.add_string buf
      (Fmt.str "%s%s realizes %s %s [%s]\n" pad (Model.to_string realizer)
         (Model.to_string realized)
         (Relation.to_string f.Facts.level)
         f.Facts.source)
  | By_transitivity { mid; lower; upper } ->
    Buffer.add_string buf
      (Fmt.str "%s%s realizes %s via %s:\n" pad (Model.to_string realizer)
         (Model.to_string realized) (Model.to_string mid));
    render_proof buf ~indent:(indent + 2) ~realized ~realizer:mid lower;
    render_proof buf ~indent:(indent + 2) ~realized:mid ~realizer upper

let rec render_refutation buf ~indent ~realized ~realizer r =
  let pad = String.make indent ' ' in
  match r with
  | By_neg_fact f ->
    Buffer.add_string buf
      (Fmt.str "%s%s cannot realize %s at level %s [%s]\n" pad
         (Model.to_string realizer) (Model.to_string realized)
         (Relation.to_string f.Facts.at_level)
         f.Facts.why)
  | By_push { via; realization; refutation } ->
    Buffer.add_string buf
      (Fmt.str
         "%sif %s realized %s, composing with the realization below would contradict the refutation below (push rule, via %s):\n"
         pad (Model.to_string realizer) (Model.to_string realized) (Model.to_string via));
    render_proof buf ~indent:(indent + 2) ~realized:via ~realizer:realized realization;
    render_refutation buf ~indent:(indent + 2) ~realized:via ~realizer refutation
  | By_pull { via; realization; refutation } ->
    Buffer.add_string buf
      (Fmt.str
         "%sif %s realized %s, composing with the realization below would contradict the refutation below (pull rule, via %s):\n"
         pad (Model.to_string realizer) (Model.to_string realized) (Model.to_string via));
    (* pull: [realizer] is realized by [via], and [via] cannot realize
       [realized] *)
    render_proof buf ~indent:(indent + 2) ~realized:realizer ~realizer:via realization;
    render_refutation buf ~indent:(indent + 2) ~realized ~realizer:via refutation

let explain t ~realized ~realizer =
  let buf = Buffer.create 512 in
  let c = cell t ~realized ~realizer in
  Buffer.add_string buf
    (Fmt.str "%s realized by %s: cell %S\n" (Model.to_string realized)
       (Model.to_string realizer)
       (if Model.equal realized realizer then "-" else cell_string c));
  (match proof t ~realized ~realizer with
  | Some p ->
    Buffer.add_string buf (Fmt.str "lower bound (level %d):\n" c.proven);
    render_proof buf ~indent:2 ~realized ~realizer p
  | None -> Buffer.add_string buf "no realization proven\n");
  (match refutation t ~realized ~realizer with
  | Some r ->
    Buffer.add_string buf (Fmt.str "upper bound (level %d disproven):\n" c.disproven);
    render_refutation buf ~indent:2 ~realized ~realizer r
  | None -> Buffer.add_string buf "no refutation known\n");
  Buffer.contents buf
