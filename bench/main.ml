(* Benchmark & reproduction harness.

   Regenerates every table and figure of the paper (see DESIGN.md's
   per-experiment index and EXPERIMENTS.md for paper-vs-measured):

   - FIG1-2: the transitivity rules, shown as the closure's derivation gain;
   - FIG3/FIG4: the realization matrices, derived from the foundational
     facts and diffed against the transcribed paper tables;
   - EX-A1 (Fig. 5): DISAGREE's per-model oscillation/convergence verdicts;
   - EX-A2 (Fig. 6): the 13-step REO trace, the REO/REF oscillation, and
     exhaustive convergence of the polling models;
   - EX-A3/A4/A5 (Figs. 7-9): the traces and the machine-checked
     impossibility results (Props. 3.10-3.13);
   - EX-A6: the multi-node-activation oscillation;
   - BGP: convergence cost across BGP deployment presets and topology sizes
     (extension experiment motivated by Secs. 2.3 and 4);
   - Bechamel micro-benchmarks of every subsystem.

   Set DEEP=0 in the environment to skip the two slow exhaustive
   model-checking runs (FIG6 under R1A and RMA, ~90s). *)

open Spp
open Engine
open Realization

(* Harness model names are literals; a typo exits 2 with the valid names
   rather than raising a bare [Invalid_argument] out of [Option.get]. *)
let model s =
  match Model.of_string s with
  | Some m -> m
  | None ->
    Printf.eprintf "bench: unknown model name %S (expected one of %s)\n" s
      (String.concat ", " (List.map Model.to_string Model.all));
    exit 2
let section title = Format.printf "@.=============== %s ===============@." title

let deep = Explore_bench.deep_env ()

(* ------------------------------------------------------------------ *)

let fig_1_2 () =
  section "FIG 1-2: transitivity rules (Sec. 3.4)";
  let base_positives = List.length Facts.positives in
  let base_negatives = List.length Facts.negatives in
  let closure = Closure.derive_exn () in
  let proven, disproven =
    List.fold_left
      (fun (p, d) (a, b, (c : Closure.cell)) ->
        if Model.equal a b then (p, d)
        else
          ((if c.Closure.proven > 0 then p + 1 else p),
           if c.Closure.disproven < 5 then d + 1 else d))
      (0, 0) (Closure.cells closure)
  in
  Format.printf
    "foundational facts: %d positive, %d negative@.after closure: %d/552 pairs with a \
     proven realization level, %d/552 with a disproven level@."
    base_positives base_negatives proven disproven;
  closure

let derivations closure =
  section "DERIVATIONS: the four cells sharpened beyond the published tables";
  List.iter
    (fun (a, b) ->
      print_string
        (Closure.explain closure ~realized:(model a) ~realizer:(model b));
      print_newline ())
    [ ("U1O", "R1O"); ("U1O", "RMO"); ("UMO", "R1O"); ("UMO", "RMO") ]

let figs_3_4 closure =
  section "FIG 3: realization matrix, reliable realizers";
  print_string (Closure.render closure ~realizers:Model.reliable);
  section "FIG 4: realization matrix, unreliable realizers";
  print_string (Closure.render closure ~realizers:Model.unreliable);
  section "FIG 3-4 vs. the paper";
  print_string (Paper_tables.summary closure);
  let written = Export.write_all closure ~dir:"results" in
  Format.printf "markdown artifacts: %s@." (String.concat ", " written)

(* ------------------------------------------------------------------ *)

let verdict_line inst m =
  let t0 = Unix.gettimeofday () in
  let v = Modelcheck.Oscillation.analyze inst m in
  let extra =
    match v with
    | Modelcheck.Oscillation.Oscillates w ->
      if Modelcheck.Oscillation.verify_witness inst m w then " [witness replays]"
      else " [WITNESS FAILED]"
    | _ -> ""
  in
  Format.printf "  %-4s %a%s (%.2fs)@." (Model.to_string m)
    Modelcheck.Oscillation.pp_verdict v extra
    (Unix.gettimeofday () -. t0);
  Format.print_flush ()

let ex_a1 () =
  section "EX A.1 (Fig. 5): DISAGREE";
  let inst = Gadgets.disagree in
  Format.printf "%a@." Instance.pp inst;
  Format.printf "stable solutions: %d; dispute wheel: %b@."
    (Solver.count_solutions inst) (Dispute.has_wheel inst);
  Format.printf "per-model verdicts (exhaustive, channel bound 4):@.";
  List.iter (verdict_line inst) Model.all

let poll1 inst c =
  let v = Gadgets.node inst c in
  Activation.single v
    (List.map
       (fun ch -> Activation.read ~count:(Activation.Finite 1) ch)
       (Model.required_channels inst v))

let ex_a2 () =
  section "EX A.2 (Fig. 6): REO/REF vs the polling models";
  let inst = Gadgets.fig6 in
  Format.printf "%a@." Instance.pp inst;
  let entries =
    List.map (poll1 inst) [ 'd'; 'x'; 'a'; 'u'; 'v'; 'y'; 'a'; 'u'; 'v'; 'z'; 'a'; 'v'; 'u' ]
  in
  let tr = Executor.run_entries ~validate:(model "REO") inst entries in
  Format.printf "the paper's 13-step REO prefix:@.%s@." (Trace.paper_table tr);
  let cycle = List.map (poll1 inst) [ 'v'; 'u'; 'a'; 'x'; 'y'; 'z'; 'd' ] in
  List.iter
    (fun mname ->
      let r =
        Executor.run ~validate:(model mname) ~max_steps:500 inst
          (Scheduler.prefixed entries cycle)
      in
      Format.printf "continuing with the fair cycle under %s: %a@." mname Executor.pp_stop
        r.Executor.stop)
    [ "REO"; "REF" ];
  Format.printf "polling models (exhaustive):@.";
  verdict_line inst (model "REA");
  if deep then begin
    verdict_line inst (model "R1A");
    verdict_line inst (model "RMA")
  end
  else
    Format.printf
      "  (R1A/RMA skipped: DEEP=0; both verify as convergent, see EXPERIMENTS.md)@."

let refute_line name inst m level ~termination ~target =
  let t0 = Unix.gettimeofday () in
  let r = Modelcheck.Refute.realizable ~termination inst m level ~target in
  Format.printf "  %-28s %a (%.2fs)@." name Modelcheck.Refute.pp_result r
    (Unix.gettimeofday () -. t0);
  Format.print_flush ()

let ex_a3 () =
  section "EX A.3 (Fig. 7): Prop. 3.10 - REO not exactly realizable in R1O";
  let inst = Gadgets.fig7 in
  let entries =
    List.map (poll1 inst) [ 'd'; 'b'; 'u'; 'v'; 'a'; 'u'; 'v'; 's'; 's'; 's' ]
  in
  let tr = Executor.run_entries ~validate:(model "REO") inst entries in
  Format.printf "REO execution:@.%s@." (Trace.paper_table tr);
  let target = Trace.assignments ~include_initial:true tr in
  refute_line "exact in R1O (w/ fairness)" inst (model "R1O") Relation.Exact
    ~termination:Modelcheck.Refute.Forever ~target;
  refute_line "subsequence in R1O" inst (model "R1O") Relation.Subsequence
    ~termination:Modelcheck.Refute.Prefix ~target;
  refute_line "exact in RMS" inst (model "RMS") Relation.Exact
    ~termination:Modelcheck.Refute.Prefix ~target

let ex_a4 () =
  section "EX A.4 (Fig. 8): Prop. 3.11 - REA not realizable with repetition in R1O";
  let inst = Gadgets.fig8 in
  let entries =
    List.map (fun c -> Activation.poll_all inst (Gadgets.node inst c))
      [ 'd'; 'a'; 'u'; 'b'; 'u'; 's' ]
  in
  let tr = Executor.run_entries ~validate:(model "REA") inst entries in
  Format.printf "REA execution:@.%s@." (Trace.paper_table tr);
  let target = Trace.assignments ~include_initial:true tr in
  refute_line "with repetition in R1O" inst (model "R1O") Relation.Repetition
    ~termination:Modelcheck.Refute.Prefix ~target;
  (match
     Modelcheck.Refute.realizable inst (model "R1O") Relation.Subsequence ~target
   with
  | Modelcheck.Refute.Realizable schedule ->
    let tr' = Executor.run_entries ~validate:(model "R1O") inst schedule in
    Format.printf "  subsequence realization found (the paper's 'insert suad'):@.%s@."
      (Trace.paper_table tr')
  | r -> Format.printf "  subsequence in R1O: %a@." Modelcheck.Refute.pp_result r)

let ex_a5 () =
  section "EX A.5 (Fig. 9): Props. 3.12/3.13 - REA not exactly realizable in R1S";
  let inst = Gadgets.fig9 in
  let entries =
    List.map (fun c -> Activation.poll_all inst (Gadgets.node inst c))
      [ 'd'; 'b'; 'c'; 'x'; 's'; 'a'; 'c'; 's' ]
  in
  let tr = Executor.run_entries ~validate:(model "REA") inst entries in
  Format.printf "REA execution:@.%s@." (Trace.paper_table tr);
  let target = Trace.assignments ~include_initial:true tr in
  refute_line "exact in R1S" inst (model "R1S") Relation.Exact
    ~termination:Modelcheck.Refute.Prefix ~target;
  refute_line "with repetition in R1S" inst (model "R1S") Relation.Repetition
    ~termination:Modelcheck.Refute.Prefix ~target

let ex_a6 () =
  section "EX A.6: multi-node activations (R1A with |U| > 1)";
  let inst = Gadgets.disagree in
  let x = Gadgets.node inst 'x' and y = Gadgets.node inst 'y' in
  let read_all a b =
    Activation.read ~count:Activation.All
      (Channel.id ~src:(Gadgets.node inst a) ~dst:(Gadgets.node inst b))
  in
  let both_from_d =
    Activation.entry ~active:[ x; y ] ~reads:[ read_all 'd' 'x'; read_all 'd' 'y' ]
  in
  let both_cross =
    Activation.entry ~active:[ x; y ] ~reads:[ read_all 'y' 'x'; read_all 'x' 'y' ]
  in
  let d_entry = Activation.single (Gadgets.node inst 'd') [ read_all 'x' 'd' ] in
  let entries = [ d_entry; both_from_d; both_cross; both_from_d; both_cross ] in
  assert (List.for_all (Model.validates_multi inst (model "R1A")) entries);
  let tr = Executor.run_entries inst entries in
  Format.printf "simultaneous-activation schedule:@.%s@." (Trace.paper_table tr);
  let r =
    Executor.run ~max_steps:100 inst
      (Scheduler.prefixed [ d_entry ] [ both_from_d; both_cross ])
  in
  Format.printf "continuing forever: %a (polling with |U|>1 CAN oscillate)@."
    Executor.pp_stop r.Executor.stop

(* ------------------------------------------------------------------ *)

let bgp_experiment () =
  section "BGP: deployment presets on Gao-Rexford hierarchies";
  Format.printf "%-42s %-6s %-10s %-8s %-9s@." "configuration" "model" "converged" "steps"
    "messages";
  List.iter
    (fun seed ->
      let topo = Bgp.Topology.generate { Bgp.Topology.default_config with seed } in
      let dest = Bgp.Topology.size topo - 1 in
      Format.printf "-- topology seed %d (%d ASes, dispute wheel: %b)@." seed
        (Bgp.Topology.size topo)
        (Dispute.has_wheel (Bgp.Policy.compile topo ~dest));
      List.iter
        (fun (name, cfg) ->
          let m = Bgp.Config_map.model_of cfg in
          let r = Bgp.Simulate.run topo ~dest ~model:m ~scheduler:Scheduler.round_robin in
          Format.printf "%-42s %-6s %-10b %-8d %-9d@." name (Model.to_string m)
            r.Bgp.Simulate.converged r.Bgp.Simulate.steps r.Bgp.Simulate.messages)
        Bgp.Config_map.presets)
    [ 1; 2 ];
  section "BGP: convergence cost vs topology size (extension figure)";
  Format.printf "%-8s %-8s %-22s %-22s %-22s@." "ASes" "paths" "R1O steps/msgs"
    "RMS steps/msgs" "REA steps/msgs";
  List.iter
    (fun (t2, stubs) ->
      let topo =
        Bgp.Topology.generate { Bgp.Topology.tier1 = 2; tier2 = t2; stubs; seed = 5 }
      in
      let dest = Bgp.Topology.size topo - 1 in
      let inst = Bgp.Policy.compile topo ~dest in
      let cell mname =
        let r =
          Bgp.Simulate.run topo ~dest ~model:(model mname) ~scheduler:Scheduler.round_robin
        in
        Printf.sprintf "%d/%d%s" r.Bgp.Simulate.steps r.Bgp.Simulate.messages
          (if r.Bgp.Simulate.converged then "" else " (!)")
      in
      Format.printf "%-8d %-8d %-22s %-22s %-22s@." (Bgp.Topology.size topo)
        (List.length (Instance.all_permitted inst))
        (cell "R1O") (cell "RMS") (cell "REA");
      Format.print_flush ())
    [ (2, 3); (3, 6); (4, 10); (5, 14); (6, 18) ]

(* ------------------------------------------------------------------ *)

let mixed_models () =
  section "SEC 5 EXTENSION: mixed per-node models on DISAGREE";
  let inst = Gadgets.disagree in
  let x = Gadgets.node inst 'x' and y = Gadgets.node inst 'y' in
  Format.printf "(d always polls; exhaustive verdicts)@.";
  Format.printf "  %-6s %-6s verdict@." "x" "y";
  List.iter
    (fun (mx, my) ->
      let hetero =
        Hetero.of_list ~default:(model "REA") [ (x, model mx); (y, model my) ]
      in
      let v = Modelcheck.Oscillation.analyze_hetero inst hetero in
      Format.printf "  %-6s %-6s %a@." mx my Modelcheck.Oscillation.pp_verdict v)
    [
      ("REA", "REA"); ("RMA", "REA"); ("REA", "R1O"); ("R1O", "REA");
      ("RMS", "REA"); ("RMA", "R1O"); ("R1O", "R1O");
    ];
  Format.printf "=> the polling guarantee needs EVERY contested node to poll.@.";
  section "SEC 5 EXTENSION: multi-node activation (synchronous rounds)";
  List.iter
    (fun (name, inst) ->
      let r = Executor.run ~max_steps:200 inst (Multi.synchronous_polling inst) in
      Format.printf "  %-13s synchronous polling: %a@." name Executor.pp_stop
        r.Executor.stop)
    [ ("DISAGREE", Gadgets.disagree); ("GOOD-GADGET", Gadgets.good_gadget);
      ("FIG6", Gadgets.fig6) ]

let ablation () =
  section "ABLATION: convergence cost across the 24 models";
  Format.printf
    "random fair schedules (5 seeds) on GOOD-GADGET and a 12-AS Gao-Rexford instance@.";
  let bgp_topo = Bgp.Topology.generate { Bgp.Topology.default_config with tier2 = 4; stubs = 6; seed = 3 } in
  let bgp_inst = Bgp.Policy.compile bgp_topo ~dest:(Bgp.Topology.size bgp_topo - 1) in
  let seeds = [ 1; 2; 3; 4; 5 ] in
  Format.printf "  %-5s %-34s %-34s@." "model" "GOOD-GADGET (steps/msgs mean)"
    "BGP-12 (steps/msgs mean)";
  List.iter
    (fun m ->
      let cell inst =
        let s =
          Stats.across_seeds ~max_steps:20_000 inst
            ~scheduler:(fun ~seed -> Scheduler.random inst m ~seed)
            ~seeds
        in
        Printf.sprintf "%.0f/%.0f%s%s" s.Stats.mean_steps s.Stats.mean_messages
          (if s.Stats.all_converged then "" else " (!)")
          (if s.Stats.stale_runs > 0 then Printf.sprintf " [%d stale]" s.Stats.stale_runs
           else "")
      in
      Format.printf "  %-5s %-34s %-34s@." (Model.to_string m) (cell Gadgets.good_gadget)
        (cell bgp_inst);
      Format.print_flush ())
    Model.all

let failure_experiment () =
  section "BGP: link failure and warm re-convergence (extension)";
  Format.printf
    "after convergence, one transit link is severed; warm = continue from the\n\
     converged state, cold = re-run the failed topology from scratch@.";
  Format.printf "  %-6s %-6s %-22s %-22s %-10s %-6s@." "seed" "model" "warm steps/msgs"
    "cold steps/msgs" "rerouted" "lost";
  List.iter
    (fun seed ->
      let topo = Bgp.Topology.generate { Bgp.Topology.default_config with seed } in
      let dest = Bgp.Topology.size topo - 1 in
      List.iter
        (fun mname ->
          let m = model mname in
          let inst = Bgp.Policy.compile topo ~dest in
          let r0 = Executor.run ~validate:m inst (Scheduler.round_robin inst m) in
          let final = Trace.final r0.Executor.trace in
          let before = State.assignment inst final in
          let link =
            (* sever a link actually carried by someone's route *)
            let v =
              List.find
                (fun v ->
                  v <> dest
                  && Spp.Path.length (Spp.Assignment.get before v) >= 2)
                (Instance.nodes inst)
            in
            (v, Option.get (Spp.Path.next_hop (Spp.Assignment.get before v)))
          in
          let topo', event = Bgp.Failure.sever topo ~dest ~state:final ~link in
          let warm = Bgp.Failure.reconverge event ~before ~model:m in
          let cold = Bgp.Simulate.run topo' ~dest ~model:m ~scheduler:Scheduler.round_robin in
          Format.printf "  %-6d %-6s %-22s %-22s %-10d %-6d@." seed mname
            (Printf.sprintf "%d/%d%s" warm.Bgp.Failure.steps warm.Bgp.Failure.messages
               (if warm.Bgp.Failure.converged then "" else " (!)"))
            (Printf.sprintf "%d/%d%s" cold.Bgp.Simulate.steps cold.Bgp.Simulate.messages
               (if cold.Bgp.Simulate.converged then "" else " (!)"))
            warm.Bgp.Failure.rerouted warm.Bgp.Failure.lost)
        [ "R1O"; "RMS"; "REA" ])
    [ 4; 5 ]

let mrai_experiment () =
  section "SEC 4 EXTENSION: MRAI-style batching (timed simulator)";
  Format.printf
    "batch-mode runs with uniform per-node timers and heterogeneous link delays (1-6 ticks)@.";
  List.iter
    (fun (name, inst) ->
      Format.printf "-- %s@." name;
      Format.printf "   %-6s %-12s %-12s %-10s %-12s@." "MRAI" "finish-time"
        "last-change" "messages" "activations";
      List.iter
        (fun (interval, (r : Timed.result)) ->
          Format.printf "   %-6d %-12d %-12d %-10d %-12d%s@." interval r.Timed.finish_time
            r.Timed.last_change r.Timed.messages r.Timed.activations
            (if r.Timed.converged then "" else "  (did not converge)"))
        (Timed.mrai_sweep ~link_delay:(Timed.spread_delays inst) inst);
      let ev =
        Timed.run
          ~config:
            {
              Timed.default with
              Timed.mode = Timed.Event_driven;
              Timed.link_delay = Timed.spread_delays inst;
            }
          inst
      in
      Format.printf "   %-6s %-12d %-12d %-10d %-12d%s@." "event" ev.Timed.finish_time
        ev.Timed.last_change ev.Timed.messages ev.Timed.activations
        (if ev.Timed.converged then "" else "  (did not converge)"))
    [
      ( "BGP hierarchy (12 ASes)",
        let topo =
          Bgp.Topology.generate
            { Bgp.Topology.default_config with tier2 = 4; stubs = 6; seed = 9 }
        in
        Bgp.Policy.compile topo ~dest:(Bgp.Topology.size topo - 1) );
      ("GOOD-GADGET", Gadgets.good_gadget);
      ("SHORTEST-PATHS (6 nodes)", Gadgets.shortest_paths ~n:5);
    ]

let state_space_sizes () =
  section "STATE SPACES: bounded reachable states per model (channel bound 4)";
  Format.printf "  %-5s %-12s %-12s@." "model" "DISAGREE" "GOOD-GADGET";
  List.iter
    (fun m ->
      let size inst = Array.length (Modelcheck.Explore.explore inst m).Modelcheck.Explore.states in
      Format.printf "  %-5s %-12d %-12d@." (Model.to_string m) (size Gadgets.disagree)
        (size Gadgets.good_gadget);
      Format.print_flush ())
    Model.all

let fact_audit () =
  section "FACT AUDIT: machine evidence for every foundational fact";
  let pos = Modelcheck.Audit.positives () in
  Format.printf "positive facts (constructive transforms):@.%s" (Modelcheck.Audit.summary pos);
  let neg = Modelcheck.Audit.negatives ~deep () in
  Format.printf "negative facts (witnesses, exhaustive verdicts, refutations):@.%s"
    (Modelcheck.Audit.summary neg)

let reachable_solutions () =
  section "REACHABLE SOLUTIONS: where executions can end";
  Format.printf
    "stale = quiescent dead ends of executions whose final drops violate fairness@.";
  Format.printf "  %-13s %-10s %-6s %-10s %-6s@." "instance" "solutions" "model"
    "reachable" "stale";
  List.iter
    (fun (name, inst, unreliable) ->
      let total = Solver.count_solutions inst in
      List.iter
        (fun mname ->
          let n = Modelcheck.Quiescence.solution_count inst (model mname) in
          let stale =
            List.length (Modelcheck.Quiescence.stale_quiescent_assignments inst (model mname))
          in
          Format.printf "  %-13s %-10d %-6s %-10d %-6d@." name total mname n stale;
          Format.print_flush ())
        ([ "R1O"; "REO"; "REA" ] @ unreliable))
    [
      ("DISAGREE", Gadgets.disagree, [ "U1O"; "UMS" ]);
      ("GOOD-GADGET", Gadgets.good_gadget, [ "U1O"; "UMS" ]);
      (* the unreliable queueing space of BAD-GADGET is huge; UEA shows the
         same stale-dead-end phenomenon cheaply *)
      ("BAD-GADGET", Gadgets.bad_gadget, [ "UEA" ]);
    ]

let explore_bench () =
  section "EXPLORE BENCH: sequential vs parallel exploration (BENCH_explore.json)";
  let domains = Explore_bench.par_domains () in
  let results, failures = Explore_bench.emit ~path:"BENCH_explore.json" ~deep ~domains () in
  Explore_bench.pp_summary Format.std_formatter results;
  List.iter (fun f -> Format.printf "  FAIL: %s@." f) failures;
  Format.printf "wrote BENCH_explore.json (schema %s)@." Explore_bench.schema

let micro_benchmarks () =
  section "Bechamel micro-benchmarks";
  let open Bechamel in
  let fig6 = Gadgets.fig6 in
  let bgp_topo = Bgp.Topology.generate Bgp.Topology.default_config in
  let bgp_dest = Bgp.Topology.size bgp_topo - 1 in
  let random_inst = Generator.instance { Generator.default with nodes = 6; seed = 3 } in
  let tests =
    [
      Test.make ~name:"engine: 100-step RMS run on FIG6"
        (Staged.stage (fun () ->
             let sched = Scheduler.random fig6 (model "RMS") ~seed:1 in
             ignore (Executor.run ~max_steps:100 fig6 sched)));
      Test.make ~name:"closure: derive Figures 3-4"
        (Staged.stage (fun () -> ignore (Closure.derive_exn ())));
      Test.make ~name:"transform: RMA->R1O on 30-step FIG6 schedule"
        (Staged.stage
           (let entries = Scheduler.prefix 30 (Scheduler.random fig6 (model "RMA") ~seed:2) in
            let path =
              Option.get (Transform.route ~source:(model "RMA") ~target:(model "R1O"))
            in
            fun () -> ignore (Transform.apply_path path fig6 entries)));
      Test.make ~name:"solver: enumerate solutions (random 6-node instance)"
        (Staged.stage (fun () -> ignore (Solver.solutions random_inst)));
      Test.make ~name:"dispute-wheel detection (random 6-node instance)"
        (Staged.stage (fun () -> ignore (Dispute.find random_inst)));
      Test.make ~name:"modelcheck: DISAGREE under R1O"
        (Staged.stage (fun () ->
             ignore (Modelcheck.Oscillation.analyze Gadgets.disagree (model "R1O"))));
      Test.make ~name:"bgp: compile Gao-Rexford policies"
        (Staged.stage (fun () -> ignore (Bgp.Policy.compile bgp_topo ~dest:bgp_dest)));
      Test.make ~name:"bgp: RMS convergence on 9-AS hierarchy"
        (Staged.stage (fun () ->
             ignore
               (Bgp.Simulate.run bgp_topo ~dest:bgp_dest ~model:(model "RMS")
                  ~scheduler:Scheduler.round_robin)));
    ]
  in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.5) ~kde:None () in
  let raw =
    Benchmark.all cfg
      Toolkit.Instance.[ monotonic_clock ]
      (Test.make_grouped ~name:"commrouting" tests)
  in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name est acc ->
        let ns =
          match Analyze.OLS.estimates est with Some (e :: _) -> e | _ -> nan
        in
        (name, ns) :: acc)
      results []
  in
  List.iter
    (fun (name, ns) ->
      if Float.is_nan ns then Format.printf "  %-55s (no estimate)@." name
      else if ns > 1e9 then Format.printf "  %-55s %8.2f s/run@." name (ns /. 1e9)
      else if ns > 1e6 then Format.printf "  %-55s %8.2f ms/run@." name (ns /. 1e6)
      else if ns > 1e3 then Format.printf "  %-55s %8.2f us/run@." name (ns /. 1e3)
      else Format.printf "  %-55s %8.0f ns/run@." name ns)
    (List.sort compare rows)

let () =
  let t0 = Unix.gettimeofday () in
  let closure = fig_1_2 () in
  figs_3_4 closure;
  derivations closure;
  ex_a1 ();
  ex_a2 ();
  ex_a3 ();
  ex_a4 ();
  ex_a5 ();
  ex_a6 ();
  bgp_experiment ();
  failure_experiment ();
  mixed_models ();
  ablation ();
  mrai_experiment ();
  state_space_sizes ();
  reachable_solutions ();
  explore_bench ();
  fact_audit ();
  micro_benchmarks ();
  Format.printf "@.total harness time: %.1fs@." (Unix.gettimeofday () -. t0)
