(* Differential conformance driver: fuzz the Fig. 3/4 realization matrices
   against the engine (see lib/conformance/), replay the committed corpus,
   or regenerate the committed sample entries.  Exit code 0 means no drift
   was detected (skipped-as-inconclusive negatives do not fail the run).

   Every failure path raises a typed [failure]; the runner at the bottom
   of the file is the only place exit codes are decided. *)

type failure =
  | Usage of string  (** bad arguments or unreadable inputs: exit 2 *)
  | Gate of string option
      (** drift or replay failure: exit 1.  [None] when the failing path
          already printed its own diagnostics. *)

exception Fail of failure

let usagef fmt = Fmt.kstr (fun m -> raise (Fail (Usage m))) fmt

let ( / ) = Filename.concat

let json_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".json")
  |> List.sort String.compare

let replay_dir dir =
  let outcomes =
    List.map (fun f -> Conformance.replay_file (dir / f)) (json_files dir)
  in
  if outcomes = [] then usagef "no corpus entries in %s" dir;
  List.iter
    (fun (o : Conformance.Corpus.outcome) ->
      Fmt.pr "%s %s: %s@." (if o.ok then "ok  " else "FAIL") o.name o.detail)
    outcomes;
  let failed = List.filter (fun (o : Conformance.Corpus.outcome) -> not o.ok) outcomes in
  Fmt.pr "replayed %d corpus entries, %d failed@." (List.length outcomes)
    (List.length failed);
  if failed <> [] then raise (Fail (Gate None))

(* The committed sample corpus: one positive trial per realization level
   (expectations recorded from the actual verdict, so a drifting engine
   fails replay, not generation) and the fast appendix refutations. *)
let write_samples dir =
  Conformance.Trial.force_routes ();
  let level_fact level =
    List.find_opt
      (fun (f : Realization.Facts.positive) -> f.Realization.Facts.level = level)
      Realization.Facts.positives
  in
  List.iter
    (fun level ->
      match level_fact level with
      | None -> ()  (* no positive fact is stated at this level *)
      | Some f ->
      let inst_name, inst = List.hd (Conformance.Fuzz.instance_pool ~seeds:1) in
      let entries =
        Conformance.Fuzz.schedule inst f.Realization.Facts.realized ~seed:42
          ~len:10
      in
      let trial = Conformance.Trial.of_fact f ~inst_name inst entries in
      let expect =
        match Conformance.Trial.check_positive trial with
        | Conformance.Trial.Holds -> Conformance.Corpus.Expect_holds
        | Conformance.Trial.Violated v -> Conformance.Corpus.Expect_violated v
      in
      let name =
        Fmt.str "sample-%s-%s-realizes-%s"
          (Realization.Relation.to_string level)
          (Engine.Model.to_string f.Realization.Facts.realizer)
          (Engine.Model.to_string f.Realization.Facts.realized)
      in
      Conformance.Corpus.save (dir / (name ^ ".json"))
        (Conformance.Corpus.positive ~name ~expect trial);
      Fmt.pr "wrote %s@." (name ^ ".json"))
    Realization.Relation.[ Oscillation; Subsequence; Repetition; Exact ];
  List.iter
    (fun (n : Conformance.Trial.negative) ->
      match n.Conformance.Trial.check with
      | Conformance.Trial.Refutation r when n.Conformance.Trial.cost = Conformance.Trial.Fast ->
        let f = n.Conformance.Trial.fact in
        let name =
          Fmt.str "sample-refute-%s-%s-%s"
            (Engine.Model.to_string f.Realization.Facts.non_realizer)
            (Engine.Model.to_string f.Realization.Facts.target)
            (String.lowercase_ascii (Realization.Relation.to_string r.level))
        in
        let cfg = Modelcheck.Explore.default_config in
        Conformance.Corpus.save (dir / (name ^ ".json"))
          {
            Conformance.Corpus.name;
            case =
              Conformance.Corpus.Negative_refutation
                {
                  inst_name = r.inst_name;
                  inst = r.inst;
                  non_realizer = f.Realization.Facts.non_realizer;
                  target_model = f.Realization.Facts.target;
                  level = r.level;
                  termination = r.termination;
                  witness = r.witness;
                  channel_bound = cfg.Modelcheck.Explore.channel_bound;
                  max_states = cfg.Modelcheck.Explore.max_states;
                };
          };
        Fmt.pr "wrote %s@." (name ^ ".json")
      | _ -> ())
    (Conformance.Trial.negatives ())

let main () =
  let seeds = ref 5 in
  let budget = ref "default" in
  let domains = ref (Modelcheck.Explore.default_domains ()) in
  let emit = ref "" in
  let replay = ref "" in
  let samples = ref "" in
  let quiet = ref false in
  let checkpoint = ref "" in
  let checkpoint_every = ref 1 in
  let resume = ref false in
  let reduction = ref Modelcheck.Reduce.No_reduction in
  let spec =
    [
      ( "--seeds",
        Arg.Set_int seeds,
        "N generated instances joining the gadget pool (default 5)" );
      ( "--budget",
        Arg.Set_string budget,
        "smoke|default|deep negative-fact cost classes to run (default: default)" );
      ( "--domains",
        Arg.String
          (fun s ->
            if String.lowercase_ascii (String.trim s) = "auto" then
              domains := Modelcheck.Explore.auto_domains ()
            else
              match int_of_string_opt s with
              | Some d when d >= 1 -> domains := d
              | _ -> raise (Arg.Bad ("--domains expects an int >= 1 or \"auto\": " ^ s))),
        "N|auto worker domains for the positive sweep (default: DOMAINS env, 1 \
         otherwise; auto = recommended cores - 1)" );
      ("--emit", Arg.Set_string emit, "DIR serialize shrunk counterexamples to DIR");
      ( "--replay",
        Arg.Set_string replay,
        "DIR re-check every corpus entry in DIR and exit" );
      ( "--write-samples",
        Arg.Set_string samples,
        "DIR regenerate the committed sample corpus entries and exit" );
      ("--quiet", Arg.Set quiet, " suppress per-trial progress lines");
      ( "--reduction",
        Arg.String
          (fun s ->
            match Modelcheck.Reduce.of_string s with
            | Some Modelcheck.Reduce.Sym ->
              raise
                (Arg.Bad
                   "--reduction sym is not supported here: separation checks \
                    replay witnesses, which a symmetry quotient only preserves \
                    up to relabeling")
            | Some r -> reduction := r
            | None -> raise (Arg.Bad ("--reduction expects por|none: " ^ s))),
        "por|none state-space reduction for negative-check explorations \
         (default none)" );
      ( "--checkpoint",
        Arg.Set_string checkpoint,
        "PATH journal every finished trial to PATH, so a killed sweep can resume" );
      ( "--checkpoint-every",
        Arg.Set_int checkpoint_every,
        "N flush the journal to disk every N trials (default 1)" );
      ( "--resume",
        Arg.Set resume,
        " skip trials already recorded in the --checkpoint journal (same \
         seeds/budget only)" );
    ]
  in
  Arg.parse spec
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "conformance [options]";
  if !replay <> "" then replay_dir !replay
  else if !samples <> "" then write_samples !samples
  else begin
    let budget =
      match Conformance.Fuzz.budget_of_string !budget with
      | Some b -> b
      | None -> usagef "unknown budget %S (smoke|default|deep)" !budget
    in
    if !resume && !checkpoint = "" then
      usagef "--resume requires --checkpoint PATH";
    if !checkpoint_every < 1 then
      usagef "--checkpoint-every expects an int >= 1";
    let cfg =
      {
        Conformance.Fuzz.seeds = !seeds;
        budget;
        domains = !domains;
        reduction = !reduction;
        emit_dir = (if !emit = "" then None else Some !emit);
        journal = (if !checkpoint = "" then None else Some !checkpoint);
        journal_every = !checkpoint_every;
        resume = !resume;
        log = (if !quiet then ignore else fun s -> Fmt.epr "%s@." s);
      }
    in
    let report = Conformance.Fuzz.run cfg in
    Fmt.pr "%a" Conformance.Fuzz.pp_report report;
    if not (Conformance.Fuzz.ok report) then raise (Fail (Gate None))
  end

(* The only place exit codes are decided. *)
let () =
  match main () with
  | () -> ()
  | exception Fail (Usage m) ->
    Fmt.epr "conformance: %s@." m;
    exit 2
  | exception Fail (Gate (Some m)) ->
    Fmt.epr "conformance: %s@." m;
    exit 1
  | exception Fail (Gate None) -> exit 1
