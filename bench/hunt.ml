(* Adversarial divergence hunter driver: perturb convergent SPP instances
   and policies, statically prefilter, hunt survivors for model-dependent
   oscillations, shrink findings and emit them to a corpus directory; or
   replay a committed corpus.  Exit code 0 means the run completed and
   every requested gate held; 1 a gate or replay failed; 2 usage error.

   Every failure path raises a typed [failure]; the runner at the bottom
   of the file is the only place exit codes are decided. *)

module Json = Engine.Metrics.Json

type failure =
  | Usage of string  (** bad arguments or unreadable inputs: exit 2 *)
  | Gate of string option
      (** a requested gate failed: exit 1.  [None] when the failing path
          already printed its own diagnostics (replay summaries). *)

exception Fail of failure

let usagef fmt = Fmt.kstr (fun m -> raise (Fail (Usage m))) fmt
let gatef fmt = Fmt.kstr (fun m -> raise (Fail (Gate (Some m)))) fmt

let ( / ) = Filename.concat

let json_files dir =
  match Sys.readdir dir with
  | exception Sys_error e -> usagef "cannot read %s: %s" dir e
  | files ->
    Array.to_list files
    |> List.filter (fun f -> Filename.check_suffix f ".json")
    |> List.sort String.compare

let replay_dir dir =
  let outcomes = List.map (fun f -> Hunt.replay_file (dir / f)) (json_files dir) in
  if outcomes = [] then usagef "no corpus entries in %s" dir;
  List.iter
    (fun (o : Hunt.Corpus.outcome) ->
      Fmt.pr "%s %s: %s@." (if o.ok then "ok  " else "FAIL") o.name o.detail)
    outcomes;
  let failed = List.filter (fun (o : Hunt.Corpus.outcome) -> not o.ok) outcomes in
  Fmt.pr "replayed %d corpus entries, %d failed@." (List.length outcomes)
    (List.length failed);
  if failed <> [] then raise (Fail (Gate None))

(* ------------------------------------------------------------------ *)
(* Artifact: schema commrouting/hunt_run/v1.  Everything except wall_s
   and resumed is deterministic in (seeds, budget), which is what the
   kill-resume gate compares. *)

let artifact_of_report (r : Hunt.Search.report) ~wall_s =
  let outcome_json (o : Hunt.Search.outcome) =
    let base =
      [
        ("name", Json.Str o.Hunt.Search.name);
        ("seed", Json.Num (float_of_int o.Hunt.Search.seed));
        ("descr", Json.Str o.Hunt.Search.descr);
      ]
    in
    let status =
      match o.Hunt.Search.status with
      | Hunt.Search.Skipped_static reason ->
        [ ("status", Json.Str "skipped"); ("reason", Json.Str reason) ]
      | Hunt.Search.Explored verdicts ->
        [
          ("status", Json.Str "explored");
          ( "verdicts",
            Json.Obj
              (List.map
                 (fun (m, v) -> (Engine.Model.to_string m, Json.Str v))
                 verdicts) );
        ]
    in
    let finding =
      match o.Hunt.Search.finding with
      | None -> [ ("finding", Json.Null) ]
      | Some f ->
        [
          ( "finding",
            Json.Obj
              [
                ("name", Json.Str f.Hunt.Corpus.name);
                ("kind", Json.Str (Hunt.Corpus.kind_string f.Hunt.Corpus.kind));
                ("nodes", Json.Num (float_of_int (Spp.Instance.size f.Hunt.Corpus.inst)));
                ( "edges",
                  Json.Num
                    (float_of_int
                       (List.length (Spp.Instance.edges f.Hunt.Corpus.inst))) );
              ] );
        ]
    in
    Json.Obj (base @ status @ finding)
  in
  Json.Obj
    [
      ("schema", Json.Str "commrouting/hunt_run/v1");
      ("seeds", Json.Num (float_of_int r.Hunt.Search.seeds));
      ("budget", Json.Str (Hunt.Search.budget_to_string r.Hunt.Search.budget));
      ( "models",
        Json.List
          (List.map
             (fun m -> Json.Str (Engine.Model.to_string m))
             r.Hunt.Search.checked_models) );
      ( "channel_bound",
        Json.Num
          (float_of_int r.Hunt.Search.config.Modelcheck.Explore.channel_bound) );
      ( "max_states",
        Json.Num (float_of_int r.Hunt.Search.config.Modelcheck.Explore.max_states)
      );
      ("candidates", Json.Num (float_of_int (Hunt.Search.candidates_total r)));
      ("skipped_static", Json.Num (float_of_int (Hunt.Search.skipped_static r)));
      ("explored", Json.Num (float_of_int (Hunt.Search.explored r)));
      ( "findings",
        Json.Num (float_of_int (List.length (Hunt.Search.findings r))) );
      ("skip_ratio", Json.Num (Hunt.Search.skip_ratio r));
      ("resumed", Json.Num (float_of_int (Hunt.Search.resumed r)));
      ("outcomes", Json.List (List.map outcome_json r.Hunt.Search.outcomes));
      ("wall_s", Json.Num wall_s);
    ]

(* Scrub the measurement fields a kill-resume comparison must ignore:
   wall-clock time and how many candidates came from the journal. *)
let rec scrub = function
  | Json.Obj fields ->
    Json.Obj
      (List.filter_map
         (fun (k, v) ->
           if k = "wall_s" || k = "resumed" then None else Some (k, scrub v))
         fields)
  | Json.List l -> Json.List (List.map scrub l)
  | v -> v

let compare_ignoring_timings a b =
  let load path =
    match In_channel.with_open_bin path In_channel.input_all with
    | exception Sys_error e -> usagef "cannot read %s: %s" path e
    | contents -> (
      match Json.parse (String.trim contents) with
      | Ok j -> j
      | Error e -> usagef "%s: %s" path e)
  in
  let ja = scrub (load a) and jb = scrub (load b) in
  if ja = jb then Fmt.pr "artifacts agree (ignoring timings)@."
  else gatef "%s and %s disagree beyond timings" a b

let main () =
  let seeds = ref 5 in
  let budget = ref "smoke" in
  let domains = ref (Modelcheck.Explore.default_domains ()) in
  let emit = ref "" in
  let out = ref "" in
  let replay = ref "" in
  let checkpoint = ref "" in
  let checkpoint_every = ref 1 in
  let resume = ref false in
  let quiet = ref false in
  let min_findings = ref 0 in
  let min_skip_ratio = ref 0. in
  let compare_args = ref [] in
  let spec =
    [
      ( "--seeds",
        Arg.Set_int seeds,
        "N perturbation-candidate batches to generate (default 5)" );
      ( "--budget",
        Arg.Set_string budget,
        "smoke|default|deep explorer budget class (default: smoke)" );
      ( "--domains",
        Arg.String
          (fun s ->
            if String.lowercase_ascii (String.trim s) = "auto" then
              domains := Modelcheck.Explore.auto_domains ()
            else
              match int_of_string_opt s with
              | Some d when d >= 1 -> domains := d
              | _ ->
                raise (Arg.Bad ("--domains expects an int >= 1 or \"auto\": " ^ s))),
        "N|auto pool workers checking candidates (default: DOMAINS env, 1 \
         otherwise)" );
      ( "--emit",
        Arg.Set_string emit,
        "DIR serialize shrunk findings to DIR (atomic writes)" );
      ("-o", Arg.Set_string out, "PATH write the run artifact JSON to PATH");
      ( "--replay",
        Arg.Set_string replay,
        "DIR re-check every corpus entry in DIR and exit" );
      ( "--checkpoint",
        Arg.Set_string checkpoint,
        "PATH journal every finished candidate to PATH, so a killed hunt can \
         resume" );
      ( "--checkpoint-every",
        Arg.Set_int checkpoint_every,
        "N flush the journal to disk every N candidates (default 1)" );
      ( "--resume",
        Arg.Set resume,
        " skip candidates already recorded in the --checkpoint journal (same \
         seeds/budget only)" );
      ("--quiet", Arg.Set quiet, " suppress per-candidate progress lines");
      ( "--min-findings",
        Arg.Set_int min_findings,
        "N exit 1 unless at least N findings were made (default 0)" );
      ( "--min-skip-ratio",
        Arg.Set_float min_skip_ratio,
        "X exit 1 unless the static prefilter skipped at least fraction X of \
         candidates (default 0)" );
      ( "--compare-ignoring-timings",
        Arg.Rest (fun a -> compare_args := a :: !compare_args),
        "A B compare two run artifacts, ignoring wall times and resume \
         counts; exit 0 iff they agree" );
    ]
  in
  Arg.parse spec
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "hunt [options]";
  match List.rev !compare_args with
  | [ a; b ] -> compare_ignoring_timings a b
  | _ :: _ -> usagef "--compare-ignoring-timings expects exactly two paths"
  | [] ->
  if !replay <> "" then replay_dir !replay
  else
  let budget =
    match Hunt.Search.budget_of_string !budget with
    | Some b -> b
    | None -> usagef "unknown budget %S (smoke|default|deep)" !budget
  in
  if !resume && !checkpoint = "" then usagef "--resume requires --checkpoint PATH";
  if !checkpoint_every < 1 then usagef "--checkpoint-every expects an int >= 1";
  if !seeds < 1 then usagef "--seeds expects an int >= 1";
  let cfg =
    {
      Hunt.Search.seeds = !seeds;
      budget;
      domains = !domains;
      emit_dir = (if !emit = "" then None else Some !emit);
      journal = (if !checkpoint = "" then None else Some !checkpoint);
      journal_every = !checkpoint_every;
      resume = !resume;
      log = (if !quiet then ignore else fun s -> Fmt.epr "%s@." s);
    }
  in
  let t0 = Unix.gettimeofday () in
  let report = Hunt.Search.run cfg in
  let wall_s = Unix.gettimeofday () -. t0 in
  Fmt.pr "%a@." Hunt.Search.pp_report report;
  if !out <> "" then begin
    Engine.Snapshot.write_atomic !out
      (Json.to_string (artifact_of_report report ~wall_s) ^ "\n");
    Fmt.pr "wrote %s@." !out
  end;
  let nfindings = List.length (Hunt.Search.findings report) in
  let ratio = Hunt.Search.skip_ratio report in
  if nfindings < !min_findings then
    gatef "only %d finding(s), --min-findings %d" nfindings !min_findings;
  if ratio < !min_skip_ratio then
    gatef "static skip ratio %.2f below --min-skip-ratio %.2f" ratio
      !min_skip_ratio

(* The only place exit codes are decided. *)
let () =
  match main () with
  | () -> ()
  | exception Fail (Usage m) ->
    Fmt.epr "hunt: %s@." m;
    exit 2
  | exception Fail (Gate (Some m)) ->
    Fmt.epr "hunt: %s@." m;
    exit 1
  | exception Fail (Gate None) -> exit 1
