(* Partitioned internet-scale BGP sweep: the sharded simulator
   (Bgp.Shard) over generated AS hierarchies, emitting the committed
   machine-readable artifact results/BENCH_bgp.json (schema
   commrouting/bench_bgp/v1).

   Sections:
   - "topologies": the generated graphs (node/link counts, digest) and
     the partition quality at the swept shard count (cut edges,
     imbalance).
   - "parity": on a small topology every sampled (model, shard count)
     run is checked against the legacy engine pipeline (Simulate.run on
     the compiled SPP instance).  Wheel-free Gao-Rexford instances have
     a unique stable solution, so the final assignments must be equal —
     any mismatch fails the run.
   - "cases": the scaled sweep.  Per (topology, model, shards):
     convergence, epochs, activation/message/flush/drop counts and the
     route digest.  All of it is deterministic — independent of worker
     count and machine — so CI regenerates the artifact and diffs it
     against the committed one with --compare-ignoring-timings.  Within
     a (topology, model) the route digests of every shard count must
     agree (the K-shard fixpoint is the 1-shard fixpoint).
   - "speedup": wall-clock of the K-shard parallel run against the
     1-shard run, per model on the largest topology.  Volatile (timing),
     and honest: when the worker pool never engages (1 worker or 1 core)
     the artifact carries degraded=true and --min-speedup does not
     gate — a 1-core container records its truth instead of fabricating
     a speedup.

   A killed sweep resumes: --checkpoint journals each finished case
   (conformance's Generic journal: append-only, crash-tolerant,
   fingerprinted by the sweep configuration) and --resume replays the
   journal instead of re-running finished cases. *)

open Engine
module Json = Metrics.Json
module Journal = Conformance.Journal.Generic

let schema = "commrouting/bench_bgp/v1"
let journal_magic = "commrouting/bench_bgp_journal/v1"

(* Every failure path raises a typed [failure]; the runner at the bottom
   of the file is the only place exit codes are decided. *)
type failure =
  | Usage of string  (** bad command line: message + usage text, exit 2 *)
  | Input of string  (** unreadable or foreign artifact: exit 2, no usage dump *)
  | Gate of string option
      (** a sweep invariant failed: exit 1.  [None] when the failing path
          already printed its own diagnostics. *)

exception Fail of failure

let inputf fmt = Fmt.kstr (fun m -> raise (Fail (Input m))) fmt
let gatef fmt = Fmt.kstr (fun m -> raise (Fail (Gate (Some m)))) fmt

(* ------------------------------------------------------------------ *)
(* Budgets. *)

type budget = Smoke | Default | Deep

let budget_name = function Smoke -> "smoke" | Default -> "default" | Deep -> "deep"

let scaled_small =
  { Bgp.Topology.s_tier1 = 4; s_tier2 = 40; s_stubs = 400; s_peer_links = 30; s_seed = 3 }

let scaled_10k = Bgp.Topology.default_scaled_config

let scaled_100k =
  { Bgp.Topology.default_scaled_config with s_tier2 = 4_000; s_stubs = 96_000; s_peer_links = 2_000 }

(* The 100k block samples the corners of the model grid (both
   reliability rows, the O/S/A message columns across neighbor minors)
   rather than all 24; the 10k block covers the full grid. *)
let corner_models =
  List.filter_map Model.of_string [ "R1O"; "RMS"; "REA"; "RMA"; "U1O"; "UMS"; "UEA"; "UMA" ]

(* (tag, config) blocks per budget; every block is swept over the model
   list with shard counts [1; K]. *)
let blocks budget =
  match budget with
  | Smoke -> [ ("scaled-small", scaled_small, Model.all) ]
  | Default -> [ ("scaled-10k", scaled_10k, Model.all) ]
  | Deep -> [ ("scaled-10k", scaled_10k, Model.all); ("scaled-100k", scaled_100k, corner_models) ]

let default_shards = function Smoke -> 2 | Default | Deep -> 8

(* ------------------------------------------------------------------ *)
(* Cases. *)

type case = {
  topology : string;
  model : Model.t;
  shards : int;
  batching : string;
  lossy_every : int;
  converged : bool;
  epochs : int;
  activations : int;
  messages : int;
  cross_messages : int;
  flushes : int;
  drops : int;
  digest : string;
  pool_engaged : bool;
  wall_s : float;
}

let batching_name = function
  | Bgp.Shard.Per_epoch -> "epoch"
  | Bgp.Shard.Every n -> string_of_int n

let run_case ~workers ~seed ~batch ~repeat tag topo model shards =
  let cfg =
    { (Bgp.Shard.config_for ~shards ~workers ?batching:batch model) with Bgp.Shard.seed }
  in
  let best_wall = ref infinity and result = ref None in
  for _ = 1 to max 1 repeat do
    let t0 = Unix.gettimeofday () in
    let r = Bgp.Shard.run cfg topo ~dest:(Bgp.Topology.size topo - 1) in
    let wall = Unix.gettimeofday () -. t0 in
    if wall < !best_wall then best_wall := wall;
    match !result with
    | None -> result := Some r
    | Some prev ->
      (* repeats must be bit-identical; anything else is a determinism bug *)
      if Bgp.Shard.route_digest prev <> Bgp.Shard.route_digest r then
        gatef "nondeterministic repeat on %s/%s/%d" tag (Model.to_string model)
          shards
  done;
  let r = Option.get !result in
  {
    topology = tag;
    model;
    shards;
    batching = batching_name cfg.Bgp.Shard.batching;
    lossy_every = cfg.Bgp.Shard.lossy_every;
    converged = r.Bgp.Shard.converged;
    epochs = r.Bgp.Shard.epochs;
    activations = r.Bgp.Shard.activations;
    messages = r.Bgp.Shard.messages;
    cross_messages = r.Bgp.Shard.cross_messages;
    flushes = r.Bgp.Shard.flushes;
    drops = r.Bgp.Shard.drops;
    digest = Bgp.Shard.route_digest r;
    pool_engaged = r.Bgp.Shard.pool_engaged;
    wall_s = !best_wall;
  }

(* ------------------------------------------------------------------ *)
(* Journal codec: one record per finished case. *)

let case_key tag model shards = Printf.sprintf "%s/%s/%d" tag (Model.to_string model) shards

let record_of_case c =
  [
    c.topology;
    Model.to_string c.model;
    string_of_int c.shards;
    c.batching;
    string_of_int c.lossy_every;
    (if c.converged then "1" else "0");
    string_of_int c.epochs;
    string_of_int c.activations;
    string_of_int c.messages;
    string_of_int c.cross_messages;
    string_of_int c.flushes;
    string_of_int c.drops;
    c.digest;
    (if c.pool_engaged then "1" else "0");
    Printf.sprintf "%.6f" c.wall_s;
  ]

let case_of_record = function
  | [
      topology; model; shards; batching; lossy; converged; epochs; activations; messages;
      cross; flushes; drops; digest; pool; wall;
    ] -> (
    match Model.of_string model with
    | None -> None
    | Some model -> (
      try
        Some
          {
            topology;
            model;
            shards = int_of_string shards;
            batching;
            lossy_every = int_of_string lossy;
            converged = converged = "1";
            epochs = int_of_string epochs;
            activations = int_of_string activations;
            messages = int_of_string messages;
            cross_messages = int_of_string cross;
            flushes = int_of_string flushes;
            drops = int_of_string drops;
            digest;
            pool_engaged = pool = "1";
            wall_s = float_of_string wall;
          }
      with Failure _ -> None))
  | _ -> None

(* The journal only resumes a sweep over the same case set: budget,
   topologies, models, shard counts, partition seed and batching
   override all participate in the fingerprint.  Worker count and
   repeat count do not — they change only timings. *)
let fingerprint ~budget ~shard_k ~seed ~batch topos =
  let b = Buffer.create 256 in
  Buffer.add_string b schema;
  Buffer.add_string b (budget_name budget);
  Buffer.add_string b (string_of_int shard_k);
  Buffer.add_string b (string_of_int seed);
  Buffer.add_string b (match batch with None -> "-" | Some bt -> batching_name bt);
  List.iter
    (fun (tag, topo, models) ->
      Buffer.add_string b tag;
      Buffer.add_string b (Bgp.Topology.digest topo);
      List.iter (fun m -> Buffer.add_string b (Model.to_string m)) models)
    topos;
  Digest.to_hex (Digest.string (Buffer.contents b))

(* ------------------------------------------------------------------ *)
(* Legacy-engine parity on a compilable topology. *)

type parity_row = {
  p_model : Model.t;
  p_shards : int;
  p_legacy_steps : int;
  p_legacy_messages : int;
  p_epochs : int;
  p_match : bool;
}

let parity_shards = [ 1; 2; 4 ]

let run_parity () =
  let topo =
    Bgp.Topology.generate { Bgp.Topology.tier1 = 3; tier2 = 5; stubs = 8; seed = 42 }
  in
  let dest = Bgp.Topology.size topo - 1 in
  let inst = Bgp.Policy.compile topo ~dest in
  List.concat_map
    (fun model ->
      let legacy = Bgp.Simulate.run topo ~dest ~model ~scheduler:Scheduler.round_robin in
      List.map
        (fun shards ->
          let cfg = Bgp.Shard.config_for ~shards model in
          let r = Bgp.Shard.run cfg topo ~dest in
          {
            p_model = model;
            p_shards = shards;
            p_legacy_steps = legacy.Bgp.Simulate.steps;
            p_legacy_messages = legacy.Bgp.Simulate.messages;
            p_epochs = r.Bgp.Shard.epochs;
            p_match =
              r.Bgp.Shard.converged && legacy.Bgp.Simulate.converged
              && Spp.Assignment.equal (Bgp.Shard.assignment inst r)
                   legacy.Bgp.Simulate.assignment;
          })
        parity_shards)
    Model.all

(* ------------------------------------------------------------------ *)
(* JSON emission. *)

type topo_row = {
  t_tag : string;
  t_nodes : int;
  t_links : int;
  t_digest : string;
  t_cut : int;
  t_imbalance : float;
}

let topo_row ~shard_k ~seed (tag, topo, _) =
  let part = Bgp.Partition.make ~seed ~shards:shard_k topo in
  {
    t_tag = tag;
    t_nodes = Bgp.Topology.size topo;
    t_links = List.length (Bgp.Topology.edges topo);
    t_digest = Bgp.Topology.digest topo;
    t_cut = Bgp.Partition.cut_edges part;
    t_imbalance = Bgp.Partition.imbalance part;
  }

type speedup_row = { s_topology : string; s_model : Model.t; s_speedup : float }

(* Speedup per (largest topology, model): wall of the 1-shard case over
   the wall of the K-shard case.  Volatile by construction. *)
let speedups cases =
  let largest =
    List.fold_left
      (fun acc (t : topo_row) -> if t.t_nodes > snd acc then (t.t_tag, t.t_nodes) else acc)
      ("", 0)
  in
  fun topo_rows ->
    let tag = fst (largest topo_rows) in
    List.filter_map
      (fun c ->
        if c.topology = tag && c.shards > 1 then
          match
            List.find_opt (fun c1 -> c1.topology = tag && c1.model = c.model && c1.shards = 1) cases
          with
          | Some c1 when c.wall_s > 0. ->
            Some { s_topology = tag; s_model = c.model; s_speedup = c1.wall_s /. c.wall_s }
          | _ -> None
        else None)
      cases

let geomean = function
  | [] -> 0.
  | l ->
    exp (List.fold_left (fun acc s -> acc +. log (Float.max 1e-9 s.s_speedup)) 0. l
        /. float_of_int (List.length l))

let json_of_case c =
  Json.Obj
    [
      ("topology", Json.Str c.topology);
      ("model", Json.Str (Model.to_string c.model));
      ("shards", Json.Num (float_of_int c.shards));
      ("batching", Json.Str c.batching);
      ("lossy_every", Json.Num (float_of_int c.lossy_every));
      ("converged", Json.Bool c.converged);
      ("epochs", Json.Num (float_of_int c.epochs));
      ("activations", Json.Num (float_of_int c.activations));
      ("messages", Json.Num (float_of_int c.messages));
      ("cross_messages", Json.Num (float_of_int c.cross_messages));
      ("flushes", Json.Num (float_of_int c.flushes));
      ("drops", Json.Num (float_of_int c.drops));
      ("route_digest", Json.Str c.digest);
      ("pool_engaged", Json.Bool c.pool_engaged);
      ("wall_s", Json.Num c.wall_s);
    ]

let json_of_parity p =
  Json.Obj
    [
      ("model", Json.Str (Model.to_string p.p_model));
      ("shards", Json.Num (float_of_int p.p_shards));
      ("legacy_steps", Json.Num (float_of_int p.p_legacy_steps));
      ("legacy_messages", Json.Num (float_of_int p.p_legacy_messages));
      ("epochs", Json.Num (float_of_int p.p_epochs));
      ("match", Json.Bool p.p_match);
    ]

let json_of_topo t =
  Json.Obj
    [
      ("tag", Json.Str t.t_tag);
      ("nodes", Json.Num (float_of_int t.t_nodes));
      ("links", Json.Num (float_of_int t.t_links));
      ("digest", Json.Str t.t_digest);
      ("cut_edges", Json.Num (float_of_int t.t_cut));
      ("imbalance", Json.Num t.t_imbalance);
    ]

let json_of_speedup s =
  Json.Obj
    [
      ("topology", Json.Str s.s_topology);
      ("model", Json.Str (Model.to_string s.s_model));
      ("speedup", Json.Num s.s_speedup);
    ]

let to_json ~budget ~shard_k ~seed ~workers ~cores ~degraded topo_rows parity cases sp =
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("budget", Json.Str (budget_name budget));
      ("shard_k", Json.Num (float_of_int shard_k));
      ("seed", Json.Num (float_of_int seed));
      ("workers", Json.Num (float_of_int workers));
      ("cores", Json.Num (float_of_int cores));
      ("degraded", Json.Bool degraded);
      ("topologies", Json.List (List.map json_of_topo topo_rows));
      ("parity", Json.List (List.map json_of_parity parity));
      ("cases", Json.List (List.map json_of_case cases));
      ("speedup", Json.List (List.map json_of_speedup sp));
      ("speedup_geomean", Json.Num (geomean sp));
    ]

(* ------------------------------------------------------------------ *)
(* Artifact comparison, same contract as the other benches: identical
   after blanking machine-dependent measurements, unknown fields are an
   error. *)

let volatile_keys =
  [ "wall_s"; "workers"; "cores"; "degraded"; "pool_engaged"; "speedup"; "speedup_geomean" ]

let known_keys =
  [
    "schema";
    "budget";
    "shard_k";
    "seed";
    "topologies";
    "parity";
    "cases";
    (* topologies *)
    "tag";
    "nodes";
    "links";
    "digest";
    "cut_edges";
    "imbalance";
    (* parity *)
    "model";
    "shards";
    "legacy_steps";
    "legacy_messages";
    "epochs";
    "match";
    (* cases *)
    "topology";
    "batching";
    "lossy_every";
    "converged";
    "activations";
    "messages";
    "cross_messages";
    "flushes";
    "drops";
    "route_digest";
  ]

let rec first_unknown_key path = function
  | Json.Obj fields ->
    List.fold_left
      (fun acc (k, v) ->
        match acc with
        | Some _ -> acc
        | None ->
          if not (List.mem k known_keys || List.mem k volatile_keys) then
            Some (path ^ "." ^ k)
          else first_unknown_key (path ^ "." ^ k) v)
      None fields
  | Json.List l ->
    List.fold_left
      (fun (i, acc) v ->
        match acc with
        | Some _ -> (i + 1, acc)
        | None -> (i + 1, first_unknown_key (Printf.sprintf "%s[%d]" path i) v))
      (0, None) l
    |> snd
  | _ -> None

let rec scrub = function
  | Json.Obj fields ->
    Json.Obj
      (List.map
         (fun (k, v) -> (k, if List.mem k volatile_keys then Json.Null else scrub v))
         fields)
  | Json.List l -> Json.List (List.map scrub l)
  | v -> v

let rec first_diff path a b =
  match (a, b) with
  | Json.Obj fa, Json.Obj fb ->
    if List.map fst fa <> List.map fst fb then Some (path ^ ": field sets differ")
    else
      List.fold_left2
        (fun acc (k, va) (_, vb) ->
          match acc with Some _ -> acc | None -> first_diff (path ^ "." ^ k) va vb)
        None fa fb
  | Json.List la, Json.List lb ->
    if List.length la <> List.length lb then Some (path ^ ": list lengths differ")
    else
      List.fold_left2
        (fun (i, acc) va vb ->
          match acc with
          | Some _ -> (i + 1, acc)
          | None -> (i + 1, first_diff (Printf.sprintf "%s[%d]" path i) va vb))
        (0, None) la lb
      |> snd
  | a, b -> if a = b then None else Some path

let compare_ignoring_timings path_a path_b =
  let parse p =
    match In_channel.with_open_bin p In_channel.input_all with
    | exception Sys_error e -> inputf "%s" e
    | text -> (
      match Json.parse text with
      | Ok v -> (
        match first_unknown_key "$" v with
        | Some where ->
          inputf
            "%s has a field this comparer does not know at %s; extend \
             known_keys or volatile_keys before trusting the verdict"
            p where
        | None -> scrub v)
      | Error e -> inputf "%s does not parse: %s" p e)
  in
  let a = parse path_a and b = parse path_b in
  match first_diff "$" a b with
  | None -> Printf.printf "%s and %s are identical modulo timings\n" path_a path_b
  | Some where -> gatef "%s and %s differ at %s" path_a path_b where

(* ------------------------------------------------------------------ *)
(* Gates. *)

let gate_failures parity cases =
  let fails = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> fails := s :: !fails) fmt in
  List.iter
    (fun p ->
      if not p.p_match then
        fail "parity: %d-shard run disagrees with the legacy engine under %s" p.p_shards
          (Model.to_string p.p_model))
    parity;
  List.iter
    (fun c ->
      if not c.converged then
        fail "%s: did not converge within the epoch budget" (case_key c.topology c.model c.shards))
    cases;
  (* route digests must agree across shard counts of a (topology, model) *)
  List.iter
    (fun c ->
      if c.shards > 1 then
        match
          List.find_opt
            (fun c1 -> c1.topology = c.topology && c1.model = c.model && c1.shards = 1)
            cases
        with
        | Some c1 when c1.digest <> c.digest ->
          fail "%s: %d-shard routes differ from the 1-shard fixpoint"
            (case_key c.topology c.model c.shards)
            c.shards
        | _ -> ())
    cases;
  List.rev !fails

(* ------------------------------------------------------------------ *)

let pp_summary ppf (topo_rows, parity, cases, sp, degraded) =
  List.iter
    (fun t ->
      Fmt.pf ppf "  %-12s %6d nodes %6d links  cut=%-5d imbalance=%.2f@." t.t_tag t.t_nodes
        t.t_links t.t_cut t.t_imbalance)
    topo_rows;
  Fmt.pf ppf "  parity: %d/%d (model, shards) runs match the legacy engine@."
    (List.length (List.filter (fun p -> p.p_match) parity))
    (List.length parity);
  List.iter
    (fun c ->
      Fmt.pf ppf
        "  %-12s %-4s K=%-2d batch=%-5s epochs=%-6d acts=%-8d msgs=%-8d cross=%-7d \
         drops=%-5d %s@."
        c.topology (Model.to_string c.model) c.shards c.batching c.epochs c.activations
        c.messages c.cross_messages c.drops
        (if c.converged then "converged" else "STUCK"))
    cases;
  if sp <> [] then
    Fmt.pf ppf "  speedup (largest topology, K-shard vs 1-shard): geomean %.2fx%s@."
      (geomean sp)
      (if degraded then " [degraded: no parallel capacity, not a parallel speedup]" else "")

let emit ~budget ~shard_k ~seed ~workers ~batch ~repeat ~models_filter ~checkpoint
    ~checkpoint_every ~resume ~path =
  let restrict models =
    match models_filter with
    | None -> models
    | Some keep -> List.filter (fun m -> List.exists (Model.equal m) keep) models
  in
  let built =
    List.filter_map
      (fun (tag, cfg, models) ->
        match restrict models with
        | [] -> None
        | models -> Some (tag, Bgp.Topology.generate_scaled cfg, models))
      (blocks budget)
  in
  if built = [] then inputf "--models filtered every case away";
  let journal =
    match checkpoint with
    | None -> None
    | Some jpath ->
      let fp = fingerprint ~budget ~shard_k ~seed ~batch built in
      let writer, records =
        Journal.open_ ~path:jpath ~magic:journal_magic ~fingerprint:fp ~resume
          ~flush_every:checkpoint_every
      in
      let done_ = Hashtbl.create 64 in
      List.iter
        (fun r ->
          match case_of_record r with
          | Some c -> Hashtbl.replace done_ (case_key c.topology c.model c.shards) c
          | None -> ())
        records;
      Some (writer, done_)
  in
  let resumed = ref 0 in
  let run_or_replay tag topo model shards =
    let key = case_key tag model shards in
    match journal with
    | Some (_, done_) when Hashtbl.mem done_ key ->
      incr resumed;
      Hashtbl.find done_ key
    | _ ->
      let c = run_case ~workers ~seed ~batch ~repeat tag topo model shards in
      (match journal with
      | Some (writer, _) -> Journal.record writer (record_of_case c)
      | None -> ());
      c
  in
  let cases =
    List.concat_map
      (fun (tag, topo, models) ->
        List.concat_map
          (fun model -> List.map (run_or_replay tag topo model) [ 1; shard_k ])
          models)
      built
  in
  (match journal with Some (writer, _) -> Journal.close writer | None -> ());
  let parity = run_parity () in
  let topo_rows = List.map (topo_row ~shard_k ~seed) built in
  let sp = speedups cases topo_rows in
  let cores = Domain.recommended_domain_count () in
  (* degraded: the measured "speedup" is not a parallel speedup — either
     the pool never ran (1 worker) or there is no second core to run it
     on.  Recorded as-is; never dressed up. *)
  let degraded = (not (List.exists (fun c -> c.pool_engaged) cases)) || cores < 2 in
  let text =
    Json.to_string
      (to_json ~budget ~shard_k ~seed ~workers ~cores ~degraded topo_rows parity cases sp)
  in
  Snapshot.write_atomic path text;
  let parse_failure =
    match Json.parse text with
    | Ok v -> if Json.member "cases" v = None then [ "emitted JSON lacks a cases field" ] else []
    | Error e -> [ "emitted JSON does not parse: " ^ e ]
  in
  ((topo_rows, parity, cases, sp, degraded), !resumed, parse_failure @ gate_failures parity cases)

(* ------------------------------------------------------------------ *)

let usage =
  "usage: bgp_scale [-o FILE] [--budget smoke|default|deep] [--models CSV]\n\
  \                 [--shards K] [--workers N] [--seed N] [--batch epoch|N]\n\
  \                 [--repeat N] [--checkpoint FILE] [--checkpoint-every N]\n\
  \                 [--resume] [--min-speedup X]\n\
  \                 [--compare-ignoring-timings A B]\n\
   \  -o FILE          artifact path (default BENCH_bgp.json)\n\
   \  --budget B       smoke (~450-node topology), default (10k nodes, all 24\n\
   \                   models; the committed-artifact budget) or deep (adds a\n\
   \                   100k-node block over the model-grid corners)\n\
   \  --models CSV     restrict the sweep to these models (e.g. RMS,U1O)\n\
   \  --shards K       sweep shard counts {1, K} (default 2 for smoke, 8 else)\n\
   \  --workers N      domains for the parallel phase (default 1)\n\
   \  --seed N         partition seed (default 0)\n\
   \  --batch B        override model-derived batching: 'epoch' or a count\n\
   \  --repeat N       run each case N times, keep the best wall time\n\
   \  --checkpoint F   journal finished cases to F (crash-tolerant)\n\
   \  --checkpoint-every N  flush cadence in cases (default 1)\n\
   \  --resume         replay a matching journal instead of re-running\n\
   \  --min-speedup X  exit 1 if the K-shard geomean speedup on the largest\n\
   \                   topology is below X; skipped (with a [degraded] note)\n\
   \                   when the pool never engages, so 1-core runs record\n\
   \                   honest numbers instead of failing\n\
   \  --compare-ignoring-timings A B  exit 0 iff artifacts A and B are\n\
   \                   identical after blanking wall times and machine-\n\
   \                   dependent fields; unknown fields are an error\n"

let bad msg = raise (Fail (Usage msg))

let main () =
  let path = ref "BENCH_bgp.json" in
  let budget = ref Default in
  let models = ref None in
  let shard_k = ref None in
  let workers = ref 1 in
  let seed = ref 0 in
  let batch = ref None in
  let repeat = ref 1 in
  let checkpoint = ref None in
  let checkpoint_every = ref 1 in
  let resume = ref false in
  let min_speedup = ref None in
  let compare_paths = ref None in
  let int_arg name v k =
    match int_of_string_opt v with Some n -> k n | None -> bad (name ^ " needs an integer")
  in
  let rec parse = function
    | [] -> ()
    | "-o" :: file :: rest ->
      path := file;
      parse rest
    | "--budget" :: b :: rest ->
      (match b with
      | "smoke" -> budget := Smoke
      | "default" -> budget := Default
      | "deep" -> budget := Deep
      | other -> bad (Printf.sprintf "unknown budget %S" other));
      parse rest
    | "--models" :: csv :: rest ->
      let names = String.split_on_char ',' csv in
      let parsed =
        List.map
          (fun n -> match Model.of_string n with Some m -> m | None -> bad ("unknown model " ^ n))
          names
      in
      models := Some parsed;
      parse rest
    | "--shards" :: v :: rest ->
      int_arg "--shards" v (fun n ->
          if n < 2 then bad "--shards must be at least 2 (1-shard baseline is implicit)";
          shard_k := Some n);
      parse rest
    | "--workers" :: v :: rest ->
      int_arg "--workers" v (fun n -> workers := max 1 n);
      parse rest
    | "--seed" :: v :: rest ->
      int_arg "--seed" v (fun n -> seed := n);
      parse rest
    | "--batch" :: v :: rest ->
      (match v with
      | "epoch" -> batch := Some Bgp.Shard.Per_epoch
      | v ->
        int_arg "--batch" v (fun n ->
            if n < 1 then bad "--batch count must be positive";
            batch := Some (Bgp.Shard.Every n)));
      parse rest
    | "--repeat" :: v :: rest ->
      int_arg "--repeat" v (fun n -> repeat := max 1 n);
      parse rest
    | "--checkpoint" :: file :: rest ->
      checkpoint := Some file;
      parse rest
    | "--checkpoint-every" :: v :: rest ->
      int_arg "--checkpoint-every" v (fun n -> checkpoint_every := max 1 n);
      parse rest
    | "--resume" :: rest ->
      resume := true;
      parse rest
    | "--min-speedup" :: v :: rest ->
      (match float_of_string_opt v with
      | Some f -> min_speedup := Some f
      | None -> bad "--min-speedup needs a number");
      parse rest
    | "--compare-ignoring-timings" :: a :: b :: rest ->
      compare_paths := Some (a, b);
      parse rest
    | "--compare-ignoring-timings" :: _ -> bad "--compare-ignoring-timings needs two files"
    | [ ("-o" | "--budget" | "--models" | "--shards" | "--workers" | "--seed" | "--batch"
        | "--repeat" | "--checkpoint" | "--checkpoint-every" | "--min-speedup") as flag ] ->
      bad (flag ^ " needs an argument")
    | arg :: _ -> bad (Printf.sprintf "unknown argument %S" arg)
  in
  parse (List.tl (Array.to_list Sys.argv));
  match !compare_paths with
  | Some (a, b) -> compare_ignoring_timings a b
  | None ->
    if !resume && !checkpoint = None then bad "--resume needs --checkpoint";
    let budget = !budget in
    let shard_k = match !shard_k with Some k -> k | None -> default_shards budget in
    let results, resumed, failures =
      emit ~budget ~shard_k ~seed:!seed ~workers:!workers ~batch:!batch ~repeat:!repeat
        ~models_filter:!models ~checkpoint:!checkpoint ~checkpoint_every:!checkpoint_every
        ~resume:!resume ~path:!path
    in
    let _, _, _, sp, degraded = results in
    Fmt.pr "bgp scale sweep (%s budget, K=%d, %d workers):@.%a" (budget_name budget) shard_k
      !workers pp_summary results;
    if resumed > 0 then Fmt.pr "resumed %d finished case(s) from the journal@." resumed;
    Fmt.pr "wrote %s@." !path;
    if failures <> [] then begin
      List.iter (fun f -> Printf.eprintf "bgp_scale: %s\n" f) failures;
      raise (Fail (Gate None))
    end;
    (match !min_speedup with
    | None -> ()
    | Some thr ->
      if degraded then
        Fmt.pr "[degraded] pool never engaged (workers=%d, cores=%d): --min-speedup not gated@."
          !workers
          (Domain.recommended_domain_count ())
      else begin
        let g = geomean sp in
        if g < thr then
          gatef "geomean speedup %.2fx below the --min-speedup %.2fx gate" g thr
        else Fmt.pr "speedup gate: %.2fx >= %.2fx@." g thr
      end)

(* The only place exit codes are decided. *)
let () =
  match main () with
  | () -> ()
  | exception Fail (Usage m) ->
    Printf.eprintf "bgp_scale: %s\n%s" m usage;
    exit 2
  | exception Fail (Input m) ->
    Printf.eprintf "bgp_scale: %s\n" m;
    exit 2
  | exception Fail (Gate (Some m)) ->
    Printf.eprintf "bgp_scale: %s\n" m;
    exit 1
  | exception Fail (Gate None) -> exit 1
