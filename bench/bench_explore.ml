(* Standalone entry point for the explore benchmark.  All flag parsing and
   DEEP env handling live in Explore_bench.main — keep this a one-liner so
   the CLI cannot drift between entry points.  Used by the @bench-smoke
   dune alias (with DEEP=0) and runnable by hand for the full Fig. 6
   R1A/RMA measurements. *)

let () = Explore_bench.run ()
