let () = Protocols_bench.main ()
