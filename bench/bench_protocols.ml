let () = Protocols_bench.run ()
