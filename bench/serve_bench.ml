(* Daemon bench: cold-vs-warm latency on a deep query plus a concurrent
   determinism gate, emitting results/BENCH_serve.json (schema
   commrouting/bench_serve/v1).

   - "cold"/"warm": the same deep check (FIG6 under R1A, the ~7.4k-state
     exploration) issued twice against a fresh store.  The first pays
     the full exploration, the second is one framed-file read; the gate
     (--min-speedup, default 10) fails the run if memoization does not
     buy at least that factor.
   - "clients": N forked client processes (default 8) each issue the
     same request mix (checks, a batched sweep, a realization, a sharded
     BGP run) concurrently and digest the result bytes they got back.
     All digests must be identical, and identical to the digest of the
     same requests computed in-process through Service.Query — the
     daemon must be indistinguishable from the one-shot CLIs.
   - Everything in the artifact except wall times and the speedup is
     deterministic, so CI regenerates it and diffs against the committed
     one with --compare-ignoring-timings.

   Error handling: every failure path raises a typed [failure]; the
   runner at the bottom is the only place exit codes are decided
   (usage -> 2, gate/infra -> 1). *)

open Service
module Json = Engine.Metrics.Json

let schema = "commrouting/bench_serve/v1"

type failure =
  | Usage of string  (** bad command line: exit 2 *)
  | Infra of string  (** daemon/fork/socket trouble: exit 1 *)
  | Gate of string  (** a bench invariant failed: exit 1 *)

exception Fail of failure

let usagef fmt = Fmt.kstr (fun m -> raise (Fail (Usage m))) fmt
let infraf fmt = Fmt.kstr (fun m -> raise (Fail (Infra m))) fmt
let gatef fmt = Fmt.kstr (fun m -> raise (Fail (Gate m))) fmt

(* ------------------------------------------------------------------ *)
(* Workload. *)

let deep_instance = "FIG6"
let deep_model = "R1A"
let qc = Protocol.default_query_config

let model name =
  match Engine.Model.of_string name with
  | Some m -> m
  | None -> assert false

(* The per-client request mix.  One of each expensive kind; the deep
   check is warm by the time clients run (the cold/warm phase primed
   it), so eight clients hammer the store concurrently. *)
let client_requests =
  [
    Protocol.Check
      { instance = "DISAGREE"; model = model "R1O"; config = qc; fresh = false };
    Protocol.Check
      { instance = "DISAGREE"; model = model "RMS"; config = qc; fresh = false };
    Protocol.Check
      { instance = deep_instance; model = model deep_model; config = qc; fresh = false };
    Protocol.Sweep
      {
        instance = "DISAGREE";
        models = [ model "R1O"; model "REA"; model "UMS" ];
        config = qc;
        fresh = false;
      };
    Protocol.Realize { source = model "R1S"; target = model "R1O" };
    Protocol.Bgp
      { nodes = 64; seed = 0; model = model "RMS"; shards = 2; fresh = false };
  ]

(* ------------------------------------------------------------------ *)
(* Daemon + client plumbing. *)

let fork_daemon ~socket ~store_dir ~workers =
  match Unix.fork () with
  | 0 -> (
    match
      Server.run
        {
          Server.socket;
          store = { Store.dir = store_dir; max_entries = Store.default_max_entries };
          workers;
        }
    with
    | Ok () -> exit 0
    | Error e ->
      Fmt.epr "serve_bench daemon: %a@." Error.pp e;
      exit (Error.exit_code e))
  | pid -> pid

let connect_retry socket =
  let deadline = Unix.gettimeofday () +. 30. in
  let rec go () =
    match Client.connect ~socket with
    | Ok c -> c
    | Error e ->
      if Unix.gettimeofday () > deadline then
        infraf "cannot reach the daemon at %s: %s" socket (Error.to_string e)
      else begin
        ignore (Unix.select [] [] [] 0.05);
        go ()
      end
  in
  go ()

let request c r =
  match Client.request c { Protocol.id = Json.Null; req = r } with
  | Error e -> infraf "request failed: %s" (Error.to_string e)
  | Ok j -> (
    match Json.member "ok" j with
    | Some (Json.Bool true) -> j
    | _ -> gatef "daemon answered an error: %s" (Json.to_string j))

let result_of j =
  match Json.member "result" j with
  | Some r -> r
  | None -> gatef "response lacks a result: %s" (Json.to_string j)

let cached_of j = Json.member "cached" j = Some (Json.Bool true)

(* Cache-hit flags are observational, not semantic: under concurrency
   whichever client arrives first computes and the rest hit the cache,
   so sweep results legitimately differ in their per-model [cached]
   fields.  Strip them before digesting — what must be identical is the
   answers, not who paid for them. *)
let rec drop_cached = function
  | Json.Obj fields ->
    Json.Obj
      (List.filter_map
         (fun (k, v) -> if k = "cached" then None else Some (k, drop_cached v))
         fields)
  | Json.List l -> Json.List (List.map drop_cached l)
  | v -> v

(* Digest of the result bytes a connection gets for the request mix. *)
let digest_over_connection c =
  let b = Buffer.create 1024 in
  List.iter
    (fun r ->
      Buffer.add_string b (Json.to_string (drop_cached (result_of (request c r))));
      Buffer.add_char b '\n')
    client_requests;
  Digest.to_hex (Digest.string (Buffer.contents b))

(* The same request mix computed in-process through the library — the
   one-shot-CLI equivalent the daemon must match byte-for-byte. *)
let reference_digest ~store_dir =
  let store =
    match Store.open_ { Store.dir = store_dir; max_entries = Store.default_max_entries } with
    | Ok s -> s
    | Error e -> infraf "reference store: %s" (Error.to_string e)
  in
  let q =
    match Query.create ~store ~workers:2 with
    | Ok q -> q
    | Error e -> infraf "reference query layer: %s" (Error.to_string e)
  in
  let compute = function
    | Protocol.Check { instance; model; config; fresh } -> (
      match Query.check q ~instance ~model ~config ~fresh with
      | Ok (r, _) -> r
      | Error e -> infraf "reference check: %s" (Error.to_string e))
    | Protocol.Sweep { instance; models; config; fresh } -> (
      match Query.sweep q ~instance ~models ~config ~fresh with
      | Ok r -> r
      | Error e -> infraf "reference sweep: %s" (Error.to_string e))
    | Protocol.Realize { source; target } -> Query.realize q ~source ~target
    | Protocol.Bgp { nodes; seed; model; shards; fresh } -> (
      match Query.bgp q ~nodes ~seed ~model ~shards ~fresh with
      | Ok (r, _) -> r
      | Error e -> infraf "reference bgp: %s" (Error.to_string e))
    | _ -> assert false
  in
  let b = Buffer.create 1024 in
  List.iter
    (fun r ->
      Buffer.add_string b (Json.to_string (drop_cached (compute r)));
      Buffer.add_char b '\n')
    client_requests;
  Digest.to_hex (Digest.string (Buffer.contents b))

(* ------------------------------------------------------------------ *)
(* The run. *)

type measurement = {
  cold_s : float;
  warm_s : float;
  client_digests : string list;
  ref_digest : string;
}

let deep_check ~fresh =
  Protocol.Check
    { instance = deep_instance; model = model deep_model; config = qc; fresh }

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let run ~clients ~workers =
  let pid = Unix.getpid () in
  let socket = Printf.sprintf "/tmp/serve-bench-%d.sock" pid in
  let store_dir = Printf.sprintf "/tmp/serve-bench-store-%d" pid in
  let ref_dir = Printf.sprintf "/tmp/serve-bench-ref-%d" pid in
  let cleanup () =
    ignore
      (Sys.command (Printf.sprintf "rm -rf %s %s %s" socket store_dir ref_dir))
  in
  cleanup ();
  let daemon = fork_daemon ~socket ~store_dir ~workers in
  let finally () =
    (try Unix.kill daemon Sys.sigkill with Unix.Unix_error _ -> ());
    (try ignore (Unix.waitpid [] daemon) with Unix.Unix_error _ -> ());
    cleanup ()
  in
  Fun.protect ~finally @@ fun () ->
  let c = connect_retry socket in
  (* Cold/warm pair on the deep query. *)
  let cold_resp, cold_s = timed (fun () -> request c (deep_check ~fresh:false)) in
  let warm_resp, warm_s = timed (fun () -> request c (deep_check ~fresh:false)) in
  if cached_of cold_resp then gatef "first deep query was already cached";
  if not (cached_of warm_resp) then gatef "second deep query missed the cache";
  if Json.to_string (result_of cold_resp) <> Json.to_string (result_of warm_resp)
  then gatef "cold and warm results differ";
  (* Concurrent clients: fork first (children), compute the in-process
     reference only afterwards — no Domain.spawn happens in this
     process before the last fork. *)
  let children =
    List.init clients (fun _ ->
        let r, w = Unix.pipe ~cloexec:false () in
        match Unix.fork () with
        | 0 ->
          Unix.close r;
          let code =
            match digest_over_connection (connect_retry socket) with
            | digest ->
              ignore (Unix.write_substring w (digest ^ "\n") 0 (String.length digest + 1));
              0
            | exception Fail f ->
              Fmt.epr "serve_bench client: %s@."
                (match f with Usage m | Infra m | Gate m -> m);
              1
          in
          Unix.close w;
          exit code
        | pid ->
          Unix.close w;
          (pid, r))
  in
  let client_digests =
    List.map
      (fun (pid, r) ->
        let buf = Buffer.create 40 in
        let chunk = Bytes.create 64 in
        let rec drain () =
          match Unix.read r chunk 0 (Bytes.length chunk) with
          | 0 -> ()
          | n ->
            Buffer.add_subbytes buf chunk 0 n;
            drain ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
        in
        drain ();
        Unix.close r;
        let _, status = Unix.waitpid [] pid in
        if status <> Unix.WEXITED 0 then gatef "a bench client failed";
        String.trim (Buffer.contents buf))
      children
  in
  let ref_digest = reference_digest ~store_dir:ref_dir in
  let bye = request c Protocol.Shutdown in
  ignore bye;
  Client.close c;
  { cold_s; warm_s; client_digests; ref_digest }

(* ------------------------------------------------------------------ *)
(* Artifact. *)

let to_json ~clients m =
  let speedup = if m.warm_s > 0. then m.cold_s /. m.warm_s else infinity in
  let digest = match m.client_digests with d :: _ -> d | [] -> "" in
  let deterministic =
    m.client_digests <> []
    && List.for_all (String.equal digest) m.client_digests
    && String.equal digest m.ref_digest
  in
  Json.Obj
    [
      ("schema", Json.Str schema);
      ( "workload",
        Json.Obj
          [
            ("instance", Json.Str deep_instance);
            ("model", Json.Str deep_model);
            ("bound", Json.Num (float_of_int qc.Protocol.bound));
            ("max_states", Json.Num (float_of_int qc.Protocol.max_states));
          ] );
      ( "requests",
        Json.List
          (List.map
             (fun r -> Protocol.to_json { Protocol.id = Json.Null; req = r })
             client_requests) );
      ("cold_wall_s", Json.Num m.cold_s);
      ("warm_wall_s", Json.Num m.warm_s);
      ("speedup", Json.Num speedup);
      ("clients", Json.Num (float_of_int clients));
      ("digest", Json.Str digest);
      ("reference_digest", Json.Str m.ref_digest);
      ("deterministic", Json.Bool deterministic);
    ]

(* ------------------------------------------------------------------ *)
(* Artifact comparison: identical after blanking timings; unknown
   fields are an error (same contract as the other benches). *)

let volatile_keys = [ "cold_wall_s"; "warm_wall_s"; "speedup" ]

let known_keys =
  [
    "schema"; "workload"; "instance"; "model"; "bound"; "max_states"; "requests";
    "id"; "method"; "params"; "models"; "fresh"; "source"; "target"; "nodes";
    "seed"; "shards"; "every"; "job"; "clients"; "digest"; "reference_digest";
    "deterministic";
  ]

let rec first_unknown_key path = function
  | Json.Obj fields ->
    List.fold_left
      (fun acc (k, v) ->
        match acc with
        | Some _ -> acc
        | None ->
          if not (List.mem k known_keys || List.mem k volatile_keys) then
            Some (path ^ "." ^ k)
          else first_unknown_key (path ^ "." ^ k) v)
      None fields
  | Json.List l ->
    List.fold_left
      (fun (i, acc) v ->
        match acc with
        | Some _ -> (i + 1, acc)
        | None -> (i + 1, first_unknown_key (Printf.sprintf "%s[%d]" path i) v))
      (0, None) l
    |> snd
  | _ -> None

let rec scrub = function
  | Json.Obj fields ->
    Json.Obj
      (List.map
         (fun (k, v) -> (k, if List.mem k volatile_keys then Json.Null else scrub v))
         fields)
  | Json.List l -> Json.List (List.map scrub l)
  | v -> v

let rec first_diff path a b =
  match (a, b) with
  | Json.Obj fa, Json.Obj fb ->
    if List.map fst fa <> List.map fst fb then Some (path ^ ": field sets differ")
    else
      List.fold_left2
        (fun acc (k, va) (_, vb) ->
          match acc with Some _ -> acc | None -> first_diff (path ^ "." ^ k) va vb)
        None fa fb
  | Json.List la, Json.List lb ->
    if List.length la <> List.length lb then Some (path ^ ": list lengths differ")
    else
      List.fold_left2
        (fun (i, acc) va vb ->
          match acc with
          | Some _ -> (i + 1, acc)
          | None -> (i + 1, first_diff (Printf.sprintf "%s[%d]" path i) va vb))
        (0, None) la lb
      |> snd
  | a, b -> if a = b then None else Some path

let compare_ignoring_timings path_a path_b =
  let parse p =
    match In_channel.with_open_bin p In_channel.input_all with
    | exception Sys_error e -> usagef "%s" e
    | text -> (
      match Json.parse text with
      | Error e -> gatef "%s does not parse: %s" p e
      | Ok v -> (
        match first_unknown_key "$" v with
        | Some where ->
          gatef
            "%s has a field this comparer does not know at %s; extend known_keys \
             or volatile_keys before trusting the verdict"
            p where
        | None -> scrub v))
  in
  let a = parse path_a and b = parse path_b in
  match first_diff "$" a b with
  | None -> Fmt.pr "%s and %s are identical modulo timings@." path_a path_b
  | Some where -> gatef "%s and %s differ at %s" path_a path_b where

(* ------------------------------------------------------------------ *)

let usage =
  "usage: serve_bench [-o FILE] [--clients N] [--workers N] [--min-speedup X]\n\
  \                   [--compare-ignoring-timings A B]\n\
   \  -o FILE          artifact path (default BENCH_serve.json)\n\
   \  --clients N      concurrent client processes (default 8)\n\
   \  --workers N      daemon worker domains (default 2)\n\
   \  --min-speedup X  exit 1 unless warm/cold speedup >= X (default 10;\n\
   \                   0 disables the gate)\n\
   \  --compare-ignoring-timings A B  exit 0 iff artifacts A and B are\n\
   \                   identical after blanking wall times; unknown fields\n\
   \                   are an error\n"

let main () =
  let path = ref "BENCH_serve.json" in
  let clients = ref 8 in
  let workers = ref 2 in
  let min_speedup = ref 10. in
  let compare_paths = ref None in
  let int_arg name v k =
    match int_of_string_opt v with
    | Some n -> k n
    | None -> usagef "%s needs an integer" name
  in
  let rec parse = function
    | [] -> ()
    | "-o" :: file :: rest ->
      path := file;
      parse rest
    | "--clients" :: v :: rest ->
      int_arg "--clients" v (fun n -> clients := max 1 n);
      parse rest
    | "--workers" :: v :: rest ->
      int_arg "--workers" v (fun n -> workers := max 1 n);
      parse rest
    | "--min-speedup" :: v :: rest ->
      (match float_of_string_opt v with
      | Some f -> min_speedup := f
      | None -> usagef "--min-speedup needs a number");
      parse rest
    | "--compare-ignoring-timings" :: a :: b :: rest ->
      compare_paths := Some (a, b);
      parse rest
    | "--compare-ignoring-timings" :: _ ->
      usagef "--compare-ignoring-timings needs two files"
    | [ (("-o" | "--clients" | "--workers" | "--min-speedup") as flag) ] ->
      usagef "%s needs an argument" flag
    | arg :: _ -> usagef "unknown argument %S" arg
  in
  parse (List.tl (Array.to_list Sys.argv));
  match !compare_paths with
  | Some (a, b) -> compare_ignoring_timings a b
  | None ->
    let m = run ~clients:!clients ~workers:!workers in
    let j = to_json ~clients:!clients m in
    Engine.Snapshot.write_atomic !path (Json.to_string j);
    let speedup = if m.warm_s > 0. then m.cold_s /. m.warm_s else infinity in
    Fmt.pr "deep query %s/%s: cold %.3fs, warm %.6fs (%.0fx)@." deep_instance
      deep_model m.cold_s m.warm_s speedup;
    Fmt.pr "%d concurrent clients, %d requests each@." !clients
      (List.length client_requests);
    Fmt.pr "wrote %s@." !path;
    (match m.client_digests with
    | [] -> gatef "no client digests collected"
    | d :: rest ->
      if not (List.for_all (String.equal d) rest) then
        gatef "concurrent clients disagree on result bytes";
      if not (String.equal d m.ref_digest) then
        gatef "daemon results differ from the in-process reference (%s vs %s)" d
          m.ref_digest;
      Fmt.pr "determinism: %d clients identical, equal to the one-shot reference@."
        !clients);
    if !min_speedup > 0. && speedup < !min_speedup then
      gatef "warm speedup %.1fx below the --min-speedup %.1fx gate" speedup
        !min_speedup
    else if !min_speedup > 0. then
      Fmt.pr "speedup gate: %.0fx >= %.0fx@." speedup !min_speedup

(* The only place exit codes are decided. *)
let () =
  match main () with
  | () -> ()
  | exception Fail f ->
    let code, msg =
      match f with
      | Usage m -> (2, m ^ "\n" ^ usage)
      | Infra m | Gate m -> (1, m)
    in
    Printf.eprintf "serve_bench: %s\n" msg;
    exit code
