(* Machine-readable state-space-exploration benchmarks.

   Runs each (instance, model) case once sequentially (domains=1) and once
   on a worker pool (domains=N), checks that verdicts and reachable-state
   counts agree, and renders everything as BENCH_explore.json so the perf
   trajectory is tracked across PRs.  Schema: see EXPERIMENTS.md.

   This module is both the library half and the single CLI for the
   benchmark: [main] owns all flag parsing and the [DEEP] env handling, and
   bin shims (bench/bench_explore.ml) must contain nothing but a call to
   it, so flags cannot drift between entry points. *)

open Spp
open Engine
module Json = Metrics.Json

let schema = "commrouting/bench_explore/v4"

(* The state/route representation this binary was built with; recorded in
   the artifact so perf numbers are attributable across the PR 2 arena
   refactor. *)
let repr = "arena"

(* Every failure path raises a typed [failure]; the runner at the bottom
   of the file is the only place exit codes are decided. *)
type failure =
  | Usage of string  (** bad command line: message + usage text, exit 2 *)
  | Input of string  (** unreadable or foreign input: exit 2, no usage dump *)
  | Gate of string option
      (** a bench invariant failed: exit 1.  [None] when the failing path
          already printed its own diagnostics. *)

exception Fail of failure

let inputf fmt = Fmt.kstr (fun m -> raise (Fail (Input m))) fmt
let gatef fmt = Fmt.kstr (fun m -> raise (Fail (Gate (Some m)))) fmt

(* Case-table model names are literals, but a typo must die with the list
   of valid names and exit code 2 — the CLI's bad-arguments convention —
   not a bare [Invalid_argument] out of [Option.get]. *)
let model s =
  match Model.of_string s with
  | Some m -> m
  | None ->
    inputf "unknown model name %S (expected one of %s)" s
      (String.concat ", " (List.map Model.to_string Model.all))

type case = {
  instance_name : string;
  inst : Instance.t;
  m : Model.t;
  config : Modelcheck.Explore.config;
  deep : bool;  (* FIG6-class exhaustive case: subject to --min-speedup *)
}

let case ?(config = Modelcheck.Explore.default_config) ?(deep = false) instance_name
    inst mname =
  { instance_name; inst; m = model mname; config; deep }

(* The fast subset runs in well under a second; the deep cases are the Fig. 6
   exhaustive polling runs the paper harness also performs. *)
let fast_cases () =
  [
    case "DISAGREE" Gadgets.disagree "R1O";
    case "DISAGREE" Gadgets.disagree "REA";
    case "DISAGREE" Gadgets.disagree "UMS";
    case "FIG6" Gadgets.fig6 "REA";
  ]

let deep_cases () =
  [ case ~deep:true "FIG6" Gadgets.fig6 "R1A"; case ~deep:true "FIG6" Gadgets.fig6 "RMA" ]

type run = {
  domains : int;
      (* the domain count the exploration actually ran with, from the
         metrics — for sequential-only modes (checkpoint, frontier spill)
         the bench passes no explicit count and the library may downgrade
         an environment-implied one, recording why in [downgraded] *)
  states : int;
  edges : int;
  wall_s : float;
  states_per_sec : float;
  dedup_rate : float;
  peak_frontier : int;
  ample_states : int;  (* POR: states expanded through a proper ample subset *)
  canonicalized : int;  (* sym: interns rewritten to an orbit representative *)
  pruned : bool;
  truncated : bool;
  verdict : string;
  downgraded : string option;
  pool_engaged : bool;
      (* a [domains > 1] setting actually handed work to the pool; false
         means the adaptive cutover (or 1-core default) degraded the run to
         the sequential path, so its wall time measures sequential code *)
}

(* One timed exploration.  With [repeat > 1] the case runs that many times
   and the fastest wall time is kept (fresh metrics each time, so counters
   never accumulate across repetitions): min-of-N measures the code, not
   the scheduler's mood, which matters once speedups are gated.  Pool
   engagement is detected per repetition from the persistent pool's [runs]
   counter: a parallel setting whose exploration never bumped it silently
   took the sequential path (e.g. [default_spill] is infinite on 1-core
   hosts), and reporting its time as a parallel measurement would be a
   lie — see [speedup_of]. *)
let run_one ?ckpt ?frontier ~reduction c ~domains ~spill ~repeat =
  let checkpoint, resume =
    match ckpt with
    | None -> (None, None)
    | Some (path, every, resume) ->
      let snap =
        if resume && Sys.file_exists path then
          match Snapshot.load ~path c.inst with
          | Ok s -> Some s
          | Error e ->
            (* An existing but unloadable checkpoint is a real finding
               (truncation cannot happen — writes are atomic — so this is
               bit-rot or a foreign file); resuming from scratch would
               silently hide it. *)
            inputf "%s" (Snapshot.error_to_string e)
        else None
      in
      (Some { Modelcheck.Explore.path; every }, snap)
  in
  let once () =
    let metrics = Metrics.create () in
    let pool_runs_before = (Pool.stats (Pool.get ())).Pool.runs in
    let graph =
      Modelcheck.Explore.explore ~config:c.config ~reduction ?domains ?spill
        ?frontier_spill:frontier ~metrics ?checkpoint ?resume c.inst c.m
    in
    let engaged = (Pool.stats (Pool.get ())).Pool.runs > pool_runs_before in
    let verdict =
      Metrics.timed ~m:metrics "analyze" (fun () ->
          Modelcheck.Oscillation.verdict_name
            (Modelcheck.Oscillation.analyze_graph c.inst graph))
    in
    (metrics, graph, verdict, engaged)
  in
  let best = ref (once ()) in
  for _ = 2 to max 1 repeat do
    let ((m, _, _, _) as r) = once () in
    let best_m, _, _, _ = !best in
    if Metrics.phase_time m "explore" < Metrics.phase_time best_m "explore" then
      best := r
  done;
  let metrics, graph, verdict, pool_engaged = !best in
  {
    domains = Metrics.domains metrics;
    states = Array.length graph.Modelcheck.Explore.states;
    edges = Metrics.edges metrics;
    wall_s = Metrics.phase_time metrics "explore";
    states_per_sec = Metrics.states_per_sec metrics;
    dedup_rate = Metrics.dedup_rate metrics;
    peak_frontier = Metrics.peak_frontier metrics;
    ample_states = Metrics.ample_states metrics;
    canonicalized = Metrics.canonicalized metrics;
    pruned = graph.Modelcheck.Explore.pruned;
    truncated = graph.Modelcheck.Explore.truncated;
    verdict;
    downgraded = Metrics.downgrade metrics;
    pool_engaged;
  }

let json_of_run r =
  Json.Obj
    [
      ("domains", Json.Num (float_of_int r.domains));
      ("states", Json.Num (float_of_int r.states));
      ("edges", Json.Num (float_of_int r.edges));
      ("wall_s", Json.Num r.wall_s);
      ("states_per_sec", Json.Num r.states_per_sec);
      ("dedup_rate", Json.Num r.dedup_rate);
      ("peak_frontier", Json.Num (float_of_int r.peak_frontier));
      ("ample_states", Json.Num (float_of_int r.ample_states));
      ("canonicalized", Json.Num (float_of_int r.canonicalized));
      ("pruned", Json.Bool r.pruned);
      ("truncated", Json.Bool r.truncated);
      ("verdict", Json.Str r.verdict);
      ( "downgraded",
        match r.downgraded with None -> Json.Null | Some why -> Json.Str why );
      ("pool_engaged", Json.Bool r.pool_engaged);
    ]

type case_result = {
  c : case;
  runs : run list;
  agree : bool; (* verdicts and state counts identical across domain counts *)
}

(* [domains_list] holds [Some d] for an explicit per-run domain request and
   [None] for "let the library decide" — the sequential-only modes use
   [None] so an environment-implied parallelism default is downgraded (and
   the downgrade recorded) by the library instead of asserted here. *)
let run_case ?ckpt ?frontier ~reduction ~domains_list ~spill ~repeat c =
  let runs =
    List.map
      (fun d -> run_one ?ckpt ?frontier ~reduction c ~domains:d ~spill ~repeat)
      domains_list
  in
  let agree =
    match runs with
    | [] -> true
    | r0 :: rest ->
      List.for_all
        (fun r -> String.equal r.verdict r0.verdict && r.states = r0.states)
        rest
  in
  { c; runs; agree }

(* Sequential wall / parallel wall for the case — but only when the
   parallel setting actually engaged the pool.  If it silently degraded to
   the sequential path (1-core default spill, or a frontier that never
   outgrew the threshold) the ratio would be sequential-vs-sequential
   noise dressed up as a parallel speedup, so no [speedup] is reported at
   all and a `--min-speedup` gate fails the case loudly instead. *)
let speedup_of cr =
  match
    ( List.find_opt (fun r -> r.domains = 1) cr.runs,
      List.find_opt (fun r -> r.domains > 1) cr.runs )
  with
  | Some seq, Some par when par.pool_engaged && par.wall_s > 0. ->
    Some (seq.wall_s /. par.wall_s)
  | _ -> None

let json_of_case_result cr =
  Json.Obj
    ([
       ("instance", Json.Str cr.c.instance_name);
       ("model", Json.Str (Model.to_string cr.c.m));
       ("channel_bound", Json.Num (float_of_int cr.c.config.Modelcheck.Explore.channel_bound));
       ("max_states", Json.Num (float_of_int cr.c.config.Modelcheck.Explore.max_states));
       ("deep", Json.Bool cr.c.deep);
       ("runs", Json.List (List.map json_of_run cr.runs));
       ("agree", Json.Bool cr.agree);
     ]
    @ match speedup_of cr with None -> [] | Some s -> [ ("speedup", Json.Num s) ])

(* [par_domains]: DOMAINS when set and > 1, else 2 — there is always one
   parallel setting to compare against the sequential baseline. *)
let par_domains () = max 2 (Modelcheck.Explore.default_domains ())

(* The single reading of the DEEP knob: unset or anything but "0" means
   deep.  bench/main.ml and [main] below both consult this. *)
let deep_env () =
  match Sys.getenv_opt "DEEP" with Some "0" -> false | Some _ | None -> true

(* Peak resident set of this process in KiB, from /proc/self/status (Linux);
   0 where unavailable. *)
let vm_hwm_kb () =
  match In_channel.with_open_text "/proc/self/status" In_channel.input_all with
  | text ->
    String.split_on_char '\n' text
    |> List.find_map (fun line ->
           match String.index_opt line ':' with
           | Some i when String.sub line 0 i = "VmHWM" ->
             String.sub line (i + 1) (String.length line - i - 1)
             |> String.trim
             |> String.split_on_char ' '
             |> (function kb :: _ -> int_of_string_opt kb | [] -> None)
           | _ -> None)
    |> Option.value ~default:0
  | exception Sys_error _ -> 0

let run_all ~reduction ~deep ~domains ~spill ~repeat =
  let domains_list = [ Some 1; Some domains ] in
  let cases = fast_cases () @ (if deep then deep_cases () else []) in
  List.map (run_case ~reduction ~domains_list ~spill ~repeat) cases

(* Frontier-spill mode is sequential-only, like checkpointing: the spool's
   pop order is defined for the deterministic BFS.  One spill directory per
   case, removed when the case drains it empty. *)
let run_all_spilled ~reduction ~deep ~spill ~repeat ~dir ~chunk =
  let cases = fast_cases () @ (if deep then deep_cases () else []) in
  List.map
    (fun c ->
      let case_dir =
        Filename.concat dir
          (Printf.sprintf "%s-%s" c.instance_name (Model.to_string c.m))
      in
      let frontier = { Modelcheck.Explore.dir = case_dir; chunk } in
      let cr =
        run_case ~frontier ~reduction ~domains_list:[ None ] ~spill ~repeat c
      in
      (if Sys.file_exists case_dir && Sys.is_directory case_dir then
         match Sys.readdir case_dir with
         | [||] -> Sys.rmdir case_dir
         | _ -> () (* leftover chunks mark a bug; keep them inspectable *));
      cr)
    cases

(* Checkpointed variant: exploration order must be deterministic for a
   resumed run to be bit-identical, so only the sequential setting runs
   (one checkpoint file per case, derived from [base]).  A case's file is
   deleted once it completes — a file left behind always marks unfinished
   work, and [--resume] after a fully successful run starts fresh. *)
let ckpt_file base c =
  Printf.sprintf "%s.%s-%s" base c.instance_name (Model.to_string c.m)

let run_all_checkpointed ~reduction ~deep ~spill ~base ~every ~resume =
  let cases = fast_cases () @ (if deep then deep_cases () else []) in
  List.map
    (fun c ->
      let file = ckpt_file base c in
      let cr =
        run_case ~ckpt:(file, every, resume) ~reduction ~domains_list:[ None ]
          ~spill ~repeat:1 c
      in
      if Sys.file_exists file then Sys.remove file;
      cr)
    cases

let to_json ?baseline ~reduction ~deep ~domains ~spill ~repeat results =
  let pool_stats =
    let s = Pool.stats (Pool.get ()) in
    Json.Obj
      [
        ("size", Json.Num (float_of_int s.Pool.size));
        ("spawned_total", Json.Num (float_of_int s.Pool.spawned_total));
        ("runs", Json.Num (float_of_int s.Pool.runs));
      ]
  in
  (* The spill threshold actually in effect for the parallel runs: the
     forced --spill value when given, else the hardware-aware default. *)
  let spill_threshold =
    match (spill, Modelcheck.Explore.default_spill ()) with
    | Some s, _ | None, Some s -> Json.Num (float_of_int s)
    | None, None -> Json.Null
  in
  Json.Obj
    ([
       ("schema", Json.Str schema);
       ("repr", Json.Str repr);
       ("reduction", Json.Str (Modelcheck.Reduce.to_string reduction));
       ("deep", Json.Bool deep);
       ("domains_compared", Json.List [ Json.Num 1.; Json.Num (float_of_int domains) ]);
       ("repeat", Json.Num (float_of_int repeat));
       ("spill_threshold", spill_threshold);
       ("cases", Json.List (List.map json_of_case_result results));
       ("pool", pool_stats);
       ("vm_hwm_kb", Json.Num (float_of_int (vm_hwm_kb ())));
       ("arena_paths", Json.Num (float_of_int (Arena.size ())));
     ]
    @ match baseline with None -> [] | Some b -> [ ("baseline", b) ])

(* Atomic, like every committed artifact: a kill mid-emit leaves the old
   BENCH_explore.json intact instead of a truncated one. *)
let write_file path contents = Snapshot.write_atomic path contents

(* ------------------------------------------------------------------ *)
(* Artifact comparison for the kill-and-resume CI gate: two artifacts are
   equivalent when they differ only in measurements a resumed process
   cannot reproduce — wall times, rates, memory peaks, pool/arena
   occupancy, and the environment-dependent downgrade note.  Everything
   else (states, edges, counters, verdicts, flags) must be byte-for-byte
   identical.  The reduction counters [ample_states]/[canonicalized] are
   deliberately in the ignore list — a resumed reduced run restores them
   from the snapshot, but what makes a reduced-vs-unreduced comparison
   fail is the semantic content: the top-level "reduction" tag and the
   state/edge counts, which are never blanked. *)

let volatile_keys =
  [
    "wall_s";
    "states_per_sec";
    "speedup";
    "vm_hwm_kb";
    "arena_paths";
    "pool";
    "ample_states";
    "canonicalized";
    "downgraded";
  ]

(* Every field this schema version can emit, at any nesting level.  The
   comparison is strict: a field that is neither known nor volatile means
   the artifact came from a different (likely newer) writer, and silently
   comparing it as significant — or worse, ignoring it — would make the
   gate's verdict meaningless.  Extending the artifact requires extending
   this list, which is the point. *)
let known_keys =
  [
    (* top level *)
    "schema";
    "repr";
    "reduction";
    "deep";
    "domains_compared";
    "repeat";
    "spill_threshold";
    "cases";
    "vm_hwm_kb";
    "arena_paths";
    "pool";
    "baseline";
    (* per case *)
    "instance";
    "model";
    "channel_bound";
    "max_states";
    "runs";
    "agree";
    "speedup";
    (* per run *)
    "domains";
    "states";
    "edges";
    "wall_s";
    "states_per_sec";
    "dedup_rate";
    "peak_frontier";
    "ample_states";
    "canonicalized";
    "pruned";
    "truncated";
    "verdict";
    "downgraded";
    "pool_engaged";
    (* pool stats *)
    "size";
    "spawned_total";
  ]

(* The first field not covered by [known_keys]/[volatile_keys], if any.
   The embedded "baseline" subtree is exempt: it is a verbatim copy of a
   previously emitted artifact of any schema version, recorded for humans,
   not compared. *)
let rec first_unknown_key path = function
  | Json.Obj fields ->
    List.fold_left
      (fun acc (k, v) ->
        match acc with
        | Some _ -> acc
        | None ->
          if not (List.mem k known_keys || List.mem k volatile_keys) then
            Some (path ^ "." ^ k)
          else if k = "baseline" then None
          else first_unknown_key (path ^ "." ^ k) v)
      None fields
  | Json.List l ->
    List.fold_left
      (fun (i, acc) v ->
        match acc with
        | Some _ -> (i + 1, acc)
        | None -> (i + 1, first_unknown_key (Printf.sprintf "%s[%d]" path i) v))
      (0, None) l
    |> snd
  | _ -> None

let rec scrub = function
  | Json.Obj fields ->
    Json.Obj
      (List.map
         (fun (k, v) -> (k, if List.mem k volatile_keys then Json.Null else scrub v))
         fields)
  | Json.List l -> Json.List (List.map scrub l)
  | v -> v

(* The path of the first structural difference, for an actionable message. *)
let rec first_diff path a b =
  match (a, b) with
  | Json.Obj fa, Json.Obj fb ->
    if List.map fst fa <> List.map fst fb then Some (path ^ ": field sets differ")
    else
      List.fold_left2
        (fun acc (k, va) (_, vb) ->
          match acc with
          | Some _ -> acc
          | None -> first_diff (path ^ "." ^ k) va vb)
        None fa fb
  | Json.List la, Json.List lb ->
    if List.length la <> List.length lb then Some (path ^ ": list lengths differ")
    else
      List.fold_left2
        (fun (i, acc) va vb ->
          match acc with
          | Some _ -> (i + 1, acc)
          | None -> (i + 1, first_diff (Printf.sprintf "%s[%d]" path i) va vb))
        (0, None) la lb
      |> snd
  | a, b -> if a = b then None else Some path

let compare_ignoring_timings path_a path_b =
  let parse p =
    match In_channel.with_open_bin p In_channel.input_all with
    | exception Sys_error e -> inputf "%s" e
    | text -> (
      match Json.parse text with
      | Ok v -> (
        match first_unknown_key "$" v with
        | Some where ->
          inputf
            "%s has a field this comparer does not know at %s; \
             extend known_keys or volatile_keys before trusting the verdict"
            p where
        | None -> scrub v)
      | Error e -> inputf "%s does not parse: %s" p e)
  in
  let a = parse path_a and b = parse path_b in
  match first_diff "$" a b with
  | None -> Printf.printf "%s and %s are identical modulo timings\n" path_a path_b
  | Some where -> gatef "%s and %s differ at %s" path_a path_b where

(* ------------------------------------------------------------------ *)
(* Reduction-parity gate: a reduced suite must reproduce the verdicts of a
   committed unreduced artifact case for case, and on deep cases must
   visit at least [min_reduction] times fewer states.  Matching is by
   (instance, model); a case the baseline artifact lacks is a failure —
   an uncompared verdict is not parity. *)

let parity_failures ~against ~min_reduction results =
  let str k obj = match Json.member k obj with Some (Json.Str s) -> Some s | _ -> None in
  let num k obj = match Json.member k obj with Some (Json.Num n) -> Some n | _ -> None in
  let base_cases =
    match Json.member "cases" against with Some (Json.List l) -> l | _ -> []
  in
  let find_case name m =
    List.find_opt
      (fun obj -> str "instance" obj = Some name && str "model" obj = Some m)
      base_cases
  in
  (* the sequential run of a baseline case: domains=1 when present, else
     the first recorded run *)
  let base_seq obj =
    match Json.member "runs" obj with
    | Some (Json.List runs) -> (
      match List.find_opt (fun r -> num "domains" r = Some 1.) runs with
      | Some r -> Some r
      | None -> ( match runs with r :: _ -> Some r | [] -> None))
    | _ -> None
  in
  List.concat_map
    (fun cr ->
      let name = cr.c.instance_name and m = Model.to_string cr.c.m in
      let cur =
        match List.find_opt (fun r -> r.domains = 1) cr.runs with
        | Some r -> Some r
        | None -> ( match cr.runs with r :: _ -> Some r | [] -> None)
      in
      match (cur, find_case name m) with
      | None, _ -> [ Printf.sprintf "%s/%s: no runs recorded" name m ]
      | Some _, None ->
        [ Printf.sprintf "%s/%s: missing from the --parity-against artifact" name m ]
      | Some cur, Some bc -> (
        match base_seq bc with
        | None -> [ Printf.sprintf "%s/%s: baseline case has no runs" name m ]
        | Some br ->
          let verdict_fail =
            if str "verdict" br <> Some cur.verdict then
              [
                Printf.sprintf "%s/%s: verdict %s differs from baseline %s" name m
                  cur.verdict
                  (Option.value ~default:"<absent>" (str "verdict" br));
              ]
            else []
          in
          let reduction_fail =
            match (min_reduction, num "states" br) with
            | Some floor, Some bs when cr.c.deep ->
              let ratio =
                if cur.states = 0 then infinity else bs /. float_of_int cur.states
              in
              if ratio < floor then
                [
                  Printf.sprintf
                    "%s/%s: reduction %.2fx (baseline %.0f -> %d states) below \
                     --min-reduction %.2f"
                    name m ratio bs cur.states floor;
                ]
              else []
            | Some _, None when cr.c.deep ->
              [ Printf.sprintf "%s/%s: baseline case lacks a states count" name m ]
            | _ -> []
          in
          verdict_fail @ reduction_fail))
    results

(* Runs the suite, writes [path], validates that the artifact re-parses and
   that every case agreed across domain counts.  Returns the failures.
   [baseline] embeds a previously emitted artifact (any schema version)
   under a "baseline" key, recording the before/after perf comparison in
   the artifact itself.  [parity] is a parsed unreduced artifact paired
   with an optional state-reduction floor (see [parity_failures]). *)
let emit ?(path = "BENCH_explore.json") ?baseline ?(repeat = 1) ?min_speedup ?spill
    ?checkpoint ?(resume = false) ?frontier ?parity
    ?(reduction = Modelcheck.Reduce.No_reduction) ~deep ~domains () =
  (* Checkpoint and frontier-spill modes are sequential-only (their
     semantics are defined for the deterministic order), so the artifact
     records domains=1 and — for checkpointing, where a resumed run must
     match an uninterrupted one — a single run per case. *)
  let seq_only = checkpoint <> None || frontier <> None in
  let domains = if seq_only then 1 else domains in
  let repeat = if checkpoint = None then repeat else 1 in
  let results =
    match (checkpoint, frontier) with
    | Some (base, every), _ ->
      run_all_checkpointed ~reduction ~deep ~spill ~base ~every ~resume
    | None, Some (dir, chunk) ->
      run_all_spilled ~reduction ~deep ~spill ~repeat ~dir ~chunk
    | None, None -> run_all ~reduction ~deep ~domains ~spill ~repeat
  in
  let text =
    Json.to_string (to_json ?baseline ~reduction ~deep ~domains ~spill ~repeat results)
  in
  write_file path text;
  let parse_failure =
    match Json.parse text with
    | Ok v ->
      if Json.member "cases" v = None then [ "emitted JSON lacks a cases field" ] else []
    | Error e -> [ "emitted JSON does not parse: " ^ e ]
  in
  let disagreements =
    List.filter_map
      (fun cr ->
        if cr.agree then None
        else
          Some
            (Printf.sprintf "%s/%s: domains disagree on verdict or state count"
               cr.c.instance_name (Model.to_string cr.c.m)))
      results
  in
  (* The regression gate: every deep (FIG6-class) case must reach the
     requested sequential-vs-parallel speedup, so the "parallel slower than
     sequential" regression this schema version fixed can never silently
     return. *)
  let slow =
    match min_speedup with
    | None -> []
    | Some floor ->
      List.filter_map
        (fun cr ->
          if not cr.c.deep then None
          else
            match speedup_of cr with
            | Some s when s >= floor -> None
            | Some s ->
              Some
                (Printf.sprintf "%s/%s: speedup %.3f below --min-speedup %.3f"
                   cr.c.instance_name (Model.to_string cr.c.m) s floor)
            | None ->
              Some
                (Printf.sprintf
                   "%s/%s: no parallel speedup measured — the domains>1 run \
                    never engaged the pool (--min-speedup %.3f)"
                   cr.c.instance_name (Model.to_string cr.c.m) floor))
        results
  in
  let parity_fails =
    match parity with
    | None -> []
    | Some (against, min_reduction) -> parity_failures ~against ~min_reduction results
  in
  (results, parse_failure @ disagreements @ slow @ parity_fails)

let pp_summary ppf results =
  List.iter
    (fun cr ->
      List.iter
        (fun r ->
          Fmt.pf ppf "  %-9s %-4s domains=%d states=%-7d %8.0f states/s (%.2fs) %s%s%s@."
            cr.c.instance_name (Model.to_string cr.c.m) r.domains r.states
            r.states_per_sec r.wall_s r.verdict
            (if r.domains > 1 && not r.pool_engaged then " [degraded to sequential]"
             else "")
            (match r.downgraded with
            | None -> ""
            | Some why -> Printf.sprintf " [downgraded: %s]" why))
        cr.runs)
    results

(* ------------------------------------------------------------------ *)
(* The one CLI.  Exits nonzero if the artifact fails to parse or the domain
   settings disagree on any verdict/state count (exit 1), or on bad
   arguments (exit 2). *)

let usage =
  "usage: bench_explore [-o FILE] [--domains N|auto] [--repeat N] [--deep|--fast]\n\
  \                    [--reduction por|sym|none] [--baseline FILE]\n\
  \                    [--min-speedup X] [--spill N]\n\
  \                    [--parity-against FILE [--min-reduction X]]\n\
  \                    [--checkpoint PATH [--checkpoint-every N] [--resume]]\n\
  \                    [--frontier-spill DIR [--frontier-chunk N]]\n\
  \                    [--compare-ignoring-timings A B]\n\
   \  -o FILE          artifact path (default BENCH_explore.json)\n\
   \  --domains N      parallel domain count to compare against domains=1 (N >= 2,\n\
   \                   or \"auto\" for recommended_domain_count - 1, at least 2);\n\
   \                   incompatible with the sequential-only modes below\n\
   \  --repeat N       run each (case, domains) N times, keep the fastest (default 1)\n\
   \  --deep           include the Fig. 6 exhaustive polling cases (default;\n\
   \                   also controlled by the DEEP env var: DEEP=0 disables)\n\
   \  --fast           fast subset only (same as DEEP=0)\n\
   \  --reduction R    explore under a state-space reduction: por (ample sets),\n\
   \                   sym (symmetry quotient; incompatible with --checkpoint),\n\
   \                   or none (default, the exact legacy exploration)\n\
   \  --baseline FILE  embed a previously emitted artifact under \"baseline\"\n\
   \  --min-speedup X  exit 1 if any deep case's speedup falls below X\n\
   \  --spill N        force the work-stealing cutover threshold (frontier size);\n\
   \                   overrides the hardware-aware default, so the pool engages\n\
   \                   even on hosts where that default would stay sequential\n\
   \  --parity-against FILE  exit 1 unless every case's verdict matches the same\n\
   \                   (instance, model) case in the unreduced artifact FILE\n\
   \  --min-reduction X  with --parity-against: exit 1 if any deep case visits\n\
   \                   fewer than X times fewer states than the baseline case\n\
   \  --checkpoint PATH  write crash-safe per-case checkpoints to PATH.<case>\n\
   \                   (sequential-only; files are deleted as cases complete)\n\
   \  --checkpoint-every N  expanded states between checkpoints (default 2000)\n\
   \  --resume         resume each case from its checkpoint file if present\n\
   \  --frontier-spill DIR  spill the middle of each BFS frontier to chunk files\n\
   \                   under DIR (sequential-only; chunks deleted as consumed)\n\
   \  --frontier-chunk N  states per spilled chunk (default 4096)\n\
   \  --compare-ignoring-timings A B  exit 0 iff artifacts A and B are identical\n\
   \                   after blanking wall times, rates, memory, pool stats and\n\
   \                   the reduction work counters; unknown fields are an error\n"

let main () =
  let path = ref "BENCH_explore.json" in
  let domains = ref (par_domains ()) in
  let domains_given = ref false in
  let repeat = ref 1 in
  let reduction = ref Modelcheck.Reduce.No_reduction in
  let baseline_path = ref None in
  let min_speedup = ref None in
  let spill = ref None in
  let parity_path = ref None in
  let min_reduction = ref None in
  let checkpoint = ref None in
  let checkpoint_every = ref 2000 in
  let resume = ref false in
  let frontier_dir = ref None in
  let frontier_chunk = ref 4096 in
  (* DEEP env sets the default; --deep/--fast flags override. *)
  let deep = ref (deep_env ()) in
  let bad msg = raise (Fail (Usage msg)) in
  let rec parse_args = function
    | [] -> ()
    | "-o" :: p :: rest ->
      path := p;
      parse_args rest
    | "--domains" :: n :: rest ->
      (if String.lowercase_ascii (String.trim n) = "auto" then
         domains := max 2 (Modelcheck.Explore.auto_domains ())
       else
         match int_of_string_opt n with
         | Some d when d >= 2 -> domains := d
         | _ -> bad "--domains expects an int >= 2 or \"auto\"");
      domains_given := true;
      parse_args rest
    | "--reduction" :: r :: rest ->
      (match Modelcheck.Reduce.of_string r with
      | Some red -> reduction := red
      | None -> bad "--reduction expects por, sym or none");
      parse_args rest
    | "--repeat" :: n :: rest ->
      (match int_of_string_opt n with
      | Some r when r >= 1 -> repeat := r
      | _ -> bad "--repeat expects an int >= 1");
      parse_args rest
    | "--deep" :: rest ->
      deep := true;
      parse_args rest
    | "--fast" :: rest ->
      deep := false;
      parse_args rest
    | "--baseline" :: p :: rest ->
      baseline_path := Some p;
      parse_args rest
    | "--min-speedup" :: x :: rest ->
      (match float_of_string_opt x with
      | Some f when f > 0. -> min_speedup := Some f
      | _ -> bad "--min-speedup expects a positive float");
      parse_args rest
    | "--spill" :: n :: rest ->
      (match int_of_string_opt n with
      | Some s when s >= 0 -> spill := Some s
      | _ -> bad "--spill expects an int >= 0");
      parse_args rest
    | "--parity-against" :: p :: rest ->
      parity_path := Some p;
      parse_args rest
    | "--min-reduction" :: x :: rest ->
      (match float_of_string_opt x with
      | Some f when f > 0. -> min_reduction := Some f
      | _ -> bad "--min-reduction expects a positive float");
      parse_args rest
    | "--checkpoint" :: p :: rest ->
      checkpoint := Some p;
      parse_args rest
    | "--frontier-spill" :: d :: rest ->
      frontier_dir := Some d;
      parse_args rest
    | "--frontier-chunk" :: n :: rest ->
      (match int_of_string_opt n with
      | Some c when c >= 1 -> frontier_chunk := c
      | _ -> bad "--frontier-chunk expects an int >= 1");
      parse_args rest
    | "--checkpoint-every" :: n :: rest ->
      (match int_of_string_opt n with
      | Some e when e >= 1 -> checkpoint_every := e
      | _ -> bad "--checkpoint-every expects an int >= 1");
      parse_args rest
    | "--resume" :: rest ->
      resume := true;
      parse_args rest
    | [ "--compare-ignoring-timings"; a; b ] -> compare_ignoring_timings a b
    | "--compare-ignoring-timings" :: _ ->
      bad "--compare-ignoring-timings expects exactly two artifact paths"
    | arg :: _ -> bad (Printf.sprintf "unknown argument %s" arg)
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  if !resume && !checkpoint = None then bad "--resume requires --checkpoint PATH";
  if !checkpoint <> None && !frontier_dir <> None then
    bad "--checkpoint and --frontier-spill are mutually exclusive";
  let seq_only = !checkpoint <> None || !frontier_dir <> None in
  (* S1: a parallel domain request combined with a sequential-only mode is
     a contradiction; refuse it here (the library raises the same way) so
     the artifact never quietly records a different setting than asked. *)
  if !domains_given && seq_only then
    bad
      "--domains is incompatible with --checkpoint/--frontier-spill (sequential-only \
       modes run on one domain)";
  if seq_only && !min_speedup <> None then
    bad "--min-speedup needs parallel runs; incompatible with sequential-only modes";
  if !checkpoint <> None && !reduction = Modelcheck.Reduce.Sym then
    bad
      "--reduction sym cannot be checkpointed or resumed (orbit representatives are \
       process-local)";
  if !min_reduction <> None && !parity_path = None then
    bad "--min-reduction requires --parity-against FILE";
  let parse_artifact what p =
    match In_channel.with_open_text p In_channel.input_all with
    | text -> (
      match Json.parse text with
      | Ok v -> v
      | Error e -> bad (Printf.sprintf "%s %s does not parse: %s" what p e))
    | exception Sys_error e -> bad e
  in
  let baseline = Option.map (parse_artifact "baseline") !baseline_path in
  let parity =
    Option.map (fun p -> (parse_artifact "--parity-against" p, !min_reduction))
      !parity_path
  in
  let checkpoint = Option.map (fun p -> (p, !checkpoint_every)) !checkpoint in
  let frontier = Option.map (fun d -> (d, !frontier_chunk)) !frontier_dir in
  let results, failures =
    emit ~path:!path ?baseline ~repeat:!repeat ?min_speedup:!min_speedup ?spill:!spill
      ?checkpoint ~resume:!resume ?frontier ?parity ~reduction:!reduction ~deep:!deep
      ~domains:!domains ()
  in
  let mode =
    if checkpoint <> None then "sequential, checkpointed"
    else if frontier <> None then "sequential, frontier spilled"
    else Printf.sprintf "domains 1 vs %d" !domains
  in
  Format.printf "explore bench (%s, reduction %s):@." mode
    (Modelcheck.Reduce.to_string !reduction);
  pp_summary Format.std_formatter results;
  Format.printf "wrote %s@." !path;
  match failures with
  | [] -> ()
  | fs ->
    List.iter (fun f -> Printf.eprintf "FAIL: %s\n" f) fs;
    raise (Fail (Gate None))

(* The only place exit codes are decided. *)
let run () =
  match main () with
  | () -> ()
  | exception Fail (Usage m) ->
    prerr_endline ("bench_explore: " ^ m);
    prerr_string usage;
    exit 2
  | exception Fail (Input m) ->
    prerr_endline ("bench_explore: " ^ m);
    exit 2
  | exception Fail (Gate (Some m)) ->
    prerr_endline ("bench_explore: " ^ m);
    exit 1
  | exception Fail (Gate None) -> exit 1
