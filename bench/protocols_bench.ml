(* The protocol sweep: gossip and push-sum under all 24 communication
   models, on ring/star/complete topologies, emitting the committed
   machine-readable artifact results/BENCH_protocols.json (schema
   commrouting/bench_protocols/v1).

   Three sections per artifact:
   - "cases": canonical fair executor runs (round robin; plus the
     deterministic lossy round robin for unreliable models) with stop
     reason, step/message/drop counts and — for push-sum — the mass
     ledger: initial mass, final mass (locals + in-flight), mass carried
     by dropped messages, and the worst per-node estimate error.  The
     ledger is the point: reliable models conserve mass exactly, lossy
     unreliable runs lose exactly what their drops carried.
   - "verdicts": exhaustive gossip verdicts per (topology, model) from
     the generic explorer, with state counts.
   - "timed": the MRAI/timed wrapper sweep, finish times and message
     counts per activation interval.

   Everything recorded except wall_s is deterministic (sequential runs,
   no RNG, pure float arithmetic), so CI gates a fresh smoke sweep
   against the committed artifact with --compare-ignoring-timings. *)

open Engine
module Json = Metrics.Json

(* Every failure path raises a typed [failure]; the runner at the bottom
   of the file is the only place exit codes are decided. *)
type failure =
  | Usage of string  (** bad command line: message + usage text, exit 2 *)
  | Input of string  (** unreadable or foreign artifact: exit 2, no usage dump *)
  | Gate of string option
      (** a sweep invariant failed: exit 1.  [None] when the failing path
          already printed its own diagnostics. *)

exception Fail of failure

let inputf fmt = Fmt.kstr (fun m -> raise (Fail (Input m))) fmt
let gatef fmt = Fmt.kstr (fun m -> raise (Fail (Gate (Some m)))) fmt

module EG = Generic.Make (Protocols.Gossip)
module EPS = Generic.Make (Protocols.Pushsum)
module GX = Modelcheck.Gexplore.Make (Protocols.Gossip)

let schema = "commrouting/bench_protocols/v1"

(* ------------------------------------------------------------------ *)
(* Budgets.  The committed artifact is the smoke budget, so the CI gate
   compares like against like; --budget full widens topologies and step
   caps for manual runs. *)

type budget = Smoke | Full

let budget_name = function Smoke -> "smoke" | Full -> "full"

let topologies = function
  | Smoke -> [ Protocols.Topo.ring 4; Protocols.Topo.star 4; Protocols.Topo.complete 4 ]
  | Full ->
    [
      Protocols.Topo.ring 4;
      Protocols.Topo.star 4;
      Protocols.Topo.complete 4;
      Protocols.Topo.ring 6;
      Protocols.Topo.star 6;
      Protocols.Topo.complete 5;
    ]

(* Exhaustive gossip verdicts are only computed where the bounded state
   space stays tractable: under the M_one models a 5-clique's message
   interleavings blow past 200k states and the truncated graph can only
   answer "unknown", so complete5 appears in the executor and timed
   sweeps but not the verdict sweep. *)
let verdict_topologies = function
  | Smoke -> topologies Smoke
  | Full -> topologies Smoke @ [ Protocols.Topo.ring 6; Protocols.Topo.star 6 ]

let max_steps = function Smoke -> 2_000 | Full -> 20_000

let explore_config = function
  | Smoke -> { Modelcheck.Explore.channel_bound = 2; max_states = 20_000 }
  | Full -> { Modelcheck.Explore.channel_bound = 2; max_states = 20_000 }

let lossy_every = 3
let intervals = [ 1; 2; 4; 8 ]

(* ------------------------------------------------------------------ *)
(* Executor cases. *)

type mass_ledger = {
  mass_initial : float;
  mass_final : float;
  mass_dropped : float;
  est_err : float;  (** worst per-node |s/w - avg| in the final state *)
}

type case = {
  protocol : string;
  topology : string;
  n : int;
  model : Model.t;
  schedule : string;  (** "round-robin" or "lossy-every-3" *)
  stop : string;
  steps : int;
  messages : int;
  drops : int;
  converged : bool;
  wall_s : float;
  mass : mass_ledger option;  (** push-sum only *)
}

let stop_name_g = function
  | EG.Executor.Converged -> "converged"
  | EG.Executor.Cycle _ -> "cycle"
  | EG.Executor.Exhausted -> "exhausted"

let stop_name_p = function
  | EPS.Executor.Converged -> "converged"
  | EPS.Executor.Cycle _ -> "cycle"
  | EPS.Executor.Exhausted -> "exhausted"

let schedules_for (m : Model.t) =
  match m.Model.rel with
  | Model.Reliable -> [ `Plain ]
  | Model.Unreliable -> [ `Plain; `Lossy ]

let schedule_name = function
  | `Plain -> "round-robin"
  | `Lossy -> Printf.sprintf "lossy-every-%d" lossy_every

let run_gossip ~max_steps topo m kind =
  let inst = Protocols.Gossip.make topo in
  let sched =
    match kind with
    | `Plain -> EG.round_robin inst m
    | `Lossy -> EG.round_robin_lossy ~every:lossy_every inst m
  in
  let t0 = Unix.gettimeofday () in
  let r = EG.Executor.run ~max_steps inst sched in
  {
    protocol = "gossip";
    topology = topo.Protocols.Topo.name;
    n = topo.Protocols.Topo.n;
    model = m;
    schedule = schedule_name kind;
    stop = stop_name_g r.EG.Executor.stop;
    steps = r.EG.Executor.steps;
    messages = r.EG.Executor.messages;
    drops = r.EG.Executor.drops;
    converged = r.EG.Executor.stop = EG.Executor.Converged;
    wall_s = Unix.gettimeofday () -. t0;
    mass = None;
  }

(* Total push-sum mass: locals plus in-flight payloads. *)
let ps_mass inst st =
  List.fold_left
    (fun acc v -> acc +. (EPS.State.local st v).Protocols.Pushsum.s)
    0.
    (Protocols.Pushsum.nodes inst)
  +. List.fold_left
       (fun acc (_, msgs) ->
         List.fold_left (fun a m -> a +. fst (Protocols.Pushsum.payload m)) acc msgs)
       0.
       (EPS.State.channel_bindings st)

let run_pushsum ~max_steps topo m kind =
  let inst = Protocols.Pushsum.linear topo in
  let sched =
    match kind with
    | `Plain -> EPS.round_robin inst m
    | `Lossy -> EPS.round_robin_lossy ~every:lossy_every inst m
  in
  let initial = ps_mass inst (EPS.State.initial inst) in
  let dropped = ref 0. in
  let on_step (r : EPS.Executor.step_record) =
    List.iter
      (fun (_, msgs) ->
        List.iter
          (fun msg -> dropped := !dropped +. fst (Protocols.Pushsum.payload msg))
          msgs)
      r.EPS.Executor.outcome.EPS.Step.dropped
  in
  let t0 = Unix.gettimeofday () in
  let r = EPS.Executor.run ~max_steps ~on_step inst sched in
  let avg = Protocols.Pushsum.average inst in
  let est_err =
    List.fold_left
      (fun acc v ->
        let l = EPS.State.local r.EPS.Executor.final v in
        if l.Protocols.Pushsum.w > 0. then
          Float.max acc (Float.abs ((l.Protocols.Pushsum.s /. l.Protocols.Pushsum.w) -. avg))
        else acc)
      0.
      (Protocols.Pushsum.nodes inst)
  in
  {
    protocol = "push-sum";
    topology = topo.Protocols.Topo.name;
    n = topo.Protocols.Topo.n;
    model = m;
    schedule = schedule_name kind;
    stop = stop_name_p r.EPS.Executor.stop;
    steps = r.EPS.Executor.steps;
    messages = r.EPS.Executor.messages;
    drops = r.EPS.Executor.drops;
    converged = r.EPS.Executor.stop = EPS.Executor.Converged;
    wall_s = Unix.gettimeofday () -. t0;
    mass =
      Some
        {
          mass_initial = initial;
          mass_final = ps_mass inst r.EPS.Executor.final;
          mass_dropped = !dropped;
          est_err;
        };
  }

let run_cases budget =
  let ms = max_steps budget in
  List.concat_map
    (fun topo ->
      List.concat_map
        (fun m ->
          List.concat_map
            (fun kind ->
              [ run_gossip ~max_steps:ms topo m kind; run_pushsum ~max_steps:ms topo m kind ])
            (schedules_for m))
        Model.all)
    (topologies budget)

(* ------------------------------------------------------------------ *)
(* Exhaustive gossip verdicts. *)

type verdict_row = {
  v_topology : string;
  v_n : int;
  v_model : Model.t;
  v_verdict : string;
  v_states : int;
  v_pruned : bool;
  v_truncated : bool;
}

let run_verdicts budget =
  let config = explore_config budget in
  List.concat_map
    (fun topo ->
      let inst = Protocols.Gossip.make topo in
      List.map
        (fun m ->
          let g = GX.explore ~config inst m in
          {
            v_topology = topo.Protocols.Topo.name;
            v_n = topo.Protocols.Topo.n;
            v_model = m;
            v_verdict = GX.verdict_name (GX.analyze_graph inst g);
            v_states = Array.length g.GX.states;
            v_pruned = g.GX.pruned;
            v_truncated = g.GX.truncated;
          })
        Model.all)
    (verdict_topologies budget)

(* ------------------------------------------------------------------ *)
(* Timed (MRAI) sweep. *)

type timed_row = {
  t_protocol : string;
  t_topology : string;
  t_n : int;
  t_interval : int;
  t_converged : bool;
  t_finish : int;
  t_messages : int;
  t_activations : int;
  t_drops : int;
}

let run_timed budget =
  List.concat_map
    (fun topo ->
      let name = topo.Protocols.Topo.name and n = topo.Protocols.Topo.n in
      let gossip =
        let inst = Protocols.Gossip.make topo in
        List.map
          (fun (i, (r : EG.Timed.result)) ->
            {
              t_protocol = "gossip";
              t_topology = name;
              t_n = n;
              t_interval = i;
              t_converged = r.EG.Timed.converged;
              t_finish = r.EG.Timed.finish_time;
              t_messages = r.EG.Timed.messages;
              t_activations = r.EG.Timed.activations;
              t_drops = r.EG.Timed.drops;
            })
          (EG.Timed.mrai_sweep ~intervals inst)
      in
      let pushsum =
        let inst = Protocols.Pushsum.linear topo in
        List.map
          (fun (i, (r : EPS.Timed.result)) ->
            {
              t_protocol = "push-sum";
              t_topology = name;
              t_n = n;
              t_interval = i;
              t_converged = r.EPS.Timed.converged;
              t_finish = r.EPS.Timed.finish_time;
              t_messages = r.EPS.Timed.messages;
              t_activations = r.EPS.Timed.activations;
              t_drops = r.EPS.Timed.drops;
            })
          (EPS.Timed.mrai_sweep ~intervals inst)
      in
      gossip @ pushsum)
    (topologies budget)

(* ------------------------------------------------------------------ *)
(* JSON emission. *)

let json_of_case c =
  Json.Obj
    ([
       ("protocol", Json.Str c.protocol);
       ("topology", Json.Str c.topology);
       ("n", Json.Num (float_of_int c.n));
       ("model", Json.Str (Model.to_string c.model));
       ("schedule", Json.Str c.schedule);
       ("stop", Json.Str c.stop);
       ("steps", Json.Num (float_of_int c.steps));
       ("messages", Json.Num (float_of_int c.messages));
       ("drops", Json.Num (float_of_int c.drops));
       ("converged", Json.Bool c.converged);
       ("wall_s", Json.Num c.wall_s);
     ]
    @
    match c.mass with
    | None -> []
    | Some m ->
      [
        ("mass_initial", Json.Num m.mass_initial);
        ("mass_final", Json.Num m.mass_final);
        ("mass_dropped", Json.Num m.mass_dropped);
        ("est_err", Json.Num m.est_err);
      ])

let json_of_verdict v =
  Json.Obj
    [
      ("protocol", Json.Str "gossip");
      ("topology", Json.Str v.v_topology);
      ("n", Json.Num (float_of_int v.v_n));
      ("model", Json.Str (Model.to_string v.v_model));
      ("verdict", Json.Str v.v_verdict);
      ("states", Json.Num (float_of_int v.v_states));
      ("pruned", Json.Bool v.v_pruned);
      ("truncated", Json.Bool v.v_truncated);
    ]

let json_of_timed t =
  Json.Obj
    [
      ("protocol", Json.Str t.t_protocol);
      ("topology", Json.Str t.t_topology);
      ("n", Json.Num (float_of_int t.t_n));
      ("interval", Json.Num (float_of_int t.t_interval));
      ("converged", Json.Bool t.t_converged);
      ("finish_time", Json.Num (float_of_int t.t_finish));
      ("messages", Json.Num (float_of_int t.t_messages));
      ("activations", Json.Num (float_of_int t.t_activations));
      ("drops", Json.Num (float_of_int t.t_drops));
    ]

let to_json ~budget cases verdicts timed =
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("budget", Json.Str (budget_name budget));
      ("cases", Json.List (List.map json_of_case cases));
      ("verdicts", Json.List (List.map json_of_verdict verdicts));
      ("timed", Json.List (List.map json_of_timed timed));
    ]

(* ------------------------------------------------------------------ *)
(* Artifact comparison, same contract as bench_explore's: identical after
   blanking wall-clock measurements, unknown fields are an error. *)

let volatile_keys = [ "wall_s" ]

let known_keys =
  [
    (* top level *)
    "schema";
    "budget";
    "cases";
    "verdicts";
    "timed";
    (* cases *)
    "protocol";
    "topology";
    "n";
    "model";
    "schedule";
    "stop";
    "steps";
    "messages";
    "drops";
    "converged";
    "mass_initial";
    "mass_final";
    "mass_dropped";
    "est_err";
    (* verdicts *)
    "verdict";
    "states";
    "pruned";
    "truncated";
    (* timed *)
    "interval";
    "finish_time";
    "activations";
  ]

let rec first_unknown_key path = function
  | Json.Obj fields ->
    List.fold_left
      (fun acc (k, v) ->
        match acc with
        | Some _ -> acc
        | None ->
          if not (List.mem k known_keys || List.mem k volatile_keys) then
            Some (path ^ "." ^ k)
          else first_unknown_key (path ^ "." ^ k) v)
      None fields
  | Json.List l ->
    List.fold_left
      (fun (i, acc) v ->
        match acc with
        | Some _ -> (i + 1, acc)
        | None -> (i + 1, first_unknown_key (Printf.sprintf "%s[%d]" path i) v))
      (0, None) l
    |> snd
  | _ -> None

let rec scrub = function
  | Json.Obj fields ->
    Json.Obj
      (List.map
         (fun (k, v) -> (k, if List.mem k volatile_keys then Json.Null else scrub v))
         fields)
  | Json.List l -> Json.List (List.map scrub l)
  | v -> v

let rec first_diff path a b =
  match (a, b) with
  | Json.Obj fa, Json.Obj fb ->
    if List.map fst fa <> List.map fst fb then Some (path ^ ": field sets differ")
    else
      List.fold_left2
        (fun acc (k, va) (_, vb) ->
          match acc with Some _ -> acc | None -> first_diff (path ^ "." ^ k) va vb)
        None fa fb
  | Json.List la, Json.List lb ->
    if List.length la <> List.length lb then Some (path ^ ": list lengths differ")
    else
      List.fold_left2
        (fun (i, acc) va vb ->
          match acc with
          | Some _ -> (i + 1, acc)
          | None -> (i + 1, first_diff (Printf.sprintf "%s[%d]" path i) va vb))
        (0, None) la lb
      |> snd
  | a, b -> if a = b then None else Some path

let compare_ignoring_timings path_a path_b =
  let parse p =
    match In_channel.with_open_bin p In_channel.input_all with
    | exception Sys_error e -> inputf "%s" e
    | text -> (
      match Json.parse text with
      | Ok v -> (
        match first_unknown_key "$" v with
        | Some where ->
          inputf
            "%s has a field this comparer does not know at %s; \
             extend known_keys or volatile_keys before trusting the verdict"
            p where
        | None -> scrub v)
      | Error e -> inputf "%s does not parse: %s" p e)
  in
  let a = parse path_a and b = parse path_b in
  match first_diff "$" a b with
  | None -> Printf.printf "%s and %s are identical modulo timings\n" path_a path_b
  | Some where -> gatef "%s and %s differ at %s" path_a path_b where

(* ------------------------------------------------------------------ *)
(* Semantic gates: beyond diffing against the committed artifact, the
   sweep itself must uphold the protocols' contracts. *)

let tolerance = 1e-6

let gate_failures cases verdicts =
  let fails = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> fails := s :: !fails) fmt in
  List.iter
    (fun c ->
      let tag =
        Printf.sprintf "%s/%s-%d/%s/%s" c.protocol c.topology c.n
          (Model.to_string c.model) c.schedule
      in
      (* Gossip floods in finitely many announcements: the canonical fair
         dropless round robin must converge under every model. *)
      if c.protocol = "gossip" && c.schedule = "round-robin" && not c.converged then
        fail "%s: dropless round robin did not converge (%s)" tag c.stop;
      match c.mass with
      | None -> ()
      | Some m ->
        (* The mass ledger must balance: conservation when nothing was
           dropped, exact reconciliation otherwise. *)
        let deficit = m.mass_initial -. (m.mass_final +. m.mass_dropped) in
        if Float.abs deficit > tolerance then
          fail "%s: mass leak %.3e not accounted by drops" tag deficit;
        if c.drops = 0 && Float.abs (m.mass_initial -. m.mass_final) > tolerance then
          fail "%s: mass changed without drops" tag)
    cases;
  List.iter
    (fun v ->
      let tag = Printf.sprintf "gossip/%s-%d/%s" v.v_topology v.v_n (Model.to_string v.v_model) in
      match (v.v_model.Model.rel, v.v_verdict) with
      | Model.Reliable, "converges" | Model.Unreliable, "diverges" -> ()
      | _, verdict ->
        fail "%s: verdict %s contradicts the reliability split" tag verdict)
    verdicts;
  List.rev !fails

(* ------------------------------------------------------------------ *)

let pp_summary ppf (cases, verdicts, timed) =
  List.iter
    (fun c ->
      Fmt.pf ppf "  %-8s %-8s n=%d %-4s %-14s steps=%-5d msgs=%-5d drops=%-4d %s%s@."
        c.protocol c.topology c.n (Model.to_string c.model) c.schedule c.steps
        c.messages c.drops c.stop
        (match c.mass with
        | Some m when m.mass_dropped > 0. ->
          Printf.sprintf " (mass dropped %.3f)" m.mass_dropped
        | _ -> ""))
    cases;
  Fmt.pf ppf "  gossip verdicts: %d converges, %d diverges@."
    (List.length (List.filter (fun v -> v.v_verdict = "converges") verdicts))
    (List.length (List.filter (fun v -> v.v_verdict = "diverges") verdicts));
  Fmt.pf ppf "  timed rows: %d (intervals %s)@." (List.length timed)
    (String.concat "," (List.map string_of_int intervals))

let emit ~budget ~path =
  let cases = run_cases budget in
  let verdicts = run_verdicts budget in
  let timed = run_timed budget in
  let text = Json.to_string (to_json ~budget cases verdicts timed) in
  Snapshot.write_atomic path text;
  let parse_failure =
    match Json.parse text with
    | Ok v ->
      if Json.member "cases" v = None then [ "emitted JSON lacks a cases field" ] else []
    | Error e -> [ "emitted JSON does not parse: " ^ e ]
  in
  ((cases, verdicts, timed), parse_failure @ gate_failures cases verdicts)

(* ------------------------------------------------------------------ *)

let usage =
  "usage: bench_protocols [-o FILE] [--budget smoke|full]\n\
  \                      [--compare-ignoring-timings A B]\n\
   \  -o FILE          artifact path (default BENCH_protocols.json)\n\
   \  --budget B       smoke (default; the committed-artifact budget: n=4\n\
   \                   topologies, 2k step cap) or full (adds n=5/6\n\
   \                   topologies and a 20k step cap; exhaustive verdicts\n\
   \                   stay on tractable topologies — see EXPERIMENTS.md)\n\
   \  --compare-ignoring-timings A B  exit 0 iff artifacts A and B are\n\
   \                   identical after blanking wall times; unknown fields\n\
   \                   are an error\n"

let bad msg = raise (Fail (Usage msg))

let main () =
  let path = ref "BENCH_protocols.json" in
  let budget = ref Smoke in
  let compare_paths = ref None in
  let rec parse = function
    | [] -> ()
    | "-o" :: file :: rest ->
      path := file;
      parse rest
    | [ "-o" ] -> bad "-o needs a file argument"
    | "--budget" :: b :: rest ->
      (match b with
      | "smoke" -> budget := Smoke
      | "full" -> budget := Full
      | other -> bad (Printf.sprintf "unknown budget %S (expected smoke or full)" other));
      parse rest
    | [ "--budget" ] -> bad "--budget needs an argument (smoke or full)"
    | "--compare-ignoring-timings" :: a :: b :: rest ->
      compare_paths := Some (a, b);
      parse rest
    | "--compare-ignoring-timings" :: _ -> bad "--compare-ignoring-timings needs two files"
    | arg :: _ -> bad (Printf.sprintf "unknown argument %S" arg)
  in
  parse (List.tl (Array.to_list Sys.argv));
  match !compare_paths with
  | Some (a, b) -> compare_ignoring_timings a b
  | None ->
    let results, failures = emit ~budget:!budget ~path:!path in
    Fmt.pr "protocol sweep (%s budget):@.%a" (budget_name !budget) pp_summary results;
    Fmt.pr "wrote %s@." !path;
    if failures <> [] then begin
      List.iter (fun f -> Printf.eprintf "bench_protocols: %s\n" f) failures;
      raise (Fail (Gate None))
    end

(* The only place exit codes are decided. *)
let run () =
  match main () with
  | () -> ()
  | exception Fail (Usage m) ->
    Printf.eprintf "bench_protocols: %s\n%s" m usage;
    exit 2
  | exception Fail (Input m) ->
    Printf.eprintf "bench_protocols: %s\n" m;
    exit 2
  | exception Fail (Gate (Some m)) ->
    Printf.eprintf "bench_protocols: %s\n" m;
    exit 1
  | exception Fail (Gate None) -> exit 1
