(* A tour of the taxonomy (Sec. 2.2-2.3) and the derived realization
   matrices (Figures 3-4).

     dune exec examples/taxonomy_tour.exe *)

open Commrouting
open Engine
open Realization

let () =
  Format.printf "== The 24 communication models ==@.";
  List.iter
    (fun m ->
      let families =
        List.filter_map Fun.id
          [
            (if Model.is_polling m then Some "polling" else None);
            (if Model.is_message_passing m then Some "message-passing" else None);
            (if Model.is_queueing m then Some "queueing" else None);
          ]
      in
      Format.printf "  %s%s@." (Model.to_string m)
        (match families with [] -> "" | fs -> "  (" ^ String.concat ", " fs ^ ")"))
    Model.all;

  Format.printf "@.== Syntactic inclusions (Prop. 3.3's observation) ==@.";
  let count =
    List.length
      (List.concat_map
         (fun a ->
           List.filter (fun b -> (not (Model.equal a b)) && Model.includes a b) Model.all)
         Model.all)
  in
  Format.printf "  %d strict inclusions; e.g. UMS includes %d of the other 23 models@."
    count
    (List.length
       (List.filter
          (fun b ->
            (not (Model.equal (Option.get (Model.of_string "UMS")) b))
            && Model.includes (Option.get (Model.of_string "UMS")) b)
          Model.all));

  Format.printf "@.== Derived realization matrices ==@.";
  let closure = Closure.derive_exn () in
  Format.printf "Figure 3 (reliable realizers):@.%s@."
    (Closure.render closure ~realizers:Model.reliable);
  Format.printf "Figure 4 (unreliable realizers):@.%s@."
    (Closure.render closure ~realizers:Model.unreliable);
  Format.printf "%s@." (Paper_tables.summary closure)
