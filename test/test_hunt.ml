(* Divergence-hunter tests: QCheck agreement of Spp.Dispute with a naive
   brute-force wheel detector (and with the solver: no wheel => a stable
   assignment exists), shrink soundness of the hunt minimizer, corpus
   round-trips, Spp.Mutate surgery laws, algebraic-precondition checks,
   and crash tolerance of the generic journal. *)

module Dispute = Spp.Dispute
module Instance = Spp.Instance
module Path = Spp.Path
module Mutate = Spp.Mutate
module Algebra = Spp.Algebra
module Json = Engine.Metrics.Json

let model s = Option.get (Engine.Model.of_string s)

(* ------------------------------------------------------------------ *)
(* Naive reference wheel detector: build the dispute-digraph edge
   relation by brute force over vertex pairs (rather than Dispute.find's
   successor enumeration along witness paths), then decide cycle
   existence with Floyd–Warshall transitive closure (rather than DFS). *)

let naive_has_wheel inst =
  let dest = Instance.dest inst in
  let vertices =
    List.concat_map
      (fun v ->
        if v = dest then []
        else List.map (fun p -> (v, p)) (Instance.permitted inst v))
      (Instance.nodes inst)
    |> Array.of_list
  in
  let n = Array.length vertices in
  let rank v p = Option.get (Instance.rank inst v p) in
  (* Edge (u,q) -> (w,q'): some permitted path of u ranked no worse than q
     passes through w (w interior, not the destination) and continues
     exactly along q'. *)
  let edge (u, q) (w, q') =
    u <> w && w <> dest
    && List.exists
         (fun p ->
           rank u p <= rank u q
           && (match Path.to_nodes p with
              | [] -> false
              | src :: rest -> src = u && List.mem w rest)
           &&
           match Path.suffix_from w p with
           | Some suffix -> Path.equal suffix q'
           | None -> false)
         (Instance.permitted inst u)
  in
  let reach = Array.init n (fun i -> Array.init n (fun j -> edge vertices.(i) vertices.(j))) in
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if reach.(i).(k) && reach.(k).(j) then reach.(i).(j) <- true
      done
    done
  done;
  let cyclic = ref false in
  for i = 0 to n - 1 do
    if reach.(i).(i) then cyclic := true
  done;
  !cyclic

let gen_config seed =
  {
    Spp.Generator.nodes = 4 + (seed mod 3);
    extra_edges = seed mod 3;
    max_paths_per_node = 3;
    max_path_len = 4;
    seed;
  }

let test_dispute_agreement =
  QCheck.Test.make ~count:150 ~name:"Dispute.has_wheel agrees with naive closure"
    QCheck.(map gen_config small_int)
    (fun cfg ->
      let inst = Spp.Generator.instance cfg in
      Dispute.has_wheel inst = naive_has_wheel inst)

let test_dispute_agreement_safe =
  QCheck.Test.make ~count:100
    ~name:"safe instances: both detectors report no wheel"
    QCheck.(map gen_config small_int)
    (fun cfg ->
      let inst = Spp.Generator.safe_instance cfg in
      (not (Dispute.has_wheel inst)) && not (naive_has_wheel inst))

let test_no_wheel_solvable =
  QCheck.Test.make ~count:150 ~name:"no dispute wheel => stable assignment exists"
    QCheck.(map gen_config small_int)
    (fun cfg ->
      let inst = Spp.Generator.instance cfg in
      QCheck.assume (not (Dispute.has_wheel inst));
      Spp.Solver.solve inst <> None)

let test_found_wheels_check =
  QCheck.Test.make ~count:150 ~name:"Dispute.find results satisfy check_wheel"
    QCheck.(map gen_config small_int)
    (fun cfg ->
      let inst = Spp.Generator.instance cfg in
      match Dispute.find inst with
      | None -> true
      | Some w -> Dispute.check_wheel inst w)

(* ------------------------------------------------------------------ *)
(* Mutate surgery laws. *)

let disagree = Spp.Gadgets.disagree

let test_swap_ranks_involutive () =
  let v =
    List.find
      (fun v -> List.length (Instance.permitted disagree v) >= 2)
      (Instance.nodes disagree)
  in
  let once = Option.get (Mutate.swap_ranks disagree v 0 1) in
  let twice = Option.get (Mutate.swap_ranks once v 0 1) in
  List.iter
    (fun u ->
      Alcotest.(check (list int))
        (Printf.sprintf "ranks restored at %d" u)
        (List.filter_map (Instance.rank disagree u) (Instance.permitted disagree u))
        (List.filter_map (Instance.rank twice u) (Instance.permitted twice u));
      Alcotest.(check bool)
        "permitted restored" true
        (List.for_all2 Path.equal
           (Instance.permitted disagree u)
           (Instance.permitted twice u)))
    (Instance.nodes disagree)

let test_drop_path () =
  let v =
    List.find
      (fun v -> List.length (Instance.permitted disagree v) >= 2)
      (Instance.nodes disagree)
  in
  let p = List.hd (Instance.permitted disagree v) in
  let inst' = Option.get (Mutate.drop_path disagree v p) in
  Alcotest.(check bool) "path gone" false (Instance.is_permitted inst' v p);
  Alcotest.(check int) "still valid" 0 (List.length (Instance.validate inst'))

let test_add_path_most_preferred () =
  (* disagree permits every simple path already, so make room first:
     drop a node's most-preferred path, then add it back on top. *)
  let v =
    List.find
      (fun v -> List.length (Instance.permitted disagree v) >= 2)
      (Instance.nodes disagree)
  in
  let p = List.hd (Instance.permitted disagree v) in
  let base = Option.get (Mutate.drop_path disagree v p) in
  let inst' = Option.get (Mutate.add_path base v p ~pos:0) in
  Alcotest.(check (option int)) "inserted at rank 0" (Some 0) (Instance.rank inst' v p);
  Alcotest.(check int) "still valid" 0 (List.length (Instance.validate inst'));
  Alcotest.(check int) "one more permitted path"
    (List.length (Instance.permitted base v) + 1)
    (List.length (Instance.permitted inst' v))

let test_drop_edge_removes_crossing_paths () =
  let e = List.hd (Instance.edges disagree) in
  let inst' = Option.get (Mutate.drop_edge disagree e) in
  Alcotest.(check bool) "edge gone" false (List.mem e (Instance.edges inst'));
  List.iter
    (fun v ->
      List.iter
        (fun p ->
          Alcotest.(check bool) "no crossing path survives" false
            (Mutate.path_uses_edge e p))
        (Instance.permitted inst' v))
    (Instance.nodes inst');
  Alcotest.(check int) "still valid" 0 (List.length (Instance.validate inst'))

let test_isolate_noop_is_none () =
  (* Isolating a node twice: the second application must report the
     mutation inapplicable, not return the instance unchanged (a no-op
     Some would let a greedy shrinker loop forever). *)
  let v =
    List.find (fun v -> v <> Instance.dest disagree) (Instance.nodes disagree)
  in
  let once = Option.get (Mutate.isolate disagree v) in
  Alcotest.(check bool) "second isolate is inapplicable" true
    (Mutate.isolate once v = None)

let test_simple_paths () =
  let v =
    List.find (fun v -> v <> Instance.dest disagree) (Instance.nodes disagree)
  in
  let paths = Mutate.simple_paths disagree v in
  Alcotest.(check bool) "non-empty" true (paths <> []);
  List.iter
    (fun p ->
      Alcotest.(check bool) "simple" true (Path.is_simple p);
      Alcotest.(check (option int)) "starts at v" (Some v) (Path.source p);
      Alcotest.(check (option int))
        "ends at dest"
        (Some (Instance.dest disagree))
        (Path.destination p))
    paths

(* ------------------------------------------------------------------ *)
(* Algebraic preconditions (the hunt's static certificate). *)

let ring g = g ~spokes:3

let test_conditions_shortest () =
  let g = ring (fun ~spokes -> Hunt.Perturb.ring_graph ~spokes ~label:(fun u v -> 1 + ((u + v) mod 3))) in
  let c = Algebra.check_conditions Algebra.shortest_paths g in
  Alcotest.(check bool) "monotone" true c.Algebra.monotone;
  Alcotest.(check bool) "strictly monotone" true c.Algebra.strictly_monotone;
  Alcotest.(check bool) "steps were checked" true (c.Algebra.steps_checked > 0)

let test_conditions_widest () =
  let g = ring (fun ~spokes -> Hunt.Perturb.ring_graph ~spokes ~label:(fun u v -> 1 + ((u + (2 * v)) mod 4))) in
  let c = Algebra.check_conditions Algebra.widest_paths g in
  (* Bottleneck capacity never grows along an extension, but it can stay
     equal, so widest-paths is monotone without being strictly so. *)
  Alcotest.(check bool) "monotone" true c.Algebra.monotone;
  Alcotest.(check bool) "not strictly monotone" false c.Algebra.strictly_monotone

let test_conditions_longest () =
  let g = ring (fun ~spokes -> Hunt.Perturb.ring_graph ~spokes ~label:(fun _ _ -> 1)) in
  let c = Algebra.check_conditions Hunt.Perturb.longest_paths g in
  Alcotest.(check bool) "not monotone" false c.Algebra.monotone;
  Alcotest.(check bool) "not strictly monotone" false c.Algebra.strictly_monotone

let test_strict_monotone_implies_no_wheel =
  (* The certificate the prefilter relies on, checked empirically on the
     perturbation stream's algebraic candidates. *)
  QCheck.Test.make ~count:30 ~name:"strictly monotone algebra => no dispute wheel"
    QCheck.(int_range 0 9)
    (fun seed ->
      List.for_all
        (fun (c : Hunt.Perturb.t) ->
          match c.Hunt.Perturb.source with
          | Hunt.Perturb.Surgery _ -> true
          | Hunt.Perturb.Algebraic (Hunt.Perturb.Alg (alg, g)) ->
            let conds = Algebra.check_conditions alg g in
            (not conds.Algebra.strictly_monotone)
            || not (Dispute.has_wheel (Hunt.Perturb.instance c)))
        (Hunt.Perturb.generate ~seeds:(seed + 1)))

(* ------------------------------------------------------------------ *)
(* Shrink soundness: every accepted shrink step still validates and still
   exhibits the recorded divergence/separation at the recorded budget. *)

let smoke_config = Hunt.Search.explore_config Hunt.Search.Smoke
let smoke_models = Hunt.Search.models Hunt.Search.Smoke

let findings_with_traces () =
  List.filter_map
    (fun (c : Hunt.Perturb.t) ->
      match Hunt.Precheck.run c with
      | Hunt.Precheck.Skip _ -> None
      | Hunt.Precheck.Explore { inst; _ } ->
        let verdicts =
          List.map
            (fun m ->
              (m, Modelcheck.Oscillation.analyze ~config:smoke_config ~domains:1 inst m))
            smoke_models
        in
        Option.map
          (fun kind ->
            let keep = Hunt.Search.keep_of_kind ~config:smoke_config kind in
            let minimal, steps = Hunt.Minimize.minimize_trace ~keep inst in
            (c, kind, keep, minimal, steps))
          (Hunt.Search.classify verdicts))
    (Hunt.Perturb.generate ~seeds:1)

let test_shrink_soundness () =
  let found = findings_with_traces () in
  Alcotest.(check bool) "seed 0 yields at least one finding" true (found <> []);
  Alcotest.(check bool) "at least one finding required shrinking" true
    (List.exists (fun (_, _, _, _, steps) -> steps <> []) found);
  List.iter
    (fun ((c : Hunt.Perturb.t), _kind, keep, minimal, steps) ->
      Alcotest.(check bool)
        (c.Hunt.Perturb.name ^ ": minimal instance still exhibits the finding")
        true (keep minimal);
      List.iter
        (fun (s : Hunt.Minimize.step) ->
          Alcotest.(check int)
            (Printf.sprintf "%s/%s: step validates" c.Hunt.Perturb.name s.Hunt.Minimize.descr)
            0
            (List.length (Instance.validate s.Hunt.Minimize.inst));
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s: step still exhibits the finding"
               c.Hunt.Perturb.name s.Hunt.Minimize.descr)
            true
            (keep s.Hunt.Minimize.inst))
        steps;
      match steps with
      | [] -> ()
      | _ ->
        let last = List.nth steps (List.length steps - 1) in
        Alcotest.(check bool)
          (c.Hunt.Perturb.name ^ ": final instance is the last accepted step")
          true
          (Instance.size minimal = Instance.size last.Hunt.Minimize.inst))
    found

(* ------------------------------------------------------------------ *)
(* Corpus round-trips. *)

let sample_finding () =
  match findings_with_traces () with
  | [] -> Alcotest.fail "no finding from seed 0"
  | (c, kind, _, minimal, _) :: _ ->
    {
      Hunt.Corpus.name = c.Hunt.Perturb.name;
      seed = c.Hunt.Perturb.seed;
      descr = c.Hunt.Perturb.descr;
      inst = minimal;
      kind;
      channel_bound = smoke_config.Modelcheck.Explore.channel_bound;
      max_states = smoke_config.Modelcheck.Explore.max_states;
    }

let test_corpus_roundtrip () =
  let f = sample_finding () in
  let s = Json.to_string (Hunt.Corpus.to_json f) in
  match Json.parse s with
  | Error e -> Alcotest.failf "serialized finding does not parse: %s" e
  | Ok j -> (
    match Hunt.Corpus.of_json j with
    | Error e -> Alcotest.failf "parsed finding does not decode: %s" e
    | Ok f' ->
      Alcotest.(check string)
        "re-serialization is identical" s
        (Json.to_string (Hunt.Corpus.to_json f'));
      let o = Hunt.Corpus.replay f' in
      Alcotest.(check bool) (Fmt.str "replay ok (%s)" o.Hunt.Corpus.detail) true o.Hunt.Corpus.ok)

let test_corpus_rejects_wrong_schema () =
  let f = sample_finding () in
  let j =
    match Hunt.Corpus.to_json f with
    | Json.Obj fields ->
      Json.Obj
        (List.map
           (fun (k, v) -> if k = "schema" then (k, Json.Str "bogus/v9") else (k, v))
           fields)
    | _ -> Alcotest.fail "finding did not serialize to an object"
  in
  match Hunt.Corpus.of_json j with
  | Ok _ -> Alcotest.fail "wrong schema accepted"
  | Error e ->
    let contains ~sub s =
      let n = String.length sub and m = String.length s in
      let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
      at 0
    in
    Alcotest.(check bool) "error mentions the schema" true (contains ~sub:"schema" e)

(* ------------------------------------------------------------------ *)
(* Generic journal crash tolerance. *)

let tmp_journal name = Filename.concat (Filename.get_temp_dir_name ()) name

let test_generic_journal_roundtrip () =
  let path = tmp_journal "hunt_test_journal_rt" in
  if Sys.file_exists path then Sys.remove path;
  let w, prior =
    Conformance.Journal.Generic.open_ ~path ~magic:"m/v1" ~fingerprint:"fp"
      ~resume:false ~flush_every:1
  in
  Alcotest.(check int) "fresh journal is empty" 0 (List.length prior);
  Conformance.Journal.Generic.record w [ "a"; "tab\there"; "newline\nthere" ];
  Conformance.Journal.Generic.record w [ "b" ];
  Conformance.Journal.Generic.close w;
  let _, entries =
    Conformance.Journal.Generic.open_ ~path ~magic:"m/v1" ~fingerprint:"fp"
      ~resume:true ~flush_every:1
  in
  Alcotest.(check (list (list string)))
    "escaped fields round-trip"
    [ [ "a"; "tab\there"; "newline\nthere" ]; [ "b" ] ]
    entries;
  Sys.remove path

let test_generic_journal_torn_line () =
  let path = tmp_journal "hunt_test_journal_torn" in
  if Sys.file_exists path then Sys.remove path;
  let w, _ =
    Conformance.Journal.Generic.open_ ~path ~magic:"m/v1" ~fingerprint:"fp"
      ~resume:false ~flush_every:1
  in
  Conformance.Journal.Generic.record w [ "complete" ];
  Conformance.Journal.Generic.close w;
  (* Simulate a crash mid-append: a trailing line without its newline. *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "torn\tretc";
  close_out oc;
  let w, entries =
    Conformance.Journal.Generic.open_ ~path ~magic:"m/v1" ~fingerprint:"fp"
      ~resume:true ~flush_every:1
  in
  Alcotest.(check (list (list string)))
    "torn trailing line dropped"
    [ [ "complete" ] ]
    entries;
  Conformance.Journal.Generic.close w;
  Sys.remove path

let test_generic_journal_fingerprint_mismatch () =
  let path = tmp_journal "hunt_test_journal_fp" in
  if Sys.file_exists path then Sys.remove path;
  let w, _ =
    Conformance.Journal.Generic.open_ ~path ~magic:"m/v1" ~fingerprint:"fp-a"
      ~resume:false ~flush_every:1
  in
  Conformance.Journal.Generic.record w [ "stale" ];
  Conformance.Journal.Generic.close w;
  let w, entries =
    Conformance.Journal.Generic.open_ ~path ~magic:"m/v1" ~fingerprint:"fp-b"
      ~resume:true ~flush_every:1
  in
  Alcotest.(check int) "mismatched journal discarded" 0 (List.length entries);
  Conformance.Journal.Generic.close w;
  Sys.remove path

let test_hunt_journal_roundtrip () =
  let path = tmp_journal "hunt_test_journal_hunt" in
  if Sys.file_exists path then Sys.remove path;
  let fp =
    Hunt.Journal.fingerprint ~seeds:1 ~budget:"smoke" ~models:smoke_models
      ~channel_bound:3 ~max_states:4000 ()
  in
  let f = sample_finding () in
  let entries =
    [
      Hunt.Journal.Skipped { name = "a"; reason = "no-dispute-wheel" };
      Hunt.Journal.Explored
        {
          name = "b";
          verdicts = [ (model "R1O", "oscillates"); (model "REO", "converges") ];
          finding = None;
        };
      Hunt.Journal.Explored
        { name = f.Hunt.Corpus.name; verdicts = [ (model "R1O", "oscillates") ]; finding = Some f };
    ]
  in
  let w, prior = Hunt.Journal.open_ ~path ~fingerprint:fp ~resume:false ~flush_every:1 in
  Alcotest.(check int) "fresh" 0 (List.length prior);
  List.iter (Hunt.Journal.record w) entries;
  Hunt.Journal.close w;
  let w, loaded = Hunt.Journal.open_ ~path ~fingerprint:fp ~resume:true ~flush_every:1 in
  Hunt.Journal.close w;
  Alcotest.(check (list string))
    "entry keys round-trip"
    (List.map Hunt.Journal.entry_name entries)
    (List.map Hunt.Journal.entry_name loaded);
  (match List.nth loaded 2 with
  | Hunt.Journal.Explored { finding = Some f'; _ } ->
    Alcotest.(check string) "journaled finding round-trips"
      (Json.to_string (Hunt.Corpus.to_json f))
      (Json.to_string (Hunt.Corpus.to_json f'))
  | _ -> Alcotest.fail "finding entry lost");
  Sys.remove path

(* ------------------------------------------------------------------ *)

let qsuite = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "hunt"
    [
      ( "dispute",
        qsuite
          [
            test_dispute_agreement;
            test_dispute_agreement_safe;
            test_no_wheel_solvable;
            test_found_wheels_check;
          ] );
      ( "mutate",
        [
          Alcotest.test_case "swap_ranks is involutive" `Quick test_swap_ranks_involutive;
          Alcotest.test_case "drop_path" `Quick test_drop_path;
          Alcotest.test_case "add_path at rank 0" `Quick test_add_path_most_preferred;
          Alcotest.test_case "drop_edge removes crossing paths" `Quick
            test_drop_edge_removes_crossing_paths;
          Alcotest.test_case "isolate no-op is None" `Quick test_isolate_noop_is_none;
          Alcotest.test_case "simple_paths" `Quick test_simple_paths;
        ] );
      ( "conditions",
        Alcotest.test_case "shortest-paths strictly monotone" `Quick test_conditions_shortest
        :: Alcotest.test_case "widest-paths monotone, not strictly" `Quick
             test_conditions_widest
        :: Alcotest.test_case "longest-paths anti-monotone" `Quick test_conditions_longest
        :: qsuite [ test_strict_monotone_implies_no_wheel ] );
      ( "shrink",
        [ Alcotest.test_case "shrink soundness" `Quick test_shrink_soundness ] );
      ( "corpus",
        [
          Alcotest.test_case "round-trip and replay" `Quick test_corpus_roundtrip;
          Alcotest.test_case "wrong schema rejected" `Quick test_corpus_rejects_wrong_schema;
        ] );
      ( "journal",
        [
          Alcotest.test_case "generic round-trip" `Quick test_generic_journal_roundtrip;
          Alcotest.test_case "torn trailing line" `Quick test_generic_journal_torn_line;
          Alcotest.test_case "fingerprint mismatch" `Quick
            test_generic_journal_fingerprint_mismatch;
          Alcotest.test_case "hunt journal round-trip" `Quick test_hunt_journal_roundtrip;
        ] );
    ]
