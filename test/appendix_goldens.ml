(* Golden traces for the appendix executions (Ex. A.1-A.5): the scripted
   schedules of the paper's figures, printed as the appendix-style
   t / U(t) / pi tables.  The committed .expected file locks these traces;
   any engine change that alters them must be promoted deliberately
   (dune promote) and reviewed against the paper's tables. *)

open Engine

let model s = Option.get (Model.of_string s)
let single inst c reads = Activation.single (Spp.Gadgets.node inst c) reads

let read1 inst a b =
  Activation.read ~count:(Activation.Finite 1)
    (Channel.id ~src:(Spp.Gadgets.node inst a) ~dst:(Spp.Gadgets.node inst b))

(* One message from every in-channel: the REO entry shape. *)
let poll1 inst c =
  let v = Spp.Gadgets.node inst c in
  Activation.single v
    (List.map
       (fun ch -> Activation.read ~count:(Activation.Finite 1) ch)
       (Model.required_channels inst v))

let poll_all inst c = Activation.poll_all inst (Spp.Gadgets.node inst c)

let show name inst model_name entries =
  Fmt.pr "== %s under %s ==@." name model_name;
  List.iteri
    (fun i e ->
      if not (Model.validates inst (model model_name) e) then
        Fmt.pr "ILLEGAL ENTRY %d@." (i + 1))
    entries;
  Fmt.pr "%s@." (Trace.paper_table (Executor.run_entries inst entries))

let () =
  let disagree = Spp.Gadgets.disagree in
  show "DISAGREE (Ex. A.1, one oscillation period)" disagree "R1O"
    [
      single disagree 'd' [ read1 disagree 'x' 'd' ];
      single disagree 'x' [ read1 disagree 'd' 'x' ];
      single disagree 'y' [ read1 disagree 'd' 'y' ];
      single disagree 'x' [ read1 disagree 'y' 'x' ];
      single disagree 'y' [ read1 disagree 'x' 'y' ];
      single disagree 'x' [ read1 disagree 'd' 'x' ];
      single disagree 'y' [ read1 disagree 'd' 'y' ];
      single disagree 'd' [ read1 disagree 'x' 'd' ];
    ];
  let fig6 = Spp.Gadgets.fig6 in
  show "FIG6 (Ex. A.2, steps 1-13)" fig6 "REO"
    (List.map (poll1 fig6)
       [ 'd'; 'x'; 'a'; 'u'; 'v'; 'y'; 'a'; 'u'; 'v'; 'z'; 'a'; 'v'; 'u' ]);
  let fig7 = Spp.Gadgets.fig7 in
  show "FIG7 (Ex. A.3)" fig7 "REO"
    (List.map (poll1 fig7) [ 'd'; 'b'; 'u'; 'v'; 'a'; 'u'; 'v'; 's'; 's'; 's' ]);
  let fig8 = Spp.Gadgets.fig8 in
  show "FIG8 (Ex. A.4)" fig8 "REA"
    (List.map (poll_all fig8) [ 'd'; 'a'; 'u'; 'b'; 'u'; 's' ]);
  let fig9 = Spp.Gadgets.fig9 in
  show "FIG9 (Ex. A.5)" fig9 "REA"
    (List.map (poll_all fig9) [ 'd'; 'b'; 'c'; 'x'; 's'; 'a'; 'c'; 's' ])
