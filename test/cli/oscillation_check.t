DISAGREE oscillates under R1O but converges under REA; witnesses replay.
Timings are normalized out and a single domain keeps exploration order
stable:

  $ DOMAINS=1 oscillation_check -i DISAGREE -m R1O -m REA --verify | sed 's/ (*[0-9][0-9]*\.[0-9]*s)*$//'
  R1O  oscillates (witness: 3-step prefix, 6-step fair cycle) [witness replays]
  REA  converges under every fair schedule
