A one-hop constructive realization route with its demo run:

  $ realization_route R1O RMO
  RMO realizes R1O at level: exact
    R1O --[embed (Prop. 3.3)]--> RMO
  demo on FIG6: 25 source steps -> 25 realized steps; relation checked: true

A multi-hop route is composed from the Sec. 3.2 rules:

  $ realization_route REA R1O
  R1O realizes REA at level: subsequence
    REA --[embed (Prop. 3.3)]--> RMS
    RMS --[split M->1 (Thm. 3.5)]--> R1S
    R1S --[serialize R1S->R1O (Prop. 3.6)]--> R1O
  demo on FIG6: 25 source steps -> 65 realized steps; relation checked: true

R1O cannot realize REO exactly (Prop. 3.10): the best constructive
route tops out at repetition:

  $ realization_route REO R1O
  R1O realizes REO at level: repetition
    REO --[embed (Prop. 3.3)]--> RMO
    RMO --[split M->1 (Thm. 3.5)]--> R1O
  demo on FIG6: 25 source steps -> 57 realized steps; relation checked: true

An unknown model name is rejected:

  $ realization_route R1O BOGUS
  realization_route: unknown model "BOGUS"
  [124]
