The divergence-hunter CLI: bad arguments are rejected with exit code 2,
never an exception trace.

  $ hunt --budget enormous 2>&1
  hunt: unknown budget "enormous" (smoke|default|deep)
  [2]

  $ hunt --resume 2>&1
  hunt: --resume requires --checkpoint PATH
  [2]

  $ hunt --seeds 0 2>&1
  hunt: --seeds expects an int >= 1
  [2]

  $ hunt --checkpoint-every 0 2>&1
  hunt: --checkpoint-every expects an int >= 1
  [2]

  $ hunt --compare-ignoring-timings just-one 2>/dev/null
  [2]

The seeded smoke hunt is deterministic: candidate generation uses its own
seed-mixing (no global RNG), the explorer budget is fixed, and the static
prefilter (dispute-wheel and strict-monotonicity certificates) skips
candidates before any explorer spend.

  $ hunt --seeds 1 --budget smoke --domains 1 --quiet --emit corpus -o run.json
  hunt: 10 candidate(s) from 1 seed(s) at budget smoke
  static prefilter skipped 7 (70%) before explorer spend
  explored 3 under [R1O, REO, REA]; 3 finding(s)
    s0-ring-swap2: separation: oscillates under R1O, converges under REO (4 nodes, 3 edges)
    s0-alg-longest: separation: oscillates under R1O, converges under REO (3 nodes, 3 edges)
    s0-alg-gr-longest: separation: oscillates under R1O, converges under REO (3 nodes, 3 edges)
  wrote run.json

The emitted artifact leads with its schema and the run's headline counts:

  $ head -c 176 run.json; echo
  {"schema":"commrouting/hunt_run/v1","seeds":1,"budget":"smoke","models":["R1O","REO","REA"],"channel_bound":3,"max_states":4000,"candidates":10,"skipped_static":7,"explored":3,

Findings are shrunk before emission and carry the corpus schema:

  $ ls corpus
  s0-alg-gr-longest.json
  s0-alg-longest.json
  s0-ring-swap2.json

  $ head -c 55 corpus/s0-ring-swap2.json; echo
  {"schema":"commrouting/hunt/v1","name":"s0-ring-swap2",

The emitted corpus replays clean:

  $ hunt --replay corpus
  ok   s0-alg-gr-longest: oscillates under R1O, converges under REO
  ok   s0-alg-longest: oscillates under R1O, converges under REO
  ok   s0-ring-swap2: oscillates under R1O, converges under REO
  replayed 3 corpus entries, 0 failed

A journaled hunt survives being killed mid-run: truncate the journal to a
half-written state (a complete prefix plus a torn trailing record, as a
SIGKILL mid-append would leave it), resume, and the artifact and corpus
are reconstructed identically.

  $ hunt --seeds 1 --budget smoke --domains 1 --quiet --checkpoint journal -o full.json > /dev/null
  $ wc -l < journal
  11
  $ head -n 5 journal > torn && printf 'E\ts0-alg' >> torn
  $ hunt --seeds 1 --budget smoke --domains 1 --checkpoint torn --resume --emit corpus2 -o resumed.json 2>progress >/dev/null
  $ head -4 progress
  s0-ring-swap           resumed from journal
  s0-ring-swap2          resumed from journal
  s0-gen-swap            resumed from journal
  s0-gen-add             resumed from journal
  $ hunt --compare-ignoring-timings full.json resumed.json
  artifacts agree (ignoring timings)
  $ diff -r corpus corpus2 && echo corpora-identical
  corpora-identical

A journal written under a different configuration is discarded, never
imported:

  $ hunt --seeds 2 --budget smoke --domains 1 --checkpoint journal --resume --quiet 2>/dev/null | head -1
  hunt: 20 candidate(s) from 2 seed(s) at budget smoke

Artifact comparison is strict beyond timings:

  $ sed 's/"skipped_static":7/"skipped_static":6/' run.json > tampered.json
  $ hunt --compare-ignoring-timings run.json tampered.json
  hunt: run.json and tampered.json disagree beyond timings
  [1]
