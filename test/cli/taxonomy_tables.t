The derived Figures 3/4 realization matrices, exactly as printed:

  $ taxonomy_tables
  === Figure 3 (reliable realizers) ===
           R1O   RMO   REO   R1S   RMS   RES   R1F   RMF   REF   R1A   RMA   REA
     R1O     -     4    -1     4     4     4     4     4    -1    -1    -1    -1
     RMO     3     -    -1     3     4     4     3     4    -1    -1    -1    -1
     REO     3     4     -     3     4     4     3     4     4    -1    -1    -1
     R1S     2     2    -1     -     4     4   >=2   >=2    -1    -1    -1    -1
     RMS     2     2    -1     3     -     4   2,3   >=2    -1    -1    -1    -1
     RES     2     2    -1     3     4     -   2,3   >=2    -1    -1    -1    -1
     R1F     2     2    -1     4     4     4     -     4    -1    -1    -1    -1
     RMF     2     2    -1     3     4     4     3     -    -1    -1    -1    -1
     REF     2     2   <=2     3     4     4     3     4     -    -1    -1    -1
     R1A     2     2   <=2     4     4     4     4     4           -     4      
     RMA     2     2   <=2     3     4     4     3     4           3     -      
     REA     2     2   <=2     3     4     4     3     4     4     3     4     -
     U1O     2     2    -1     4     4     4   >=2   >=2    -1    -1    -1    -1
     UMO     2     2    -1     3   >=3   >=3   2,3   >=2    -1    -1    -1    -1
     UEO   2,3   >=2           3   >=3   >=3   2,3   >=2          -1    -1    -1
     U1S     2     2    -1   >=3   >=3   >=3   >=2   >=2    -1    -1    -1    -1
     UMS     2     2    -1     3   >=3   >=3   2,3   >=2    -1    -1    -1    -1
     UES     2     2    -1     3   >=3   >=3   2,3   >=2    -1    -1    -1    -1
     U1F     2     2    -1   >=3   >=3   >=3   >=2   >=2    -1    -1    -1    -1
     UMF     2     2    -1     3   >=3   >=3   2,3   >=2    -1    -1    -1    -1
     UEF     2     2   <=2     3   >=3   >=3   2,3   >=2          -1    -1    -1
     U1A     2     2   <=2   >=3   >=3   >=3   >=2   >=2                        
     UMA     2     2   <=2     3   >=3   >=3   2,3   >=2         <=3            
     UEA     2     2   <=2     3   >=3   >=3   2,3   >=2         <=3            
  === Figure 4 (unreliable realizers) ===
           U1O   UMO   UEO   U1S   UMS   UES   U1F   UMF   UEF   U1A   UMA   UEA
     R1O     4     4           4     4     4     4     4                        
     RMO     3     4         >=3     4     4   >=3     4                        
     REO     3     4     4   >=3     4     4   >=3     4     4                  
     R1S   >=3   >=3           4     4     4   >=3   >=3                        
     RMS     3   >=3         >=3     4     4   >=3   >=3                        
     RES     3   >=3         >=3     4     4   >=3   >=3                        
     R1F   >=3   >=3           4     4     4     4     4                        
     RMF     3   >=3         >=3     4     4   >=3     4                        
     REF     3   >=3         >=3     4     4   >=3     4     4                  
     R1A   >=3   >=3           4     4     4     4     4           4     4      
     RMA     3   >=3         >=3     4     4   >=3     4         >=3     4      
     REA     3   >=3         >=3     4     4   >=3     4     4   >=3     4     4
     U1O     -     4           4     4     4     4     4                        
     UMO     3     -         >=3     4     4   >=3     4                        
     UEO     3     4     -   >=3     4     4   >=3     4     4                  
     U1S   >=3   >=3           -     4     4   >=3   >=3                        
     UMS     3   >=3         >=3     -     4   >=3   >=3                        
     UES     3   >=3         >=3     4     -   >=3   >=3                        
     U1F   >=3   >=3           4     4     4     -     4                        
     UMF     3   >=3         >=3     4     4   >=3     -                        
     UEF     3   >=3         >=3     4     4   >=3     4     -                  
     U1A   >=3   >=3           4     4     4     4     4           -     4      
     UMA     3   >=3         >=3     4     4   >=3     4         >=3     -      
     UEA     3   >=3         >=3     4     4   >=3     4     4   >=3     4     -
  
  Derived matrix vs. paper Figures 3-4 (552 off-diagonal cells):
    match: 548
    weaker: 0
    stronger: 4
    CONTRADICTION: 0
  Cells differing from the paper:
    U1O realized-by R1O: paper [2..4], derived [2..2] (stronger)
    U1O realized-by RMO: paper [2..4], derived [2..2] (stronger)
    UMO realized-by R1O: paper [2..3], derived [2..2] (stronger)
    UMO realized-by RMO: paper [2..4], derived [2..2] (stronger)
