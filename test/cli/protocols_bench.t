The protocol sweep CLI: bad arguments are rejected with a usage message
and exit code 2, never an exception trace.

  $ bench_protocols --budget enormous 2>&1 | head -2
  bench_protocols: unknown budget "enormous" (expected smoke or full)
  usage: bench_protocols [-o FILE] [--budget smoke|full]

  $ bench_protocols --budget enormous 2>/dev/null
  [2]

  $ bench_protocols --frobnicate 2>/dev/null
  [2]

  $ bench_protocols -o 2>/dev/null
  [2]

  $ bench_protocols --compare-ignoring-timings just-one 2>/dev/null
  [2]

The smoke sweep itself is deterministic: every recorded quantity except
wall times comes from sequential executor runs with no randomness.  The
summary's closing lines lock the headline counts — the exhaustive gossip
verdicts split exactly along the reliability axis (36 reliable cases
converge, 36 unreliable diverge):

  $ bench_protocols -o sweep.json --budget smoke | tail -3
    gossip verdicts: 36 converges, 36 diverges
    timed rows: 24 (intervals 1,2,4,8)
  wrote sweep.json

An artifact always compares equal to itself modulo timings:

  $ bench_protocols --compare-ignoring-timings sweep.json sweep.json
  sweep.json and sweep.json are identical modulo timings

Any semantic difference is reported with its JSON path and exit code 1:

  $ sed 's/"budget":"smoke"/"budget":"full"/' sweep.json > tampered.json
  $ bench_protocols --compare-ignoring-timings sweep.json tampered.json
  bench_protocols: sweep.json and tampered.json differ at $.budget
  [1]

A field the comparer does not know means the artifact came from a
different writer; trusting the diff would be meaningless, so that is a
hard error (exit 2), not a pass:

  $ echo '{"schema":"commrouting/bench_protocols/v1","mystery":1}' > alien.json
  $ bench_protocols --compare-ignoring-timings alien.json sweep.json
  bench_protocols: alien.json has a field this comparer does not know at $.mystery; extend known_keys or volatile_keys before trusting the verdict
  [2]
