Structural report on the DISAGREE gadget, checked under R1O:

  $ spp_report -i DISAGREE -m R1O
  SPP instance (3 nodes, dest d)
    x: neighbors {d, y}; permitted xyd > xd
    y: neighbors {d, x}; permitted yxd > yd
  
  
  3 nodes, 3 edges, 4 permitted paths
  stable solutions: 2
  dispute wheel:
    pivot y: direct yd, rim route yxd
    pivot x: direct xd, rim route xyd
  greedy construction fails (instance is not dispute-wheel-free)
  under R1O: oscillates (witness: 3-step prefix, 6-step fair cycle); 2 reachable stable solution(s)

An unknown instance name fails with a diagnostic:

  $ spp_report -i NO_SUCH_GADGET
  spp_report: unknown instance "NO_SUCH_GADGET" (try DISAGREE, FIG6, FIG7, FIG8, FIG9, BAD-GADGET, GOOD-GADGET, SHORTEST-PATHS, bgp:<seed>, random:<seed> or file:<path>)
  [124]
