The query daemon: startup, a cold/warm cache-hit pair, malformed and
unknown-name requests, graceful shutdown.  Sockets live in /tmp because
the kernel caps Unix-socket paths at ~108 bytes (dune sandbox paths are
longer than that).

  $ SOCK=/tmp/serve-cram-$$.sock
  $ STORE=/tmp/serve-cram-$$.store
  $ serve daemon --socket $SOCK --store $STORE &
  $ serve request --socket $SOCK --wait 30 '{"id":0,"method":"ping"}'
  {"id":0,"ok":true,"result":{"pong":true}}

The same check twice: the first computes, the second is served from the
on-disk store (identical result bytes, cached flag flipped).

  $ serve request --socket $SOCK '{"id":1,"method":"check","params":{"instance":"DISAGREE","model":"REA"}}'
  {"id":1,"ok":true,"cached":false,"result":{"verdict":"converges","states":8,"edges":24,"pruned":false,"truncated":false}}
  $ serve request --socket $SOCK '{"id":2,"method":"check","params":{"instance":"DISAGREE","model":"REA"}}'
  {"id":2,"ok":true,"cached":true,"result":{"verdict":"converges","states":8,"edges":24,"pruned":false,"truncated":false}}

A realization query (closure cell plus the constructive chain).

  $ serve request --socket $SOCK '{"id":3,"method":"realize","params":{"source":"R1S","target":"R1O"}}'
  {"id":3,"ok":true,"result":{"source":"R1S","target":"R1O","proven":2,"disproven":3,"notation":"2","achievable":true,"constructive":{"level":"subsequence","chain":[{"rule":"serialize R1S->R1O (Prop. 3.6)","from":"R1S","to":"R1O"}]}}}

Malformed JSON is a usage error (exit 2, the repo-wide bad-arguments
convention); an unknown model is a typed error (exit 1).  Neither
disturbs the daemon.

  $ serve request --socket $SOCK 'not json'
  serve: invalid JSON: bad literal at 0
  [2]
  $ serve request --socket $SOCK '{"method":"check","params":{"instance":"DISAGREE","model":"XYZ"}}'
  serve: unknown model "XYZ"
  [1]
  $ serve request --socket $SOCK '{"id":4,"method":"ping"}'
  {"id":4,"ok":true,"result":{"pong":true}}

Stop the daemon and wait for it to exit cleanly.

  $ serve stop --socket $SOCK
  {"id":null,"ok":true,"result":{"stopping":true}}
  $ wait
  $ rm -rf $STORE
