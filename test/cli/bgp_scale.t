The partitioned-BGP scale bench: bad arguments are rejected with a
one-line error (exit code 2, never an exception trace).

  $ bgp_scale --budget enormous 2>&1 | head -1
  bgp_scale: unknown budget "enormous"
  $ bgp_scale --resume 2>&1 | head -1
  bgp_scale: --resume needs --checkpoint
  $ bgp_scale --shards 1 2>&1 | head -1
  bgp_scale: --shards must be at least 2 (1-shard baseline is implicit)
  $ bgp_scale --batch bogus 2>&1 | head -1
  bgp_scale: --batch needs an integer
  $ bgp_scale --compare-ignoring-timings just-one 2>/dev/null
  [2]

The smoke sweep is deterministic apart from wall times: topology shape,
the in-process parity gate (every sampled (model, shards) run against the
legacy engine), and the per-case epoch/activation/message/drop counts are
locked here.  The speedup line depends on the machine and is filtered.

  $ bgp_scale -o run.json --budget smoke --shards 2 --models RMS,U1O | grep -v speedup
  bgp scale sweep (smoke budget, K=2, 1 workers):
    scaled-small    444 nodes    637 links  cut=73    imbalance=1.39
    parity: 72/72 (model, shards) runs match the legacy engine
    scaled-small RMS  K=1  batch=4     epochs=230    acts=918      msgs=612      cross=0       drops=0     converged
    scaled-small RMS  K=2  batch=4     epochs=161    acts=935      msgs=612      cross=66      drops=0     converged
    scaled-small U1O  K=1  batch=1     epochs=918    acts=918      msgs=612      cross=0       drops=0     converged
    scaled-small U1O  K=2  batch=1     epochs=641    acts=935      msgs=612      cross=66      drops=0     converged
  wrote run.json

  $ grep -o '"schema":"[^"]*"' run.json
  "schema":"commrouting/bench_bgp/v1"

Checkpointing journals finished cases; a resume replays them instead of
re-running, and the artifacts agree modulo timings.

  $ bgp_scale -o ck.json --budget smoke --shards 2 --models RMS --checkpoint j.bin > /dev/null
  $ bgp_scale -o rs.json --budget smoke --shards 2 --models RMS --checkpoint j.bin --resume | tail -2
  resumed 2 finished case(s) from the journal
  wrote rs.json
  $ bgp_scale --compare-ignoring-timings ck.json rs.json
  ck.json and rs.json are identical modulo timings
