(* Golden replay of the committed hunt corpus: for every finding in
   results/hunt/, print its identity, recorded kind, replay verdict, and
   the dispute wheel of the minimized gadget.  Diffed against
   hunt_goldens.expected, so any drift in the corpus files, the explorer's
   verdicts, or the wheel detector's output is a reviewable change.
   Regenerate deliberately with `dune promote`. *)

let () =
  let dir = Sys.argv.(1) in
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".json")
    |> List.sort String.compare
  in
  List.iter
    (fun file ->
      match Hunt.Corpus.load (Filename.concat dir file) with
      | Error e -> Fmt.pr "%s: LOAD ERROR %s@." file e
      | Ok f ->
        let o = Hunt.Corpus.replay f in
        Fmt.pr "== %s@." f.Hunt.Corpus.name;
        Fmt.pr "   %s@." f.Hunt.Corpus.descr;
        Fmt.pr "   kind: %a@." Hunt.Corpus.pp_kind f.Hunt.Corpus.kind;
        Fmt.pr "   gadget: %d nodes, %d edges (channel bound %d, %d states)@."
          (Spp.Instance.size f.Hunt.Corpus.inst)
          (List.length (Spp.Instance.edges f.Hunt.Corpus.inst))
          f.Hunt.Corpus.channel_bound f.Hunt.Corpus.max_states;
        Fmt.pr "   replay: %s (%s)@."
          (if o.Hunt.Corpus.ok then "ok" else "FAIL")
          o.Hunt.Corpus.detail;
        (match Spp.Dispute.find f.Hunt.Corpus.inst with
        | Some w ->
          Fmt.pr "   %a@." (Spp.Dispute.pp_wheel f.Hunt.Corpus.inst) w
        | None -> Fmt.pr "   no dispute wheel (!)@."))
    files
