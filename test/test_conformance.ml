(* Conformance-harness tests: corpus round-trips and replay, counterexample
   shrinking, Spp.Generator determinism goldens, and QCheck agreement of
   Realization.Seqcheck with naive reference implementations. *)

open Engine
module Trial = Conformance.Trial
module Corpus = Conformance.Corpus
module Shrink = Conformance.Shrink
module Fuzz = Conformance.Fuzz
module Json = Engine.Metrics.Json

let model s = Option.get (Model.of_string s)

let pp_verdict ppf = function
  | Trial.Holds -> Fmt.string ppf "holds"
  | Trial.Violated v -> Fmt.pf ppf "violated (%a)" Trial.pp_violation v

(* ------------------------------------------------------------------ *)
(* Corpus round-trips. *)

let sample_trial () =
  Trial.force_routes ();
  let f =
    List.find
      (fun (f : Realization.Facts.positive) ->
        Model.equal f.Realization.Facts.realizer (model "RMO")
        && Model.equal f.Realization.Facts.realized (model "R1O"))
      Realization.Facts.positives
  in
  let inst = Spp.Gadgets.disagree in
  Trial.of_fact f ~inst_name:"DISAGREE" inst
    (Fuzz.schedule inst f.Realization.Facts.realized ~seed:11 ~len:10)

let roundtrip entry =
  let s = Json.to_string (Corpus.to_json entry) in
  match Json.parse s with
  | Error e -> Alcotest.failf "serialized corpus entry does not parse: %s" e
  | Ok j -> (
    match Corpus.of_json j with
    | Error e -> Alcotest.failf "parsed corpus entry does not decode: %s" e
    | Ok entry' ->
      Alcotest.(check string)
        "re-serialization is identical" s
        (Json.to_string (Corpus.to_json entry'));
      entry')

let test_roundtrip_positive () =
  let t = sample_trial () in
  let entry = Corpus.positive ~name:"rt-pos" ~expect:Corpus.Expect_holds t in
  let entry' = roundtrip entry in
  let o = Corpus.replay entry' in
  Alcotest.(check bool) (Fmt.str "replay ok (%s)" o.Corpus.detail) true o.Corpus.ok

let test_roundtrip_negative () =
  let neg =
    List.find
      (fun (n : Trial.negative) ->
        match n.Trial.check with
        | Trial.Refutation _ -> n.Trial.cost = Trial.Fast
        | Trial.Separation _ -> false)
      (Trial.negatives ())
  in
  let f = neg.Trial.fact in
  let cfg = Modelcheck.Explore.default_config in
  let entry =
    match neg.Trial.check with
    | Trial.Separation _ -> assert false
    | Trial.Refutation r ->
      {
        Corpus.name = "rt-neg";
        case =
          Corpus.Negative_refutation
            {
              inst_name = r.inst_name;
              inst = r.inst;
              non_realizer = f.Realization.Facts.non_realizer;
              target_model = f.Realization.Facts.target;
              level = r.level;
              termination = r.termination;
              witness = r.witness;
              channel_bound = cfg.Modelcheck.Explore.channel_bound;
              max_states = cfg.Modelcheck.Explore.max_states;
            };
      }
  in
  let entry' = roundtrip entry in
  let o = Corpus.replay entry' in
  Alcotest.(check bool) (Fmt.str "replay ok (%s)" o.Corpus.detail) true o.Corpus.ok

let test_replay_detects_wrong_expectation () =
  let t = sample_trial () in
  let entry =
    Corpus.positive ~name:"rt-wrong"
      ~expect:(Corpus.Expect_violated Trial.Relation_violated) t
  in
  let o = Corpus.replay entry in
  Alcotest.(check bool) "replay fails on a stale expectation" false o.Corpus.ok

(* ------------------------------------------------------------------ *)
(* Shrinking. *)

let test_shrink_minimizes () =
  let t = sample_trial () in
  (match Trial.check_positive t with
  | Trial.Holds -> ()
  | v -> Alcotest.failf "base trial should hold, got %a" pp_verdict v);
  (* Inject an entry that is illegal in the realized model (R1O is an
     M_one model, so a two-message read violates the count dimension). *)
  let inst = t.Trial.inst in
  let x = Spp.Gadgets.node inst 'x' in
  let bad =
    Activation.single x
      [
        Activation.read ~count:(Activation.Finite 2)
          (Channel.id ~src:(Spp.Gadgets.node inst 'd') ~dst:x);
      ]
  in
  let t_bad = { t with Trial.entries = t.Trial.entries @ [ bad ] } in
  (match Trial.check_positive t_bad with
  | Trial.Violated (Trial.Source_entry_invalid _) -> ()
  | v -> Alcotest.failf "expected a source-entry violation, got %a" pp_verdict v);
  let shrunk = Shrink.positive t_bad in
  Alcotest.(check int) "schedule shrunk to the offending entry" 1
    (List.length shrunk.Trial.entries);
  match Trial.check_positive shrunk with
  | Trial.Violated (Trial.Source_entry_invalid 0) -> ()
  | v -> Alcotest.failf "shrunk trial lost the violation: %a" pp_verdict v

let test_shrink_noop_on_holding_trial () =
  let t = sample_trial () in
  let shrunk = Shrink.positive t in
  Alcotest.(check int) "holding trials are returned unchanged"
    (List.length t.Trial.entries)
    (List.length shrunk.Trial.entries)

(* ------------------------------------------------------------------ *)
(* Spp.Generator determinism goldens: the canonical rendering of a few
   seeded instances, digested.  A digest change means generated fuzzing
   corpora are no longer reproducible from their seeds — bump deliberately
   (the expected values are printed on failure). *)

let canonical inst = Fmt.str "%a" Spp.Instance.pp inst

let digest cfg = Digest.to_hex (Digest.string (canonical (Spp.Generator.instance cfg)))

let test_generator_repeatable () =
  let cfg = { Spp.Generator.default with Spp.Generator.seed = 13 } in
  Alcotest.(check string)
    "same seed, same instance"
    (canonical (Spp.Generator.instance cfg))
    (canonical (Spp.Generator.instance cfg))

let test_generator_digests () =
  List.iter
    (fun (cfg, expected) ->
      Alcotest.(check string)
        (Fmt.str "seed %d digest" cfg.Spp.Generator.seed)
        expected (digest cfg))
    [
      ( {
          Spp.Generator.nodes = 5;
          extra_edges = 1;
          max_paths_per_node = 3;
          max_path_len = 4;
          seed = 0;
        },
        "76054cfc9827922b1883885674427874" );
      ( {
          Spp.Generator.nodes = 6;
          extra_edges = 2;
          max_paths_per_node = 3;
          max_path_len = 5;
          seed = 1;
        },
        "4d7a0620c70419703cd4c26af5bbccd4" );
      ({ Spp.Generator.default with Spp.Generator.seed = 7 }, "c839553e5d9bd49365950a3499303020");
    ]

(* ------------------------------------------------------------------ *)
(* Seqcheck vs naive reference implementations. *)

let seq_inst = Spp.Gadgets.disagree

let alphabet =
  let x = Spp.Gadgets.node seq_inst 'x' and y = Spp.Gadgets.node seq_inst 'y' in
  [|
    Spp.Assignment.all_epsilon seq_inst;
    Spp.Assignment.of_list seq_inst [ (x, Spp.Gadgets.path seq_inst "xd") ];
    Spp.Assignment.of_list seq_inst
      [ (x, Spp.Gadgets.path seq_inst "xyd"); (y, Spp.Gadgets.path seq_inst "yd") ];
  |]

let assignments_of_ints = List.map (fun i -> alphabet.(abs i mod Array.length alphabet))

let rec naive_subsequence original realized =
  match (original, realized) with
  | [], _ -> true
  | _ :: _, [] -> false
  | o :: os, r :: rs ->
    if Spp.Assignment.equal o r then naive_subsequence os rs
    else naive_subsequence original rs

(* Blocks spelled out by backtracking: consume at least one copy of each
   original element, never leave realized elements over. *)
let rec naive_repetition original realized =
  match (original, realized) with
  | [], [] -> true
  | [], _ :: _ | _ :: _, [] -> false
  | o :: os, r :: rs -> Spp.Assignment.equal o r && naive_rep_after o os rs

and naive_rep_after o os rs =
  naive_repetition os rs
  ||
  match rs with
  | r :: rs' -> Spp.Assignment.equal r o && naive_rep_after o os rs'
  | [] -> false

let gen_word = QCheck2.Gen.(list_size (int_range 0 10) (int_range 0 2))

let seqcheck_properties =
  [
    QCheck2.Test.make ~name:"is_subsequence agrees with the naive reference"
      ~count:500
      QCheck2.Gen.(pair gen_word gen_word)
      (fun (o, r) ->
        let original = assignments_of_ints o
        and realized = assignments_of_ints r in
        Realization.Seqcheck.is_subsequence ~original ~realized
        = naive_subsequence original realized);
    QCheck2.Test.make ~name:"is_repetition agrees with the naive reference"
      ~count:500
      QCheck2.Gen.(pair gen_word gen_word)
      (fun (o, r) ->
        let original = assignments_of_ints o
        and realized = assignments_of_ints r in
        Realization.Seqcheck.is_repetition ~original ~realized
        = naive_repetition original realized);
    QCheck2.Test.make ~name:"constructed duplications satisfy is_repetition"
      ~count:200
      QCheck2.Gen.(
        pair
          (list_size (int_range 1 6) (int_range 0 2))
          (list_size (int_range 1 6) (int_range 1 3)))
      (fun (word, dups) ->
        let original = assignments_of_ints word in
        let realized =
          List.concat
            (List.mapi
               (fun i a ->
                 let k = List.nth dups (i mod List.length dups) in
                 List.init k (fun _ -> a))
               original)
        in
        Realization.Seqcheck.is_repetition ~original ~realized);
  ]

let test_seqcheck_edge_cases () =
  let a = alphabet.(1) and b = alphabet.(2) in
  let check name expected ~original ~realized f =
    Alcotest.(check bool) name expected (f ~original ~realized)
  in
  let rep = Realization.Seqcheck.is_repetition in
  let sub = Realization.Seqcheck.is_subsequence in
  check "repetition: both empty" true ~original:[] ~realized:[] rep;
  check "repetition: empty block rejected" false ~original:[ a ] ~realized:[] rep;
  check "repetition: uncovered original suffix rejected" false
    ~original:[ a; b ] ~realized:[ a ] rep;
  check "repetition: trailing realized suffix rejected" false ~original:[ a ]
    ~realized:[ a; b ] rep;
  check "repetition: repeated original element needs both blocks" false
    ~original:[ a; a ] ~realized:[ a ] rep;
  check "subsequence: empty original always embeds" true ~original:[]
    ~realized:[ a; b ] sub;
  check "subsequence: nonempty original needs material" false ~original:[ a ]
    ~realized:[] sub

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "conformance"
    [
      ( "corpus",
        [
          Alcotest.test_case "positive entry round-trips" `Quick
            test_roundtrip_positive;
          Alcotest.test_case "negative entry round-trips" `Quick
            test_roundtrip_negative;
          Alcotest.test_case "replay detects stale expectations" `Quick
            test_replay_detects_wrong_expectation;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "minimizes an injected violation" `Quick
            test_shrink_minimizes;
          Alcotest.test_case "no-op on holding trials" `Quick
            test_shrink_noop_on_holding_trial;
        ] );
      ( "generator-determinism",
        [
          Alcotest.test_case "same seed, same instance" `Quick
            test_generator_repeatable;
          Alcotest.test_case "seeded digests are stable" `Quick
            test_generator_digests;
        ] );
      ( "seqcheck-reference",
        List.map QCheck_alcotest.to_alcotest seqcheck_properties
        @ [ Alcotest.test_case "edge cases" `Quick test_seqcheck_edge_cases ] );
    ]
