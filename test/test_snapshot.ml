(* Crash-safety tests for the checkpoint/resume subsystem (PR 5):
   snapshot round-trips, the strict-byte-prefix property for snapshot and
   corpus files (loading any prefix fails with [Error], never raises,
   never half-loads), the conformance journal's crash/compaction behavior,
   and a kill-and-resume integration test asserting a resumed exploration
   matches an uninterrupted one on states/edges/flags/verdict across all
   24 models. *)

open Spp
open Engine
open Modelcheck

let model s =
  match Model.of_string s with Some m -> m | None -> Alcotest.failf "bad model %s" s

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) ("commrouting-test-" ^ name)

let write_raw path contents =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc contents)

(* Canonical label rendering: [Activation.t] holds an [IntSet] whose
   internal tree shape depends on construction order, so polymorphic
   equality is not a reliable label comparison — the serialized form is. *)
let label_key inst (l : Enumerate.labeled) =
  ( Conformance.Corpus.Json.to_string
      (Conformance.Corpus.entries_to_json inst [ l.Enumerate.entry ]),
    l.Enumerate.reads,
    l.Enumerate.drops,
    l.Enumerate.cleans )

let check_same_graph inst name (a : Explore.graph) (b : Explore.graph) =
  Alcotest.(check int)
    (name ^ ": state count")
    (Array.length a.Explore.states)
    (Array.length b.Explore.states);
  Array.iteri
    (fun i st ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: state %d identical" name i)
        true
        (State.equal st b.Explore.states.(i)))
    a.Explore.states;
  Alcotest.(check bool) (name ^ ": pruned") a.Explore.pruned b.Explore.pruned;
  Alcotest.(check bool) (name ^ ": truncated") a.Explore.truncated b.Explore.truncated;
  Array.iteri
    (fun i ea ->
      let eb = b.Explore.adjacency.(i) in
      let key (e : Explore.edge) = (e.Explore.dst, label_key inst e.Explore.label) in
      Alcotest.(check bool)
        (Printf.sprintf "%s: row %d edges identical" name i)
        true
        (List.map key ea = List.map key eb))
    a.Explore.adjacency;
  Alcotest.(check string)
    (name ^ ": verdict")
    (Oscillation.verdict_name (Oscillation.analyze_graph inst a))
    (Oscillation.verdict_name (Oscillation.analyze_graph inst b))

(* A completed exploration as a snapshot value (empty frontier). *)
let snapshot_of_graph (config : Explore.config) (g : Explore.graph) : Snapshot.t =
  let conv (e : Explore.edge) =
    {
      Snapshot.dst = e.Explore.dst;
      label =
        {
          Snapshot.entry = e.Explore.label.Enumerate.entry;
          l_reads = e.Explore.label.Enumerate.reads;
          l_drops = e.Explore.label.Enumerate.drops;
          l_cleans = e.Explore.label.Enumerate.cleans;
        };
    }
  in
  let rows = ref [] and edges = ref 0 in
  Array.iteri
    (fun i es ->
      edges := !edges + List.length es;
      rows := (i, List.map conv es) :: !rows)
    g.Explore.adjacency;
  {
    Snapshot.channel_bound = config.Explore.channel_bound;
    max_states = config.Explore.max_states;
    reduction = "none";
    states = g.Explore.states;
    rows = !rows;
    frontier = [];
    pruned = g.Explore.pruned;
    truncated = g.Explore.truncated;
    counters =
      {
        Snapshot.interned = Array.length g.Explore.states;
        dedup = 0;
        edges = !edges;
        pruned_writes = 0;
        truncated_interns = 0;
        peak_frontier = 0;
        ample = 0;
        canonicalized = 0;
      };
  }

(* ------------------------------------------------------------------ *)
(* Round-trip *)

let test_snapshot_roundtrip () =
  let inst = Gadgets.disagree in
  let config = Explore.default_config in
  let g = Explore.explore ~config ~domains:1 inst (model "R1O") in
  let snap = snapshot_of_graph config g in
  let path = tmp "roundtrip.snap" in
  Snapshot.save ~path inst snap;
  (match Snapshot.load ~path inst with
  | Error e -> Alcotest.failf "load failed: %s" (Snapshot.error_to_string e)
  | Ok got ->
    Alcotest.(check int) "channel_bound" snap.Snapshot.channel_bound got.Snapshot.channel_bound;
    Alcotest.(check int) "max_states" snap.Snapshot.max_states got.Snapshot.max_states;
    Alcotest.(check int)
      "state count"
      (Array.length snap.Snapshot.states)
      (Array.length got.Snapshot.states);
    Array.iteri
      (fun i st ->
        Alcotest.(check bool)
          (Printf.sprintf "state %d digest" i)
          true
          (State.equal st got.Snapshot.states.(i)))
      snap.Snapshot.states;
    Alcotest.(check int)
      "row count"
      (List.length snap.Snapshot.rows)
      (List.length got.Snapshot.rows);
    Alcotest.(check (list int)) "frontier" snap.Snapshot.frontier got.Snapshot.frontier;
    Alcotest.(check int) "edges counter" snap.Snapshot.counters.Snapshot.edges
      got.Snapshot.counters.Snapshot.edges);
  Sys.remove path

let test_snapshot_wrong_instance () =
  let inst = Gadgets.disagree in
  let config = Explore.default_config in
  let g = Explore.explore ~config ~domains:1 inst (model "REA") in
  let path = tmp "wrong-instance.snap" in
  Snapshot.save ~path inst (snapshot_of_graph config g);
  (match Snapshot.load ~path Gadgets.fig6 with
  | Error (Snapshot.Mismatch _) -> ()
  | Error e -> Alcotest.failf "expected Mismatch, got %s" (Snapshot.error_to_string e)
  | Ok _ -> Alcotest.fail "loaded a snapshot against the wrong instance");
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Strict-byte-prefix property: every proper prefix of a valid artifact
   fails with [Error] — never an exception, never a half-loaded value. *)

let prefix_lengths n =
  (* All prefixes for small files; for larger ones every length in the
     first/last 512 bytes (header, digest and truncation boundaries) plus
     a dense stride through the middle. *)
  if n <= 8192 then List.init n Fun.id
  else
    let step = max 1 (n / 2048) in
    let rec strided acc i = if i >= n then acc else strided (i :: acc) (i + step) in
    List.sort_uniq compare
      (List.init 512 Fun.id
      @ List.init 512 (fun i -> n - 1 - i)
      @ strided [] 512)

let test_snapshot_prefixes_fail () =
  let inst = Gadgets.disagree in
  let config = Explore.default_config in
  let g = Explore.explore ~config ~domains:1 inst (model "R1O") in
  let path = tmp "prefix.snap" in
  Snapshot.save ~path inst (snapshot_of_graph config g);
  let contents = In_channel.with_open_bin path In_channel.input_all in
  let n = String.length contents in
  let part = tmp "prefix.snap.part" in
  List.iter
    (fun len ->
      write_raw part (String.sub contents 0 len);
      match Snapshot.load ~path:part inst with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "prefix of %d/%d bytes loaded successfully" len n
      | exception e ->
        Alcotest.failf "prefix of %d/%d bytes raised %s" len n (Printexc.to_string e))
    (prefix_lengths n);
  Sys.remove path;
  Sys.remove part

let sample_corpus_entry () =
  Conformance.Trial.force_routes ();
  let f = List.hd Realization.Facts.positives in
  let inst_name, inst = List.hd (Conformance.Fuzz.instance_pool ~seeds:1) in
  let entries =
    Conformance.Fuzz.schedule inst f.Realization.Facts.realized ~seed:7 ~len:10
  in
  let trial = Conformance.Trial.of_fact f ~inst_name inst entries in
  Conformance.Corpus.positive ~name:"prefix-test" ~expect:Conformance.Corpus.Expect_holds
    trial

let test_corpus_prefixes_fail () =
  let entry = sample_corpus_entry () in
  let path = tmp "prefix.corpus.json" in
  Conformance.Corpus.save path entry;
  (match Conformance.Corpus.load path with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "the full corpus file must load: %s" e);
  let contents = In_channel.with_open_bin path In_channel.input_all in
  let n = String.length contents in
  let part = tmp "prefix.corpus.json.part" in
  List.iter
    (fun len ->
      write_raw part (String.sub contents 0 len);
      match Conformance.Corpus.load part with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "corpus prefix of %d/%d bytes loaded successfully" len n
      | exception e ->
        Alcotest.failf "corpus prefix of %d/%d bytes raised %s" len n
          (Printexc.to_string e))
    (prefix_lengths n);
  Sys.remove path;
  Sys.remove part

(* ------------------------------------------------------------------ *)
(* Journal *)

let test_journal_resume_and_partial_line () =
  let path = tmp "journal.txt" in
  let fp = Conformance.Journal.fingerprint ~seeds:3 ~budget:"default" () in
  let entries =
    [
      Conformance.Journal.Positive { index = 0; held = true };
      Conformance.Journal.Positive { index = 4; held = false };
      Conformance.Journal.Negative
        { name = "A cannot realize B at exact [spaces are fine]";
          verdict = Conformance.Trial.Skipped "budget: too deep" };
    ]
  in
  let w, prior = Conformance.Journal.open_ ~path ~fingerprint:fp ~resume:false ~flush_every:1 in
  Alcotest.(check int) "fresh journal is empty" 0 (List.length prior);
  List.iter (Conformance.Journal.record w) entries;
  Conformance.Journal.close w;
  (* Simulate a crash mid-append: a partial trailing line. *)
  Out_channel.with_open_gen
    [ Open_wronly; Open_append; Open_binary ]
    0o644 path
    (fun oc -> Out_channel.output_string oc "P\t9");
  let w, prior = Conformance.Journal.open_ ~path ~fingerprint:fp ~resume:true ~flush_every:1 in
  Alcotest.(check int) "partial line dropped, rest kept" 3 (List.length prior);
  Alcotest.(check bool) "entries round-trip" true (prior = entries);
  Conformance.Journal.record w (Conformance.Journal.Positive { index = 9; held = true });
  Conformance.Journal.close w;
  let w, prior =
    Conformance.Journal.open_ ~path ~fingerprint:fp ~resume:true ~flush_every:1
  in
  Conformance.Journal.close w;
  Alcotest.(check int) "append after compaction" 4 (List.length prior);
  (* A journal written under a different configuration is ignored. *)
  let other = Conformance.Journal.fingerprint ~seeds:99 ~budget:"deep" () in
  let w, prior =
    Conformance.Journal.open_ ~path ~fingerprint:other ~resume:true ~flush_every:1
  in
  Conformance.Journal.close w;
  Alcotest.(check int) "mismatched fingerprint discards" 0 (List.length prior);
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Kill-and-resume across all 24 models: interrupt an exploration by
   raising from [successors] after [k] expansions, resume from the last
   checkpoint on disk, and require the resumed graph to be identical to an
   uninterrupted run's. *)

exception Killed

let test_kill_and_resume_all_models () =
  let inst = Gadgets.disagree in
  let config = Explore.default_config in
  List.iter
    (fun m ->
      let name = Model.to_string m in
      let path = tmp ("kill-" ^ name ^ ".snap") in
      if Sys.file_exists path then Sys.remove path;
      let successors = Enumerate.successors inst m in
      let collapse = Explore.collapse_state m in
      let uninterrupted = Explore.explore ~config ~domains:1 inst m in
      (* Phase 1: run with checkpointing and kill after 5 expansions. *)
      let calls = ref 0 in
      let killing st =
        incr calls;
        if !calls > 5 then raise Killed else successors st
      in
      (match
         Explore.explore_with ~config
           ~checkpoint:{ Explore.path; every = 2 }
           inst ~successors:killing ~collapse
       with
      | (_ : Explore.graph) -> () (* fewer than 5 expansions: ran to completion *)
      | exception Killed -> ());
      (* Phase 2: resume from the checkpoint if one was written. *)
      let resume =
        if not (Sys.file_exists path) then None
        else
          match Snapshot.load ~path inst with
          | Ok s -> Some s
          | Error e ->
            Alcotest.failf "%s: checkpoint load failed: %s" name
              (Snapshot.error_to_string e)
      in
      let resumed = Explore.explore_with ~config ?resume inst ~successors ~collapse in
      check_same_graph inst name uninterrupted resumed;
      if Sys.file_exists path then Sys.remove path)
    Model.all

let test_resume_config_mismatch_rejected () =
  let inst = Gadgets.disagree in
  let config = Explore.default_config in
  let g = Explore.explore ~config ~domains:1 inst (model "REA") in
  let snap = snapshot_of_graph config g in
  match
    Explore.explore
      ~config:{ config with Explore.channel_bound = config.Explore.channel_bound + 1 }
      ~resume:snap inst (model "REA")
  with
  | (_ : Explore.graph) -> Alcotest.fail "config mismatch accepted"
  | exception Invalid_argument _ -> ()

(* Restored counters: a resumed run's metrics must equal an uninterrupted
   run's (the snapshot carries the exploration's own totals). *)
let test_resume_counters_identical () =
  let inst = Gadgets.disagree in
  let config = Explore.default_config in
  let m = model "UMS" in
  let successors = Enumerate.successors inst m in
  let collapse = Explore.collapse_state m in
  let path = tmp "counters.snap" in
  if Sys.file_exists path then Sys.remove path;
  let metrics_full = Metrics.create () in
  let (_ : Explore.graph) =
    Explore.explore_with ~config ~domains:1 ~metrics:metrics_full inst ~successors
      ~collapse
  in
  let calls = ref 0 in
  let killing st =
    incr calls;
    if !calls > 7 then raise Killed else successors st
  in
  (match
     Explore.explore_with ~config
       ~checkpoint:{ Explore.path; every = 2 }
       inst ~successors:killing ~collapse
   with
  | (_ : Explore.graph) -> ()
  | exception Killed -> ());
  Alcotest.(check bool) "a checkpoint was written" true (Sys.file_exists path);
  let resume =
    match Snapshot.load ~path inst with
    | Ok s -> Some s
    | Error e -> Alcotest.failf "load failed: %s" (Snapshot.error_to_string e)
  in
  let metrics_resumed = Metrics.create () in
  let (_ : Explore.graph) =
    Explore.explore_with ~config ~metrics:metrics_resumed ?resume inst ~successors
      ~collapse
  in
  Alcotest.(check int) "edges counter" (Metrics.edges metrics_full)
    (Metrics.edges metrics_resumed);
  Alcotest.(check int) "peak frontier" (Metrics.peak_frontier metrics_full)
    (Metrics.peak_frontier metrics_resumed);
  Alcotest.(check (float 1e-9)) "dedup rate" (Metrics.dedup_rate metrics_full)
    (Metrics.dedup_rate metrics_resumed);
  Sys.remove path

let () =
  Alcotest.run "snapshot"
    [
      ( "snapshot",
        [
          Alcotest.test_case "roundtrip" `Quick test_snapshot_roundtrip;
          Alcotest.test_case "wrong instance rejected" `Quick test_snapshot_wrong_instance;
          Alcotest.test_case "all strict prefixes fail" `Quick test_snapshot_prefixes_fail;
        ] );
      ( "corpus",
        [ Alcotest.test_case "all strict prefixes fail" `Quick test_corpus_prefixes_fail ]
      );
      ( "journal",
        [
          Alcotest.test_case "resume, partial line, fingerprint" `Quick
            test_journal_resume_and_partial_line;
        ] );
      ( "resume",
        [
          Alcotest.test_case "kill-and-resume matches (all 24 models)" `Quick
            test_kill_and_resume_all_models;
          Alcotest.test_case "config mismatch rejected" `Quick
            test_resume_config_mismatch_rejected;
          Alcotest.test_case "restored counters identical" `Quick
            test_resume_counters_identical;
        ] );
    ]
