(* Tests for the bounded model checker: canonical entry enumeration,
   exhaustive oscillation/convergence verdicts on the paper's gadgets, and
   executor replay of every oscillation witness. *)

open Spp
open Engine
open Modelcheck

let model s =
  match Model.of_string s with Some m -> m | None -> Alcotest.failf "bad model %s" s

(* ------------------------------------------------------------------ *)
(* Enumerate *)

let test_enumerate_counts () =
  let inst = Gadgets.disagree in
  let st = State.initial inst in
  (* Initial state: all channels empty.  REA: one full poll per node. *)
  let rea = Enumerate.successors inst (model "REA") st in
  Alcotest.(check int) "REA: one entry per node" 3 (List.length rea);
  (* R1O: one entry per (node, channel); x and y have 2 channels each, and
     the destination contributes its single no-op activation. *)
  let r1o = Enumerate.successors inst (model "R1O") st in
  Alcotest.(check int) "R1O count" 5 (List.length r1o);
  List.iter
    (fun (l : Enumerate.labeled) ->
      Alcotest.(check bool) "validates" true
        (Model.validates inst (model "R1O") l.Enumerate.entry))
    r1o

let test_enumerate_drop_variants () =
  (* After d announces, channel (d,x) has one message: U1O at x offers a
     clean read and an all-dropped read. *)
  let inst = Gadgets.disagree in
  let d = Gadgets.node inst 'd' in
  let o = Step.apply inst (State.initial inst) (Activation.poll_all inst d) in
  let st = o.Step.state in
  let u1o = Enumerate.successors inst (model "U1O") st in
  let x = Gadgets.node inst 'x' in
  let reads_dx (l : Enumerate.labeled) =
    List.exists
      (fun (c : Channel.id) -> c.Channel.src = d && c.Channel.dst = x)
      l.Enumerate.reads
  in
  let variants = List.filter reads_dx u1o in
  Alcotest.(check int) "clean + dropped" 2 (List.length variants);
  Alcotest.(check bool) "one drops" true
    (List.exists (fun (l : Enumerate.labeled) -> l.Enumerate.drops <> []) variants);
  Alcotest.(check bool) "one cleans" true
    (List.exists (fun (l : Enumerate.labeled) -> l.Enumerate.cleans <> []) variants)

let test_enumerate_entries_validate () =
  let inst = Gadgets.disagree in
  let d = Gadgets.node inst 'd' in
  let o = Step.apply inst (State.initial inst) (Activation.poll_all inst d) in
  let st = o.Step.state in
  List.iter
    (fun m ->
      List.iter
        (fun (l : Enumerate.labeled) ->
          if not (Model.validates inst m l.Enumerate.entry) then
            Alcotest.failf "%s: invalid canonical entry %a" (Model.to_string m)
              (Activation.pp inst) l.Enumerate.entry)
        (Enumerate.successors inst m st))
    Model.all

(* ------------------------------------------------------------------ *)
(* DISAGREE: the full 24-model sweep (Ex. A.1 and beyond) *)

let disagree_expected =
  (* Per the paper, DISAGREE cannot oscillate in REO, REF, R1A, RMA, REA;
     the model checker additionally proves the unreliable E-variants
     convergent (a refinement, recorded in EXPERIMENTS.md). *)
  [ "REO"; "REF"; "R1A"; "RMA"; "REA"; "UEO"; "UEF"; "U1A"; "UMA"; "UEA" ]

let test_disagree_sweep () =
  let inst = Gadgets.disagree in
  List.iter
    (fun m ->
      let name = Model.to_string m in
      let expected_converges = List.mem name disagree_expected in
      match Oscillation.analyze inst m with
      | Oscillation.Converges ->
        if not expected_converges then Alcotest.failf "%s: expected oscillation" name
      | Oscillation.Oscillates w ->
        if expected_converges then Alcotest.failf "%s: expected convergence" name;
        Alcotest.(check bool) (name ^ " witness replays") true
          (Oscillation.verify_witness inst m w)
      | Oscillation.Unknown r -> Alcotest.failf "%s: unknown (%s)" name r)
    Model.all

(* ------------------------------------------------------------------ *)
(* FIG6 (Ex. A.2): polling models provably converge *)

let test_fig6_rea_converges () =
  match Oscillation.analyze Gadgets.fig6 (model "REA") with
  | Oscillation.Converges -> ()
  | v -> Alcotest.failf "expected convergence, got %a" Oscillation.pp_verdict v

(* ------------------------------------------------------------------ *)
(* BAD GADGET: no solution, so every model oscillates *)

let test_bad_gadget_oscillates () =
  let inst = Gadgets.bad_gadget in
  List.iter
    (fun name ->
      let m = model name in
      match Oscillation.analyze inst m with
      | Oscillation.Oscillates w ->
        Alcotest.(check bool) (name ^ " witness replays") true
          (Oscillation.verify_witness inst m w)
      | v -> Alcotest.failf "%s: expected oscillation, got %a" name Oscillation.pp_verdict v)
    [ "REA"; "REO"; "U1A" ]

(* ------------------------------------------------------------------ *)
(* GOOD GADGET and safe instances: convergence everywhere *)

let test_good_gadget_converges () =
  let inst = Gadgets.good_gadget in
  List.iter
    (fun name ->
      match Oscillation.analyze inst (model name) with
      | Oscillation.Converges -> ()
      | v -> Alcotest.failf "%s: expected convergence, got %a" name Oscillation.pp_verdict v)
    [ "R1O"; "REA"; "UMS"; "U1O" ]

let test_safe_random_instances_converge () =
  (* Dispute-wheel-free instances converge in every model (Griffin et al.);
     spot-check small random safe instances under R1O. *)
  List.iter
    (fun seed ->
      let cfg = { Generator.default with nodes = 4; seed; extra_edges = 1 } in
      let inst = Generator.safe_instance cfg in
      match Oscillation.analyze inst (model "R1O") with
      | Oscillation.Converges -> ()
      | Oscillation.Unknown _ -> () (* bound hit: acceptable for random inputs *)
      | Oscillation.Oscillates _ ->
        Alcotest.failf "safe instance oscillates (seed %d)" seed)
    [ 1; 2; 3; 4; 5 ]

(* ------------------------------------------------------------------ *)
(* Witness structure *)

let test_witness_is_fair_cycle () =
  let inst = Gadgets.disagree in
  match Oscillation.analyze inst (model "R1O") with
  | Oscillation.Oscillates w ->
    Alcotest.(check bool) "fair" true (Fairness.cycle_is_fair inst w.Oscillation.cycle);
    (* Every witness entry is a legal R1O entry. *)
    List.iter
      (fun e ->
        Alcotest.(check bool) "entry valid" true (Model.validates inst (model "R1O") e))
      (w.Oscillation.prefix @ w.Oscillation.cycle)
  | v -> Alcotest.failf "expected oscillation, got %a" Oscillation.pp_verdict v

let test_unreliable_witness_has_drops_covered () =
  let inst = Gadgets.disagree in
  match Oscillation.analyze inst (model "UMS") with
  | Oscillation.Oscillates w ->
    Alcotest.(check bool) "fair incl. drop rule" true
      (Fairness.cycle_is_fair inst w.Oscillation.cycle);
    Alcotest.(check bool) "replays" true
      (Oscillation.verify_witness inst (model "UMS") w)
  | v -> Alcotest.failf "expected oscillation, got %a" Oscillation.pp_verdict v

(* ------------------------------------------------------------------ *)
(* Refute: machine-checked Props. 3.10-3.13 (Examples A.3-A.5) *)

let poll1 inst c =
  let v = Gadgets.node inst c in
  Activation.single v
    (List.map
       (fun ch -> Activation.read ~count:(Activation.Finite 1) ch)
       (Model.required_channels inst v))

let target_of inst entries =
  Engine.Trace.assignments ~include_initial:true (Executor.run_entries inst entries)

let check_refute name expected result =
  let got =
    match result with
    | Refute.Realizable _ -> "realizable"
    | Refute.Impossible -> "impossible"
    | Refute.Unknown r -> "unknown: " ^ r
  in
  Alcotest.(check string) name expected got

let test_prop_3_10 () =
  (* Ex. A.3: the REO execution on FIG7 cannot be exactly realized in R1O
     (taking fairness of the continuation into account), but is realizable
     as a subsequence there and exactly in RMS. *)
  let inst = Gadgets.fig7 in
  let entries = List.map (poll1 inst) [ 'd'; 'b'; 'u'; 'v'; 'a'; 'u'; 'v'; 's'; 's'; 's' ] in
  let target = target_of inst entries in
  check_refute "not exact in R1O" "impossible"
    (Refute.realizable ~termination:Refute.Forever inst (model "R1O")
       Realization.Relation.Exact ~target);
  check_refute "subsequence in R1O" "realizable"
    (Refute.realizable inst (model "R1O") Realization.Relation.Subsequence ~target);
  (* A positive verdict is sound at any channel bound; a small bound keeps
     the RMS product space tiny. *)
  check_refute "exact in RMS" "realizable"
    (Refute.realizable
       ~config:{ Explore.default_config with Explore.channel_bound = 2 }
       ~termination:Refute.Forever inst (model "RMS") Realization.Relation.Exact ~target)

let test_prop_3_11 () =
  (* Ex. A.4: the REA execution on FIG8 cannot be realized with repetition
     in R1O; the paper's subsequence realization (inserting suad) exists. *)
  let inst = Gadgets.fig8 in
  let entries =
    List.map (fun c -> Activation.poll_all inst (Gadgets.node inst c))
      [ 'd'; 'a'; 'u'; 'b'; 'u'; 's' ]
  in
  let target = target_of inst entries in
  check_refute "not with repetition in R1O" "impossible"
    (Refute.realizable inst (model "R1O") Realization.Relation.Repetition ~target);
  (match
     Refute.realizable inst (model "R1O") Realization.Relation.Subsequence ~target
   with
  | Refute.Realizable schedule ->
    (* Replaying the found schedule must indeed contain the target as a
       subsequence. *)
    let realized = target_of inst schedule in
    Alcotest.(check bool) "schedule replays" true
      (Realization.Seqcheck.is_subsequence ~original:target ~realized)
  | r -> Alcotest.failf "expected subsequence realization, got %a" Refute.pp_result r)

let test_props_3_12_3_13 () =
  (* Ex. A.5: the REA execution on FIG9 cannot be exactly realized in R1S
     (Prop. 3.12); the same sequence is an REO sequence (Prop. 3.13). *)
  let inst = Gadgets.fig9 in
  let entries =
    List.map (fun c -> Activation.poll_all inst (Gadgets.node inst c))
      [ 'd'; 'b'; 'c'; 'x'; 's'; 'a'; 'c'; 's' ]
  in
  let target = target_of inst entries in
  check_refute "not exact in R1S" "impossible"
    (Refute.realizable inst (model "R1S") Realization.Relation.Exact ~target);
  check_refute "repetition in R1S" "realizable"
    (Refute.realizable inst (model "R1S") Realization.Relation.Repetition ~target)

let test_refute_positive_sanity () =
  (* A sequence induced by a model is trivially realizable in that model. *)
  let inst = Gadgets.disagree in
  let entries =
    List.map (fun c -> Activation.poll_all inst (Gadgets.node inst c)) [ 'd'; 'x'; 'y' ]
  in
  let target = target_of inst entries in
  check_refute "REA realizes its own trace" "realizable"
    (Refute.realizable inst (model "REA") Realization.Relation.Exact ~target)

let test_explore_basics () =
  let inst = Gadgets.disagree in
  let g = Explore.explore inst (model "REA") in
  Alcotest.(check bool) "no pruning" false g.Explore.pruned;
  Alcotest.(check bool) "complete" false g.Explore.truncated;
  Alcotest.(check bool) "nontrivial" true (Array.length g.Explore.states > 3);
  (* State 0 is the initial state. *)
  Alcotest.(check bool) "initial first" true
    (State.equal g.Explore.states.(0) (State.initial inst))

let test_explore_truncation_bound () =
  (* The [max_states] bound is enforced at intern time: the graph never
     exceeds it, the truncation is reported, and no edge dangles past the
     kept states. *)
  let inst = Gadgets.disagree in
  let config = { Explore.channel_bound = 4; max_states = 10 } in
  let g = Explore.explore ~config inst (model "UMS") in
  Alcotest.(check bool) "truncated" true g.Explore.truncated;
  Alcotest.(check bool) "bounded" true (Array.length g.Explore.states <= 10);
  Alcotest.(check int) "adjacency rows match states" (Array.length g.Explore.states)
    (Array.length g.Explore.adjacency);
  Array.iter
    (fun edges ->
      List.iter
        (fun (e : Explore.edge) ->
          if e.Explore.dst < 0 || e.Explore.dst >= Array.length g.Explore.states then
            Alcotest.failf "dangling edge target %d" e.Explore.dst)
        edges)
    g.Explore.adjacency

(* Canonical form of a graph, invariant under state renumbering: the state
   list sorted by [State.compare], and every edge rewritten to (source rank,
   label, target rank) and sorted.  Labels are plain data (node ids, channel
   ids), so structural compare is exact. *)
let graph_signature (g : Explore.graph) =
  let n = Array.length g.Explore.states in
  let idx = Array.init n Fun.id in
  Array.sort (fun a b -> State.compare g.Explore.states.(a) g.Explore.states.(b)) idx;
  let rank = Array.make n 0 in
  Array.iteri (fun r i -> rank.(i) <- r) idx;
  let states = Array.to_list (Array.map (fun i -> g.Explore.states.(i)) idx) in
  let edges = ref [] in
  Array.iteri
    (fun src row ->
      List.iter
        (fun (e : Explore.edge) ->
          edges := (rank.(src), e.Explore.label, rank.(e.Explore.dst)) :: !edges)
        row)
    g.Explore.adjacency;
  (states, List.sort Stdlib.compare !edges)

let prop_parallel_matches_sequential =
  (* The work-stealing explorer (forced on via spill:0, so the property
     exercises the deques/pool machinery even on 1-core hardware where the
     adaptive default would stay sequential) must agree with the sequential
     explorer on the reachable state set, the edge multiset up to state
     renumbering, the completeness flags, and the oscillation verdict —
     under every one of the 24 models per generated instance. *)
  QCheck2.Test.make ~name:"work-stealing exploration matches sequential" ~count:5
    QCheck2.Gen.(int_range 0 9_999)
    (fun seed ->
      let inst =
        Generator.instance
          { Generator.default with nodes = 4; seed; extra_edges = 1; max_paths_per_node = 2 }
      in
      let config = { Explore.channel_bound = 2; max_states = 20_000 } in
      List.for_all
        (fun m ->
          let sequential = Explore.explore ~config ~domains:1 inst m in
          let parallel = Explore.explore ~config ~domains:3 ~spill:0 inst m in
          let flags_ok =
            sequential.Explore.truncated = parallel.Explore.truncated
            && sequential.Explore.pruned = parallel.Explore.pruned
          in
          let verdict_ok =
            Oscillation.verdict_name (Oscillation.analyze_graph inst sequential)
            = Oscillation.verdict_name (Oscillation.analyze_graph inst parallel)
          in
          (* Under truncation the kept subset is schedule-dependent, so only
             the flags and the count are required to agree. *)
          let graph_ok =
            if sequential.Explore.truncated then
              Array.length sequential.Explore.states
              = Array.length parallel.Explore.states
            else begin
              let seq_states, seq_edges = graph_signature sequential in
              let par_states, par_edges = graph_signature parallel in
              List.equal State.equal seq_states par_states
              && Stdlib.compare seq_edges par_edges = 0
            end
          in
          flags_ok && verdict_ok && graph_ok)
        Model.all)

let test_pool_reuse () =
  (* Two consecutive forced-parallel explorations reuse the same pool
     domains: runs grow, the worker set does not. *)
  let inst = Gadgets.disagree in
  let m = model "UMS" in
  let explore_once () = ignore (Explore.explore ~domains:3 ~spill:0 inst m) in
  explore_once ();
  let s1 = Pool.stats (Pool.get ()) in
  explore_once ();
  let s2 = Pool.stats (Pool.get ()) in
  Alcotest.(check int) "pool size stable" s1.Pool.size s2.Pool.size;
  Alcotest.(check int) "no new domains spawned" s1.Pool.spawned_total
    s2.Pool.spawned_total;
  Alcotest.(check bool) "runs grew" true (s2.Pool.runs > s1.Pool.runs)

exception Boom

let test_ws_exception_propagates () =
  (* An exception raised by user-supplied [successors] inside a pool worker
     must propagate out of [explore_with], not hang the other workers on
     the in-flight counter (the failed item's decrement is skipped; the
     abort flag is what unblocks everyone). *)
  let inst = Gadgets.disagree in
  let m = model "UMS" in
  let base = Enumerate.successors inst m in
  let calls = Atomic.make 0 in
  let successors st =
    if Atomic.fetch_and_add calls 1 = 3 then raise Boom;
    base st
  in
  (match
     Explore.explore_with ~domains:3 ~spill:0 inst ~successors
       ~collapse:(fun st -> st)
   with
  | _ -> Alcotest.fail "exception in successors was swallowed"
  | exception Boom -> ());
  (* The pool survives the aborted exploration. *)
  let g = Explore.explore ~domains:3 ~spill:0 inst m in
  Alcotest.(check int) "pool still explores" 39 (Array.length g.Explore.states)


(* ------------------------------------------------------------------ *)
(* Cross-validation between independent components *)

let test_reachable_solutions_subset_of_solver () =
  (* Every stable solution the model checker reaches must be found by the
     enumerating solver, on random instances.  Small instances and a tight
     channel bound keep the exploration cheap. *)
  let config = { Explore.channel_bound = 2; max_states = 50_000 } in
  List.iter
    (fun seed ->
      let inst =
        Generator.instance
          { Generator.default with nodes = 4; seed; extra_edges = 1; max_paths_per_node = 2 }
      in
      let all = Solver.solutions inst in
      List.iter
        (fun mname ->
          List.iter
            (fun a ->
              if not (List.exists (Assignment.equal a) all) then
                Alcotest.failf "reachable non-solution under %s (seed %d)" mname seed)
            (Quiescence.reachable_solutions ~config inst (model mname)))
        [ "R1O"; "REA" ])
    [ 1; 2; 3; 4; 5; 6 ]

let test_refute_agrees_with_transform () =
  (* Whatever the constructive transforms realize, the reachability-based
     decision procedure must also find realizable. *)
  let inst = Gadgets.disagree in
  List.iter
    (fun (src, tgt, level) ->
      let source = model src and target = model tgt in
      let entries = Engine.Scheduler.prefix 8 (Engine.Scheduler.random inst source ~seed:3) in
      let original = target_of inst entries in
      match Refute.realizable inst target level ~target:original with
      | Refute.Realizable _ -> ()
      | r ->
        Alcotest.failf "%s trace should be %s-realizable in %s, got %a" src
          (Realization.Relation.to_string level) tgt Refute.pp_result r)
    [
      ("RMA", "RMS", Realization.Relation.Exact);
      ("R1O", "UMS", Realization.Relation.Exact);
      ("RMS", "R1S", Realization.Relation.Repetition);
      ("RES", "R1O", Realization.Relation.Subsequence);
    ]

let test_constructive_agrees_with_enumeration () =
  List.iter
    (fun seed ->
      let inst = Generator.safe_instance { Generator.default with nodes = 5; seed } in
      match (Solver.constructive inst, Solver.solutions inst) with
      | Some a, [ only ] ->
        Alcotest.(check bool) "unique solution matches" true (Assignment.equal a only)
      | Some a, several ->
        Alcotest.(check bool) "constructive is among solutions" true
          (List.exists (Assignment.equal a) several)
      | None, [] -> ()
      | None, _ :: _ ->
        (* The greedy construction is allowed to fail only on instances
           with dispute wheels. *)
        Alcotest.(check bool) "wheel present" true (Dispute.has_wheel inst))
    [ 7; 8; 9; 10; 11 ]

let () =
  Alcotest.run "modelcheck"
    [
      ( "enumerate",
        [
          Alcotest.test_case "counts" `Quick test_enumerate_counts;
          Alcotest.test_case "drop variants" `Quick test_enumerate_drop_variants;
          Alcotest.test_case "entries validate (24 models)" `Quick
            test_enumerate_entries_validate;
        ] );
      ( "verdicts",
        [
          Alcotest.test_case "DISAGREE 24-model sweep" `Quick test_disagree_sweep;
          Alcotest.test_case "FIG6 REA converges" `Quick test_fig6_rea_converges;
          Alcotest.test_case "BAD GADGET oscillates" `Slow test_bad_gadget_oscillates;
          Alcotest.test_case "GOOD GADGET converges" `Quick test_good_gadget_converges;
          Alcotest.test_case "safe random instances converge" `Slow
            test_safe_random_instances_converge;
        ] );
      ( "refute",
        [
          Alcotest.test_case "Prop 3.10 (Ex A.3)" `Quick test_prop_3_10;
          Alcotest.test_case "Prop 3.11 (Ex A.4)" `Quick test_prop_3_11;
          Alcotest.test_case "Props 3.12/3.13 (Ex A.5)" `Quick test_props_3_12_3_13;
          Alcotest.test_case "positive sanity" `Quick test_refute_positive_sanity;
        ] );
      ( "cross-validation",
        [
          Alcotest.test_case "reachable solutions are solver solutions" `Quick
            test_reachable_solutions_subset_of_solver;
          Alcotest.test_case "refute agrees with transforms" `Quick
            test_refute_agrees_with_transform;
          Alcotest.test_case "constructive agrees with enumeration" `Quick
            test_constructive_agrees_with_enumeration;
        ] );
      ( "witnesses",
        [
          Alcotest.test_case "fair R1O witness" `Quick test_witness_is_fair_cycle;
          Alcotest.test_case "UMS drops covered" `Quick
            test_unreliable_witness_has_drops_covered;
          Alcotest.test_case "explore basics" `Quick test_explore_basics;
          Alcotest.test_case "truncation bound" `Quick test_explore_truncation_bound;
        ] );
      ( "parallel",
        Alcotest.test_case "pool reused across explorations" `Quick test_pool_reuse
        :: Alcotest.test_case "worker exception propagates, no hang" `Quick
             test_ws_exception_propagates
        :: List.map QCheck_alcotest.to_alcotest [ prop_parallel_matches_sequential ] );
    ]
