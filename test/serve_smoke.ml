(* serve_smoke: end-to-end daemon smoke test, exercised by @serve-smoke
   (wired into @runtest) and mirrored by the CI serve-smoke job.

   Forks a daemon (both daemon processes are forked before the parent
   spawns any domain of its own), then:
     1. answers a malformed raw line with a typed error and keeps the
        connection usable;
     2. cold/warm check pair: identical result bytes, cached flags
        false/true;
     3. starts a deep streaming job, waits for a progress event (which
        implies a checkpoint is on disk — progress is flushed after each
        checkpoint write), SIGKILLs the daemon mid-job;
     4. starts a second daemon on the same store, observes the job as
        suspended-with-checkpoint, resumes it by id, drains events to
        completion;
     5. gates the resumed result byte-for-byte against an uncached
        in-process reference — the daemon must be indistinguishable from
        the one-shot computation.

   Exit 0 on success, 1 on any mismatch; diagnostics on stderr. *)

module Json = Engine.Metrics.Json
open Service

let sock1 = Printf.sprintf "/tmp/css1-%d.sock" (Unix.getpid ())
let sock2 = Printf.sprintf "/tmp/css2-%d.sock" (Unix.getpid ())
let store_dir = Printf.sprintf "/tmp/css-store-%d" (Unix.getpid ())
let failures = ref 0

let check name ok =
  if ok then Fmt.epr "ok   %s@." name
  else begin
    incr failures;
    Fmt.epr "FAIL %s@." name
  end

let cleanup () =
  ignore (Sys.command (Printf.sprintf "rm -rf %s %s %s" store_dir sock1 sock2))

let die fmt =
  Fmt.kstr
    (fun m ->
      Fmt.epr "serve_smoke: %s@." m;
      cleanup ();
      exit 1)
    fmt

(* Fork a daemon; it starts serving only once a byte arrives on its
   trigger pipe, so both children are created while the parent is still
   a single clean domain. *)
let fork_daemon ~socket =
  let r, w = Unix.pipe ~cloexec:false () in
  match Unix.fork () with
  | 0 -> (
    Unix.close w;
    let buf = Bytes.create 1 in
    let n = Unix.read r buf 0 1 in
    Unix.close r;
    if n = 0 then exit 0 (* parent died before triggering *)
    else
      match
        Server.run
          {
            Server.socket;
            store = { Store.dir = store_dir; max_entries = 64 };
            workers = 2;
          }
      with
      | Ok () -> exit 0
      | Error e ->
        Fmt.epr "daemon: %a@." Error.pp e;
        exit (Error.exit_code e))
  | pid ->
    Unix.close r;
    (pid, w)

let trigger w = ignore (Unix.write_substring w "g" 0 1)

let connect_retry socket =
  let deadline = Unix.gettimeofday () +. 30. in
  let rec go () =
    match Client.connect ~socket with
    | Ok c -> c
    | Error e ->
      if Unix.gettimeofday () > deadline then
        die "cannot reach daemon at %s: %a" socket Error.pp e
      else begin
        ignore (Unix.select [] [] [] 0.05);
        go ()
      end
  in
  go ()

let req c r =
  match Client.request c { Protocol.id = Json.Null; req = r } with
  | Ok j -> j
  | Error e -> die "request failed: %a" Error.pp e

let member name j =
  match Json.member name j with
  | Some v -> v
  | None -> die "response lacks %S: %s" name (Json.to_string j)

let is_ok j = Json.member "ok" j = Some (Json.Bool true)

let deep_instance = "FIG6"
let deep_model = "R1A"
let qc = Protocol.default_query_config

let deep_model_t =
  match Engine.Model.of_string deep_model with
  | Some m -> m
  | None -> assert false

let () =
  cleanup ();
  (* Both forks happen before any Domain.spawn in this process. *)
  let pid1, w1 = fork_daemon ~socket:sock1 in
  let pid2, w2 = fork_daemon ~socket:sock2 in
  trigger w1;
  let c = connect_retry sock1 in

  (* --- malformed raw input: answered, not fatal ------------------- *)
  (match Client.send_raw c "this is { not json\n" with
  | Ok () -> ()
  | Error e -> die "send_raw: %a" Error.pp e);
  (match Client.read_json c with
  | Ok j ->
    check "malformed line gets an error response"
      ((not (is_ok j))
      && Json.member "kind" (member "error" j) = Some (Json.Str "usage"))
  | Error e -> die "no response to malformed line: %a" Error.pp e);
  let pong = req c Protocol.Ping in
  check "connection survives malformed input" (is_ok pong);

  (* --- cold/warm pair -------------------------------------------- *)
  let check_req fresh =
    Protocol.Check
      { instance = "DISAGREE"; model = Engine.Model.{ rel = Reliable; nbr = N_one; msg = M_one }; config = qc; fresh }
  in
  let cold = req c (check_req false) in
  let warm = req c (check_req false) in
  check "cold check is ok" (is_ok cold);
  check "cold check is uncached" (Json.member "cached" cold = Some (Json.Bool false));
  check "warm check is a cache hit" (Json.member "cached" warm = Some (Json.Bool true));
  check "cold and warm results byte-identical"
    (Json.to_string (member "result" cold) = Json.to_string (member "result" warm));

  (* --- deep streaming job, killed mid-flight --------------------- *)
  let job_req =
    Protocol.Job_start
      { instance = deep_instance; model = deep_model_t; config = qc; every = 150 }
  in
  let started = req c job_req in
  check "job starts running" (is_ok started);
  let job_id =
    match member "job" (member "result" started) with
    | Json.Str s -> s
    | _ -> die "no job id in %s" (Json.to_string started)
  in
  (* The first progress event is emitted after a checkpoint write, so
     once we see it there is a checkpoint on disk to resume from. *)
  (match Client.wait_event c with
  | Ok ev ->
    check "progress event streams"
      (Json.member "event" ev = Some (Json.Str "progress"))
  | Error e -> die "no progress event: %a" Error.pp e);
  Unix.kill pid1 Sys.sigkill;
  ignore (Unix.waitpid [] pid1);
  Client.close c;
  check "daemon killed mid-job" true;

  (* --- resume in a fresh daemon on the same store ----------------- *)
  trigger w2;
  let c2 = connect_retry sock2 in
  let status = req c2 (Protocol.Job_status { job = job_id }) in
  let status_obj = member "status" (member "result" status) in
  check "job reported suspended after the kill"
    (Json.member "state" status_obj = Some (Json.Str "suspended"));
  check "a checkpoint survived the kill"
    (Json.member "checkpoint" status_obj = Some (Json.Bool true));
  let resumed = req c2 (Protocol.Job_resume { job = job_id }) in
  check "resume by job id accepted" (is_ok resumed);
  let deadline = Unix.gettimeofday () +. 120. in
  let rec drain () =
    if Unix.gettimeofday () > deadline then die "job did not finish in time";
    match Client.wait_event c2 with
    | Ok ev -> (
      match Json.member "event" ev with
      | Some (Json.Str "done") -> member "result" ev
      | Some (Json.Str "failed") -> die "job failed: %s" (Json.to_string ev)
      | _ -> drain ())
    | Error e -> die "event stream broke: %a" Error.pp e
  in
  let job_result = drain () in

  (* The finished job is a warm check for the same triple. *)
  let via_check =
    req c2
      (Protocol.Check
         { instance = deep_instance; model = deep_model_t; config = qc; fresh = false })
  in
  check "finished job serves later checks from cache"
    (Json.member "cached" via_check = Some (Json.Bool true));
  check "job result equals the check result"
    (Json.to_string job_result = Json.to_string (member "result" via_check));

  (* --- equality gate against the uncached in-process reference ---- *)
  (* Safe to spawn domains now: no more forks follow. *)
  let inst =
    match Resolve.find deep_instance with
    | Ok i -> i
    | Error e -> die "resolve: %a" Error.pp e
  in
  let reference = Query.compute_check inst deep_model_t qc in
  check "resumed job result byte-identical to one-shot reference"
    (Json.to_string job_result = Json.to_string reference);

  (* --- graceful shutdown ----------------------------------------- *)
  let bye = req c2 Protocol.Shutdown in
  check "shutdown acknowledged" (is_ok bye);
  Client.close c2;
  let _, st = Unix.waitpid [] pid2 in
  check "daemon exits cleanly on shutdown" (st = Unix.WEXITED 0);

  cleanup ();
  if !failures > 0 then begin
    Fmt.epr "serve_smoke: %d failure(s)@." !failures;
    exit 1
  end;
  Fmt.pr "serve smoke: all checks passed@."
