(* Tests for the SPP substrate: paths, instances, assignments, the solver,
   dispute wheels, the paper's gadgets and the random generators. *)

open Spp

let names = [| "d"; "x"; "y"; "z" |]

let path_testable =
  Alcotest.testable (Path.pp ~names:[| "d"; "a"; "b"; "c"; "e"; "f"; "g"; "h" |]) Path.equal

(* ------------------------------------------------------------------ *)
(* Path *)

let test_path_basics () =
  let p = Path.of_nodes [ 1; 2; 0 ] in
  Alcotest.(check (option int)) "source" (Some 1) (Path.source p);
  Alcotest.(check (option int)) "destination" (Some 0) (Path.destination p);
  Alcotest.(check (option int)) "next hop" (Some 2) (Path.next_hop p);
  Alcotest.(check int) "length" 2 (Path.length p);
  Alcotest.(check bool) "simple" true (Path.is_simple p);
  Alcotest.(check bool) "contains 2" true (Path.contains 2 p);
  Alcotest.(check bool) "not contains 3" false (Path.contains 3 p)

let test_path_epsilon () =
  Alcotest.(check bool) "epsilon empty" true (Path.is_epsilon Path.epsilon);
  Alcotest.(check (option int)) "no source" None (Path.source Path.epsilon);
  Alcotest.(check int) "length 0" 0 (Path.length Path.epsilon);
  Alcotest.(check bool) "epsilon simple" true (Path.is_simple Path.epsilon);
  Alcotest.check_raises "extend epsilon"
    (Invalid_argument "Path.extend: cannot extend the empty path") (fun () ->
      ignore (Path.extend 1 Path.epsilon))

let test_path_extend () =
  let p = Path.of_nodes [ 2; 0 ] in
  let q = Path.extend 1 p in
  Alcotest.(check path_testable) "extend" (Path.of_nodes [ 1; 2; 0 ]) q;
  let loop = Path.extend 2 q in
  Alcotest.(check bool) "loop not simple" false (Path.is_simple loop)

let test_path_affixes () =
  let p = Path.of_nodes [ 1; 2; 3; 0 ] in
  Alcotest.(check (option path_testable)) "suffix from 2"
    (Some (Path.of_nodes [ 2; 3; 0 ]))
    (Path.suffix_from 2 p);
  Alcotest.(check (option path_testable)) "suffix missing" None (Path.suffix_from 7 p);
  Alcotest.(check (option path_testable)) "prefix to 3"
    (Some (Path.of_nodes [ 1; 2; 3 ]))
    (Path.prefix_to 3 p);
  Alcotest.(check (option path_testable)) "prefix missing" None (Path.prefix_to 7 p)

let test_path_pp () =
  let inst = Gadgets.disagree in
  Alcotest.(check string) "pp xyd" "xyd"
    (Path.to_string ~names:(Instance.names inst) (Gadgets.path inst "xyd"));
  Alcotest.(check string) "pp epsilon" "\xCE\xB5"
    (Path.to_string ~names:(Instance.names inst) Path.epsilon)

(* ------------------------------------------------------------------ *)
(* Instance *)

let simple_instance () =
  Instance.make ~names ~dest:0
    ~edges:[ (0, 1); (0, 2); (1, 2); (2, 3) ]
    ~permitted:
      [
        (1, [ [ 1; 2; 0 ]; [ 1; 0 ] ]);
        (2, [ [ 2; 0 ] ]);
        (3, [ [ 3; 2; 0 ] ]);
      ]

let test_instance_accessors () =
  let t = simple_instance () in
  Alcotest.(check int) "size" 4 (Instance.size t);
  Alcotest.(check int) "dest" 0 (Instance.dest t);
  Alcotest.(check (list int)) "neighbors of 2" [ 0; 1; 3 ] (Instance.neighbors t 2);
  Alcotest.(check bool) "adjacent" true (Instance.are_adjacent t 1 2);
  Alcotest.(check bool) "not adjacent" false (Instance.are_adjacent t 1 3);
  Alcotest.(check int) "channels" 8 (List.length (Instance.channels t));
  Alcotest.(check int) "edges" 4 (List.length (Instance.edges t))

let test_instance_ranks () =
  let t = simple_instance () in
  Alcotest.(check (option int)) "rank of preferred" (Some 0)
    (Instance.rank t 1 (Path.of_nodes [ 1; 2; 0 ]));
  Alcotest.(check (option int)) "rank of fallback" (Some 1)
    (Instance.rank t 1 (Path.of_nodes [ 1; 0 ]));
  Alcotest.(check (option int)) "unknown path" None
    (Instance.rank t 1 (Path.of_nodes [ 1; 2; 3; 0 ]));
  Alcotest.(check bool) "permitted" true
    (Instance.is_permitted t 3 (Path.of_nodes [ 3; 2; 0 ]))

let test_instance_best () =
  let t = simple_instance () in
  let best =
    Instance.best t 1 [ Path.of_nodes [ 1; 0 ]; Path.of_nodes [ 1; 2; 0 ] ]
  in
  Alcotest.(check path_testable) "best" (Path.of_nodes [ 1; 2; 0 ]) best;
  Alcotest.(check path_testable) "best of none" Path.epsilon
    (Instance.best t 1 [ Path.of_nodes [ 1; 3; 0 ] ])

let test_instance_dest_trivial () =
  let t = simple_instance () in
  Alcotest.(check (list path_testable)) "dest permitted"
    [ Path.of_nodes [ 0 ] ]
    (Instance.permitted t 0)

let test_instance_validation () =
  (* Non-simple path *)
  Alcotest.check_raises "non-simple"
    (Invalid_argument "Instance: xyxd at x is not simple")
    (fun () ->
      ignore
        (Instance.make ~names:[| "d"; "x"; "y" |] ~dest:0
           ~edges:[ (0, 1); (0, 2); (1, 2) ]
           ~permitted:[ (1, [ [ 1; 2; 1; 0 ] ]) ]));
  (* Not a graph path *)
  (try
     ignore
       (Instance.make ~names:[| "d"; "x"; "y" |] ~dest:0
          ~edges:[ (0, 1); (0, 2) ]
          ~permitted:[ (1, [ [ 1; 2; 0 ] ]) ]);
     Alcotest.fail "expected invalid_arg"
   with Invalid_argument _ -> ());
  (* Rank tie through different next hops *)
  try
    ignore
      (Instance.of_ranked ~names:[| "d"; "x"; "y" |] ~dest:0
         ~edges:[ (0, 1); (0, 2); (1, 2) ]
         ~ranked:
           [ (1, [ (Path.of_nodes [ 1; 0 ], 0); (Path.of_nodes [ 1; 2; 0 ], 0) ]) ]);
    Alcotest.fail "expected invalid_arg (rank tie)"
  with Invalid_argument _ -> ()

let test_find_node () =
  let t = simple_instance () in
  Alcotest.(check int) "find z" 3 (Instance.find_node t "z");
  Alcotest.check_raises "missing" Not_found (fun () ->
      ignore (Instance.find_node t "w"))

(* ------------------------------------------------------------------ *)
(* Assignment *)

let test_assignment_solution () =
  let t = simple_instance () in
  let a =
    Assignment.of_list t
      [
        (1, Path.of_nodes [ 1; 2; 0 ]);
        (2, Path.of_nodes [ 2; 0 ]);
        (3, Path.of_nodes [ 3; 2; 0 ]);
      ]
  in
  Alcotest.(check bool) "is solution" true (Assignment.is_solution t a);
  Alcotest.(check path_testable) "dest trivial" (Path.of_nodes [ 0 ])
    (Assignment.get a 0)

let test_assignment_unstable () =
  let t = simple_instance () in
  let a =
    Assignment.of_list t
      [
        (1, Path.of_nodes [ 1; 0 ]);
        (2, Path.of_nodes [ 2; 0 ]);
        (3, Path.of_nodes [ 3; 2; 0 ]);
      ]
  in
  (* 1 would prefer 120 since 2 has 20. *)
  Alcotest.(check bool) "unstable" false (Assignment.is_solution t a);
  match Assignment.violations t a with
  | [ Assignment.Unstable (1, p) ] ->
    Alcotest.(check path_testable) "preferred" (Path.of_nodes [ 1; 2; 0 ]) p
  | other ->
    Alcotest.failf "unexpected violations: %d" (List.length other)

let test_assignment_inconsistent () =
  let t = simple_instance () in
  let a =
    Assignment.of_list t
      [ (1, Path.of_nodes [ 1; 2; 0 ]); (3, Path.of_nodes [ 3; 2; 0 ]) ]
  in
  (* 2 has epsilon: both 1 and 3 are inconsistent, and 2 is unstable. *)
  let vs = Assignment.violations t a in
  Alcotest.(check bool) "has inconsistency" true
    (List.exists (function Assignment.Inconsistent _ -> true | _ -> false) vs)

let test_assignment_epsilon_unstable () =
  let t = simple_instance () in
  let a = Assignment.all_epsilon t in
  (* 2 could pick 20 but has epsilon. *)
  Alcotest.(check bool) "all-epsilon unstable" false (Assignment.is_solution t a)

(* ------------------------------------------------------------------ *)
(* Solver + gadgets *)

let test_disagree_two_solutions () =
  let sols = Solver.solutions Gadgets.disagree in
  Alcotest.(check int) "two stable solutions" 2 (List.length sols);
  let inst = Gadgets.disagree in
  let as_strings a =
    List.map
      (fun (v, p) -> Path.to_string ~names:(Instance.names inst) p |> fun s ->
        Instance.name inst v ^ ":" ^ s)
      (Assignment.to_list a)
  in
  let flat = List.concat_map as_strings sols in
  Alcotest.(check bool) "contains xyd" true (List.mem "x:xyd" flat);
  Alcotest.(check bool) "contains yxd" true (List.mem "y:yxd" flat)

let test_bad_gadget_unsolvable () =
  Alcotest.(check bool) "BAD GADGET unsolvable" false
    (Solver.is_solvable Gadgets.bad_gadget)

let test_good_gadget_unique () =
  Alcotest.(check int) "GOOD GADGET one solution" 1
    (Solver.count_solutions Gadgets.good_gadget)

let test_fig_gadget_solutions () =
  (* The separation gadgets are all solvable (they converge in at least one
     model), and FIG6 converges to a unique assignment in polling models. *)
  List.iter
    (fun (name, inst) ->
      Alcotest.(check bool) (name ^ " solvable") true (Solver.is_solvable inst))
    [
      ("FIG6", Gadgets.fig6);
      ("FIG7", Gadgets.fig7);
      ("FIG8", Gadgets.fig8);
      ("FIG9", Gadgets.fig9);
    ]

let test_fig6_solutions_shape () =
  let inst = Gadgets.fig6 in
  let sols = Solver.solutions inst in
  (* Example A.2's case analysis reaches exactly the two converged states
     (d, xd, yd, zd, azd, uvazd, vazd) and (d, xd, yd, zd, azd, uazd, vuazd). *)
  Alcotest.(check int) "two stable solutions" 2 (List.length sols);
  let a_node = Gadgets.node inst 'a' in
  List.iter
    (fun a ->
      Alcotest.(check bool) "a uses azd" true
        (Path.equal (Assignment.get a a_node) (Gadgets.path inst "azd")))
    sols

let test_greedy_on_good_gadget () =
  let inst = Gadgets.good_gadget in
  let a = Solver.greedy inst in
  Alcotest.(check bool) "greedy finds the solution" true
    (Assignment.is_solution inst a)

let test_shortest_paths_solvable () =
  let inst = Gadgets.shortest_paths ~n:5 in
  Alcotest.(check bool) "solvable" true (Solver.is_solvable inst);
  Alcotest.(check bool) "no wheel" false (Dispute.has_wheel inst)

(* ------------------------------------------------------------------ *)
(* Dispute wheels *)

let test_dispute_disagree () =
  match Dispute.find Gadgets.disagree with
  | Some wheel ->
    Alcotest.(check bool) "wheel checks" true
      (Dispute.check_wheel Gadgets.disagree wheel)
  | None -> Alcotest.fail "DISAGREE must have a dispute wheel"

let test_dispute_bad_gadget () =
  Alcotest.(check bool) "BAD GADGET has wheel" true (Dispute.has_wheel Gadgets.bad_gadget)

let test_dispute_good_gadget () =
  Alcotest.(check bool) "GOOD GADGET wheel-free" false
    (Dispute.has_wheel Gadgets.good_gadget)

let test_dispute_fig6 () =
  (* FIG6 embeds a DISAGREE-like conflict between u and v. *)
  Alcotest.(check bool) "FIG6 has wheel" true (Dispute.has_wheel Gadgets.fig6)

let test_check_wheel_rejects_garbage () =
  let inst = Gadgets.disagree in
  Alcotest.(check bool) "empty wheel" false (Dispute.check_wheel inst []);
  let bogus =
    [
      Dispute.{
        pivot = Gadgets.node inst 'x';
        direct = Gadgets.path inst "xd";
        rim_route = Gadgets.path inst "xd";
      };
    ]
  in
  Alcotest.(check bool) "bogus wheel" false (Dispute.check_wheel inst bogus)

(* ------------------------------------------------------------------ *)
(* Generators (property tests) *)

let gen_config =
  QCheck2.Gen.(
    let* nodes = int_range 3 7 in
    let* extra_edges = int_range 0 4 in
    let* max_paths = int_range 1 4 in
    let* max_len = int_range 2 4 in
    let* seed = int_range 0 1_000_000 in
    return
      Generator.
        {
          nodes;
          extra_edges;
          max_paths_per_node = max_paths;
          max_path_len = max_len;
          seed;
        })

let prop_generated_instances_valid =
  QCheck2.Test.make ~name:"generated instances validate" ~count:100 gen_config
    (fun cfg ->
      let inst = Generator.instance cfg in
      Instance.validate inst = [])

let prop_safe_instances_wheel_free =
  QCheck2.Test.make ~name:"safe instances have no dispute wheel" ~count:60 gen_config
    (fun cfg -> not (Dispute.has_wheel (Generator.safe_instance cfg)))

let prop_safe_instances_solvable =
  QCheck2.Test.make ~name:"safe instances are solvable" ~count:40 gen_config
    (fun cfg ->
      let cfg = { cfg with nodes = min cfg.nodes 6 } in
      Solver.is_solvable (Generator.safe_instance cfg))

let prop_solver_solutions_are_solutions =
  QCheck2.Test.make ~name:"solver output satisfies is_solution" ~count:40 gen_config
    (fun cfg ->
      let cfg = { cfg with nodes = min cfg.nodes 6 } in
      let inst = Generator.instance cfg in
      List.for_all (Assignment.is_solution inst) (Solver.solutions inst))

let prop_unsolvable_implies_wheel =
  (* Contrapositive of "no dispute wheel => solvable" (GSW). *)
  QCheck2.Test.make ~name:"unsolvable implies dispute wheel" ~count:40 gen_config
    (fun cfg ->
      let cfg = { cfg with nodes = min cfg.nodes 6 } in
      let inst = Generator.instance cfg in
      Solver.is_solvable inst || Dispute.has_wheel inst)

let prop_best_is_minimal_rank =
  QCheck2.Test.make ~name:"best returns a minimal-rank candidate" ~count:100 gen_config
    (fun cfg ->
      let inst = Generator.instance cfg in
      List.for_all
        (fun v ->
          if v = Instance.dest inst then true
          else
            let candidates = Instance.permitted inst v in
            let b = Instance.best inst v candidates in
            match candidates with
            | [] -> Path.is_epsilon b
            | first :: _ -> (
              (* permitted lists are sorted by rank *)
              match (Instance.rank inst v b, Instance.rank inst v first) with
              | Some rb, Some rf -> rb = rf
              | _ -> false))
        (Instance.nodes inst))

let prop_paths_simple_in_generated =
  QCheck2.Test.make ~name:"generated permitted paths are simple graph paths"
    ~count:100 gen_config (fun cfg ->
      let inst = Generator.instance cfg in
      List.for_all
        (fun (_, p, _) -> Path.is_simple p)
        (Instance.all_permitted inst))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_generated_instances_valid;
      prop_safe_instances_wheel_free;
      prop_safe_instances_solvable;
      prop_solver_solutions_are_solutions;
      prop_unsolvable_implies_wheel;
      prop_best_is_minimal_rank;
      prop_paths_simple_in_generated;
    ]


(* ------------------------------------------------------------------ *)
(* Additional path properties *)

let gen_nodes = QCheck2.Gen.(list_size (int_range 1 6) (int_range 0 9))

let prop_extend_next_hop =
  QCheck2.Test.make ~name:"next hop of extension is old source" ~count:100 gen_nodes
    (fun nodes ->
      let p = Path.of_nodes nodes in
      match Path.source p with
      | None -> true
      | Some s ->
        let q = Path.extend 42 p in
        Path.next_hop q = Some s && Path.length q = Path.length p + 1)

let prop_suffix_prefix_glue =
  QCheck2.Test.make ~name:"prefix_to ++ suffix_from reassemble the path" ~count:100
    gen_nodes (fun nodes ->
      let p = Path.of_nodes nodes in
      List.for_all
        (fun v ->
          match (Path.prefix_to v p, Path.suffix_from v p) with
          | Some pre, Some suf ->
            (* glued at v: pre ends with v, suf starts with v *)
            Path.destination pre = Some v
            && Path.source suf = Some v
            && Path.equal p
                 (Path.of_nodes
                    (Path.to_nodes pre @ List.tl (Path.to_nodes suf)))
          | _ -> not (Path.contains v p))
        (List.sort_uniq compare nodes))

let prop_simple_iff_nodup =
  QCheck2.Test.make ~name:"is_simple iff no duplicate nodes" ~count:100 gen_nodes
    (fun nodes ->
      Path.is_simple (Path.of_nodes nodes)
      = (List.length (List.sort_uniq compare nodes) = List.length nodes))

(* ------------------------------------------------------------------ *)
(* Gadget structure *)

let test_gadget_shapes () =
  let count_paths inst =
    List.length (Instance.all_permitted inst) - 1 (* minus the trivial dest path *)
  in
  Alcotest.(check int) "DISAGREE permitted" 4 (count_paths Gadgets.disagree);
  Alcotest.(check int) "FIG6 permitted" 13 (count_paths Gadgets.fig6);
  Alcotest.(check int) "FIG7 permitted" 9 (count_paths Gadgets.fig7);
  Alcotest.(check int) "FIG8 permitted" 6 (count_paths Gadgets.fig8);
  Alcotest.(check int) "FIG9 permitted" 8 (count_paths Gadgets.fig9);
  List.iter
    (fun (name, inst) ->
      Alcotest.(check (list (of_pp Fmt.nop))) (name ^ " validates") []
        (Instance.validate inst))
    (Gadgets.all_named ())

let test_fig6_u_refuses_y_paths () =
  (* "u refuses paths containing y" (Ex. A.2). *)
  let inst = Gadgets.fig6 in
  let u = Gadgets.node inst 'u' and y = Gadgets.node inst 'y' in
  List.iter
    (fun p ->
      if Path.contains y p then Alcotest.failf "u permits a path through y")
    (Instance.permitted inst u)

let test_fig9_preference_structure () =
  (* scbd > sxd > scad at s; cad > cbd at c (Ex. A.5). *)
  let inst = Gadgets.fig9 in
  let s = Gadgets.node inst 's' and c = Gadgets.node inst 'c' in
  let rank n p = Option.get (Instance.rank inst n (Gadgets.path inst p)) in
  Alcotest.(check bool) "scbd > sxd" true (rank s "scbd" < rank s "sxd");
  Alcotest.(check bool) "sxd > scad" true (rank s "sxd" < rank s "scad");
  Alcotest.(check bool) "cad > cbd" true (rank c "cad" < rank c "cbd")

let test_solver_limit () =
  let sols = Solver.solutions ~limit:1 Gadgets.disagree in
  Alcotest.(check int) "limit respected" 1 (List.length sols)

let prop_solutions_distinct =
  QCheck2.Test.make ~name:"solver returns distinct solutions" ~count:30
    QCheck2.Gen.(int_range 0 9999)
    (fun seed ->
      let inst = Generator.instance { Generator.default with nodes = 5; seed } in
      let sols = Solver.solutions inst in
      let rec distinct = function
        | [] -> true
        | a :: rest -> (not (List.exists (Assignment.equal a) rest)) && distinct rest
      in
      distinct sols)

let extra_qcheck =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_extend_next_hop;
      prop_suffix_prefix_glue;
      prop_simple_iff_nodup;
      prop_solutions_distinct;
    ]

(* ------------------------------------------------------------------ *)
(* Arena: hash-consed path interning *)

let test_arena_canonical_ids () =
  let nodes = [ 1; 2; 0 ] in
  let a = Arena.of_nodes nodes and b = Arena.intern (Path.of_nodes nodes) in
  Alcotest.(check int) "same id for equal paths" a b;
  Alcotest.(check bool) "materializes back" true
    (Path.equal (Arena.path a) (Path.of_nodes nodes));
  Alcotest.(check (list int)) "round-trips nodes" nodes (Arena.to_nodes a);
  Alcotest.(check bool) "distinct paths, distinct ids" false
    (Arena.equal a (Arena.of_nodes [ 2; 0 ]));
  Alcotest.(check int) "epsilon is id 0" Arena.epsilon (Arena.of_nodes []);
  Alcotest.(check bool) "intern epsilon" true (Arena.is_epsilon (Arena.intern Path.epsilon))

let test_arena_extend_suffix () =
  let tail = Arena.of_nodes [ 2; 0 ] in
  let ext = Arena.extend 1 tail in
  Alcotest.(check int) "extend = of_nodes" (Arena.of_nodes [ 1; 2; 0 ]) ext;
  Alcotest.(check int) "suffix undoes extend" tail (Arena.suffix ext);
  Alcotest.(check (option int)) "next hop" (Some 2) (Arena.next_hop ext);
  Alcotest.(check int) "length" 2 (Arena.length ext);
  (match Arena.extend 1 Arena.epsilon with
  | exception Invalid_argument _ -> ()
  | (_ : Arena.id) -> Alcotest.fail "extend of epsilon accepted");
  Alcotest.(check bool) "contains source" true (Arena.contains 1 ext);
  Alcotest.(check bool) "contains inner" true (Arena.contains 2 ext);
  Alcotest.(check bool) "not contains" false (Arena.contains 7 ext);
  (* Nodes beyond the bitmask width exercise the list-walk fallback. *)
  let big = Arena.of_nodes [ 100; 63; 0 ] in
  Alcotest.(check bool) "contains above mask" true (Arena.contains 100 big);
  Alcotest.(check bool) "not contains above mask" false (Arena.contains 99 big)

let prop_arena_intern_roundtrip =
  QCheck2.Test.make ~name:"arena intern/materialize round-trip" ~count:300
    QCheck2.Gen.(list_size (int_range 0 8) (int_range 0 200))
    (fun nodes ->
      let p = Path.of_nodes nodes in
      let id = Arena.intern p in
      Path.equal (Arena.path id) p
      && Arena.equal id (Arena.intern p)
      && Arena.compare_structural id (Arena.intern p) = 0
      && List.for_all (fun v -> Arena.contains v id = Path.contains v p) (0 :: nodes))

let () =
  Alcotest.run "spp"
    [
      ( "path",
        [
          Alcotest.test_case "basics" `Quick test_path_basics;
          Alcotest.test_case "epsilon" `Quick test_path_epsilon;
          Alcotest.test_case "extend" `Quick test_path_extend;
          Alcotest.test_case "affixes" `Quick test_path_affixes;
          Alcotest.test_case "pretty-printing" `Quick test_path_pp;
        ] );
      ( "arena",
        [
          Alcotest.test_case "canonical ids" `Quick test_arena_canonical_ids;
          Alcotest.test_case "extend/suffix/contains" `Quick test_arena_extend_suffix;
          QCheck_alcotest.to_alcotest prop_arena_intern_roundtrip;
        ] );
      ( "instance",
        [
          Alcotest.test_case "accessors" `Quick test_instance_accessors;
          Alcotest.test_case "ranks" `Quick test_instance_ranks;
          Alcotest.test_case "best choice" `Quick test_instance_best;
          Alcotest.test_case "dest trivial path" `Quick test_instance_dest_trivial;
          Alcotest.test_case "validation" `Quick test_instance_validation;
          Alcotest.test_case "find_node" `Quick test_find_node;
        ] );
      ( "assignment",
        [
          Alcotest.test_case "solution accepted" `Quick test_assignment_solution;
          Alcotest.test_case "instability detected" `Quick test_assignment_unstable;
          Alcotest.test_case "inconsistency detected" `Quick test_assignment_inconsistent;
          Alcotest.test_case "all-epsilon unstable" `Quick test_assignment_epsilon_unstable;
        ] );
      ( "solver",
        [
          Alcotest.test_case "DISAGREE has two solutions" `Quick test_disagree_two_solutions;
          Alcotest.test_case "BAD GADGET unsolvable" `Quick test_bad_gadget_unsolvable;
          Alcotest.test_case "GOOD GADGET unique" `Quick test_good_gadget_unique;
          Alcotest.test_case "figure gadgets solvable" `Quick test_fig_gadget_solutions;
          Alcotest.test_case "FIG6 solutions shape" `Quick test_fig6_solutions_shape;
          Alcotest.test_case "greedy on GOOD GADGET" `Quick test_greedy_on_good_gadget;
          Alcotest.test_case "shortest-paths baseline" `Quick test_shortest_paths_solvable;
        ] );
      ( "dispute",
        [
          Alcotest.test_case "DISAGREE wheel" `Quick test_dispute_disagree;
          Alcotest.test_case "BAD GADGET wheel" `Quick test_dispute_bad_gadget;
          Alcotest.test_case "GOOD GADGET wheel-free" `Quick test_dispute_good_gadget;
          Alcotest.test_case "FIG6 wheel" `Quick test_dispute_fig6;
          Alcotest.test_case "check_wheel rejects garbage" `Quick
            test_check_wheel_rejects_garbage;
        ] );
      ("properties", qcheck_cases @ extra_qcheck);
      ( "structure",
        [
          Alcotest.test_case "gadget shapes" `Quick test_gadget_shapes;
          Alcotest.test_case "FIG6 u refuses y" `Quick test_fig6_u_refuses_y_paths;
          Alcotest.test_case "FIG9 preferences" `Quick test_fig9_preference_structure;
          Alcotest.test_case "solver limit" `Quick test_solver_limit;
        ] );
    ]
