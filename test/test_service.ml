(* Tests for the query-service layer (PR 10): protocol round-trip
   goldens for every request kind, the memoized result store's
   durability story (corrupt/truncated entries evicted not fatal,
   fingerprint mismatches refused, crash mid-put invisible, LRU cap,
   multi-domain get/put), write_atomic's per-writer temp-name
   uniqueness, instance-spec resolution, and the single exit-code
   mapping. *)

open Service
module Json = Engine.Metrics.Json

let model s =
  match Engine.Model.of_string s with
  | Some m -> m
  | None -> Alcotest.failf "bad model %s" s

let tmp_dir name =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "commrouting-service-%s-%d" name (Unix.getpid ()))
  in
  (match Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)) with
  | 0 -> ()
  | _ -> ());
  dir

let open_store ?(max_entries = Store.default_max_entries) name =
  match Store.open_ { Store.dir = tmp_dir name; max_entries } with
  | Ok s -> s
  | Error e -> Alcotest.failf "open_: %s" (Error.to_string e)

let write_raw path contents =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc contents)

let contains ~affix s =
  let n = String.length s and k = String.length affix in
  let rec scan i = i + k <= n && (String.sub s i k = affix || scan (i + 1)) in
  scan 0

(* ------------------------------------------------------------------ *)
(* Protocol *)

let qc = Protocol.default_query_config

let sample_envelopes =
  [
    ("ping", { Protocol.id = Json.Num 1.; req = Protocol.Ping });
    ( "check",
      {
        Protocol.id = Json.Num 2.;
        req =
          Protocol.Check
            { instance = "DISAGREE"; model = model "R1O"; config = qc; fresh = false };
      } );
    ( "sweep",
      {
        Protocol.id = Json.Str "s";
        req =
          Protocol.Sweep
            {
              instance = "FIG6";
              models = [ model "R1A"; model "UMS" ];
              config = { Protocol.bound = 2; max_states = 500 };
              fresh = true;
            };
      } );
    ( "realize",
      {
        Protocol.id = Json.Null;
        req = Protocol.Realize { source = model "R1S"; target = model "R1O" };
      } );
    ( "bgp",
      {
        Protocol.id = Json.Num 5.;
        req =
          Protocol.Bgp
            { nodes = 64; seed = 3; model = model "RMS"; shards = 4; fresh = false };
      } );
    ( "job_start",
      {
        Protocol.id = Json.Num 6.;
        req =
          Protocol.Job_start
            { instance = "FIG6"; model = model "R1A"; config = qc; every = 150 };
      } );
    ( "job_status",
      { Protocol.id = Json.Num 7.; req = Protocol.Job_status { job = "abc123" } } );
    ( "job_resume",
      { Protocol.id = Json.Num 8.; req = Protocol.Job_resume { job = "abc123" } } );
    ("stats", { Protocol.id = Json.Num 9.; req = Protocol.Stats });
    ("shutdown", { Protocol.id = Json.Num 10.; req = Protocol.Shutdown });
  ]

let test_protocol_roundtrip () =
  (* Every request kind survives encode -> parse unchanged. *)
  Alcotest.(check int)
    "every method has a sample" (List.length Protocol.methods)
    (List.length sample_envelopes);
  List.iter
    (fun (name, env) ->
      let line = Json.to_string (Protocol.to_json env) in
      match Protocol.of_line line with
      | Error (_, e) -> Alcotest.failf "%s: did not parse: %s" name (Error.to_string e)
      | Ok env' ->
        Alcotest.(check bool) (name ^ ": identical request") true (env = env');
        (* And the canonical encoding is a fixpoint. *)
        Alcotest.(check string)
          (name ^ ": canonical encoding stable")
          line
          (Json.to_string (Protocol.to_json env')))
    sample_envelopes

let test_protocol_goldens () =
  (* The wire format itself is locked: drift here breaks every deployed
     client, so it must be deliberate. *)
  let goldens =
    [
      ("ping", {|{"id":1,"method":"ping","params":{}}|});
      ( "check",
        {|{"id":2,"method":"check","params":{"instance":"DISAGREE","model":"R1O","bound":4,"max_states":200000,"fresh":false}}|}
      );
      ( "sweep",
        {|{"id":"s","method":"sweep","params":{"instance":"FIG6","models":["R1A","UMS"],"bound":2,"max_states":500,"fresh":true}}|}
      );
      ( "realize",
        {|{"id":null,"method":"realize","params":{"source":"R1S","target":"R1O"}}|}
      );
      ( "bgp",
        {|{"id":5,"method":"bgp","params":{"nodes":64,"seed":3,"model":"RMS","shards":4,"fresh":false}}|}
      );
      ( "job_start",
        {|{"id":6,"method":"job_start","params":{"instance":"FIG6","model":"R1A","bound":4,"max_states":200000,"every":150}}|}
      );
      ( "job_status",
        {|{"id":7,"method":"job_status","params":{"job":"abc123"}}|} );
      ( "job_resume",
        {|{"id":8,"method":"job_resume","params":{"job":"abc123"}}|} );
      ("stats", {|{"id":9,"method":"stats","params":{}}|});
      ("shutdown", {|{"id":10,"method":"shutdown","params":{}}|});
    ]
  in
  List.iter2
    (fun (name, env) (gname, golden) ->
      Alcotest.(check string) "same sample order" name gname;
      Alcotest.(check string)
        (name ^ ": golden wire format")
        golden
        (Json.to_string (Protocol.to_json env)))
    sample_envelopes goldens

let test_protocol_errors () =
  let err line =
    match Protocol.of_line line with
    | Ok _ -> Alcotest.failf "parsed unexpectedly: %s" line
    | Error (id, e) -> (id, e)
  in
  (match err "not json at all" with
  | _, Error.Usage _ -> ()
  | _, e -> Alcotest.failf "junk line: got %s" (Error.to_string e));
  (match err {|{"id":7,"method":"frobnicate"}|} with
  | Json.Num 7., Error.Usage m ->
    Alcotest.(check bool) "lists known methods" true
      (contains ~affix:"check" m)
  | _, e -> Alcotest.failf "unknown method: got %s" (Error.to_string e));
  (match err {|{"method":"check","params":{"instance":"X","model":"ZZZ"}}|} with
  | _, Error.Unknown_model "ZZZ" -> ()
  | _, e -> Alcotest.failf "unknown model: got %s" (Error.to_string e));
  (match err {|{"method":"check","params":{"model":"R1O"}}|} with
  | _, Error.Usage _ -> ()
  | _, e -> Alcotest.failf "missing instance: got %s" (Error.to_string e));
  (match err {|{"method":"check","params":{"instance":"X","model":"R1O","bound":0}}|} with
  | _, Error.Usage _ -> ()
  | _, e -> Alcotest.failf "bad bound: got %s" (Error.to_string e));
  (* The id is echoed even when the params are garbage. *)
  match err {|{"id":"q-1","method":"bgp","params":{"nodes":1}}|} with
  | Json.Str "q-1", Error.Usage _ -> ()
  | id, e ->
    Alcotest.failf "id not echoed: %s / %s" (Json.to_string id) (Error.to_string e)

(* ------------------------------------------------------------------ *)
(* Store *)

let fp parts = Store.config_fingerprint parts
let v1 = fp [ "schema/v1" ]
let result_json i = Json.Obj [ ("answer", Json.Num (float_of_int i)) ]

let put_ok store ~instance ~model ~config_fp r =
  match Store.put store ~instance ~model ~config_fp r with
  | Ok () -> ()
  | Error e -> Alcotest.failf "put: %s" (Error.to_string e)

let test_store_roundtrip () =
  let s = open_store "roundtrip" in
  Alcotest.(check (option reject)) "empty store misses"
    None
    (Option.map ignore (Store.get s ~instance:"i1" ~model:"R1O" ~config_fp:v1));
  put_ok s ~instance:"i1" ~model:"R1O" ~config_fp:v1 (result_json 1);
  (match Store.get s ~instance:"i1" ~model:"R1O" ~config_fp:v1 with
  | Some r -> Alcotest.(check bool) "hit returns the stored result" true (r = result_json 1)
  | None -> Alcotest.fail "expected a hit");
  (* Distinct key components are distinct entries. *)
  Alcotest.(check bool) "other model misses" true
    (Store.get s ~instance:"i1" ~model:"RMS" ~config_fp:v1 = None);
  Alcotest.(check bool) "other config misses" true
    (Store.get s ~instance:"i1" ~model:"R1O" ~config_fp:(fp [ "schema/v2" ]) = None);
  let st = Store.stats s in
  Alcotest.(check int) "hits" 1 st.Store.hits;
  Alcotest.(check int) "misses" 3 st.Store.misses;
  Alcotest.(check int) "puts" 1 st.Store.puts

let test_store_corrupt_evicted () =
  let s = open_store "corrupt" in
  put_ok s ~instance:"i" ~model:"R1O" ~config_fp:v1 (result_json 1);
  let key = Store.key ~instance:"i" ~model:"R1O" ~config_fp:v1 in
  let path = Store.entry_path s ~key in
  (* Truncate the framed file mid-payload: a torn write that slipped past
     rename could only ever look like this. *)
  let full = In_channel.with_open_bin path In_channel.input_all in
  write_raw path (String.sub full 0 (String.length full - 7));
  Alcotest.(check bool) "truncated entry is a miss, not an exception" true
    (Store.get s ~instance:"i" ~model:"R1O" ~config_fp:v1 = None);
  Alcotest.(check bool) "evicted from disk" false (Sys.file_exists path);
  (* Same for plain bit-rot. *)
  put_ok s ~instance:"i" ~model:"R1O" ~config_fp:v1 (result_json 2);
  write_raw path (String.map (fun c -> if c = '4' then '5' else c) full);
  Alcotest.(check bool) "corrupt entry is a miss" true
    (Store.get s ~instance:"i" ~model:"R1O" ~config_fp:v1 = None);
  Alcotest.(check bool) "corrupt entry evicted" false (Sys.file_exists path);
  Alcotest.(check int) "both evictions counted" 2 (Store.stats s).Store.corrupt_evicted;
  (* The store still works after evictions. *)
  put_ok s ~instance:"i" ~model:"R1O" ~config_fp:v1 (result_json 3);
  Alcotest.(check bool) "store recovers" true
    (Store.get s ~instance:"i" ~model:"R1O" ~config_fp:v1 = Some (result_json 3))

let test_store_fingerprint_mismatch () =
  (* The stale-cache regression (mirrors Snapshot's mismatched-resume
     rejection): a well-formed entry sitting at some key but recording
     different key fields inside must be refused and evicted — after a
     schema bump, a colliding path must never serve the old result. *)
  let s = open_store "mismatch" in
  let v2 = fp [ "schema/v2" ] in
  put_ok s ~instance:"i" ~model:"R1O" ~config_fp:v1 (result_json 1);
  let key_v1 = Store.key ~instance:"i" ~model:"R1O" ~config_fp:v1 in
  let key_v2 = Store.key ~instance:"i" ~model:"R1O" ~config_fp:v2 in
  (* Simulate the bump: the v1 entry ends up at the v2 key (as it would
     if the fingerprint function or the key scheme drifted). *)
  Sys.rename (Store.entry_path s ~key:key_v1) (Store.entry_path s ~key:key_v2);
  Alcotest.(check bool) "mismatched entry refused" true
    (Store.get s ~instance:"i" ~model:"R1O" ~config_fp:v2 = None);
  Alcotest.(check bool) "mismatched entry evicted" false
    (Sys.file_exists (Store.entry_path s ~key:key_v2));
  Alcotest.(check int) "counted as mismatch, not corruption" 1
    (Store.stats s).Store.mismatch_evicted;
  Alcotest.(check int) "no corrupt evictions" 0 (Store.stats s).Store.corrupt_evicted;
  (* A schema-version bump changes the fingerprint, so the old entry is
     simply invisible under the new one — and vice versa. *)
  put_ok s ~instance:"i" ~model:"R1O" ~config_fp:v1 (result_json 1);
  put_ok s ~instance:"i" ~model:"R1O" ~config_fp:v2 (result_json 2);
  Alcotest.(check bool) "v1 still served under v1" true
    (Store.get s ~instance:"i" ~model:"R1O" ~config_fp:v1 = Some (result_json 1));
  Alcotest.(check bool) "v2 served under v2" true
    (Store.get s ~instance:"i" ~model:"R1O" ~config_fp:v2 = Some (result_json 2))

let test_store_crash_mid_put () =
  (* A writer killed mid-put leaves only a temp file: never visible to
     get/entry_count, and swept on the next open. *)
  let s = open_store "crash" in
  put_ok s ~instance:"a" ~model:"R1O" ~config_fp:v1 (result_json 1);
  let key = Store.key ~instance:"b" ~model:"R1O" ~config_fp:v1 in
  let tmp = Store.entry_path s ~key ^ ".tmp.12345.0.7" in
  write_raw tmp "partial garbage from a dead writer";
  Alcotest.(check bool) "partial entry invisible to get" true
    (Store.get s ~instance:"b" ~model:"R1O" ~config_fp:v1 = None);
  Alcotest.(check int) "partial entry not counted" 1 (Store.entry_count s);
  (* Reopening the store (a daemon restart) sweeps the debris. *)
  (match Store.open_ { Store.dir = Store.dir s; max_entries = 16 } with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "reopen: %s" (Error.to_string e));
  Alcotest.(check bool) "stale temp swept on open" false (Sys.file_exists tmp);
  Alcotest.(check bool) "real entry survived the sweep" true
    (Store.get s ~instance:"a" ~model:"R1O" ~config_fp:v1 = Some (result_json 1))

let test_store_lru_cap () =
  let s = open_store "lru" ~max_entries:3 in
  let put i name = put_ok s ~instance:name ~model:"R1O" ~config_fp:v1 (result_json i) in
  let path name =
    Store.entry_path s ~key:(Store.key ~instance:name ~model:"R1O" ~config_fp:v1)
  in
  let set_mtime name t = Unix.utimes (path name) t t in
  put 1 "a";
  put 2 "b";
  put 3 "c";
  (* Distinct, controlled recencies (well in the past). *)
  set_mtime "a" 1000.;
  set_mtime "b" 2000.;
  set_mtime "c" 3000.;
  put 4 "d";
  Alcotest.(check bool) "oldest evicted" true
    (Store.get s ~instance:"a" ~model:"R1O" ~config_fp:v1 = None);
  Alcotest.(check bool) "b survives" true (Sys.file_exists (path "b"));
  Alcotest.(check bool) "c survives" true (Sys.file_exists (path "c"));
  Alcotest.(check bool) "new entry present" true (Sys.file_exists (path "d"));
  Alcotest.(check int) "cap respected" 3 (Store.entry_count s);
  (* A hit refreshes recency: get b, then overflow again — c (now the
     coldest) goes, b stays. *)
  ignore (Store.get s ~instance:"b" ~model:"R1O" ~config_fp:v1);
  set_mtime "d" 4000.;
  put 5 "e";
  Alcotest.(check bool) "unrefreshed c evicted" false (Sys.file_exists (path "c"));
  Alcotest.(check bool) "refreshed b survives" true (Sys.file_exists (path "b"));
  Alcotest.(check int) "lru evictions counted" 2 (Store.stats s).Store.lru_evicted

let test_store_concurrent () =
  (* Multi-domain get/put on overlapping keys: no exceptions, no torn
     reads — every hit returns exactly the (deterministic) value its key
     maps to. *)
  let s = open_store "concurrent" in
  let n_domains = 4 and rounds = 40 and n_keys = 8 in
  let errors = Atomic.make 0 in
  let worker d () =
    for r = 0 to rounds - 1 do
      let k = (d + r) mod n_keys in
      let instance = Printf.sprintf "inst-%d" k in
      (match Store.put s ~instance ~model:"R1O" ~config_fp:v1 (result_json k) with
      | Ok () -> ()
      | Error _ -> Atomic.incr errors);
      match Store.get s ~instance ~model:"R1O" ~config_fp:v1 with
      | None -> () (* racing evictions are legal; wrong values are not *)
      | Some r -> if r <> result_json k then Atomic.incr errors
    done
  in
  let domains = List.init n_domains (fun d -> Domain.spawn (worker d)) in
  List.iter Domain.join domains;
  Alcotest.(check int) "no errors or torn reads" 0 (Atomic.get errors);
  for k = 0 to n_keys - 1 do
    let instance = Printf.sprintf "inst-%d" k in
    Alcotest.(check bool)
      (Printf.sprintf "final value of key %d intact" k)
      true
      (Store.get s ~instance ~model:"R1O" ~config_fp:v1 = Some (result_json k))
  done

let test_write_atomic_domain_unique () =
  (* The regression for pid-only temp names: two domains writing the same
     target path concurrently must never clobber each other's temp file —
     the target must be a complete, checksummed frame after every write,
     and no temp debris may survive. *)
  let dir = tmp_dir "write-atomic" in
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "target" in
  let magic = "commrouting/test/v1" in
  let torn = Atomic.make 0 in
  let writer d () =
    for i = 0 to 49 do
      let payload =
        Json.to_string (Json.Obj [ ("writer", Json.Num (float_of_int ((d * 100) + i))) ])
      in
      Engine.Snapshot.write_atomic path (Engine.Snapshot.framed ~magic payload);
      match Engine.Snapshot.read_framed ~magic path with
      | Ok _ -> ()
      | Error _ -> Atomic.incr torn
    done
  in
  let domains = List.init 4 (fun d -> Domain.spawn (writer d)) in
  List.iter Domain.join domains;
  Alcotest.(check int) "no torn frame ever visible" 0 (Atomic.get torn);
  let leftovers =
    Sys.readdir dir |> Array.to_list |> List.filter (fun f -> f <> "target")
  in
  Alcotest.(check (list string)) "no temp debris" [] leftovers

(* ------------------------------------------------------------------ *)
(* Resolve, Error, Query *)

let test_resolve () =
  (match Resolve.find "DISAGREE" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "DISAGREE: %s" (Error.to_string e));
  (match Resolve.find "disagree" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "case-insensitive: %s" (Error.to_string e));
  (match Resolve.find "bgp:7" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "bgp:7: %s" (Error.to_string e));
  (match Resolve.find "no-such-gadget" with
  | Error (Error.Unknown_instance { hint; _ }) ->
    Alcotest.(check bool) "hint lists specs" true
      (contains ~affix:"bgp:<seed>" hint)
  | Error e -> Alcotest.failf "unknown: wrong error %s" (Error.to_string e)
  | Ok _ -> Alcotest.fail "resolved nonsense");
  (match Resolve.find "bgp:notanint" with
  | Error (Error.Usage _) -> ()
  | Error e -> Alcotest.failf "bad seed: wrong error %s" (Error.to_string e)
  | Ok _ -> Alcotest.fail "resolved bad seed");
  (match Resolve.find "file:/nonexistent/x.spp" with
  | Error (Error.Io _ | Error.Corrupt _) -> ()
  | Error e -> Alcotest.failf "missing file: wrong error %s" (Error.to_string e)
  | Ok _ -> Alcotest.fail "resolved missing file");
  (* Determinism: the digests memo keys are built on. *)
  match (Resolve.find "bgp:3", Resolve.find "bgp:3") with
  | Ok a, Ok b ->
    Alcotest.(check string) "spec resolution deterministic"
      (Engine.Snapshot.fingerprint a) (Engine.Snapshot.fingerprint b)
  | _ -> Alcotest.fail "bgp:3 did not resolve"

let test_error_exit_codes () =
  Alcotest.(check int) "usage is 2" 2 (Error.exit_code (Error.Usage "x"));
  List.iter
    (fun e -> Alcotest.(check int) (Error.kind e ^ " is 1") 1 (Error.exit_code e))
    [
      Error.Unknown_instance { name = "x"; hint = "" };
      Error.Unknown_model "x";
      Error.Io { path = "p"; message = "m" };
      Error.Corrupt { path = "p"; detail = "d" };
      Error.Unknown_job "j";
      Error.Internal "i";
    ]

let test_query_memoized () =
  let s = open_store "query" in
  let q =
    match Query.create ~store:s ~workers:2 with
    | Ok q -> q
    | Error e -> Alcotest.failf "create: %s" (Error.to_string e)
  in
  let config = { Protocol.bound = 4; max_states = 50_000 } in
  let run fresh =
    match Query.check q ~instance:"DISAGREE" ~model:(model "R1O") ~config ~fresh with
    | Ok (r, cached) -> (Json.to_string r, cached)
    | Error e -> Alcotest.failf "check: %s" (Error.to_string e)
  in
  let cold, c0 = run false in
  let warm, c1 = run false in
  let fresh, c2 = run true in
  Alcotest.(check bool) "first is a miss" false c0;
  Alcotest.(check bool) "second is a hit" true c1;
  Alcotest.(check bool) "fresh bypasses the cache" false c2;
  Alcotest.(check string) "warm result byte-identical" cold warm;
  Alcotest.(check string) "fresh recompute byte-identical" cold fresh;
  (* The cached bytes equal an uncached in-process reference. *)
  let inst =
    match Resolve.find "DISAGREE" with Ok i -> i | Error _ -> assert false
  in
  Alcotest.(check string) "matches compute_check reference" cold
    (Json.to_string (Query.compute_check inst (model "R1O") config));
  (* Unknown job id surfaces as a typed error end to end. *)
  let jobs =
    match Jobs.create ~store:s with
    | Ok j -> j
    | Error e -> Alcotest.failf "jobs: %s" (Error.to_string e)
  in
  match Jobs.status jobs ~id:"deadbeef" with
  | Error (Error.Unknown_job "deadbeef") -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Error.to_string e)
  | Ok _ -> Alcotest.fail "status of unknown job succeeded"

let () =
  Alcotest.run "service"
    [
      ( "protocol",
        [
          Alcotest.test_case "round-trip every request kind" `Quick
            test_protocol_roundtrip;
          Alcotest.test_case "wire-format goldens" `Quick test_protocol_goldens;
          Alcotest.test_case "typed decode errors" `Quick test_protocol_errors;
        ] );
      ( "store",
        [
          Alcotest.test_case "round-trip and stats" `Quick test_store_roundtrip;
          Alcotest.test_case "corrupt/truncated entries evicted" `Quick
            test_store_corrupt_evicted;
          Alcotest.test_case "fingerprint mismatch refused" `Quick
            test_store_fingerprint_mismatch;
          Alcotest.test_case "crash mid-put invisible" `Quick test_store_crash_mid_put;
          Alcotest.test_case "LRU cap enforced" `Quick test_store_lru_cap;
          Alcotest.test_case "concurrent multi-domain get/put" `Quick
            test_store_concurrent;
          Alcotest.test_case "write_atomic unique across domains" `Quick
            test_write_atomic_domain_unique;
        ] );
      ( "service",
        [
          Alcotest.test_case "instance resolution" `Quick test_resolve;
          Alcotest.test_case "exit codes mapped once" `Quick test_error_exit_codes;
          Alcotest.test_case "query memoization" `Quick test_query_memoized;
        ] );
    ]
