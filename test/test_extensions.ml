(* Tests for the extension modules: heterogeneous per-node models
   (Engine.Hetero), multi-node activation regimes (Engine.Multi),
   convergence statistics (Engine.Stats), and qcheck property tests of the
   core step semantics. *)

open Spp
open Engine

let model s = Option.get (Model.of_string s)

(* ------------------------------------------------------------------ *)
(* Hetero *)

let test_hetero_validation () =
  let inst = Gadgets.disagree in
  let x = Gadgets.node inst 'x' and y = Gadgets.node inst 'y' in
  let hetero = Hetero.of_list ~default:(model "REA") [ (x, model "R1O") ] in
  Alcotest.(check bool) "x's model" true (Model.equal (Hetero.model_of hetero x) (model "R1O"));
  Alcotest.(check bool) "y defaults" true (Model.equal (Hetero.model_of hetero y) (model "REA"));
  let r1o_entry =
    Activation.single x
      [ Activation.read ~count:(Activation.Finite 1) (Channel.id ~src:y ~dst:x) ]
  in
  Alcotest.(check bool) "x may act on one message" true (Hetero.validates inst hetero r1o_entry);
  let polling_entry = Activation.poll_all inst y in
  Alcotest.(check bool) "y must poll" true (Hetero.validates inst hetero polling_entry);
  let y_r1o =
    Activation.single y
      [ Activation.read ~count:(Activation.Finite 1) (Channel.id ~src:x ~dst:y) ]
  in
  Alcotest.(check bool) "y may not act on one message" false
    (Hetero.validates inst hetero y_r1o)

let test_hetero_round_robin () =
  let inst = Gadgets.fig6 in
  let hetero =
    Hetero.of_list ~default:(model "REA")
      [ (Gadgets.node inst 'u', model "R1O"); (Gadgets.node inst 'v', model "RMS") ]
  in
  let sched = Hetero.round_robin inst hetero in
  List.iter
    (fun e ->
      if not (Hetero.validates inst hetero e) then
        Alcotest.failf "invalid heterogeneous entry %a" (Activation.pp inst) e)
    (Scheduler.prefix (Option.get sched.Scheduler.period) sched);
  Alcotest.(check bool) "fair" true
    (Fairness.cycle_is_fair inst (Scheduler.prefix (Option.get sched.Scheduler.period) sched))

let test_hetero_uniform_agrees_with_model () =
  (* analyze_hetero with a uniform assignment must agree with analyze. *)
  let inst = Gadgets.disagree in
  List.iter
    (fun name ->
      let m = model name in
      let homo = Modelcheck.Oscillation.analyze inst m in
      let hetero = Modelcheck.Oscillation.analyze_hetero inst (Hetero.uniform m) in
      Alcotest.(check string) (name ^ " verdicts agree")
        (Modelcheck.Oscillation.verdict_name homo)
        (Modelcheck.Oscillation.verdict_name hetero))
    [ "R1O"; "RMS"; "REA"; "RMA"; "UMS"; "UEA" ]

let test_hetero_disagree_mixed_polling () =
  (* The Sec. 5 open question, answered on DISAGREE: both contested nodes
     must poll; one message-passing node restores the oscillation. *)
  let inst = Gadgets.disagree in
  let x = Gadgets.node inst 'x' and y = Gadgets.node inst 'y' in
  let check mx my expected =
    let hetero = Hetero.of_list ~default:(model "REA") [ (x, model mx); (y, model my) ] in
    match (Modelcheck.Oscillation.analyze_hetero inst hetero, expected) with
    | Modelcheck.Oscillation.Converges, `Converges -> ()
    | Modelcheck.Oscillation.Oscillates w, `Oscillates ->
      Alcotest.(check bool)
        (Printf.sprintf "witness replays (x=%s y=%s)" mx my)
        true
        (Modelcheck.Oscillation.verify_witness_hetero inst hetero w)
    | v, _ ->
      Alcotest.failf "x=%s y=%s: unexpected %a" mx my Modelcheck.Oscillation.pp_verdict v
  in
  check "REA" "REA" `Converges;
  check "RMA" "REA" `Converges;
  check "REA" "R1O" `Oscillates;
  check "R1O" "REA" `Oscillates;
  check "RMS" "REA" `Oscillates

(* ------------------------------------------------------------------ *)
(* Multi *)

let test_multi_validation () =
  let inst = Gadgets.disagree in
  let sync = Multi.synchronous_polling inst in
  let entry = List.hd (Scheduler.prefix 1 sync) in
  Alcotest.(check bool) "synchronous entry valid" true
    (Multi.validates inst Multi.Synchronous (model "REA") entry);
  Alcotest.(check bool) "also valid unrestricted" true
    (Multi.validates inst Multi.Unrestricted (model "REA") entry);
  (* A single-node entry is not synchronous. *)
  let single = Activation.poll_all inst (Gadgets.node inst 'x') in
  Alcotest.(check bool) "single not synchronous" false
    (Multi.validates inst Multi.Synchronous (model "REA") single);
  Alcotest.(check bool) "single ok unrestricted" true
    (Multi.validates inst Multi.Unrestricted (model "REA") single)

let test_multi_disagree_oscillates () =
  (* Ex. A.6 / Sec. 5: synchronous polling oscillates on DISAGREE even
     though single-node polling provably converges. *)
  let inst = Gadgets.disagree in
  let r = Executor.run ~max_steps:100 inst (Multi.synchronous_polling inst) in
  match r.Executor.stop with
  | Executor.Cycle _ -> ()
  | s -> Alcotest.failf "expected oscillation, got %a" Executor.pp_stop s

let test_multi_good_gadget_converges () =
  let inst = Gadgets.good_gadget in
  let r = Executor.run ~max_steps:100 inst (Multi.synchronous_polling inst) in
  (match r.Executor.stop with
  | Executor.Quiescent -> ()
  | s -> Alcotest.failf "expected convergence, got %a" Executor.pp_stop s);
  Alcotest.(check bool) "greedy fixpoint matches" true
    (Assignment.equal
       (State.assignment inst (Trace.final r.Executor.trace))
       (Solver.greedy inst))

let test_multi_sync_rounds_match_greedy_iterates () =
  (* Each synchronous round applies one best-response step to the
     assignments announced a round earlier; on a convergent instance the
     final round equals the greedy fixpoint. *)
  let inst = Gadgets.shortest_paths ~n:4 in
  let r = Executor.run ~max_steps:50 inst (Multi.synchronous_polling inst) in
  Alcotest.(check bool) "converged" true (r.Executor.stop = Executor.Quiescent);
  Alcotest.(check bool) "fixpoint" true
    (Assignment.equal
       (State.assignment inst (Trace.final r.Executor.trace))
       (Solver.greedy inst))

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_measure () =
  let inst = Gadgets.good_gadget in
  let s = Stats.measure inst (Scheduler.round_robin inst (model "RMS")) in
  Alcotest.(check bool) "converged" true s.Stats.converged;
  Alcotest.(check bool) "positive steps" true (s.Stats.steps > 0);
  Alcotest.(check bool) "messages sent" true (s.Stats.messages > 0)

let test_stats_across_seeds () =
  let inst = Gadgets.good_gadget in
  let summary =
    Stats.across_seeds inst
      ~scheduler:(fun ~seed -> Scheduler.random inst (model "RMS") ~seed)
      ~seeds:[ 1; 2; 3; 4; 5 ]
  in
  Alcotest.(check int) "runs" 5 summary.Stats.runs;
  Alcotest.(check bool) "all converged" true summary.Stats.all_converged;
  Alcotest.(check bool) "mean <= max" true
    (summary.Stats.mean_steps <= float_of_int summary.Stats.max_steps)

(* ------------------------------------------------------------------ *)
(* Property tests of the step semantics *)

let gen_setup =
  QCheck2.Gen.(
    let* seed = int_range 0 99_999 in
    let* model_ix = int_range 0 23 in
    let* steps = int_range 1 60 in
    return (seed, List.nth Model.all model_ix, steps))

let run_random_prefix inst m ~seed ~steps =
  let sched = Scheduler.random inst m ~seed in
  Executor.run_entries inst (Scheduler.prefix steps sched)

let prop_pi_equals_best_choice =
  QCheck2.Test.make ~name:"pi is always best_choice of rho" ~count:60 gen_setup
    (fun (seed, m, steps) ->
      let inst = Gadgets.fig6 in
      let tr = run_random_prefix inst m ~seed ~steps in
      List.for_all
        (fun (s : Trace.step) ->
          let st = s.Trace.outcome.Step.state in
          List.for_all
            (fun v -> Path.equal (State.pi st v) (State.best_choice inst st v))
            s.Trace.entry.Activation.active)
        (Trace.steps tr))

let prop_message_conservation =
  QCheck2.Test.make ~name:"messages pushed - processed = queued" ~count:60 gen_setup
    (fun (seed, m, steps) ->
      let inst = Gadgets.fig6 in
      let tr = run_random_prefix inst m ~seed ~steps in
      let pushed, processed =
        List.fold_left
          (fun (p, c) (s : Trace.step) ->
            ( p + List.length s.Trace.outcome.Step.pushed,
              c + List.fold_left (fun a (_, n) -> a + n) 0 s.Trace.outcome.Step.processed ))
          (0, 0) (Trace.steps tr)
      in
      let queued = Channel.total_messages (State.channels (Trace.final tr)) in
      pushed - processed = queued)

let prop_announced_tracks_pi =
  QCheck2.Test.make ~name:"after activation, announced = pi" ~count:60 gen_setup
    (fun (seed, m, steps) ->
      let inst = Gadgets.fig6 in
      let tr = run_random_prefix inst m ~seed ~steps in
      List.for_all
        (fun (s : Trace.step) ->
          let st = s.Trace.outcome.Step.state in
          List.for_all
            (fun v -> Path.equal (State.pi st v) (State.announced st v))
            s.Trace.entry.Activation.active)
        (Trace.steps tr))

let prop_quiescent_iff_solution =
  QCheck2.Test.make ~name:"quiescent states carry stable solutions" ~count:30
    QCheck2.Gen.(int_range 0 9_999)
    (fun seed ->
      let inst = Generator.safe_instance { Generator.default with nodes = 5; seed } in
      let r = Executor.run inst (Scheduler.round_robin inst (model "RMS")) in
      match r.Executor.stop with
      | Executor.Quiescent ->
        Assignment.is_solution inst (State.assignment inst (Trace.final r.Executor.trace))
      | _ -> false)

let prop_rho_is_some_pushed_message =
  QCheck2.Test.make ~name:"rho only holds announced routes" ~count:40 gen_setup
    (fun (seed, m, steps) ->
      let inst = Gadgets.disagree in
      let tr = run_random_prefix inst m ~seed ~steps in
      (* every non-epsilon known route was announced by its channel's
         source at some earlier step *)
      let announced = Hashtbl.create 16 in
      List.for_all
        (fun (s : Trace.step) ->
          List.iter
            (fun (v, p) -> Hashtbl.replace announced (v, p) ())
            s.Trace.outcome.Step.announcements;
          List.for_all
            (fun ((c : Channel.id), r) ->
              Path.is_epsilon r || Hashtbl.mem announced (c.Channel.src, r))
            (State.rho_bindings s.Trace.outcome.Step.state))
        (Trace.steps tr))

let prop_fifo_order =
  QCheck2.Test.make ~name:"channels deliver in FIFO order" ~count:40 gen_setup
    (fun (seed, m, steps) ->
      (* Reconstruct each channel's stream: pushes happen in order; the
         queue at any time must be a contiguous suffix of the pushes. *)
      let inst = Gadgets.disagree in
      let tr = run_random_prefix inst m ~seed ~steps in
      let pushed : (Channel.id, Path.t list) Hashtbl.t = Hashtbl.create 16 in
      List.for_all
        (fun (s : Trace.step) ->
          List.iter
            (fun (c, p) ->
              Hashtbl.replace pushed c
                (Option.value ~default:[] (Hashtbl.find_opt pushed c) @ [ p ]))
            s.Trace.outcome.Step.pushed;
          let chans = State.channels s.Trace.outcome.Step.state in
          List.for_all
            (fun (c, queue) ->
              let history = Option.value ~default:[] (Hashtbl.find_opt pushed c) in
              let k = List.length history - List.length queue in
              k >= 0
              && List.equal Path.equal queue
                   (List.filteri (fun i _ -> i >= k) history))
            (Channel.bindings_paths chans))
        (Trace.steps tr))

(* ------------------------------------------------------------------ *)
(* Drop semantics of Step.apply (the g function of Def. 2.2) *)

let gen_reliable_setup =
  QCheck2.Gen.(
    let* seed = int_range 0 99_999 in
    let* model_ix = int_range 0 (List.length Model.reliable - 1) in
    let* steps = int_range 1 60 in
    return (seed, List.nth Model.reliable model_ix, steps))

let prop_reliable_never_drops =
  QCheck2.Test.make ~name:"reliable schedules never drop" ~count:60 gen_reliable_setup
    (fun (seed, m, steps) ->
      let inst = Gadgets.fig6 in
      let tr = run_random_prefix inst m ~seed ~steps in
      List.for_all
        (fun (s : Trace.step) -> s.Trace.outcome.Step.dropped = [])
        (Trace.steps tr))

(* A queue of distinguishable messages on DISAGREE's (y,x) channel: message
   j (1-based, oldest first) is the bogus-but-well-formed path [10+j; y; d],
   so rho after the step identifies exactly which message was kept. *)
let drop_setup inst ~queued =
  let y = Gadgets.node inst 'y' and x = Gadgets.node inst 'x' in
  let d = Instance.dest inst in
  let c = Channel.id ~src:y ~dst:x in
  let msg j = Path.of_nodes [ 10 + j; y; d ] in
  let st =
    List.fold_left
      (fun st j ->
        State.with_channels st (Channel.push_path (State.channels st) c (msg j)))
      (State.initial inst)
      (List.init queued (fun j -> j + 1))
  in
  (c, x, msg, st)

let gen_drop_entry =
  QCheck2.Gen.(
    let* queued = int_range 0 6 in
    let* count =
      oneof [ return Activation.All; map (fun f -> Activation.Finite f) (int_range 0 8) ]
    in
    let bound = match count with Activation.All -> 8 | Activation.Finite f -> f in
    let* drops =
      if bound = 0 then return [] else list_size (int_range 0 bound) (int_range 1 bound)
    in
    return (queued, count, drops))

let processed_count queued = function
  | Activation.All -> queued
  | Activation.Finite f -> min f queued

let prop_kept_is_newest_undropped =
  QCheck2.Test.make ~name:"rho keeps the newest non-dropped processed message"
    ~count:200 gen_drop_entry
    (fun (queued, count, drops) ->
      let inst = Gadgets.disagree in
      let c, x, msg, st = drop_setup inst ~queued in
      let o = Step.apply inst st (Activation.single x [ Activation.read ~drops ~count c ]) in
      let i = processed_count queued count in
      let dropset = Activation.IntSet.of_list drops in
      (* Reference semantics: the newest index j <= i with j not dropped; if
         every processed message was dropped, rho is unchanged (epsilon in
         the initial state). *)
      let rec newest j best =
        if j > i then best
        else newest (j + 1) (if Activation.IntSet.mem j dropset then best else Some j)
      in
      let expected =
        match newest 1 None with None -> Path.epsilon | Some j -> msg j
      in
      Path.equal (State.rho o.Step.state c) expected)

let prop_drop_counts_reconcile =
  QCheck2.Test.make ~name:"processed/dropped counts reconcile with the queue"
    ~count:200 gen_drop_entry
    (fun (queued, count, drops) ->
      let inst = Gadgets.disagree in
      let c, x, _msg, st = drop_setup inst ~queued in
      let o = Step.apply inst st (Activation.single x [ Activation.read ~drops ~count c ]) in
      let i = processed_count queued count in
      let n_proc = Option.value ~default:0 (List.assoc_opt c o.Step.processed) in
      let n_drop = Option.value ~default:0 (List.assoc_opt c o.Step.dropped) in
      let dropset = Activation.IntSet.of_list drops in
      let expected_drops =
        Activation.IntSet.cardinal (Activation.IntSet.filter (fun j -> j <= i) dropset)
      in
      n_proc = i && n_drop = expected_drops
      && n_drop <= n_proc
      && Channel.length (State.channels o.Step.state) c = queued - i)

let properties =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_pi_equals_best_choice;
      prop_message_conservation;
      prop_announced_tracks_pi;
      prop_quiescent_iff_solution;
      prop_rho_is_some_pushed_message;
      prop_fifo_order;
      prop_reliable_never_drops;
      prop_kept_is_newest_undropped;
      prop_drop_counts_reconcile;
    ]

let () =
  Alcotest.run "extensions"
    [
      ( "hetero",
        [
          Alcotest.test_case "validation" `Quick test_hetero_validation;
          Alcotest.test_case "round-robin scheduler" `Quick test_hetero_round_robin;
          Alcotest.test_case "uniform agrees with homogeneous" `Quick
            test_hetero_uniform_agrees_with_model;
          Alcotest.test_case "mixed polling on DISAGREE (Sec 5)" `Quick
            test_hetero_disagree_mixed_polling;
        ] );
      ( "multi",
        [
          Alcotest.test_case "validation regimes" `Quick test_multi_validation;
          Alcotest.test_case "synchronous DISAGREE oscillates (Ex A.6)" `Quick
            test_multi_disagree_oscillates;
          Alcotest.test_case "synchronous GOOD GADGET converges" `Quick
            test_multi_good_gadget_converges;
          Alcotest.test_case "rounds reach greedy fixpoint" `Quick
            test_multi_sync_rounds_match_greedy_iterates;
        ] );
      ( "stats",
        [
          Alcotest.test_case "measure" `Quick test_stats_measure;
          Alcotest.test_case "across seeds" `Quick test_stats_across_seeds;
        ] );
      ("semantics-properties", properties);
    ]
