(* Tests for the execution engine: Def. 2.2/2.3 semantics, the model
   taxonomy, schedulers, fairness bookkeeping, and step-for-step replays of
   the paper's appendix examples. *)

open Spp
open Engine

let chan inst a b =
  Channel.id ~src:(Gadgets.node inst a) ~dst:(Gadgets.node inst b)

let read1 inst a b = Activation.read ~count:(Activation.Finite 1) (chan inst a b)
let read_all inst a b = Activation.read ~count:Activation.All (chan inst a b)

let single inst c reads = Activation.single (Gadgets.node inst c) reads

(* One-message-per-channel poll of every channel (the REO/REF entry shape). *)
let poll1 inst c =
  let v = Gadgets.node inst c in
  single inst c
    (List.map
       (fun ch -> Activation.read ~count:(Activation.Finite 1) ch)
       (Model.required_channels inst v))

let model s =
  match Model.of_string s with Some m -> m | None -> Alcotest.failf "bad model %s" s

let run_rows inst entries =
  Trace.row_strings (Executor.run_entries inst entries)

let check_rows what expected actual =
  Alcotest.(check (list (pair string string))) what expected actual

(* ------------------------------------------------------------------ *)
(* Model taxonomy *)

let test_model_roundtrip () =
  Alcotest.(check int) "24 models" 24 (List.length Model.all);
  List.iter
    (fun m ->
      let s = Model.to_string m in
      (* of_string is tolerant of case and surrounding whitespace. *)
      List.iter
        (fun variant ->
          match Model.of_string variant with
          | Some m' -> Alcotest.(check bool) variant true (Model.equal m m')
          | None -> Alcotest.failf "roundtrip failed on %S" variant)
        [ s; String.lowercase_ascii s; " " ^ s ^ "\n"; "\t " ^ String.lowercase_ascii s ])
    Model.all;
  List.iter
    (fun garbage ->
      Alcotest.(check (option reject)) garbage None (Model.of_string garbage))
    [ "XYZ"; ""; "R1"; "R1OA"; "1RO"; "R 1O"; "   " ]

let test_model_families () =
  let m = model in
  Alcotest.(check bool) "REA polling" true (Model.is_polling (m "REA"));
  Alcotest.(check bool) "R1O message-passing" true (Model.is_message_passing (m "R1O"));
  Alcotest.(check bool) "RMS queueing" true (Model.is_queueing (m "RMS"));
  Alcotest.(check bool) "UMS queueing" true (Model.is_queueing (m "UMS"));
  Alcotest.(check bool) "RES not queueing" false (Model.is_queueing (m "RES"))

let test_model_includes () =
  let m = model in
  (* Prop. 3.3's syntactic inclusions. *)
  Alcotest.(check bool) "U includes R" true (Model.includes (m "UMS") (m "RMS"));
  Alcotest.(check bool) "S includes F" true (Model.includes (m "R1S") (m "R1F"));
  Alcotest.(check bool) "F includes O" true (Model.includes (m "R1F") (m "R1O"));
  Alcotest.(check bool) "F includes A" true (Model.includes (m "R1F") (m "R1A"));
  Alcotest.(check bool) "M includes 1" true (Model.includes (m "RMO") (m "R1O"));
  Alcotest.(check bool) "M includes E" true (Model.includes (m "RMO") (m "REO"));
  Alcotest.(check bool) "R not includes U" false (Model.includes (m "RMS") (m "UMS"));
  Alcotest.(check bool) "O not includes A" false (Model.includes (m "R1O") (m "R1A"));
  Alcotest.(check bool) "E not includes 1" false (Model.includes (m "REO") (m "R1O"));
  (* includes is reflexive *)
  List.iter
    (fun x -> Alcotest.(check bool) (Model.to_string x) true (Model.includes x x))
    Model.all

let test_model_validation () =
  let inst = Gadgets.disagree in
  let x = Gadgets.node inst 'x' in
  (* REA accepts a full poll *)
  Alcotest.(check bool) "REA poll ok" true
    (Model.validates inst (model "REA") (Activation.poll_all inst x));
  (* REA rejects a partial poll *)
  Alcotest.(check bool) "REA partial rejected" false
    (Model.validates inst (model "REA") (single inst 'x' [ read_all inst 'd' 'x' ]));
  (* R1O accepts exactly one single-message read *)
  Alcotest.(check bool) "R1O ok" true
    (Model.validates inst (model "R1O") (single inst 'x' [ read1 inst 'y' 'x' ]));
  Alcotest.(check bool) "R1O wrong count" false
    (Model.validates inst (model "R1O") (single inst 'x' [ read_all inst 'y' 'x' ]));
  Alcotest.(check bool) "R1O two channels" false
    (Model.validates inst (model "R1O")
       (single inst 'x' [ read1 inst 'y' 'x'; read1 inst 'd' 'x' ]));
  (* Drops are rejected on reliable channels, accepted on unreliable ones *)
  let dropping =
    single inst 'x' [ Activation.read ~count:(Activation.Finite 1) ~drops:[ 1 ] (chan inst 'y' 'x') ]
  in
  Alcotest.(check bool) "R1O rejects drop" false (Model.validates inst (model "R1O") dropping);
  Alcotest.(check bool) "U1O accepts drop" true (Model.validates inst (model "U1O") dropping);
  (* M_forced rejects zero-message reads, M_some accepts them *)
  let zero = single inst 'x' [ Activation.read ~count:(Activation.Finite 0) (chan inst 'y' 'x') ] in
  Alcotest.(check bool) "RMF rejects f=0" false (Model.validates inst (model "RMF") zero);
  Alcotest.(check bool) "RMS accepts f=0" true (Model.validates inst (model "RMS") zero);
  (* Multi-node entries are rejected by the single-node validator *)
  let multi =
    Activation.entry
      ~active:[ x; Gadgets.node inst 'y' ]
      ~reads:[ read_all inst 'y' 'x'; read_all inst 'x' 'y' ]
  in
  Alcotest.(check bool) "single-node validator" false
    (Model.validates inst (model "RMA") multi);
  Alcotest.(check bool) "multi-node validator" true
    (Model.validates_multi inst (model "R1A") multi)

let test_activation_well_formed () =
  let inst = Gadgets.disagree in
  let bad_drop =
    single inst 'x'
      [ Activation.read ~count:(Activation.Finite 1) ~drops:[ 2 ] (chan inst 'y' 'x') ]
  in
  Alcotest.(check bool) "drop index beyond f" true
    (Activation.well_formed inst bad_drop <> []);
  let dup = single inst 'x' [ read1 inst 'y' 'x'; read1 inst 'y' 'x' ] in
  Alcotest.(check bool) "duplicate channel" true (Activation.well_formed inst dup <> []);
  let foreign = single inst 'x' [ read1 inst 'd' 'y' ] in
  Alcotest.(check bool) "reader not active" true
    (Activation.well_formed inst foreign <> [])

(* ------------------------------------------------------------------ *)
(* Step semantics *)

let test_step_initial_announce () =
  let inst = Gadgets.disagree in
  let st = State.initial inst in
  (* d's first activation announces d even though pi_d(0) = d. *)
  let o = Step.apply inst st (single inst 'd' [ read1 inst 'x' 'd' ]) in
  Alcotest.(check int) "one announcement" 1 (List.length o.Step.announcements);
  Alcotest.(check int) "message to x" 1
    (Channel.length (State.channels o.Step.state) (chan inst 'd' 'x'));
  Alcotest.(check int) "message to y" 1
    (Channel.length (State.channels o.Step.state) (chan inst 'd' 'y'));
  (* Re-activating d announces nothing new. *)
  let o2 = Step.apply inst o.Step.state (single inst 'd' [ read1 inst 'x' 'd' ]) in
  Alcotest.(check int) "no second announcement" 0 (List.length o2.Step.announcements)

let test_step_min_count () =
  (* Processing f messages from a channel holding m < f consumes only m. *)
  let inst = Gadgets.disagree in
  let st = State.initial inst in
  let o = Step.apply inst st (single inst 'd' [ read1 inst 'x' 'd' ]) in
  let o =
    Step.apply inst o.Step.state
      (single inst 'x' [ Activation.read ~count:(Activation.Finite 5) (chan inst 'd' 'x') ])
  in
  Alcotest.(check (list (pair (of_pp Fmt.nop) int))) "processed one"
    [ (chan inst 'd' 'x', 1) ]
    o.Step.processed;
  Alcotest.(check string) "x chose xd" "xd"
    (Path.to_string ~names:(Instance.names inst) (State.pi o.Step.state (Gadgets.node inst 'x')))

let test_step_fifo_last_kept () =
  (* With several processed messages, rho keeps the newest non-dropped. *)
  let inst = Gadgets.fig8 in
  let entries =
    [
      single inst 'd' [ read1 inst 'a' 'd' ];
      poll1 inst 'a';
      poll1 inst 'u';
      poll1 inst 'b';
      poll1 inst 'u';
      (* (u,s) now holds [uad; ubd]; read both, keep ubd *)
      single inst 's' [ read_all inst 'u' 's' ];
    ]
  in
  let tr = Executor.run_entries inst entries in
  let final = Trace.final tr in
  Alcotest.(check string) "rho keeps last" "ubd"
    (Path.to_string ~names:(Instance.names inst)
       (State.rho final (chan inst 'u' 's')));
  Alcotest.(check string) "s chose subd" "subd"
    (Path.to_string ~names:(Instance.names inst)
       (State.pi final (Gadgets.node inst 's')))

let test_step_drop_semantics () =
  (* Dropping the only processed message leaves rho unchanged but consumes
     the message. *)
  let inst = Gadgets.disagree in
  let st = State.initial inst in
  let o = Step.apply inst st (single inst 'd' [ read1 inst 'x' 'd' ]) in
  let dropping =
    single inst 'x'
      [ Activation.read ~count:(Activation.Finite 1) ~drops:[ 1 ] (chan inst 'd' 'x') ]
  in
  let o2 = Step.apply inst o.Step.state dropping in
  Alcotest.(check bool) "rho still epsilon" true
    (Path.is_epsilon (State.rho o2.Step.state (chan inst 'd' 'x')));
  Alcotest.(check int) "message consumed" 0
    (Channel.length (State.channels o2.Step.state) (chan inst 'd' 'x'));
  Alcotest.(check bool) "x has no route" true
    (Path.is_epsilon (State.pi o2.Step.state (Gadgets.node inst 'x')))

let test_step_drop_middle () =
  (* Drop hits an intermediate message: the last processed survives. *)
  let inst = Gadgets.fig8 in
  let prefix =
    [
      single inst 'd' [ read1 inst 'a' 'd' ];
      poll1 inst 'a';
      poll1 inst 'u';
      poll1 inst 'b';
      poll1 inst 'u';
    ]
  in
  let tr = Executor.run_entries inst prefix in
  let st = Trace.final tr in
  (* (u,s) = [uad; ubd]: process both, dropping #2 -> keep uad *)
  let o =
    Step.apply inst st
      (single inst 's'
         [ Activation.read ~count:(Activation.Finite 2) ~drops:[ 2 ] (chan inst 'u' 's') ])
  in
  Alcotest.(check string) "kept first" "uad"
    (Path.to_string ~names:(Instance.names inst) (State.rho o.Step.state (chan inst 'u' 's')));
  Alcotest.(check string) "s chose suad" "suad"
    (Path.to_string ~names:(Instance.names inst) (State.pi o.Step.state (Gadgets.node inst 's')))

let test_step_withdrawal () =
  (* A node losing its route announces epsilon and the neighbor unlearns. *)
  let inst = Gadgets.fig6 in
  let entries =
    [
      poll1 inst 'd';
      poll1 inst 'x';
      poll1 inst 'a';
      poll1 inst 'u';
      poll1 inst 'v';
      poll1 inst 'y';
      poll1 inst 'a';
      poll1 inst 'u';
      (* u read ayd and vuaxd: no feasible route, withdraws *)
    ]
  in
  let tr = Executor.run_entries inst entries in
  let final = Trace.final tr in
  Alcotest.(check bool) "u withdrew" true
    (Path.is_epsilon (State.pi final (Gadgets.node inst 'u')));
  (* The withdrawal is in (u,v). *)
  let q = Channel.get_paths (State.channels final) (chan inst 'u' 'v') in
  Alcotest.(check bool) "epsilon queued to v" true
    (List.exists Path.is_epsilon q)

(* ------------------------------------------------------------------ *)
(* Example A.1: DISAGREE *)

let disagree_r1o_prefix inst =
  [
    single inst 'd' [ read1 inst 'x' 'd' ];
    single inst 'x' [ read1 inst 'd' 'x' ];
    single inst 'y' [ read1 inst 'd' 'y' ];
  ]

let disagree_r1o_cycle inst =
  [
    single inst 'x' [ read1 inst 'y' 'x' ];
    single inst 'y' [ read1 inst 'x' 'y' ];
    single inst 'x' [ read1 inst 'd' 'x' ];
    single inst 'y' [ read1 inst 'd' 'y' ];
    single inst 'd' [ read1 inst 'x' 'd' ];
  ]

let test_disagree_r1o_oscillates () =
  let inst = Gadgets.disagree in
  let sched = Scheduler.prefixed (disagree_r1o_prefix inst) (disagree_r1o_cycle inst) in
  (* All entries are legal R1O entries. *)
  let r = Executor.run ~validate:(model "R1O") ~max_steps:500 inst sched in
  (match r.Executor.stop with
  | Executor.Cycle _ -> ()
  | s -> Alcotest.failf "expected a cycle, got %a" Executor.pp_stop s);
  (* The oscillation really changes path assignments. *)
  let pis =
    List.map
      (fun a -> Assignment.get a (Gadgets.node inst 'x'))
      (Trace.assignments r.Executor.trace)
  in
  Alcotest.(check bool) "x's route oscillates" true
    (List.exists (Path.equal (Gadgets.path inst "xd")) pis
    && List.exists (Path.equal (Gadgets.path inst "xyd")) pis)

let test_disagree_r1o_cycle_fair () =
  let inst = Gadgets.disagree in
  Alcotest.(check bool) "cycle reads every channel" true
    (Fairness.cycle_is_fair inst (disagree_r1o_cycle inst))

let test_disagree_converges_in_strong_models () =
  let inst = Gadgets.disagree in
  List.iter
    (fun name ->
      let m = model name in
      let r = Executor.run ~validate:m inst (Scheduler.round_robin inst m) in
      (match r.Executor.stop with
      | Executor.Quiescent -> ()
      | s -> Alcotest.failf "%s: expected convergence, got %a" name Executor.pp_stop s);
      Alcotest.(check bool) (name ^ " reaches a stable solution") true
        (Assignment.is_solution inst
           (State.assignment inst (Trace.final r.Executor.trace))))
    [ "REO"; "REF"; "R1A"; "RMA"; "REA"; "RMS"; "UMS" ]

(* ------------------------------------------------------------------ *)
(* Example A.2: FIG6 under REO *)

let fig6_reo_entries inst =
  List.map (fun c -> poll1 inst c)
    [ 'd'; 'x'; 'a'; 'u'; 'v'; 'y'; 'a'; 'u'; 'v'; 'z'; 'a'; 'v'; 'u' ]

let test_fig6_reo_replay () =
  let inst = Gadgets.fig6 in
  let rows = run_rows inst (fig6_reo_entries inst) in
  check_rows "Ex. A.2 steps 1-13"
    [
      ("d", "d"); ("x", "xd"); ("a", "axd"); ("u", "uaxd"); ("v", "vuaxd");
      ("y", "yd"); ("a", "ayd"); ("u", "\xCE\xB5"); ("v", "vayd"); ("z", "zd");
      ("a", "azd"); ("v", "vazd"); ("u", "uazd");
    ]
    rows

let test_fig6_reo_entries_validate () =
  let inst = Gadgets.fig6 in
  List.iter
    (fun e ->
      Alcotest.(check bool) "validates in REO" true
        (Model.validates inst (model "REO") e))
    (fig6_reo_entries inst)

let test_fig6_reo_oscillates () =
  let inst = Gadgets.fig6 in
  (* u and v flap forever; the other nodes' polls are no-ops that keep the
     schedule fair and drain the queues into a, x, y, z. *)
  let cycle = List.map (fun c -> poll1 inst c) [ 'v'; 'u'; 'a'; 'x'; 'y'; 'z'; 'd' ] in
  Alcotest.(check bool) "cycle is fair" true (Fairness.cycle_is_fair inst cycle);
  let sched = Scheduler.prefixed (fig6_reo_entries inst) cycle in
  let r = Executor.run ~validate:(model "REO") ~max_steps:500 inst sched in
  match r.Executor.stop with
  | Executor.Cycle _ -> ()
  | s -> Alcotest.failf "expected oscillation, got %a" Executor.pp_stop s

let test_fig6_converges_in_polling_models () =
  let inst = Gadgets.fig6 in
  List.iter
    (fun name ->
      let m = model name in
      let r = Executor.run ~validate:m inst (Scheduler.round_robin inst m) in
      match r.Executor.stop with
      | Executor.Quiescent -> ()
      | s -> Alcotest.failf "%s: expected convergence, got %a" name Executor.pp_stop s)
    [ "R1A"; "RMA"; "REA" ]

(* ------------------------------------------------------------------ *)
(* Example A.3: FIG7 under REO vs R1O *)

let test_fig7_reo_replay () =
  let inst = Gadgets.fig7 in
  let entries =
    List.map (fun c -> poll1 inst c) [ 'd'; 'b'; 'u'; 'v'; 'a'; 'u'; 'v'; 's'; 's'; 's' ]
  in
  let rows = run_rows inst entries in
  check_rows "Ex. A.3 REO"
    [
      ("d", "d"); ("b", "bd"); ("u", "ubd"); ("v", "vbd"); ("a", "ad");
      ("u", "uad"); ("v", "vad"); ("s", "subd"); ("s", "suad"); ("s", "suad");
    ]
    rows

let test_fig7_r1o_replay () =
  let inst = Gadgets.fig7 in
  let entries =
    [
      single inst 'd' [ read1 inst 'a' 'd' ];
      single inst 'b' [ read1 inst 'd' 'b' ];
      single inst 'u' [ read1 inst 'b' 'u' ];
      single inst 'v' [ read1 inst 'b' 'v' ];
      single inst 'a' [ read1 inst 'd' 'a' ];
      single inst 'u' [ read1 inst 'a' 'u' ];
      single inst 'v' [ read1 inst 'a' 'v' ];
      single inst 's' [ read1 inst 'u' 's' ];
      single inst 's' [ read1 inst 'u' 's' ];
      single inst 's' [ read1 inst 'v' 's' ];
    ]
  in
  let rows = run_rows inst entries in
  check_rows "Ex. A.3 R1O"
    [
      ("d", "d"); ("b", "bd"); ("u", "ubd"); ("v", "vbd"); ("a", "ad");
      ("u", "uad"); ("v", "vad"); ("s", "subd"); ("s", "suad"); ("s", "svbd");
    ]
    rows

(* ------------------------------------------------------------------ *)
(* Example A.4: FIG8 under REA *)

let test_fig8_rea_replay () =
  let inst = Gadgets.fig8 in
  let entries = List.map (fun c -> Activation.poll_all inst (Gadgets.node inst c))
      [ 'd'; 'a'; 'u'; 'b'; 'u'; 's' ]
  in
  List.iter
    (fun e ->
      Alcotest.(check bool) "validates in REA" true
        (Model.validates inst (model "REA") e))
    entries;
  let rows = run_rows inst entries in
  check_rows "Ex. A.4 REA"
    [ ("d", "d"); ("a", "ad"); ("u", "uad"); ("b", "bd"); ("u", "ubd"); ("s", "subd") ]
    rows

let test_fig8_r1o_subsequence_insertion () =
  (* The paper notes R1O realizes the A.4 sequence as a subsequence,
     inserting suad just before subd. *)
  let inst = Gadgets.fig8 in
  let entries =
    [
      single inst 'd' [ read1 inst 'a' 'd' ];
      single inst 'a' [ read1 inst 'd' 'a' ];
      single inst 'u' [ read1 inst 'a' 'u' ];
      single inst 'b' [ read1 inst 'd' 'b' ];
      single inst 'u' [ read1 inst 'b' 'u' ];
      single inst 's' [ read1 inst 'u' 's' ];
      single inst 's' [ read1 inst 'u' 's' ];
    ]
  in
  let rows = run_rows inst entries in
  check_rows "Ex. A.4 R1O realization"
    [
      ("d", "d"); ("a", "ad"); ("u", "uad"); ("b", "bd"); ("u", "ubd");
      ("s", "suad"); ("s", "subd");
    ]
    rows

(* ------------------------------------------------------------------ *)
(* Example A.5: FIG9 under REA *)

let test_fig9_rea_replay () =
  let inst = Gadgets.fig9 in
  let entries = List.map (fun c -> Activation.poll_all inst (Gadgets.node inst c))
      [ 'd'; 'b'; 'c'; 'x'; 's'; 'a'; 'c'; 's' ]
  in
  let rows = run_rows inst entries in
  check_rows "Ex. A.5 REA"
    [
      ("d", "d"); ("b", "bd"); ("c", "cbd"); ("x", "xd"); ("s", "scbd");
      ("a", "ad"); ("c", "cad"); ("s", "sxd");
    ]
    rows

(* ------------------------------------------------------------------ *)
(* Example A.6: multi-node activation *)

let test_disagree_multi_node_oscillation () =
  let inst = Gadgets.disagree in
  let x = Gadgets.node inst 'x' and y = Gadgets.node inst 'y' in
  let both_from_d =
    Activation.entry ~active:[ x; y ]
      ~reads:[ read_all inst 'd' 'x'; read_all inst 'd' 'y' ]
  in
  let both_cross =
    Activation.entry ~active:[ x; y ]
      ~reads:[ read_all inst 'y' 'x'; read_all inst 'x' 'y' ]
  in
  let d_entry = single inst 'd' [ read_all inst 'x' 'd' ] in
  List.iter
    (fun e ->
      Alcotest.(check bool) "R1A-multi validates" true
        (Model.validates_multi inst (model "R1A") e))
    [ both_from_d; both_cross; d_entry ];
  let sched = Scheduler.prefixed [ d_entry ] [ both_from_d; both_cross ] in
  let r = Executor.run ~max_steps:200 inst sched in
  (match r.Executor.stop with
  | Executor.Cycle _ -> ()
  | s -> Alcotest.failf "expected oscillation, got %a" Executor.pp_stop s);
  (* Reproduce the paper's table: pi_x alternates xd / xyd. *)
  let tr = Executor.run_entries inst [ d_entry; both_from_d; both_cross; both_from_d; both_cross ] in
  let pi_x =
    List.map
      (fun a -> Path.to_string ~names:(Instance.names inst) (Assignment.get a x))
      (Trace.assignments tr)
  in
  Alcotest.(check (list string)) "pi_x per step"
    [ "\xCE\xB5"; "xd"; "xyd"; "xyd"; "xd" ] pi_x

(* ------------------------------------------------------------------ *)
(* Executor and schedulers *)

let test_round_robin_validates_everywhere () =
  let instances = [ Gadgets.disagree; Gadgets.fig6; Gadgets.fig7 ] in
  List.iter
    (fun inst ->
      List.iter
        (fun m ->
          let sched = Scheduler.round_robin inst m in
          List.iter
            (fun e ->
              if not (Model.validates inst m e) then
                Alcotest.failf "round-robin %s entry invalid: %a" (Model.to_string m)
                  (Activation.pp inst) e)
            (Scheduler.prefix (Option.get sched.Scheduler.period) sched))
        Model.all)
    instances

let test_round_robin_fair () =
  List.iter
    (fun m ->
      let inst = Gadgets.fig6 in
      let sched = Scheduler.round_robin inst m in
      Alcotest.(check bool)
        ("fair cycle " ^ Model.to_string m)
        true
        (Fairness.cycle_is_fair inst (Scheduler.prefix (Option.get sched.Scheduler.period) sched)))
    Model.all

let test_random_scheduler_validates () =
  List.iter
    (fun m ->
      let inst = Gadgets.fig6 in
      let sched = Scheduler.random inst m ~seed:7 in
      List.iter
        (fun e ->
          if not (Model.validates inst m e) then
            Alcotest.failf "random %s entry invalid: %a" (Model.to_string m)
              (Activation.pp inst) e)
        (Scheduler.prefix 300 sched))
    Model.all

let test_random_scheduler_fairness_report () =
  let inst = Gadgets.fig6 in
  let sched = Scheduler.random inst (model "UMS") ~seed:13 in
  let entries = Scheduler.prefix 2000 sched in
  let r = Fairness.analyze inst entries in
  Alcotest.(check (list (of_pp Fmt.nop))) "no unread channels" [] r.Fairness.unread_channels;
  List.iter
    (fun (_, gap) -> Alcotest.(check bool) "bounded gaps" true (gap <= 200))
    r.Fairness.max_gap

let test_good_gadget_converges_all_models () =
  let inst = Gadgets.good_gadget in
  List.iter
    (fun m ->
      let r = Executor.run ~validate:m inst (Scheduler.round_robin inst m) in
      (match r.Executor.stop with
      | Executor.Quiescent -> ()
      | s ->
        Alcotest.failf "%s: expected convergence, got %a" (Model.to_string m)
          Executor.pp_stop s);
      Alcotest.(check bool) "stable solution" true
        (Assignment.is_solution inst (State.assignment inst (Trace.final r.Executor.trace))))
    Model.all

let test_bad_gadget_diverges_round_robin () =
  (* BAD GADGET has no solution at all, so no model can reach quiescence. *)
  let inst = Gadgets.bad_gadget in
  List.iter
    (fun name ->
      let m = model name in
      let r = Executor.run ~validate:m ~max_steps:2000 inst (Scheduler.round_robin inst m) in
      match r.Executor.stop with
      | Executor.Quiescent -> Alcotest.failf "%s: BAD GADGET cannot converge" name
      | Executor.Cycle _ | Executor.Exhausted -> ())
    [ "R1O"; "REO"; "RMS"; "REA"; "RMA" ]

let test_quiescent_state_detection () =
  let inst = Gadgets.good_gadget in
  let m = model "REA" in
  let r = Executor.run ~validate:m inst (Scheduler.round_robin inst m) in
  let final = Trace.final r.Executor.trace in
  Alcotest.(check bool) "final state quiescent" true (State.is_quiescent inst final);
  Alcotest.(check bool) "initial state not quiescent" false
    (State.is_quiescent inst (State.initial inst))

let contains_substring haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec loop i = i + n <= h && (String.sub haystack i n = needle || loop (i + 1)) in
  n = 0 || loop 0

let test_paper_table_rendering () =
  let inst = Gadgets.fig8 in
  let entries = List.map (fun c -> Activation.poll_all inst (Gadgets.node inst c))
      [ 'd'; 'a'; 'u' ]
  in
  let table = Trace.paper_table (Executor.run_entries inst entries) in
  Alcotest.(check bool) "mentions uad" true (contains_substring table "uad");
  Alcotest.(check bool) "mentions U(t)" true (contains_substring table "U(t)")


(* ------------------------------------------------------------------ *)
(* Channels, export policy, determinism *)

let test_channel_ops () =
  let c = Channel.id ~src:1 ~dst:2 in
  let t = Channel.push_path Channel.empty c (Path.of_nodes [ 1; 0 ]) in
  let t = Channel.push_path t c (Path.of_nodes [ 1; 2; 0 ]) in
  Alcotest.(check int) "length" 2 (Channel.length t c);
  Alcotest.(check int) "total" 2 (Channel.total_messages t);
  Alcotest.(check int) "max occupancy" 2 (Channel.max_occupancy t);
  let t = Channel.drop_first t c 1 in
  Alcotest.(check int) "after drop" 1 (Channel.length t c);
  (match Channel.get_paths t c with
  | [ p ] -> Alcotest.(check bool) "FIFO kept newer" true (Path.equal p (Path.of_nodes [ 1; 2; 0 ]))
  | _ -> Alcotest.fail "unexpected contents");
  Alcotest.(check bool) "ids are hash-consed" true
    (match Channel.get t c with
    | [ i ] -> Spp.Arena.equal i (Spp.Arena.of_nodes [ 1; 2; 0 ])
    | _ -> false);
  let t = Channel.drop_first t c 5 in
  Alcotest.(check int) "over-drop clamps" 0 (Channel.length t c);
  Alcotest.(check bool) "empty map normal form" true (Channel.Map.is_empty t);
  Alcotest.(check bool) "reverse" true
    (Channel.equal_id (Channel.reverse c) (Channel.id ~src:2 ~dst:1))

let test_export_policy_withdraw_substitution () =
  (* A path filtered by export policy is delivered as a withdrawal, so the
     neighbor's knowledge stays sound. *)
  let inst = Gadgets.disagree in
  let d = Gadgets.node inst 'd' and x = Gadgets.node inst 'x' and y = Gadgets.node inst 'y' in
  (* x may not announce to y at all. *)
  let export ~src ~dst _ = not (src = x && dst = y) in
  let entries =
    [
      single inst 'd' [ read1 inst 'x' 'd' ];
      single inst 'x' [ read1 inst 'd' 'x' ];
      single inst 'y' [ read1 inst 'd' 'y' ];
      single inst 'y' [ read1 inst 'x' 'y' ];
    ]
  in
  let tr = Executor.run_entries ~export inst entries in
  let final = Trace.final tr in
  ignore d;
  (* y never learns x's route, so it keeps the direct one. *)
  Alcotest.(check string) "y stays direct" "yd"
    (Path.to_string ~names:(Instance.names inst) (State.pi final y));
  Alcotest.(check bool) "rho from x empty" true
    (Path.is_epsilon (State.rho final (chan inst 'x' 'y')))

let test_step_deterministic () =
  let inst = Gadgets.fig6 in
  let entries = Scheduler.prefix 40 (Scheduler.random inst (model "UMS") ~seed:99) in
  let t1 = Executor.run_entries inst entries and t2 = Executor.run_entries inst entries in
  Alcotest.(check bool) "same final state" true
    (State.equal (Trace.final t1) (Trace.final t2))

let test_scheduler_period_covers_channels () =
  List.iter
    (fun m ->
      let inst = Gadgets.fig6 in
      let sched = Scheduler.round_robin inst m in
      let cycle = Scheduler.prefix (Option.get sched.Scheduler.period) sched in
      let tracked =
        List.filter (fun (_, dst) -> dst <> Instance.dest inst) (Instance.channels inst)
      in
      let read_chans =
        List.concat_map
          (fun (e : Activation.t) ->
            List.map (fun (r : Activation.read) -> (r.Activation.chan.Channel.src, r.Activation.chan.Channel.dst)) e.Activation.reads)
          cycle
      in
      List.iter
        (fun c ->
          if not (List.mem c read_chans) then
            Alcotest.failf "%s: channel unread in one period" (Model.to_string m))
        tracked)
    Model.all

let test_trace_assignments_lengths () =
  let inst = Gadgets.disagree in
  let entries = disagree_r1o_prefix inst in
  let tr = Executor.run_entries inst entries in
  Alcotest.(check int) "no initial" 3 (List.length (Trace.assignments tr));
  Alcotest.(check int) "with initial" 4
    (List.length (Trace.assignments ~include_initial:true tr));
  Alcotest.(check int) "rows" 3 (List.length (Trace.active_rows tr))

let test_executor_max_steps () =
  let inst = Gadgets.disagree in
  let sched = Scheduler.round_robin inst (model "R1O") in
  let r = Executor.run ~max_steps:2 inst sched in
  Alcotest.(check bool) "exhausted at limit" true
    (match r.Executor.stop with Executor.Exhausted -> true | _ -> false);
  Alcotest.(check int) "trace truncated" 2 (Trace.length r.Executor.trace)

let test_fairness_analyze_gaps () =
  let inst = Gadgets.disagree in
  let entries = disagree_r1o_prefix inst @ disagree_r1o_cycle inst in
  let report = Fairness.analyze inst entries in
  Alcotest.(check (list (of_pp Fmt.nop))) "all channels read" []
    report.Fairness.unread_channels;
  List.iter
    (fun (_, gap) -> Alcotest.(check bool) "gap bounded" true (gap <= List.length entries))
    report.Fairness.max_gap

let test_unfair_cycle_detected () =
  let inst = Gadgets.disagree in
  (* A cycle that never reads (y,x) is unfair. *)
  let cycle = [ single inst 'x' [ read1 inst 'd' 'x' ]; single inst 'y' [ read1 inst 'x' 'y' ]; single inst 'y' [ read1 inst 'd' 'y' ]; single inst 'd' [ read1 inst 'x' 'd' ] ] in
  Alcotest.(check bool) "unfair" false (Fairness.cycle_is_fair inst cycle)

let test_empty_cycle_rejected () =
  let expect_invalid name f =
    match f () with
    | (_ : Scheduler.t) -> Alcotest.failf "%s: empty cycle accepted" name
    | exception Invalid_argument _ -> ()
  in
  expect_invalid "cycle" (fun () -> Scheduler.cycle []);
  let inst = Gadgets.disagree in
  let pre = Scheduler.prefix 3 (Scheduler.round_robin inst (model "RMS")) in
  expect_invalid "prefixed" (fun () -> Scheduler.prefixed pre [])

let test_trace_indices_sequential () =
  let inst = Gadgets.disagree in
  let entries = Scheduler.prefix 12 (Scheduler.round_robin inst (model "R1O")) in
  let tr = Executor.run_entries inst entries in
  let steps = Trace.steps tr in
  Alcotest.(check int) "all steps recorded" 12 (List.length steps);
  List.iteri
    (fun i (s : Trace.step) -> Alcotest.(check int) "step index" (i + 1) s.Trace.index)
    steps

(* ------------------------------------------------------------------ *)
(* Streaming executor: same loop as [run], no trace retention *)

let stop_t = Alcotest.testable Executor.pp_stop ( = )

let test_streaming_matches_run_quiescent () =
  List.iter
    (fun name ->
      let m = model name in
      let inst = Gadgets.disagree in
      let r = Executor.run ~validate:m inst (Scheduler.round_robin inst m) in
      let seen = ref [] in
      let s =
        Executor.run_streaming ~validate:m
          ~on_step:(fun (st : Trace.step) -> seen := st.Trace.index :: !seen)
          inst (Scheduler.round_robin inst m)
      in
      Alcotest.check stop_t (name ^ " stop") r.Executor.stop s.Executor.stop;
      Alcotest.(check int) (name ^ " steps") (Trace.length r.Executor.trace)
        s.Executor.steps;
      Alcotest.(check bool) (name ^ " final state") true
        (State.equal (Trace.final r.Executor.trace) s.Executor.final);
      Alcotest.(check (list int)) (name ^ " on_step saw every step")
        (List.map (fun (st : Trace.step) -> st.Trace.index) (Trace.steps r.Executor.trace))
        (List.rev !seen))
    [ "R1O"; "RMS"; "REA"; "UMS" ]

let test_streaming_detects_cycle () =
  let inst = Gadgets.disagree in
  let sched () = Scheduler.prefixed (disagree_r1o_prefix inst) (disagree_r1o_cycle inst) in
  let r = Executor.run ~validate:(model "R1O") ~max_steps:500 inst (sched ()) in
  let s = Executor.run_streaming ~validate:(model "R1O") ~max_steps:500 inst (sched ()) in
  (match r.Executor.stop with
  | Executor.Cycle _ -> ()
  | st -> Alcotest.failf "expected a cycle, got %a" Executor.pp_stop st);
  Alcotest.check stop_t "same cycle" r.Executor.stop s.Executor.stop;
  Alcotest.(check bool) "same final state" true
    (State.equal (Trace.final r.Executor.trace) s.Executor.final)

let test_streaming_max_steps () =
  let inst = Gadgets.disagree in
  let sched = Scheduler.round_robin inst (model "R1O") in
  let s = Executor.run_streaming ~max_steps:2 inst sched in
  Alcotest.check stop_t "exhausted" Executor.Exhausted s.Executor.stop;
  Alcotest.(check int) "stopped at the limit" 2 s.Executor.steps

(* ------------------------------------------------------------------ *)
(* Worker pool *)

let test_pool_runs_every_index () =
  let pool = Pool.get () in
  let hits = Array.make 6 0 in
  Pool.run pool ~workers:6 (fun i -> hits.(i) <- hits.(i) + 1);
  Array.iteri
    (fun i n -> Alcotest.(check int) (Printf.sprintf "index %d ran once" i) 1 n)
    hits

exception Boom

let test_pool_propagates_exception () =
  let pool = Pool.get () in
  let others_done = Atomic.make 0 in
  (match Pool.run pool ~workers:4 (fun i -> if i = 2 then raise Boom else Atomic.incr others_done) with
  | () -> Alcotest.fail "worker exception was swallowed"
  | exception Boom -> ());
  Alcotest.(check int) "other instances still completed" 3 (Atomic.get others_done);
  (* The pool survives a failed run. *)
  Pool.run pool ~workers:2 ignore

let test_pool_concurrent_runs () =
  (* Three domains race [Pool.run] on the same pool (and thus the same
     parked workers).  The assign-side wakeup must be a broadcast: with a
     single signal, a waiting assigner can consume the wakeup meant for
     the parked worker and both runs deadlock with the job slot full. *)
  let pool = Pool.get () in
  let total = Atomic.make 0 in
  let one_run () = Pool.run pool ~workers:3 (fun _ -> Atomic.incr total) in
  let d1 = Domain.spawn one_run and d2 = Domain.spawn one_run in
  one_run ();
  Domain.join d1;
  Domain.join d2;
  Alcotest.(check int) "every instance of every run executed" 9 (Atomic.get total)

let test_pool_reentrant_run_is_inline () =
  let pool = Pool.get () in
  let inner = Atomic.make 0 in
  Pool.run pool ~workers:2 (fun _ ->
      (* A job calling [run] again must not deadlock on pool mailboxes. *)
      Pool.run pool ~workers:3 (fun _ -> Atomic.incr inner));
  Alcotest.(check int) "both jobs ran their inner instances" 6 (Atomic.get inner)

let test_domains_auto_env () =
  let saved = Sys.getenv_opt "DOMAINS" in
  let restore () =
    match saved with
    | Some v -> Unix.putenv "DOMAINS" v
    | None -> Unix.putenv "DOMAINS" ""
  in
  Fun.protect ~finally:restore (fun () ->
      Unix.putenv "DOMAINS" "auto";
      Alcotest.(check int) "DOMAINS=auto" (Modelcheck.Explore.auto_domains ())
        (Modelcheck.Explore.default_domains ());
      Unix.putenv "DOMAINS" " AUTO ";
      Alcotest.(check int) "DOMAINS is trimmed, case-insensitive"
        (Modelcheck.Explore.auto_domains ())
        (Modelcheck.Explore.default_domains ());
      Unix.putenv "DOMAINS" "3";
      Alcotest.(check int) "DOMAINS=3" 3 (Modelcheck.Explore.default_domains ());
      Unix.putenv "DOMAINS" "bogus";
      Alcotest.(check int) "unparseable falls back to 1" 1
        (Modelcheck.Explore.default_domains ()))

let () =
  Alcotest.run "engine"
    [
      ( "model",
        [
          Alcotest.test_case "roundtrip" `Quick test_model_roundtrip;
          Alcotest.test_case "families" `Quick test_model_families;
          Alcotest.test_case "syntactic inclusion" `Quick test_model_includes;
          Alcotest.test_case "entry validation" `Quick test_model_validation;
          Alcotest.test_case "well-formedness" `Quick test_activation_well_formed;
        ] );
      ( "step",
        [
          Alcotest.test_case "initial announcement" `Quick test_step_initial_announce;
          Alcotest.test_case "min(f, m) processing" `Quick test_step_min_count;
          Alcotest.test_case "FIFO keeps last" `Quick test_step_fifo_last_kept;
          Alcotest.test_case "drop semantics" `Quick test_step_drop_semantics;
          Alcotest.test_case "drop in the middle" `Quick test_step_drop_middle;
          Alcotest.test_case "withdrawals" `Quick test_step_withdrawal;
        ] );
      ( "example-a1",
        [
          Alcotest.test_case "R1O oscillation" `Quick test_disagree_r1o_oscillates;
          Alcotest.test_case "oscillation cycle is fair" `Quick test_disagree_r1o_cycle_fair;
          Alcotest.test_case "strong models converge" `Quick
            test_disagree_converges_in_strong_models;
        ] );
      ( "example-a2",
        [
          Alcotest.test_case "REO 13-step replay" `Quick test_fig6_reo_replay;
          Alcotest.test_case "entries validate in REO" `Quick test_fig6_reo_entries_validate;
          Alcotest.test_case "REO oscillation" `Quick test_fig6_reo_oscillates;
          Alcotest.test_case "polling models converge" `Quick
            test_fig6_converges_in_polling_models;
        ] );
      ( "example-a3",
        [
          Alcotest.test_case "REO replay" `Quick test_fig7_reo_replay;
          Alcotest.test_case "R1O divergent tail" `Quick test_fig7_r1o_replay;
        ] );
      ( "example-a4",
        [
          Alcotest.test_case "REA replay" `Quick test_fig8_rea_replay;
          Alcotest.test_case "R1O subsequence realization" `Quick
            test_fig8_r1o_subsequence_insertion;
        ] );
      ("example-a5", [ Alcotest.test_case "REA replay" `Quick test_fig9_rea_replay ]);
      ( "example-a6",
        [ Alcotest.test_case "multi-node oscillation" `Quick test_disagree_multi_node_oscillation ] );
      ( "executor",
        [
          Alcotest.test_case "round-robin validates" `Quick test_round_robin_validates_everywhere;
          Alcotest.test_case "round-robin fair" `Quick test_round_robin_fair;
          Alcotest.test_case "random scheduler validates" `Quick test_random_scheduler_validates;
          Alcotest.test_case "random scheduler fair-ish" `Quick
            test_random_scheduler_fairness_report;
          Alcotest.test_case "GOOD GADGET converges in all 24 models" `Quick
            test_good_gadget_converges_all_models;
          Alcotest.test_case "BAD GADGET never converges" `Quick
            test_bad_gadget_diverges_round_robin;
          Alcotest.test_case "quiescence detection" `Quick test_quiescent_state_detection;
          Alcotest.test_case "paper table rendering" `Quick test_paper_table_rendering;
        ] );
      ( "details",
        [
          Alcotest.test_case "channel operations" `Quick test_channel_ops;
          Alcotest.test_case "export filtering withdraws" `Quick
            test_export_policy_withdraw_substitution;
          Alcotest.test_case "determinism" `Quick test_step_deterministic;
          Alcotest.test_case "round-robin covers channels" `Quick
            test_scheduler_period_covers_channels;
          Alcotest.test_case "trace lengths" `Quick test_trace_assignments_lengths;
          Alcotest.test_case "max-steps exhaustion" `Quick test_executor_max_steps;
          Alcotest.test_case "fairness gaps" `Quick test_fairness_analyze_gaps;
          Alcotest.test_case "unfair cycle detected" `Quick test_unfair_cycle_detected;
          Alcotest.test_case "empty cycle rejected" `Quick test_empty_cycle_rejected;
          Alcotest.test_case "trace indices are 1..n" `Quick test_trace_indices_sequential;
        ] );
      ( "streaming",
        [
          Alcotest.test_case "matches run on convergent schedules" `Quick
            test_streaming_matches_run_quiescent;
          Alcotest.test_case "detects the same cycles" `Quick test_streaming_detects_cycle;
          Alcotest.test_case "max-steps exhaustion" `Quick test_streaming_max_steps;
        ] );
      ( "pool",
        [
          Alcotest.test_case "runs every index" `Quick test_pool_runs_every_index;
          Alcotest.test_case "propagates exceptions" `Quick test_pool_propagates_exception;
          Alcotest.test_case "concurrent runs are safe" `Quick test_pool_concurrent_runs;
          Alcotest.test_case "re-entrant run is inline" `Quick
            test_pool_reentrant_run_is_inline;
          Alcotest.test_case "DOMAINS=auto parsing" `Quick test_domains_auto_env;
        ] );
    ]
