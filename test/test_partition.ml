(* Tests for the internet-scale BGP substrate: the scaled topology
   generator, edge-cut partitioning, the sharded simulator's parity with
   the legacy engine, lossy cross-partition batching, metrics threading,
   and the algebraic route to the Gao-Rexford instances. *)

open Spp
open Engine
open Bgp

let model s = Option.get (Model.of_string s)

(* ------------------------------------------------------------------ *)
(* generate_scaled: golden digest and structural invariants *)

(* The committed bench artifact (results/BENCH_bgp.json) records this
   digest for the default 10k-node topology; the generator must stay
   byte-stable or the artifact gate and this golden both fail. *)
let test_scaled_golden () =
  let t = Topology.generate_scaled Topology.default_scaled_config in
  Alcotest.(check int) "size" 10_000 (Topology.size t);
  Alcotest.(check int) "links" 13_678 (List.length (Topology.edges t));
  Alcotest.(check string) "digest" "ab2f8c698811f7add1234cc3eeed1190" (Topology.digest t)

let scaled_small =
  { Topology.s_tier1 = 4; s_tier2 = 40; s_stubs = 400; s_peer_links = 30; s_seed = 3 }

let test_scaled_structure () =
  let cfg = scaled_small in
  let t = Topology.generate_scaled cfg in
  let n1 = cfg.Topology.s_tier1 and n2 = cfg.Topology.s_tier2 in
  let n = n1 + n2 + cfg.Topology.s_stubs in
  Alcotest.(check int) "size" n (Topology.size t);
  (* tier 1 is a full peer mesh *)
  for i = 0 to n1 - 1 do
    for j = i + 1 to n1 - 1 do
      Alcotest.(check bool)
        (Printf.sprintf "tier-1 %d/%d peer" i j)
        true
        (Topology.relationship t ~of_:i j = Some Topology.Peer)
    done
  done;
  let providers v =
    List.filter
      (fun u -> Topology.relationship t ~of_:v u = Some Topology.Provider)
      (Topology.neighbors t v)
  in
  (* tier 2: 1-2 tier-1 providers, nothing below *)
  for v = n1 to n1 + n2 - 1 do
    let ps = providers v in
    let k = List.length ps in
    if k < 1 || k > 2 then Alcotest.failf "tier-2 %d has %d providers" v k;
    List.iter
      (fun p -> if p >= n1 then Alcotest.failf "tier-2 %d provider %d not tier-1" v p)
      ps
  done;
  (* stubs: 1-2 providers, all tier-2, and no customers of their own *)
  for v = n1 + n2 to n - 1 do
    let ps = providers v in
    let k = List.length ps in
    if k < 1 || k > 2 then Alcotest.failf "stub %d has %d providers" v k;
    List.iter
      (fun p ->
        if p < n1 || p >= n1 + n2 then
          Alcotest.failf "stub %d provider %d not tier-2" v p)
      ps;
    List.iter
      (fun u ->
        if Topology.relationship t ~of_:v u = Some Topology.Customer then
          Alcotest.failf "stub %d has customer %d" v u)
      (Topology.neighbors t v)
  done;
  (* preferential attachment: stub customers concentrate on a few tier-2
     providers, so the max customer count clearly exceeds the mean *)
  let customers = Array.make n 0 in
  for v = n1 + n2 to n - 1 do
    List.iter (fun p -> customers.(p) <- customers.(p) + 1) (providers v)
  done;
  let t2_counts = Array.sub customers n1 n2 in
  let total = Array.fold_left ( + ) 0 t2_counts in
  let mean = float_of_int total /. float_of_int n2 in
  let max_c = Array.fold_left max 0 t2_counts in
  if float_of_int max_c < 2.0 *. mean then
    Alcotest.failf "no power-law skew: max %d, mean %.2f" max_c mean

let test_scaled_deterministic () =
  let a = Topology.generate_scaled scaled_small in
  let b = Topology.generate_scaled scaled_small in
  Alcotest.(check string) "same seed, same digest" (Topology.digest a) (Topology.digest b);
  let c =
    Topology.generate_scaled { scaled_small with Topology.s_seed = 4 }
  in
  Alcotest.(check bool) "different seed, different digest" true
    (Topology.digest a <> Topology.digest c)

(* ------------------------------------------------------------------ *)
(* Partition invariants *)

let test_partition_invariants () =
  let topo = Topology.generate { Topology.default_config with seed = 7 } in
  let n = Topology.size topo in
  List.iter
    (fun k ->
      let p = Partition.make ~seed:1 ~shards:k topo in
      Alcotest.(check int) "shards" k (Partition.shards p);
      (* members partition the node set, each list ascending *)
      let all = List.concat_map (fun s -> Partition.members p s) (List.init k Fun.id) in
      Alcotest.(check int) "covers all nodes" n (List.length all);
      Alcotest.(check (list int)) "partition of 0..n-1" (List.init n Fun.id)
        (List.sort compare all);
      List.iter
        (fun s ->
          let ms = Partition.members p s in
          Alcotest.(check (list int)) "ascending" (List.sort compare ms) ms;
          Alcotest.(check int) "size_of" (List.length ms) (Partition.size_of p s);
          List.iter
            (fun v -> Alcotest.(check int) "owner consistent" s (Partition.owner p v))
            ms)
        (List.init k Fun.id);
      (* border edges are directed cut pairs between adjacent nodes *)
      let b = Partition.border p in
      Alcotest.(check int) "border = 2 * cut" (2 * Partition.cut_edges p)
        (List.length b);
      List.iter
        (fun (u, v) ->
          Alcotest.(check bool) "cut" true (Partition.owner p u <> Partition.owner p v);
          Alcotest.(check bool) "adjacent" true
            (List.mem v (Topology.neighbors topo u)))
        b;
      Alcotest.(check (list (pair int int))) "border sorted" (List.sort compare b) b;
      Alcotest.(check bool) "imbalance >= 1" true (Partition.imbalance p >= 1.0);
      let f = Partition.cut_fraction p in
      Alcotest.(check bool) "cut fraction in [0,1]" true (f >= 0.0 && f <= 1.0))
    [ 1; 2; 3; 5 ];
  let p1 = Partition.make ~shards:1 topo in
  Alcotest.(check int) "K=1 has no cut" 0 (Partition.cut_edges p1)

let test_partition_deterministic () =
  let topo = Topology.generate { Topology.default_config with seed = 9 } in
  let n = Topology.size topo in
  let owners seed =
    let p = Partition.make ~seed ~shards:3 topo in
    List.init n (Partition.owner p)
  in
  Alcotest.(check (list int)) "same seed, same owners" (owners 5) (owners 5)

let test_partition_rejects () =
  let topo = Topology.generate { Topology.default_config with seed = 1 } in
  let expect_invalid shards =
    try
      ignore (Partition.make ~shards topo);
      Alcotest.failf "expected rejection of shards=%d" shards
    with Invalid_argument _ -> ()
  in
  expect_invalid 0;
  expect_invalid (Topology.size topo + 1)

(* ------------------------------------------------------------------ *)
(* Sharded simulator: parity with the legacy engine *)

let shard_parity_case topo ~dest ~m ~shards ~batching =
  let legacy = Simulate.run topo ~dest ~model:m ~scheduler:Scheduler.round_robin in
  let cfg = Shard.config_for ~shards ~workers:1 ~batching m in
  let r = Shard.run cfg topo ~dest in
  let inst = Policy.compile topo ~dest in
  legacy.Simulate.converged && r.Shard.converged
  && Assignment.equal (Shard.assignment inst r) legacy.Simulate.assignment

let test_shard_parity_small () =
  let topo = Topology.generate { Topology.default_config with seed = 42 } in
  let dest = Topology.size topo - 1 in
  List.iter
    (fun mname ->
      List.iter
        (fun shards ->
          Alcotest.(check bool)
            (Printf.sprintf "parity %s K=%d" mname shards)
            true
            (shard_parity_case topo ~dest ~m:(model mname) ~shards
               ~batching:Shard.Per_epoch))
        [ 1; 2; 4 ])
    [ "R1O"; "RMS"; "REA"; "RMA"; "U1O"; "UMS"; "UEA"; "UMA" ]

let prop_shard_parity =
  QCheck2.Test.make ~name:"K-shard routes = legacy engine assignment" ~count:40
    QCheck2.Gen.(
      tup4 (int_range 0 9_999) (int_range 0 23) (int_range 1 5) (int_range 0 2))
    (fun (seed, mi, shards, bi) ->
      let topo = Topology.generate { Topology.default_config with seed } in
      let dest = Topology.size topo - 1 in
      let shards = min shards (Topology.size topo) in
      let m = List.nth Model.all mi in
      let batching =
        List.nth [ Shard.Per_epoch; Shard.Every 1; Shard.Every 3 ] bi
      in
      shard_parity_case topo ~dest ~m ~shards ~batching)

let test_shard_digest_stable_across_k () =
  let topo = Topology.generate_scaled scaled_small in
  let dest = Topology.size topo - 1 in
  let digest shards =
    let cfg = Shard.config_for ~shards ~workers:1 (model "RMS") in
    let r = Shard.run cfg topo ~dest in
    Alcotest.(check bool) (Printf.sprintf "K=%d converges" shards) true r.Shard.converged;
    Shard.route_digest r
  in
  let d1 = digest 1 in
  List.iter
    (fun k -> Alcotest.(check string) (Printf.sprintf "K=%d digest" k) d1 (digest k))
    [ 2; 4; 8 ]

(* ------------------------------------------------------------------ *)
(* Lossy batching: drops really happen, and never change the fixpoint *)

(* A chain where one node's best route improves within a single epoch:
   node 2 first selects the provider route via 1, announces it across the
   cut to 4, then learns the better customer route via 3 and announces
   again — two messages for the same channel in one flush, so a lossy
   config must drop the superseded one and still converge to the same
   routes as the reliable 1-shard run. *)
let lossy_topo () =
  Topology.make
    ~names:(Array.init 8 (fun i -> Printf.sprintf "a%d" i))
    ~links:
      [
        (1, 0, Topology.Provider_customer);
        (1, 2, Topology.Provider_customer);
        (3, 0, Topology.Provider_customer);
        (2, 3, Topology.Provider_customer);
        (2, 4, Topology.Provider_customer);
        (4, 5, Topology.Provider_customer);
        (5, 6, Topology.Provider_customer);
        (6, 7, Topology.Provider_customer);
      ]

let test_lossy_drops_superseded () =
  let topo = lossy_topo () in
  let dest = 0 in
  let reliable =
    Shard.run
      { Shard.default_config with shards = 1; lossy_every = 0 }
      topo ~dest
  in
  Alcotest.(check bool) "reliable converges" true reliable.Shard.converged;
  let found = ref false in
  let seed = ref 0 in
  while (not !found) && !seed < 50 do
    let r =
      Shard.run
        {
          Shard.default_config with
          shards = 2;
          batching = Shard.Per_epoch;
          lossy_every = 1;
          seed = !seed;
        }
        topo ~dest
    in
    Alcotest.(check bool)
      (Printf.sprintf "lossy converges (seed %d)" !seed)
      true r.Shard.converged;
    Alcotest.(check string)
      (Printf.sprintf "lossy fixpoint (seed %d)" !seed)
      (Shard.route_digest reliable) (Shard.route_digest r);
    if r.Shard.drops > 0 then found := true else incr seed
  done;
  Alcotest.(check bool) "some partition forces a drop" true !found

(* ------------------------------------------------------------------ *)
(* Metrics threading *)

let test_metrics_simulate () =
  let topo = Topology.generate { Topology.default_config with seed = 42 } in
  let dest = Topology.size topo - 1 in
  let m = Metrics.create () in
  let r =
    Simulate.run ~metrics:m topo ~dest ~model:(model "RMS")
      ~scheduler:Scheduler.round_robin
  in
  Alcotest.(check int) "steps counted" r.Simulate.steps (Metrics.steps m);
  Alcotest.(check int) "messages counted" r.Simulate.messages (Metrics.messages m);
  Alcotest.(check bool) "executor phase recorded" true
    (List.mem_assoc "executor" (Metrics.phases m))

let test_metrics_shard () =
  let topo = Topology.generate { Topology.default_config with seed = 42 } in
  let dest = Topology.size topo - 1 in
  let m = Metrics.create () in
  let cfg = Shard.config_for ~shards:3 ~workers:1 (model "RMS") in
  let r = Shard.run ~metrics:m cfg topo ~dest in
  Alcotest.(check int) "activations counted" r.Shard.activations (Metrics.steps m);
  Alcotest.(check int) "messages counted" r.Shard.messages (Metrics.messages m);
  Alcotest.(check bool) "shard phase recorded" true
    (List.mem_assoc "shard" (Metrics.phases m))

(* ------------------------------------------------------------------ *)
(* The algebraic route to the same instances *)

let test_labeled_graph_matches_compile () =
  List.iter
    (fun seed ->
      let topo = Topology.generate { Topology.default_config with seed } in
      let dest = Topology.size topo - 1 in
      let direct = Policy.compile topo ~dest in
      let lg = Policy.labeled_graph topo ~dest in
      let algebraic = Algebra.compile Algebra.gao_rexford lg in
      Alcotest.(check (list (of_pp Fmt.nop)))
        "algebraic instance validates" [] (Instance.validate algebraic);
      let sorted inst v = List.sort Path.compare (Instance.permitted inst v) in
      for v = 0 to Topology.size topo - 1 do
        if v <> dest then
          Alcotest.(check bool)
            (Printf.sprintf "permitted sets agree at %d (seed %d)" v seed)
            true
            (List.equal Path.equal (sorted direct v) (sorted algebraic v))
      done;
      let c = Algebra.check_conditions Algebra.gao_rexford lg in
      Alcotest.(check bool) "gao-rexford labeling is monotone" true c.Algebra.monotone)
    [ 3; 42 ]

(* ------------------------------------------------------------------ *)

let properties = List.map QCheck_alcotest.to_alcotest [ prop_shard_parity ]

let () =
  Alcotest.run "partition"
    [
      ( "scaled-topology",
        [
          Alcotest.test_case "10k golden digest" `Quick test_scaled_golden;
          Alcotest.test_case "three-tier structure" `Quick test_scaled_structure;
          Alcotest.test_case "deterministic in seed" `Quick test_scaled_deterministic;
        ] );
      ( "partition",
        [
          Alcotest.test_case "invariants" `Quick test_partition_invariants;
          Alcotest.test_case "deterministic" `Quick test_partition_deterministic;
          Alcotest.test_case "rejects bad shard counts" `Quick test_partition_rejects;
        ] );
      ( "shard",
        [
          Alcotest.test_case "parity, corner models x K" `Quick test_shard_parity_small;
          Alcotest.test_case "digest stable across K at 444 nodes" `Slow
            test_shard_digest_stable_across_k;
          Alcotest.test_case "lossy drops superseded messages" `Quick
            test_lossy_drops_superseded;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "simulate threads metrics" `Quick test_metrics_simulate;
          Alcotest.test_case "shard threads metrics" `Quick test_metrics_shard;
        ] );
      ( "algebra",
        [
          Alcotest.test_case "labeled graph compiles to the same instance" `Quick
            test_labeled_graph_matches_compile;
        ] );
      ("parity-properties", properties);
    ]
