(* State-space reduction (Modelcheck.Reduce) and its integration with the
   explorer: verdict/assignment parity of POR and the symmetry quotient
   against the exact exploration, witness replay under POR, the
   sequential-only mode guards, the disk-spilled frontier's bit-identity,
   and the occupancy-cache invariant the reduction paths must maintain. *)

open Spp
open Engine
open Modelcheck

let model s = Option.get (Model.of_string s)
let ring3 = Generator.symmetric_ring 3

(* ------------------------------------------------------------------ *)
(* Instance automorphisms: the group the symmetry quotient divides by. *)

let test_automorphism_counts () =
  let count inst = List.length (Instance.automorphisms inst) in
  (* DISAGREE: swapping the two contending nodes is the one symmetry. *)
  Alcotest.(check int) "DISAGREE" 1 (count Gadgets.disagree);
  (* k-spoke symmetric rings admit exactly the k rotations (minus id). *)
  Alcotest.(check int) "RING3" 2 (count ring3);
  Alcotest.(check int) "RING4" 3 (count (Generator.symmetric_ring 4));
  (* FIG6's preference structure is asymmetric. *)
  Alcotest.(check int) "FIG6" 0 (count Gadgets.fig6)

let test_automorphisms_are_permutations () =
  List.iter
    (fun inst ->
      let n = Instance.size inst in
      List.iter
        (fun sigma ->
          Alcotest.(check int) "arity" n (Array.length sigma);
          let seen = Array.make n false in
          Array.iter (fun v -> seen.(v) <- true) sigma;
          Alcotest.(check bool) "bijective" true (Array.for_all Fun.id seen))
        (Instance.automorphisms inst))
    [ Gadgets.disagree; ring3 ]

(* ------------------------------------------------------------------ *)
(* Parity: both reductions must preserve the oscillation verdict and the
   reachable path-assignment set.  The sym quotient only keeps one orbit
   representative per class, so its assignment set is compared after
   closing both sides under the automorphism group (mapping every
   assignment to the least element of its orbit). *)

let relabel_path sigma p =
  if Path.is_epsilon p then p
  else Path.of_nodes (List.map (fun v -> sigma.(v)) (Path.to_nodes p))

let relabel_assignment inst sigma a =
  Assignment.of_list inst
    (List.map (fun (v, p) -> (sigma.(v), relabel_path sigma p)) (Assignment.to_list a))

let canon_assignment inst autos a =
  List.fold_left
    (fun best sigma ->
      let b = relabel_assignment inst sigma a in
      if Assignment.compare b best < 0 then b else best)
    a autos

let assignment_set ?canon inst (g : Explore.graph) =
  let canon = Option.value canon ~default:Fun.id in
  Array.to_list g.Explore.states
  |> List.map (fun st -> canon (State.assignment inst st))
  |> List.sort_uniq Assignment.compare

(* Checks one (instance, model, reduction) against the exact run.  Only
   clean unreduced explorations are compared: under truncation the kept
   subset is schedule-dependent, and when the exact run pruned a write the
   reduced run may legitimately reach a *stronger* verdict — POR's
   representative executions drain messages eagerly, so they can stay
   inside a channel bound the original schedule exceeded (DESIGN.md).
   When the exact run does report a pruning-proof oscillation under POR,
   the witness-replay test below still covers the reduced verdict. *)
let check_parity name inst ~config m reduction =
  let exact = Explore.explore ~config ~domains:1 inst m in
  let reduced = Explore.explore ~config ~reduction ~domains:1 inst m in
  let tag =
    Printf.sprintf "%s/%s/%s" name (Model.to_string m) (Reduce.to_string reduction)
  in
  let verdict g = Oscillation.verdict_name (Oscillation.analyze_graph inst g) in
  if (not exact.Explore.pruned) && not exact.Explore.truncated then begin
    Alcotest.(check string) (tag ^ " verdict") (verdict exact) (verdict reduced);
    Alcotest.(check bool)
      (tag ^ " reduced is no larger") true
      (Array.length reduced.Explore.states <= Array.length exact.Explore.states);
    Alcotest.(check bool) (tag ^ " clean flags") false
      (reduced.Explore.pruned || reduced.Explore.truncated);
    let canon =
      match reduction with
      | Reduce.Sym ->
        let autos = Instance.automorphisms inst in
        Some (canon_assignment inst autos)
      | _ -> None
    in
    let ea = assignment_set ?canon inst exact
    and ra = assignment_set ?canon inst reduced in
    Alcotest.(check int) (tag ^ " assignment set size") (List.length ea)
      (List.length ra);
    Alcotest.(check bool) (tag ^ " assignment sets equal") true
      (List.equal (fun a b -> Assignment.compare a b = 0) ea ra)
  end

let test_parity_gadgets () =
  (* DISAGREE runs at the default bound; RING3's unreliable-model spaces
     grow quickly with the bound, and bound 3 already exercises multi-slot
     channels, nontrivial orbits and the ample drain conditions. *)
  List.iter
    (fun (name, inst, config) ->
      List.iter
        (fun m ->
          List.iter
            (check_parity name inst ~config m)
            [ Reduce.Por; Reduce.Sym ])
        Model.all)
    [
      ("DISAGREE", Gadgets.disagree, Explore.default_config);
      ("RING3", ring3, { Explore.channel_bound = 3; max_states = 100_000 });
    ]

let prop_parity_generated =
  QCheck2.Test.make ~name:"reductions preserve verdict and assignments" ~count:4
    QCheck2.Gen.(int_range 0 9_999)
    (fun seed ->
      let inst =
        Generator.instance
          { Generator.default with nodes = 4; seed; extra_edges = 1; max_paths_per_node = 2 }
      in
      let config = { Explore.channel_bound = 2; max_states = 20_000 } in
      List.iter
        (fun m ->
          List.iter
            (check_parity (Printf.sprintf "GEN%d" seed) inst ~config m)
            [ Reduce.Por; Reduce.Sym ])
        Model.all;
      true)

(* POR prunes schedules, never states a witness needs: every oscillation
   witness found through an ample-reduced graph must replay concretely.
   (Sym witnesses are only valid up to relabeling — that contract lives in
   Oscillation's docs and Conformance rejects sym for exactly this reason.) *)
let test_por_witness_replays () =
  List.iter
    (fun (name, inst) ->
      List.iter
        (fun m ->
          match Oscillation.analyze ~reduction:Reduce.Por ~domains:1 inst m with
          | Oscillation.Oscillates w ->
            Alcotest.(check bool)
              (Printf.sprintf "%s/%s witness replays" name (Model.to_string m))
              true
              (Oscillation.verify_witness inst m w)
          | _ -> ())
        Model.all)
    [ ("DISAGREE", Gadgets.disagree); ("RING3", ring3) ]

(* The ample-set counter only moves under POR, and POR actually reduces
   the deep FIG6-class spaces (the acceptance bar for the bench gate is
   checked there against real wall-clock runs; here a cheaper case pins
   the mechanism). *)
let test_por_reduces_ring3 () =
  let m = model "UMS" in
  let count red =
    let metrics = Metrics.create () in
    let g = Explore.explore ~reduction:red ~domains:1 ~metrics ring3 m in
    (Array.length g.Explore.states, metrics)
  in
  let exact, m_exact = count Reduce.No_reduction in
  let reduced, m_por = count Reduce.Por in
  Alcotest.(check int) "no ample states without POR" 0 (Metrics.ample_states m_exact);
  Alcotest.(check bool) "POR expands some ample subsets" true
    (Metrics.ample_states m_por > 0);
  Alcotest.(check bool)
    (Printf.sprintf "POR shrinks RING3/UMS (%d -> %d)" exact reduced)
    true
    (reduced * 2 <= exact)

let test_sym_quotients_ring3 () =
  let m = model "R1O" in
  let metrics = Metrics.create () in
  let exact = Explore.explore ~domains:1 ring3 m in
  let reduced = Explore.explore ~reduction:Reduce.Sym ~domains:1 ~metrics ring3 m in
  Alcotest.(check bool) "some interns canonicalized" true
    (Metrics.canonicalized metrics > 0);
  Alcotest.(check bool)
    (Printf.sprintf "sym shrinks RING3/R1O (%d -> %d)"
       (Array.length exact.Explore.states)
       (Array.length reduced.Explore.states))
    true
    (Array.length reduced.Explore.states * 2 <= Array.length exact.Explore.states)

(* ------------------------------------------------------------------ *)
(* Sequential-only guards (checkpoint/resume and the spilled frontier):
   explicit parallelism is a typed error, environment-implied parallelism
   is a recorded downgrade. *)

let with_tmpdir f =
  let dir = Filename.temp_file "reduce_test" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      let rec rm p =
        if Sys.is_directory p then begin
          Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
          Unix.rmdir p
        end
        else Sys.remove p
      in
      if Sys.file_exists dir then rm dir)
    (fun () -> f dir)

let invalid_arg_raised f =
  match f () with _ -> false | exception Invalid_argument _ -> true

let test_explicit_domains_rejected () =
  let inst = Gadgets.disagree in
  let m = model "UMS" in
  with_tmpdir (fun dir ->
      let ckpt = { Explore.path = Filename.concat dir "snap"; every = 5 } in
      Alcotest.(check bool) "domains>1 + checkpoint" true
        (invalid_arg_raised (fun () ->
             Explore.explore ~domains:3 ~checkpoint:ckpt inst m));
      let fs = { Explore.dir = Filename.concat dir "spool"; chunk = 4 } in
      Alcotest.(check bool) "domains>1 + frontier_spill" true
        (invalid_arg_raised (fun () ->
             Explore.explore ~domains:3 ~frontier_spill:fs inst m));
      Alcotest.(check bool) "sym + checkpoint" true
        (invalid_arg_raised (fun () ->
             Explore.explore ~reduction:Reduce.Sym ~checkpoint:ckpt inst m));
      Alcotest.(check bool) "frontier_spill + checkpoint" true
        (invalid_arg_raised (fun () ->
             Explore.explore ~frontier_spill:fs ~checkpoint:ckpt inst m)))

let test_env_domains_downgraded () =
  let inst = Gadgets.disagree in
  let m = model "UMS" in
  let saved = Sys.getenv_opt "DOMAINS" in
  Unix.putenv "DOMAINS" "3";
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "DOMAINS" (Option.value saved ~default:""))
    (fun () ->
      with_tmpdir (fun dir ->
          let metrics = Metrics.create () in
          let ckpt = { Explore.path = Filename.concat dir "snap"; every = 5 } in
          let g = Explore.explore ~metrics ~checkpoint:ckpt inst m in
          Alcotest.(check int) "explored fully" 39 (Array.length g.Explore.states);
          Alcotest.(check int) "ran on one domain" 1 (Metrics.domains metrics);
          match Metrics.downgrade metrics with
          | Some why ->
            Alcotest.(check bool) "downgrade names the env request" true
              (String.length why > 0)
          | None -> Alcotest.fail "env-implied parallelism downgrade not recorded"))

(* ------------------------------------------------------------------ *)
(* Checkpoint/resume under POR: the snapshot records the reduction, a
   resumed run continues it, and a mismatched resume is refused. *)

let test_checkpoint_records_reduction () =
  let inst = ring3 in
  let m = model "UMS" in
  with_tmpdir (fun dir ->
      let path = Filename.concat dir "snap" in
      let ckpt = { Explore.path; every = 50 } in
      let g =
        Explore.explore ~reduction:Reduce.Por ~domains:1 ~checkpoint:ckpt inst m
      in
      Alcotest.(check bool) "checkpoint file written" true (Sys.file_exists path);
      let snap =
        match Snapshot.load ~path inst with
        | Ok s -> s
        | Error e -> Alcotest.failf "snapshot load: %s" (Snapshot.error_to_string e)
      in
      Alcotest.(check string) "snapshot records por" "por" snap.Snapshot.reduction;
      Alcotest.(check bool) "resume under another reduction refused" true
        (invalid_arg_raised (fun () -> Explore.explore ~domains:1 ~resume:snap inst m));
      let resumed =
        Explore.explore ~reduction:Reduce.Por ~domains:1 ~resume:snap inst m
      in
      Alcotest.(check int) "resumed run reaches the same graph"
        (Array.length g.Explore.states)
        (Array.length resumed.Explore.states))

(* ------------------------------------------------------------------ *)
(* Disk-spilled frontier: bit-identical graph, chunks consumed. *)

let test_frontier_spill_bit_identical () =
  let inst = ring3 in
  let m = model "UMS" in
  with_tmpdir (fun dir ->
      let spool = Filename.concat dir "spool" in
      let plain = Explore.explore ~domains:1 inst m in
      let spilled =
        Explore.explore ~domains:1
          ~frontier_spill:{ Explore.dir = spool; chunk = 7 }
          inst m
      in
      Alcotest.(check int) "state count"
        (Array.length plain.Explore.states)
        (Array.length spilled.Explore.states);
      Array.iteri
        (fun i st ->
          if not (State.equal st spilled.Explore.states.(i)) then
            Alcotest.failf "state %d differs: spill changed the BFS order" i)
        plain.Explore.states;
      Alcotest.(check bool) "adjacency identical" true
        (plain.Explore.adjacency = spilled.Explore.adjacency);
      Alcotest.(check bool) "flags identical" true
        (plain.Explore.pruned = spilled.Explore.pruned
        && plain.Explore.truncated = spilled.Explore.truncated);
      Alcotest.(check (array string)) "all chunk files consumed" [||]
        (Sys.readdir spool))

let test_frontier_chunk_roundtrip () =
  let inst = ring3 in
  let m = model "UMS" in
  let g = Explore.explore ~domains:1 inst m in
  let items =
    List.filteri (fun i _ -> i < 9) (Array.to_list g.Explore.states)
    |> List.mapi (fun i st -> (i * 3, st))
  in
  with_tmpdir (fun dir ->
      let path = Filename.concat dir "chunk" in
      Snapshot.save_chunk ~path inst items;
      (match Snapshot.load_chunk ~path inst with
      | Error e -> Alcotest.failf "load_chunk: %s" (Snapshot.error_to_string e)
      | Ok loaded ->
        Alcotest.(check int) "item count" (List.length items) (List.length loaded);
        List.iter2
          (fun (i, st) (j, st') ->
            Alcotest.(check int) "frontier index" i j;
            Alcotest.(check bool) "state round-trips" true (State.equal st st'))
          items loaded);
      (* A corrupted chunk must be detected, not half-loaded. *)
      let text = In_channel.with_open_bin path In_channel.input_all in
      let broken = Bytes.of_string text in
      Bytes.set broken (Bytes.length broken / 2) '\xff';
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_bytes oc broken);
      match Snapshot.load_chunk ~path inst with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "corrupted chunk loaded successfully")

(* ------------------------------------------------------------------ *)
(* S2: the cached max-occupancy must survive every mutator, including the
   relabeling the symmetry quotient applies to freshly generated states. *)

let prop_occupancy_cache_exact =
  QCheck2.Test.make ~name:"max_occupancy cache survives mutators and relabeling"
    ~count:30
    QCheck2.Gen.(pair (int_range 0 9_999) (int_range 1 40))
    (fun (seed, steps) ->
      let inst = ring3 in
      let m = model "UMS" in
      let autos = Instance.automorphisms inst in
      let sched = Scheduler.random inst m ~seed in
      let entries = Scheduler.prefix steps sched in
      let final =
        List.fold_left
          (fun st entry ->
            let st = (Step.apply inst st entry).Step.state in
            if not (State.debug_occupancy_ok st) then
              QCheck2.Test.fail_report "stale occupancy after a step";
            List.iter
              (fun sigma ->
                if not (State.debug_occupancy_ok (Reduce.relabel inst sigma st))
                then QCheck2.Test.fail_report "stale occupancy after relabel")
              autos;
            st)
          (State.initial inst) entries
      in
      (* Direct channel surgery on the final state: push and drop keep the
         cache exact too. *)
      (match State.rho_bindings_id final with
      | (cid, pid) :: _ ->
        let pushed = State.push_channel final cid pid in
        if not (State.debug_occupancy_ok pushed) then
          QCheck2.Test.fail_report "stale occupancy after push_channel";
        let dropped = State.drop_first_channel pushed cid 1 in
        if not (State.debug_occupancy_ok dropped) then
          QCheck2.Test.fail_report "stale occupancy after drop_first_channel"
      | [] -> ());
      true)

let () =
  Alcotest.run "reduce"
    [
      ( "automorphisms",
        [
          Alcotest.test_case "counts" `Quick test_automorphism_counts;
          Alcotest.test_case "are permutations" `Quick
            test_automorphisms_are_permutations;
        ] );
      ( "parity",
        Alcotest.test_case "gadgets, 24 models" `Slow test_parity_gadgets
        :: Alcotest.test_case "POR witnesses replay" `Quick test_por_witness_replays
        :: Alcotest.test_case "POR reduces RING3" `Quick test_por_reduces_ring3
        :: Alcotest.test_case "sym quotients RING3" `Quick test_sym_quotients_ring3
        :: List.map QCheck_alcotest.to_alcotest [ prop_parity_generated ] );
      ( "sequential-only guards",
        [
          Alcotest.test_case "explicit domains rejected" `Quick
            test_explicit_domains_rejected;
          Alcotest.test_case "env domains downgraded" `Quick
            test_env_domains_downgraded;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "snapshot records reduction" `Quick
            test_checkpoint_records_reduction;
        ] );
      ( "frontier spill",
        [
          Alcotest.test_case "bit-identical graph" `Quick
            test_frontier_spill_bit_identical;
          Alcotest.test_case "chunk round-trip and corruption" `Quick
            test_frontier_chunk_roundtrip;
        ] );
      ( "occupancy cache",
        List.map QCheck_alcotest.to_alcotest [ prop_occupancy_cache_exact ] );
    ]
