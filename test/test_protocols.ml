(* The protocol-generic engine core (Engine.Generic / Modelcheck.Gexplore)
   and the three shipped protocols.

   The heart of the suite is parity: [Gexplore.Make (Path_vector)] must
   reproduce the legacy explorer bit-for-bit — same state counts, same
   verdicts (including Unknown reasons), same pruned/truncated flags — on
   the paper's gadgets across all 24 models, including the Fig. 6 deep
   polling cases at the default config.  Around it: gossip's infected-set
   monotonicity and its clean R-converges/U-diverges split with verified
   witnesses, push-sum's mass conservation under every reliable model and
   exact drop reconciliation under the unreliable ones, and the generic
   validators/schedulers/timed wrapper. *)

open Spp
open Engine
open Modelcheck
module GPV = Gexplore.Make (Protocols.Path_vector)
module GG = Gexplore.Make (Protocols.Gossip)
module EG = GG.E
module EPS = Generic.Make (Protocols.Pushsum)

let model s = Option.get (Model.of_string s)

(* ------------------------------------------------------------------ *)
(* Path-vector parity against the legacy explorer. *)

let legacy_verdict inst g = Oscillation.analyze_graph inst g

let legacy_name = function
  | Oscillation.Oscillates _ -> "diverges"
  | Oscillation.Converges -> "converges"
  | Oscillation.Unknown r -> "unknown: " ^ r

let generic_name = function
  | GPV.Diverges _ -> "diverges"
  | GPV.Converges -> "converges"
  | GPV.Unknown r -> "unknown: " ^ r

let check_parity name inst config m =
  let tag = Printf.sprintf "%s/%s" name (Model.to_string m) in
  let lg = Explore.explore ~config ~domains:1 inst m in
  let gg = GPV.explore ~config inst m in
  Alcotest.(check int)
    (tag ^ " states")
    (Array.length lg.Explore.states)
    (Array.length gg.GPV.states);
  Alcotest.(check bool) (tag ^ " pruned") lg.Explore.pruned gg.GPV.pruned;
  Alcotest.(check bool) (tag ^ " truncated") lg.Explore.truncated gg.GPV.truncated;
  Alcotest.(check string)
    (tag ^ " verdict")
    (legacy_name (legacy_verdict inst lg))
    (generic_name (GPV.analyze_graph inst gg))

let test_pv_parity_disagree () =
  List.iter (check_parity "DISAGREE" Gadgets.disagree Explore.default_config) Model.all

let test_pv_parity_fig6_bounded () =
  let config = { Explore.channel_bound = 2; max_states = 800 } in
  List.iter (check_parity "FIG6" Gadgets.fig6 config) Model.all

(* The Fig. 6 deep polling cases of the bench, at the default config. *)
let test_pv_parity_fig6_deep () =
  List.iter
    (fun m -> check_parity "FIG6" Gadgets.fig6 Explore.default_config (model m))
    [ "R1A"; "RMA" ]

let test_pv_witness_verifies () =
  List.iter
    (fun mname ->
      let m = model mname in
      match GPV.analyze Gadgets.disagree m with
      | GPV.Diverges w ->
        Alcotest.(check bool)
          (mname ^ " witness replays")
          true
          (GPV.verify_witness Gadgets.disagree m w)
      | v -> Alcotest.failf "DISAGREE %s: expected divergence, got %s" mname (generic_name v))
    [ "R1O"; "RMS"; "U1S" ]

(* The generic executor agrees with the legacy one on identical round-robin
   schedules (the generic cycle mirrors Scheduler.round_robin exactly). *)
let test_pv_executor_matches_legacy () =
  List.iter
    (fun inst ->
      List.iter
        (fun mname ->
          let m = model mname in
          let legacy = Executor.run ~max_steps:2000 inst (Scheduler.round_robin inst m) in
          let generic =
            GPV.E.Executor.run ~max_steps:2000 inst (GPV.E.round_robin inst m)
          in
          let l_conv = legacy.Executor.stop = Executor.Quiescent in
          let g_conv = generic.GPV.E.Executor.stop = GPV.E.Executor.Converged in
          Alcotest.(check bool) (mname ^ " converged") l_conv g_conv)
        [ "R1O"; "REA"; "RMS"; "UMS" ])
    [ Gadgets.disagree; Gadgets.good_gadget; Gadgets.shortest_paths ~n:4 ]

(* ------------------------------------------------------------------ *)
(* Gossip. *)

let gossip_config = { Explore.channel_bound = 2; max_states = 2000 }

let infected_set inst st =
  List.filter
    (fun v -> (EG.State.local st v).Protocols.Gossip.infected)
    (Protocols.Gossip.nodes inst)

let subset a b = List.for_all (fun x -> List.mem x b) a

(* Infected sets only grow along any explored edge. *)
let gossip_monotone =
  QCheck2.Test.make ~name:"gossip infected set is monotone" ~count:40
    QCheck2.Gen.(
      quad (int_range 0 2) (int_range 3 5) (int_range 0 23) (int_range 0 5))
    (fun (kind, n, mi, src) ->
      let topo =
        match kind with
        | 0 -> Protocols.Topo.ring n
        | 1 -> Protocols.Topo.star n
        | _ -> Protocols.Topo.complete n
      in
      let inst = Protocols.Gossip.make ~source:(src mod n) topo in
      let m = List.nth Model.all mi in
      let g = GG.explore ~config:gossip_config inst m in
      Array.for_all
        (fun i ->
          let from = infected_set inst g.GG.states.(i) in
          List.for_all
            (fun (e : GG.edge) -> subset from (infected_set inst g.GG.states.(e.GG.dst)))
            g.GG.adjacency.(i))
        (Array.init (Array.length g.GG.states) Fun.id))

(* Reliable models can never lose the rumor: every fair schedule converges.
   Unreliable models can drop every copy: divergence, with a witness the
   executor replays.  (The witness replay IS the executor/explorer
   agreement check on the divergent side; on the convergent side the
   canonical fair schedule must reach the verdict's promised fixpoint.) *)
let test_gossip_verdicts () =
  let inst = Protocols.Gossip.make (Protocols.Topo.ring 4) in
  List.iter
    (fun (m : Model.t) ->
      let v = GG.analyze ~config:gossip_config inst m in
      match (m.Model.rel, v) with
      | Model.Reliable, GG.Converges ->
        Alcotest.(check bool)
          (Model.to_string m ^ " round robin converges")
          true
          (EG.Executor.converges ~max_steps:2000 inst (EG.round_robin inst m))
      | Model.Unreliable, GG.Diverges w ->
        Alcotest.(check bool)
          (Model.to_string m ^ " witness replays")
          true (GG.verify_witness inst m w)
      | _, v ->
        Alcotest.failf "gossip %s: unexpected verdict %s" (Model.to_string m)
          (GG.verdict_name v))
    Model.all

(* A deterministic stuck run: announce, drop both rumor copies, then spin a
   fair dropless cycle — the generic executor must detect the state/phase
   cycle, and the state must not count as converged. *)
let test_gossip_cycle_detected () =
  let inst = Protocols.Gossip.make (Protocols.Topo.ring 3) in
  let m = model "UEA" in
  let prefix =
    [
      Activation.single 0 [];
      Activation.single 1 [ Activation.read ~drops:[ 1 ] (Channel.id ~src:0 ~dst:1) ];
      Activation.single 2 [ Activation.read ~drops:[ 1 ] (Channel.id ~src:0 ~dst:2) ];
    ]
  in
  let sched = Scheduler.prefixed prefix (EG.round_robin_cycle inst m) in
  let run = EG.Executor.run ~max_steps:200 inst sched in
  (match run.EG.Executor.stop with
  | EG.Executor.Cycle _ -> ()
  | s -> Alcotest.failf "expected a cycle, got %a" EG.Executor.pp_stop s);
  Alcotest.(check bool)
    "stuck state is not converged" false
    (EG.State.converged inst run.EG.Executor.final)

let test_gossip_timed () =
  let inst = Protocols.Gossip.make (Protocols.Topo.star 5) in
  List.iter
    (fun (i, (r : EG.Timed.result)) ->
      Alcotest.(check bool) (Printf.sprintf "mrai=%d converged" i) true r.EG.Timed.converged)
    (EG.Timed.mrai_sweep ~intervals:[ 1; 2; 4 ] inst)

(* ------------------------------------------------------------------ *)
(* Push-sum: mass conservation and drop reconciliation. *)

let ps_mass inst st =
  List.fold_left
    (fun acc v -> acc +. (EPS.State.local st v).Protocols.Pushsum.s)
    0.
    (Protocols.Pushsum.nodes inst)
  +. List.fold_left
       (fun acc (_, msgs) ->
         List.fold_left (fun a m -> a +. fst (Protocols.Pushsum.payload m)) acc msgs)
       0.
       (EPS.State.channel_bindings st)

let dropped_mass (r : EPS.Executor.step_record) =
  List.fold_left
    (fun acc (_, msgs) ->
      List.fold_left (fun a m -> a +. fst (Protocols.Pushsum.payload m)) acc msgs)
    0. r.EPS.Executor.outcome.EPS.Step.dropped

(* Total mass (locals + in-flight) is invariant under every reliable model,
   at every step of the run, up to float rounding. *)
let test_pushsum_mass_reliable () =
  let inst = Protocols.Pushsum.linear (Protocols.Topo.ring 4) in
  let initial = ps_mass inst (EPS.State.initial inst) in
  List.iter
    (fun (m : Model.t) ->
      let worst = ref 0. in
      let run =
        EPS.Executor.run ~max_steps:500
          ~on_step:(fun r ->
            let dev =
              Float.abs (ps_mass inst r.EPS.Executor.outcome.EPS.Step.state -. initial)
            in
            if dev > !worst then worst := dev)
          inst (EPS.round_robin inst m)
      in
      ignore run;
      Alcotest.(check bool)
        (Model.to_string m ^ " conserves mass")
        true
        (!worst <= 1e-9 *. Float.abs initial))
    Model.reliable

(* Under unreliable models the deficit is exactly the dropped messages'
   mass: final mass + dropped mass = initial mass. *)
let test_pushsum_drop_reconciliation () =
  let inst = Protocols.Pushsum.linear (Protocols.Topo.ring 4) in
  let initial = ps_mass inst (EPS.State.initial inst) in
  List.iter
    (fun (m : Model.t) ->
      List.iter
        (fun every ->
          let dropped = ref 0. in
          let run =
            EPS.Executor.run ~max_steps:500
              ~on_step:(fun r -> dropped := !dropped +. dropped_mass r)
              inst
              (EPS.round_robin_lossy ~every inst m)
          in
          let final = ps_mass inst run.EPS.Executor.final in
          Alcotest.(check bool)
            (Printf.sprintf "%s every=%d reconciles" (Model.to_string m) every)
            true
            (Float.abs (final +. !dropped -. initial) <= 1e-9 *. Float.abs initial))
        [ 2; 5 ])
    Model.unreliable

(* Estimates actually reach the true average under the reliable polling
   round robin. *)
let test_pushsum_converges () =
  let inst = Protocols.Pushsum.linear ~eps:1e-3 (Protocols.Topo.ring 5) in
  let run = EPS.Executor.run ~max_steps:5000 inst (EPS.round_robin inst (model "REA")) in
  (match run.EPS.Executor.stop with
  | EPS.Executor.Converged -> ()
  | s -> Alcotest.failf "push-sum REA: expected convergence, got %a" EPS.Executor.pp_stop s);
  let avg = Protocols.Pushsum.average inst in
  List.iter
    (fun v ->
      let l = EPS.State.local run.EPS.Executor.final v in
      Alcotest.(check bool)
        (Printf.sprintf "node %d estimate" v)
        true
        (Float.abs ((l.Protocols.Pushsum.s /. l.Protocols.Pushsum.w) -. avg) <= 1e-3))
    (Protocols.Pushsum.nodes inst)

(* Mass lost to drops persists: a lossy run's estimates can settle, but its
   total mass is strictly below the initial (the bench reports this rather
   than hiding it). *)
let test_pushsum_lossy_loses_mass () =
  let inst = Protocols.Pushsum.linear (Protocols.Topo.ring 4) in
  let initial = ps_mass inst (EPS.State.initial inst) in
  let run =
    EPS.Executor.run ~max_steps:500 inst
      (EPS.round_robin_lossy ~every:3 inst (model "UEA"))
  in
  Alcotest.(check bool)
    "drops counted" true
    (run.EPS.Executor.drops > 0);
  Alcotest.(check bool)
    "mass strictly lost" true
    (ps_mass inst run.EPS.Executor.final < initial -. 1e-6)

(* ------------------------------------------------------------------ *)
(* Generic validators and schedulers. *)

let test_generic_round_robin_validates () =
  let inst = Protocols.Gossip.make (Protocols.Topo.ring 3) in
  List.iter
    (fun m ->
      let sched = EG.round_robin inst m in
      let entries =
        Scheduler.prefix (Option.get sched.Scheduler.period) sched
      in
      Alcotest.(check bool)
        (Model.to_string m ^ " round robin validates")
        true
        (List.for_all (EG.validates inst m) entries))
    Model.all

let test_generic_lossy_validates_unreliable_only () =
  let inst = Protocols.Gossip.make (Protocols.Topo.ring 3) in
  let uma = model "UMA" and rma = model "RMA" in
  let sched = EG.round_robin_lossy ~every:2 inst uma in
  let entries = Scheduler.prefix (Option.get sched.Scheduler.period) sched in
  Alcotest.(check bool)
    "lossy validates under UMA" true
    (List.for_all (EG.validates inst uma) entries);
  Alcotest.(check bool)
    "some lossy entry violates RMA" true
    (List.exists (fun e -> not (EG.validates inst rma e)) entries);
  Alcotest.check_raises "lossy refuses reliable models"
    (Invalid_argument "Generic.round_robin_lossy: drops require an unreliable model")
    (fun () -> ignore (EG.round_robin_lossy ~every:2 inst rma))

let test_generic_synchronous_validates_multi () =
  let inst = Protocols.Gossip.make (Protocols.Topo.ring 3) in
  let m = model "REA" in
  let sched = EG.synchronous inst m in
  let entries = Scheduler.prefix 1 sched in
  Alcotest.(check bool)
    "synchronous validates (multi)" true
    (List.for_all (EG.validates_multi inst m) entries);
  Alcotest.(check bool)
    "synchronous is not single-node valid" true
    (List.exists (fun e -> not (EG.validates inst m e)) entries);
  let run = EG.Executor.run ~max_steps:50 inst sched in
  Alcotest.(check bool)
    "synchronous gossip converges" true
    (run.EG.Executor.stop = EG.Executor.Converged)

(* Per-node model mixtures, the generic counterpart of Engine.Hetero. *)
let test_generic_hetero_model_of () =
  let inst = Protocols.Gossip.make (Protocols.Topo.ring 3) in
  let model_of v = if v = 0 then model "R1O" else model "REA" in
  let sched = EG.round_robin ~model_of inst (model "REA") in
  let entries = Scheduler.prefix (Option.get sched.Scheduler.period) sched in
  Alcotest.(check bool)
    "heterogeneous cycle validates per node" true
    (List.for_all (EG.validates ~model_of inst (model "REA")) entries);
  let run = EG.Executor.run ~max_steps:200 inst sched in
  Alcotest.(check bool)
    "heterogeneous gossip converges" true
    (run.EG.Executor.stop = EG.Executor.Converged)

let test_generic_well_formed () =
  let inst = Protocols.Gossip.make (Protocols.Topo.ring 3) in
  let bogus = Channel.id ~src:0 ~dst:2 in
  (* 0 and 2 are ring neighbors; (0,2) is a real channel, (1,0) read by a
     non-active node and an unknown (3,0) channel are not well-formed. *)
  let e1 = Activation.single 2 [ Activation.read bogus ] in
  Alcotest.(check bool) "adjacent channel ok" true (EG.well_formed inst e1 = []);
  let e2 = Activation.single 2 [ Activation.read (Channel.id ~src:1 ~dst:0) ] in
  Alcotest.(check bool) "reader not active" true (EG.well_formed inst e2 <> []);
  let e3 = Activation.single 0 [ Activation.read (Channel.id ~src:3 ~dst:0) ] in
  Alcotest.(check bool) "unknown channel" true (EG.well_formed inst e3 <> [])

let () =
  Alcotest.run "protocols"
    [
      ( "pv-parity",
        [
          Alcotest.test_case "DISAGREE all 24" `Quick test_pv_parity_disagree;
          Alcotest.test_case "FIG6 all 24 (bounded)" `Quick test_pv_parity_fig6_bounded;
          Alcotest.test_case "FIG6 R1A/RMA deep" `Slow test_pv_parity_fig6_deep;
          Alcotest.test_case "witness replay" `Quick test_pv_witness_verifies;
          Alcotest.test_case "executor agreement" `Quick test_pv_executor_matches_legacy;
        ] );
      ( "gossip",
        [
          QCheck_alcotest.to_alcotest gossip_monotone;
          Alcotest.test_case "R converges / U diverges" `Quick test_gossip_verdicts;
          Alcotest.test_case "stuck cycle detected" `Quick test_gossip_cycle_detected;
          Alcotest.test_case "timed MRAI sweep" `Quick test_gossip_timed;
        ] );
      ( "push-sum",
        [
          Alcotest.test_case "mass conserved (R)" `Quick test_pushsum_mass_reliable;
          Alcotest.test_case "drops reconciled (U)" `Quick test_pushsum_drop_reconciliation;
          Alcotest.test_case "REA reaches the average" `Quick test_pushsum_converges;
          Alcotest.test_case "lossy loses mass" `Quick test_pushsum_lossy_loses_mass;
        ] );
      ( "generic",
        [
          Alcotest.test_case "round robin validates" `Quick test_generic_round_robin_validates;
          Alcotest.test_case "lossy model gating" `Quick
            test_generic_lossy_validates_unreliable_only;
          Alcotest.test_case "synchronous multi" `Quick test_generic_synchronous_validates_multi;
          Alcotest.test_case "per-node models" `Quick test_generic_hetero_model_of;
          Alcotest.test_case "well-formedness" `Quick test_generic_well_formed;
        ] );
    ]
