(* Tests for the realization theory: sequence-relation checkers, the
   constructive transforms of Sec. 3.2, the fact base, and the closure
   engine that regenerates Figures 3 and 4. *)

open Spp
open Engine
open Realization

let model s =
  match Model.of_string s with Some m -> m | None -> Alcotest.failf "bad model %s" s

(* ------------------------------------------------------------------ *)
(* Seqcheck *)

let assignments inst specs =
  List.map
    (fun spec ->
      Assignment.of_list inst
        (List.map (fun (c, p) -> (Gadgets.node inst c, Gadgets.path inst p)) spec))
    specs

let test_seqcheck_exact () =
  let inst = Gadgets.disagree in
  let a = assignments inst [ [ ('x', "xd") ]; [ ('x', "xyd") ] ] in
  let b = assignments inst [ [ ('x', "xd") ]; [ ('x', "xyd") ] ] in
  Alcotest.(check bool) "equal" true (Seqcheck.is_exact ~original:a ~realized:b);
  Alcotest.(check bool) "prefix not exact" false
    (Seqcheck.is_exact ~original:a ~realized:(List.tl b))

let test_seqcheck_repetition () =
  let inst = Gadgets.disagree in
  let s1 = assignments inst [ [ ('x', "xd") ] ] in
  let s2 = assignments inst [ [ ('x', "xyd") ] ] in
  let orig = s1 @ s2 in
  let realized = s1 @ s1 @ s1 @ s2 @ s2 in
  Alcotest.(check bool) "expansion ok" true
    (Seqcheck.is_repetition ~original:orig ~realized);
  Alcotest.(check bool) "reordering rejected" false
    (Seqcheck.is_repetition ~original:orig ~realized:(s2 @ s1));
  Alcotest.(check bool) "insertion rejected" false
    (Seqcheck.is_repetition ~original:orig ~realized:(s1 @ s2 @ s1));
  (* Ambiguous blocks: original has two equal consecutive elements. *)
  let orig2 = s1 @ s1 @ s2 in
  Alcotest.(check bool) "ambiguous blocks" true
    (Seqcheck.is_repetition ~original:orig2 ~realized:(s1 @ s1 @ s1 @ s2));
  Alcotest.(check bool) "missing tail rejected" false
    (Seqcheck.is_repetition ~original:orig ~realized:s1)

let test_seqcheck_subsequence () =
  let inst = Gadgets.disagree in
  let s1 = assignments inst [ [ ('x', "xd") ] ] in
  let s2 = assignments inst [ [ ('x', "xyd") ] ] in
  let s3 = assignments inst [ [ ('y', "yd") ] ] in
  Alcotest.(check bool) "subsequence ok" true
    (Seqcheck.is_subsequence ~original:(s1 @ s2) ~realized:(s1 @ s3 @ s2));
  Alcotest.(check bool) "order matters" false
    (Seqcheck.is_subsequence ~original:(s2 @ s1) ~realized:(s1 @ s3 @ s2));
  Alcotest.(check bool) "empty original" true
    (Seqcheck.is_subsequence ~original:[] ~realized:s1)

(* ------------------------------------------------------------------ *)
(* Closure vs. the paper's tables *)

let closure = lazy (Closure.derive_exn ())

let test_closure_no_contradiction () =
  let c = Lazy.force closure in
  List.iter
    (fun (_, _, cell) ->
      Alcotest.(check bool) "proven < disproven" true
        (cell.Closure.proven < cell.Closure.disproven))
    (Closure.cells c)

let test_closure_matches_paper () =
  let c = Lazy.force closure in
  let t = Paper_tables.tally c in
  Alcotest.(check int) "no contradictions" 0
    (List.assoc Paper_tables.Contradiction t);
  Alcotest.(check int) "never weaker than the paper" 0
    (List.assoc Paper_tables.Weaker t);
  Alcotest.(check int) "548 of 552 cells match exactly" 548
    (List.assoc Paper_tables.Match t)

let test_closure_known_refinements () =
  (* The four cells where transitivity sharpens the published table: the
     upper bounds on R1O/RMO realizing U1O/UMO drop to "subsequence",
     because realizing them with repetition would transport Prop. 3.11
     through U1O >=3 REA. *)
  let c = Lazy.force closure in
  let stronger =
    List.filter_map
      (fun (a, b, _, _, v) ->
        if v = Paper_tables.Stronger then Some (Model.to_string a, Model.to_string b)
        else None)
      (Paper_tables.diff c)
  in
  Alcotest.(check (list (pair string string)))
    "refined cells"
    [ ("U1O", "R1O"); ("U1O", "RMO"); ("UMO", "R1O"); ("UMO", "RMO") ]
    (List.sort compare stronger)

let test_closure_headline_facts () =
  let c = Lazy.force closure in
  let cell a b = Closure.cell c ~realized:(model a) ~realizer:(model b) in
  (* "UMS is able to exactly realize all models" (Sec. 3.5) *)
  List.iter
    (fun a ->
      if not (Model.equal a (model "UMS")) then
        Alcotest.(check int)
          ("UMS exactly realizes " ^ Model.to_string a)
          4
          (Closure.cell c ~realized:a ~realizer:(model "UMS")).Closure.proven)
    Model.all;
  (* "RMS realizes all reliable models exactly" *)
  List.iter
    (fun a ->
      if a.Model.rel = Model.Reliable && not (Model.equal a (model "RMS")) then
        Alcotest.(check int)
          ("RMS exactly realizes " ^ Model.to_string a)
          4
          (Closure.cell c ~realized:a ~realizer:(model "RMS")).Closure.proven)
    Model.all;
  (* "R1O, RMO, R1S, RMS, RES, R1F, RMF capture all oscillations" *)
  List.iter
    (fun b ->
      List.iter
        (fun a ->
          if not (Model.equal a (model b)) then
            Alcotest.(check bool)
              (b ^ " preserves oscillations of " ^ Model.to_string a)
              true
              ((Closure.cell c ~realized:a ~realizer:(model b)).Closure.proven >= 1))
        Model.all)
    [ "R1O"; "RMO"; "R1S"; "RMS"; "RES"; "R1F"; "RMF" ];
  (* "REO, REF, R1A, RMA, REA are provably unable to capture some
     oscillations" *)
  List.iter
    (fun b ->
      Alcotest.(check bool)
        (b ^ " misses some oscillation")
        true
        (List.exists
           (fun a -> (Closure.cell c ~realized:a ~realizer:(model b)).Closure.disproven = 1)
           Model.all))
    [ "REO"; "REF"; "R1A"; "RMA"; "REA" ];
  ignore cell

let test_cell_rendering () =
  let s p d = Closure.cell_string { Closure.proven = p; disproven = d } in
  Alcotest.(check string) "exact" "4" (s 4 5);
  Alcotest.(check string) "rep only" "3" (s 3 4);
  Alcotest.(check string) "subseq only" "2" (s 2 3);
  Alcotest.(check string) "none" "-1" (s 0 1);
  Alcotest.(check string) "lower bound" ">=2" (s 2 5);
  Alcotest.(check string) "upper bound" "<=2" (s 0 3);
  Alcotest.(check string) "range" "2,3" (s 2 4);
  Alcotest.(check string) "unknown" "" (s 0 5)

(* ------------------------------------------------------------------ *)
(* Constructive transforms *)

let prefix_of_model inst m ~seed ~n =
  Scheduler.prefix n (Scheduler.random inst m ~seed)

let pi_seq inst entries =
  Trace.assignments ~include_initial:true (Executor.run_entries inst entries)

let check_transform_once inst ~source ~target ~seed ~n =
  match Transform.route ~source ~target with
  | None -> Alcotest.failf "no route %s -> %s" (Model.to_string source) (Model.to_string target)
  | Some path ->
    let entries = prefix_of_model inst source ~seed ~n in
    List.iter
      (fun e ->
        if not (Model.validates inst source e) then
          Alcotest.failf "source entry invalid in %s" (Model.to_string source))
      entries;
    let transformed = Transform.apply_path path inst entries in
    List.iter
      (fun e ->
        if not (Model.validates inst target e) then
          Alcotest.failf "transformed entry invalid in %s: %a" (Model.to_string target)
            (Activation.pp inst) e)
      transformed;
    let level = Transform.path_level path in
    let original = pi_seq inst entries in
    let realized = pi_seq inst transformed in
    if not (Seqcheck.check level ~original ~realized) then
      Alcotest.failf "%s -> %s: %s relation violated (seed %d)"
        (Model.to_string source) (Model.to_string target) (Relation.to_string level) seed

let transform_cases =
  (* Each constructive primitive, plus composite chains. *)
  [
    ("RMS->RES exact (Prop 3.4)", "RMS", "RES");
    ("UMS->UES exact (Prop 3.4)", "UMS", "UES");
    ("RMA->R1A rep (Thm 3.5)", "RMA", "R1A");
    ("RMO->R1O rep (Thm 3.5)", "RMO", "R1O");
    ("UMF->U1F rep (Thm 3.5)", "UMF", "U1F");
    ("R1S->R1O subseq (Prop 3.6)", "R1S", "R1O");
    ("U1S->U1O rep (Prop 3.6)", "U1S", "U1O");
    ("U1O->R1S exact (Thm 3.7)", "U1O", "R1S");
    ("REA->RMS exact (embedding chain)", "REA", "RMS");
    ("REO->UMS exact (embedding chain)", "REO", "UMS");
    ("RMA->R1O subseq (4-rule chain)", "RMA", "R1O");
    ("REA->R1O subseq (longest chain)", "REA", "R1O");
    ("U1O->RMS exact (via Thm 3.7)", "U1O", "RMS");
    ("UMO->R1S rep (chain)", "UMO", "R1S");
  ]

let test_transforms_on_gadgets () =
  List.iter
    (fun (name, src, tgt) ->
      List.iter
        (fun inst ->
          List.iter
            (fun seed ->
              check_transform_once inst ~source:(model src) ~target:(model tgt) ~seed ~n:40)
            [ 1; 2; 3 ])
        [ Gadgets.disagree; Gadgets.fig6 ];
      ignore name)
    transform_cases

let gen_seed = QCheck2.Gen.int_range 0 100_000

let prop_transform name src tgt =
  let src = model src and tgt = model tgt in
  QCheck2.Test.make ~name ~count:25 gen_seed (fun seed ->
      let cfg = { Generator.default with seed = seed mod 1000; nodes = 5 } in
      let inst = Generator.instance cfg in
      check_transform_once inst ~source:src ~target:tgt ~seed ~n:30;
      true)

let transform_properties =
  [
    prop_transform "random: RMS->RES exact" "RMS" "RES";
    prop_transform "random: RMA->R1A repetition" "RMA" "R1A";
    prop_transform "random: RMO->R1O repetition" "RMO" "R1O";
    prop_transform "random: R1S->R1O subsequence" "R1S" "R1O";
    prop_transform "random: U1S->U1O repetition" "U1S" "U1O";
    prop_transform "random: U1O->R1S exact" "U1O" "R1S";
    prop_transform "random: UMA->R1O subsequence" "UMA" "R1O";
    prop_transform "random: REA->UMS exact" "REA" "UMS";
  ]

let test_route_levels_match_closure () =
  (* The constructive route level equals the closure's proven level for
     every ordered pair: all positive facts are constructive. *)
  let c = Lazy.force closure in
  List.iter
    (fun source ->
      List.iter
        (fun target ->
          if not (Model.equal source target) then begin
            let proven = (Closure.cell c ~realized:source ~realizer:target).Closure.proven in
            match Transform.route ~source ~target with
            | None ->
              Alcotest.(check int)
                (Fmt.str "no route %a->%a" Model.pp source Model.pp target)
                0 proven
            | Some path ->
              Alcotest.(check int)
                (Fmt.str "route level %a->%a" Model.pp source Model.pp target)
                proven
                (Relation.to_int (Transform.path_level path))
          end)
        Model.all)
    Model.all


let test_every_positive_cell_witnessed () =
  (* Exhaustiveness: every positive cell of Figures 3-4 (345 ordered pairs)
     has a constructive route whose application to a live DISAGREE schedule
     satisfies the cell's claimed relation level. *)
  let c = Lazy.force closure in
  let inst = Gadgets.disagree in
  let checked = ref 0 in
  List.iter
    (fun source ->
      List.iter
        (fun target ->
          if not (Model.equal source target) then begin
            let proven = (Closure.cell c ~realized:source ~realizer:target).Closure.proven in
            if proven > 0 then begin
              match Transform.route ~source ~target with
              | None ->
                Alcotest.failf "no constructive route for proven pair %a -> %a" Model.pp
                  source Model.pp target
              | Some path ->
                let level = Transform.path_level path in
                if Relation.to_int level < proven then
                  Alcotest.failf "route weaker than cell for %a -> %a" Model.pp source
                    Model.pp target;
                let entries = prefix_of_model inst source ~seed:1 ~n:15 in
                let transformed = Transform.apply_path path inst entries in
                if
                  not
                    (Seqcheck.check level ~original:(pi_seq inst entries)
                       ~realized:(pi_seq inst transformed))
                then
                  Alcotest.failf "relation violated for %a -> %a" Model.pp source Model.pp
                    target;
                incr checked
            end
          end)
        Model.all)
    Model.all;
  Alcotest.(check int) "345 positive cells witnessed" 345 !checked

let test_facts_counts () =
  Alcotest.(check int) "negative facts" 15 (List.length Facts.negatives);
  (* 111 strict syntactic inclusions (3 reliability pairs x 5 neighbor
     pairs x 9 message pairs, minus the 24 identities) + 2 widenings
     + 8 splittings + 3 named constructions *)
  Alcotest.(check int) "positive facts" 124 (List.length Facts.positives)

let test_relation_basics () =
  Alcotest.(check int) "exact=4" 4 (Relation.to_int Relation.Exact);
  Alcotest.(check (list int)) "weaker of rep" [ 3; 2; 1 ]
    (List.map Relation.to_int (Relation.weaker Relation.Repetition));
  Alcotest.(check bool) "min" true
    (Relation.min_level Relation.Exact Relation.Subsequence = Relation.Subsequence)


(* ------------------------------------------------------------------ *)
(* More relation and table properties *)

let gen_short_trace =
  (* random assignment sequences over DISAGREE states *)
  QCheck2.Gen.(
    let* seed = int_range 0 99_999 in
    let* steps = int_range 1 20 in
    return (seed, steps))

let trace_of (seed, steps) =
  let inst = Gadgets.disagree in
  let m = model "UMS" in
  let entries = Scheduler.prefix steps (Scheduler.random inst m ~seed) in
  Trace.assignments ~include_initial:true (Executor.run_entries inst entries)

let prop_exact_implies_repetition =
  QCheck2.Test.make ~name:"exact implies repetition implies subsequence" ~count:60
    gen_short_trace (fun input ->
      let t = trace_of input in
      Seqcheck.is_exact ~original:t ~realized:t
      && Seqcheck.is_repetition ~original:t ~realized:t
      && Seqcheck.is_subsequence ~original:t ~realized:t)

let prop_repetition_expansion =
  QCheck2.Test.make ~name:"duplicating elements preserves repetition" ~count:60
    gen_short_trace (fun input ->
      let t = trace_of input in
      let doubled = List.concat_map (fun a -> [ a; a ]) t in
      Seqcheck.is_repetition ~original:t ~realized:doubled
      && Seqcheck.is_subsequence ~original:t ~realized:doubled)

let prop_subsequence_of_superset =
  QCheck2.Test.make ~name:"dropping a non-initial suffix breaks exactness" ~count:60
    gen_short_trace (fun input ->
      let t = trace_of input in
      List.length t < 2
      ||
      let shorter = List.filteri (fun i _ -> i < List.length t - 1) t in
      not (Seqcheck.is_exact ~original:t ~realized:shorter))

let test_paper_tables_shape () =
  (* 24 rows x 12 columns, minus the 12 diagonal cells, per figure. *)
  Alcotest.(check int) "fig3 cells" 276 (List.length Paper_tables.fig3);
  Alcotest.(check int) "fig4 cells" 276 (List.length Paper_tables.fig4);
  List.iter
    (fun (_, _, (c : Paper_tables.constr)) ->
      Alcotest.(check bool) "bounds ordered" true
        (c.Paper_tables.lo <= c.Paper_tables.hi))
    (Paper_tables.fig3 @ Paper_tables.fig4)

let test_closure_monotone_in_facts () =
  (* Removing facts can only weaken conclusions. *)
  let full = Lazy.force closure in
  let fewer =
    Closure.derive_exn
      ~positives:
        (List.filter (fun (f : Facts.positive) -> f.Facts.source <> "Thm. 3.5") Facts.positives)
      ~negatives:Facts.negatives ()
  in
  List.iter
    (fun (a, b, (c : Closure.cell)) ->
      let c' = Closure.cell fewer ~realized:a ~realizer:b in
      Alcotest.(check bool) "proven weakly smaller" true (c'.Closure.proven <= c.Closure.proven);
      Alcotest.(check bool) "disproven weakly larger" true
        (c'.Closure.disproven >= c.Closure.disproven))
    (Closure.cells full)

let test_closure_without_negatives_all_unknown_upper () =
  let pos_only = Closure.derive_exn ~negatives:[] () in
  List.iter
    (fun (_, _, (c : Closure.cell)) ->
      Alcotest.(check int) "nothing disproven" 5 c.Closure.disproven)
    (Closure.cells pos_only)

let test_transform_embed_is_identity () =
  let inst = Gadgets.disagree in
  let entries = Scheduler.prefix 10 (Scheduler.random inst (model "R1O") ~seed:4) in
  let edge =
    List.find
      (fun (e : Transform.edge) ->
        e.Transform.rule = Transform.Embed
        && Model.equal e.Transform.source (model "R1O")
        && Model.equal e.Transform.target (model "UMS"))
      Transform.edges
  in
  Alcotest.(check int) "same length" (List.length entries)
    (List.length (Transform.apply_edge edge inst entries))

let test_proof_provenance () =
  let c = Lazy.force closure in
  (* Every proven cell has a proof, every disproven one a refutation, and
     both render without raising. *)
  List.iter
    (fun (realized, realizer, (cl : Closure.cell)) ->
      (match Closure.proof c ~realized ~realizer with
      | Some _ -> Alcotest.(check bool) "proof iff proven" true (cl.Closure.proven > 0)
      | None -> Alcotest.(check int) "no proof iff unproven" 0 cl.Closure.proven);
      (match Closure.refutation c ~realized ~realizer with
      | Some _ ->
        Alcotest.(check bool) "refutation iff disproven" true (cl.Closure.disproven < 5)
      | None -> Alcotest.(check int) "no refutation iff undisproven" 5 cl.Closure.disproven);
      let text = Closure.explain c ~realized ~realizer in
      Alcotest.(check bool) "non-empty explanation" true (String.length text > 0))
    (Closure.cells c)

let test_refinement_derivation_cites_prop_3_11 () =
  (* The sharpened U1O/R1O upper bound must bottom out in Prop. 3.11. *)
  let c = Lazy.force closure in
  let text = Closure.explain c ~realized:(model "U1O") ~realizer:(model "R1O") in
  let contains needle =
    let n = String.length needle and h = String.length text in
    let rec loop i = i + n <= h && (String.sub text i n = needle || loop (i + 1)) in
    loop 0
  in
  Alcotest.(check bool) "cites Prop. 3.11" true (contains "Prop. 3.11");
  Alcotest.(check bool) "cites Thm. 3.7" true (contains "Thm. 3.7")

let test_route_reflexive_and_missing () =
  Alcotest.(check bool) "self route empty" true
    (Transform.route ~source:(model "RMS") ~target:(model "RMS") = Some []);
  (* REO cannot realize R1O at any level (Thm. 3.8): no constructive route. *)
  Alcotest.(check bool) "no R1O->REO route" true
    (Transform.route ~source:(model "R1O") ~target:(model "REO") = None)

let extra_qcheck =
  List.map QCheck_alcotest.to_alcotest
    [ prop_exact_implies_repetition; prop_repetition_expansion; prop_subsequence_of_superset ]

let () =
  Alcotest.run "realization"
    [
      ( "seqcheck",
        [
          Alcotest.test_case "exact" `Quick test_seqcheck_exact;
          Alcotest.test_case "repetition" `Quick test_seqcheck_repetition;
          Alcotest.test_case "subsequence" `Quick test_seqcheck_subsequence;
        ] );
      ( "closure",
        [
          Alcotest.test_case "consistent" `Quick test_closure_no_contradiction;
          Alcotest.test_case "matches Figures 3-4" `Quick test_closure_matches_paper;
          Alcotest.test_case "known refinements" `Quick test_closure_known_refinements;
          Alcotest.test_case "headline facts (Sec 3.5)" `Quick test_closure_headline_facts;
          Alcotest.test_case "cell rendering" `Quick test_cell_rendering;
          Alcotest.test_case "relation basics" `Quick test_relation_basics;
          Alcotest.test_case "fact counts" `Quick test_facts_counts;
        ] );
      ( "transforms",
        [
          Alcotest.test_case "all primitives and chains on gadgets" `Slow
            test_transforms_on_gadgets;
          Alcotest.test_case "route levels match closure" `Quick
            test_route_levels_match_closure;
          Alcotest.test_case "every positive cell witnessed live" `Slow
            test_every_positive_cell_witnessed;
        ] );
      ("transform-properties", List.map QCheck_alcotest.to_alcotest transform_properties);
      ( "tables-and-rules",
        [
          Alcotest.test_case "paper table shape" `Quick test_paper_tables_shape;
          Alcotest.test_case "closure monotone in facts" `Quick test_closure_monotone_in_facts;
          Alcotest.test_case "no negatives, no upper bounds" `Quick
            test_closure_without_negatives_all_unknown_upper;
          Alcotest.test_case "embed is identity" `Quick test_transform_embed_is_identity;
          Alcotest.test_case "route edge cases" `Quick test_route_reflexive_and_missing;
          Alcotest.test_case "proof provenance" `Quick test_proof_provenance;
          Alcotest.test_case "refinement cites Prop 3.11" `Quick
            test_refinement_derivation_cites_prop_3_11;
        ] );
      ("relation-properties", extra_qcheck);
    ]
