(* spp_report: a one-stop analysis of an SPP instance — structure,
   solvability, dispute wheels, and per-model convergence verdicts. *)

open Cmdliner

let run instance_name model_names bound =
  match
    let ( let* ) = Result.bind in
    let* inst = Instances.find instance_name in
    let* models =
      match model_names with
      | [] -> Ok None
      | names -> Result.map Option.some (Instances.models names)
    in
    Ok (inst, models)
  with
  | Error (`Msg m) -> `Error (false, m)
  | Ok (inst, models) ->
    let config = { Modelcheck.Explore.default_config with Modelcheck.Explore.channel_bound = bound } in
    Format.printf "%a@.@." Spp.Instance.pp inst;
    let report = Modelcheck.Report.analyze ?models ~config inst in
    print_string (Modelcheck.Report.to_string inst report);
    `Ok ()

let instance_arg =
  let doc =
    Printf.sprintf "Instance to analyze: %s." (String.concat ", " (Instances.names ()))
  in
  Arg.(value & opt string "DISAGREE" & info [ "i"; "instance" ] ~docv:"NAME" ~doc)

let models_arg =
  let doc = "Models to check (repeatable); default: R1O, RMS, REA." in
  Arg.(value & opt_all string [] & info [ "m"; "model" ] ~docv:"MODEL" ~doc)

let bound_arg =
  Arg.(value & opt int 4 & info [ "bound" ] ~docv:"B" ~doc:"Per-channel message bound.")

let cmd =
  let doc = "analyze an SPP instance end to end" in
  Cmd.v
    (Cmd.info "spp_report" ~doc)
    Term.(ret (const run $ instance_arg $ models_arg $ bound_arg))

let () = exit (Cmd.eval cmd)
