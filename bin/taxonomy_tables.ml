let () =
  let closure = Realization.Closure.derive_exn () in
  print_endline "=== Figure 3 (reliable realizers) ===";
  print_string (Realization.Closure.render closure ~realizers:Engine.Model.reliable);
  print_endline "=== Figure 4 (unreliable realizers) ===";
  print_string (Realization.Closure.render closure ~realizers:Engine.Model.unreliable);
  print_endline "";
  print_string (Realization.Paper_tables.summary closure)
