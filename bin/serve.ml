(* serve: the persistent query daemon and its client-side plumbing.

   `serve daemon` runs the event loop in the foreground (background it
   from the shell); `serve request` sends one protocol line and prints
   the response — streaming job events as they arrive — and `serve stop`
   asks a running daemon to shut down.  Every error path is a typed
   Service.Error.t; the only place errors become exit codes is
   [eval_result] below. *)

module Json = Engine.Metrics.Json
open Cmdliner

let socket_arg =
  let doc =
    "Unix-domain socket path (keep it short: the kernel caps socket paths \
     at ~108 bytes, so prefer /tmp)."
  in
  Arg.(
    required
    & opt (some string) None
    & info [ "s"; "socket" ] ~docv:"PATH" ~doc)

(* ------------------------------------------------------------------ *)
(* daemon *)

let daemon socket store_dir max_entries workers =
  Result.map
    (fun () -> 0)
    (Service.Server.run
       {
         Service.Server.socket;
         store = { Service.Store.dir = store_dir; max_entries };
         workers;
       })

let daemon_cmd =
  let store_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "store" ] ~docv:"DIR" ~doc:"On-disk result store directory.")
  in
  let max_entries_arg =
    Arg.(
      value
      & opt int Service.Store.default_max_entries
      & info [ "max-entries" ] ~docv:"N"
          ~doc:"LRU cap on store entries (0 disables the cap).")
  in
  let workers_arg =
    Arg.(
      value
      & opt int 4
      & info [ "workers" ] ~docv:"N"
          ~doc:"Pool workers batched compute requests may use.")
  in
  let doc = "run the query daemon in the foreground" in
  Cmd.v
    (Cmd.info "daemon" ~doc)
    Term.(const daemon $ socket_arg $ store_arg $ max_entries_arg $ workers_arg)

(* ------------------------------------------------------------------ *)
(* request / stop *)

let connect_with_retry ~socket ~wait =
  let deadline = Unix.gettimeofday () +. wait in
  let rec go () =
    match Service.Client.connect ~socket with
    | Ok c -> Ok c
    | Error e ->
      if Unix.gettimeofday () < deadline then begin
        ignore (Unix.select [] [] [] 0.05);
        go ()
      end
      else Error e
  in
  go ()

let wait_arg =
  Arg.(
    value
    & opt float 0.
    & info [ "wait" ] ~docv:"SECONDS"
        ~doc:"Retry the connection for up to $(docv) (for daemon startup).")

(* The response's exit code: protocol errors inherit the service
   convention (usage = 2) so scripts can distinguish bad requests. *)
let code_of_response j =
  match Json.member "ok" j with
  | Some (Json.Bool true) -> 0
  | _ -> (
    match Json.member "error" j with
    | Some e when Json.member "kind" e = Some (Json.Str "usage") -> 2
    | _ -> 1)

let request socket wait follow line =
  match Service.Protocol.of_line line with
  | Error (_, e) -> Error e
  | Ok env -> (
    let ( let* ) = Result.bind in
    let* c = connect_with_retry ~socket ~wait in
    let print_json j = print_string (Json.to_string j ^ "\n") in
    let* resp = Service.Client.request ~on_event:print_json c env in
    print_json resp;
    let is_running_job =
      match Json.member "result" resp with
      | Some r -> Json.member "state" r = Some (Json.Str "running")
      | None -> false
    in
    let* () =
      (* With --follow, block on the started job's event stream until it
         finishes (or fails) — the CLI analogue of watching progress. *)
      if follow && is_running_job && code_of_response resp = 0 then
        let rec drain () =
          let* ev = Service.Client.wait_event c in
          print_json ev;
          match Json.member "event" ev with
          | Some (Json.Str ("done" | "failed")) -> Ok ()
          | _ -> drain ()
        in
        drain ()
      else Ok ()
    in
    Service.Client.close c;
    Ok (code_of_response resp))

let request_cmd =
  let line_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"JSON"
          ~doc:
            "One protocol request line, e.g. \
             '{\"method\":\"check\",\"params\":{\"instance\":\"DISAGREE\",\"model\":\"R1O\"}}'.")
  in
  let follow_arg =
    Arg.(
      value & flag
      & info [ "follow" ]
          ~doc:"After a job_start/job_resume response, stream the job's \
                progress events until it completes.")
  in
  let doc = "send one request to a running daemon and print the response" in
  Cmd.v
    (Cmd.info "request" ~doc)
    Term.(const request $ socket_arg $ wait_arg $ follow_arg $ line_arg)

let stop socket wait =
  let ( let* ) = Result.bind in
  let* c = connect_with_retry ~socket ~wait in
  let env = { Service.Protocol.id = Json.Null; req = Service.Protocol.Shutdown } in
  let* resp = Service.Client.request c env in
  Service.Client.close c;
  print_string (Json.to_string resp ^ "\n");
  Ok (code_of_response resp)

let stop_cmd =
  let doc = "ask a running daemon to shut down" in
  Cmd.v (Cmd.info "stop" ~doc) Term.(const stop $ socket_arg $ wait_arg)

(* ------------------------------------------------------------------ *)

let main_cmd =
  let doc = "persistent query daemon for the commrouting reproduction" in
  let info = Cmd.info "serve" ~doc in
  Cmd.group info [ daemon_cmd; request_cmd; stop_cmd ]

(* The single place service errors become exit codes. *)
let () =
  match Cmd.eval_value main_cmd with
  | Error (`Parse | `Term) -> exit 2
  | Error `Exn -> exit 1
  | Ok (`Help | `Version) -> exit 0
  | Ok (`Ok (Ok code)) -> exit code
  | Ok (`Ok (Error e)) ->
    Fmt.epr "serve: %a@." Service.Error.pp e;
    exit (Service.Error.exit_code e)
