(* routing_sim: run the iterative routing algorithm on an instance under a
   chosen communication model and schedule, printing the appendix-style
   trace table and the stop reason. *)

open Engine
open Cmdliner

let run_sim instance_name model_name scheduler_name seed max_steps quiet save load =
  match Instances.find instance_name with
  | Error (`Msg m) -> `Error (false, m)
  | Ok inst -> (
    match Model.of_string (String.uppercase_ascii model_name) with
    | None -> `Error (false, Printf.sprintf "unknown model %S (e.g. R1O, RMS, REA)" model_name)
    | Some model -> (
      match
        match load with
        | Some path ->
          Result.map Scheduler.of_entries (Replay.load inst ~path)
        | None -> (
          match scheduler_name with
          | "rr" | "round-robin" -> Ok (Scheduler.round_robin inst model)
          | "random" -> Ok (Scheduler.random inst model ~seed)
          | other ->
            Error (Printf.sprintf "unknown scheduler %S (rr or random)" other))
      with
      | Error m -> `Error (false, m)
      | Ok sched ->
      let validate = if load = None then Some model else None in
      let r = Executor.run ?validate ~max_steps inst sched in
      (match save with
      | Some path ->
        Replay.save inst ~path
          (List.map (fun (s : Trace.step) -> s.Trace.entry) (Trace.steps r.Executor.trace));
        Format.printf "schedule saved to %s@." path
      | None -> ());
      if not quiet then begin
        Format.printf "%a@.@." Spp.Instance.pp inst;
        Format.printf "model %s, scheduler %s@.@." (Model.to_string model)
          sched.Scheduler.description
      end;
      Format.printf "%s@.@." (Trace.paper_table r.Executor.trace);
      Format.printf "stop: %a after %d steps@." Executor.pp_stop r.Executor.stop
        (Trace.length r.Executor.trace);
      let final = State.assignment inst (Trace.final r.Executor.trace) in
      Format.printf "final assignment: %a (stable solution: %b)@."
        (Spp.Assignment.pp inst) final
        (Spp.Assignment.is_solution inst final);
      `Ok ()))

let instance_arg =
  let doc =
    Printf.sprintf "Instance to run: %s." (String.concat ", " (Instances.names ()))
  in
  Arg.(value & opt string "DISAGREE" & info [ "i"; "instance" ] ~docv:"NAME" ~doc)

let model_arg =
  let doc = "Communication model (one of the 24 taxonomy names, e.g. RMS)." in
  Arg.(value & opt string "RMS" & info [ "m"; "model" ] ~docv:"MODEL" ~doc)

let scheduler_arg =
  let doc = "Schedule: 'rr' (fair round-robin) or 'random' (fair randomized)." in
  Arg.(value & opt string "rr" & info [ "s"; "scheduler" ] ~docv:"SCHED" ~doc)

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random scheduler seed.")

let steps_arg =
  Arg.(value & opt int 2000 & info [ "max-steps" ] ~docv:"N" ~doc:"Step limit.")

let quiet_arg = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Only print the trace.")

let save_arg =
  Arg.(value & opt (some string) None & info [ "save" ] ~docv:"FILE"
       ~doc:"Save the executed schedule (Replay format).")

let load_arg =
  Arg.(value & opt (some string) None & info [ "load" ] ~docv:"FILE"
       ~doc:"Replay a saved schedule instead of generating one.")

let cmd =
  let doc = "simulate distributed autonomous routing under a communication model" in
  Cmd.v
    (Cmd.info "routing_sim" ~doc)
    Term.(
      ret (const run_sim $ instance_arg $ model_arg $ scheduler_arg $ seed_arg $ steps_arg
           $ quiet_arg $ save_arg $ load_arg))

let () = exit (Cmd.eval cmd)
