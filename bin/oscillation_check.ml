(* oscillation_check: exhaustively decide (over bounded channels) whether an
   instance can oscillate under fair schedules of a communication model, and
   optionally replay the discovered witness through the executor. *)

open Engine
open Cmdliner

let check instance_name model_names bound max_states verify domains show_metrics =
  match
    let ( let* ) = Result.bind in
    let* inst = Instances.find instance_name in
    let* models =
      match model_names with
      | [] -> Ok Model.all
      | names -> Instances.models names
    in
    Ok (inst, models)
  with
  | Error (`Msg m) -> `Error (false, m)
  | Ok (inst, models) ->
    let config = { Modelcheck.Explore.channel_bound = bound; max_states } in
    List.iter
      (fun m ->
        let t0 = Unix.gettimeofday () in
        let metrics = Metrics.create () in
        let v = Modelcheck.Oscillation.analyze ~config ?domains ~metrics inst m in
        let extra =
          match v with
          | Modelcheck.Oscillation.Oscillates w when verify ->
            if Modelcheck.Oscillation.verify_witness inst m w then " [witness replays]"
            else " [WITNESS FAILED TO REPLAY]"
          | _ -> ""
        in
        Format.printf "%-4s %a%s (%.2fs)@." (Model.to_string m)
          Modelcheck.Oscillation.pp_verdict v extra
          (Unix.gettimeofday () -. t0);
        if show_metrics then
          Format.printf "     %s@." (Metrics.Json.to_string (Metrics.to_json metrics));
        Format.print_flush ())
      models;
    `Ok ()

let instance_arg =
  let doc =
    Printf.sprintf "Instance to check: %s." (String.concat ", " (Instances.names ()))
  in
  Arg.(value & opt string "DISAGREE" & info [ "i"; "instance" ] ~docv:"NAME" ~doc)

let models_arg =
  let doc = "Models to check (repeatable); default: all 24." in
  Arg.(value & opt_all string [] & info [ "m"; "model" ] ~docv:"MODEL" ~doc)

let bound_arg =
  Arg.(value & opt int 4 & info [ "bound" ] ~docv:"B" ~doc:"Per-channel message bound.")

let states_arg =
  Arg.(value & opt int 200_000 & info [ "max-states" ] ~docv:"N" ~doc:"State limit.")

let verify_arg =
  Arg.(value & flag & info [ "verify" ] ~doc:"Replay oscillation witnesses.")

let domains_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Exploration worker domains (default: the DOMAINS environment variable, \
           else 1).")

let metrics_arg =
  Arg.(value & flag & info [ "metrics" ] ~doc:"Print per-model exploration metrics as JSON.")

let cmd =
  let doc = "decide fair-oscillation possibility per communication model" in
  Cmd.v
    (Cmd.info "oscillation_check" ~doc)
    Term.(
      ret
        (const check $ instance_arg $ models_arg $ bound_arg $ states_arg $ verify_arg
       $ domains_arg $ metrics_arg))

let () = exit (Cmd.eval cmd)
