(* Shared instance selection for the command-line tools: a thin adapter
   over Service.Resolve (the daemon uses the same resolver, so CLI and
   daemon agree on what every spec means) presenting Cmdliner's
   conventional [`Msg] error. *)

let find name =
  match Service.Resolve.find name with
  | Ok inst -> Ok inst
  | Error e -> Error (`Msg (Service.Error.to_string e))

let names () = Service.Resolve.names ()

(* Model names share the resolver's conventions: case-insensitive, typed
   error on junk. *)
let models names =
  List.fold_left
    (fun acc n ->
      match acc with
      | Error _ as e -> e
      | Ok ms -> (
        match Engine.Model.of_string (String.uppercase_ascii n) with
        | Some m -> Ok (m :: ms)
        | None -> Error (`Msg (Printf.sprintf "unknown model %S" n))))
    (Ok []) names
  |> Result.map List.rev
