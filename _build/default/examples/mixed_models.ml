(* Mixed communication models: the open question of Sec. 5.

     dune exec examples/mixed_models.exe

   The paper proves DISAGREE cannot oscillate when every node polls (R1A,
   RMA, REA) and leaves open what happens when "some nodes poll and others
   act on messages".  With per-node models made first-class
   (Engine.Hetero) and the bounded model checker generalized over them,
   the question has a crisp answer on DISAGREE: convergence requires BOTH
   contested nodes to poll — a single message-passing participant restores
   the oscillation.  Multi-node activation (Ex. A.6) breaks polling's
   guarantee as well. *)

open Commrouting
open Engine

let model s = Option.get (Model.of_string s)

let () =
  let inst = Spp.Gadgets.disagree in
  let x = Spp.Gadgets.node inst 'x' and y = Spp.Gadgets.node inst 'y' in
  Format.printf "DISAGREE with per-node models (d always polls):@.@.";
  Format.printf "  %-6s %-6s  verdict@." "x" "y";
  List.iter
    (fun (mx, my) ->
      let hetero = Hetero.of_list ~default:(model "REA") [ (x, model mx); (y, model my) ] in
      let v = Modelcheck.Oscillation.analyze_hetero inst hetero in
      let note =
        match v with
        | Modelcheck.Oscillation.Oscillates w ->
          if Modelcheck.Oscillation.verify_witness_hetero inst hetero w then
            "  [witness replays]"
          else "  [WITNESS FAILED]"
        | _ -> ""
      in
      Format.printf "  %-6s %-6s  %a%s@." mx my Modelcheck.Oscillation.pp_verdict v note)
    [
      ("REA", "REA");
      ("RMA", "R1O");
      ("R1O", "RMA");
      ("REA", "RMS");
      ("R1O", "R1O");
      ("REA", "R1F");
      ("RMA", "UMS");
    ];
  Format.printf
    "@.=> polling protects DISAGREE only if every contested node polls.@.";

  (* Multi-node activation: even all-polling oscillates (Ex. A.6). *)
  Format.printf "@.Synchronous polling (multi-node REA, Ex. A.6):@.";
  let r = Executor.run ~max_steps:50 inst (Multi.synchronous_polling inst) in
  Format.printf "  DISAGREE: %a@." Executor.pp_stop r.Executor.stop;
  let good = Spp.Gadgets.good_gadget in
  let r = Executor.run ~max_steps:50 good (Multi.synchronous_polling good) in
  Format.printf "  GOOD GADGET: %a@." Executor.pp_stop r.Executor.stop;

  (* The synchronous rounds compute the simultaneous best-response
     iteration. *)
  Format.printf "@.Synchronous rounds vs Solver.greedy on GOOD GADGET:@.";
  let tr = Executor.run ~max_steps:10 good (Multi.synchronous_polling good) in
  List.iteri
    (fun i a ->
      Format.printf "  round %d: %a@." i (Spp.Assignment.pp good) a)
    (Trace.assignments ~include_initial:true tr.Executor.trace);
  Format.printf "  greedy fixpoint: %a@." (Spp.Assignment.pp good) (Spp.Solver.greedy good)
