(* Routing algebras on the same engine.

     dune exec examples/algebras.exe

   The paper's related work (refs. [10, 17]) treats routing policies
   algebraically; this example compiles three algebras over one labeled
   topology into SPP instances and shows that the whole toolchain — solver,
   dispute-wheel detector, model checker — applies uniformly. *)

open Commrouting
open Spp

let model s = Option.get (Engine.Model.of_string s)

(* A diamond with a shortcut; labels double as costs and capacities.

          1 ----- 0 (dest)
          | \     |
          |  \    |
          2 --- 3 |
           \______|
*)
let graph =
  {
    Algebra.names = [| "d"; "a"; "b"; "c" |];
    dest = 0;
    links =
      [
        (0, 1, 5, 5);
        (* expensive / fat *)
        (0, 3, 1, 1);
        (1, 2, 1, 1);
        (1, 3, 2, 2);
        (2, 3, 1, 1);
      ];
  }

let show name inst =
  Format.printf "== %s ==@." name;
  List.iter
    (fun v ->
      if v <> Instance.dest inst then
        Format.printf "  %s prefers: %a@." (Instance.name inst v)
          Fmt.(list ~sep:(any " > ") (Instance.pp_path inst))
          (Instance.permitted inst v))
    (Instance.nodes inst);
  Format.printf "  dispute wheel: %b; solutions: %d@." (Dispute.has_wheel inst)
    (Solver.count_solutions inst);
  (* Exhaustive verdicts need a channel bound; on these denser instances a
     fair round-robin run is the cheaper evidence. *)
  let m = model "R1O" in
  let r = Engine.Executor.run ~validate:m inst (Engine.Scheduler.round_robin inst m) in
  Format.printf "  round-robin R1O run: %a@.@." Engine.Executor.pp_stop r.Engine.Executor.stop

let () =
  show "shortest paths (labels = costs)" (Algebra.compile Algebra.shortest_paths graph);
  show "widest paths (labels = capacities)" (Algebra.compile Algebra.widest_paths graph);
  show "widest-then-shortest (lexicographic product)"
    (Algebra.compile
       (Algebra.lex ~name:"widest-shortest" Algebra.widest_paths Algebra.shortest_paths)
       graph);
  (* The algebraic Gao-Rexford rendering agrees with the direct policy
     compiler on generated hierarchies (property-tested in the suite). *)
  Format.printf
    "The Gao-Rexford guidelines are also expressible as an algebra;@.\
     Algebra.gao_rexford compiles to exactly the instances Bgp.Policy does.@."
