(* Realization transforms in action (Sec. 3.2).

     dune exec examples/realization_demo.exe

   Takes a random fair execution of FIG6 under the "poll some" model RMA
   and realizes it, constructively, in the event-driven model R1O via the
   chain RMA --(Thm 3.5)--> R1A --(embed)--> R1S --(Prop 3.6)--> R1O,
   then checks the resulting path-assignment sequences against the claimed
   relation.  Also demonstrates the exact realization of an unreliable
   execution by a reliable model (Thm. 3.7). *)

open Commrouting
open Engine
open Realization

let model name = Option.get (Model.of_string name)

let show_rows inst entries =
  let tr = Executor.run_entries inst entries in
  String.concat " "
    (List.map (fun (u, p) -> Printf.sprintf "%s:%s" u p) (Trace.row_strings tr))

let pi_seq inst entries =
  Trace.assignments ~include_initial:true (Executor.run_entries inst entries)

let demo inst ~source ~target ~seed ~n =
  let src = model source and tgt = model target in
  let entries = Scheduler.prefix n (Scheduler.random inst src ~seed) in
  match Transform.route ~source:src ~target:tgt with
  | None -> Format.printf "no constructive route %s -> %s@." source target
  | Some path ->
    Format.printf "== %s -> %s ==@." source target;
    Format.printf "chain:@.";
    List.iter
      (fun (e : Transform.edge) ->
        Format.printf "  %a --[%a]--> %a@." Model.pp e.Transform.source Transform.pp_rule
          e.Transform.rule Model.pp e.Transform.target)
      path;
    let level = Transform.path_level path in
    let transformed = Transform.apply_path path inst entries in
    Format.printf "source steps: %d, realized steps: %d, claimed relation: %a@."
      (List.length entries) (List.length transformed) Relation.pp level;
    let original = pi_seq inst entries and realized = pi_seq inst transformed in
    Format.printf "relation holds on the traces: %b@."
      (Seqcheck.check level ~original ~realized);
    Format.printf "source choices:   %s@." (show_rows inst entries);
    Format.printf "realized choices: %s@.@." (show_rows inst transformed)

let () =
  let inst = Spp.Gadgets.fig6 in
  Format.printf "Instance: FIG6 (Ex. A.2)@.@.";
  demo inst ~source:"RMA" ~target:"R1O" ~seed:11 ~n:25;
  demo inst ~source:"U1O" ~target:"R1S" ~seed:3 ~n:25;
  demo inst ~source:"REA" ~target:"UMS" ~seed:5 ~n:20;
  (* The strongest single claim of Sec. 3.5: the queueing model UMS exactly
     realizes every model in the taxonomy. *)
  Format.printf "== UMS exactly realizes all 24 models (constructively) ==@.";
  List.iter
    (fun source ->
      match Transform.route ~source ~target:(model "UMS") with
      | Some path when Transform.path_level path = Relation.Exact -> ()
      | Some path ->
        Format.printf "  %a: only %a!@." Model.pp source Relation.pp
          (Transform.path_level path)
      | None -> Format.printf "  %a: NO ROUTE!@." Model.pp source)
    Model.all;
  Format.printf "  confirmed.@."
