(* Oscillation hunt: sweep the paper's gadgets across communication models
   with the bounded model checker, verify every oscillation witness by
   replaying it through the executor, and print the verdict matrix.

     dune exec examples/oscillation_hunt.exe

   Reproduces the separations of Thms. 3.8/3.9 semantically: DISAGREE
   (Ex. A.1) oscillates in R1O-like models but not in REO/REF/polling
   models; BAD GADGET oscillates everywhere; GOOD GADGET nowhere. *)

open Commrouting
open Engine

let models = List.map Model.to_string Model.all

let sweep name inst ~only =
  Format.printf "== %s ==@." name;
  List.iter
    (fun mname ->
      if List.mem mname only then begin
        let m = Option.get (Model.of_string mname) in
        match Modelcheck.Oscillation.analyze inst m with
        | Modelcheck.Oscillation.Oscillates w as v ->
          let replay = Modelcheck.Oscillation.verify_witness inst m w in
          Format.printf "  %-4s %a — replay %s@." mname Modelcheck.Oscillation.pp_verdict v
            (if replay then "verified" else "FAILED")
        | v -> Format.printf "  %-4s %a@." mname Modelcheck.Oscillation.pp_verdict v
      end)
    models;
  Format.printf "@."

let () =
  sweep "DISAGREE (Fig. 5 / Ex. A.1)" Spp.Gadgets.disagree ~only:models;
  sweep "GOOD GADGET (unique solution, no dispute wheel)" Spp.Gadgets.good_gadget
    ~only:[ "R1O"; "RMO"; "R1S"; "RMS"; "REA"; "U1O"; "UMS" ];
  sweep "BAD GADGET (no stable solution)" Spp.Gadgets.bad_gadget
    ~only:[ "R1O"; "REO"; "REA"; "U1A" ];
  (* FIG6 is Ex. A.2's separator: polling models cannot oscillate (REA shown
     here; R1A and RMA also verify but take tens of seconds — see
     EXPERIMENTS.md), while REO/REF have the 2-message-delay oscillation,
     demonstrated by the scripted replay in the test suite. *)
  sweep "FIG6 (Ex. A.2)" Spp.Gadgets.fig6 ~only:[ "REA" ];
  Format.printf "Note: witnesses are (prefix, cycle) schedules; replaying the cycle@.";
  Format.printf "forever is a fair activation sequence whose path assignments never@.";
  Format.printf "stabilize (Defs. 2.4-2.5).@."
