examples/algebras.ml: Algebra Commrouting Dispute Engine Fmt Format Instance List Option Solver Spp
