examples/adhoc_mesh.ml: Array Assignment Commrouting Dispute Engine Executor Format Fun Instance List Model Option Printf Scheduler Spp State Stats Surgery Trace
