examples/taxonomy_tour.ml: Closure Commrouting Engine Format Fun List Model Option Paper_tables Realization String
