examples/quickstart.mli:
