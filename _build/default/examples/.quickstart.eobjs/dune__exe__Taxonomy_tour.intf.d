examples/taxonomy_tour.mli:
