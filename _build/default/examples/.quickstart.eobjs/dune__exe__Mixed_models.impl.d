examples/mixed_models.ml: Commrouting Engine Executor Format Hetero List Model Modelcheck Multi Option Spp Trace
