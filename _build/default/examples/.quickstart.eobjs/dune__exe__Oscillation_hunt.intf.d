examples/oscillation_hunt.mli:
