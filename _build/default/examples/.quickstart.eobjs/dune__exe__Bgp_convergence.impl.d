examples/bgp_convergence.ml: Bgp Commrouting Engine Format List Model Option Scheduler Spp
