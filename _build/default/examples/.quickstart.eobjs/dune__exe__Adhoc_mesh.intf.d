examples/adhoc_mesh.mli:
