examples/link_failure.ml: Bgp Commrouting Engine Executor Format Hashtbl List Model Option Scheduler Spp State Trace
