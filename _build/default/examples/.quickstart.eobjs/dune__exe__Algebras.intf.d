examples/algebras.mli:
