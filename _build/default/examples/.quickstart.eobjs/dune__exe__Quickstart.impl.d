examples/quickstart.ml: Activation Channel Commrouting Engine Executor Format List Model Modelcheck Option Scheduler Spp State Trace
