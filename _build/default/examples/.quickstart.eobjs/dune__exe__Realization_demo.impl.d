examples/realization_demo.ml: Commrouting Engine Executor Format List Model Option Printf Realization Relation Scheduler Seqcheck Spp String Trace Transform
