examples/oscillation_hunt.ml: Commrouting Engine Format List Model Modelcheck Option Spp
