examples/realization_demo.mli:
