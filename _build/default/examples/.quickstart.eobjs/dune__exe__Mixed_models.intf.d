examples/mixed_models.mli:
